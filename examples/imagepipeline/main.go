// Imagepipeline reproduces the paper's Listing 1 — the Image /
// LabelledImage classes for image processing — and exercises the three
// OaaS features the listing motivates: inheritance (LabelledImage
// extends Image), unstructured state (the image file, accessed by
// function code through presigned URLs only), and a dataflow composing
// the methods.
//
// Run with: go run ./examples/imagepipeline
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"strings"

	oaas "github.com/hpcclab/oparaca-go"
)

// packageYAML is Listing 1 with the detectObject dataflow added.
const packageYAML = `classes:
  - name: Image
    qos:
      throughput: 100 # rps
    constraint:
      persistent: true
    keySpecs:
      - name: image          # the unstructured image file
        kind: file
      - name: format
        kind: string
        default: "png"
    functions:
      - name: resize
        image: img/resize
      - name: changeFormat
        image: img/change-format
  - name: LabelledImage
    parent: Image
    keySpecs:
      - name: labels
        default: []
    functions:
      - name: detectObject
        image: img/detect-object
    dataflows:
      - name: prepareAndLabel
        steps:
          - name: shrink
            function: resize
          - name: label
            function: detectObject
            after: [shrink]
`

func main() {
	ctx := context.Background()
	platform, err := oaas.New(oaas.Config{Workers: 3})
	if err != nil {
		log.Fatal(err)
	}
	defer platform.Close()
	registerImages(platform)

	if _, err := platform.DeployYAML(ctx, []byte(packageYAML)); err != nil {
		log.Fatal(err)
	}

	// LabelledImage inherits Image's state and methods (paper §II-A).
	photo, err := oaas.NewObject(ctx, platform, "LabelledImage", "vacation-photo")
	if err != nil {
		log.Fatal(err)
	}

	// Upload the "image file" through a presigned URL — the developer
	// (and the function code) never see storage credentials (§III-D).
	putURL, err := photo.FileURL("image", http.MethodPut)
	if err != nil {
		log.Fatal(err)
	}
	fakePNG := bytes.Repeat([]byte("pixel"), 100)
	req, _ := http.NewRequest(http.MethodPut, putURL, bytes.NewReader(fakePNG))
	req.Header.Set("Content-Type", "image/png")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("uploaded %d bytes via presigned URL (status %d)\n", len(fakePNG), resp.StatusCode)

	// Invoke the inherited resize method on the subclass object.
	out, err := photo.Invoke(ctx, "resize", nil, map[string]string{"w": "640", "h": "480"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resize -> %s\n", out)

	// Run the dataflow: resize then detectObject, chained by the
	// platform (§II-B) — the function code knows nothing about the
	// flow.
	out, err = photo.Invoke(ctx, "prepareAndLabel", nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("prepareAndLabel -> %s\n", out)

	labels, err := photo.State(ctx, "labels")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("state[labels] = %s\n", labels)
}

// registerImages installs the three function images of Listing 1. The
// resize function demonstrates real unstructured-data access: it
// downloads the image bytes through the presigned GET URL it received
// with the task and re-uploads the "resized" result through the
// presigned PUT URL.
func registerImages(platform *oaas.Platform) {
	platform.Images().Register("img/resize", oaas.HandlerFunc(
		func(ctx context.Context, task oaas.Task) (oaas.Result, error) {
			getURL, putURL := task.Refs["image"], task.Refs["image!put"]
			if getURL == "" || putURL == "" {
				return oaas.Result{}, fmt.Errorf("missing presigned refs")
			}
			resp, err := http.Get(getURL)
			if err != nil {
				return oaas.Result{}, err
			}
			data, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				return oaas.Result{}, err
			}
			// "Resize": cut the byte count in half.
			resized := data[:len(data)/2]
			req, err := http.NewRequestWithContext(ctx, http.MethodPut, putURL, bytes.NewReader(resized))
			if err != nil {
				return oaas.Result{}, err
			}
			up, err := http.DefaultClient.Do(req)
			if err != nil {
				return oaas.Result{}, err
			}
			up.Body.Close()
			out, _ := json.Marshal(fmt.Sprintf("resized %d -> %d bytes (w=%s h=%s)",
				len(data), len(resized), task.Args["w"], task.Args["h"]))
			return oaas.Result{Output: out}, nil
		}))

	platform.Images().Register("img/change-format", oaas.HandlerFunc(
		func(_ context.Context, task oaas.Task) (oaas.Result, error) {
			format := task.Args["to"]
			if format == "" {
				format = "jpeg"
			}
			raw, _ := json.Marshal(format)
			return oaas.Result{
				Output: raw,
				State:  map[string]json.RawMessage{"format": raw},
			}, nil
		}))

	platform.Images().Register("img/detect-object", oaas.HandlerFunc(
		func(_ context.Context, task oaas.Task) (oaas.Result, error) {
			// A toy "detector": label based on the stored format.
			var format string
			_ = json.Unmarshal(task.State["format"], &format)
			labels := []string{"beach", "sky"}
			if strings.Contains(format, "png") {
				labels = append(labels, "screenshot")
			}
			raw, _ := json.Marshal(labels)
			return oaas.Result{
				Output: raw,
				State:  map[string]json.RawMessage{"labels": raw},
			}, nil
		}))
}
