// Multiregion demonstrates the paper's §VI future work implemented in
// this reproduction: deploying OaaS applications across multiple data
// centers. A jurisdiction constraint pins a class's function pods to
// one region, and clients in other regions pay the inter-region
// latency — exactly the "latency and jurisdiction" non-functional
// requirements the paper says multi-datacenter support unlocks.
//
// Run with: go run ./examples/multiregion
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"time"

	oaas "github.com/hpcclab/oparaca-go"
)

const packageYAML = `classes:
  - name: PatientRecords     # GDPR-style data residency
    constraint:
      jurisdiction: eu-west
      persistent: true
    keySpecs:
      - name: record
        default: {}
    functions:
      - name: update
        image: img/update
      - name: read
        image: img/read
  - name: PublicCatalog      # unconstrained, lives in the default DC
    keySpecs:
      - name: items
        default: []
    functions:
      - name: read
        image: img/read
`

func main() {
	ctx := context.Background()
	platform, err := oaas.New(oaas.Config{
		Workers: 2, // the default data center
		Regions: []oaas.RegionSpec{
			{Name: "eu-west", Workers: 2},
			{Name: "ap-south", Workers: 1},
		},
		InterRegionLatency: 40 * time.Millisecond, // one-way
	})
	if err != nil {
		log.Fatal(err)
	}
	defer platform.Close()

	platform.Images().Register("img/update", oaas.HandlerFunc(
		func(_ context.Context, task oaas.Task) (oaas.Result, error) {
			return oaas.Result{
				Output: task.Payload,
				State:  map[string]json.RawMessage{"record": task.Payload},
			}, nil
		}))
	platform.Images().Register("img/read", oaas.HandlerFunc(
		func(_ context.Context, task oaas.Task) (oaas.Result, error) {
			for _, key := range []string{"record", "items"} {
				if v, ok := task.State[key]; ok {
					return oaas.Result{Output: v}, nil
				}
			}
			return oaas.Result{Output: json.RawMessage("null")}, nil
		}))

	if _, err := platform.DeployYAML(ctx, []byte(packageYAML)); err != nil {
		log.Fatal(err)
	}
	fmt.Println("cluster regions:", platform.Cluster().Regions())

	record, err := oaas.NewObject(ctx, platform, "PatientRecords", "patient-42")
	if err != nil {
		log.Fatal(err)
	}
	home, _ := platform.HomeRegion(record.ID)
	fmt.Printf("object %s lives in region %q (jurisdiction constraint)\n", record.ID, home)

	if _, err := platform.InvokeFrom(ctx, "eu-west", record.ID, "update",
		json.RawMessage(`{"name":"A. Patient","bp":"120/80"}`), nil); err != nil {
		log.Fatal(err)
	}

	// Warm the read function once (scale-from-zero cold start) so the
	// comparison below isolates the network penalty.
	if _, err := platform.InvokeFrom(ctx, "eu-west", record.ID, "read", nil, nil); err != nil {
		log.Fatal(err)
	}

	// Same-region access is fast; cross-region pays the configured
	// round trip.
	measure := func(clientRegion string) time.Duration {
		start := time.Now()
		if _, err := platform.InvokeFrom(ctx, clientRegion, record.ID, "read", nil, nil); err != nil {
			log.Fatal(err)
		}
		return time.Since(start)
	}
	fmt.Printf("read from eu-west client:  %v\n", measure("eu-west").Round(time.Microsecond))
	fmt.Printf("read from default client:  %v\n", measure("").Round(time.Millisecond))
	fmt.Printf("read from ap-south client: %v\n", measure("ap-south").Round(time.Millisecond))

	// Placement compliance: no PatientRecords pod outside eu-west.
	for _, node := range platform.Cluster().Nodes() {
		if node.PodCount() > 0 {
			fmt.Printf("node %-16s region %-10s pods %d\n", node.Name(), node.Region(), node.PodCount())
		}
	}
}
