// Quickstart walks the paper's tutorial flow (§IV) end to end against
// the public API: define a class in YAML, register its function image,
// deploy the package, create an object, invoke methods, and read the
// object's state back.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"

	oaas "github.com/hpcclab/oparaca-go"
)

// packageYAML is the deployment package: one Counter class whose state
// is a single number and whose logic is two serverless functions.
const packageYAML = `classes:
  - name: Counter
    qos:
      throughput: 100   # rps
    constraint:
      persistent: true
    keySpecs:
      - name: count
        kind: number
        default: 0
    functions:
      - name: incr
        image: img/incr
      - name: report
        image: img/report
`

func main() {
	ctx := context.Background()

	// 1. Install the platform (paper §IV step 1) — here an in-process
	// platform with three simulated worker VMs.
	platform, err := oaas.New(oaas.Config{Workers: 3})
	if err != nil {
		log.Fatal(err)
	}
	defer platform.Close()

	// 2. Create the functions (step 3). Function code follows the
	// pure-function contract: state arrives with the task, modified
	// state returns with the result.
	platform.Images().Register("img/incr", oaas.HandlerFunc(
		func(_ context.Context, task oaas.Task) (oaas.Result, error) {
			var n float64
			if raw, ok := task.State["count"]; ok {
				if err := json.Unmarshal(raw, &n); err != nil {
					return oaas.Result{}, err
				}
			}
			out, _ := json.Marshal(n + 1)
			return oaas.Result{
				Output: out,
				State:  map[string]json.RawMessage{"count": out},
			}, nil
		}))
	platform.Images().Register("img/report", oaas.HandlerFunc(
		func(_ context.Context, task oaas.Task) (oaas.Result, error) {
			out, _ := json.Marshal(fmt.Sprintf("object %s has count %s",
				task.Object, task.State["count"]))
			return oaas.Result{Output: out}, nil
		}))

	// 3. Deploy the class definition (steps 4-5). The platform picks a
	// class-runtime template from the declared requirements.
	classes, err := platform.DeployYAML(ctx, []byte(packageYAML))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("deployed classes:", classes)

	// 4. Create an object and interact with it (step 5).
	counter, err := oaas.NewObject(ctx, platform, "Counter", "demo-counter")
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		out, err := counter.Invoke(ctx, "incr", nil, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("incr -> %s\n", out)
	}
	report, err := counter.Invoke(ctx, "report", nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("report -> %s\n", report)

	// 5. State is managed by the platform, not the function code: read
	// it directly through the object abstraction.
	count, err := counter.State(ctx, "count")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("state[count] = %s\n", count)

	stats := platform.Stats()
	fmt.Printf("platform: %d workers, %d objects, %d invocations\n",
		stats.Workers, stats.Objects, stats.Invocations)
}
