// Eventchain demonstrates the event & trigger subsystem: an Order
// class whose committed writes automatically fan out to an audit
// object (data-triggered chaining through the async queue), a live
// event stream tailing the order, and the trigger delivery counters.
//
// Run with: go run ./examples/eventchain
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"time"

	oaas "github.com/hpcclab/oparaca-go"
)

// packageYAML declares the reactive composition: every committed write
// to an Order's status key invokes AuditLog.record on "audit-1".
const packageYAML = `classes:
  - name: Order
    keySpecs:
      - name: status
        kind: string
        default: '"new"'
    functions:
      - name: place
        image: img/place
      - name: ship
        image: img/ship
    triggers:
      - on: stateChanged
        keyPrefix: status
        targetObject: audit-1
        function: record
  - name: AuditLog
    concurrencyMode: locked
    keySpecs:
      - name: entries
        kind: number
        default: 0
      - name: last
    functions:
      - name: record
        image: img/record
`

func main() {
	ctx := context.Background()
	platform, err := oaas.New(oaas.Config{Workers: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer platform.Close()

	// Order methods just move the status; the platform emits the
	// events.
	setStatus := func(status string) oaas.Handler {
		return oaas.HandlerFunc(func(_ context.Context, _ oaas.Task) (oaas.Result, error) {
			raw, _ := json.Marshal(status)
			return oaas.Result{Output: raw, State: map[string]json.RawMessage{"status": raw}}, nil
		})
	}
	platform.Images().Register("img/place", setStatus("placed"))
	platform.Images().Register("img/ship", setStatus("shipped"))
	// The audit handler receives the triggering event as its payload.
	platform.Images().Register("img/record", oaas.HandlerFunc(
		func(_ context.Context, task oaas.Task) (oaas.Result, error) {
			var n float64
			if raw, ok := task.State["entries"]; ok {
				_ = json.Unmarshal(raw, &n)
			}
			var ev oaas.Event
			_ = json.Unmarshal(task.Payload, &ev)
			count, _ := json.Marshal(n + 1)
			last, _ := json.Marshal(fmt.Sprintf("%s.%s wrote %v", ev.Class, ev.Function, ev.Keys))
			return oaas.Result{State: map[string]json.RawMessage{"entries": count, "last": last}}, nil
		}))

	if _, err := platform.DeployYAML(ctx, []byte(packageYAML)); err != nil {
		log.Fatal(err)
	}
	if _, err := oaas.NewObject(ctx, platform, "AuditLog", "audit-1"); err != nil {
		log.Fatal(err)
	}
	order, err := oaas.NewObject(ctx, platform, "Order", "order-1")
	if err != nil {
		log.Fatal(err)
	}

	// Tail the order's live events while we drive it.
	stream, err := order.Events(16)
	if err != nil {
		log.Fatal(err)
	}
	defer stream.Close()
	go func() {
		for ev := range stream.Events() {
			fmt.Printf("  [stream] %s on %s (keys %v)\n", ev.Type, ev.Object, ev.Keys)
		}
	}()

	for _, fn := range []string{"place", "ship"} {
		if _, err := order.Invoke(ctx, fn, nil, nil); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("order-1.%s committed\n", fn)
	}

	// The audit chain is asynchronous; wait for both entries.
	audit, _ := oaas.BindObject(platform, "audit-1")
	for {
		raw, err := audit.State(ctx, "entries")
		if err == nil && string(raw) == "2" {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	last, _ := audit.State(ctx, "last")
	fmt.Printf("audit entries: 2, last: %s\n", last)
	stats := platform.Stats().Triggers
	fmt.Printf("trigger stats: emitted=%d delivered=%d dropped=%d retried=%d\n",
		stats.Emitted, stats.Delivered, stats.Dropped, stats.Retried)
}
