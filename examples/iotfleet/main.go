// Iotfleet demonstrates the paper's §II-D extension: treating IoT
// devices as cloud objects. Each device object encapsulates its
// telemetry state and exposes methods to reconfigure the device and
// ingest readings; a fleet-wide QoS requirement drives the optimizer.
//
// Run with: go run ./examples/iotfleet
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"time"

	oaas "github.com/hpcclab/oparaca-go"
)

const packageYAML = `classes:
  - name: Device
    qos:
      throughput: 200    # fleet must sustain 200 readings/sec
      latencyMs: 250
    keySpecs:
      - name: config
        default: {"interval_s": 60, "unit": "celsius"}
      - name: lastReading
      - name: readingCount
        kind: number
        default: 0
    functions:
      - name: ingest
        image: img/ingest
      - name: reconfigure
        image: img/reconfigure
      - name: status
        image: img/status
  - name: Thermostat
    parent: Device
    keySpecs:
      - name: setpoint
        kind: number
        default: 21
    functions:
      - name: setTarget
        image: img/set-target
`

func main() {
	ctx := context.Background()
	platform, err := oaas.New(oaas.Config{
		Workers:           3,
		EnableOptimizer:   true,
		OptimizerInterval: 100 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer platform.Close()
	registerDeviceImages(platform)

	if _, err := platform.DeployYAML(ctx, []byte(packageYAML)); err != nil {
		log.Fatal(err)
	}

	// Provision a small fleet: plain sensors plus thermostats (a
	// subclass adding a setpoint and a setTarget method).
	var fleet []oaas.Object
	for i := 0; i < 4; i++ {
		dev, err := oaas.NewObject(ctx, platform, "Device", fmt.Sprintf("sensor-%02d", i))
		if err != nil {
			log.Fatal(err)
		}
		fleet = append(fleet, dev)
	}
	thermo, err := oaas.NewObject(ctx, platform, "Thermostat", "thermostat-00")
	if err != nil {
		log.Fatal(err)
	}
	fleet = append(fleet, thermo)

	// Devices report readings; the object abstraction keeps per-device
	// state without any developer-managed database.
	for round := 0; round < 3; round++ {
		for i, dev := range fleet {
			reading, _ := json.Marshal(map[string]any{
				"temp": 20.0 + float64(i) + float64(round)/10,
				"ts":   time.Now().UnixMilli(),
			})
			if _, err := dev.Invoke(ctx, "ingest", reading, nil); err != nil {
				log.Fatal(err)
			}
		}
	}

	// Reconfigure one device — management is just a method call.
	if _, err := fleet[0].Invoke(ctx, "reconfigure", json.RawMessage(`{"interval_s": 5}`), nil); err != nil {
		log.Fatal(err)
	}
	// Thermostats expose their subclass method while inheriting all
	// Device behaviour.
	if _, err := thermo.Invoke(ctx, "setTarget", json.RawMessage(`23.5`), nil); err != nil {
		log.Fatal(err)
	}
	if _, err := thermo.Invoke(ctx, "ingest", json.RawMessage(`{"temp": 22.1}`), nil); err != nil {
		log.Fatal(err)
	}

	for _, dev := range fleet {
		out, err := dev.Invoke(ctx, "status", nil, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %s\n", dev.ID, out)
	}

	// The optimizer watches the declared fleet QoS in the background;
	// show any decisions it made.
	for _, act := range platform.Optimizer().Actions() {
		fmt.Printf("optimizer: %s %s.%s -> %d replicas (%s)\n",
			act.Kind, act.Class, act.Function, act.Replicas, act.Reason)
	}
}

// registerDeviceImages installs the device function images.
func registerDeviceImages(platform *oaas.Platform) {
	platform.Images().Register("img/ingest", oaas.HandlerFunc(
		func(_ context.Context, task oaas.Task) (oaas.Result, error) {
			var count float64
			if raw, ok := task.State["readingCount"]; ok {
				_ = json.Unmarshal(raw, &count)
			}
			countRaw, _ := json.Marshal(count + 1)
			return oaas.Result{
				Output: countRaw,
				State: map[string]json.RawMessage{
					"lastReading":  task.Payload,
					"readingCount": countRaw,
				},
			}, nil
		}))
	platform.Images().Register("img/reconfigure", oaas.HandlerFunc(
		func(_ context.Context, task oaas.Task) (oaas.Result, error) {
			cfg := map[string]any{}
			if raw, ok := task.State["config"]; ok {
				_ = json.Unmarshal(raw, &cfg)
			}
			patch := map[string]any{}
			if err := json.Unmarshal(task.Payload, &patch); err != nil {
				return oaas.Result{}, fmt.Errorf("config patch must be a JSON object: %w", err)
			}
			for k, v := range patch {
				cfg[k] = v
			}
			raw, _ := json.Marshal(cfg)
			return oaas.Result{Output: raw, State: map[string]json.RawMessage{"config": raw}}, nil
		}))
	platform.Images().Register("img/status", oaas.HandlerFunc(
		func(_ context.Context, task oaas.Task) (oaas.Result, error) {
			status := map[string]json.RawMessage{
				"config":       task.State["config"],
				"lastReading":  task.State["lastReading"],
				"readingCount": task.State["readingCount"],
			}
			if sp, ok := task.State["setpoint"]; ok {
				status["setpoint"] = sp
			}
			raw, _ := json.Marshal(status)
			return oaas.Result{Output: raw}, nil
		}))
	platform.Images().Register("img/set-target", oaas.HandlerFunc(
		func(_ context.Context, task oaas.Task) (oaas.Result, error) {
			var target float64
			if err := json.Unmarshal(task.Payload, &target); err != nil {
				return oaas.Result{}, fmt.Errorf("setpoint must be a number: %w", err)
			}
			return oaas.Result{
				Output: task.Payload,
				State:  map[string]json.RawMessage{"setpoint": task.Payload},
			}, nil
		}))
}
