// Jsonrandom runs the paper's evaluation workload (§V: "JSON
// randomization application") at small scale and prints a miniature
// version of Figure 3's comparison: the same application under the
// knative write-through baseline and under Oparaca's write-behind
// configuration, showing the database write consolidation that powers
// the paper's headline result.
//
// Run with: go run ./examples/jsonrandom
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"log"
	"sync"
	"time"

	oaas "github.com/hpcclab/oparaca-go"
)

const packageYAML = `classes:
  - name: JsonStore
    constraint:
      persistent: true
    keySpecs:
      - name: doc
        default: {}
    functions:
      - name: randomize
        image: img/json-random
`

func main() {
	ctx := context.Background()
	for _, cfg := range []struct {
		label     string
		templates []oaas.Template
	}{
		{"knative-style (write-through)", []oaas.Template{{
			Name:       "wt",
			EngineMode: oaas.EngineKnative, TableMode: oaas.TableWriteThrough,
			DefaultConcurrency: 32, MinScale: 1, InitialScale: 2, MaxScale: 32,
		}}},
		{"oparaca (write-behind batches)", []oaas.Template{{
			Name:       "wb",
			EngineMode: oaas.EngineDeployment, TableMode: oaas.TableWriteBehind,
			FlushInterval: 20 * time.Millisecond, FlushBatchSize: 256,
			DefaultConcurrency: 32, InitialScale: 2, MaxScale: 32,
		}}},
	} {
		ops, writes := runOnce(ctx, cfg.templates)
		fmt.Printf("%-32s %6d invocations -> %4d DB write ops (%.1f writes/1k ops)\n",
			cfg.label, ops, writes, float64(writes)/float64(ops)*1000)
	}
}

// runOnce deploys the workload under the given template set, drives
// load for half a second, and reports invocations vs DB write ops.
func runOnce(ctx context.Context, templates []oaas.Template) (ops int64, writes int64) {
	platform, err := oaas.New(oaas.Config{
		Workers:   3,
		Templates: templates,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer platform.Close()
	platform.Images().Register("img/json-random", oaas.HandlerFunc(randomize))
	if _, err := platform.DeployYAML(ctx, []byte(packageYAML)); err != nil {
		log.Fatal(err)
	}
	const objects = 16
	ids := make([]string, objects)
	for i := range ids {
		obj, err := oaas.NewObject(ctx, platform, "JsonStore", fmt.Sprintf("doc-%02d", i))
		if err != nil {
			log.Fatal(err)
		}
		ids[i] = obj.ID
	}
	before := platform.Backing().Stats()

	var wg sync.WaitGroup
	var count int64
	var mu sync.Mutex
	deadline := time.Now().Add(500 * time.Millisecond)
	for w := 0; w < 32; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for time.Now().Before(deadline) {
				if _, err := platform.Invoke(ctx, ids[w%objects], "randomize", nil, nil); err != nil {
					return
				}
				mu.Lock()
				count++
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	platform.Flush(ctx)
	after := platform.Backing().Stats()
	return count, after.WriteOps - before.WriteOps
}

// randomize is the evaluation workload's function: replace the "doc"
// state with a randomized JSON document.
func randomize(_ context.Context, task oaas.Task) (oaas.Result, error) {
	h := fnv.New64a()
	_, _ = h.Write([]byte(task.ID))
	seed := h.Sum64() | 1
	next := func() uint64 {
		seed ^= seed << 13
		seed ^= seed >> 7
		seed ^= seed << 17
		return seed
	}
	doc := map[string]any{
		"seq":   next() % 1_000_000,
		"score": float64(next()%10_000) / 100,
		"flag":  next()%2 == 0,
	}
	raw, err := json.Marshal(doc)
	if err != nil {
		return oaas.Result{}, err
	}
	return oaas.Result{Output: raw, State: map[string]json.RawMessage{"doc": raw}}, nil
}
