package oaas

// Benchmark harness regenerating the paper's evaluation (see
// EXPERIMENTS.md for the experiment index):
//
//   BenchmarkFigure3          – the scalability sweep of §V Figure 3
//                               (4 systems × 3/6/9/12 worker VMs);
//                               the "ops/s" metric is the figure's
//                               y-axis.
//   BenchmarkAblationBatchSize – A1: DB write amplification under
//                               write-through vs write-behind.
//   BenchmarkAblationColdStart – A2: scale-from-zero invocation.
//   BenchmarkAblationDataflow  – A3: parallel fan vs sequential chain.
//   BenchmarkAblationLocality  – A4: co-located vs remote state read.
//   BenchmarkMicro*            – substrate micro-benchmarks.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// Figure 3 points are closed-loop measurements against a full platform
// per point, so the sweep takes a couple of minutes at default
// benchtime; pass -benchtime=0.3s for a quick pass.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	goruntime "runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/hpcclab/oparaca-go/internal/dataflow"
	"github.com/hpcclab/oparaca-go/internal/eventlog"
	"github.com/hpcclab/oparaca-go/internal/experiment"
	"github.com/hpcclab/oparaca-go/internal/invoker"
	"github.com/hpcclab/oparaca-go/internal/kvstore"
	"github.com/hpcclab/oparaca-go/internal/memtable"
	"github.com/hpcclab/oparaca-go/internal/model"
	"github.com/hpcclab/oparaca-go/internal/objectstore"
	"github.com/hpcclab/oparaca-go/internal/runtime"
	"github.com/hpcclab/oparaca-go/internal/yamlx"
)

// BenchmarkFigure3 regenerates the paper's Figure 3: one sub-benchmark
// per (system, worker-count) point. The reported "ops/s" metric is the
// figure's y-axis; expect knative to plateau at the DB write ceiling
// (~6 VMs) while the Oparaca variants keep scaling in the order
// oprc < oprc-bypass < oprc-bypass-nonpersist.
func BenchmarkFigure3(b *testing.B) {
	params := experiment.DefaultParams()
	ctx := context.Background()
	for _, system := range experiment.AllSystems() {
		for _, workers := range params.Workers {
			name := fmt.Sprintf("%s/vms-%d", system, workers)
			b.Run(name, func(b *testing.B) {
				plat, ids, err := experiment.SetupPlatform(ctx, system, workers, params)
				if err != nil {
					b.Fatal(err)
				}
				defer plat.Close()
				b.SetParallelism(16) // 16*GOMAXPROCS closed-loop clients
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					i := 0
					for pb.Next() {
						id := ids[i%len(ids)]
						i++
						if _, err := plat.Invoke(ctx, id, "randomize", nil, nil); err != nil {
							b.Error(err)
							return
						}
					}
				})
				b.StopTimer()
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/s")
			})
		}
	}
}

// BenchmarkAblationBatchSize (A1) measures invocation throughput and
// DB write amplification for write-through vs write-behind at several
// flush intervals (9 VMs, as in the ablation table).
func BenchmarkAblationBatchSize(b *testing.B) {
	params := experiment.DefaultParams()
	ctx := context.Background()
	configs := []struct {
		name  string
		table memtable.Mode
		flush time.Duration
	}{
		{"write-through", memtable.ModeWriteThrough, 0},
		{"write-behind-5ms", memtable.ModeWriteBehind, 5 * time.Millisecond},
		{"write-behind-20ms", memtable.ModeWriteBehind, 20 * time.Millisecond},
		{"write-behind-80ms", memtable.ModeWriteBehind, 80 * time.Millisecond},
	}
	for _, cfg := range configs {
		b.Run(cfg.name, func(b *testing.B) {
			tmpl := runtime.Template{
				Name:       cfg.name,
				EngineMode: EngineDeployment, TableMode: cfg.table,
				FlushInterval: cfg.flush, FlushBatchSize: 512,
				DefaultConcurrency: 16, InitialScale: 18, MaxScale: 400,
				InvokeCost: 1.33,
			}
			plat, ids, err := experiment.SetupCustomPlatform(ctx, tmpl, 9, params)
			if err != nil {
				b.Fatal(err)
			}
			defer plat.Close()
			before := plat.Backing().Stats()
			b.SetParallelism(16)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					if _, err := plat.Invoke(ctx, ids[i%len(ids)], "randomize", nil, nil); err != nil {
						b.Error(err)
						return
					}
					i++
				}
			})
			b.StopTimer()
			after := plat.Backing().Stats()
			writes := float64(after.WriteOps - before.WriteOps)
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/s")
			b.ReportMetric(writes/float64(b.N)*1000, "dbwrites/1kops")
		})
	}
}

// BenchmarkAblationColdStart (A2) measures a full scale-from-zero
// invocation (idle wait + activator + cold start) per iteration.
func BenchmarkAblationColdStart(b *testing.B) {
	row, err := experiment.RunColdStartAblation(context.Background(), 3, 100*time.Millisecond)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(row.ColdP50.Microseconds()), "cold-p50-µs")
	b.ReportMetric(float64(row.WarmP50.Microseconds()), "warm-p50-µs")
	// Also exercise the steady path under the bench loop so the ns/op
	// column is meaningful (warm invocations).
	plat, ids, err := experiment.SetupPlatform(context.Background(),
		experiment.SystemOprcBypassNonpersist, 2, experiment.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	defer plat.Close()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plat.Invoke(ctx, ids[i%len(ids)], "randomize", nil, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationDataflow (A3) compares the makespan of a parallel
// fan-out dataflow against the equivalent sequential chain.
func BenchmarkAblationDataflow(b *testing.B) {
	for _, shape := range []string{"fan", "chain"} {
		b.Run(shape, func(b *testing.B) {
			ctx := context.Background()
			plat, obj := setupDataflowBench(b, 4)
			defer plat.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := plat.Invoke(ctx, obj, shape, nil, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// setupDataflowBench deploys a class with "fan" and "chain" dataflows
// of the given width over a 2ms step function.
func setupDataflowBench(b *testing.B, width int) (*Platform, string) {
	b.Helper()
	noServe := false
	tmpl := Template{
		Name:       "dfbench",
		EngineMode: EngineDeployment, TableMode: TableMemoryOnly,
		DefaultConcurrency: 64, InitialScale: 2, MaxScale: 16,
	}
	plat, err := New(Config{Workers: 2, Templates: []Template{tmpl}, ServeObjectStore: &noServe})
	if err != nil {
		b.Fatal(err)
	}
	plat.Images().Register("img/slow", HandlerFunc(func(_ context.Context, _ Task) (Result, error) {
		// time.Sleep, not <-time.After: benchmarks never cancel
		// mid-handler, and the timer allocation would dominate the
		// per-op alloc counts these benches guard.
		time.Sleep(2 * time.Millisecond)
		return Result{Output: json.RawMessage(`"ok"`)}, nil
	}))
	pkg := `classes:
  - name: Flow
    functions:
      - name: work
        image: img/slow
    dataflows:
      - name: fan
        output: sink
        steps:
          - name: src
            function: work
`
	for i := 0; i < width; i++ {
		pkg += fmt.Sprintf("          - name: mid%d\n            function: work\n            after: [src]\n", i)
	}
	pkg += "          - name: sink\n            function: work\n            after: ["
	for i := 0; i < width; i++ {
		if i > 0 {
			pkg += ", "
		}
		pkg += fmt.Sprintf("mid%d", i)
	}
	pkg += "]\n      - name: chain\n        steps:\n          - name: s0\n            function: work\n"
	for i := 1; i < width+2; i++ {
		pkg += fmt.Sprintf("          - name: s%d\n            function: work\n            after: [s%d]\n", i, i-1)
	}
	ctx := context.Background()
	if _, err := plat.DeployYAML(ctx, []byte(pkg)); err != nil {
		b.Fatal(err)
	}
	id, err := plat.CreateObject(ctx, "Flow", "bench-flow")
	if err != nil {
		b.Fatal(err)
	}
	return plat, id
}

// BenchmarkAblationLocality (A4) reports cold (read-through from the
// remote store) vs warm (co-located) invocation latency.
func BenchmarkAblationLocality(b *testing.B) {
	row, err := experiment.RunLocalityAblation(context.Background(), 64, 5*time.Millisecond)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(row.ColdP50.Microseconds()), "cold-p50-µs")
	b.ReportMetric(float64(row.WarmP50.Microseconds()), "warm-p50-µs")
}

// BenchmarkAsyncInvokeThroughput compares blocking synchronous
// invocation against async+batch submission through the bounded queue,
// sweeping the async worker-pool size {1, 4, 16}. The sync baseline
// uses the same client parallelism as the pool under test so the
// comparison isolates the queue/decoupling overhead; "ops/s" counts
// completed invocations.
func BenchmarkAsyncInvokeThroughput(b *testing.B) {
	const handlerDelay = 200 * time.Microsecond
	setup := func(b *testing.B, asyncWorkers int) (*Platform, string) {
		b.Helper()
		noServe := false
		tmpl := Template{
			Name:       "asyncbench",
			EngineMode: EngineDeployment, TableMode: TableMemoryOnly,
			DefaultConcurrency: 64, InitialScale: 4, MaxScale: 64,
		}
		plat, err := New(Config{
			Workers: 2, OpsPerMilliCPU: 1000,
			Templates:          []Template{tmpl},
			ServeObjectStore:   &noServe,
			AsyncWorkers:       asyncWorkers,
			AsyncQueueCapacity: 4096,
		})
		if err != nil {
			b.Fatal(err)
		}
		plat.Images().Register("img/spin", HandlerFunc(func(_ context.Context, task Task) (Result, error) {
			time.Sleep(handlerDelay) // see img/slow: no timer allocs in benches
			return Result{Output: task.Payload}, nil
		}))
		ctx := context.Background()
		pkg := "classes:\n  - name: W\n    functions:\n      - name: f\n        image: img/spin\n"
		if _, err := plat.DeployYAML(ctx, []byte(pkg)); err != nil {
			b.Fatal(err)
		}
		id, err := plat.CreateObject(ctx, "W", "bench-w")
		if err != nil {
			b.Fatal(err)
		}
		return plat, id
	}
	for _, workers := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("sync/clients-%d", workers), func(b *testing.B) {
			plat, id := setup(b, workers)
			defer plat.Close()
			ctx := context.Background()
			var next atomic.Int64
			var wg sync.WaitGroup
			b.ResetTimer()
			for c := 0; c < workers; c++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for next.Add(1) <= int64(b.N) {
						if _, err := plat.Invoke(ctx, id, "f", nil, nil); err != nil {
							b.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/s")
		})
		b.Run(fmt.Sprintf("async-batch/workers-%d", workers), func(b *testing.B) {
			plat, id := setup(b, workers)
			defer plat.Close()
			ctx := context.Background()
			const chunk = 256
			reqs := make([]AsyncRequest, 0, chunk)
			b.ResetTimer()
			for submitted := 0; submitted < b.N; {
				n := min(chunk, b.N-submitted)
				reqs = reqs[:0]
				for i := 0; i < n; i++ {
					reqs = append(reqs, AsyncRequest{Object: id, Member: "f"})
				}
				results := plat.InvokeAsyncBatch(ctx, reqs)
				// Wait out the chunk before submitting the next so the
				// bounded queue never overflows.
				for _, res := range results {
					if res.Err != nil {
						b.Fatal(res.Err)
					}
					rec, err := plat.WaitInvocation(ctx, res.ID)
					if err != nil {
						b.Fatal(err)
					}
					if rec.Status != InvocationCompleted {
						b.Fatalf("invocation %s: %s (%s)", res.ID, rec.Status, rec.Error)
					}
				}
				submitted += n
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/s")
		})
	}
}

// BenchmarkAsyncDrainThroughput measures the asynchronous drain path's
// group-commit batching: a submission burst builds a backlog, the
// worker pool drains it, and ops/s counts completed invocations. The
// state table is write-through with a simulated per-write DB latency,
// so the dominant per-invocation cost is the commit round trip — the
// exact cost DrainBatch coalescing amortizes. Dimensions:
//
//   - hot-object: every invocation targets one counter object. With
//     DrainBatch=1 each bump pays its own serialized commit; with
//     DrainBatch=16 a worker pull commits up to 16 bumps through one
//     InvokeBatch window and one DB round trip.
//   - spread: invocations round-robin 256 objects, so same-object
//     coalescing is rare — the guard dimension proving batched pulls
//     (and batched record transitions) do not hurt spread traffic.
//
// Results are recorded as "asyncdrain/<dim>/w<N>/batch<B>" in
// BENCH_invoke.json (BENCH_SNAPSHOT=1) and guarded by cmd/benchdiff.
func BenchmarkAsyncDrainThroughput(b *testing.B) {
	const writeLatency = 300 * time.Microsecond
	setup := func(b *testing.B, workers, drainBatch, objects int) (*Platform, []string) {
		b.Helper()
		noServe := false
		tmpl := Template{
			Name:       "drainbench",
			EngineMode: EngineDeployment, TableMode: TableWriteThrough,
			DefaultConcurrency: 64, InitialScale: 4, MaxScale: 64,
		}
		plat, err := New(Config{
			Workers: 4, OpsPerMilliCPU: 1000,
			DBWriteLatency:     writeLatency,
			Templates:          []Template{tmpl},
			ServeObjectStore:   &noServe,
			AsyncWorkers:       workers,
			AsyncDrainBatch:    drainBatch,
			AsyncQueueCapacity: 1 << 14,
			ConcurrencyMode:    ConcurrencyLocked,
		})
		if err != nil {
			b.Fatal(err)
		}
		plat.Images().Register("img/bump", HandlerFunc(func(_ context.Context, task Task) (Result, error) {
			var n float64
			if raw, ok := task.State["n"]; ok {
				_ = json.Unmarshal(raw, &n)
			}
			out, _ := json.Marshal(n + 1)
			return Result{Output: out, State: map[string]json.RawMessage{"n": out}}, nil
		}))
		pkg := "classes:\n  - name: Drain\n    keySpecs:\n      - name: n\n        kind: number\n        default: 0\n"
		pkg += "    functions:\n      - name: bump\n        image: img/bump\n"
		ctx := context.Background()
		if _, err := plat.DeployYAML(ctx, []byte(pkg)); err != nil {
			plat.Close()
			b.Fatal(err)
		}
		ids := make([]string, objects)
		for i := range ids {
			id, err := plat.CreateObject(ctx, "Drain", fmt.Sprintf("dr-%04d", i))
			if err != nil {
				plat.Close()
				b.Fatal(err)
			}
			ids[i] = id
		}
		return plat, ids
	}
	dims := []struct {
		name    string
		objects int
	}{
		{"hot-object", 1},
		{"spread", 256},
	}
	for _, dim := range dims {
		for _, workers := range []int{1, 4, 16} {
			for _, batch := range []int{1, 16} {
				name := fmt.Sprintf("%s/w%d/batch%d", dim.name, workers, batch)
				b.Run(name, func(b *testing.B) {
					plat, ids := setup(b, workers, batch, dim.objects)
					defer plat.Close()
					ctx := context.Background()
					// Submit in large chunks and wait each chunk out so
					// the bounded queue never overflows while the
					// backlog stays deep enough to coalesce.
					const chunk = 4096
					reqs := make([]AsyncRequest, 0, chunk)
					b.ReportAllocs()
					allocs := allocCounter()
					b.ResetTimer()
					for submitted := 0; submitted < b.N; {
						n := min(chunk, b.N-submitted)
						reqs = reqs[:0]
						for i := 0; i < n; i++ {
							reqs = append(reqs, AsyncRequest{Object: ids[(submitted+i)%len(ids)], Member: "bump"})
						}
						results := plat.InvokeAsyncBatch(ctx, reqs)
						for _, res := range results {
							if res.Err != nil {
								b.Fatal(res.Err)
							}
							rec, err := plat.WaitInvocation(ctx, res.ID)
							if err != nil {
								b.Fatal(err)
							}
							if rec.Status != InvocationCompleted {
								b.Fatalf("invocation %s: %s (%s)", res.ID, rec.Status, rec.Error)
							}
						}
						submitted += n
					}
					b.StopTimer()
					apo := allocs(b.N)
					ops := float64(b.N) / b.Elapsed().Seconds()
					b.ReportMetric(ops, "ops/s")
					b.ReportMetric(apo, "allocs/op")
					recordInvokeBench("asyncdrain/"+name, ops)
					recordInvokeBench("asyncdrain/"+name+"#allocs", apo)
				})
			}
		}
	}
}

// BenchmarkTriggerFanout measures the event subsystem's cost on the
// commit path: one writer bumps a hot counter while {1,16} live
// streams subscribe to the object, so every committed write fans out
// through the bus to N sinks. ops/s counts committed writes; the
// spread between subs1 and subs16 is the marginal fan-out cost.
// Results are recorded as "triggerfanout/subs<N>" in BENCH_invoke.json
// (BENCH_SNAPSHOT=1) and guarded by cmd/benchdiff.
func BenchmarkTriggerFanout(b *testing.B) {
	setup := func(b *testing.B) (*Platform, string) {
		b.Helper()
		noServe := false
		tmpl := Template{
			Name:       "fanbench",
			EngineMode: EngineDeployment, TableMode: TableMemoryOnly,
			DefaultConcurrency: 64, InitialScale: 2, MaxScale: 16,
		}
		plat, err := New(Config{
			Workers: 2, OpsPerMilliCPU: 1000,
			Templates:        []Template{tmpl},
			ServeObjectStore: &noServe,
			// Block on a full bus so the measurement covers actual
			// delivery, not drop-and-forget: every commit's event
			// reaches all N sinks before the writer can outrun the bus.
			TriggerOverflow: TriggerOverflowBlock,
		})
		if err != nil {
			b.Fatal(err)
		}
		plat.Images().Register("img/bump", HandlerFunc(func(_ context.Context, task Task) (Result, error) {
			var n float64
			if raw, ok := task.State["n"]; ok {
				_ = json.Unmarshal(raw, &n)
			}
			out, _ := json.Marshal(n + 1)
			return Result{Output: out, State: map[string]json.RawMessage{"n": out}}, nil
		}))
		pkg := "classes:\n  - name: Feed\n    keySpecs:\n      - name: n\n        kind: number\n        default: 0\n"
		pkg += "    functions:\n      - name: bump\n        image: img/bump\n"
		ctx := context.Background()
		if _, err := plat.DeployYAML(ctx, []byte(pkg)); err != nil {
			plat.Close()
			b.Fatal(err)
		}
		id, err := plat.CreateObject(ctx, "Feed", "feed-0")
		if err != nil {
			plat.Close()
			b.Fatal(err)
		}
		return plat, id
	}
	for _, subs := range []int{1, 16} {
		name := fmt.Sprintf("subs%d", subs)
		b.Run(name, func(b *testing.B) {
			plat, id := setup(b)
			defer plat.Close()
			ctx := context.Background()
			var consumed atomic.Int64
			var wg sync.WaitGroup
			streams := make([]*EventStream, subs)
			for i := range streams {
				st, err := plat.StreamEvents(id, 1024)
				if err != nil {
					b.Fatal(err)
				}
				streams[i] = st
				wg.Add(1)
				go func() {
					defer wg.Done()
					for range st.Events() {
						consumed.Add(1)
					}
				}()
			}
			b.ReportAllocs()
			allocs := allocCounter()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := plat.Invoke(ctx, id, "bump", nil, nil); err != nil {
					b.Fatal(err)
				}
			}
			plat.TriggerBus().Drain()
			b.StopTimer()
			// Whole-process allocs per committed write (invoke + bus +
			// durable append + N stream deliveries): guards the publish
			// path against per-event allocation creep — the inlined
			// shardFor hash alone is pinned at zero by
			// trigger.TestShardForNoAllocs.
			allocsPerOp := allocs(b.N)
			for _, st := range streams {
				st.Close()
			}
			wg.Wait()
			ops := float64(b.N) / b.Elapsed().Seconds()
			b.ReportMetric(ops, "ops/s")
			b.ReportMetric(allocsPerOp, "allocs/op")
			b.ReportMetric(float64(consumed.Load())/float64(b.N), "deliveries/op")
			recordInvokeBench("triggerfanout/"+name, ops)
			recordInvokeBench("triggerfanout/"+name+"#allocs", allocsPerOp)
		})
	}
}

// benchEventPayload is a representative stored event (the JSON the
// bus appends per committed write).
var benchEventPayload = json.RawMessage(`{"seq":1,"offset":1,"type":"stateChanged","class":"Feed","object":"feed-0","function":"bump","keys":["n"]}`)

// newBenchEventLog builds a backed event log with the background
// sweep running at a bench-friendly cadence, so size-cap eviction and
// garbage reclamation cost is included in steady-state numbers.
func newBenchEventLog(b *testing.B) *eventlog.Log {
	b.Helper()
	st := kvstore.Open(kvstore.Config{})
	l, err := eventlog.New(eventlog.Config{Backing: st, GCInterval: 20 * time.Millisecond})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		l.Close()
		st.Close()
	})
	return l
}

// BenchmarkEventLogAppend measures the durable append path the
// trigger bus takes on every committed write: write-through to the
// backing store, then the in-memory commit. "single" is the Publish
// path (one entry per backing write), "batch16" the group-commit
// PublishBatch path (16 entries amortized into one backing write).
// Results are recorded as "eventlog/append/<sub>" in BENCH_invoke.json
// (BENCH_SNAPSHOT=1) and guarded by cmd/benchdiff.
func BenchmarkEventLogAppend(b *testing.B) {
	ctx := context.Background()
	build := func(int64) (json.RawMessage, error) { return benchEventPayload, nil }
	b.Run("single", func(b *testing.B) {
		l := newBenchEventLog(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := l.Append(ctx, "feed-0", build); err != nil {
				b.Fatal(err)
			}
		}
		ops := float64(b.N) / b.Elapsed().Seconds()
		b.ReportMetric(ops, "ops/s")
		recordInvokeBench("eventlog/append/single", ops)
	})
	b.Run("batch16", func(b *testing.B) {
		const batch = 16
		l := newBenchEventLog(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := l.AppendBatch(ctx, "feed-0", batch, func(int, int64) (json.RawMessage, error) {
				return benchEventPayload, nil
			}); err != nil {
				b.Fatal(err)
			}
		}
		// ops/s counts appended events, not batches, so single vs
		// batch16 read as the same unit.
		ops := float64(b.N*batch) / b.Elapsed().Seconds()
		b.ReportMetric(ops, "ops/s")
		recordInvokeBench("eventlog/append/batch16", ops)
	})
}

// BenchmarkEventLogReplay measures cursor-resume throughput: paged
// Reads over a warm retained log, the path every recovering consumer
// and fromOffset stream takes. ops/s counts replayed entries.
// Recorded as "eventlog/replay/page256" (BENCH_SNAPSHOT=1) and
// guarded by cmd/benchdiff.
func BenchmarkEventLogReplay(b *testing.B) {
	const retained, page = 1024, 256
	ctx := context.Background()
	b.Run("page256", func(b *testing.B) {
		l := newBenchEventLog(b)
		if _, err := l.AppendBatch(ctx, "feed-0", retained, func(int, int64) (json.RawMessage, error) {
			return benchEventPayload, nil
		}); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		replayed := 0
		for i := 0; i < b.N; i++ {
			from := int64((i*page)%retained) + 1
			entries, err := l.Read(ctx, "feed-0", from, page)
			if err != nil {
				b.Fatal(err)
			}
			replayed += len(entries)
		}
		ops := float64(replayed) / b.Elapsed().Seconds()
		b.ReportMetric(ops, "ops/s")
		recordInvokeBench("eventlog/replay/page256", ops)
	})
}

// --- Invocation hot-path benchmarks ----------------------------------

// invokeBench collects hot-path and async-drain benchmark results and
// persists them to BENCH_invoke.json after every sub-benchmark, so the
// perf trajectory of the invocation paths is tracked across PRs. The
// write is opt-in (BENCH_SNAPSHOT=1) so smoke runs — CI's -benchtime=1x
// pass in particular, whose single-iteration ops/s includes cold starts
// and means nothing — cannot clobber the committed snapshot with noise.
// Refresh it with (all guarded families in one run — the writer
// rewrites the whole file from the metrics the run accumulated):
//
//	BENCH_SNAPSHOT=1 go test -bench='InvokeHotPath|InvokeTraced|AsyncDrainThroughput|TriggerFanout|EventLogAppend|EventLogReplay' -benchtime=2s -run='^$' .
var invokeBench = struct {
	mu      sync.Mutex
	metrics map[string]float64
}{metrics: make(map[string]float64)}

func recordInvokeBench(name string, opsPerSec float64) {
	if os.Getenv("BENCH_SNAPSHOT") == "" {
		return
	}
	invokeBench.mu.Lock()
	defer invokeBench.mu.Unlock()
	invokeBench.metrics[name] = opsPerSec
	raw, err := json.MarshalIndent(invokeBench.metrics, "", "  ")
	if err != nil {
		return
	}
	_ = os.WriteFile("BENCH_invoke.json", append(raw, '\n'), 0o644)
}

// allocCounter snapshots the whole-process malloc count; the returned
// closure yields allocations per op for the n ops completed since the
// snapshot. Unlike -benchmem's allocs/op it covers every goroutine the
// op touched (flush loops, bus delivery, async workers), which is what
// the "#allocs" snapshot keys guard in cmd/benchdiff — testing.B's
// AllocsPerOp is not reachable from inside the benchmark anyway.
func allocCounter() func(n int) float64 {
	var ms goruntime.MemStats
	goruntime.ReadMemStats(&ms)
	start := ms.Mallocs
	return func(n int) float64 {
		var ms goruntime.MemStats
		goruntime.ReadMemStats(&ms)
		return float64(ms.Mallocs-start) / float64(n)
	}
}

// hotPathKeys is the structured-state width of the spread-object
// workload: every invocation bundles this many keys into the task.
const hotPathKeys = 8

// hotHandlerDelay is the simulated per-invocation function service
// time of the HotCounter workload (see setupHotPathPlatform).
const hotHandlerDelay = 50 * time.Microsecond

// setupHotPathPlatform deploys a Spread class (hotPathKeys keys without
// defaults, so cold reads must go to the backing store) and a
// HotCounter class (one numeric key bumped per call, plus a readonly
// peek), with the given per-object concurrency mode. Optional mutators
// adjust the platform Config before construction (e.g. enabling
// lease-based ownership for the routed-invoke bench).
func setupHotPathPlatform(b *testing.B, readLatency time.Duration, conc ConcurrencyMode, mutate ...func(*Config)) *Platform {
	b.Helper()
	noServe := false
	tmpl := Template{
		Name:       "hotpath",
		EngineMode: EngineDeployment, TableMode: TableWriteBehind,
		FlushInterval: 20 * time.Millisecond, FlushBatchSize: 512,
		DefaultConcurrency: 64, InitialScale: 4, MaxScale: 64,
	}
	cfg := Config{
		Workers: 4, OpsPerMilliCPU: 1000,
		DBReadLatency:    readLatency,
		Templates:        []Template{tmpl},
		ServeObjectStore: &noServe,
		ConcurrencyMode:  conc,
	}
	for _, m := range mutate {
		m(&cfg)
	}
	plat, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	plat.Images().Register("img/touch", HandlerFunc(func(_ context.Context, task Task) (Result, error) {
		return Result{Output: json.RawMessage(`"ok"`)}, nil
	}))
	// The HotCounter handlers simulate a small service time: hot-object
	// throughput is about how the runtime schedules concurrent windows
	// (serialize vs interleave), which only shows against nonzero
	// function work. The locked mode pays the delay serially per
	// invocation; concurrent regimes overlap it.
	plat.Images().Register("img/bump", HandlerFunc(func(_ context.Context, task Task) (Result, error) {
		var n float64
		if raw, ok := task.State["n"]; ok {
			_ = json.Unmarshal(raw, &n)
		}
		// time.Sleep, not <-time.After: benches never cancel
		// mid-handler, and the timer allocation (~6 allocs/op) would
		// dominate the warm-invoke alloc budget under measurement.
		time.Sleep(hotHandlerDelay)
		out, _ := json.Marshal(n + 1)
		return Result{Output: out, State: map[string]json.RawMessage{"n": out}}, nil
	}))
	plat.Images().Register("img/peek", HandlerFunc(func(_ context.Context, task Task) (Result, error) {
		time.Sleep(hotHandlerDelay)
		return Result{Output: task.State["n"]}, nil
	}))
	pkg := "classes:\n  - name: Spread\n    keySpecs:\n"
	for k := 0; k < hotPathKeys; k++ {
		pkg += fmt.Sprintf("      - name: k%d\n", k)
	}
	pkg += "    functions:\n      - name: touch\n        image: img/touch\n"
	pkg += "  - name: HotCounter\n    keySpecs:\n      - name: n\n        kind: number\n        default: 0\n"
	pkg += "    functions:\n      - name: bump\n        image: img/bump\n"
	pkg += "      - name: peek\n        image: img/peek\n        readonly: true\n"
	if _, err := plat.DeployYAML(context.Background(), []byte(pkg)); err != nil {
		plat.Close()
		b.Fatal(err)
	}
	return plat
}

// BenchmarkInvokeHotPath measures the synchronous invocation data path
// in the three regimes the hot-path overhaul targets:
//
//   - spread-cold-reads: every invocation targets a fresh object whose
//     state lives only in the backing store, so the state load pays
//     simulated DB read latency (batched GetMany vs per-key Get is the
//     difference under measurement).
//   - spread-warm: invocations round-robin over a warm working set;
//     state loads are memory hits (shard-lock amortization).
//   - hot-object{,-locked,-occ}: concurrent clients bump one counter
//     object under each concurrency mode (correctness-bounded: the
//     locked mode serializes, OCC interleaves through validated
//     commit retries, and the unsuffixed variant is the adaptive
//     default).
//   - hot-object-readonly-w{1,8}: annotated read-only invocations on
//     one hot object at 1 and 8 workers — the lock-free fast path
//     that skips both locking and the merge/commit.
//   - hot-object-readmix-{occ,locked}: a 90/10 read/write mix on one
//     hot object, the regime where optimistic interleaving beats the
//     serialized window.
func BenchmarkInvokeHotPath(b *testing.B) {
	ctx := context.Background()
	b.Run("spread-cold-reads", func(b *testing.B) {
		plat := setupHotPathPlatform(b, 250*time.Microsecond, ConcurrencyAdaptive)
		defer plat.Close()
		ids := make([]string, b.N)
		seed := make(map[string]json.RawMessage, hotPathKeys*b.N)
		for i := range ids {
			id, err := plat.CreateObject(ctx, "Spread", fmt.Sprintf("sp-%06d", i))
			if err != nil {
				b.Fatal(err)
			}
			ids[i] = id
			for k := 0; k < hotPathKeys; k++ {
				seed[fmt.Sprintf("state/Spread/%s/k%d", id, k)] = json.RawMessage(`{"v":1}`)
			}
		}
		// Seed state straight into the backing store so the first (and
		// only) invocation of each object read-misses every key.
		if err := plat.Backing().BatchPut(ctx, seed); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		allocs := allocCounter()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := plat.Invoke(ctx, ids[i], "touch", nil, nil); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		apo := allocs(b.N)
		ops := float64(b.N) / b.Elapsed().Seconds()
		b.ReportMetric(ops, "ops/s")
		b.ReportMetric(apo, "allocs/op")
		recordInvokeBench("invoke/spread-cold-reads", ops)
		recordInvokeBench("invoke/spread-cold-reads#allocs", apo)
	})
	b.Run("spread-warm", func(b *testing.B) {
		plat := setupHotPathPlatform(b, 250*time.Microsecond, ConcurrencyAdaptive)
		defer plat.Close()
		const working = 512
		ids := make([]string, working)
		for i := range ids {
			id, err := plat.CreateObject(ctx, "Spread", fmt.Sprintf("spw-%04d", i))
			if err != nil {
				b.Fatal(err)
			}
			ids[i] = id
			// Warm every key so the measured loop is all memory hits.
			for k := 0; k < hotPathKeys; k++ {
				if err := plat.PutState(ctx, id, fmt.Sprintf("k%d", k), json.RawMessage(`{"v":1}`)); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportAllocs()
		b.SetParallelism(4)
		allocs := allocCounter()
		b.ResetTimer()
		var next atomic.Int64
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				i := int(next.Add(1))
				if _, err := plat.Invoke(ctx, ids[i%working], "touch", nil, nil); err != nil {
					b.Error(err)
					return
				}
			}
		})
		b.StopTimer()
		apo := allocs(b.N)
		ops := float64(b.N) / b.Elapsed().Seconds()
		b.ReportMetric(ops, "ops/s")
		b.ReportMetric(apo, "allocs/op")
		recordInvokeBench("invoke/spread-warm", ops)
		// The whole-process counter charges RunParallel's goroutine spawns
		// (and other fixed per-run setup) to this measurement. That fixed
		// cost is invisible at -benchtime=2s but adds ~14 allocs/op at the
		// CI smoke run's -benchtime=200x. The snapshot key is therefore
		// baselined from a 200x run so CI compares like with like; after a
		// 2s BENCH_SNAPSHOT refresh, re-take this one key at 200x.
		recordInvokeBench("invoke/spread-warm#allocs", apo)
	})
	hotObject := func(name string, conc ConcurrencyMode) {
		b.Run(name, func(b *testing.B) {
			plat := setupHotPathPlatform(b, 0, conc)
			defer plat.Close()
			id, err := plat.CreateObject(ctx, "HotCounter", "hot-0")
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.SetParallelism(4)
			allocs := allocCounter()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, err := plat.Invoke(ctx, id, "bump", nil, nil); err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.StopTimer()
			apo := allocs(b.N)
			ops := float64(b.N) / b.Elapsed().Seconds()
			b.ReportMetric(ops, "ops/s")
			b.ReportMetric(apo, "allocs/op")
			recordInvokeBench("invoke/"+name, ops)
			recordInvokeBench("invoke/"+name+"#allocs", apo)
		})
	}
	hotObject("hot-object", ConcurrencyAdaptive)
	hotObject("hot-object-locked", ConcurrencyLocked)
	hotObject("hot-object-occ", ConcurrencyOCC)
	for _, workers := range []int{1, 8} {
		name := fmt.Sprintf("hot-object-readonly-w%d", workers)
		b.Run(name, func(b *testing.B) {
			plat := setupHotPathPlatform(b, 0, ConcurrencyOCC)
			defer plat.Close()
			id, err := plat.CreateObject(ctx, "HotCounter", "hot-0")
			if err != nil {
				b.Fatal(err)
			}
			// One write warms the key so every peek is a memory hit.
			if _, err := plat.Invoke(ctx, id, "bump", nil, nil); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			allocs := allocCounter()
			b.ResetTimer()
			var next atomic.Int64
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for next.Add(1) <= int64(b.N) {
						if _, err := plat.Invoke(ctx, id, "peek", nil, nil); err != nil {
							b.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
			b.StopTimer()
			apo := allocs(b.N)
			ops := float64(b.N) / b.Elapsed().Seconds()
			b.ReportMetric(ops, "ops/s")
			b.ReportMetric(apo, "allocs/op")
			recordInvokeBench("invoke/"+name, ops)
			recordInvokeBench("invoke/"+name+"#allocs", apo)
		})
	}
	for _, conc := range []ConcurrencyMode{ConcurrencyOCC, ConcurrencyLocked} {
		name := fmt.Sprintf("hot-object-readmix-%s", conc)
		b.Run(name, func(b *testing.B) {
			plat := setupHotPathPlatform(b, 0, conc)
			defer plat.Close()
			id, err := plat.CreateObject(ctx, "HotCounter", "hot-0")
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.SetParallelism(4)
			allocs := allocCounter()
			b.ResetTimer()
			var seq atomic.Int64
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					fn := "peek"
					if seq.Add(1)%10 == 0 {
						fn = "bump" // 10% writes
					}
					if _, err := plat.Invoke(ctx, id, fn, nil, nil); err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.StopTimer()
			apo := allocs(b.N)
			ops := float64(b.N) / b.Elapsed().Seconds()
			b.ReportMetric(ops, "ops/s")
			b.ReportMetric(apo, "allocs/op")
			recordInvokeBench("invoke/"+name, ops)
			recordInvokeBench("invoke/"+name+"#allocs", apo)
		})
	}
}

// BenchmarkInvokeTraced prices the tracing layer on the warm invoke
// path (the spread-warm workload: 512 warm objects, parallel clients):
//
//   - off: EnableTracing false — the PR 8 warm-path contract; the
//     "invoketraced/off#allocs" key is guarded against the
//     "invoke/spread-warm#allocs" baseline, proving a tracing-capable
//     build costs nothing when tracing is disabled.
//   - unsampled: tracing on with probabilistic keeps disabled — spans
//     open and close on every stage but pooling keeps the steady-state
//     near zero extra allocations.
//   - sampled: SampleRate 1 keeps every trace — the worst case, paying
//     view construction and ring retention per invocation.
func BenchmarkInvokeTraced(b *testing.B) {
	ctx := context.Background()
	for _, bc := range []struct {
		name   string
		mutate func(*Config)
	}{
		{"off", func(*Config) {}},
		{"unsampled", func(cfg *Config) {
			cfg.EnableTracing = true
			cfg.TraceSampleRate = -1
		}},
		{"sampled", func(cfg *Config) {
			cfg.EnableTracing = true
			cfg.TraceSampleRate = 1
		}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			plat := setupHotPathPlatform(b, 250*time.Microsecond, ConcurrencyAdaptive, bc.mutate)
			defer plat.Close()
			const working = 512
			ids := make([]string, working)
			for i := range ids {
				id, err := plat.CreateObject(ctx, "Spread", fmt.Sprintf("spt-%04d", i))
				if err != nil {
					b.Fatal(err)
				}
				ids[i] = id
				for k := 0; k < hotPathKeys; k++ {
					if err := plat.PutState(ctx, id, fmt.Sprintf("k%d", k), json.RawMessage(`{"v":1}`)); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportAllocs()
			b.SetParallelism(4)
			allocs := allocCounter()
			b.ResetTimer()
			var next atomic.Int64
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					i := int(next.Add(1))
					if _, err := plat.Invoke(ctx, ids[i%working], "touch", nil, nil); err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.StopTimer()
			apo := allocs(b.N)
			ops := float64(b.N) / b.Elapsed().Seconds()
			b.ReportMetric(ops, "ops/s")
			b.ReportMetric(apo, "allocs/op")
			recordInvokeBench("invoketraced/"+bc.name, ops)
			// Like invoke/spread-warm#allocs, baseline these keys from a
			// -benchtime=200x run so CI's smoke pass compares like with
			// like (RunParallel's fixed setup cost is visible at 200x).
			recordInvokeBench("invoketraced/"+bc.name+"#allocs", apo)
		})
	}
}

// BenchmarkInvokeWithDeadline isolates the deadline watchdog's cost on
// the synchronous invoke path:
//
//   - disabled: no function/class/platform timeout — the warm path
//     stays a plain in-goroutine handler call.
//   - armed-1s: a generous (never-firing) 1s function deadline — every
//     invocation pays context.WithTimeout plus the watchdog goroutine
//     and outcome channel.
//
// The guarded gap between the two is the price of failure semantics on
// a hot object.
func BenchmarkInvokeWithDeadline(b *testing.B) {
	ctx := context.Background()
	setup := func(b *testing.B) *Platform {
		b.Helper()
		noServe := false
		plat, err := New(Config{Workers: 4, OpsPerMilliCPU: 1000, ServeObjectStore: &noServe})
		if err != nil {
			b.Fatal(err)
		}
		plat.Images().Register("img/dlbump", HandlerFunc(func(_ context.Context, task Task) (Result, error) {
			var n float64
			if raw, ok := task.State["n"]; ok {
				_ = json.Unmarshal(raw, &n)
			}
			out, _ := json.Marshal(n + 1)
			return Result{Output: out, State: map[string]json.RawMessage{"n": out}}, nil
		}))
		pkg := "classes:\n  - name: DL\n    keySpecs:\n      - name: n\n        kind: number\n        default: 0\n" +
			"    functions:\n      - name: free\n        image: img/dlbump\n" +
			"      - name: timed\n        image: img/dlbump\n        timeoutMs: 1000\n"
		if _, err := plat.DeployYAML(ctx, []byte(pkg)); err != nil {
			plat.Close()
			b.Fatal(err)
		}
		return plat
	}
	for _, bc := range []struct{ name, fn string }{
		{"disabled", "free"},
		{"armed-1s", "timed"},
	} {
		b.Run(bc.name, func(b *testing.B) {
			plat := setup(b)
			defer plat.Close()
			id, err := plat.CreateObject(ctx, "DL", "dl-0")
			if err != nil {
				b.Fatal(err)
			}
			if _, err := plat.Invoke(ctx, id, bc.fn, nil, nil); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := plat.Invoke(ctx, id, bc.fn, nil, nil); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			ops := float64(b.N) / b.Elapsed().Seconds()
			b.ReportMetric(ops, "ops/s")
			recordInvokeBench("invokedeadline/"+bc.name, ops)
		})
	}
}

// BenchmarkInvokeRouted measures the cluster-routed invocation path
// with lease-based ownership enabled (OwnershipLeaseTTL > 0), over the
// same warm 512-object working set as invoke/spread-warm:
//
//   - owner-local: every request enters at the object's owner node, so
//     routing adds one ownership admission up front plus the epoch
//     fence check at commit. This is the common case after the gateway
//     has steered a client to the owner, and the acceptance bar is
//     staying within ~10% of the ownership-disabled spread-warm path.
//   - forwarded: every request enters at a fixed non-owner node and
//     takes the single ingress→owner forwarding hop (ForwardLatency is
//     left at zero, so the measured delta over owner-local is the pure
//     re-admission and forwarding bookkeeping, not simulated wire
//     time).
func BenchmarkInvokeRouted(b *testing.B) {
	ctx := context.Background()
	run := func(name string, pickVia func(owner string, names []string) string) {
		b.Run(name, func(b *testing.B) {
			plat := setupHotPathPlatform(b, 250*time.Microsecond, ConcurrencyAdaptive, func(cfg *Config) {
				// A long TTL keeps heartbeat/sweep churn negligible
				// under measurement: this bench is about the per-invoke
				// admission + fence cost, not lease maintenance.
				cfg.OwnershipLeaseTTL = 5 * time.Second
			})
			defer plat.Close()
			mem := plat.Membership()
			if mem == nil {
				b.Fatal("ownership not enabled")
			}
			var names []string
			for _, m := range mem.Members() {
				names = append(names, m.Name)
			}
			const working = 512
			ids := make([]string, working)
			vias := make([]string, working)
			for i := range ids {
				id, err := plat.CreateObject(ctx, "Spread", fmt.Sprintf("spr-%04d", i))
				if err != nil {
					b.Fatal(err)
				}
				ids[i] = id
				// Warm every key so the measured loop is all memory hits.
				for k := 0; k < hotPathKeys; k++ {
					if err := plat.PutState(ctx, id, fmt.Sprintf("k%d", k), json.RawMessage(`{"v":1}`)); err != nil {
						b.Fatal(err)
					}
				}
				owner, ok := mem.Owner(id)
				if !ok {
					b.Fatalf("no owner for %s", id)
				}
				vias[i] = pickVia(owner, names)
			}
			b.ReportAllocs()
			b.SetParallelism(4)
			allocs := allocCounter()
			b.ResetTimer()
			var next atomic.Int64
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					i := int(next.Add(1))
					if _, _, err := plat.InvokeRoutedFrom(ctx, "", vias[i%working], ids[i%working], "touch", nil, nil); err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.StopTimer()
			apo := allocs(b.N)
			ops := float64(b.N) / b.Elapsed().Seconds()
			b.ReportMetric(ops, "ops/s")
			b.ReportMetric(apo, "allocs/op")
			recordInvokeBench("invokerouted/"+name, ops)
			// Like invoke/spread-warm#allocs, the snapshot key is
			// baselined from a -benchtime=200x run so the CI smoke run
			// compares like with like (the whole-process counter charges
			// RunParallel's fixed setup to the measurement).
			recordInvokeBench("invokerouted/"+name+"#allocs", apo)
		})
	}
	run("owner-local", func(owner string, _ []string) string { return owner })
	run("forwarded", func(owner string, names []string) string {
		for _, n := range names {
			if n != owner {
				return n
			}
		}
		return owner
	})
}

// --- Substrate micro-benchmarks --------------------------------------

// BenchmarkMicroYAMLDecode parses the paper's Listing 1.
func BenchmarkMicroYAMLDecode(b *testing.B) {
	src := []byte(`classes:
  - name: Image
    qos:
      throughput: 100
    constraint:
      persistent: true
    keySpecs:
      - name: image
        kind: file
    functions:
      - name: resize
        image: img/resize
  - name: LabelledImage
    parent: Image
    functions:
      - name: detectObject
        image: img/detect-object
`)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := yamlx.Decode(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMicroModelResolve flattens a three-level hierarchy.
func BenchmarkMicroModelResolve(b *testing.B) {
	pkg := &model.Package{Classes: []model.ClassDef{
		{Name: "A", Functions: []model.FunctionDef{{Name: "f1", Image: "i"}}},
		{Name: "B", Parent: "A", Functions: []model.FunctionDef{{Name: "f2", Image: "i"}}},
		{Name: "C", Parent: "B", Functions: []model.FunctionDef{{Name: "f1", Image: "j"}}},
	}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := model.Resolve(pkg, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMicroRingOwner measures consistent-hash lookup.
func BenchmarkMicroRingOwner(b *testing.B) {
	ring := memtable.NewRing(64)
	for i := 0; i < 12; i++ {
		ring.Add(fmt.Sprintf("vm-%02d", i))
	}
	keys := make([]string, 256)
	for i := range keys {
		keys[i] = fmt.Sprintf("state/Class/obj-%04d/key", i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ring.Owner(keys[i%len(keys)])
	}
}

// BenchmarkMicroKVStorePut measures the document store write path
// (unlimited capacity).
func BenchmarkMicroKVStorePut(b *testing.B) {
	s := kvstore.Open(kvstore.Config{})
	defer s.Close()
	ctx := context.Background()
	val := json.RawMessage(`{"seq":123,"score":4.5,"flag":true}`)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Put(ctx, fmt.Sprintf("k%05d", i%1024), val); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMicroMemtablePut measures the write-behind table's in-memory
// write path.
func BenchmarkMicroMemtablePut(b *testing.B) {
	db := kvstore.Open(kvstore.Config{})
	defer db.Close()
	tbl, err := memtable.New(memtable.Config{Mode: memtable.ModeWriteBehind, Backing: db, FlushInterval: time.Hour})
	if err != nil {
		b.Fatal(err)
	}
	defer tbl.Close()
	ctx := context.Background()
	val := json.RawMessage(`{"seq":123}`)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tbl.Put(ctx, fmt.Sprintf("k%05d", i%1024), val); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMicroPresign measures presigned-URL generation+verification.
func BenchmarkMicroPresign(b *testing.B) {
	s := objectstore.New("bench-secret", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q := s.Presign("GET", "bucket", "obj/key.png", time.Minute)
		if err := s.Verify("GET", "bucket", "obj/key.png", q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMicroInvokeTask measures the in-process pure-function
// offload path (task encode -> handler -> state merge).
func BenchmarkMicroInvokeTask(b *testing.B) {
	reg := invoker.NewRegistry()
	reg.Register("img/echo", invoker.HandlerFunc(func(_ context.Context, task invoker.Task) (invoker.Result, error) {
		return invoker.Result{Output: task.Payload, State: map[string]json.RawMessage{"k": task.Payload}}, nil
	}))
	local := invoker.NewLocal(reg)
	ctx := context.Background()
	task := invoker.Task{
		ID: "bench", Class: "C", Object: "o", Function: "f",
		State:   map[string]json.RawMessage{"k": json.RawMessage(`1`)},
		Payload: json.RawMessage(`{"x":1}`),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := local.Offload(ctx, "img/echo", task)
		if err != nil {
			b.Fatal(err)
		}
		_ = invoker.MergeState(task.State, res.State)
	}
}

// BenchmarkMicroDataflowCompile measures DAG validation+planning.
func BenchmarkMicroDataflowCompile(b *testing.B) {
	def := model.DataflowDef{Name: "d", Steps: []model.DataflowStep{
		{Name: "a", Function: "f"},
		{Name: "b", Function: "f", After: []string{"a"}},
		{Name: "c", Function: "f", After: []string{"a"}},
		{Name: "d", Function: "f", After: []string{"b", "c"}},
	}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := dataflow.Compile(def); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMicroEndToEndInvoke measures a full platform invocation
// (state load -> task bundle -> engine -> state merge) on a warm
// nonpersist deployment.
func BenchmarkMicroEndToEndInvoke(b *testing.B) {
	noServe := false
	tmpl := Template{
		Name:       "micro",
		EngineMode: EngineDeployment, TableMode: TableMemoryOnly,
		DefaultConcurrency: 64, InitialScale: 2, MaxScale: 16,
	}
	plat, err := New(Config{Workers: 2, OpsPerMilliCPU: 1000, Templates: []Template{tmpl}, ServeObjectStore: &noServe})
	if err != nil {
		b.Fatal(err)
	}
	defer plat.Close()
	plat.Images().Register("img/echo", HandlerFunc(func(_ context.Context, task Task) (Result, error) {
		return Result{Output: task.Payload}, nil
	}))
	ctx := context.Background()
	pkg := "classes:\n  - name: E\n    keySpecs:\n      - name: k\n        default: 0\n    functions:\n      - name: f\n        image: img/echo\n"
	if _, err := plat.DeployYAML(ctx, []byte(pkg)); err != nil {
		b.Fatal(err)
	}
	id, err := plat.CreateObject(ctx, "E", "")
	if err != nil {
		b.Fatal(err)
	}
	payload := json.RawMessage(`{"n":1}`)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plat.Invoke(ctx, id, "f", payload, nil); err != nil {
			b.Fatal(err)
		}
	}
}
