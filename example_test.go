package oaas_test

import (
	"context"
	"encoding/json"
	"fmt"
	"log"

	oaas "github.com/hpcclab/oparaca-go"
)

// Example shows the minimal OaaS flow: register function code, deploy
// a class, create an object, invoke a method, and read state.
func Example() {
	ctx := context.Background()
	platform, err := oaas.New(oaas.Config{Workers: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer platform.Close()

	platform.Images().Register("img/incr", oaas.HandlerFunc(
		func(_ context.Context, task oaas.Task) (oaas.Result, error) {
			var n float64
			if raw, ok := task.State["count"]; ok {
				if err := json.Unmarshal(raw, &n); err != nil {
					return oaas.Result{}, err
				}
			}
			out, _ := json.Marshal(n + 1)
			return oaas.Result{
				Output: out,
				State:  map[string]json.RawMessage{"count": out},
			}, nil
		}))

	if _, err := platform.DeployYAML(ctx, []byte(`classes:
  - name: Counter
    keySpecs:
      - name: count
        kind: number
        default: 0
    functions:
      - name: incr
        image: img/incr
`)); err != nil {
		log.Fatal(err)
	}

	counter, err := oaas.NewObject(ctx, platform, "Counter", "c1")
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := counter.Invoke(ctx, "incr", nil, nil); err != nil {
			log.Fatal(err)
		}
	}
	count, err := counter.State(ctx, "count")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(count))
	// Output: 2
}

// ExampleParseYAML demonstrates parsing the paper's Listing 1 class
// definition, including inheritance.
func ExampleParseYAML() {
	pkg, err := oaas.ParseYAML([]byte(`classes:
  - name: Image
    qos:
      throughput: 100
    functions:
      - name: resize
        image: img/resize
  - name: LabelledImage
    parent: Image
    functions:
      - name: detectObject
        image: img/detect-object
`))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(pkg.Classes[1].Name, "extends", pkg.Classes[1].Parent)
	// Output: LabelledImage extends Image
}

// ExampleMergeState shows the pure-function state-merge semantics:
// updates overwrite, null deletes, untouched keys persist.
func ExampleMergeState() {
	base := map[string]json.RawMessage{
		"keep":   json.RawMessage(`1`),
		"update": json.RawMessage(`2`),
		"drop":   json.RawMessage(`3`),
	}
	delta := map[string]json.RawMessage{
		"update": json.RawMessage(`20`),
		"drop":   json.RawMessage(`null`),
	}
	merged := oaas.MergeState(base, delta)
	fmt.Println(string(merged["keep"]), string(merged["update"]), len(merged))
	// Output: 1 20 2
}
