module github.com/hpcclab/oparaca-go

go 1.24
