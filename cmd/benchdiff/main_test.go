package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: github.com/hpcclab/oparaca-go
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkInvokeHotPath/spread-cold-reads         	    2134	   1114212 ns/op	       897.5 ops/s	    5291 B/op	      31 allocs/op
BenchmarkInvokeHotPath/spread-warm-8             	  431349	      5155 ns/op	    193997 ops/s	    1764 B/op	      20 allocs/op
BenchmarkInvokeHotPath/hot-object-readonly-w8-4  	   17586	    136242 ns/op	      7340 ops/s	    1404 B/op	      13 allocs/op
BenchmarkAsyncDrainThroughput/hot-object/w4/batch16-8  	     500	     80901 ns/op	     12361 ops/s
BenchmarkAsyncDrainThroughput/spread/w16/batch1          	     500	    500000 ns/op	      2000 ops/s
BenchmarkTriggerFanout/subs16-8                  	  100000	     10000 ns/op	        42 allocs/op	    100000 ops/s
BenchmarkEventLogAppend/batch16-8                	   50000	      2000 ns/op	   8000000 ops/s
BenchmarkEventLogReplay/page256-8                	   20000	      5000 ns/op	  51200000 ops/s
BenchmarkMicroKVStorePut-8                       	  999999	       500 ns/op
PASS
ok  	github.com/hpcclab/oparaca-go	23.751s
`

func TestParseOps(t *testing.T) {
	got, err := parseOps(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"invoke/spread-cold-reads":             897.5,
		"invoke/spread-cold-reads#allocs":      31,
		"invoke/spread-warm":                   193997,
		"invoke/spread-warm#allocs":            20,
		"invoke/hot-object-readonly-w8":        7340,
		"invoke/hot-object-readonly-w8#allocs": 13,
		"asyncdrain/hot-object/w4/batch16":     12361,
		"asyncdrain/spread/w16/batch1":         2000,
		"triggerfanout/subs16":                 100000,
		"triggerfanout/subs16#allocs":          42,
		"eventlog/append/batch16":              8000000,
		"eventlog/replay/page256":              51200000,
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d entries (%v), want %d", len(got), got, len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("%s = %v, want %v", k, got[k], v)
		}
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	snapshot := map[string]float64{
		"invoke/a": 1000,
		"invoke/b": 1000,
		"invoke/c": 1000,
	}
	measured := map[string]float64{
		"invoke/a": 900, // fine
		"invoke/b": 150, // >5x below
		// c missing entirely
	}
	regs := compare(snapshot, measured, 5)
	if len(regs) != 2 {
		t.Fatalf("regressions = %v, want 2 entries", regs)
	}
	if !strings.Contains(regs[0], "invoke/b") {
		t.Errorf("first regression %q should name invoke/b", regs[0])
	}
	if !strings.Contains(regs[1], "invoke/c") {
		t.Errorf("second regression %q should name invoke/c", regs[1])
	}
}

func TestCompareExactThresholdPasses(t *testing.T) {
	snapshot := map[string]float64{"invoke/a": 1000}
	// Exactly 1/5th of the snapshot is the boundary: not a regression.
	if regs := compare(snapshot, map[string]float64{"invoke/a": 200}, 5); len(regs) != 0 {
		t.Fatalf("boundary value flagged: %v", regs)
	}
	if regs := compare(snapshot, map[string]float64{"invoke/a": 199}, 5); len(regs) != 1 {
		t.Fatal("just-below-boundary value not flagged")
	}
}

func TestCompareAllocsKeysInvert(t *testing.T) {
	snapshot := map[string]float64{
		"triggerfanout/subs1#allocs": 40,
		"triggerfanout/subs1":        1000,
	}
	// Fewer allocs and faster ops: both fine.
	if regs := compare(snapshot, map[string]float64{
		"triggerfanout/subs1#allocs": 10,
		"triggerfanout/subs1":        5000,
	}, 5); len(regs) != 0 {
		t.Fatalf("improvement flagged: %v", regs)
	}
	// Exactly threshold x the alloc snapshot is the boundary: passes.
	if regs := compare(snapshot, map[string]float64{
		"triggerfanout/subs1#allocs": 200,
		"triggerfanout/subs1":        1000,
	}, 5); len(regs) != 0 {
		t.Fatalf("boundary allocs flagged: %v", regs)
	}
	// Above the boundary: the alloc key (and only it) regresses.
	regs := compare(snapshot, map[string]float64{
		"triggerfanout/subs1#allocs": 201,
		"triggerfanout/subs1":        1000,
	}, 5)
	if len(regs) != 1 || !strings.Contains(regs[0], "#allocs") {
		t.Fatalf("regressions = %v, want one #allocs entry", regs)
	}
}
