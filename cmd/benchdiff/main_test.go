package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: github.com/hpcclab/oparaca-go
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkInvokeHotPath/spread-cold-reads         	    2134	   1114212 ns/op	       897.5 ops/s	    5291 B/op	      31 allocs/op
BenchmarkInvokeHotPath/spread-warm-8             	  431349	      5155 ns/op	    193997 ops/s	    1764 B/op	      20 allocs/op
BenchmarkInvokeHotPath/hot-object-readonly-w8-4  	   17586	    136242 ns/op	      7340 ops/s	    1404 B/op	      13 allocs/op
BenchmarkAsyncDrainThroughput/hot-object/w4/batch16-8  	     500	     80901 ns/op	     12361 ops/s
BenchmarkAsyncDrainThroughput/spread/w16/batch1          	     500	    500000 ns/op	      2000 ops/s
BenchmarkTriggerFanout/subs16-8                  	  100000	     10000 ns/op	        42 allocs/op	    100000 ops/s
BenchmarkEventLogAppend/batch16-8                	   50000	      2000 ns/op	   8000000 ops/s
BenchmarkEventLogReplay/page256-8                	   20000	      5000 ns/op	  51200000 ops/s
BenchmarkMicroKVStorePut-8                       	  999999	       500 ns/op
PASS
ok  	github.com/hpcclab/oparaca-go	23.751s
`

func TestParseOps(t *testing.T) {
	got, err := parseOps(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"invoke/spread-cold-reads":             897.5,
		"invoke/spread-cold-reads#allocs":      31,
		"invoke/spread-warm":                   193997,
		"invoke/spread-warm#allocs":            20,
		"invoke/hot-object-readonly-w8":        7340,
		"invoke/hot-object-readonly-w8#allocs": 13,
		"asyncdrain/hot-object/w4/batch16":     12361,
		"asyncdrain/spread/w16/batch1":         2000,
		"triggerfanout/subs16":                 100000,
		"triggerfanout/subs16#allocs":          42,
		"eventlog/append/batch16":              8000000,
		"eventlog/replay/page256":              51200000,
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d entries (%v), want %d", len(got), got, len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("%s = %v, want %v", k, got[k], v)
		}
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	snapshot := map[string]float64{
		"invoke/a": 1000,
		"invoke/b": 1000,
		"invoke/c": 1000,
	}
	measured := map[string]float64{
		"invoke/a": 900, // fine
		"invoke/b": 150, // >5x below
		// c missing entirely
	}
	regs := compare(snapshot, measured, 5, 1.25, 8)
	if len(regs) != 2 {
		t.Fatalf("regressions = %v, want 2 entries", regs)
	}
	if !strings.Contains(regs[0], "invoke/b") {
		t.Errorf("first regression %q should name invoke/b", regs[0])
	}
	if !strings.Contains(regs[1], "invoke/c") {
		t.Errorf("second regression %q should name invoke/c", regs[1])
	}
}

func TestCompareExactThresholdPasses(t *testing.T) {
	snapshot := map[string]float64{"invoke/a": 1000}
	// Exactly 1/5th of the snapshot is the boundary: not a regression.
	if regs := compare(snapshot, map[string]float64{"invoke/a": 200}, 5, 1.25, 8); len(regs) != 0 {
		t.Fatalf("boundary value flagged: %v", regs)
	}
	if regs := compare(snapshot, map[string]float64{"invoke/a": 199}, 5, 1.25, 8); len(regs) != 1 {
		t.Fatal("just-below-boundary value not flagged")
	}
}

func TestCompareAllocsKeysInvert(t *testing.T) {
	snapshot := map[string]float64{
		"triggerfanout/subs1#allocs": 40,
		"triggerfanout/subs1":        1000,
	}
	// Fewer allocs and faster ops: both fine.
	if regs := compare(snapshot, map[string]float64{
		"triggerfanout/subs1#allocs": 10,
		"triggerfanout/subs1":        5000,
	}, 5, 1.25, 8); len(regs) != 0 {
		t.Fatalf("improvement flagged: %v", regs)
	}
	// Exactly allocsThreshold x the snapshot is the boundary: passes.
	// (40*1.25 = 50 > 40+8, so the factor governs here.)
	if regs := compare(snapshot, map[string]float64{
		"triggerfanout/subs1#allocs": 50,
		"triggerfanout/subs1":        1000,
	}, 5, 1.25, 8); len(regs) != 0 {
		t.Fatalf("boundary allocs flagged: %v", regs)
	}
	// Above the boundary: the alloc key (and only it) regresses, even
	// though its ops/s twin is exactly at snapshot.
	regs := compare(snapshot, map[string]float64{
		"triggerfanout/subs1#allocs": 51,
		"triggerfanout/subs1":        1000,
	}, 5, 1.25, 8)
	if len(regs) != 1 || !strings.Contains(regs[0], "#allocs") {
		t.Fatalf("regressions = %v, want one #allocs entry", regs)
	}
}

func TestCompareAllocsThresholdSeparateFromOps(t *testing.T) {
	// A wide ops/s threshold must not loosen the allocs guard: 2x the
	// alloc snapshot fails at allocsThreshold 1.25 even with the ops
	// factor at 5.
	snapshot := map[string]float64{"invoke/hot-object#allocs": 32}
	regs := compare(snapshot, map[string]float64{"invoke/hot-object#allocs": 64}, 5, 1.25, 8)
	if len(regs) != 1 {
		t.Fatalf("regressions = %v, want the 2x alloc growth flagged", regs)
	}
	if !strings.Contains(regs[0], "1.25x") {
		t.Errorf("regression %q should cite the allocs threshold factor", regs[0])
	}
}

func TestCompareAllocsSlackAbsorbsSmallCounts(t *testing.T) {
	// Near-zero snapshots get an absolute grace: 5 -> 12 allocs/op is
	// a 2.4x factor but within want+slack, so it passes...
	snapshot := map[string]float64{"invoke/spread-warm#allocs": 5}
	if regs := compare(snapshot, map[string]float64{"invoke/spread-warm#allocs": 12}, 5, 1.25, 8); len(regs) != 0 {
		t.Fatalf("within-slack growth flagged: %v", regs)
	}
	// ...and just past want+slack it fails.
	if regs := compare(snapshot, map[string]float64{"invoke/spread-warm#allocs": 14}, 5, 1.25, 8); len(regs) != 1 {
		t.Fatal("beyond-slack growth not flagged")
	}
}

func TestParseFamilyRegexes(t *testing.T) {
	// Every guarded family maps to its snapshot prefix; unguarded
	// benchmarks (Micro*, Figure3) never contribute keys.
	lines := map[string]string{
		"BenchmarkInvokeHotPath/hot-object-8  100  100 ns/op  500 ops/s":               "invoke/hot-object",
		"BenchmarkInvokeWithDeadline/armed-1s-8  100  100 ns/op  500 ops/s":            "invokedeadline/armed-1s",
		"BenchmarkAsyncDrainThroughput/spread/w4/batch16-8  100  100 ns/op  500 ops/s": "asyncdrain/spread/w4/batch16",
		"BenchmarkTriggerFanout/subs1-8  100  100 ns/op  500 ops/s":                    "triggerfanout/subs1",
		"BenchmarkEventLogAppend/single-8  100  100 ns/op  500 ops/s":                  "eventlog/append/single",
		"BenchmarkEventLogReplay/page256-8  100  100 ns/op  500 ops/s":                 "eventlog/replay/page256",
	}
	for line, key := range lines {
		got, err := parseOps(strings.NewReader(line + "\n"))
		if err != nil {
			t.Fatal(err)
		}
		if got[key] != 500 {
			t.Errorf("line %q: parsed %v, want key %q = 500", line, got, key)
		}
	}
	for _, line := range []string{
		"BenchmarkMicroKVStorePut-8  999999  500 ns/op  100 ops/s",
		"BenchmarkFigure3/oprc/vms-3-8  100  100 ns/op  500 ops/s",
	} {
		got, err := parseOps(strings.NewReader(line + "\n"))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 0 {
			t.Errorf("unguarded line %q parsed as %v", line, got)
		}
	}
}
