// Command benchdiff is the CI bench regression guard: it parses a `go
// test -bench` output stream, extracts every guarded sub-benchmark's
// ops/s metric (BenchmarkInvokeHotPath as "invoke/<sub>",
// BenchmarkInvokeTraced as "invoketraced/<sub>",
// BenchmarkInvokeRouted as "invokerouted/<sub>",
// BenchmarkAsyncDrainThroughput as "asyncdrain/<sub>",
// BenchmarkTriggerFanout as "triggerfanout/<sub>" and
// BenchmarkEventLogAppend/Replay as "eventlog/<sub>"), and compares
// it against the committed BENCH_invoke.json snapshot. A sub-benchmark
// running more than the threshold factor (default 5x) below its
// snapshot fails the run, as does a snapshot entry missing from the
// stream (a renamed or deleted benchmark means the snapshot is stale).
//
// Lines that also report an allocs/op figure contribute a second
// metric under "<key>#allocs". Allocation counts regress UPWARD, so
// the comparison inverts for those keys, and they get their own, much
// tighter factor: -allocs-threshold (default 1.25, i.e. a run fails
// when it allocates >25% more per op than the snapshot). Alloc counts
// are deterministic enough for a tight guard — no iteration-count
// noise — except at very small snapshot values, where whole-process
// counting picks up background goroutine allocations; -allocs-slack
// (default 8) is the absolute allocs/op grace that absorbs this: a
// key only regresses when it exceeds BOTH want*allocsThreshold and
// want+allocsSlack.
//
// The smoke run feeding it should use a small fixed iteration count
// (e.g. -benchtime=200x): enough iterations to amortize first-call
// effects and let the multi-worker sub-benchmarks actually overlap,
// while staying a few seconds of CI time. The wide threshold absorbs
// the remaining smoke-run noise; only order-of-magnitude regressions
// — a serialization bug on the hot path, an accidental O(n) — trip it.
//
// Usage:
//
//	go test -bench='InvokeHotPath|InvokeTraced|InvokeRouted|AsyncDrainThroughput|TriggerFanout|EventLogAppend|EventLogReplay' -benchtime=200x -run='^$' . > bench.out
//	go run ./cmd/benchdiff -snapshot BENCH_invoke.json bench.out
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// benchLine matches one guarded benchmark result line and captures the
// benchmark family, the sub-benchmark name and its ops/s metric, e.g.
//
//	BenchmarkInvokeHotPath/hot-object-8  1234  567 ns/op  890 ops/s
//	BenchmarkAsyncDrainThroughput/hot-object/w4/batch16-8  500  80901 ns/op  12361 ops/s
var benchLine = regexp.MustCompile(`^Benchmark(InvokeHotPath|InvokeTraced|InvokeWithDeadline|InvokeRouted|AsyncDrainThroughput|TriggerFanout|EventLogAppend|EventLogReplay)/(\S+)\s.*?([0-9.]+(?:e[+-]?[0-9]+)?) ops/s`)

// allocsMetric matches the allocs/op figure on a result line (either
// testing's builtin -benchmem column or a ReportMetric override).
var allocsMetric = regexp.MustCompile(`([0-9.]+(?:e[+-]?[0-9]+)?) allocs/op`)

// snapshotPrefix maps a benchmark family to its snapshot key prefix.
var snapshotPrefix = map[string]string{
	"InvokeHotPath":        "invoke/",
	"InvokeTraced":         "invoketraced/",
	"InvokeWithDeadline":   "invokedeadline/",
	"InvokeRouted":         "invokerouted/",
	"AsyncDrainThroughput": "asyncdrain/",
	"TriggerFanout":        "triggerfanout/",
	"EventLogAppend":       "eventlog/append/",
	"EventLogReplay":       "eventlog/replay/",
}

// procSuffix is the -GOMAXPROCS suffix the testing package appends to
// parallel benchmark names when GOMAXPROCS > 1.
var procSuffix = regexp.MustCompile(`-[0-9]+$`)

// parseOps extracts "<prefix>/<sub>" -> ops/s from bench output, plus
// "<prefix>/<sub>#allocs" -> allocs/op where the line reports one.
func parseOps(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := procSuffix.ReplaceAllString(m[2], "")
		ops, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("benchdiff: bad ops/s %q on %q: %w", m[3], name, err)
		}
		key := snapshotPrefix[m[1]] + name
		out[key] = ops
		if am := allocsMetric.FindStringSubmatch(line); am != nil {
			if allocs, err := strconv.ParseFloat(am[1], 64); err == nil {
				out[key+"#allocs"] = allocs
			}
		}
	}
	return out, sc.Err()
}

// compare checks every snapshot entry against the measured run and
// returns human-readable regression reports (empty means pass).
// threshold guards ops/s keys (downward); allocsThreshold and
// allocsSlack guard #allocs keys (upward, see the package comment).
func compare(snapshot, measured map[string]float64, threshold, allocsThreshold, allocsSlack float64) []string {
	keys := make([]string, 0, len(snapshot))
	for k := range snapshot {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var regressions []string
	for _, k := range keys {
		want := snapshot[k]
		got, ok := measured[k]
		if !ok {
			regressions = append(regressions,
				fmt.Sprintf("%s: missing from bench output (stale snapshot or renamed benchmark)", k))
			continue
		}
		if want <= 0 {
			continue
		}
		if strings.HasSuffix(k, "#allocs") {
			// Allocation counts regress upward: fail when the run
			// allocates more than allocsThreshold x the snapshot,
			// with an absolute slack floor for near-zero snapshots.
			limit := want * allocsThreshold
			if floor := want + allocsSlack; floor > limit {
				limit = floor
			}
			if got > limit {
				regressions = append(regressions,
					fmt.Sprintf("%s: %.1f allocs/op exceeds snapshot %.1f allocs/op by more than %.2fx (limit %.1f)", k, got, want, allocsThreshold, limit))
			}
			continue
		}
		if got < want/threshold {
			regressions = append(regressions,
				fmt.Sprintf("%s: %.1f ops/s is more than %.0fx below snapshot %.1f ops/s", k, got, threshold, want))
		}
	}
	return regressions
}

func run() error {
	snapshotPath := flag.String("snapshot", "BENCH_invoke.json", "committed snapshot to compare against")
	threshold := flag.Float64("threshold", 5, "maximum tolerated ops/s slowdown factor vs the snapshot")
	allocsThreshold := flag.Float64("allocs-threshold", 1.25, "maximum tolerated allocs/op growth factor vs the snapshot (#allocs keys)")
	allocsSlack := flag.Float64("allocs-slack", 8, "absolute allocs/op grace added to small snapshots before the growth factor trips")
	flag.Parse()
	raw, err := os.ReadFile(*snapshotPath)
	if err != nil {
		return fmt.Errorf("benchdiff: reading snapshot: %w", err)
	}
	var snapshot map[string]float64
	if err := json.Unmarshal(raw, &snapshot); err != nil {
		return fmt.Errorf("benchdiff: decoding snapshot: %w", err)
	}
	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			return fmt.Errorf("benchdiff: %w", err)
		}
		defer f.Close()
		in = f
	}
	measured, err := parseOps(in)
	if err != nil {
		return err
	}
	if len(measured) == 0 {
		return fmt.Errorf("benchdiff: no guarded benchmark results in input")
	}
	for _, k := range sortedKeys(measured) {
		unit := "ops/s"
		if strings.HasSuffix(k, "#allocs") {
			unit = "allocs/op"
		}
		if want, ok := snapshot[k]; ok {
			fmt.Printf("%-38s %12.1f %s  (snapshot %12.1f, %5.2fx)\n", k, measured[k], unit, want, measured[k]/want)
		} else {
			fmt.Printf("%-38s %12.1f %s  (no snapshot entry)\n", k, measured[k], unit)
		}
	}
	if regs := compare(snapshot, measured, *threshold, *allocsThreshold, *allocsSlack); len(regs) > 0 {
		for _, r := range regs {
			fmt.Fprintln(os.Stderr, "REGRESSION:", r)
		}
		return fmt.Errorf("benchdiff: %d regression(s)", len(regs))
	}
	fmt.Printf("benchdiff: %d benchmarks within %.0fx ops/s, %.2fx allocs of snapshot\n", len(measured), *threshold, *allocsThreshold)
	return nil
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
