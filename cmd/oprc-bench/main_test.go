package main

import "testing"

func TestParseWorkers(t *testing.T) {
	cases := []struct {
		in   string
		want []int
		ok   bool
	}{
		{"3,6,9,12", []int{3, 6, 9, 12}, true},
		{" 2 , 4 ", []int{2, 4}, true},
		{"5", []int{5}, true},
		{"", nil, false},
		{"a,b", nil, false},
		{"0", nil, false},
		{"-3", nil, false},
	}
	for _, c := range cases {
		got, err := parseWorkers(c.in)
		if c.ok != (err == nil) {
			t.Errorf("parseWorkers(%q) err = %v", c.in, err)
			continue
		}
		if !c.ok {
			continue
		}
		if len(got) != len(c.want) {
			t.Errorf("parseWorkers(%q) = %v", c.in, got)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("parseWorkers(%q)[%d] = %d, want %d", c.in, i, got[i], c.want[i])
			}
		}
	}
}
