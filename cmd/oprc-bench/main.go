// Command oprc-bench regenerates the paper's evaluation.
//
// Experiments:
//
//	figure3    – scalability sweep (paper §V, Figure 3): throughput of
//	             knative / oprc / oprc-bypass / oprc-bypass-nonpersist
//	             over 3..12 worker VMs.
//	batch      – ablation A1: DB write amplification of write-through
//	             vs write-behind batch consolidation.
//	coldstart  – ablation A2: cold vs warm invocation latency under
//	             scale-to-zero.
//	dataflow   – ablation A3: parallel fan-out vs sequential chain.
//	locality   – ablation A4: state co-located in the class runtime vs
//	             fetched from the remote document store.
//	templates  – ablation A5: requirement-driven template selection.
//	multiregion – ablation A6: multi-datacenter deployment (the paper's
//	             §VI future work): jurisdiction-pinned placement and
//	             cross-region invocation latency.
//	all        – everything above.
//
// Usage:
//
//	oprc-bench -exp figure3 [-duration 1.5s] [-concurrency 256] \
//	           [-workers 3,6,9,12] [-db-cap 6500] [-json]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/hpcclab/oparaca-go/internal/experiment"
	"github.com/hpcclab/oparaca-go/internal/metrics"
)

func main() {
	var (
		exp         = flag.String("exp", "figure3", "experiment: figure3|batch|coldstart|dataflow|locality|templates|multiregion|all")
		duration    = flag.Duration("duration", 1500*time.Millisecond, "measured duration per point")
		warmup      = flag.Duration("warmup", 500*time.Millisecond, "warmup before each point")
		concurrency = flag.Int("concurrency", 256, "closed-loop client count")
		workers     = flag.String("workers", "3,6,9,12", "comma-separated VM counts for figure3")
		dbCap       = flag.Float64("db-cap", 6500, "document store write ops/sec ceiling")
		objects     = flag.Int("objects", 128, "distinct objects targeted by the workload")
		asJSON      = flag.Bool("json", false, "emit JSON instead of tables")
	)
	flag.Parse()

	params := experiment.DefaultParams()
	params.Duration = *duration
	params.Warmup = *warmup
	params.Concurrency = *concurrency
	params.DBWriteOpsPerSec = *dbCap
	params.Objects = *objects
	ws, err := parseWorkers(*workers)
	if err != nil {
		fatal(err)
	}
	params.Workers = ws

	ctx := context.Background()
	run := func(name string) {
		switch name {
		case "figure3":
			runFigure3(ctx, params, *asJSON)
		case "batch":
			runBatch(ctx, params, *asJSON)
		case "coldstart":
			runColdStart(ctx, *asJSON)
		case "dataflow":
			runDataflow(ctx, *asJSON)
		case "locality":
			runLocality(ctx, *asJSON)
		case "templates":
			runTemplates(ctx, *asJSON)
		case "multiregion":
			runMultiRegion(ctx, *asJSON)
		default:
			fatal(fmt.Errorf("unknown experiment %q", name))
		}
	}
	if *exp == "all" {
		for _, name := range []string{"figure3", "batch", "coldstart", "dataflow", "locality", "templates", "multiregion"} {
			run(name)
		}
		return
	}
	run(*exp)
}

func parseWorkers(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad worker count %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no worker counts given")
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "oprc-bench:", err)
	os.Exit(1)
}

func emitJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func runFigure3(ctx context.Context, p experiment.Params, asJSON bool) {
	rows, err := experiment.RunFigure3(ctx, p)
	if err != nil {
		fatal(err)
	}
	if asJSON {
		emitJSON(rows)
		return
	}
	fmt.Println("== Figure 3: Oparaca scalability vs Knative (JSON randomization app) ==")
	fmt.Printf("%-24s %8s %14s %12s %12s\n", "system", "workers", "ops/sec", "p95", "db writes")
	for _, r := range rows {
		fmt.Printf("%-24s %8d %14s %12s %12d\n",
			r.System, r.Workers, metrics.FormatRate(r.ThroughputOPS), r.P95.Round(time.Millisecond), r.DBWriteOps)
	}
	fmt.Println()
}

func runBatch(ctx context.Context, p experiment.Params, asJSON bool) {
	rows, err := experiment.RunBatchAblation(ctx, p)
	if err != nil {
		fatal(err)
	}
	if asJSON {
		emitJSON(rows)
		return
	}
	fmt.Println("== Ablation A1: write-behind batch consolidation (9 VMs) ==")
	fmt.Printf("%-20s %14s %22s\n", "config", "ops/sec", "db writes / 1k ops")
	for _, r := range rows {
		fmt.Printf("%-20s %14s %22.1f\n", r.Config, metrics.FormatRate(r.ThroughputOPS), r.DBWritesPer1kOp)
	}
	fmt.Println()
}

func runColdStart(ctx context.Context, asJSON bool) {
	row, err := experiment.RunColdStartAblation(ctx, 5, 100*time.Millisecond)
	if err != nil {
		fatal(err)
	}
	if asJSON {
		emitJSON(row)
		return
	}
	fmt.Println("== Ablation A2: scale-to-zero cold starts ==")
	fmt.Printf("cold p50: %-12s warm p50: %-12s cold starts: %d over %d rounds\n\n",
		row.ColdP50.Round(time.Millisecond), row.WarmP50.Round(time.Microsecond), row.ColdStarts, row.Rounds)
}

func runDataflow(ctx context.Context, asJSON bool) {
	rows, err := experiment.RunDataflowAblation(ctx, 4, 20*time.Millisecond, 5)
	if err != nil {
		fatal(err)
	}
	if asJSON {
		emitJSON(rows)
		return
	}
	fmt.Println("== Ablation A3: dataflow parallelism (width 4, 20ms steps) ==")
	for _, r := range rows {
		fmt.Printf("%-22s %2d steps  mean %s\n", r.Shape, r.Steps, r.MeanTime.Round(time.Millisecond))
	}
	fmt.Println()
}

func runLocality(ctx context.Context, asJSON bool) {
	row, err := experiment.RunLocalityAblation(ctx, 64, 5*time.Millisecond)
	if err != nil {
		fatal(err)
	}
	if asJSON {
		emitJSON(row)
		return
	}
	fmt.Println("== Ablation A4: data locality (co-located state vs remote DB read) ==")
	fmt.Printf("cold (read-through) p50: %-12s warm (co-located) p50: %-12s hits=%d misses=%d\n\n",
		row.ColdP50.Round(time.Microsecond), row.WarmP50.Round(time.Microsecond), row.Hits, row.Misses)
}

func runTemplates(ctx context.Context, asJSON bool) {
	rows, err := experiment.RunTemplateAblation(ctx, 700*time.Millisecond, 128)
	if err != nil {
		fatal(err)
	}
	if asJSON {
		emitJSON(rows)
		return
	}
	fmt.Println("== Ablation A5: requirement-driven template selection ==")
	fmt.Printf("%-16s %-18s %12s %14s %12s %8s\n", "class", "template", "required", "ops/sec", "p95", "meets")
	for _, r := range rows {
		req := "-"
		if r.RequiredRPS > 0 {
			req = metrics.FormatRate(r.RequiredRPS)
		}
		fmt.Printf("%-16s %-18s %12s %14s %12s %8v\n",
			r.Class, r.Template, req, metrics.FormatRate(r.ThroughputOPS), r.P95.Round(time.Millisecond), r.MeetsQoS)
	}
	fmt.Println()
}

func runMultiRegion(ctx context.Context, asJSON bool) {
	row, err := experiment.RunMultiRegionAblation(ctx, 25*time.Millisecond, 50)
	if err != nil {
		fatal(err)
	}
	if asJSON {
		emitJSON(row)
		return
	}
	fmt.Println("== Ablation A6: multi-datacenter deployment (jurisdiction + latency) ==")
	fmt.Printf("home region: %s  placement compliant: %v\n", row.HomeRegion, row.PlacementCompliant)
	fmt.Printf("same-region mean: %-12s cross-region mean: %-12s (configured RTT %s)\n\n",
		row.LocalMean.Round(time.Microsecond), row.RemoteMean.Round(time.Millisecond), row.InterRegionRTT)
}
