// Command ocli is the Oparaca command-line client (paper §IV step 2:
// "Oparaca includes the CLI to facilitate the Oparaca API
// interaction"). It speaks the REST gateway served by cmd/oparaca.
//
// Usage:
//
//	ocli [-s http://localhost:8020] <command> [args]
//
// Commands:
//
//	apply <package.yaml|json>          deploy a class package
//	classes                            list deployed classes
//	class <name>                       show a resolved class
//	create <class> [id]                create an object
//	objects [class]                    list objects
//	object <id>                        show an object's class
//	delete <id>                        delete an object
//	invoke <id> <fn> [-d payload] [-a k=v]... [-t 0]   invoke a method/dataflow
//	                                   (-t sets a per-request deadline)
//	invoke-async <id> <fn> [-d payload] [-a k=v]... [-t 0]  enqueue an async invocation
//	invocation <id>                    poll one async invocation record
//	invoke-wait <invocation-id> [-t 30s]  poll until completed/failed/expired
//	state-get <id> <key>               read a structured state key
//	state-set <id> <key> <json>        write a structured state key
//	file-url <id> <key> [GET|PUT|DELETE]  presigned URL for a file key
//	triggers                           list dynamic trigger subscriptions
//	subscribe <name> -class C -on EV [-prefix P] [-object O] [-fn F] [-url U]
//	                                   add/replace a trigger subscription
//	unsubscribe <name>                 remove a trigger subscription
//	tail <id> [-n max] [-t 30s] [-from N]  stream an object's events (SSE);
//	                                   -from replays stored history from offset N
//	traces [-n max]                    list kept invocation traces (newest first)
//	trace <trace-id|invocation-id>     show one kept trace (by trace ID, or by
//	                                   the async invocation ID it carried)
//	stats                              platform statistics
//	health                             readiness probe (breaker state, queue
//	                                   depth, trigger backlog); exits 1 when
//	                                   the platform is degraded or saturated
//	actions                            optimizer decision log
//	cluster                            ownership layer: live members, lease
//	                                   ages, epoch, failover counters
//
// The server address can also be set via the OPARACA_URL environment
// variable.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"
)

func main() {
	server := flag.String("s", envOr("OPARACA_URL", "http://localhost:8020"), "gateway base URL")
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	c := &client{base: strings.TrimRight(*server, "/")}
	if err := c.dispatch(args); err != nil {
		fmt.Fprintln(os.Stderr, "ocli:", err)
		os.Exit(1)
	}
}

func envOr(key, def string) string {
	if v := os.Getenv(key); v != "" {
		return v
	}
	return def
}

func usage() {
	fmt.Fprintf(os.Stderr, `ocli — Oparaca CLI

usage: ocli [-s http://localhost:8020] <command> [args]

commands:
  apply <package.yaml|json>
  classes | class <name>
  create <class> [id] | objects [class] | object <id> | delete <id>
  invoke <id> <fn> [-d payload] [-a k=v]... [-t deadline]
  invoke-async <id> <fn> [-d payload] [-a k=v]... [-t deadline]
  invocation <id> | invoke-wait <invocation-id> [-t 30s]
  state-get <id> <key> | state-set <id> <key> <json>
  file-url <id> <key> [GET|PUT|DELETE]
  triggers | subscribe <name> -class C -on EV [-prefix P] [-object O] [-fn F] [-url U]
  unsubscribe <name> | tail <id> [-n max] [-t 30s] [-from offset]
  traces [-n max] | trace <trace-id|invocation-id>
  stats | health | actions | cluster
`)
}

type client struct {
	base string
}

// dispatch routes one CLI invocation.
func (c *client) dispatch(args []string) error {
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "apply":
		return c.apply(rest)
	case "classes":
		return c.getAndPrint("/api/classes")
	case "class":
		if len(rest) != 1 {
			return fmt.Errorf("usage: class <name>")
		}
		return c.getAndPrint("/api/classes/" + url.PathEscape(rest[0]))
	case "create":
		return c.create(rest)
	case "objects":
		path := "/api/objects"
		if len(rest) == 1 {
			path += "?class=" + url.QueryEscape(rest[0])
		}
		return c.getAndPrint(path)
	case "object":
		if len(rest) != 1 {
			return fmt.Errorf("usage: object <id>")
		}
		return c.getAndPrint("/api/objects/" + url.PathEscape(rest[0]))
	case "delete":
		if len(rest) != 1 {
			return fmt.Errorf("usage: delete <id>")
		}
		return c.request(http.MethodDelete, "/api/objects/"+url.PathEscape(rest[0]), "", nil, nil)
	case "invoke":
		return c.invoke(rest, false)
	case "invoke-async":
		return c.invoke(rest, true)
	case "invocation":
		if len(rest) != 1 {
			return fmt.Errorf("usage: invocation <id>")
		}
		return c.getAndPrint("/api/invocations/" + url.PathEscape(rest[0]))
	case "invoke-wait":
		return c.invokeWait(rest)
	case "state-get":
		if len(rest) != 2 {
			return fmt.Errorf("usage: state-get <id> <key>")
		}
		return c.getAndPrint(fmt.Sprintf("/api/objects/%s/state/%s", url.PathEscape(rest[0]), url.PathEscape(rest[1])))
	case "state-set":
		if len(rest) != 3 {
			return fmt.Errorf("usage: state-set <id> <key> <json>")
		}
		return c.request(http.MethodPut,
			fmt.Sprintf("/api/objects/%s/state/%s", url.PathEscape(rest[0]), url.PathEscape(rest[1])),
			"application/json", []byte(rest[2]), nil)
	case "file-url":
		return c.fileURL(rest)
	case "triggers":
		return c.getAndPrint("/api/triggers")
	case "subscribe":
		return c.subscribe(rest)
	case "unsubscribe":
		if len(rest) != 1 {
			return fmt.Errorf("usage: unsubscribe <name>")
		}
		return c.request(http.MethodDelete, "/api/triggers/"+url.PathEscape(rest[0]), "", nil, nil)
	case "tail":
		return c.tail(rest)
	case "traces":
		return c.traces(rest)
	case "trace":
		return c.trace(rest)
	case "stats":
		return c.getAndPrint("/api/stats")
	case "cluster":
		return c.getAndPrint("/api/cluster")
	case "health":
		return c.health()
	case "actions":
		return c.getAndPrint("/api/optimizer/actions")
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// apply deploys a package file.
func (c *client) apply(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: apply <package.yaml|json>")
	}
	raw, err := os.ReadFile(args[0])
	if err != nil {
		return err
	}
	ct := "application/yaml"
	if strings.EqualFold(filepath.Ext(args[0]), ".json") {
		ct = "application/json"
	}
	return c.request(http.MethodPost, "/api/packages", ct, raw, printJSON)
}

// create makes an object.
func (c *client) create(args []string) error {
	if len(args) < 1 || len(args) > 2 {
		return fmt.Errorf("usage: create <class> [id]")
	}
	body := map[string]string{"class": args[0]}
	if len(args) == 2 {
		body["id"] = args[1]
	}
	raw, _ := json.Marshal(body)
	return c.request(http.MethodPost, "/api/objects", "application/json", raw, printJSON)
}

// invoke calls a method; -d sets the payload, repeated -a k=v set args.
// async routes through the fire-and-poll endpoint, printing the
// invocation ID instead of blocking on the result.
func (c *client) invoke(args []string, async bool) error {
	verb := "invoke"
	if async {
		verb = "invoke-async"
	}
	fs := flag.NewFlagSet(verb, flag.ContinueOnError)
	payload := fs.String("d", "", "JSON payload")
	timeout := fs.Duration("t", 0, "per-request invocation deadline (0 = class/platform default)")
	var kvs multiFlag
	fs.Var(&kvs, "a", "invocation arg k=v (repeatable)")
	// Positional args come first: <id> <fn>.
	if len(args) < 2 {
		return fmt.Errorf("usage: %s <id> <fn> [-d payload] [-a k=v]...", verb)
	}
	id, fn := args[0], args[1]
	if err := fs.Parse(args[2:]); err != nil {
		return err
	}
	q := url.Values{}
	for _, kv := range kvs {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return fmt.Errorf("bad -a %q (want k=v)", kv)
		}
		q.Set(k, v)
	}
	if *timeout > 0 {
		q.Set("timeoutMs", strconv.FormatInt(timeout.Milliseconds(), 10))
	}
	path := fmt.Sprintf("/api/objects/%s/%s/%s", url.PathEscape(id), verb, url.PathEscape(fn))
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	return c.request(http.MethodPost, path, "application/json", []byte(*payload), printJSON)
}

// invokeWait blocks on an invocation record until it reaches a
// terminal status or the -t timeout elapses, then prints the final
// record. It rides the gateway's long-poll (?waitMs=N): each request
// parks server-side until the record goes terminal or the bounded wait
// elapses, so no client-side sleep loop burns requests.
func (c *client) invokeWait(args []string) error {
	fs := flag.NewFlagSet("invoke-wait", flag.ContinueOnError)
	timeout := fs.Duration("t", 30*time.Second, "polling timeout")
	if len(args) < 1 {
		return fmt.Errorf("usage: invoke-wait <invocation-id> [-t 30s]")
	}
	id := args[0]
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	// Per-request waits stay under the gateway's 30s long-poll cap; the
	// loop re-arms until the overall -t budget runs out.
	const maxWait = 10 * time.Second
	deadline := time.Now().Add(*timeout)
	for {
		wait := min(maxWait, time.Until(deadline))
		if wait < 0 {
			wait = 0
		}
		path := fmt.Sprintf("/api/invocations/%s?waitMs=%d", url.PathEscape(id), wait.Milliseconds())
		var status string
		var raw []byte
		err := c.request(http.MethodGet, path, "", nil, func(body []byte) {
			raw = body
			var rec struct {
				Status string `json:"status"`
			}
			if json.Unmarshal(body, &rec) == nil {
				status = rec.Status
			}
		})
		if err != nil {
			return err
		}
		if status == "completed" || status == "failed" || status == "expired" {
			printJSON(raw)
			return nil
		}
		if !time.Now().Before(deadline) {
			return fmt.Errorf("invocation %s still %q after %v", id, status, *timeout)
		}
	}
}

// subscribe adds or replaces a named trigger subscription: -class and
// -on select the events, -fn/-object route them to a method (the
// data-triggered chain) or -url to a webhook.
func (c *client) subscribe(args []string) error {
	fs := flag.NewFlagSet("subscribe", flag.ContinueOnError)
	class := fs.String("class", "", "emitting class (required)")
	on := fs.String("on", "", "event: stateChanged | invocationCompleted | invocationFailed")
	prefix := fs.String("prefix", "", "state-key prefix filter (stateChanged only)")
	object := fs.String("object", "", "target object id (default: the emitting object)")
	fn := fs.String("fn", "", "target method (data-triggered chaining)")
	hook := fs.String("url", "", "webhook URL")
	if len(args) < 1 {
		return fmt.Errorf("usage: subscribe <name> -class C -on EV [-prefix P] [-object O] [-fn F] [-url U]")
	}
	name := args[0]
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	body, _ := json.Marshal(map[string]string{
		"class": *class, "type": *on, "keyPrefix": *prefix,
		"targetObject": *object, "targetFunction": *fn, "webhook": *hook,
	})
	return c.request(http.MethodPut, "/api/triggers/"+url.PathEscape(name), "application/json", body, printJSON)
}

// tail streams an object's events over the gateway's SSE feed,
// printing one JSON event per line until -n events arrived, the -t
// timeout elapsed, or the server closed the stream. With -from N the
// gateway first replays retained event-log history starting at
// offset N, then continues live.
func (c *client) tail(args []string) error {
	fs := flag.NewFlagSet("tail", flag.ContinueOnError)
	max := fs.Int("n", 0, "stop after this many events (0 = until timeout)")
	timeout := fs.Duration("t", 30*time.Second, "stream duration")
	from := fs.Int64("from", 0, "replay stored events from this offset (0 = live only)")
	if len(args) < 1 {
		return fmt.Errorf("usage: tail <object-id> [-n max] [-t 30s] [-from offset]")
	}
	id := args[0]
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	target := c.base + "/api/objects/" + url.PathEscape(id) + "/events"
	if *from > 0 {
		target += "?fromOffset=" + strconv.FormatInt(*from, 10)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, target, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(raw)))
	}
	seen := 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		fmt.Println(strings.TrimPrefix(line, "data: "))
		if seen++; *max > 0 && seen >= *max {
			return nil
		}
	}
	if err := sc.Err(); err != nil && ctx.Err() == nil {
		return err
	}
	return nil
}

// traces lists kept invocation traces, newest first.
func (c *client) traces(args []string) error {
	fs := flag.NewFlagSet("traces", flag.ContinueOnError)
	max := fs.Int("n", 0, "cap the number of traces returned (0 = all retained)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	path := "/api/traces"
	if *max > 0 {
		path += "?n=" + strconv.Itoa(*max)
	}
	return c.getAndPrint(path)
}

// trace shows one kept trace: the argument is tried as a hex trace ID
// first, then as an async invocation ID (the gateway indexes kept
// traces both ways).
func (c *client) trace(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: trace <trace-id|invocation-id>")
	}
	id := url.PathEscape(args[0])
	if err := c.getAndPrint("/api/traces/" + id); err == nil {
		return nil
	}
	return c.getAndPrint("/api/invocations/" + id + "/trace")
}

// health probes GET /readyz and prints the readiness report. Unlike
// the generic request helper it prints the body even on 503 — the
// report (breaker state, queue depth, trigger backlog) is the point —
// and signals not-ready through the exit status for scripts.
func (c *client) health() error {
	resp, err := http.Get(c.base + "/readyz")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	printJSON(raw)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("not ready (HTTP %d)", resp.StatusCode)
	}
	return nil
}

// fileURL prints a presigned URL.
func (c *client) fileURL(args []string) error {
	if len(args) < 2 || len(args) > 3 {
		return fmt.Errorf("usage: file-url <id> <key> [GET|PUT|DELETE]")
	}
	method := "GET"
	if len(args) == 3 {
		method = strings.ToUpper(args[2])
	}
	path := fmt.Sprintf("/api/objects/%s/files/%s/url?method=%s",
		url.PathEscape(args[0]), url.PathEscape(args[1]), url.QueryEscape(method))
	return c.getAndPrint(path)
}

// multiFlag collects repeated flag values.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(s string) error { *m = append(*m, s); return nil }

// getAndPrint issues a GET and pretty-prints the JSON response.
func (c *client) getAndPrint(path string) error {
	return c.request(http.MethodGet, path, "", nil, printJSON)
}

// request performs one HTTP call; non-2xx responses become errors
// carrying the server's error message.
func (c *client) request(method, path, contentType string, body []byte, onOK func([]byte)) error {
	req, err := http.NewRequest(method, c.base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(raw, &e) == nil && e.Error != "" {
			return fmt.Errorf("%s (HTTP %d)", e.Error, resp.StatusCode)
		}
		return fmt.Errorf("HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(raw)))
	}
	if onOK != nil && len(raw) > 0 {
		onOK(raw)
	}
	return nil
}

// printJSON pretty-prints a JSON body.
func printJSON(raw []byte) {
	var buf bytes.Buffer
	if err := json.Indent(&buf, raw, "", "  "); err != nil {
		fmt.Println(strings.TrimSpace(string(raw)))
		return
	}
	fmt.Println(buf.String())
}
