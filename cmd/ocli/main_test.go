package main

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/hpcclab/oparaca-go/internal/core"
	"github.com/hpcclab/oparaca-go/internal/gateway"
	"github.com/hpcclab/oparaca-go/internal/invoker"
)

// newServer stands up a platform+gateway and returns a CLI client
// pointed at it.
func newServer(t *testing.T) *client {
	t.Helper()
	p, err := core.New(core.Config{Workers: 2, ColdStart: time.Millisecond, IdleTimeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	p.Images().Register("img/echo", invoker.HandlerFunc(func(_ context.Context, task invoker.Task) (invoker.Result, error) {
		out, _ := json.Marshal(map[string]any{"payload": string(task.Payload), "args": task.Args})
		return invoker.Result{Output: out, State: map[string]json.RawMessage{"last": task.Payload}}, nil
	}))
	srv := httptest.NewServer(gateway.New(p))
	t.Cleanup(srv.Close)
	return &client{base: srv.URL}
}

const cliPackage = `classes:
  - name: Echoer
    keySpecs:
      - name: last
      - name: blob
        kind: file
    functions:
      - name: echo
        image: img/echo
`

// writePackage writes the test package to a temp file.
func writePackage(t *testing.T, ext string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "pkg"+ext)
	content := cliPackage
	if ext == ".json" {
		raw := map[string]any{"classes": []any{map[string]any{
			"name": "Echoer",
			"functions": []any{
				map[string]any{"name": "echo", "image": "img/echo"},
			},
		}}}
		b, _ := json.Marshal(raw)
		content = string(b)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// captureStdout runs f with os.Stdout redirected and returns output.
func captureStdout(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	ferr := f()
	w.Close()
	os.Stdout = old
	buf := make([]byte, 1<<16)
	n, _ := r.Read(buf)
	r.Close()
	return string(buf[:n]), ferr
}

func TestCLIApplyAndLifecycle(t *testing.T) {
	c := newServer(t)
	pkg := writePackage(t, ".yaml")

	out, err := captureStdout(t, func() error { return c.dispatch([]string{"apply", pkg}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Echoer") {
		t.Fatalf("apply output = %q", out)
	}

	out, err = captureStdout(t, func() error { return c.dispatch([]string{"classes"}) })
	if err != nil || !strings.Contains(out, "Echoer") {
		t.Fatalf("classes = %q, %v", out, err)
	}

	out, err = captureStdout(t, func() error { return c.dispatch([]string{"class", "Echoer"}) })
	if err != nil || !strings.Contains(out, "img/echo") {
		t.Fatalf("class = %q, %v", out, err)
	}

	out, err = captureStdout(t, func() error { return c.dispatch([]string{"create", "Echoer", "e1"}) })
	if err != nil || !strings.Contains(out, "e1") {
		t.Fatalf("create = %q, %v", out, err)
	}

	out, err = captureStdout(t, func() error {
		return c.dispatch([]string{"invoke", "e1", "echo", "-d", `"hi"`, "-a", "k=v"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `\"hi\"`) && !strings.Contains(out, "hi") {
		t.Fatalf("invoke output = %q", out)
	}
	if !strings.Contains(out, `"k": "v"`) {
		t.Fatalf("invoke args missing: %q", out)
	}

	out, err = captureStdout(t, func() error { return c.dispatch([]string{"state-get", "e1", "last"}) })
	if err != nil || !strings.Contains(out, "hi") {
		t.Fatalf("state-get = %q, %v", out, err)
	}

	if _, err = captureStdout(t, func() error {
		return c.dispatch([]string{"state-set", "e1", "last", `"forced"`})
	}); err != nil {
		t.Fatal(err)
	}

	out, err = captureStdout(t, func() error { return c.dispatch([]string{"file-url", "e1", "blob", "PUT"}) })
	if err != nil || !strings.Contains(out, "X-Oprc-Signature") {
		t.Fatalf("file-url = %q, %v", out, err)
	}

	out, err = captureStdout(t, func() error { return c.dispatch([]string{"objects", "Echoer"}) })
	if err != nil || !strings.Contains(out, "e1") {
		t.Fatalf("objects = %q, %v", out, err)
	}

	out, err = captureStdout(t, func() error { return c.dispatch([]string{"object", "e1"}) })
	if err != nil || !strings.Contains(out, "Echoer") {
		t.Fatalf("object = %q, %v", out, err)
	}

	out, err = captureStdout(t, func() error { return c.dispatch([]string{"stats"}) })
	if err != nil || !strings.Contains(out, "workers") {
		t.Fatalf("stats = %q, %v", out, err)
	}

	out, err = captureStdout(t, func() error { return c.dispatch([]string{"actions"}) })
	if err != nil || !strings.Contains(out, "actions") {
		t.Fatalf("actions = %q, %v", out, err)
	}

	if err := c.dispatch([]string{"delete", "e1"}); err != nil {
		t.Fatal(err)
	}
	if err := c.dispatch([]string{"object", "e1"}); err == nil {
		t.Fatal("object lookup after delete succeeded")
	}
}

func TestCLIApplyJSON(t *testing.T) {
	c := newServer(t)
	pkg := writePackage(t, ".json")
	if _, err := captureStdout(t, func() error { return c.dispatch([]string{"apply", pkg}) }); err != nil {
		t.Fatal(err)
	}
}

func TestCLIErrors(t *testing.T) {
	c := newServer(t)
	cases := [][]string{
		{"unknown-command"},
		{"apply"},                          // missing file
		{"apply", "/does/not/exist.yaml"},  // unreadable
		{"class"},                          // missing arg
		{"create"},                         // missing class
		{"invoke", "only-id"},              // missing fn
		{"invoke", "x", "f", "-a", "noeq"}, // bad arg format
		{"state-get", "x"},                 // missing key
		{"state-set", "x", "k"},            // missing value
		{"file-url", "x"},                  // missing key
		{"delete"},                         // missing id
		{"object"},                         // missing id
	}
	for _, args := range cases {
		if err := c.dispatch(args); err == nil {
			t.Errorf("dispatch(%v) succeeded, want error", args)
		}
	}
}

func TestCLIServerErrorSurfaced(t *testing.T) {
	c := newServer(t)
	err := c.dispatch([]string{"class", "Ghost"})
	if err == nil || !strings.Contains(err.Error(), "404") && !strings.Contains(err.Error(), "not found") {
		t.Fatalf("err = %v", err)
	}
}

func TestEnvOr(t *testing.T) {
	t.Setenv("OCLI_TEST_VAR", "set")
	if envOr("OCLI_TEST_VAR", "def") != "set" {
		t.Fatal("env value ignored")
	}
	if envOr("OCLI_TEST_VAR_ABSENT", "def") != "def" {
		t.Fatal("default ignored")
	}
}

func TestMultiFlag(t *testing.T) {
	var m multiFlag
	m.Set("a=1")
	m.Set("b=2")
	if m.String() != "a=1,b=2" {
		t.Fatalf("String = %q", m.String())
	}
}

// extractInvocationID pulls the "invocation" field out of printed JSON.
func extractInvocationID(t *testing.T, out string) string {
	t.Helper()
	var resp struct {
		Invocation string `json:"invocation"`
	}
	if err := json.Unmarshal([]byte(out), &resp); err != nil || resp.Invocation == "" {
		t.Fatalf("invoke-async output = %q (%v)", out, err)
	}
	return resp.Invocation
}

func TestCLIAsyncInvokeAndPoll(t *testing.T) {
	c := newServer(t)
	pkg := writePackage(t, ".yaml")
	if _, err := captureStdout(t, func() error { return c.dispatch([]string{"apply", pkg}) }); err != nil {
		t.Fatal(err)
	}
	if _, err := captureStdout(t, func() error { return c.dispatch([]string{"create", "Echoer", "a1"}) }); err != nil {
		t.Fatal(err)
	}

	out, err := captureStdout(t, func() error {
		return c.dispatch([]string{"invoke-async", "a1", "echo", "-d", `"ping"`})
	})
	if err != nil {
		t.Fatal(err)
	}
	id := extractInvocationID(t, out)

	// invoke-wait polls until the record is terminal.
	out, err = captureStdout(t, func() error {
		return c.dispatch([]string{"invoke-wait", id, "-t", "10s"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `"completed"`) || !strings.Contains(out, "ping") {
		t.Fatalf("invoke-wait output = %q", out)
	}

	// Direct poll shows the same terminal record.
	out, err = captureStdout(t, func() error { return c.dispatch([]string{"invocation", id}) })
	if err != nil || !strings.Contains(out, `"completed"`) {
		t.Fatalf("invocation = %q, %v", out, err)
	}
}

func TestCLIAsyncErrors(t *testing.T) {
	c := newServer(t)
	cases := [][]string{
		{"invoke-async", "only-id"}, // missing fn
		{"invocation"},              // missing id
		{"invoke-wait"},             // missing id
	}
	for _, args := range cases {
		if err := c.dispatch(args); err == nil {
			t.Errorf("dispatch(%v) succeeded, want error", args)
		}
	}
	// Unknown invocation surfaces the server's 404.
	if err := c.dispatch([]string{"invocation", "inv-ghost"}); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("invocation inv-ghost err = %v", err)
	}
	if err := c.dispatch([]string{"invoke-wait", "inv-ghost", "-t", "1s"}); err == nil {
		t.Error("invoke-wait on unknown id succeeded")
	}
}
