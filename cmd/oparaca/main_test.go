package main

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"github.com/hpcclab/oparaca-go/internal/invoker"
)

func builtins(t *testing.T) *invoker.Registry {
	t.Helper()
	reg := invoker.NewRegistry()
	registerBuiltinImages(reg)
	return reg
}

func invoke(t *testing.T, reg *invoker.Registry, image string, task invoker.Task) invoker.Result {
	t.Helper()
	h, err := reg.Lookup(image)
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.Invoke(context.Background(), task)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestBuiltinImagesRegistered(t *testing.T) {
	reg := builtins(t)
	want := []string{"img/counter-incr", "img/echo", "img/get-state", "img/json-random", "img/set-state", "img/uppercase"}
	got := reg.Images()
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("images = %v, want %v", got, want)
	}
}

func TestBuiltinEcho(t *testing.T) {
	reg := builtins(t)
	res := invoke(t, reg, "img/echo", invoker.Task{Payload: json.RawMessage(`{"a":1}`)})
	if string(res.Output) != `{"a":1}` {
		t.Fatalf("output = %s", res.Output)
	}
}

func TestBuiltinUppercase(t *testing.T) {
	reg := builtins(t)
	res := invoke(t, reg, "img/uppercase", invoker.Task{Payload: json.RawMessage(`"shout"`)})
	if string(res.Output) != `"SHOUT"` {
		t.Fatalf("output = %s", res.Output)
	}
	// Non-string payload errors.
	h, _ := reg.Lookup("img/uppercase")
	if _, err := h.Invoke(context.Background(), invoker.Task{Payload: json.RawMessage(`42`)}); err == nil {
		t.Fatal("numeric payload accepted")
	}
}

func TestBuiltinSetAndGetState(t *testing.T) {
	reg := builtins(t)
	res := invoke(t, reg, "img/set-state", invoker.Task{
		Payload: json.RawMessage(`"value"`),
		Args:    map[string]string{"key": "k"},
	})
	if string(res.State["k"]) != `"value"` {
		t.Fatalf("state = %v", res.State)
	}
	res = invoke(t, reg, "img/get-state", invoker.Task{
		State: map[string]json.RawMessage{"k": json.RawMessage(`"stored"`)},
		Args:  map[string]string{"key": "k"},
	})
	if string(res.Output) != `"stored"` {
		t.Fatalf("output = %s", res.Output)
	}
	// Missing key yields null, not an error.
	res = invoke(t, reg, "img/get-state", invoker.Task{Args: map[string]string{"key": "ghost"}})
	if string(res.Output) != "null" {
		t.Fatalf("output = %s", res.Output)
	}
	// set-state without key errors.
	h, _ := reg.Lookup("img/set-state")
	if _, err := h.Invoke(context.Background(), invoker.Task{}); err == nil {
		t.Fatal("set-state without key accepted")
	}
}

func TestBuiltinCounterIncr(t *testing.T) {
	reg := builtins(t)
	res := invoke(t, reg, "img/counter-incr", invoker.Task{})
	if string(res.Output) != "1" {
		t.Fatalf("first incr = %s", res.Output)
	}
	res = invoke(t, reg, "img/counter-incr", invoker.Task{
		State: map[string]json.RawMessage{"count": res.State["count"]},
	})
	if string(res.Output) != "2" {
		t.Fatalf("second incr = %s", res.Output)
	}
}

func TestBuiltinJSONRandomDeterministicPerTask(t *testing.T) {
	reg := builtins(t)
	a := invoke(t, reg, "img/json-random", invoker.Task{ID: "task-1"})
	b := invoke(t, reg, "img/json-random", invoker.Task{ID: "task-1"})
	c := invoke(t, reg, "img/json-random", invoker.Task{ID: "task-2"})
	if string(a.Output) != string(b.Output) {
		t.Fatal("same task ID produced different documents")
	}
	if string(a.Output) == string(c.Output) {
		t.Fatal("different task IDs produced identical documents")
	}
	if string(a.State["doc"]) != string(a.Output) {
		t.Fatal("doc state does not match output")
	}
}
