// Command oparaca runs the OaaS platform daemon: the REST gateway, the
// simulated worker cluster, the document store, the S3-style object
// store (served for presigned URL access), and the QoS optimizer
// (paper §IV steps 1–2: install the platform, access it through its
// API).
//
// A library of built-in container images is registered so the tutorial
// flow works out of the box (see builtinImages). Classes can also
// reference remote images by URL ("http://host:port/img/name"), which
// are offloaded over HTTP to any code-execution runtime speaking the
// invoker protocol.
//
// Usage:
//
//	oparaca [-addr :8020] [-workers 3] [-db-write-cap 0] [-optimize] [-pprof addr]
//	        [-trace] [-trace-sample 0.05] [-trace-capacity 256]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/hpcclab/oparaca-go/internal/core"
	"github.com/hpcclab/oparaca-go/internal/gateway"
	"github.com/hpcclab/oparaca-go/internal/invoker"
)

func main() {
	var (
		addr      = flag.String("addr", ":8020", "gateway listen address")
		workers   = flag.Int("workers", 3, "simulated worker VM count")
		dbCap     = flag.Float64("db-write-cap", 0, "document store write ops/sec ceiling (0 = unlimited)")
		optimize  = flag.Bool("optimize", true, "enable the QoS optimizer control loop")
		apply     = flag.String("apply", "", "optional package YAML to deploy at startup")
		recordTTL = flag.Duration("async-record-ttl", 0,
			"evict completed/failed async invocation records this long after they finish (0 = keep forever)")
		invokeTimeout = flag.Duration("invoke-timeout", 0,
			"default per-invocation deadline for classes that declare none (0 = unlimited)")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second,
			"how long shutdown waits for in-flight requests and queued async work")
		pprofAddr = flag.String("pprof", "",
			"serve net/http/pprof on this address (e.g. localhost:6060); empty disables profiling")
		leaseTTL = flag.Duration("ownership-lease-ttl", 0,
			"enable lease-based object ownership across the worker nodes with this lease TTL (0 = disabled)")
		traceOn = flag.Bool("trace", true,
			"record invocation traces (tail-sampled; served at /api/traces)")
		traceSample = flag.Float64("trace-sample", 0,
			"probabilistic keep rate for unremarkable traces (0 = default 0.05, negative = errors/slow only)")
		traceCap = flag.Int("trace-capacity", 0,
			"kept-trace ring capacity (0 = default 256)")
		logLevel = flag.String("log-level", "info", "log level: debug, info, warn, error")
	)
	flag.Parse()

	// All daemon output is structured: one slog TextHandler on stderr,
	// request lines carrying trace and invocation IDs via the gateway.
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "oparaca: bad -log-level %q: %v\n", *logLevel, err)
		os.Exit(2)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl}))
	slog.SetDefault(logger)
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}

	// Profiling is opt-in and served on its own listener, never the
	// gateway address: the debug endpoints expose heap contents and
	// must not ride on the customer-facing port.
	if *pprofAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			logger.Info("pprof listening", "addr", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, mux); err != nil && err != http.ErrServerClosed {
				logger.Error("pprof server", "err", err)
			}
		}()
	}

	p, err := core.New(core.Config{
		Workers:              *workers,
		DBWriteOpsPerSec:     *dbCap,
		EnableOptimizer:      *optimize,
		AsyncRecordTTL:       *recordTTL,
		DefaultInvokeTimeout: *invokeTimeout,
		OwnershipLeaseTTL:    *leaseTTL,
		EnableTracing:        *traceOn,
		TraceSampleRate:      *traceSample,
		TraceCapacity:        *traceCap,
		// Handler goroutines carry class/function pprof labels only
		// when a profiler is actually attached.
		PprofLabels: *pprofAddr != "",
	})
	if err != nil {
		fatal("platform init", "err", err)
	}
	defer p.Close()
	registerBuiltinImages(p.Images())

	if *apply != "" {
		raw, err := os.ReadFile(*apply)
		if err != nil {
			fatal("reading package", "path", *apply, "err", err)
		}
		names, err := p.DeployYAML(context.Background(), raw)
		if err != nil {
			fatal("deploying package", "path", *apply, "err", err)
		}
		logger.Info("deployed classes", "classes", strings.Join(names, ", "))
	}

	gw := gateway.New(p)
	gw.SetLogger(logger)

	// Slow-client protection: a peer that stalls mid-headers or never
	// reads its response must not pin a handler goroutine forever. The
	// write timeout leaves headroom over the gateway's 30s long-poll
	// cap; the SSE handler clears its own write deadline for the
	// lifetime of the stream.
	srv := &http.Server{
		Addr:              *addr,
		Handler:           gw,
		ReadHeaderTimeout: 5 * time.Second,
		WriteTimeout:      60 * time.Second,
	}
	go func() {
		logger.Info("gateway listening",
			"addr", *addr, "workers", *workers, "object_store", p.ObjectStoreURL(),
			"tracing", *traceOn)
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			fatal("gateway", "err", err)
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	logger.Info("draining in-flight requests")
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		logger.Warn("forced shutdown with requests in flight", "err", err)
	}
	// The deferred platform Close drains queued async work before the
	// process exits.
	logger.Info("gateway stopped, draining async queue")
}

// registerBuiltinImages installs the stock function library. Each
// image follows the pure-function contract: reads come from the task,
// writes go into the result.
func registerBuiltinImages(reg *invoker.Registry) {
	// img/echo returns its payload unchanged.
	reg.Register("img/echo", invoker.HandlerFunc(func(_ context.Context, task invoker.Task) (invoker.Result, error) {
		return invoker.Result{Output: task.Payload}, nil
	}))
	// img/uppercase upper-cases a JSON string payload.
	reg.Register("img/uppercase", invoker.HandlerFunc(func(_ context.Context, task invoker.Task) (invoker.Result, error) {
		var s string
		if err := json.Unmarshal(task.Payload, &s); err != nil {
			return invoker.Result{}, fmt.Errorf("payload must be a JSON string: %w", err)
		}
		out, _ := json.Marshal(strings.ToUpper(s))
		return invoker.Result{Output: out}, nil
	}))
	// img/set-state writes the payload into the state key named by
	// args["key"].
	reg.Register("img/set-state", invoker.HandlerFunc(func(_ context.Context, task invoker.Task) (invoker.Result, error) {
		key := task.Args["key"]
		if key == "" {
			return invoker.Result{}, fmt.Errorf("arg %q is required", "key")
		}
		return invoker.Result{
			Output: task.Payload,
			State:  map[string]json.RawMessage{key: task.Payload},
		}, nil
	}))
	// img/get-state returns the state key named by args["key"].
	reg.Register("img/get-state", invoker.HandlerFunc(func(_ context.Context, task invoker.Task) (invoker.Result, error) {
		key := task.Args["key"]
		v, ok := task.State[key]
		if !ok {
			return invoker.Result{Output: json.RawMessage("null")}, nil
		}
		return invoker.Result{Output: v}, nil
	}))
	// img/counter-incr increments the numeric "count" state key.
	reg.Register("img/counter-incr", invoker.HandlerFunc(func(_ context.Context, task invoker.Task) (invoker.Result, error) {
		var n float64
		if raw, ok := task.State["count"]; ok {
			_ = json.Unmarshal(raw, &n)
		}
		out, _ := json.Marshal(n + 1)
		return invoker.Result{Output: out, State: map[string]json.RawMessage{"count": out}}, nil
	}))
	// img/json-random replaces the "doc" state key with a randomized
	// document (the evaluation workload).
	reg.Register("img/json-random", invoker.HandlerFunc(func(_ context.Context, task invoker.Task) (invoker.Result, error) {
		h := fnv.New64a()
		_, _ = h.Write([]byte(task.ID))
		seed := h.Sum64() | 1
		next := func() uint64 {
			seed ^= seed << 13
			seed ^= seed >> 7
			seed ^= seed << 17
			return seed
		}
		doc := map[string]any{
			"seq":   next() % 1_000_000,
			"score": float64(next()%10_000) / 100,
			"flag":  next()%2 == 0,
		}
		raw, _ := json.Marshal(doc)
		return invoker.Result{Output: raw, State: map[string]json.RawMessage{"doc": raw}}, nil
	}))
}
