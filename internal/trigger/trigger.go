// Package trigger implements the platform's event and trigger
// subsystem: a sharded, bounded event bus that turns committed state
// mutations and terminal asynchronous invocations into durable routed
// deliveries, making objects reactive instead of purely pull-based.
//
// Producers publish Events (the runtime emits StateChanged once per
// committed write invocation; the async queue emits
// InvocationCompleted/InvocationFailed on terminal records).
// Subscriptions — declared per class in YAML or managed dynamically —
// route matching events to one of three sinks:
//
//   - an object method, submitted through the platform's asynchronous
//     queue (data-triggered function chaining);
//   - a webhook URL, POSTed with bounded doubling-backoff retry;
//   - a live per-object stream (the gateway's SSE tail).
//
// # Durability
//
// With Config.Log set, Publish writes every event through the
// per-object append-only event log BEFORE dispatch, stamping the
// assigned Offset into the event. Webhook and object-method sinks then
// become cursor-based log consumers: each (subscription, object) pair
// owns a durable cursor that only advances past an event once its
// delivery succeeded (or terminally failed, e.g. the chain-depth
// limit). A crash loses in-flight deliveries but not the events — on
// restart, re-registering a subscription resumes its consumers from
// the stored cursors, giving at-least-once delivery. Live streams stay
// best-effort; the gateway heals their gaps by replaying the log.
//
// Sink delivery runs on a bounded worker pool, never inline in the
// shard dispatch loop, so one stalled webhook endpoint (backoff sleeps
// of up to retries × timeout) cannot delay stream delivery or method
// chains for other objects on the same shard, nor — under
// OverflowBlock — backpressure the commit path of unrelated writes.
//
// The bus is sharded by object and bounded with an explicit overflow
// policy: OverflowDrop counts and discards events that find their
// shard full, OverflowBlock applies backpressure to the publisher.
// (Two racing OCC commits on one object may publish in either order —
// emission happens after the validated commit lands, outside the
// table's shard locks — so stream order tracks publish order across
// concurrent lock-free committers; log offsets and cursor-based
// consumers are ordered regardless.) Object→object chains are
// cycle-limited: an event whose trigger-chain depth has reached
// Config.MaxChainDepth is not dispatched to method sinks, so a self-
// or mutually-triggering class terminates instead of looping forever.
// Close drains every accepted event before returning; Kill models
// process death (nothing drains, nothing flushes).
package trigger

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/hpcclab/oparaca-go/internal/eventlog"
	"github.com/hpcclab/oparaca-go/internal/metrics"
	"github.com/hpcclab/oparaca-go/internal/trace"
	"github.com/hpcclab/oparaca-go/internal/vclock"
)

// EventType discriminates the platform event kinds.
type EventType string

// Platform event types.
const (
	// StateChanged is emitted once per committed write invocation with
	// a non-empty state delta by every runtime commit path (locked
	// window, OCC/adaptive CAS commit, InvokeBatch group commit).
	// Aborted and readonly calls emit nothing, and neither do committed
	// calls that wrote no keys — no state changed.
	StateChanged EventType = "stateChanged"
	// InvocationCompleted / InvocationFailed are emitted when an
	// asynchronous invocation record reaches its terminal status.
	InvocationCompleted EventType = "invocationCompleted"
	InvocationFailed    EventType = "invocationFailed"
)

// Valid reports whether t is a known event type.
func (t EventType) Valid() bool {
	switch t {
	case StateChanged, InvocationCompleted, InvocationFailed:
		return true
	}
	return false
}

// Invocation-argument keys the bus stamps onto trigger-fired
// invocations. The runtime reads ArgDepth back when the chained
// invocation commits, so the resulting event carries the chain depth
// and the cycle limit can terminate object→object loops.
const (
	// ArgSource names the event type that fired the invocation.
	ArgSource = "trigger"
	// ArgDepth is the trigger-chain depth of the invocation (1 for the
	// first chained hop).
	ArgDepth = "triggerDepth"
)

// DepthOf extracts the trigger-chain depth from invocation args (0 for
// client-initiated invocations).
func DepthOf(args map[string]string) int {
	if args == nil {
		return 0
	}
	d, err := strconv.Atoi(args[ArgDepth])
	if err != nil || d < 0 {
		return 0
	}
	return d
}

// Event is one platform occurrence routed by the bus.
type Event struct {
	// Seq is a bus-assigned monotone sequence number (process-local,
	// resets on restart; Offset is the durable coordinate).
	Seq uint64 `json:"seq"`
	// Offset is the event's position in its object's durable log,
	// 1-based and monotone per object. Zero when the bus runs without
	// a log (or the append failed and the event was dispatched
	// best-effort).
	Offset int64 `json:"offset,omitempty"`
	// Type discriminates the event kind.
	Type EventType `json:"type"`
	// Class and Object identify the emitting object.
	Class  string `json:"class"`
	Object string `json:"object"`
	// Function is the committing method (StateChanged) or the invoked
	// member (terminal invocation events).
	Function string `json:"function,omitempty"`
	// Keys lists the structured state keys the commit wrote, sorted
	// (StateChanged only; always non-empty for freshly emitted events —
	// empty-delta commits emit nothing — but logs written before that
	// rule may replay key-less StateChanged entries).
	Keys []string `json:"keys,omitempty"`
	// Invocation is the asynchronous invocation ID (terminal events).
	Invocation string `json:"invocation,omitempty"`
	// Error is the failure message (InvocationFailed).
	Error string `json:"error,omitempty"`
	// Depth is the trigger-chain depth of the invocation that produced
	// the event (0 = client-initiated).
	Depth int `json:"depth,omitempty"`
	// Trace is the W3C traceparent of the invocation that produced the
	// event (empty when tracing is off or the trace was not sampled at
	// the root). The bus re-joins the trace through it, so log append,
	// dispatch and sink delivery appear as spans of the originating
	// invocation's trace even though they run on bus goroutines.
	Trace string `json:"trace,omitempty"`
	// Time is the emission instant.
	Time time.Time `json:"time"`
}

// Subscription routes matching events to one sink.
type Subscription struct {
	// ID is the subscription's durable identity — the key its delivery
	// cursors and counters persist under, stable across restarts. The
	// bus stamps "named/<name>" on Subscribe and "class/<class>/<i>"
	// on SetClassTriggers when empty; the platform passes
	// declaration-derived identities for YAML triggers so a redeploy
	// resumes the same cursors. Not part of the wire shape.
	ID string `json:"-"`
	// Class filters events to one emitting class; required.
	Class string `json:"class"`
	// Type is the event type subscribed to; required.
	Type EventType `json:"type"`
	// KeyPrefix restricts StateChanged events to commits that wrote at
	// least one state key with this prefix. Only valid with
	// StateChanged.
	KeyPrefix string `json:"keyPrefix,omitempty"`
	// TargetObject / TargetFunction name the object-method sink: the
	// method is submitted through the async queue with the event as its
	// payload. An empty TargetObject targets the emitting object
	// itself.
	TargetObject   string `json:"targetObject,omitempty"`
	TargetFunction string `json:"targetFunction,omitempty"`
	// Webhook is the webhook-sink URL, POSTed the event JSON with
	// bounded doubling-backoff retry.
	Webhook string `json:"webhook,omitempty"`
}

// Validate checks the subscription shape: a known type, a class, and
// exactly one sink.
func (s Subscription) Validate() error {
	if s.Class == "" {
		return errors.New("trigger: subscription needs a class")
	}
	if !s.Type.Valid() {
		return fmt.Errorf("trigger: unknown event type %q (want %s, %s or %s)",
			s.Type, StateChanged, InvocationCompleted, InvocationFailed)
	}
	hasFn, hasHook := s.TargetFunction != "", s.Webhook != ""
	if hasFn == hasHook {
		return errors.New("trigger: subscription needs exactly one sink (targetFunction or webhook)")
	}
	if s.TargetObject != "" && !hasFn {
		return errors.New("trigger: targetObject requires targetFunction")
	}
	if s.KeyPrefix != "" && s.Type != StateChanged {
		return fmt.Errorf("trigger: keyPrefix only applies to %s subscriptions", StateChanged)
	}
	return nil
}

// matches reports whether the subscription wants ev.
func (s Subscription) matches(ev Event) bool {
	if s.Class != ev.Class || s.Type != ev.Type {
		return false
	}
	if s.KeyPrefix == "" {
		return true
	}
	for _, k := range ev.Keys {
		if len(k) >= len(s.KeyPrefix) && k[:len(s.KeyPrefix)] == s.KeyPrefix {
			return true
		}
	}
	return false
}

// OverflowPolicy selects what Publish does when a shard queue is full.
type OverflowPolicy string

// Overflow policies.
const (
	// OverflowDrop (the default) discards the event and counts it in
	// Stats().Dropped — emission never blocks the commit path. With a
	// log, "discards" only skips dispatch; the event is already
	// appended and cursor-based consumers still deliver it.
	OverflowDrop OverflowPolicy = "drop"
	// OverflowBlock applies backpressure: Publish waits for shard
	// space, so no event is lost at the cost of commit-path latency.
	OverflowBlock OverflowPolicy = "block"
)

// Valid reports whether p is a known policy (including the default).
func (p OverflowPolicy) Valid() bool {
	return p == "" || p == OverflowDrop || p == OverflowBlock
}

// AsyncInvoker submits one chained invocation (the platform passes its
// InvokeAsync path; the indirection keeps this package core-free).
type AsyncInvoker func(ctx context.Context, objectID, member string, payload json.RawMessage, args map[string]string) (string, error)

// Config sizes a Bus.
type Config struct {
	// InvokeAsync realizes the object-method sink; nil fails such
	// deliveries (counted dropped).
	InvokeAsync AsyncInvoker
	// Log, when set, makes the bus durable: Publish appends every
	// event to the log before dispatch and webhook/method sinks become
	// cursor-based consumers with at-least-once redelivery. Nil keeps
	// the PR 5 fire-and-forget behaviour.
	Log *eventlog.Log
	// Shards partitions the bus; events are spread by emitting object,
	// so per-object order survives dispatch. Defaults to 4.
	Shards int
	// Buffer bounds each shard's queue. Defaults to 256.
	Buffer int
	// Overflow selects the full-shard behaviour. Defaults to
	// OverflowDrop.
	Overflow OverflowPolicy
	// MaxChainDepth bounds object→object trigger chains: an event at
	// this depth is not dispatched to method sinks (counted in
	// CycleDropped and Dropped). Defaults to 8.
	MaxChainDepth int
	// DeliveryWorkers sizes the sink delivery pool (webhook POSTs and
	// cursor-consumer runs). Defaults to 4.
	DeliveryWorkers int
	// HTTPClient delivers webhooks; defaults to a client with
	// WebhookTimeout.
	HTTPClient *http.Client
	// WebhookMaxRetries re-POSTs a failed webhook delivery up to this
	// many additional times before dropping it. Defaults to 3;
	// negative disables retries entirely.
	WebhookMaxRetries int
	// WebhookBackoff is the delay before the first webhook retry,
	// doubled per attempt. Defaults to 10ms.
	WebhookBackoff time.Duration
	// BackoffJitter spreads each webhook retry delay uniformly over
	// [d*(1-j), d*(1+j)] so many endpoints failing at once don't
	// re-POST in lockstep. Defaults to 0.2; negative disables.
	BackoffJitter float64
	// JitterSeed seeds the backoff jitter source (wired to the chaos
	// RNG seed so runs replay). Zero seeds from 1.
	JitterSeed int64
	// WebhookTimeout bounds each delivery attempt. Defaults to 5s.
	WebhookTimeout time.Duration
	// Metrics receives the bus counters. A private registry is created
	// when nil.
	Metrics *metrics.Registry
	// Tracer, when set, re-joins event traces (Event.Trace) so log
	// appends, dispatch and webhook deliveries span under the
	// originating invocation's trace. Nil disables bus-side spans.
	Tracer *trace.Tracer
	// Clock supplies time; defaults to the real clock.
	Clock vclock.Clock
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.Buffer <= 0 {
		c.Buffer = 256
	}
	if c.Overflow == "" {
		c.Overflow = OverflowDrop
	}
	if c.MaxChainDepth <= 0 {
		c.MaxChainDepth = 8
	}
	if c.DeliveryWorkers <= 0 {
		c.DeliveryWorkers = 4
	}
	if c.WebhookMaxRetries < 0 {
		c.WebhookMaxRetries = 0
	} else if c.WebhookMaxRetries == 0 {
		c.WebhookMaxRetries = 3
	}
	if c.WebhookBackoff <= 0 {
		c.WebhookBackoff = 10 * time.Millisecond
	}
	if c.BackoffJitter == 0 {
		c.BackoffJitter = 0.2
	}
	if c.BackoffJitter < 0 {
		c.BackoffJitter = 0
	}
	if c.JitterSeed == 0 {
		c.JitterSeed = 1
	}
	if c.WebhookTimeout <= 0 {
		c.WebhookTimeout = 5 * time.Second
	}
	if c.HTTPClient == nil {
		c.HTTPClient = &http.Client{Timeout: c.WebhookTimeout}
	}
	if c.Metrics == nil {
		c.Metrics = metrics.NewRegistry()
	}
	if c.Clock == nil {
		c.Clock = vclock.NewReal()
	}
	return c
}

// busShard is one dispatch partition.
type busShard struct {
	ch chan Event
}

// Stream is one live per-object event tail (the gateway's SSE feed).
// Events arrive on Events() in commit order; a slow consumer whose
// buffer fills loses events (counted in Stats().Dropped) rather than
// stalling dispatch.
type Stream struct {
	bus    *Bus
	object string
	ch     chan Event
	once   sync.Once
}

// Events is the stream's receive side; it is closed when the stream or
// the bus closes.
func (s *Stream) Events() <-chan Event { return s.ch }

// Close detaches the stream from the bus and closes Events(). The
// once runs under streamMu (never the other way around), so it cannot
// deadlock against Bus.Close firing the same once while holding the
// lock.
func (s *Stream) Close() {
	b := s.bus
	b.streamMu.Lock()
	defer b.streamMu.Unlock()
	s.once.Do(func() {
		if set, ok := b.streams[s.object]; ok {
			delete(set, s)
			if len(set) == 0 {
				delete(b.streams, s.object)
			}
		}
		close(s.ch)
	})
}

// consumerState is one (subscription, object) cursor consumer. At most
// one run is in flight per state; a notify arriving mid-run sets rerun
// so the worker loops again instead of enqueuing a duplicate — the
// delivery queue is therefore bounded by the number of distinct
// (subscription, object) pairs, not by event volume.
type consumerState struct {
	sub    Subscription
	object string
	queued bool
	rerun  bool
}

// delItem is one unit of delivery-pool work: a consumer run (st set)
// or a one-shot direct job (legacy webhook delivery when the bus has
// no log).
type delItem struct {
	st  *consumerState
	run func()
}

// subCounters accumulates one subscription's delivery outcomes.
type subCounters struct {
	delivered atomic.Int64
	retried   atomic.Int64
	dropped   atomic.Int64
}

// Bus is the event router. It is safe for concurrent use.
type Bus struct {
	cfg    Config
	shards []*busShard
	seq    atomic.Uint64

	// killCtx is cancelled by Kill so backoff sleeps and in-flight
	// webhook requests abort instead of delaying the simulated crash.
	killCtx    context.Context
	killCancel context.CancelFunc
	killed     atomic.Bool

	// subs holds named subscriptions; classSubs the YAML-declared sets,
	// replaced wholesale on class redeploy. Both guarded by subMu.
	subMu     sync.RWMutex
	subs      map[string]Subscription
	classSubs map[string][]Subscription

	streamMu sync.Mutex
	streams  map[string]map[*Stream]struct{}

	// The delivery pool. delCond (on delMu) is broadcast on every
	// enqueue and every completed run; workers and Drain both wait on
	// it against their own predicates.
	delMu     sync.Mutex
	delCond   *sync.Cond
	delQueue  []delItem
	delState  map[string]*consumerState
	delBusy   int
	delClosed bool
	delWg     sync.WaitGroup

	subStatsMu sync.Mutex
	subStats   map[string]*subCounters

	// rnd drives webhook backoff jitter; guarded by rndMu.
	rndMu sync.Mutex
	rnd   *rand.Rand

	// pubMu fences intake against Close: Publish holds the read side
	// across its closed-check, log append and shard send; Close flips
	// closed under the write side, so once Close proceeds no publisher
	// can be mid-send and closing the shard channels is race-free.
	pubMu   sync.RWMutex
	closed  bool
	pending sync.WaitGroup // accepted-but-undispatched events
	wg      sync.WaitGroup // dispatcher goroutines
}

// New builds a bus and starts one dispatcher per shard plus the
// delivery pool.
func New(cfg Config) (*Bus, error) {
	cfg = cfg.withDefaults()
	if !cfg.Overflow.Valid() {
		return nil, fmt.Errorf("trigger: unknown overflow policy %q (want %s or %s)",
			cfg.Overflow, OverflowDrop, OverflowBlock)
	}
	b := &Bus{
		cfg:       cfg,
		shards:    make([]*busShard, cfg.Shards),
		subs:      make(map[string]Subscription),
		classSubs: make(map[string][]Subscription),
		streams:   make(map[string]map[*Stream]struct{}),
		delState:  make(map[string]*consumerState),
		subStats:  make(map[string]*subCounters),
		rnd:       rand.New(rand.NewSource(cfg.JitterSeed)),
	}
	b.killCtx, b.killCancel = context.WithCancel(context.Background())
	b.delCond = sync.NewCond(&b.delMu)
	for i := range b.shards {
		b.shards[i] = &busShard{ch: make(chan Event, cfg.Buffer)}
		b.wg.Add(1)
		go b.dispatchLoop(b.shards[i])
	}
	for i := 0; i < cfg.DeliveryWorkers; i++ {
		b.delWg.Add(1)
		go b.deliveryWorker()
	}
	return b, nil
}

// Metrics exposes the bus's registry.
func (b *Bus) Metrics() *metrics.Registry { return b.cfg.Metrics }

// Log exposes the bus's durable event log (nil without one).
func (b *Bus) Log() *eventlog.Log { return b.cfg.Log }

// shardFor routes an object's events to a fixed shard, preserving
// per-object dispatch order. The FNV-1a fold is inlined over the
// string: Publish sits on every commit path, and hash/fnv's
// hasher-plus-[]byte construction cost two heap allocations per
// event (TestShardForNoAllocs pins this at zero).
func (b *Bus) shardFor(object string) *busShard {
	h := uint32(2166136261)
	for i := 0; i < len(object); i++ {
		h ^= uint32(object[i])
		h *= 16777619
	}
	return b.shards[h%uint32(len(b.shards))]
}

// subCountersFor returns (creating if needed) one subscription's
// counters.
func (b *Bus) subCountersFor(id string) *subCounters {
	if id == "" {
		return nil
	}
	b.subStatsMu.Lock()
	defer b.subStatsMu.Unlock()
	c, ok := b.subStats[id]
	if !ok {
		c = &subCounters{}
		b.subStats[id] = c
	}
	return c
}

// Subscribe registers (or replaces) a named subscription. Its durable
// identity is "named/<name>" (unless the caller pre-stamped one), so
// re-subscribing after a restart resumes the stored cursors — any
// backlog behind them is scheduled for redelivery immediately.
func (b *Bus) Subscribe(name string, sub Subscription) error {
	if name == "" {
		return errors.New("trigger: subscription needs a name")
	}
	if err := sub.Validate(); err != nil {
		return err
	}
	if sub.ID == "" {
		sub.ID = "named/" + name
	}
	b.subMu.Lock()
	b.subs[name] = sub
	b.subMu.Unlock()
	b.recoverSub(sub)
	return nil
}

// Unsubscribe removes a named subscription, reporting whether it
// existed. Stored cursors are kept: a later Subscribe under the same
// name resumes them (delivering the interim backlog) rather than
// starting fresh.
func (b *Bus) Unsubscribe(name string) bool {
	b.subMu.Lock()
	_, ok := b.subs[name]
	delete(b.subs, name)
	b.subMu.Unlock()
	return ok
}

// Subscriptions returns the named subscriptions, keys sorted.
func (b *Bus) Subscriptions() (names []string, subs map[string]Subscription) {
	b.subMu.RLock()
	subs = make(map[string]Subscription, len(b.subs))
	for name, sub := range b.subs {
		subs[name] = sub
		names = append(names, name)
	}
	b.subMu.RUnlock()
	sort.Strings(names)
	return names, subs
}

// SetClassTriggers replaces the YAML-declared subscription set of one
// class (called on every class deploy; redeploys swap the whole set).
// Invalid entries are skipped — the model layer validates declarations
// before they reach the bus. Subscriptions without a pre-stamped ID
// get a positional "class/<class>/<i>" identity; the platform stamps
// declaration-derived identities instead so cursors survive reordered
// redeploys.
func (b *Bus) SetClassTriggers(class string, subs []Subscription) {
	kept := make([]Subscription, 0, len(subs))
	for i, s := range subs {
		if s.Validate() != nil {
			continue
		}
		if s.ID == "" {
			s.ID = "class/" + class + "/" + strconv.Itoa(i)
		}
		kept = append(kept, s)
	}
	b.subMu.Lock()
	if len(kept) == 0 {
		delete(b.classSubs, class)
	} else {
		b.classSubs[class] = kept
	}
	b.subMu.Unlock()
	for _, s := range kept {
		b.recoverSub(s)
	}
}

// recoverSub schedules a consumer run for every stored cursor of one
// subscription: after a restart (or a re-subscribe) any backlog the
// crash interrupted is redelivered without waiting for fresh events.
func (b *Bus) recoverSub(sub Subscription) {
	if b.cfg.Log == nil || sub.ID == "" {
		return
	}
	for object := range b.cfg.Log.CursorsFor(sub.ID) {
		b.notify(sub, object, 0)
	}
}

// ReplayCursors re-runs cursor recovery for every registered
// subscription — named and class-declared. The cluster rebalancer
// calls it after an ownership change so deliveries a dead owner left
// mid-backlog resume under the new owner without waiting for fresh
// commits. At-least-once semantics make the occasional duplicate
// delivery safe.
func (b *Bus) ReplayCursors() {
	if b.cfg.Log == nil {
		return
	}
	b.subMu.RLock()
	all := make([]Subscription, 0, len(b.subs))
	for _, s := range b.subs {
		all = append(all, s)
	}
	for _, subs := range b.classSubs {
		all = append(all, subs...)
	}
	b.subMu.RUnlock()
	for _, s := range all {
		b.recoverSub(s)
	}
}

// jittered spreads d uniformly over [d*(1-j), d*(1+j)] with the
// seeded jitter source.
func (b *Bus) jittered(d time.Duration) time.Duration {
	j := b.cfg.BackoffJitter
	if j <= 0 {
		return d
	}
	b.rndMu.Lock()
	f := 1 - j + 2*j*b.rnd.Float64()
	b.rndMu.Unlock()
	return time.Duration(float64(d) * f)
}

// Stream opens a live event tail for one object. buf bounds the
// consumer lag; <=0 selects 64.
func (b *Bus) Stream(object string, buf int) *Stream {
	if buf <= 0 {
		buf = 64
	}
	s := &Stream{bus: b, object: object, ch: make(chan Event, buf)}
	b.streamMu.Lock()
	set, ok := b.streams[object]
	if !ok {
		set = make(map[*Stream]struct{})
		b.streams[object] = set
	}
	set[s] = struct{}{}
	b.streamMu.Unlock()
	return s
}

// Publish routes one event. It assigns Seq and Time, appends to the
// durable log (stamping Offset) when one is configured, counts the
// emission, and enqueues onto the object's shard under the configured
// overflow policy. Publishing on a closed bus discards the event.
func (b *Bus) Publish(ev Event) {
	m := b.cfg.Metrics
	ev.Seq = b.seq.Add(1)
	if ev.Time.IsZero() {
		ev.Time = b.cfg.Clock.Now()
	}
	m.Counter("trigger.emitted").Inc()
	b.pubMu.RLock()
	defer b.pubMu.RUnlock()
	if b.closed {
		m.Counter("trigger.dropped").Inc()
		return
	}
	if b.cfg.Log != nil {
		// Durability before dispatch: the event is in the log before
		// any consumer can observe it, so an acknowledged append can
		// never be lost to a crash. A failed append degrades to the
		// fire-and-forget path (Offset zero) rather than losing the
		// dispatch too.
		asp := b.cfg.Tracer.Attach(ev.Trace, "eventlog.append")
		_, err := b.cfg.Log.Append(b.killCtx, ev.Object, func(off int64) (json.RawMessage, error) {
			ev.Offset = off
			return json.Marshal(ev)
		})
		if err != nil {
			ev.Offset = 0
			m.Counter("trigger.log_failed").Inc()
			asp.Error(err)
		}
		asp.End()
	}
	b.enqueue(ev)
}

// PublishBatch routes a group of events emitted by one object's
// group-committed invocation batch: all of them are appended to the
// log in a single backing write (the commit itself was one write, its
// events should not cost n), then enqueued individually. All events
// must carry the same Object.
func (b *Bus) PublishBatch(evs []Event) {
	if len(evs) == 0 {
		return
	}
	if len(evs) == 1 {
		b.Publish(evs[0])
		return
	}
	m := b.cfg.Metrics
	for i := range evs {
		evs[i].Seq = b.seq.Add(1)
		if evs[i].Time.IsZero() {
			evs[i].Time = b.cfg.Clock.Now()
		}
	}
	m.Counter("trigger.emitted").Add(int64(len(evs)))
	b.pubMu.RLock()
	defer b.pubMu.RUnlock()
	if b.closed {
		m.Counter("trigger.dropped").Add(int64(len(evs)))
		return
	}
	if b.cfg.Log != nil {
		asp := b.cfg.Tracer.Attach(batchTrace(evs), "eventlog.append")
		asp.SetInt("events", len(evs))
		_, err := b.cfg.Log.AppendBatch(b.killCtx, evs[0].Object, len(evs), func(i int, off int64) (json.RawMessage, error) {
			evs[i].Offset = off
			return json.Marshal(evs[i])
		})
		if err != nil {
			for i := range evs {
				evs[i].Offset = 0
			}
			m.Counter("trigger.log_failed").Inc()
			asp.Error(err)
		}
		asp.End()
	}
	for _, ev := range evs {
		b.enqueue(ev)
	}
}

// batchTrace picks the first traceparent a batch carries (groups are
// appended in one backing write, so the one span stands for all).
func batchTrace(evs []Event) string {
	for _, ev := range evs {
		if ev.Trace != "" {
			return ev.Trace
		}
	}
	return ""
}

// enqueue sends one stamped event to its shard under the overflow
// policy. Callers hold pubMu's read side with closed already checked.
func (b *Bus) enqueue(ev Event) {
	sh := b.shardFor(ev.Object)
	b.pending.Add(1)
	if b.cfg.Overflow == OverflowBlock {
		// Backpressure: wait for shard space. The dispatchers keep
		// draining (Close cannot pass pubMu while we hold the read
		// side), so the send always completes.
		sh.ch <- ev
		return
	}
	select {
	case sh.ch <- ev:
	default:
		b.pending.Done()
		b.cfg.Metrics.Counter("trigger.dropped").Inc()
	}
}

// dispatchLoop drains one shard until Close closes its channel. The
// matched-subscription scratch is owned by this goroutine (one loop
// per shard) and reused across events, so steady-state fanout
// allocates nothing for the match pass.
func (b *Bus) dispatchLoop(sh *busShard) {
	defer b.wg.Done()
	var matched []Subscription
	for ev := range sh.ch {
		if !b.killed.Load() {
			matched = b.dispatch(ev, matched[:0])
		}
		b.pending.Done()
	}
}

// NeedsEvents reports whether publishing an event for class would
// reach any consumer: the durable log records every event regardless
// of subscriptions (replay and late subscribers depend on it), so a
// logged bus always needs events; a fire-and-forget bus needs them
// only while a live stream is open or some subscription filters on the
// class. The runtime consults this before constructing commit events,
// so the answer may be stale by one subscribe/unsubscribe — a skipped
// event for a subscriber racing its registration is within the
// fire-and-forget contract this path already has.
func (b *Bus) NeedsEvents(class string) bool {
	if b.cfg.Log != nil {
		return true
	}
	b.streamMu.Lock()
	open := len(b.streams)
	b.streamMu.Unlock()
	if open > 0 {
		return true
	}
	b.subMu.RLock()
	defer b.subMu.RUnlock()
	for _, sub := range b.subs {
		if sub.Class == class {
			return true
		}
	}
	for _, subs := range b.classSubs {
		for _, sub := range subs {
			if sub.Class == class {
				return true
			}
		}
	}
	return false
}

// dispatch fans one event out to every matching subscription and
// stream, collecting matches into the caller's scratch slice (returned
// so the caller can reuse its growth). Sink work is only scheduled
// here — webhook POSTs and consumer runs execute on the delivery pool,
// so a slow endpoint cannot stall this shard's queue (the head-of-line
// defect the pool exists to fix).
func (b *Bus) dispatch(ev Event, matched []Subscription) []Subscription {
	dsp := b.cfg.Tracer.Attach(ev.Trace, "trigger.dispatch")
	b.subMu.RLock()
	for _, sub := range b.subs {
		if sub.matches(ev) {
			matched = append(matched, sub)
		}
	}
	for _, subs := range b.classSubs {
		for _, sub := range subs {
			if sub.matches(ev) {
				matched = append(matched, sub)
			}
		}
	}
	b.subMu.RUnlock()
	for _, sub := range matched {
		if b.cfg.Log != nil && sub.ID != "" && ev.Offset > 0 {
			// Durable path: the subscription's cursor consumer picks
			// the event up from the log.
			b.notify(sub, ev.Object, ev.Offset)
			continue
		}
		if sub.Webhook != "" {
			b.enqueueDirect(sub, ev)
			continue
		}
		b.deliverMethodCounted(sub, ev)
	}
	b.deliverStreams(ev)
	dsp.SetInt("matched", len(matched))
	dsp.SetAttr("type", string(ev.Type))
	dsp.End()
	return matched
}

// notify schedules (or re-arms) the cursor consumer of one
// (subscription, object) pair. offset is the just-appended event's
// offset, used to seed the initial cursor — a consumer starts at its
// first matching event, not at the log floor, so subscribing does not
// replay history; zero means "resume from the stored cursor"
// (recovery).
func (b *Bus) notify(sub Subscription, object string, offset int64) {
	if _, ok := b.cfg.Log.Cursor(sub.ID, object); !ok {
		if offset <= 0 {
			return
		}
		// First contact: persist the cursor write-through so a crash
		// after this point redelivers the event instead of forgetting
		// the consumer ever existed.
		if err := b.cfg.Log.SetCursor(b.killCtx, sub.ID, object, offset); err != nil {
			b.cfg.Metrics.Counter("trigger.dropped").Inc()
			if c := b.subCountersFor(sub.ID); c != nil {
				c.dropped.Add(1)
			}
			return
		}
	}
	key := sub.ID + "\x00" + object
	b.delMu.Lock()
	defer b.delMu.Unlock()
	if b.delClosed {
		return
	}
	st, ok := b.delState[key]
	if !ok {
		st = &consumerState{object: object}
		b.delState[key] = st
	}
	st.sub = sub // refresh: a redeploy may have changed the sink
	if st.queued {
		st.rerun = true
		return
	}
	st.queued = true
	b.delQueue = append(b.delQueue, delItem{st: st})
	b.delCond.Broadcast()
}

// enqueueDirect schedules a one-shot webhook delivery (log-less mode
// only). The pool is fed by the bounded shard queues, so the FIFO here
// stays shallow.
func (b *Bus) enqueueDirect(sub Subscription, ev Event) {
	b.delMu.Lock()
	defer b.delMu.Unlock()
	if b.delClosed {
		b.cfg.Metrics.Counter("trigger.dropped").Inc()
		return
	}
	b.delQueue = append(b.delQueue, delItem{run: func() {
		c := b.subCountersFor(sub.ID)
		if b.deliverWebhook(sub.Webhook, ev, c) {
			b.cfg.Metrics.Counter("trigger.delivered").Inc()
			if c != nil {
				c.delivered.Add(1)
			}
		} else {
			b.cfg.Metrics.Counter("trigger.dropped").Inc()
			if c != nil {
				c.dropped.Add(1)
			}
		}
	}})
	b.delCond.Broadcast()
}

// deliveryWorker executes pool items until Close (after the queue
// drains) or Kill (immediately).
func (b *Bus) deliveryWorker() {
	defer b.delWg.Done()
	for {
		b.delMu.Lock()
		for len(b.delQueue) == 0 && !b.delClosed {
			b.delCond.Wait()
		}
		if len(b.delQueue) == 0 {
			b.delMu.Unlock()
			return
		}
		item := b.delQueue[0]
		b.delQueue = b.delQueue[1:]
		b.delBusy++
		b.delMu.Unlock()
		if item.st != nil {
			b.runConsumer(item.st)
		} else if !b.killed.Load() {
			item.run()
		}
		b.delMu.Lock()
		b.delBusy--
		if item.st != nil {
			if item.st.rerun && !b.killed.Load() {
				item.st.rerun = false
				b.delQueue = append(b.delQueue, delItem{st: item.st})
			} else {
				item.st.queued = false
			}
		}
		b.delCond.Broadcast()
		b.delMu.Unlock()
	}
}

// runConsumer advances one (subscription, object) cursor through the
// log, delivering every matching event in offset order. The cursor
// only moves past an event on success or a terminal failure; a
// retriable failure (webhook budget exhausted, async queue full)
// leaves it in place, so the delivery is re-attempted on the next
// notify and — because the cursor is durable — after a restart.
func (b *Bus) runConsumer(st *consumerState) {
	b.delMu.Lock()
	sub, object := st.sub, st.object
	b.delMu.Unlock()
	log, m := b.cfg.Log, b.cfg.Metrics
	c := b.subCountersFor(sub.ID)
	cursor, ok := log.Cursor(sub.ID, object)
	if !ok {
		return
	}
	for !b.killed.Load() {
		entries, err := log.Read(b.killCtx, object, cursor, 64)
		if errors.Is(err, eventlog.ErrOffsetCompacted) {
			// Retention overtook the consumer: the evicted entries are
			// undeliverable. Count them dropped and resume at the
			// floor.
			floor, _, berr := log.Bounds(b.killCtx, object)
			if berr != nil || floor <= cursor {
				return
			}
			m.Counter("trigger.dropped").Add(floor - cursor)
			if c != nil {
				c.dropped.Add(floor - cursor)
			}
			cursor = floor
			if err := log.SetCursor(b.killCtx, sub.ID, object, cursor); err != nil {
				return
			}
			continue
		}
		if err != nil || len(entries) == 0 {
			return
		}
		for _, e := range entries {
			if b.killed.Load() {
				return
			}
			var ev Event
			advance := true
			if uerr := json.Unmarshal(e.Payload, &ev); uerr == nil && sub.matches(ev) {
				var delivered bool
				delivered, advance = b.deliverDurable(sub, ev, c)
				if delivered {
					m.Counter("trigger.delivered").Inc()
					if c != nil {
						c.delivered.Add(1)
					}
				} else if advance {
					m.Counter("trigger.dropped").Inc()
					if c != nil {
						c.dropped.Add(1)
					}
				}
			}
			if !advance {
				return
			}
			cursor = e.Offset + 1
			if err := log.SetCursor(b.killCtx, sub.ID, object, cursor); err != nil {
				return
			}
		}
	}
}

// deliverDurable attempts one event's delivery for a cursor consumer,
// returning whether it succeeded and whether the cursor may advance
// (false only for retriable failures).
func (b *Bus) deliverDurable(sub Subscription, ev Event, c *subCounters) (delivered, advance bool) {
	if sub.Webhook != "" {
		if b.deliverWebhook(sub.Webhook, ev, c) {
			return true, true
		}
		// The retry budget is spent but the event is not lost: the
		// cursor stays put and the next notify (or restart) retries.
		// A permanently failing endpoint therefore stalls this
		// consumer — visible as growing CursorLag in Stats.
		return false, false
	}
	switch b.deliverMethod(sub, ev) {
	case methodDelivered:
		return true, true
	case methodRetry:
		return false, false
	default:
		return false, true
	}
}

// methodOutcome classifies one object-method delivery attempt.
type methodOutcome int

const (
	methodDelivered methodOutcome = iota
	// methodDropped is terminal: retrying cannot help (chain-depth
	// limit, no invoker, unmarshalable payload).
	methodDropped
	// methodRetry is transient: the async queue refused the submission
	// (full, quota, closed) and a later attempt may succeed.
	methodRetry
)

// deliverMethod routes an event to its object-method sink through the
// async queue, enforcing the chain depth limit.
func (b *Bus) deliverMethod(sub Subscription, ev Event) methodOutcome {
	m := b.cfg.Metrics
	if ev.Depth >= b.cfg.MaxChainDepth {
		// The chain has used its depth budget: terminate instead of
		// looping (a trigger targeting its own emitting class would
		// otherwise self-sustain forever).
		m.Counter("trigger.cycle_dropped").Inc()
		return methodDropped
	}
	if b.cfg.InvokeAsync == nil {
		return methodDropped
	}
	target := sub.TargetObject
	if target == "" {
		target = ev.Object
	}
	payload, err := json.Marshal(ev)
	if err != nil {
		return methodDropped
	}
	args := map[string]string{
		ArgSource: string(ev.Type),
		ArgDepth:  strconv.Itoa(ev.Depth + 1),
	}
	if _, err := b.cfg.InvokeAsync(context.Background(), target, sub.TargetFunction, payload, args); err != nil {
		// Full queue, quota, closed platform: retriable. Once
		// accepted, the delivery rides the async queue's own
		// durability.
		return methodRetry
	}
	return methodDelivered
}

// deliverMethodCounted is the log-less dispatch path: one attempt,
// failures counted dropped.
func (b *Bus) deliverMethodCounted(sub Subscription, ev Event) {
	m := b.cfg.Metrics
	c := b.subCountersFor(sub.ID)
	if b.deliverMethod(sub, ev) == methodDelivered {
		m.Counter("trigger.delivered").Inc()
		if c != nil {
			c.delivered.Add(1)
		}
		return
	}
	m.Counter("trigger.dropped").Inc()
	if c != nil {
		c.dropped.Add(1)
	}
}

// deliverWebhook POSTs the event, retrying failures with doubling
// backoff up to WebhookMaxRetries, and reports success. It runs on the
// delivery pool, never a dispatch loop.
func (b *Bus) deliverWebhook(url string, ev Event, c *subCounters) bool {
	m := b.cfg.Metrics
	wsp := b.cfg.Tracer.Attach(ev.Trace, "webhook.delivery")
	wsp.SetAttr("url", url)
	payload, err := json.Marshal(ev)
	if err != nil {
		wsp.Error(err)
		wsp.End()
		return false
	}
	backoff := b.cfg.WebhookBackoff
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			if err := b.cfg.Clock.Sleep(b.killCtx, b.jittered(backoff)); err != nil {
				wsp.SetInt("attempts", attempt)
				wsp.Error(err)
				wsp.End()
				return false
			}
			backoff *= 2
			m.Counter("trigger.retried").Inc()
			if c != nil {
				c.retried.Add(1)
			}
		}
		if b.postWebhook(url, ev, payload) {
			wsp.SetInt("attempts", attempt+1)
			wsp.End()
			return true
		}
		if attempt >= b.cfg.WebhookMaxRetries {
			wsp.SetInt("attempts", attempt+1)
			wsp.Error(errors.New("trigger: webhook retry budget exhausted"))
			wsp.End()
			return false
		}
	}
}

// postWebhook performs one delivery attempt.
func (b *Bus) postWebhook(url string, ev Event, payload []byte) bool {
	ctx, cancel := context.WithTimeout(b.killCtx, b.cfg.WebhookTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(payload))
	if err != nil {
		return false
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Oprc-Event", string(ev.Type))
	resp, err := b.cfg.HTTPClient.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode >= 200 && resp.StatusCode < 300
}

// deliverStreams copies the event to every live tail of its object.
func (b *Bus) deliverStreams(ev Event) {
	m := b.cfg.Metrics
	b.streamMu.Lock()
	defer b.streamMu.Unlock()
	for s := range b.streams[ev.Object] {
		select {
		case s.ch <- ev:
			m.Counter("trigger.delivered").Inc()
		default:
			// Slow consumer: losing its event beats stalling dispatch
			// for every other sink. With a log the loss is cosmetic —
			// the gateway replays the gap from the stored entries.
			m.Counter("trigger.dropped").Inc()
		}
	}
}

// Drain blocks until every accepted event has been dispatched and the
// delivery pool is quiet (webhook retries included). The async queue
// calls this from its Close so terminal-record webhooks drain before
// the platform tears down.
func (b *Bus) Drain() {
	b.pending.Wait()
	b.delMu.Lock()
	for (len(b.delQueue) > 0 || b.delBusy > 0) && !b.killed.Load() {
		b.delCond.Wait()
	}
	b.delMu.Unlock()
	// Pool runs may have published follow-on events (method sinks
	// chain); cover the dispatch of anything they enqueued.
	b.pending.Wait()
}

// SubscriptionStats is one subscription's delivery counters.
type SubscriptionStats struct {
	// Delivered counts successful sink deliveries.
	Delivered int64 `json:"delivered"`
	// Retried counts webhook re-POSTs under the backoff policy.
	Retried int64 `json:"retried"`
	// Dropped counts terminally failed deliveries (and, for durable
	// consumers, retention-evicted undelivered events).
	Dropped int64 `json:"dropped"`
	// CursorLag sums the undelivered backlog across the
	// subscription's cursors (durable mode only): log end minus
	// cursor, over every object the consumer has touched. A growing
	// lag with no deliveries is the signature of a stuck sink.
	CursorLag int64 `json:"cursorLag"`
}

// Stats is a point-in-time bus snapshot.
type Stats struct {
	// Emitted counts published events (before any routing decision).
	Emitted int64 `json:"emitted"`
	// Delivered counts successful sink deliveries (method submissions,
	// webhook 2xx responses, stream sends) — one event fanning to N
	// sinks counts N.
	Delivered int64 `json:"delivered"`
	// Dropped counts lost deliveries and events: shard overflow, full
	// streams, exhausted webhooks, failed method submissions, and
	// chain-depth terminations.
	Dropped int64 `json:"dropped"`
	// Retried counts webhook re-POSTs under the backoff policy.
	Retried int64 `json:"retried"`
	// CycleDropped counts method deliveries suppressed by the chain
	// depth limit (also included in Dropped).
	CycleDropped int64 `json:"cycle_dropped"`
	// LogFailed counts events whose durable append failed (dispatched
	// best-effort instead).
	LogFailed int64 `json:"log_failed,omitempty"`
	// Subscriptions holds per-subscription delivery counters, keyed by
	// durable identity ("named/<name>", "class/<class>/<id>").
	Subscriptions map[string]SubscriptionStats `json:"subscriptions,omitempty"`
}

// Stats snapshots the bus counters.
func (b *Bus) Stats() Stats {
	m := b.cfg.Metrics
	st := Stats{
		Emitted:      m.Counter("trigger.emitted").Value(),
		Delivered:    m.Counter("trigger.delivered").Value(),
		Dropped:      m.Counter("trigger.dropped").Value(),
		Retried:      m.Counter("trigger.retried").Value(),
		CycleDropped: m.Counter("trigger.cycle_dropped").Value(),
		LogFailed:    m.Counter("trigger.log_failed").Value(),
	}
	b.subStatsMu.Lock()
	if len(b.subStats) > 0 {
		st.Subscriptions = make(map[string]SubscriptionStats, len(b.subStats))
		for id, c := range b.subStats {
			st.Subscriptions[id] = SubscriptionStats{
				Delivered: c.delivered.Load(),
				Retried:   c.retried.Load(),
				Dropped:   c.dropped.Load(),
			}
		}
	}
	b.subStatsMu.Unlock()
	if b.cfg.Log != nil {
		for id, s := range st.Subscriptions {
			s.CursorLag = b.cfg.Log.CursorLag(id)
			st.Subscriptions[id] = s
		}
	}
	return st
}

// SubscriptionStatsFor returns one subscription's counters by durable
// identity.
func (b *Bus) SubscriptionStatsFor(id string) SubscriptionStats {
	var s SubscriptionStats
	b.subStatsMu.Lock()
	if c, ok := b.subStats[id]; ok {
		s.Delivered = c.delivered.Load()
		s.Retried = c.retried.Load()
		s.Dropped = c.dropped.Load()
	}
	b.subStatsMu.Unlock()
	if b.cfg.Log != nil {
		s.CursorLag = b.cfg.Log.CursorLag(id)
	}
	return s
}

// Close stops intake, drains every accepted event through dispatch and
// the delivery pool, stops the workers, and closes all live streams.
// Idempotent.
func (b *Bus) Close() {
	b.shutdown(false)
}

// Kill models process death: intake stops, queued events and pool work
// are abandoned (not drained), in-flight webhook requests and backoff
// sleeps are cancelled. The durable log is untouched — everything
// appended before the kill is recoverable, which is exactly what the
// crash/replay tests assert.
func (b *Bus) Kill() {
	b.killed.Store(true)
	b.killCancel()
	b.shutdown(true)
}

func (b *Bus) shutdown(kill bool) {
	b.pubMu.Lock()
	if b.closed {
		b.pubMu.Unlock()
		return
	}
	b.closed = true
	b.pubMu.Unlock()
	// No publisher can be mid-send now (sends hold pubMu's read side),
	// so closing the shard channels is race-free; the dispatchers drain
	// what was accepted and exit (a kill skips their dispatch work).
	for _, sh := range b.shards {
		close(sh.ch)
	}
	b.wg.Wait()
	// Dispatchers are gone — nothing enqueues pool work anymore. Let
	// the workers finish the backlog (or abandon it on kill) and exit.
	b.delMu.Lock()
	b.delClosed = true
	if kill {
		b.delQueue = nil
	}
	b.delCond.Broadcast()
	b.delMu.Unlock()
	b.delWg.Wait()
	b.streamMu.Lock()
	for _, set := range b.streams {
		for s := range set {
			s.once.Do(func() { close(s.ch) })
		}
	}
	b.streams = make(map[string]map[*Stream]struct{})
	b.streamMu.Unlock()
}
