// Package trigger implements the platform's event and trigger
// subsystem: a sharded, bounded event bus that turns committed state
// mutations and terminal asynchronous invocations into durable routed
// deliveries, making objects reactive instead of purely pull-based.
//
// Producers publish Events (the runtime emits StateChanged once per
// committed write invocation; the async queue emits
// InvocationCompleted/InvocationFailed on terminal records).
// Subscriptions — declared per class in YAML or managed dynamically —
// route matching events to one of three sinks:
//
//   - an object method, submitted through the platform's asynchronous
//     queue (data-triggered function chaining);
//   - a webhook URL, POSTed with bounded doubling-backoff retry;
//   - a live per-object stream (the gateway's SSE tail).
//
// The bus is sharded by object (per-object publish order is preserved
// through dispatch; note that under optimistic concurrency two racing
// commits on one object may publish in either order — emission happens
// after the validated commit lands, outside the table's shard locks,
// so event order tracks publish order, not version order, across
// concurrent lock-free committers) and bounded with an explicit
// overflow policy:
// OverflowDrop counts and discards events that find their shard full,
// OverflowBlock applies backpressure to the publisher. Object→object
// chains are cycle-limited: an event whose trigger-chain depth has
// reached Config.MaxChainDepth is not dispatched to method sinks, so a
// self- or mutually-triggering class terminates instead of looping
// forever. Close drains every accepted event before returning.
package trigger

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/hpcclab/oparaca-go/internal/metrics"
	"github.com/hpcclab/oparaca-go/internal/vclock"
)

// EventType discriminates the platform event kinds.
type EventType string

// Platform event types.
const (
	// StateChanged is emitted once per committed write invocation by
	// every runtime commit path (locked window, OCC/adaptive CAS
	// commit, InvokeBatch group commit). Aborted and readonly calls
	// emit nothing.
	StateChanged EventType = "stateChanged"
	// InvocationCompleted / InvocationFailed are emitted when an
	// asynchronous invocation record reaches its terminal status.
	InvocationCompleted EventType = "invocationCompleted"
	InvocationFailed    EventType = "invocationFailed"
)

// Valid reports whether t is a known event type.
func (t EventType) Valid() bool {
	switch t {
	case StateChanged, InvocationCompleted, InvocationFailed:
		return true
	}
	return false
}

// Invocation-argument keys the bus stamps onto trigger-fired
// invocations. The runtime reads ArgDepth back when the chained
// invocation commits, so the resulting event carries the chain depth
// and the cycle limit can terminate object→object loops.
const (
	// ArgSource names the event type that fired the invocation.
	ArgSource = "trigger"
	// ArgDepth is the trigger-chain depth of the invocation (1 for the
	// first chained hop).
	ArgDepth = "triggerDepth"
)

// DepthOf extracts the trigger-chain depth from invocation args (0 for
// client-initiated invocations).
func DepthOf(args map[string]string) int {
	if args == nil {
		return 0
	}
	d, err := strconv.Atoi(args[ArgDepth])
	if err != nil || d < 0 {
		return 0
	}
	return d
}

// Event is one platform occurrence routed by the bus.
type Event struct {
	// Seq is a bus-assigned monotone sequence number.
	Seq uint64 `json:"seq"`
	// Type discriminates the event kind.
	Type EventType `json:"type"`
	// Class and Object identify the emitting object.
	Class  string `json:"class"`
	Object string `json:"object"`
	// Function is the committing method (StateChanged) or the invoked
	// member (terminal invocation events).
	Function string `json:"function,omitempty"`
	// Keys lists the structured state keys the commit wrote, sorted
	// (StateChanged only; empty for a committed call whose delta was
	// empty).
	Keys []string `json:"keys,omitempty"`
	// Invocation is the asynchronous invocation ID (terminal events).
	Invocation string `json:"invocation,omitempty"`
	// Error is the failure message (InvocationFailed).
	Error string `json:"error,omitempty"`
	// Depth is the trigger-chain depth of the invocation that produced
	// the event (0 = client-initiated).
	Depth int `json:"depth,omitempty"`
	// Time is the emission instant.
	Time time.Time `json:"time"`
}

// Subscription routes matching events to one sink.
type Subscription struct {
	// Class filters events to one emitting class; required.
	Class string `json:"class"`
	// Type is the event type subscribed to; required.
	Type EventType `json:"type"`
	// KeyPrefix restricts StateChanged events to commits that wrote at
	// least one state key with this prefix. Only valid with
	// StateChanged.
	KeyPrefix string `json:"keyPrefix,omitempty"`
	// TargetObject / TargetFunction name the object-method sink: the
	// method is submitted through the async queue with the event as its
	// payload. An empty TargetObject targets the emitting object
	// itself.
	TargetObject   string `json:"targetObject,omitempty"`
	TargetFunction string `json:"targetFunction,omitempty"`
	// Webhook is the webhook-sink URL, POSTed the event JSON with
	// bounded doubling-backoff retry.
	Webhook string `json:"webhook,omitempty"`
}

// Validate checks the subscription shape: a known type, a class, and
// exactly one sink.
func (s Subscription) Validate() error {
	if s.Class == "" {
		return errors.New("trigger: subscription needs a class")
	}
	if !s.Type.Valid() {
		return fmt.Errorf("trigger: unknown event type %q (want %s, %s or %s)",
			s.Type, StateChanged, InvocationCompleted, InvocationFailed)
	}
	hasFn, hasHook := s.TargetFunction != "", s.Webhook != ""
	if hasFn == hasHook {
		return errors.New("trigger: subscription needs exactly one sink (targetFunction or webhook)")
	}
	if s.TargetObject != "" && !hasFn {
		return errors.New("trigger: targetObject requires targetFunction")
	}
	if s.KeyPrefix != "" && s.Type != StateChanged {
		return fmt.Errorf("trigger: keyPrefix only applies to %s subscriptions", StateChanged)
	}
	return nil
}

// matches reports whether the subscription wants ev.
func (s Subscription) matches(ev Event) bool {
	if s.Class != ev.Class || s.Type != ev.Type {
		return false
	}
	if s.KeyPrefix == "" {
		return true
	}
	for _, k := range ev.Keys {
		if len(k) >= len(s.KeyPrefix) && k[:len(s.KeyPrefix)] == s.KeyPrefix {
			return true
		}
	}
	return false
}

// OverflowPolicy selects what Publish does when a shard queue is full.
type OverflowPolicy string

// Overflow policies.
const (
	// OverflowDrop (the default) discards the event and counts it in
	// Stats().Dropped — emission never blocks the commit path.
	OverflowDrop OverflowPolicy = "drop"
	// OverflowBlock applies backpressure: Publish waits for shard
	// space, so no event is lost at the cost of commit-path latency.
	OverflowBlock OverflowPolicy = "block"
)

// Valid reports whether p is a known policy (including the default).
func (p OverflowPolicy) Valid() bool {
	return p == "" || p == OverflowDrop || p == OverflowBlock
}

// AsyncInvoker submits one chained invocation (the platform passes its
// InvokeAsync path; the indirection keeps this package core-free).
type AsyncInvoker func(ctx context.Context, objectID, member string, payload json.RawMessage, args map[string]string) (string, error)

// Config sizes a Bus.
type Config struct {
	// InvokeAsync realizes the object-method sink; nil fails such
	// deliveries (counted dropped).
	InvokeAsync AsyncInvoker
	// Shards partitions the bus; events are spread by emitting object,
	// so per-object order survives dispatch. Defaults to 4.
	Shards int
	// Buffer bounds each shard's queue. Defaults to 256.
	Buffer int
	// Overflow selects the full-shard behaviour. Defaults to
	// OverflowDrop.
	Overflow OverflowPolicy
	// MaxChainDepth bounds object→object trigger chains: an event at
	// this depth is not dispatched to method sinks (counted in
	// CycleDropped and Dropped). Defaults to 8.
	MaxChainDepth int
	// HTTPClient delivers webhooks; defaults to a client with
	// WebhookTimeout.
	HTTPClient *http.Client
	// WebhookMaxRetries re-POSTs a failed webhook delivery up to this
	// many additional times before dropping it. Defaults to 3;
	// negative disables retries entirely.
	WebhookMaxRetries int
	// WebhookBackoff is the delay before the first webhook retry,
	// doubled per attempt. Defaults to 10ms.
	WebhookBackoff time.Duration
	// WebhookTimeout bounds each delivery attempt. Defaults to 5s.
	WebhookTimeout time.Duration
	// Metrics receives the bus counters. A private registry is created
	// when nil.
	Metrics *metrics.Registry
	// Clock supplies time; defaults to the real clock.
	Clock vclock.Clock
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.Buffer <= 0 {
		c.Buffer = 256
	}
	if c.Overflow == "" {
		c.Overflow = OverflowDrop
	}
	if c.MaxChainDepth <= 0 {
		c.MaxChainDepth = 8
	}
	if c.WebhookMaxRetries < 0 {
		c.WebhookMaxRetries = 0
	} else if c.WebhookMaxRetries == 0 {
		c.WebhookMaxRetries = 3
	}
	if c.WebhookBackoff <= 0 {
		c.WebhookBackoff = 10 * time.Millisecond
	}
	if c.WebhookTimeout <= 0 {
		c.WebhookTimeout = 5 * time.Second
	}
	if c.HTTPClient == nil {
		c.HTTPClient = &http.Client{Timeout: c.WebhookTimeout}
	}
	if c.Metrics == nil {
		c.Metrics = metrics.NewRegistry()
	}
	if c.Clock == nil {
		c.Clock = vclock.NewReal()
	}
	return c
}

// busShard is one dispatch partition.
type busShard struct {
	ch chan Event
}

// Stream is one live per-object event tail (the gateway's SSE feed).
// Events arrive on Events() in commit order; a slow consumer whose
// buffer fills loses events (counted in Stats().Dropped) rather than
// stalling dispatch.
type Stream struct {
	bus    *Bus
	object string
	ch     chan Event
	once   sync.Once
}

// Events is the stream's receive side; it is closed when the stream or
// the bus closes.
func (s *Stream) Events() <-chan Event { return s.ch }

// Close detaches the stream from the bus and closes Events(). The
// once runs under streamMu (never the other way around), so it cannot
// deadlock against Bus.Close firing the same once while holding the
// lock.
func (s *Stream) Close() {
	b := s.bus
	b.streamMu.Lock()
	defer b.streamMu.Unlock()
	s.once.Do(func() {
		if set, ok := b.streams[s.object]; ok {
			delete(set, s)
			if len(set) == 0 {
				delete(b.streams, s.object)
			}
		}
		close(s.ch)
	})
}

// Bus is the event router. It is safe for concurrent use.
type Bus struct {
	cfg    Config
	shards []*busShard
	seq    atomic.Uint64

	// subs holds named subscriptions; classSubs the YAML-declared sets,
	// replaced wholesale on class redeploy. Both guarded by subMu.
	subMu     sync.RWMutex
	subs      map[string]Subscription
	classSubs map[string][]Subscription

	streamMu sync.Mutex
	streams  map[string]map[*Stream]struct{}

	// pubMu fences intake against Close: Publish holds the read side
	// across its closed-check and shard send, Close flips closed under
	// the write side, so once Close proceeds no publisher can be
	// mid-send and closing the shard channels is race-free.
	pubMu   sync.RWMutex
	closed  bool
	pending sync.WaitGroup // accepted-but-undispatched events
	wg      sync.WaitGroup // dispatcher goroutines
}

// New builds a bus and starts one dispatcher per shard.
func New(cfg Config) (*Bus, error) {
	cfg = cfg.withDefaults()
	if !cfg.Overflow.Valid() {
		return nil, fmt.Errorf("trigger: unknown overflow policy %q (want %s or %s)",
			cfg.Overflow, OverflowDrop, OverflowBlock)
	}
	b := &Bus{
		cfg:       cfg,
		shards:    make([]*busShard, cfg.Shards),
		subs:      make(map[string]Subscription),
		classSubs: make(map[string][]Subscription),
		streams:   make(map[string]map[*Stream]struct{}),
	}
	for i := range b.shards {
		b.shards[i] = &busShard{ch: make(chan Event, cfg.Buffer)}
		b.wg.Add(1)
		go b.dispatchLoop(b.shards[i])
	}
	return b, nil
}

// Metrics exposes the bus's registry.
func (b *Bus) Metrics() *metrics.Registry { return b.cfg.Metrics }

// shardFor routes an object's events to a fixed shard, preserving
// per-object dispatch order.
func (b *Bus) shardFor(object string) *busShard {
	h := fnv.New32a()
	_, _ = h.Write([]byte(object))
	return b.shards[h.Sum32()%uint32(len(b.shards))]
}

// Subscribe registers (or replaces) a named subscription.
func (b *Bus) Subscribe(name string, sub Subscription) error {
	if name == "" {
		return errors.New("trigger: subscription needs a name")
	}
	if err := sub.Validate(); err != nil {
		return err
	}
	b.subMu.Lock()
	b.subs[name] = sub
	b.subMu.Unlock()
	return nil
}

// Unsubscribe removes a named subscription, reporting whether it
// existed.
func (b *Bus) Unsubscribe(name string) bool {
	b.subMu.Lock()
	_, ok := b.subs[name]
	delete(b.subs, name)
	b.subMu.Unlock()
	return ok
}

// Subscriptions returns the named subscriptions, keys sorted.
func (b *Bus) Subscriptions() (names []string, subs map[string]Subscription) {
	b.subMu.RLock()
	subs = make(map[string]Subscription, len(b.subs))
	for name, sub := range b.subs {
		subs[name] = sub
		names = append(names, name)
	}
	b.subMu.RUnlock()
	sort.Strings(names)
	return names, subs
}

// SetClassTriggers replaces the YAML-declared subscription set of one
// class (called on every class deploy; redeploys swap the whole set).
// Invalid entries are skipped — the model layer validates declarations
// before they reach the bus.
func (b *Bus) SetClassTriggers(class string, subs []Subscription) {
	kept := make([]Subscription, 0, len(subs))
	for _, s := range subs {
		if s.Validate() == nil {
			kept = append(kept, s)
		}
	}
	b.subMu.Lock()
	if len(kept) == 0 {
		delete(b.classSubs, class)
	} else {
		b.classSubs[class] = kept
	}
	b.subMu.Unlock()
}

// Stream opens a live event tail for one object. buf bounds the
// consumer lag; <=0 selects 64.
func (b *Bus) Stream(object string, buf int) *Stream {
	if buf <= 0 {
		buf = 64
	}
	s := &Stream{bus: b, object: object, ch: make(chan Event, buf)}
	b.streamMu.Lock()
	set, ok := b.streams[object]
	if !ok {
		set = make(map[*Stream]struct{})
		b.streams[object] = set
	}
	set[s] = struct{}{}
	b.streamMu.Unlock()
	return s
}

// Publish routes one event. It assigns Seq and Time, counts the
// emission, and enqueues onto the object's shard under the configured
// overflow policy. Publishing on a closed bus discards the event.
func (b *Bus) Publish(ev Event) {
	m := b.cfg.Metrics
	ev.Seq = b.seq.Add(1)
	if ev.Time.IsZero() {
		ev.Time = b.cfg.Clock.Now()
	}
	m.Counter("trigger.emitted").Inc()
	b.pubMu.RLock()
	defer b.pubMu.RUnlock()
	if b.closed {
		m.Counter("trigger.dropped").Inc()
		return
	}
	sh := b.shardFor(ev.Object)
	b.pending.Add(1)
	if b.cfg.Overflow == OverflowBlock {
		// Backpressure: wait for shard space. The dispatchers keep
		// draining (Close cannot pass pubMu while we hold the read
		// side), so the send always completes.
		sh.ch <- ev
		return
	}
	select {
	case sh.ch <- ev:
	default:
		b.pending.Done()
		m.Counter("trigger.dropped").Inc()
	}
}

// dispatchLoop drains one shard until Close closes its channel.
func (b *Bus) dispatchLoop(sh *busShard) {
	defer b.wg.Done()
	for ev := range sh.ch {
		b.dispatch(ev)
		b.pending.Done()
	}
}

// dispatch fans one event out to every matching subscription and
// stream.
func (b *Bus) dispatch(ev Event) {
	b.subMu.RLock()
	matched := make([]Subscription, 0, 4)
	for _, sub := range b.subs {
		if sub.matches(ev) {
			matched = append(matched, sub)
		}
	}
	for _, subs := range b.classSubs {
		for _, sub := range subs {
			if sub.matches(ev) {
				matched = append(matched, sub)
			}
		}
	}
	b.subMu.RUnlock()
	for _, sub := range matched {
		if sub.Webhook != "" {
			b.deliverWebhook(sub.Webhook, ev)
			continue
		}
		b.deliverMethod(sub, ev)
	}
	b.deliverStreams(ev)
}

// deliverMethod routes an event to its object-method sink through the
// async queue, enforcing the chain depth limit.
func (b *Bus) deliverMethod(sub Subscription, ev Event) {
	m := b.cfg.Metrics
	if ev.Depth >= b.cfg.MaxChainDepth {
		// The chain has used its depth budget: terminate instead of
		// looping (a trigger targeting its own emitting class would
		// otherwise self-sustain forever).
		m.Counter("trigger.cycle_dropped").Inc()
		m.Counter("trigger.dropped").Inc()
		return
	}
	if b.cfg.InvokeAsync == nil {
		m.Counter("trigger.dropped").Inc()
		return
	}
	target := sub.TargetObject
	if target == "" {
		target = ev.Object
	}
	payload, err := json.Marshal(ev)
	if err != nil {
		m.Counter("trigger.dropped").Inc()
		return
	}
	args := map[string]string{
		ArgSource: string(ev.Type),
		ArgDepth:  strconv.Itoa(ev.Depth + 1),
	}
	if _, err := b.cfg.InvokeAsync(context.Background(), target, sub.TargetFunction, payload, args); err != nil {
		// Unknown target, full queue, closed platform: the delivery is
		// lost, not retried — method sinks ride the async queue's own
		// durability once accepted.
		m.Counter("trigger.dropped").Inc()
		return
	}
	m.Counter("trigger.delivered").Inc()
}

// deliverWebhook POSTs the event, retrying failures with doubling
// backoff up to WebhookMaxRetries before dropping the delivery.
func (b *Bus) deliverWebhook(url string, ev Event) {
	m := b.cfg.Metrics
	payload, err := json.Marshal(ev)
	if err != nil {
		m.Counter("trigger.dropped").Inc()
		return
	}
	backoff := b.cfg.WebhookBackoff
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			if err := b.cfg.Clock.Sleep(context.Background(), backoff); err != nil {
				break
			}
			backoff *= 2
			m.Counter("trigger.retried").Inc()
		}
		if b.postWebhook(url, ev, payload) {
			m.Counter("trigger.delivered").Inc()
			return
		}
		if attempt >= b.cfg.WebhookMaxRetries {
			break
		}
	}
	m.Counter("trigger.dropped").Inc()
}

// postWebhook performs one delivery attempt.
func (b *Bus) postWebhook(url string, ev Event, payload []byte) bool {
	ctx, cancel := context.WithTimeout(context.Background(), b.cfg.WebhookTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(payload))
	if err != nil {
		return false
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Oprc-Event", string(ev.Type))
	resp, err := b.cfg.HTTPClient.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode >= 200 && resp.StatusCode < 300
}

// deliverStreams copies the event to every live tail of its object.
func (b *Bus) deliverStreams(ev Event) {
	m := b.cfg.Metrics
	b.streamMu.Lock()
	defer b.streamMu.Unlock()
	for s := range b.streams[ev.Object] {
		select {
		case s.ch <- ev:
			m.Counter("trigger.delivered").Inc()
		default:
			// Slow consumer: losing its event beats stalling dispatch
			// for every other sink.
			m.Counter("trigger.dropped").Inc()
		}
	}
}

// Drain blocks until every accepted event has been dispatched (webhook
// retries included — delivery runs inside dispatch). The async queue
// calls this from its Close so terminal-record webhooks drain before
// the platform tears down.
func (b *Bus) Drain() { b.pending.Wait() }

// Stats is a point-in-time bus snapshot.
type Stats struct {
	// Emitted counts published events (before any routing decision).
	Emitted int64 `json:"emitted"`
	// Delivered counts successful sink deliveries (method submissions,
	// webhook 2xx responses, stream sends) — one event fanning to N
	// sinks counts N.
	Delivered int64 `json:"delivered"`
	// Dropped counts lost deliveries and events: shard overflow, full
	// streams, exhausted webhooks, failed method submissions, and
	// chain-depth terminations.
	Dropped int64 `json:"dropped"`
	// Retried counts webhook re-POSTs under the backoff policy.
	Retried int64 `json:"retried"`
	// CycleDropped counts method deliveries suppressed by the chain
	// depth limit (also included in Dropped).
	CycleDropped int64 `json:"cycle_dropped"`
}

// Stats snapshots the bus counters.
func (b *Bus) Stats() Stats {
	m := b.cfg.Metrics
	return Stats{
		Emitted:      m.Counter("trigger.emitted").Value(),
		Delivered:    m.Counter("trigger.delivered").Value(),
		Dropped:      m.Counter("trigger.dropped").Value(),
		Retried:      m.Counter("trigger.retried").Value(),
		CycleDropped: m.Counter("trigger.cycle_dropped").Value(),
	}
}

// Close stops intake, drains every accepted event through dispatch,
// stops the dispatchers, and closes all live streams. Idempotent.
func (b *Bus) Close() {
	b.pubMu.Lock()
	if b.closed {
		b.pubMu.Unlock()
		return
	}
	b.closed = true
	b.pubMu.Unlock()
	// No publisher can be mid-send now (sends hold pubMu's read side),
	// so closing the shard channels is race-free; the dispatchers drain
	// what was accepted and exit.
	for _, sh := range b.shards {
		close(sh.ch)
	}
	b.wg.Wait()
	b.streamMu.Lock()
	for _, set := range b.streams {
		for s := range set {
			s.once.Do(func() { close(s.ch) })
		}
	}
	b.streams = make(map[string]map[*Stream]struct{})
	b.streamMu.Unlock()
}
