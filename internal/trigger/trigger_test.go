package trigger

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/hpcclab/oparaca-go/internal/eventlog"
	"github.com/hpcclab/oparaca-go/internal/kvstore"
)

// newBus builds a bus with test-friendly webhook timing.
func newBus(t *testing.T, cfg Config) *Bus {
	t.Helper()
	if cfg.WebhookBackoff == 0 {
		cfg.WebhookBackoff = time.Millisecond
	}
	if cfg.WebhookTimeout == 0 {
		cfg.WebhookTimeout = 2 * time.Second
	}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(b.Close)
	return b
}

func TestSubscriptionValidation(t *testing.T) {
	cases := []struct {
		name string
		sub  Subscription
		ok   bool
	}{
		{"method sink", Subscription{Class: "A", Type: StateChanged, TargetFunction: "f"}, true},
		{"webhook sink", Subscription{Class: "A", Type: InvocationCompleted, Webhook: "http://x"}, true},
		{"prefix filter", Subscription{Class: "A", Type: StateChanged, KeyPrefix: "k", TargetFunction: "f"}, true},
		{"no class", Subscription{Type: StateChanged, TargetFunction: "f"}, false},
		{"bad type", Subscription{Class: "A", Type: "boom", TargetFunction: "f"}, false},
		{"no sink", Subscription{Class: "A", Type: StateChanged}, false},
		{"two sinks", Subscription{Class: "A", Type: StateChanged, TargetFunction: "f", Webhook: "http://x"}, false},
		{"object without function", Subscription{Class: "A", Type: StateChanged, TargetObject: "o", Webhook: "http://x"}, false},
		{"prefix on terminal event", Subscription{Class: "A", Type: InvocationFailed, KeyPrefix: "k", TargetFunction: "f"}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := c.sub.Validate(); (err == nil) != c.ok {
				t.Fatalf("Validate() = %v, want ok=%v", err, c.ok)
			}
		})
	}
}

func TestMethodSinkRoutesThroughAsyncInvoker(t *testing.T) {
	type call struct {
		object, member string
		depth          string
		payload        Event
	}
	calls := make(chan call, 16)
	b := newBus(t, Config{
		InvokeAsync: func(_ context.Context, object, member string, payload json.RawMessage, args map[string]string) (string, error) {
			var ev Event
			if err := json.Unmarshal(payload, &ev); err != nil {
				t.Errorf("payload not an event: %v", err)
			}
			calls <- call{object: object, member: member, depth: args[ArgDepth], payload: ev}
			return "inv-1", nil
		},
	})
	if err := b.Subscribe("chain", Subscription{
		Class: "A", Type: StateChanged, KeyPrefix: "cou", TargetObject: "b-1", TargetFunction: "bump",
	}); err != nil {
		t.Fatal(err)
	}
	// Matching event: class, type and key prefix line up.
	b.Publish(Event{Type: StateChanged, Class: "A", Object: "a-1", Function: "set", Keys: []string{"count"}})
	// Non-matching: wrong prefix, wrong class, wrong type.
	b.Publish(Event{Type: StateChanged, Class: "A", Object: "a-1", Keys: []string{"other"}})
	b.Publish(Event{Type: StateChanged, Class: "B", Object: "b-9", Keys: []string{"count"}})
	b.Publish(Event{Type: InvocationCompleted, Class: "A", Object: "a-1"})
	b.Drain()
	select {
	case got := <-calls:
		if got.object != "b-1" || got.member != "bump" || got.depth != "1" {
			t.Fatalf("call = %+v", got)
		}
		if got.payload.Class != "A" || got.payload.Object != "a-1" || got.payload.Function != "set" {
			t.Fatalf("event payload = %+v", got.payload)
		}
	default:
		t.Fatal("method sink never invoked")
	}
	if len(calls) != 0 {
		t.Fatalf("unmatched events dispatched: %d extra calls", len(calls)+1)
	}
	if s := b.Stats(); s.Emitted != 4 || s.Delivered != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestMethodSinkDefaultsToEmittingObject(t *testing.T) {
	var target atomic.Value
	b := newBus(t, Config{
		InvokeAsync: func(_ context.Context, object, member string, _ json.RawMessage, _ map[string]string) (string, error) {
			target.Store(object + "." + member)
			return "inv", nil
		},
	})
	if err := b.Subscribe("self", Subscription{Class: "A", Type: StateChanged, TargetFunction: "react"}); err != nil {
		t.Fatal(err)
	}
	b.Publish(Event{Type: StateChanged, Class: "A", Object: "a-7"})
	b.Drain()
	if got := target.Load(); got != "a-7.react" {
		t.Fatalf("target = %v", got)
	}
}

func TestChainDepthLimitTerminates(t *testing.T) {
	// The invoker feeds every chained invocation straight back as a new
	// commit event at the stamped depth — a perfect self-loop. The
	// depth limit must cut it after MaxChainDepth hops.
	const maxDepth = 5
	var b *Bus
	var invocations atomic.Int64
	b = newBus(t, Config{
		MaxChainDepth: maxDepth,
		InvokeAsync: func(_ context.Context, object, _ string, _ json.RawMessage, args map[string]string) (string, error) {
			invocations.Add(1)
			b.Publish(Event{Type: StateChanged, Class: "Loop", Object: object, Depth: DepthOf(args)})
			return "inv", nil
		},
	})
	if err := b.Subscribe("loop", Subscription{Class: "Loop", Type: StateChanged, TargetFunction: "again"}); err != nil {
		t.Fatal(err)
	}
	b.Publish(Event{Type: StateChanged, Class: "Loop", Object: "l-1"})
	// The chain re-publishes from inside dispatch; wait until it stops.
	deadline := time.Now().Add(5 * time.Second)
	for {
		b.Drain()
		s := b.Stats()
		if s.CycleDropped > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("chain never terminated: %+v", s)
		}
		time.Sleep(time.Millisecond)
	}
	b.Drain()
	if got := invocations.Load(); got != maxDepth {
		t.Fatalf("chained invocations = %d, want %d", got, maxDepth)
	}
	if s := b.Stats(); s.CycleDropped != 1 || s.Dropped != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestWebhookRetryAndDrop(t *testing.T) {
	cases := []struct {
		name      string
		failures  int // consecutive 500s before a 200
		retries   int // configured max retries
		delivered int64
		dropped   int64
		retried   int64
	}{
		{"first try", 0, 3, 1, 0, 0},
		{"succeeds after retries", 2, 3, 1, 0, 2},
		{"exhausts and drops", 10, 2, 0, 1, 2},
		{"negative retries disable and drop immediately", 1, -1, 0, 1, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var hits atomic.Int64
			srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if r.Header.Get("X-Oprc-Event") != string(InvocationCompleted) {
					t.Errorf("missing event header")
				}
				if hits.Add(1) <= int64(c.failures) {
					w.WriteHeader(http.StatusInternalServerError)
					return
				}
				w.WriteHeader(http.StatusOK)
			}))
			defer srv.Close()
			// WebhookMaxRetries: 0 means "defaulted" (3); negative
			// disables retries.
			cfg := Config{WebhookMaxRetries: c.retries, WebhookBackoff: time.Millisecond}
			b := newBus(t, cfg)
			if err := b.Subscribe("hook", Subscription{Class: "A", Type: InvocationCompleted, Webhook: srv.URL}); err != nil {
				t.Fatal(err)
			}
			b.Publish(Event{Type: InvocationCompleted, Class: "A", Object: "a-1", Invocation: "inv-1"})
			b.Drain()
			s := b.Stats()
			if s.Delivered != c.delivered || s.Dropped != c.dropped || s.Retried != c.retried {
				t.Fatalf("stats = %+v, want delivered=%d dropped=%d retried=%d",
					s, c.delivered, c.dropped, c.retried)
			}
		})
	}
}

func TestWebhookUnreachableDrops(t *testing.T) {
	b := newBus(t, Config{WebhookMaxRetries: 1, WebhookBackoff: time.Millisecond, WebhookTimeout: 200 * time.Millisecond})
	if err := b.Subscribe("hook", Subscription{Class: "A", Type: InvocationFailed, Webhook: "http://127.0.0.1:1/nope"}); err != nil {
		t.Fatal(err)
	}
	b.Publish(Event{Type: InvocationFailed, Class: "A", Object: "a-1"})
	b.Drain()
	if s := b.Stats(); s.Dropped != 1 || s.Delivered != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestStreamReceivesObjectEventsInOrder(t *testing.T) {
	b := newBus(t, Config{})
	st := b.Stream("obj-1", 16)
	defer st.Close()
	other := b.Stream("obj-2", 16)
	defer other.Close()
	for i := 0; i < 5; i++ {
		b.Publish(Event{Type: StateChanged, Class: "A", Object: "obj-1", Keys: []string{fmt.Sprintf("k%d", i)}})
	}
	b.Drain()
	for i := 0; i < 5; i++ {
		select {
		case ev := <-st.Events():
			if len(ev.Keys) != 1 || ev.Keys[0] != fmt.Sprintf("k%d", i) {
				t.Fatalf("event %d = %+v (order broken)", i, ev)
			}
		case <-time.After(time.Second):
			t.Fatalf("stream starved at event %d", i)
		}
	}
	select {
	case ev := <-other.Events():
		t.Fatalf("obj-2 stream got obj-1 event: %+v", ev)
	default:
	}
}

func TestStreamOverflowDropsNotBlocks(t *testing.T) {
	b := newBus(t, Config{})
	st := b.Stream("obj-1", 2)
	defer st.Close()
	for i := 0; i < 10; i++ {
		b.Publish(Event{Type: StateChanged, Class: "A", Object: "obj-1"})
	}
	b.Drain()
	if s := b.Stats(); s.Dropped != 8 || s.Delivered != 2 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestStreamClosedOnBusClose(t *testing.T) {
	b, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	st := b.Stream("obj-1", 4)
	b.Close()
	select {
	case _, open := <-st.Events():
		if open {
			t.Fatal("expected closed channel")
		}
	case <-time.After(time.Second):
		t.Fatal("stream not closed by bus Close")
	}
	// Closing the stream after the bus is a no-op, not a double close.
	st.Close()
}

// TestStreamCloseRacesBusClose regression-tests the shutdown deadlock:
// a stream closing concurrently with the bus closing (an SSE client
// disconnecting during platform teardown) must not wedge either side.
func TestStreamCloseRacesBusClose(t *testing.T) {
	b, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	streams := make([]*Stream, 32)
	for i := range streams {
		streams[i] = b.Stream("obj", 4)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		var wg sync.WaitGroup
		for _, s := range streams {
			wg.Add(1)
			go func(s *Stream) {
				defer wg.Done()
				s.Close()
			}(s)
		}
		wg.Wait()
	}()
	b.Close()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("stream Close deadlocked against bus Close")
	}
}

func TestOverflowDropCounts(t *testing.T) {
	release := make(chan struct{})
	var delivered atomic.Int64
	b := newBus(t, Config{
		Shards: 1, Buffer: 2, Overflow: OverflowDrop,
		InvokeAsync: func(context.Context, string, string, json.RawMessage, map[string]string) (string, error) {
			<-release
			delivered.Add(1)
			return "inv", nil
		},
	})
	if err := b.Subscribe("slow", Subscription{Class: "A", Type: StateChanged, TargetFunction: "f"}); err != nil {
		t.Fatal(err)
	}
	// One event occupies the dispatcher (blocked on release), two fill
	// the buffer, the rest must drop.
	for i := 0; i < 8; i++ {
		b.Publish(Event{Type: StateChanged, Class: "A", Object: "o"})
	}
	// Wait until the dispatcher has picked up the first event so the
	// drop accounting is deterministic... it may still be racing; only
	// assert the invariant sum.
	close(release)
	b.Drain()
	s := b.Stats()
	if s.Emitted != 8 {
		t.Fatalf("emitted = %d", s.Emitted)
	}
	if s.Dropped == 0 {
		t.Fatalf("no drops under overflow: %+v", s)
	}
	if delivered.Load()+s.Dropped != 8 {
		t.Fatalf("delivered %d + dropped %d != 8", delivered.Load(), s.Dropped)
	}
}

func TestOverflowBlockLosesNothing(t *testing.T) {
	var delivered atomic.Int64
	b := newBus(t, Config{
		Shards: 1, Buffer: 1, Overflow: OverflowBlock,
		InvokeAsync: func(context.Context, string, string, json.RawMessage, map[string]string) (string, error) {
			time.Sleep(100 * time.Microsecond)
			delivered.Add(1)
			return "inv", nil
		},
	})
	if err := b.Subscribe("s", Subscription{Class: "A", Type: StateChanged, TargetFunction: "f"}); err != nil {
		t.Fatal(err)
	}
	const n = 64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n/4; i++ {
				b.Publish(Event{Type: StateChanged, Class: "A", Object: "o"})
			}
		}()
	}
	wg.Wait()
	b.Drain()
	if got := delivered.Load(); got != n {
		t.Fatalf("delivered = %d, want %d", got, n)
	}
	if s := b.Stats(); s.Dropped != 0 {
		t.Fatalf("dropped = %d under block policy", s.Dropped)
	}
}

func TestPublishAfterCloseIsDropped(t *testing.T) {
	b, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	b.Close()
	b.Publish(Event{Type: StateChanged, Class: "A", Object: "o"}) // must not panic
	if s := b.Stats(); s.Dropped != 1 {
		t.Fatalf("stats = %+v", s)
	}
	b.Close() // idempotent
}

func TestSetClassTriggersReplacesSet(t *testing.T) {
	var calls atomic.Int64
	b := newBus(t, Config{
		InvokeAsync: func(context.Context, string, string, json.RawMessage, map[string]string) (string, error) {
			calls.Add(1)
			return "inv", nil
		},
	})
	b.SetClassTriggers("A", []Subscription{{Class: "A", Type: StateChanged, TargetFunction: "f"}})
	b.Publish(Event{Type: StateChanged, Class: "A", Object: "o"})
	b.Drain()
	if calls.Load() != 1 {
		t.Fatalf("calls = %d", calls.Load())
	}
	// Redeploy with no triggers: the old set must be gone.
	b.SetClassTriggers("A", nil)
	b.Publish(Event{Type: StateChanged, Class: "A", Object: "o"})
	b.Drain()
	if calls.Load() != 1 {
		t.Fatalf("replaced trigger still fired: calls = %d", calls.Load())
	}
}

func TestUnsubscribeStopsDelivery(t *testing.T) {
	var calls atomic.Int64
	b := newBus(t, Config{
		InvokeAsync: func(context.Context, string, string, json.RawMessage, map[string]string) (string, error) {
			calls.Add(1)
			return "inv", nil
		},
	})
	if err := b.Subscribe("s", Subscription{Class: "A", Type: StateChanged, TargetFunction: "f"}); err != nil {
		t.Fatal(err)
	}
	if !b.Unsubscribe("s") {
		t.Fatal("Unsubscribe returned false for a live subscription")
	}
	if b.Unsubscribe("s") {
		t.Fatal("double Unsubscribe returned true")
	}
	b.Publish(Event{Type: StateChanged, Class: "A", Object: "o"})
	b.Drain()
	if calls.Load() != 0 {
		t.Fatalf("unsubscribed sink fired %d times", calls.Load())
	}
	names, _ := b.Subscriptions()
	if len(names) != 0 {
		t.Fatalf("subscriptions = %v", names)
	}
}

// TestStalledWebhookDoesNotBlockStreams is the head-of-line
// regression test: webhook delivery runs on the delivery pool, so a
// webhook hung mid-request on one object must not delay stream
// delivery for a different object routed to the same shard.
func TestStalledWebhookDoesNotBlockStreams(t *testing.T) {
	release := make(chan struct{})
	var stalled atomic.Bool
	srv := httptest.NewServer(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		stalled.Store(true)
		<-release
	}))
	defer srv.Close()
	// Unblock the handler before srv.Close (which waits for in-flight
	// requests) and before the bus cleanup drains the delivery pool.
	defer close(release)
	// One shard forces both objects through the same dispatch loop.
	b := newBus(t, Config{Shards: 1, WebhookTimeout: 5 * time.Second})
	if err := b.Subscribe("hook", Subscription{Class: "A", Type: StateChanged, Webhook: srv.URL}); err != nil {
		t.Fatal(err)
	}
	st := b.Stream("b-1", 8)
	defer st.Close()
	b.Publish(Event{Type: StateChanged, Class: "A", Object: "a-1", Keys: []string{"k"}})
	deadline := time.Now().Add(5 * time.Second)
	for !stalled.Load() {
		if time.Now().After(deadline) {
			t.Fatal("webhook never reached the stalling handler")
		}
		time.Sleep(time.Millisecond)
	}
	b.Publish(Event{Type: StateChanged, Class: "B", Object: "b-1", Keys: []string{"k"}})
	select {
	case ev := <-st.Events():
		if ev.Object != "b-1" {
			t.Fatalf("stream got event for %q", ev.Object)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("stream delivery stalled behind a hung webhook on the same shard")
	}
}

// TestShardForNoAllocs pins the inlined FNV-1a fold at zero
// allocations per publish-path hash and checks it agrees with the
// stdlib hasher it replaced.
func TestShardForNoAllocs(t *testing.T) {
	b := newBus(t, Config{Shards: 8})
	objects := []string{"", "a-1", "counter-with-a-much-longer-object-name"}
	for _, obj := range objects {
		if n := testing.AllocsPerRun(200, func() { b.shardFor(obj) }); n != 0 {
			t.Errorf("shardFor(%q) allocates %.1f per call, want 0", obj, n)
		}
	}
	for _, obj := range objects {
		h := fnv.New32a()
		_, _ = h.Write([]byte(obj))
		want := b.shards[h.Sum32()%uint32(len(b.shards))]
		if got := b.shardFor(obj); got != want {
			t.Errorf("shardFor(%q) diverges from hash/fnv", obj)
		}
	}
}

// TestNeedsEvents pins the publish-gate the runtime consults before
// constructing events at all (Infra.EventsNeeded): a bus with a
// durable log always needs them (the log is a standing consumer —
// replay must work with zero subscribers), otherwise only classes
// with a matching subscription, any open stream making the answer a
// global yes.
func TestNeedsEvents(t *testing.T) {
	b := newBus(t, Config{})
	if b.NeedsEvents("Order") {
		t.Fatal("fresh bus with no log/subs/streams claims to need events")
	}
	// A named subscription gates by class.
	if err := b.Subscribe("s1", Subscription{
		Class: "Order", Type: StateChanged, Webhook: "http://127.0.0.1:1/sink",
	}); err != nil {
		t.Fatal(err)
	}
	if !b.NeedsEvents("Order") {
		t.Fatal("subscribed class not needed")
	}
	if b.NeedsEvents("Other") {
		t.Fatal("unsubscribed class needed")
	}
	b.Unsubscribe("s1")
	if b.NeedsEvents("Order") {
		t.Fatal("unsubscribe did not clear the need")
	}
	// Class triggers (YAML-declared) gate the same way.
	b.SetClassTriggers("Photo", []Subscription{{
		Class: "Photo", Type: StateChanged, TargetFunction: "makeThumbnail",
	}})
	if !b.NeedsEvents("Photo") || b.NeedsEvents("Order") {
		t.Fatal("class triggers not reflected per class")
	}
	b.SetClassTriggers("Photo", nil)
	// An open stream is object-scoped at delivery but class-blind at
	// the gate: any live stream means every class publishes.
	st := b.Stream("obj-1", 4)
	if !b.NeedsEvents("Order") {
		t.Fatal("open stream ignored")
	}
	st.Close()
	// Stream teardown is synchronous on Close.
	if b.NeedsEvents("Order") {
		t.Fatal("closed stream still forces publishing")
	}
}

// TestNeedsEventsWithDurableLog: a durable log makes every class need
// events regardless of subscriptions — replay and cursor redelivery
// depend on the log seeing commits that had no live consumer.
func TestNeedsEventsWithDurableLog(t *testing.T) {
	st := kvstore.Open(kvstore.Config{})
	t.Cleanup(func() { st.Close() })
	l, err := eventlog.New(eventlog.Config{Backing: st})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	b := newBus(t, Config{Log: l})
	if !b.NeedsEvents("Anything") {
		t.Fatal("bus with durable log must always need events")
	}
}
