// Package loadgen provides closed-loop and open-loop workload
// generators plus latency/throughput reporting for the benchmark
// harness that regenerates the paper's evaluation (§V).
package loadgen

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"github.com/hpcclab/oparaca-go/internal/metrics"
	"github.com/hpcclab/oparaca-go/internal/vclock"
)

// Op is one unit of workload. The worker index lets operations spread
// across objects or keys.
type Op func(ctx context.Context, worker int) error

// Config shapes a load run.
type Config struct {
	// Concurrency is the number of closed-loop workers. Defaults 8.
	Concurrency int
	// Duration is the measured run length. Defaults to 1s.
	Duration time.Duration
	// Warmup runs the workload unmeasured first. Default 0.
	Warmup time.Duration
	// TargetRPS, when > 0, makes the run open-loop: operations are
	// admitted at this rate regardless of completion.
	TargetRPS float64
	// Clock supplies time; defaults to the real clock.
	Clock vclock.Clock
}

func (c Config) withDefaults() Config {
	if c.Concurrency <= 0 {
		c.Concurrency = 8
	}
	if c.Duration <= 0 {
		c.Duration = time.Second
	}
	if c.Clock == nil {
		c.Clock = vclock.NewReal()
	}
	return c
}

// Report summarizes a load run.
type Report struct {
	// Elapsed is the measured wall time.
	Elapsed time.Duration `json:"elapsed"`
	// Ops / Errors count completed operations.
	Ops    int64 `json:"ops"`
	Errors int64 `json:"errors"`
	// ThroughputOPS is Ops divided by Elapsed.
	ThroughputOPS float64 `json:"throughput_ops"`
	// Latency summarizes successful-op latencies.
	Latency metrics.HistogramSnapshot `json:"latency"`
}

// Run drives op under cfg and reports the measured throughput.
func Run(ctx context.Context, cfg Config, op Op) Report {
	cfg = cfg.withDefaults()
	if cfg.Warmup > 0 {
		warmCfg := cfg
		warmCfg.Warmup = 0
		warmCfg.Duration = cfg.Warmup
		_ = Run(ctx, warmCfg, op)
	}

	var (
		okOps  atomic.Int64
		errOps atomic.Int64
		hist   metrics.Histogram
	)
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var admit *vclock.TokenBucket
	if cfg.TargetRPS > 0 {
		admit = vclock.NewTokenBucket(cfg.Clock, cfg.TargetRPS, cfg.TargetRPS/10+1)
	}

	start := cfg.Clock.Now()
	deadline := start.Add(cfg.Duration)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				if cfg.Clock.Now().After(deadline) || runCtx.Err() != nil {
					return
				}
				if admit != nil {
					if err := admit.Take(runCtx, 1); err != nil {
						return
					}
				}
				opStart := cfg.Clock.Now()
				err := op(runCtx, worker)
				if runCtx.Err() != nil {
					return // do not count operations cut off at the end
				}
				if err != nil {
					errOps.Add(1)
					continue
				}
				hist.Observe(cfg.Clock.Since(opStart))
				okOps.Add(1)
			}
		}(w)
	}

	// End the run exactly at the deadline even if ops block.
	go func() {
		_ = cfg.Clock.Sleep(runCtx, cfg.Duration)
		cancel()
	}()
	wg.Wait()
	elapsed := cfg.Clock.Since(start)
	if elapsed <= 0 {
		elapsed = time.Nanosecond
	}
	return Report{
		Elapsed:       elapsed,
		Ops:           okOps.Load(),
		Errors:        errOps.Load(),
		ThroughputOPS: float64(okOps.Load()) / elapsed.Seconds(),
		Latency:       hist.Snapshot(),
	}
}
