package loadgen

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestClosedLoopCountsOps(t *testing.T) {
	var n atomic.Int64
	rep := Run(context.Background(), Config{Concurrency: 4, Duration: 100 * time.Millisecond},
		func(context.Context, int) error {
			n.Add(1)
			time.Sleep(time.Millisecond)
			return nil
		})
	if rep.Ops == 0 {
		t.Fatal("no ops recorded")
	}
	if rep.Ops > n.Load() {
		t.Fatalf("reported %d ops but only %d ran", rep.Ops, n.Load())
	}
	if rep.ThroughputOPS <= 0 {
		t.Fatalf("throughput = %v", rep.ThroughputOPS)
	}
}

func TestErrorsCountedSeparately(t *testing.T) {
	var n atomic.Int64
	rep := Run(context.Background(), Config{Concurrency: 2, Duration: 50 * time.Millisecond},
		func(context.Context, int) error {
			if n.Add(1)%2 == 0 {
				return errors.New("boom")
			}
			time.Sleep(time.Millisecond)
			return nil
		})
	if rep.Errors == 0 {
		t.Fatal("errors not counted")
	}
	if rep.Ops == 0 {
		t.Fatal("successes not counted")
	}
}

func TestWorkerIndexSpread(t *testing.T) {
	seen := make([]atomic.Int64, 4)
	Run(context.Background(), Config{Concurrency: 4, Duration: 50 * time.Millisecond},
		func(_ context.Context, w int) error {
			seen[w].Add(1)
			time.Sleep(time.Millisecond)
			return nil
		})
	for i := range seen {
		if seen[i].Load() == 0 {
			t.Fatalf("worker %d never ran", i)
		}
	}
}

func TestOpenLoopRespectsTargetRate(t *testing.T) {
	rep := Run(context.Background(), Config{
		Concurrency: 8,
		Duration:    300 * time.Millisecond,
		TargetRPS:   100,
	}, func(context.Context, int) error { return nil })
	// ~30 ops expected; allow generous headroom for the initial burst.
	if rep.ThroughputOPS > 250 {
		t.Fatalf("open loop ran at %v ops/s, target 100", rep.ThroughputOPS)
	}
}

func TestRunStopsAtDeadlineWithBlockingOps(t *testing.T) {
	start := time.Now()
	rep := Run(context.Background(), Config{Concurrency: 2, Duration: 80 * time.Millisecond},
		func(ctx context.Context, _ int) error {
			<-ctx.Done() // blocks until the run is cancelled
			return ctx.Err()
		})
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("run took %v; deadline not enforced", elapsed)
	}
	if rep.Ops != 0 {
		t.Fatalf("blocked ops counted: %d", rep.Ops)
	}
}

func TestContextCancellationStopsRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	Run(ctx, Config{Concurrency: 2, Duration: time.Hour},
		func(context.Context, int) error {
			time.Sleep(time.Millisecond)
			return nil
		})
	if time.Since(start) > 5*time.Second {
		t.Fatal("cancelled run did not stop")
	}
}

func TestWarmupNotMeasured(t *testing.T) {
	var phase atomic.Int64 // counts all executions including warmup
	rep := Run(context.Background(), Config{
		Concurrency: 1,
		Warmup:      50 * time.Millisecond,
		Duration:    50 * time.Millisecond,
	}, func(context.Context, int) error {
		phase.Add(1)
		time.Sleep(time.Millisecond)
		return nil
	})
	if rep.Ops >= phase.Load() {
		t.Fatalf("measured ops %d >= total %d; warmup was counted", rep.Ops, phase.Load())
	}
}

func TestLatencyRecorded(t *testing.T) {
	rep := Run(context.Background(), Config{Concurrency: 1, Duration: 60 * time.Millisecond},
		func(context.Context, int) error {
			time.Sleep(5 * time.Millisecond)
			return nil
		})
	if rep.Latency.Count == 0 {
		t.Fatal("no latency samples")
	}
	if rep.Latency.Mean < 2*time.Millisecond {
		t.Fatalf("mean latency = %v, implausibly low", rep.Latency.Mean)
	}
}

func TestDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Concurrency != 8 || cfg.Duration != time.Second || cfg.Clock == nil {
		t.Fatalf("defaults = %+v", cfg)
	}
}
