// Package objectstore implements the unstructured-data substrate
// (paper §III-D): an S3-protocol-style bucket/object store with
// HMAC-signed presigned URLs, so developer code can read and write
// multimedia state "without sharing the secret key and avoiding
// leaking sensitive information".
//
// The store is in-memory (with optional disk export) and is served
// over HTTP by Handler, mirroring the role MinIO/Ceph play for the
// real Oparaca deployment.
package objectstore

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/hpcclab/oparaca-go/internal/vclock"
)

// Sentinel errors.
var (
	// ErrNoSuchBucket is returned for operations on absent buckets.
	ErrNoSuchBucket = errors.New("objectstore: no such bucket")
	// ErrNoSuchKey is returned when an object does not exist.
	ErrNoSuchKey = errors.New("objectstore: no such key")
	// ErrBucketExists is returned by CreateBucket on a duplicate name.
	ErrBucketExists = errors.New("objectstore: bucket already exists")
	// ErrInvalidSignature is returned for bad or expired presigned URLs.
	ErrInvalidSignature = errors.New("objectstore: invalid or expired signature")
)

// Object is a stored blob plus metadata.
type Object struct {
	Key          string
	Data         []byte
	ContentType  string
	ETag         string
	LastModified time.Time
}

// UploadEvent describes one completed object write, delivered to
// subscribers (the platform uses this to trigger functions on upload,
// the paper's §II-D motivating scenario).
type UploadEvent struct {
	Bucket string `json:"bucket"`
	Key    string `json:"key"`
	ETag   string `json:"etag"`
	Size   int    `json:"size"`
}

// Store is an in-memory S3-like object store. It is safe for
// concurrent use.
type Store struct {
	secret []byte
	clock  vclock.Clock

	mu      sync.RWMutex
	buckets map[string]map[string]Object

	subMu       sync.RWMutex
	subscribers []func(UploadEvent)
}

// New creates a store whose presigned URLs are signed with secret.
func New(secret string, clock vclock.Clock) *Store {
	if clock == nil {
		clock = vclock.NewReal()
	}
	return &Store{
		secret:  []byte(secret),
		clock:   clock,
		buckets: make(map[string]map[string]Object),
	}
}

// CreateBucket makes a new bucket.
func (s *Store) CreateBucket(name string) error {
	if name == "" || strings.ContainsAny(name, "/ ") {
		return fmt.Errorf("objectstore: invalid bucket name %q", name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.buckets[name]; ok {
		return fmt.Errorf("%w: %q", ErrBucketExists, name)
	}
	s.buckets[name] = make(map[string]Object)
	return nil
}

// EnsureBucket creates the bucket if absent.
func (s *Store) EnsureBucket(name string) error {
	err := s.CreateBucket(name)
	if errors.Is(err, ErrBucketExists) {
		return nil
	}
	return err
}

// Put stores data under bucket/key and returns the object's ETag.
func (s *Store) Put(bucket, key string, data []byte, contentType string) (string, error) {
	if key == "" {
		return "", fmt.Errorf("objectstore: empty key")
	}
	sum := sha256.Sum256(data)
	etag := hex.EncodeToString(sum[:8])
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.buckets[bucket]
	if !ok {
		return "", fmt.Errorf("%w: %q", ErrNoSuchBucket, bucket)
	}
	b[key] = Object{
		Key:          key,
		Data:         append([]byte(nil), data...),
		ContentType:  contentType,
		ETag:         etag,
		LastModified: s.clock.Now(),
	}
	s.notify(UploadEvent{Bucket: bucket, Key: key, ETag: etag, Size: len(data)})
	return etag, nil
}

// Subscribe registers fn to receive upload events. Delivery is
// asynchronous and at-most-once; subscribers must tolerate missing
// events on shutdown.
func (s *Store) Subscribe(fn func(UploadEvent)) {
	s.subMu.Lock()
	defer s.subMu.Unlock()
	s.subscribers = append(s.subscribers, fn)
}

// notify fans an event out to subscribers without blocking the writer.
func (s *Store) notify(ev UploadEvent) {
	s.subMu.RLock()
	subs := make([]func(UploadEvent), len(s.subscribers))
	copy(subs, s.subscribers)
	s.subMu.RUnlock()
	for _, fn := range subs {
		go fn(ev)
	}
}

// Get returns the object at bucket/key.
func (s *Store) Get(bucket, key string) (Object, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	b, ok := s.buckets[bucket]
	if !ok {
		return Object{}, fmt.Errorf("%w: %q", ErrNoSuchBucket, bucket)
	}
	o, ok := b[key]
	if !ok {
		return Object{}, fmt.Errorf("%w: %s/%s", ErrNoSuchKey, bucket, key)
	}
	return o, nil
}

// Delete removes bucket/key. Deleting an absent key is not an error
// (matching S3 semantics).
func (s *Store) Delete(bucket, key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.buckets[bucket]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchBucket, bucket)
	}
	delete(b, key)
	return nil
}

// List returns keys in bucket with the given prefix, sorted.
func (s *Store) List(bucket, prefix string) ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	b, ok := s.buckets[bucket]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchBucket, bucket)
	}
	var keys []string
	for k := range b {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys, nil
}

// Presign produces the query string carrying a signature that
// authorizes one method on bucket/key until expiry. The canonical
// string covers method, path and expiry, so a GET URL cannot be
// replayed as a PUT and vice versa.
func (s *Store) Presign(method, bucket, key string, ttl time.Duration) url.Values {
	expires := s.clock.Now().Add(ttl).Unix()
	sig := s.sign(method, bucket, key, expires)
	v := url.Values{}
	v.Set("X-Oprc-Expires", strconv.FormatInt(expires, 10))
	v.Set("X-Oprc-Signature", sig)
	return v
}

// PresignURL renders a complete presigned URL for the store served at
// baseURL (e.g. "http://127.0.0.1:9000").
func (s *Store) PresignURL(baseURL, method, bucket, key string, ttl time.Duration) string {
	q := s.Presign(method, bucket, key, ttl)
	return fmt.Sprintf("%s/%s/%s?%s", strings.TrimRight(baseURL, "/"),
		url.PathEscape(bucket), escapeKeyPath(key), q.Encode())
}

// escapeKeyPath escapes each segment of an object key but keeps "/".
func escapeKeyPath(key string) string {
	parts := strings.Split(key, "/")
	for i, p := range parts {
		parts[i] = url.PathEscape(p)
	}
	return strings.Join(parts, "/")
}

// Verify checks a presigned query for the given method/bucket/key.
func (s *Store) Verify(method, bucket, key string, query url.Values) error {
	expStr := query.Get("X-Oprc-Expires")
	sig := query.Get("X-Oprc-Signature")
	if expStr == "" || sig == "" {
		return fmt.Errorf("%w: missing parameters", ErrInvalidSignature)
	}
	expires, err := strconv.ParseInt(expStr, 10, 64)
	if err != nil {
		return fmt.Errorf("%w: bad expiry", ErrInvalidSignature)
	}
	if s.clock.Now().Unix() > expires {
		return fmt.Errorf("%w: expired", ErrInvalidSignature)
	}
	want := s.sign(method, bucket, key, expires)
	if !hmac.Equal([]byte(want), []byte(sig)) {
		return fmt.Errorf("%w: signature mismatch", ErrInvalidSignature)
	}
	return nil
}

// sign computes the HMAC-SHA256 signature over the canonical request.
func (s *Store) sign(method, bucket, key string, expires int64) string {
	mac := hmac.New(sha256.New, s.secret)
	fmt.Fprintf(mac, "%s\n%s\n%s\n%d", strings.ToUpper(method), bucket, key, expires)
	return hex.EncodeToString(mac.Sum(nil))
}

// Handler serves the store over HTTP with S3-style paths
// /{bucket}/{key...}. All requests must carry a valid presigned
// signature; this mirrors Oparaca handing function code presigned URLs
// rather than credentials.
func (s *Store) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		path := strings.TrimPrefix(r.URL.Path, "/")
		bucket, key, ok := strings.Cut(path, "/")
		if !ok || bucket == "" || key == "" {
			http.Error(w, "expected /{bucket}/{key}", http.StatusBadRequest)
			return
		}
		bucket, err := url.PathUnescape(bucket)
		if err != nil {
			http.Error(w, "bad bucket encoding", http.StatusBadRequest)
			return
		}
		key, err = url.PathUnescape(key)
		if err != nil {
			http.Error(w, "bad key encoding", http.StatusBadRequest)
			return
		}
		if err := s.Verify(r.Method, bucket, key, r.URL.Query()); err != nil {
			http.Error(w, err.Error(), http.StatusForbidden)
			return
		}
		switch r.Method {
		case http.MethodGet:
			obj, err := s.Get(bucket, key)
			if err != nil {
				writeStoreError(w, err)
				return
			}
			if obj.ContentType != "" {
				w.Header().Set("Content-Type", obj.ContentType)
			}
			w.Header().Set("ETag", obj.ETag)
			w.Header().Set("Last-Modified", obj.LastModified.UTC().Format(http.TimeFormat))
			_, _ = w.Write(obj.Data)
		case http.MethodPut:
			data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 64<<20))
			if err != nil {
				http.Error(w, "body too large or unreadable", http.StatusBadRequest)
				return
			}
			etag, err := s.Put(bucket, key, data, r.Header.Get("Content-Type"))
			if err != nil {
				writeStoreError(w, err)
				return
			}
			w.Header().Set("ETag", etag)
			w.WriteHeader(http.StatusOK)
		case http.MethodDelete:
			if err := s.Delete(bucket, key); err != nil {
				writeStoreError(w, err)
				return
			}
			w.WriteHeader(http.StatusNoContent)
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})
}

// writeStoreError maps store errors to HTTP statuses.
func writeStoreError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrNoSuchBucket), errors.Is(err, ErrNoSuchKey):
		http.Error(w, err.Error(), http.StatusNotFound)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
