package objectstore

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"github.com/hpcclab/oparaca-go/internal/vclock"
)

func newStore() *Store { return New("test-secret", nil) }

func TestCreateBucket(t *testing.T) {
	s := newStore()
	if err := s.CreateBucket("media"); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateBucket("media"); !errors.Is(err, ErrBucketExists) {
		t.Fatalf("duplicate create = %v", err)
	}
	for _, bad := range []string{"", "has space", "has/slash"} {
		if err := s.CreateBucket(bad); err == nil {
			t.Errorf("CreateBucket(%q) succeeded", bad)
		}
	}
}

func TestEnsureBucketIdempotent(t *testing.T) {
	s := newStore()
	if err := s.EnsureBucket("b"); err != nil {
		t.Fatal(err)
	}
	if err := s.EnsureBucket("b"); err != nil {
		t.Fatalf("second EnsureBucket = %v", err)
	}
}

func TestPutGetDelete(t *testing.T) {
	s := newStore()
	s.CreateBucket("b")
	etag, err := s.Put("b", "img/cat.png", []byte("pngdata"), "image/png")
	if err != nil {
		t.Fatal(err)
	}
	if etag == "" {
		t.Fatal("empty etag")
	}
	obj, err := s.Get("b", "img/cat.png")
	if err != nil {
		t.Fatal(err)
	}
	if string(obj.Data) != "pngdata" || obj.ContentType != "image/png" {
		t.Fatalf("obj = %+v", obj)
	}
	if err := s.Delete("b", "img/cat.png"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("b", "img/cat.png"); !errors.Is(err, ErrNoSuchKey) {
		t.Fatalf("Get after delete = %v", err)
	}
	// S3 semantics: deleting absent key is fine.
	if err := s.Delete("b", "img/cat.png"); err != nil {
		t.Fatal(err)
	}
}

func TestMissingBucket(t *testing.T) {
	s := newStore()
	if _, err := s.Put("nope", "k", nil, ""); !errors.Is(err, ErrNoSuchBucket) {
		t.Fatalf("Put = %v", err)
	}
	if _, err := s.Get("nope", "k"); !errors.Is(err, ErrNoSuchBucket) {
		t.Fatalf("Get = %v", err)
	}
	if _, err := s.List("nope", ""); !errors.Is(err, ErrNoSuchBucket) {
		t.Fatalf("List = %v", err)
	}
}

func TestPutCopiesData(t *testing.T) {
	s := newStore()
	s.CreateBucket("b")
	buf := []byte("abc")
	s.Put("b", "k", buf, "")
	buf[0] = 'z'
	obj, _ := s.Get("b", "k")
	if string(obj.Data) != "abc" {
		t.Fatalf("store aliased caller buffer: %s", obj.Data)
	}
}

func TestListPrefix(t *testing.T) {
	s := newStore()
	s.CreateBucket("b")
	for _, k := range []string{"v/1.mp4", "v/2.mp4", "img/x.png"} {
		s.Put("b", k, nil, "")
	}
	keys, err := s.List("b", "v/")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 || keys[0] != "v/1.mp4" {
		t.Fatalf("List = %v", keys)
	}
}

func TestETagStableAcrossSameContent(t *testing.T) {
	s := newStore()
	s.CreateBucket("b")
	e1, _ := s.Put("b", "a", []byte("same"), "")
	e2, _ := s.Put("b", "c", []byte("same"), "")
	e3, _ := s.Put("b", "d", []byte("different"), "")
	if e1 != e2 {
		t.Fatal("same content produced different etags")
	}
	if e1 == e3 {
		t.Fatal("different content produced same etag")
	}
}

func TestPresignVerifyRoundTrip(t *testing.T) {
	s := newStore()
	q := s.Presign(http.MethodGet, "b", "k", time.Minute)
	if err := s.Verify(http.MethodGet, "b", "k", q); err != nil {
		t.Fatalf("Verify = %v", err)
	}
}

func TestPresignMethodBinding(t *testing.T) {
	s := newStore()
	q := s.Presign(http.MethodGet, "b", "k", time.Minute)
	if err := s.Verify(http.MethodPut, "b", "k", q); !errors.Is(err, ErrInvalidSignature) {
		t.Fatalf("GET signature accepted for PUT: %v", err)
	}
}

func TestPresignKeyBinding(t *testing.T) {
	s := newStore()
	q := s.Presign(http.MethodGet, "b", "k", time.Minute)
	if err := s.Verify(http.MethodGet, "b", "other", q); !errors.Is(err, ErrInvalidSignature) {
		t.Fatalf("signature accepted for different key: %v", err)
	}
	if err := s.Verify(http.MethodGet, "b2", "k", q); !errors.Is(err, ErrInvalidSignature) {
		t.Fatalf("signature accepted for different bucket: %v", err)
	}
}

func TestPresignExpiry(t *testing.T) {
	clock := vclock.NewManual(time.Unix(1000, 0))
	s := New("secret", clock)
	q := s.Presign(http.MethodGet, "b", "k", time.Minute)
	if err := s.Verify(http.MethodGet, "b", "k", q); err != nil {
		t.Fatalf("fresh signature rejected: %v", err)
	}
	clock.Advance(2 * time.Minute)
	if err := s.Verify(http.MethodGet, "b", "k", q); !errors.Is(err, ErrInvalidSignature) {
		t.Fatalf("expired signature accepted: %v", err)
	}
}

func TestPresignDifferentSecretsReject(t *testing.T) {
	a := New("secret-a", nil)
	b := New("secret-b", nil)
	q := a.Presign(http.MethodGet, "b", "k", time.Minute)
	if err := b.Verify(http.MethodGet, "b", "k", q); !errors.Is(err, ErrInvalidSignature) {
		t.Fatalf("cross-secret signature accepted: %v", err)
	}
}

func TestVerifyMissingParams(t *testing.T) {
	s := newStore()
	if err := s.Verify(http.MethodGet, "b", "k", nil); !errors.Is(err, ErrInvalidSignature) {
		t.Fatalf("Verify with no params = %v", err)
	}
}

func TestHandlerEndToEnd(t *testing.T) {
	s := newStore()
	s.CreateBucket("media")
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// PUT via presigned URL.
	putURL := s.PresignURL(srv.URL, http.MethodPut, "media", "video/clip.mp4", time.Minute)
	req, _ := http.NewRequest(http.MethodPut, putURL, bytes.NewReader([]byte("mp4bytes")))
	req.Header.Set("Content-Type", "video/mp4")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT status = %d", resp.StatusCode)
	}

	// GET via presigned URL.
	getURL := s.PresignURL(srv.URL, http.MethodGet, "media", "video/clip.mp4", time.Minute)
	resp, err = http.Get(getURL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "mp4bytes" {
		t.Fatalf("GET status=%d body=%q", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "video/mp4" {
		t.Fatalf("content type = %q", ct)
	}

	// DELETE via presigned URL.
	delURL := s.PresignURL(srv.URL, http.MethodDelete, "media", "video/clip.mp4", time.Minute)
	req, _ = http.NewRequest(http.MethodDelete, delURL, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE status = %d", resp.StatusCode)
	}
}

func TestHandlerRejectsUnsigned(t *testing.T) {
	s := newStore()
	s.CreateBucket("b")
	s.Put("b", "k", []byte("secret-data"), "")
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/b/k")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("unsigned GET status = %d, want 403", resp.StatusCode)
	}
}

func TestHandlerRejectsTamperedPath(t *testing.T) {
	s := newStore()
	s.CreateBucket("b")
	s.Put("b", "public", []byte("ok"), "")
	s.Put("b", "private", []byte("no"), "")
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	signed := s.PresignURL(srv.URL, http.MethodGet, "b", "public", time.Minute)
	tampered := strings.Replace(signed, "/b/public", "/b/private", 1)
	resp, err := http.Get(tampered)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("tampered GET status = %d, want 403", resp.StatusCode)
	}
}

func TestHandlerNotFound(t *testing.T) {
	s := newStore()
	s.CreateBucket("b")
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	u := s.PresignURL(srv.URL, http.MethodGet, "b", "missing", time.Minute)
	resp, err := http.Get(u)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
}

func TestHandlerBadPath(t *testing.T) {
	s := newStore()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/onlybucket")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}

func TestHandlerMethodNotAllowed(t *testing.T) {
	s := newStore()
	s.CreateBucket("b")
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	u := s.PresignURL(srv.URL, http.MethodPost, "b", "k", time.Minute)
	resp, err := http.Post(u, "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status = %d, want 405", resp.StatusCode)
	}
}

func TestKeysWithSpecialCharacters(t *testing.T) {
	s := newStore()
	s.CreateBucket("b")
	key := "dir with space/file+name.png"
	s.Put("b", key, []byte("x"), "")
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	u := s.PresignURL(srv.URL, http.MethodGet, "b", key, time.Minute)
	resp, err := http.Get(u)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "x" {
		t.Fatalf("special-char key GET status=%d body=%q url=%s", resp.StatusCode, body, u)
	}
}

// Property: Presign/Verify round-trips for arbitrary keys and methods.
func TestPresignRoundTripProperty(t *testing.T) {
	s := newStore()
	methods := []string{"GET", "PUT", "DELETE"}
	prop := func(bucket, key string, mIdx uint8) bool {
		m := methods[int(mIdx)%len(methods)]
		q := s.Presign(m, bucket, key, time.Minute)
		return s.Verify(m, bucket, key, q) == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
