// Package model defines the OaaS class model: the deployment package
// a developer writes (paper §IV, Listing 1), with classes that
// encapsulate state (key specs), logic (functions realized by
// serverless images), non-functional requirements (QoS and
// constraints), dataflow definitions, and OOP-style inheritance and
// polymorphism (paper §II-A, §III-A).
//
// Definitions load from YAML (via internal/yamlx) or JSON, are
// validated, and are resolved: inheritance flattening merges parent
// state and functions into each class, with child functions overriding
// parents' by name (polymorphism).
package model

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"

	"github.com/hpcclab/oparaca-go/internal/yamlx"
)

// Sentinel errors.
var (
	// ErrValidation wraps all definition validation failures.
	ErrValidation = errors.New("model: invalid definition")
	// ErrClassNotFound is returned when a referenced class is absent.
	ErrClassNotFound = errors.New("model: class not found")
	// ErrInheritanceCycle is returned when parent links form a cycle.
	ErrInheritanceCycle = errors.New("model: inheritance cycle")
)

// nameRE constrains identifiers (class, function, key names).
var nameRE = regexp.MustCompile(`^[A-Za-z][A-Za-z0-9_-]*$`)

// KeyKind is the type of a state key.
type KeyKind string

// Supported state key kinds. KindFile keys hold unstructured data in
// the object store and are surfaced to functions as presigned URLs;
// all other kinds are structured JSON state.
const (
	KindJSON   KeyKind = "json"
	KindString KeyKind = "string"
	KindNumber KeyKind = "number"
	KindBool   KeyKind = "bool"
	KindFile   KeyKind = "file"
)

// valid reports whether k is a known kind.
func (k KeyKind) valid() bool {
	switch k {
	case KindJSON, KindString, KindNumber, KindBool, KindFile:
		return true
	}
	return false
}

// KeySpec declares one state attribute of a class.
type KeySpec struct {
	// Name identifies the key.
	Name string `json:"name"`
	// Kind is the value type; defaults to "json".
	Kind KeyKind `json:"kind,omitempty"`
	// Default is the initial value for structured kinds.
	Default json.RawMessage `json:"default,omitempty"`
}

// QoS carries the measurable quality requirements of a class (paper
// §II-C: "high-level and measurable metrics").
type QoS struct {
	// ThroughputRPS is the required requests/second, 0 = unspecified.
	ThroughputRPS float64 `json:"throughput,omitempty"`
	// LatencyMs is the target p95 latency in milliseconds.
	LatencyMs float64 `json:"latencyMs,omitempty"`
	// Availability is the target fraction of successful requests
	// (e.g. 0.999).
	Availability float64 `json:"availability,omitempty"`
}

// IsZero reports whether no QoS requirement is set.
func (q QoS) IsZero() bool { return q == QoS{} }

// Constraints carries deployment constraints (paper §II-C: "budget and
// jurisdiction").
type Constraints struct {
	// Persistent requires object state to survive restarts. The
	// paper's `oprc-bypass-nonpersist` variant turns this off.
	Persistent *bool `json:"persistent,omitempty"`
	// BudgetUSD caps monthly spend; informational to the optimizer.
	BudgetUSD float64 `json:"budget,omitempty"`
	// Jurisdiction pins data placement (e.g. "eu").
	Jurisdiction string `json:"jurisdiction,omitempty"`
}

// IsPersistent resolves the Persistent flag (default true: losing user
// data must be opt-in).
func (c Constraints) IsPersistent() bool {
	if c.Persistent == nil {
		return true
	}
	return *c.Persistent
}

// ConcurrencyMode selects how the class runtime handles concurrent
// invocations on one object.
type ConcurrencyMode string

// Concurrency modes.
const (
	// ConcurrencyDefault defers to the platform's configured default
	// (ConcurrencyAdaptive unless overridden).
	ConcurrencyDefault ConcurrencyMode = ""
	// ConcurrencyOCC runs invocations lock-free and commits state
	// deltas through a version-validated compare-and-swap, retrying on
	// conflict: hot-object invocations interleave instead of queueing.
	ConcurrencyOCC ConcurrencyMode = "occ"
	// ConcurrencyLocked serializes the whole load→invoke→merge window
	// under a per-object striped lock (the pessimistic baseline).
	ConcurrencyLocked ConcurrencyMode = "locked"
	// ConcurrencyAdaptive starts optimistic and falls back to the
	// striped lock per object while CAS aborts run hot, returning to
	// OCC when contention subsides.
	ConcurrencyAdaptive ConcurrencyMode = "adaptive"
)

// Valid reports whether m is a known mode (including the default).
// The class loader rejects invalid modes at validation; the runtime
// re-checks so a bad platform-level default (core.Config) cannot
// silently select an unintended path.
func (m ConcurrencyMode) Valid() bool {
	switch m {
	case ConcurrencyDefault, ConcurrencyOCC, ConcurrencyLocked, ConcurrencyAdaptive:
		return true
	}
	return false
}

// OCCValidate selects how wide an optimistic commit's validation set
// is for a class running under occ or adaptive concurrency.
type OCCValidate string

// Validation scopes.
const (
	// OCCValidateDefault defers to OCCValidateReadset.
	OCCValidateDefault OCCValidate = ""
	// OCCValidateReadset validates every structured key the handler's
	// snapshot carried (the full read set): decisions a handler made
	// against unwritten keys cannot commit against changed state, so
	// write skew is excluded. This is the safe default.
	OCCValidateReadset OCCValidate = "readset"
	// OCCValidateKeys validates only the keys the handler actually
	// wrote. Methods touching disjoint keys of one wide object no
	// longer abort each other, trading write-skew protection for
	// fewer false conflicts — opt in only when the class's methods
	// do not make decisions based on keys they leave unwritten.
	OCCValidateKeys OCCValidate = "keys"
)

// Valid reports whether v is a known validation scope.
func (v OCCValidate) Valid() bool {
	switch v {
	case OCCValidateDefault, OCCValidateReadset, OCCValidateKeys:
		return true
	}
	return false
}

// FunctionDef declares one method of a class, realized by a serverless
// function image.
type FunctionDef struct {
	// Name is the method name.
	Name string `json:"name"`
	// Image is the container image implementing it (e.g. "img/resize").
	Image string `json:"image"`
	// Readonly declares that the method never writes object state: the
	// runtime serves such invocations concurrently straight from the
	// state table, skipping per-object locking and the delta
	// merge/commit entirely. A readonly function that returns a state
	// delta fails the invocation. Multi-key state is snapshotted
	// without a lock, so a readonly method may observe keys from two
	// different committed states during a concurrent write.
	Readonly bool `json:"readonly,omitempty"`
	// Concurrency is the per-pod concurrent request limit (0 = engine
	// default).
	Concurrency int `json:"concurrency,omitempty"`
	// TimeoutMs is the invocation deadline for this method in
	// milliseconds: an invocation (handler run plus state commit) that
	// exceeds it fails with the runtime's deadline error and never
	// commits. 0 defers to the class TimeoutMs, then the platform
	// default.
	TimeoutMs int `json:"timeoutMs,omitempty"`
	// QoS optionally overrides the class QoS for this method (paper
	// §II-C: requirements "for a whole object or even for a specific
	// part (method)").
	QoS QoS `json:"qos,omitempty"`
}

// DataflowStep is one node of a dataflow definition.
type DataflowStep struct {
	// Name identifies the step within the flow.
	Name string `json:"name"`
	// Function is the class method the step invokes.
	Function string `json:"function"`
	// After lists step names whose outputs this step depends on;
	// empty means the step starts immediately (dataflow semantics:
	// execution order derives from data dependencies, paper §II-B).
	After []string `json:"after,omitempty"`
	// Input optionally maps the payload from a prior step's output:
	// "steps.<name>.output" or "payload" (the flow input). Empty
	// defaults to the flow input.
	Input string `json:"input,omitempty"`
}

// DataflowDef declares a named dataflow (macro-function) on a class.
type DataflowDef struct {
	// Name is the dataflow's method-like name.
	Name string `json:"name"`
	// Steps are the flow's nodes.
	Steps []DataflowStep `json:"steps"`
	// Output names the step whose output is the flow result; defaults
	// to the last step.
	Output string `json:"output,omitempty"`
}

// Event names a TriggerDef can subscribe to via On. They mirror the
// trigger subsystem's event types (internal/trigger); the model keeps
// string literals so definitions stay dependency-free.
const (
	// EventStateChanged fires once per committed write invocation on
	// an object of the class.
	EventStateChanged = "stateChanged"
	// EventInvocationCompleted / EventInvocationFailed fire when an
	// asynchronous invocation on an object of the class reaches the
	// corresponding terminal status.
	EventInvocationCompleted = "invocationCompleted"
	EventInvocationFailed    = "invocationFailed"
)

// validEventName reports whether on names a known platform event.
func validEventName(on string) bool {
	switch on {
	case EventStateChanged, EventInvocationCompleted, EventInvocationFailed:
		return true
	}
	return false
}

// TriggerDef binds a platform event to a reaction. Two shapes exist:
//
//   - Upload triggers (OnUpload): an object-store write to the named
//     file key invokes Function on the same object (paper §II-D: "a
//     multimedia processing application that gets triggered when
//     customers upload their files to cloud storage").
//   - Event triggers (On): a committed state mutation or a terminal
//     asynchronous invocation on an object of the class routes through
//     the event bus to either another object's method (data-triggered
//     chaining via the async queue) or a webhook URL.
//
// Exactly one of OnUpload and On must be set.
type TriggerDef struct {
	// OnUpload names the file key whose uploads fire the trigger.
	OnUpload string `json:"onUpload,omitempty"`
	// Function is the method invoked with the event as its payload:
	// on the same object for upload triggers, on TargetObject (or the
	// emitting object when empty) for event triggers.
	Function string `json:"function,omitempty"`
	// On names the platform event an event trigger subscribes to:
	// "stateChanged", "invocationCompleted" or "invocationFailed".
	On string `json:"on,omitempty"`
	// KeyPrefix restricts a stateChanged trigger to commits that wrote
	// at least one state key with this prefix.
	KeyPrefix string `json:"keyPrefix,omitempty"`
	// TargetObject routes the chained invocation to a specific object
	// ID instead of the emitting object. Only valid with Function.
	TargetObject string `json:"targetObject,omitempty"`
	// Webhook delivers the event to a URL instead of invoking a
	// method. Mutually exclusive with Function/TargetObject.
	Webhook string `json:"webhook,omitempty"`
}

// IsEvent reports whether the trigger is an event trigger (vs. an
// upload trigger).
func (t TriggerDef) IsEvent() bool { return t.On != "" }

// Identity is the trigger's stable identity, derived from its
// declaration: upload triggers identify per file key; event triggers
// per (event, filter, sink) tuple — two identical declarations
// collapse, distinct ones coexist. Fields are quoted so
// user-controlled strings containing the separator cannot make
// distinct triggers collide. Inheritance merging overrides by this
// identity, and the platform keys an event trigger's durable delivery
// cursors under it, so redeploying a class (even with the trigger
// list reordered) resumes the same cursors instead of redelivering
// from scratch.
func (t TriggerDef) Identity() string {
	if !t.IsEvent() {
		return "upload/" + t.OnUpload
	}
	return fmt.Sprintf("event/%s/%q/%q/%q/%q", t.On, t.KeyPrefix, t.TargetObject, t.Function, t.Webhook)
}

// id keeps the short internal spelling for inheritance merging.
func (t TriggerDef) id() string { return t.Identity() }

// ClassDef is a class as written by the developer.
type ClassDef struct {
	// Name is the class name.
	Name string `json:"name"`
	// Parent optionally names the class this one inherits from.
	Parent string `json:"parent,omitempty"`
	// KeySpecs declare the object state attributes.
	KeySpecs []KeySpec `json:"keySpecs,omitempty"`
	// Functions declare the methods.
	Functions []FunctionDef `json:"functions,omitempty"`
	// Dataflows declare composite methods.
	Dataflows []DataflowDef `json:"dataflows,omitempty"`
	// Triggers bind file-key uploads to method invocations.
	Triggers []TriggerDef `json:"triggers,omitempty"`
	// Concurrency selects how concurrent invocations on one object are
	// handled ("occ", "locked", or "adaptive"; empty defers to the
	// platform default). Inherited from the parent unless overridden.
	Concurrency ConcurrencyMode `json:"concurrencyMode,omitempty"`
	// OCCValidate selects the optimistic commit's validation scope
	// ("readset" validates every snapshotted key — the default — or
	// "keys" validates only written keys, so disjoint-key writers on
	// one object stop aborting each other). Only meaningful under occ
	// or adaptive concurrency. Inherited from the parent unless
	// overridden.
	OCCValidate OCCValidate `json:"occValidate,omitempty"`
	// TimeoutMs is the class-level default invocation deadline in
	// milliseconds, applied to every function without its own
	// TimeoutMs. 0 defers to the platform default. Inherited from the
	// parent unless overridden.
	TimeoutMs int `json:"timeoutMs,omitempty"`
	// QoS and Constraint are the class's non-functional requirements.
	QoS        QoS         `json:"qos,omitempty"`
	Constraint Constraints `json:"constraint,omitempty"`
}

// Package is a deployment package: a named collection of classes
// deployed together.
type Package struct {
	// Name identifies the package; optional.
	Name string `json:"name,omitempty"`
	// Classes are the class definitions.
	Classes []ClassDef `json:"classes"`
}

// ParseYAML loads a Package from YAML bytes.
func ParseYAML(data []byte) (*Package, error) {
	var pkg Package
	if err := yamlx.Unmarshal(data, &pkg); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrValidation, err)
	}
	if err := pkg.Validate(); err != nil {
		return nil, err
	}
	return &pkg, nil
}

// ParseJSON loads a Package from JSON bytes.
func ParseJSON(data []byte) (*Package, error) {
	var pkg Package
	if err := json.Unmarshal(data, &pkg); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrValidation, err)
	}
	if err := pkg.Validate(); err != nil {
		return nil, err
	}
	return &pkg, nil
}

// LoadFile loads a Package from a .yaml/.yml or .json file.
func LoadFile(path string) (*Package, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("model: reading %s: %w", path, err)
	}
	switch strings.ToLower(filepath.Ext(path)) {
	case ".json":
		return ParseJSON(raw)
	default:
		return ParseYAML(raw)
	}
}

// Validate checks structural validity of the raw definitions (before
// inheritance resolution).
func (p *Package) Validate() error {
	if len(p.Classes) == 0 {
		return fmt.Errorf("%w: package has no classes", ErrValidation)
	}
	seen := make(map[string]bool, len(p.Classes))
	for i := range p.Classes {
		c := &p.Classes[i]
		if err := c.validate(); err != nil {
			return err
		}
		if seen[c.Name] {
			return fmt.Errorf("%w: duplicate class %q", ErrValidation, c.Name)
		}
		seen[c.Name] = true
	}
	return nil
}

// validate checks one class definition.
func (c *ClassDef) validate() error {
	if !nameRE.MatchString(c.Name) {
		return fmt.Errorf("%w: bad class name %q", ErrValidation, c.Name)
	}
	if c.Parent != "" && !nameRE.MatchString(c.Parent) {
		return fmt.Errorf("%w: class %q has bad parent name %q", ErrValidation, c.Name, c.Parent)
	}
	if c.Parent == c.Name {
		return fmt.Errorf("%w: class %q inherits from itself", ErrValidation, c.Name)
	}
	keys := make(map[string]bool, len(c.KeySpecs))
	for i := range c.KeySpecs {
		k := &c.KeySpecs[i]
		if !nameRE.MatchString(k.Name) {
			return fmt.Errorf("%w: class %q has bad key name %q", ErrValidation, c.Name, k.Name)
		}
		if keys[k.Name] {
			return fmt.Errorf("%w: class %q has duplicate key %q", ErrValidation, c.Name, k.Name)
		}
		keys[k.Name] = true
		if k.Kind == "" {
			k.Kind = KindJSON
		}
		if !k.Kind.valid() {
			return fmt.Errorf("%w: class %q key %q has unknown kind %q", ErrValidation, c.Name, k.Name, k.Kind)
		}
		if k.Kind == KindFile && len(k.Default) > 0 {
			return fmt.Errorf("%w: class %q key %q: file keys cannot have defaults", ErrValidation, c.Name, k.Name)
		}
	}
	fns := make(map[string]bool, len(c.Functions))
	for i := range c.Functions {
		f := &c.Functions[i]
		if !nameRE.MatchString(f.Name) {
			return fmt.Errorf("%w: class %q has bad function name %q", ErrValidation, c.Name, f.Name)
		}
		if f.Image == "" {
			return fmt.Errorf("%w: class %q function %q has no image", ErrValidation, c.Name, f.Name)
		}
		if fns[f.Name] {
			return fmt.Errorf("%w: class %q has duplicate function %q", ErrValidation, c.Name, f.Name)
		}
		fns[f.Name] = true
		if f.TimeoutMs < 0 {
			return fmt.Errorf("%w: class %q function %q has negative timeoutMs", ErrValidation, c.Name, f.Name)
		}
		if err := validateQoS(f.QoS, c.Name, f.Name); err != nil {
			return err
		}
	}
	flows := make(map[string]bool, len(c.Dataflows))
	for i := range c.Dataflows {
		df := &c.Dataflows[i]
		if !nameRE.MatchString(df.Name) {
			return fmt.Errorf("%w: class %q has bad dataflow name %q", ErrValidation, c.Name, df.Name)
		}
		if fns[df.Name] || flows[df.Name] {
			return fmt.Errorf("%w: class %q dataflow %q collides with another member", ErrValidation, c.Name, df.Name)
		}
		flows[df.Name] = true
		if len(df.Steps) == 0 {
			return fmt.Errorf("%w: class %q dataflow %q has no steps", ErrValidation, c.Name, df.Name)
		}
		steps := make(map[string]bool, len(df.Steps))
		for _, st := range df.Steps {
			if !nameRE.MatchString(st.Name) {
				return fmt.Errorf("%w: class %q dataflow %q has bad step name %q", ErrValidation, c.Name, df.Name, st.Name)
			}
			if steps[st.Name] {
				return fmt.Errorf("%w: class %q dataflow %q has duplicate step %q", ErrValidation, c.Name, df.Name, st.Name)
			}
			steps[st.Name] = true
			if st.Function == "" {
				return fmt.Errorf("%w: class %q dataflow %q step %q has no function", ErrValidation, c.Name, df.Name, st.Name)
			}
		}
		for _, st := range df.Steps {
			for _, dep := range st.After {
				if !steps[dep] {
					return fmt.Errorf("%w: class %q dataflow %q step %q depends on unknown step %q",
						ErrValidation, c.Name, df.Name, st.Name, dep)
				}
			}
		}
		if df.Output != "" && !steps[df.Output] {
			return fmt.Errorf("%w: class %q dataflow %q output references unknown step %q",
				ErrValidation, c.Name, df.Name, df.Output)
		}
	}
	seenTriggers := make(map[string]bool, len(c.Triggers))
	for _, tr := range c.Triggers {
		if err := tr.validate(c.Name); err != nil {
			return err
		}
		if seenTriggers[tr.id()] {
			return fmt.Errorf("%w: class %q has duplicate trigger %q", ErrValidation, c.Name, tr.id())
		}
		seenTriggers[tr.id()] = true
		// Key/function existence is checked after inheritance
		// resolution (they may come from a parent).
	}
	if !c.Concurrency.Valid() {
		return fmt.Errorf("%w: class %q has unknown concurrency mode %q (want occ, locked or adaptive)",
			ErrValidation, c.Name, c.Concurrency)
	}
	if !c.OCCValidate.Valid() {
		return fmt.Errorf("%w: class %q has unknown occValidate scope %q (want readset or keys)",
			ErrValidation, c.Name, c.OCCValidate)
	}
	if c.TimeoutMs < 0 {
		return fmt.Errorf("%w: class %q has negative timeoutMs", ErrValidation, c.Name)
	}
	if err := validateQoS(c.QoS, c.Name, ""); err != nil {
		return err
	}
	if c.Constraint.BudgetUSD < 0 {
		return fmt.Errorf("%w: class %q has negative budget", ErrValidation, c.Name)
	}
	return nil
}

// validate checks one trigger definition's shape (references are
// checked post-resolution).
func (t TriggerDef) validate(class string) error {
	if (t.OnUpload == "") == (t.On == "") {
		return fmt.Errorf("%w: class %q trigger needs exactly one of onUpload and on", ErrValidation, class)
	}
	if !t.IsEvent() {
		if t.Function == "" {
			return fmt.Errorf("%w: class %q trigger needs onUpload and function", ErrValidation, class)
		}
		if t.KeyPrefix != "" || t.TargetObject != "" || t.Webhook != "" {
			return fmt.Errorf("%w: class %q upload trigger on %q cannot set keyPrefix, targetObject or webhook",
				ErrValidation, class, t.OnUpload)
		}
		return nil
	}
	if !validEventName(t.On) {
		return fmt.Errorf("%w: class %q trigger has unknown event %q (want %s, %s or %s)",
			ErrValidation, class, t.On, EventStateChanged, EventInvocationCompleted, EventInvocationFailed)
	}
	hasFn, hasHook := t.Function != "", t.Webhook != ""
	if hasFn == hasHook {
		return fmt.Errorf("%w: class %q trigger on %q needs exactly one of function and webhook",
			ErrValidation, class, t.On)
	}
	if t.TargetObject != "" && !hasFn {
		return fmt.Errorf("%w: class %q trigger on %q: targetObject requires function", ErrValidation, class, t.On)
	}
	if t.KeyPrefix != "" && t.On != EventStateChanged {
		return fmt.Errorf("%w: class %q trigger on %q: keyPrefix only applies to %s",
			ErrValidation, class, t.On, EventStateChanged)
	}
	return nil
}

func validateQoS(q QoS, class, fn string) error {
	where := "class " + class
	if fn != "" {
		where += " function " + fn
	}
	if q.ThroughputRPS < 0 {
		return fmt.Errorf("%w: %s has negative throughput", ErrValidation, where)
	}
	if q.LatencyMs < 0 {
		return fmt.Errorf("%w: %s has negative latency", ErrValidation, where)
	}
	if q.Availability < 0 || q.Availability > 1 {
		return fmt.Errorf("%w: %s availability must be in [0,1]", ErrValidation, where)
	}
	return nil
}

// Class is a resolved class: inheritance flattened, overrides applied.
type Class struct {
	// Name is the class name.
	Name string
	// Parent is the immediate parent name ("" for roots).
	Parent string
	// Ancestry lists the inheritance chain from root to this class.
	Ancestry []string
	// Keys is the merged state schema, sorted by name.
	Keys []KeySpec
	// Functions is the merged method set, sorted by name; child
	// definitions override parents' with the same name.
	Functions []FunctionDef
	// Dataflows is the merged dataflow set, sorted by name.
	Dataflows []DataflowDef
	// Triggers is the merged trigger set, sorted by key; child
	// triggers on the same key override the parent's.
	Triggers []TriggerDef
	// Concurrency is the effective invocation concurrency mode
	// (inherited from the parent unless the child sets one; empty
	// defers to the platform default).
	Concurrency ConcurrencyMode
	// OCCValidate is the effective optimistic-commit validation scope
	// (inherited from the parent unless the child sets one; empty
	// means readset).
	OCCValidate OCCValidate
	// TimeoutMs is the effective class-level invocation deadline in
	// milliseconds (inherited from the parent unless the child sets
	// one; 0 defers to the platform default).
	TimeoutMs int
	// QoS and Constraint are the effective non-functional
	// requirements (child overrides parent field-by-field).
	QoS        QoS
	Constraint Constraints
}

// Trigger returns the upload trigger bound to a file key.
func (c *Class) Trigger(onUpload string) (TriggerDef, bool) {
	for _, tr := range c.Triggers {
		if !tr.IsEvent() && tr.OnUpload == onUpload {
			return tr, true
		}
	}
	return TriggerDef{}, false
}

// EventTriggers returns the class's event triggers (On set), in merge
// order.
func (c *Class) EventTriggers() []TriggerDef {
	var out []TriggerDef
	for _, tr := range c.Triggers {
		if tr.IsEvent() {
			out = append(out, tr)
		}
	}
	return out
}

// Function returns the named function definition.
func (c *Class) Function(name string) (FunctionDef, bool) {
	for _, f := range c.Functions {
		if f.Name == name {
			return f, true
		}
	}
	return FunctionDef{}, false
}

// Dataflow returns the named dataflow definition.
func (c *Class) Dataflow(name string) (DataflowDef, bool) {
	for _, d := range c.Dataflows {
		if d.Name == name {
			return d, true
		}
	}
	return DataflowDef{}, false
}

// Key returns the named key spec.
func (c *Class) Key(name string) (KeySpec, bool) {
	for _, k := range c.Keys {
		if k.Name == name {
			return k, true
		}
	}
	return KeySpec{}, false
}

// IsSubclassOf reports whether c inherits (transitively) from name, or
// is name itself — the polymorphic assignability check.
func (c *Class) IsSubclassOf(name string) bool {
	if c.Name == name {
		return true
	}
	for _, a := range c.Ancestry {
		if a == name {
			return true
		}
	}
	return false
}

// Resolve flattens inheritance for every class in the package against
// an optional set of already-deployed classes (so a package can extend
// classes from earlier deployments). It returns resolved classes
// keyed by name.
func Resolve(pkg *Package, existing map[string]*Class) (map[string]*Class, error) {
	defs := make(map[string]*ClassDef, len(pkg.Classes))
	for i := range pkg.Classes {
		defs[pkg.Classes[i].Name] = &pkg.Classes[i]
	}
	resolved := make(map[string]*Class, len(pkg.Classes))
	var resolve func(name string, trail []string) (*Class, error)
	resolve = func(name string, trail []string) (*Class, error) {
		if c, ok := resolved[name]; ok {
			return c, nil
		}
		for _, t := range trail {
			if t == name {
				return nil, fmt.Errorf("%w: %s", ErrInheritanceCycle, strings.Join(append(trail, name), " -> "))
			}
		}
		def, ok := defs[name]
		if !ok {
			// Fall back to a previously deployed class.
			if existing != nil {
				if c, ok := existing[name]; ok {
					return c, nil
				}
			}
			return nil, fmt.Errorf("%w: %q (referenced as parent)", ErrClassNotFound, name)
		}
		var parent *Class
		if def.Parent != "" {
			p, err := resolve(def.Parent, append(trail, name))
			if err != nil {
				return nil, err
			}
			parent = p
		}
		c := merge(def, parent)
		resolved[name] = c
		return c, nil
	}
	for name := range defs {
		if _, err := resolve(name, nil); err != nil {
			return nil, err
		}
	}
	return resolved, nil
}

// merge produces the resolved class for def given its resolved parent
// (nil for root classes).
func merge(def *ClassDef, parent *Class) *Class {
	c := &Class{Name: def.Name, Parent: def.Parent}
	keyIdx := make(map[string]int)
	fnIdx := make(map[string]int)
	flowIdx := make(map[string]int)
	trigIdx := make(map[string]int)
	if parent != nil {
		c.Ancestry = append(append([]string(nil), parent.Ancestry...), parent.Name)
		for _, k := range parent.Keys {
			keyIdx[k.Name] = len(c.Keys)
			c.Keys = append(c.Keys, k)
		}
		for _, f := range parent.Functions {
			fnIdx[f.Name] = len(c.Functions)
			c.Functions = append(c.Functions, f)
		}
		for _, d := range parent.Dataflows {
			flowIdx[d.Name] = len(c.Dataflows)
			c.Dataflows = append(c.Dataflows, d)
		}
		for _, tr := range parent.Triggers {
			trigIdx[tr.id()] = len(c.Triggers)
			c.Triggers = append(c.Triggers, tr)
		}
		c.QoS = parent.QoS
		c.Constraint = parent.Constraint
		c.Concurrency = parent.Concurrency
		c.OCCValidate = parent.OCCValidate
		c.TimeoutMs = parent.TimeoutMs
	}
	if def.Concurrency != ConcurrencyDefault {
		c.Concurrency = def.Concurrency
	}
	if def.OCCValidate != OCCValidateDefault {
		c.OCCValidate = def.OCCValidate
	}
	if def.TimeoutMs != 0 {
		c.TimeoutMs = def.TimeoutMs
	}
	for _, k := range def.KeySpecs {
		if i, ok := keyIdx[k.Name]; ok {
			c.Keys[i] = k // override
			continue
		}
		keyIdx[k.Name] = len(c.Keys)
		c.Keys = append(c.Keys, k)
	}
	for _, f := range def.Functions {
		if i, ok := fnIdx[f.Name]; ok {
			c.Functions[i] = f // polymorphic override
			continue
		}
		fnIdx[f.Name] = len(c.Functions)
		c.Functions = append(c.Functions, f)
	}
	for _, d := range def.Dataflows {
		if i, ok := flowIdx[d.Name]; ok {
			c.Dataflows[i] = d
			continue
		}
		flowIdx[d.Name] = len(c.Dataflows)
		c.Dataflows = append(c.Dataflows, d)
	}
	for _, tr := range def.Triggers {
		if i, ok := trigIdx[tr.id()]; ok {
			c.Triggers[i] = tr // child overrides parent's trigger
			continue
		}
		trigIdx[tr.id()] = len(c.Triggers)
		c.Triggers = append(c.Triggers, tr)
	}
	// Field-by-field QoS override: a child only overrides what it
	// sets explicitly.
	if def.QoS.ThroughputRPS != 0 {
		c.QoS.ThroughputRPS = def.QoS.ThroughputRPS
	}
	if def.QoS.LatencyMs != 0 {
		c.QoS.LatencyMs = def.QoS.LatencyMs
	}
	if def.QoS.Availability != 0 {
		c.QoS.Availability = def.QoS.Availability
	}
	if def.Constraint.Persistent != nil {
		c.Constraint.Persistent = def.Constraint.Persistent
	}
	if def.Constraint.BudgetUSD != 0 {
		c.Constraint.BudgetUSD = def.Constraint.BudgetUSD
	}
	if def.Constraint.Jurisdiction != "" {
		c.Constraint.Jurisdiction = def.Constraint.Jurisdiction
	}
	sort.Slice(c.Keys, func(i, j int) bool { return c.Keys[i].Name < c.Keys[j].Name })
	sort.Slice(c.Functions, func(i, j int) bool { return c.Functions[i].Name < c.Functions[j].Name })
	sort.Slice(c.Dataflows, func(i, j int) bool { return c.Dataflows[i].Name < c.Dataflows[j].Name })
	sort.Slice(c.Triggers, func(i, j int) bool { return c.Triggers[i].id() < c.Triggers[j].id() })
	return c
}

// ValidateResolved checks cross-member invariants that require the
// flattened view: an upload trigger must reference a declared file key
// and an existing function or dataflow; a self-targeting event trigger
// (no targetObject) must name a member of this class. Event triggers
// targeting another object cannot be checked here — the target's class
// is unknown until dispatch, where a bad reference fails the delivery.
func (c *Class) ValidateResolved() error {
	for _, tr := range c.Triggers {
		if tr.IsEvent() {
			if tr.Function != "" && tr.TargetObject == "" {
				if _, isFn := c.Function(tr.Function); !isFn {
					if _, isFlow := c.Dataflow(tr.Function); !isFlow {
						return fmt.Errorf("%w: class %q trigger on %q references unknown member %q",
							ErrValidation, c.Name, tr.On, tr.Function)
					}
				}
			}
			continue
		}
		spec, ok := c.Key(tr.OnUpload)
		if !ok || spec.Kind != KindFile {
			return fmt.Errorf("%w: class %q trigger references %q which is not a file key",
				ErrValidation, c.Name, tr.OnUpload)
		}
		if _, isFn := c.Function(tr.Function); !isFn {
			if _, isFlow := c.Dataflow(tr.Function); !isFlow {
				return fmt.Errorf("%w: class %q trigger on %q references unknown member %q",
					ErrValidation, c.Name, tr.OnUpload, tr.Function)
			}
		}
	}
	return nil
}

// StructuredKeys returns the names of non-file keys, sorted.
func (c *Class) StructuredKeys() []string {
	var out []string
	for _, k := range c.Keys {
		if k.Kind != KindFile {
			out = append(out, k.Name)
		}
	}
	return out
}

// FileKeys returns the names of file (unstructured) keys, sorted.
func (c *Class) FileKeys() []string {
	var out []string
	for _, k := range c.Keys {
		if k.Kind == KindFile {
			out = append(out, k.Name)
		}
	}
	return out
}
