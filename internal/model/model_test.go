package model

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"
)

// listing1 is the paper's Listing 1 class definition, verbatim in
// structure (Image with resize/changeFormat, LabelledImage extending
// it with detectObject).
const listing1 = `classes:
  - name: Image
    qos:
      throughput: 100 # rps
    constraint:
      persistent: true
    keySpecs:
      - name: image # File Image
        kind: file
    functions:
      - name: resize
        image: img/resize
      - name: changeFormat
        image: img/change-format
  - name: LabelledImage
    parent: Image
    functions:
      - name: detectObject
        image: img/detect-object
`

func parseListing1(t *testing.T) *Package {
	t.Helper()
	pkg, err := ParseYAML([]byte(listing1))
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

func TestParseListing1(t *testing.T) {
	pkg := parseListing1(t)
	if len(pkg.Classes) != 2 {
		t.Fatalf("classes = %d", len(pkg.Classes))
	}
	img := pkg.Classes[0]
	if img.Name != "Image" || img.QoS.ThroughputRPS != 100 {
		t.Fatalf("Image = %+v", img)
	}
	if !img.Constraint.IsPersistent() {
		t.Fatal("persistent constraint lost")
	}
	if img.KeySpecs[0].Kind != KindFile {
		t.Fatalf("key kind = %q", img.KeySpecs[0].Kind)
	}
	if pkg.Classes[1].Parent != "Image" {
		t.Fatalf("parent = %q", pkg.Classes[1].Parent)
	}
}

func TestParseJSONEquivalent(t *testing.T) {
	pkg := parseListing1(t)
	raw, err := json.Marshal(pkg)
	if err != nil {
		t.Fatal(err)
	}
	pkg2, err := ParseJSON(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkg2.Classes) != 2 || pkg2.Classes[1].Functions[0].Image != "img/detect-object" {
		t.Fatalf("JSON round trip lost data: %+v", pkg2)
	}
}

func TestLoadFileYAMLAndJSON(t *testing.T) {
	dir := t.TempDir()
	ypath := filepath.Join(dir, "pkg.yaml")
	if err := os.WriteFile(ypath, []byte(listing1), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := LoadFile(ypath)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := json.Marshal(pkg)
	jpath := filepath.Join(dir, "pkg.json")
	if err := os.WriteFile(jpath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(jpath); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(filepath.Join(dir, "absent.yaml")); err == nil {
		t.Fatal("absent file loaded")
	}
}

func TestValidationErrors(t *testing.T) {
	cases := []struct {
		name string
		yaml string
	}{
		{"no classes", "name: empty\n"},
		{"bad class name", "classes:\n  - name: 9bad\n"},
		{"self parent", "classes:\n  - name: A\n    parent: A\n"},
		{"duplicate class", "classes:\n  - name: A\n  - name: A\n"},
		{"bad key name", "classes:\n  - name: A\n    keySpecs:\n      - name: 'bad key'\n"},
		{"duplicate key", "classes:\n  - name: A\n    keySpecs:\n      - name: k\n      - name: k\n"},
		{"unknown kind", "classes:\n  - name: A\n    keySpecs:\n      - name: k\n        kind: blob\n"},
		{"file with default", "classes:\n  - name: A\n    keySpecs:\n      - name: k\n        kind: file\n        default: 1\n"},
		{"fn no image", "classes:\n  - name: A\n    functions:\n      - name: f\n"},
		{"duplicate fn", "classes:\n  - name: A\n    functions:\n      - name: f\n        image: i\n      - name: f\n        image: i\n"},
		{"negative throughput", "classes:\n  - name: A\n    qos:\n      throughput: -1\n"},
		{"bad availability", "classes:\n  - name: A\n    qos:\n      availability: 1.5\n"},
		{"negative budget", "classes:\n  - name: A\n    constraint:\n      budget: -5\n"},
		{"dataflow no steps", "classes:\n  - name: A\n    dataflows:\n      - name: d\n"},
		{"dataflow unknown dep", "classes:\n  - name: A\n    dataflows:\n      - name: d\n        steps:\n          - name: s\n            function: f\n            after: [ghost]\n"},
		{"dataflow bad output", "classes:\n  - name: A\n    dataflows:\n      - name: d\n        output: ghost\n        steps:\n          - name: s\n            function: f\n"},
		{"dataflow collides with fn", "classes:\n  - name: A\n    functions:\n      - name: x\n        image: i\n    dataflows:\n      - name: x\n        steps:\n          - name: s\n            function: x\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ParseYAML([]byte(c.yaml)); !errors.Is(err, ErrValidation) {
				t.Fatalf("err = %v, want ErrValidation", err)
			}
		})
	}
}

func TestResolveInheritance(t *testing.T) {
	pkg := parseListing1(t)
	classes, err := Resolve(pkg, nil)
	if err != nil {
		t.Fatal(err)
	}
	li := classes["LabelledImage"]
	if li == nil {
		t.Fatal("LabelledImage not resolved")
	}
	// Inherited functions + own.
	names := make([]string, 0, len(li.Functions))
	for _, f := range li.Functions {
		names = append(names, f.Name)
	}
	want := "changeFormat,detectObject,resize"
	if got := strings.Join(names, ","); got != want {
		t.Fatalf("functions = %s, want %s", got, want)
	}
	// Inherited key.
	if _, ok := li.Key("image"); !ok {
		t.Fatal("inherited key missing")
	}
	// Inherited QoS.
	if li.QoS.ThroughputRPS != 100 {
		t.Fatalf("inherited throughput = %v", li.QoS.ThroughputRPS)
	}
	// Ancestry.
	if len(li.Ancestry) != 1 || li.Ancestry[0] != "Image" {
		t.Fatalf("ancestry = %v", li.Ancestry)
	}
	if !li.IsSubclassOf("Image") || !li.IsSubclassOf("LabelledImage") {
		t.Fatal("IsSubclassOf wrong")
	}
	if classes["Image"].IsSubclassOf("LabelledImage") {
		t.Fatal("parent is not a subclass of child")
	}
}

func TestPolymorphicOverride(t *testing.T) {
	src := `classes:
  - name: Base
    functions:
      - name: process
        image: img/base-process
  - name: Derived
    parent: Base
    functions:
      - name: process
        image: img/derived-process
`
	pkg, err := ParseYAML([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	classes, err := Resolve(pkg, nil)
	if err != nil {
		t.Fatal(err)
	}
	f, ok := classes["Derived"].Function("process")
	if !ok {
		t.Fatal("process missing")
	}
	if f.Image != "img/derived-process" {
		t.Fatalf("override lost: image = %q", f.Image)
	}
	// Base untouched.
	bf, _ := classes["Base"].Function("process")
	if bf.Image != "img/base-process" {
		t.Fatalf("base mutated: %q", bf.Image)
	}
}

func TestQoSFieldwiseOverride(t *testing.T) {
	src := `classes:
  - name: Base
    qos:
      throughput: 100
      latencyMs: 50
  - name: Child
    parent: Base
    qos:
      throughput: 500
`
	pkg, _ := ParseYAML([]byte(src))
	classes, err := Resolve(pkg, nil)
	if err != nil {
		t.Fatal(err)
	}
	q := classes["Child"].QoS
	if q.ThroughputRPS != 500 {
		t.Fatalf("throughput = %v", q.ThroughputRPS)
	}
	if q.LatencyMs != 50 {
		t.Fatalf("latency not inherited: %v", q.LatencyMs)
	}
}

func TestConstraintOverride(t *testing.T) {
	f := false
	src := &Package{Classes: []ClassDef{
		{Name: "Base", Constraint: Constraints{Jurisdiction: "eu"}},
		{Name: "Child", Parent: "Base", Constraint: Constraints{Persistent: &f}},
	}}
	if err := src.Validate(); err != nil {
		t.Fatal(err)
	}
	classes, err := Resolve(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := classes["Child"].Constraint
	if c.IsPersistent() {
		t.Fatal("persistent override lost")
	}
	if c.Jurisdiction != "eu" {
		t.Fatalf("jurisdiction not inherited: %q", c.Jurisdiction)
	}
}

func TestResolveMultiLevel(t *testing.T) {
	src := `classes:
  - name: C
    parent: B
    functions:
      - name: fc
        image: i
  - name: A
    functions:
      - name: fa
        image: i
  - name: B
    parent: A
    functions:
      - name: fb
        image: i
`
	pkg, _ := ParseYAML([]byte(src))
	classes, err := Resolve(pkg, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := classes["C"]
	if len(c.Functions) != 3 {
		t.Fatalf("C functions = %d, want 3", len(c.Functions))
	}
	if got := strings.Join(c.Ancestry, ","); got != "A,B" {
		t.Fatalf("ancestry = %s", got)
	}
}

func TestResolveCycleDetected(t *testing.T) {
	src := &Package{Classes: []ClassDef{
		{Name: "A", Parent: "B"},
		{Name: "B", Parent: "A"},
	}}
	if err := src.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := Resolve(src, nil); !errors.Is(err, ErrInheritanceCycle) {
		t.Fatalf("err = %v, want ErrInheritanceCycle", err)
	}
}

func TestResolveMissingParent(t *testing.T) {
	src := &Package{Classes: []ClassDef{{Name: "A", Parent: "Ghost"}}}
	if _, err := Resolve(src, nil); !errors.Is(err, ErrClassNotFound) {
		t.Fatalf("err = %v, want ErrClassNotFound", err)
	}
}

func TestResolveAgainstExistingClasses(t *testing.T) {
	// First deployment.
	base, _ := ParseYAML([]byte("classes:\n  - name: Base\n    functions:\n      - name: f\n        image: i\n"))
	deployed, err := Resolve(base, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Second package extends a class that only exists platform-side.
	ext := &Package{Classes: []ClassDef{{Name: "Ext", Parent: "Base"}}}
	classes, err := Resolve(ext, deployed)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := classes["Ext"].Function("f"); !ok {
		t.Fatal("function from previously deployed parent missing")
	}
}

func TestStructuredAndFileKeys(t *testing.T) {
	src := `classes:
  - name: A
    keySpecs:
      - name: meta
      - name: video
        kind: file
      - name: count
        kind: number
`
	pkg, _ := ParseYAML([]byte(src))
	classes, err := Resolve(pkg, nil)
	if err != nil {
		t.Fatal(err)
	}
	a := classes["A"]
	if got := strings.Join(a.StructuredKeys(), ","); got != "count,meta" {
		t.Fatalf("structured = %s", got)
	}
	if got := strings.Join(a.FileKeys(), ","); got != "video" {
		t.Fatalf("file = %s", got)
	}
}

func TestKeyDefaultKind(t *testing.T) {
	src := "classes:\n  - name: A\n    keySpecs:\n      - name: k\n"
	pkg, err := ParseYAML([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if pkg.Classes[0].KeySpecs[0].Kind != KindJSON {
		t.Fatalf("default kind = %q", pkg.Classes[0].KeySpecs[0].Kind)
	}
}

func TestIsPersistentDefaultTrue(t *testing.T) {
	var c Constraints
	if !c.IsPersistent() {
		t.Fatal("default persistence must be true")
	}
	f := false
	c.Persistent = &f
	if c.IsPersistent() {
		t.Fatal("explicit false ignored")
	}
}

func TestQoSIsZero(t *testing.T) {
	if !(QoS{}).IsZero() {
		t.Fatal("zero QoS not zero")
	}
	if (QoS{ThroughputRPS: 1}).IsZero() {
		t.Fatal("non-zero QoS reported zero")
	}
}

func TestClassAccessorsMissing(t *testing.T) {
	c := &Class{Name: "A"}
	if _, ok := c.Function("x"); ok {
		t.Fatal("missing function found")
	}
	if _, ok := c.Dataflow("x"); ok {
		t.Fatal("missing dataflow found")
	}
	if _, ok := c.Key("x"); ok {
		t.Fatal("missing key found")
	}
}

func TestDataflowDefinitionParsed(t *testing.T) {
	src := `classes:
  - name: Video
    functions:
      - name: split
        image: img/split
      - name: encode
        image: img/encode
      - name: merge
        image: img/merge
    dataflows:
      - name: transcode
        output: merge
        steps:
          - name: split
            function: split
          - name: encode
            function: encode
            after: [split]
            input: steps.split.output
          - name: merge
            function: merge
            after: [encode]
`
	pkg, err := ParseYAML([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	classes, err := Resolve(pkg, nil)
	if err != nil {
		t.Fatal(err)
	}
	df, ok := classes["Video"].Dataflow("transcode")
	if !ok {
		t.Fatal("dataflow missing")
	}
	if len(df.Steps) != 3 || df.Output != "merge" {
		t.Fatalf("dataflow = %+v", df)
	}
	if df.Steps[1].Input != "steps.split.output" {
		t.Fatalf("step input = %q", df.Steps[1].Input)
	}
}

// Property: resolution is deterministic — resolving the same package
// twice yields identical function sets.
func TestResolveDeterministicProperty(t *testing.T) {
	pkg := parseListing1(t)
	prop := func(seed uint8) bool {
		a, err1 := Resolve(pkg, nil)
		b, err2 := Resolve(pkg, nil)
		if err1 != nil || err2 != nil {
			return false
		}
		for name, ca := range a {
			cb := b[name]
			if cb == nil || len(ca.Functions) != len(cb.Functions) {
				return false
			}
			for i := range ca.Functions {
				if ca.Functions[i] != cb.Functions[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// Property: a child class always exposes a superset of its parent's
// function names.
func TestInheritanceSupersetProperty(t *testing.T) {
	pkg := parseListing1(t)
	classes, err := Resolve(pkg, nil)
	if err != nil {
		t.Fatal(err)
	}
	parent, child := classes["Image"], classes["LabelledImage"]
	for _, f := range parent.Functions {
		if _, ok := child.Function(f.Name); !ok {
			t.Fatalf("child missing inherited function %q", f.Name)
		}
	}
}

func TestTriggerParsingAndResolution(t *testing.T) {
	src := `classes:
  - name: Media
    keySpecs:
      - name: video
        kind: file
    functions:
      - name: transcode
        image: img/transcode
    triggers:
      - onUpload: video
        function: transcode
  - name: ShortClip
    parent: Media
    functions:
      - name: transcode
        image: img/fast-transcode
`
	pkg, err := ParseYAML([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	classes, err := Resolve(pkg, nil)
	if err != nil {
		t.Fatal(err)
	}
	media := classes["Media"]
	if err := media.ValidateResolved(); err != nil {
		t.Fatal(err)
	}
	tr, ok := media.Trigger("video")
	if !ok || tr.Function != "transcode" {
		t.Fatalf("trigger = %+v, %v", tr, ok)
	}
	// The subclass inherits the trigger; its polymorphic override of
	// transcode means the trigger now points at the fast image.
	clip := classes["ShortClip"]
	if err := clip.ValidateResolved(); err != nil {
		t.Fatal(err)
	}
	tr, ok = clip.Trigger("video")
	if !ok {
		t.Fatal("inherited trigger missing")
	}
	fn, _ := clip.Function(tr.Function)
	if fn.Image != "img/fast-transcode" {
		t.Fatalf("trigger resolves to %q, want the override", fn.Image)
	}
}

func TestTriggerValidation(t *testing.T) {
	bad := []string{
		"classes:\n  - name: A\n    triggers:\n      - onUpload: k\n",                                                                // no function
		"classes:\n  - name: A\n    triggers:\n      - function: f\n",                                                                // no key
		"classes:\n  - name: A\n    triggers:\n      - onUpload: k\n        function: f\n      - onUpload: k\n        function: g\n", // dup key
	}
	for i, src := range bad {
		if _, err := ParseYAML([]byte(src)); !errors.Is(err, ErrValidation) {
			t.Errorf("case %d: err = %v", i, err)
		}
	}
}

func TestValidateResolvedTriggerErrors(t *testing.T) {
	c := &Class{
		Name:      "X",
		Keys:      []KeySpec{{Name: "structured", Kind: KindJSON}, {Name: "file", Kind: KindFile}},
		Functions: []FunctionDef{{Name: "f", Image: "i"}},
	}
	c.Triggers = []TriggerDef{{OnUpload: "structured", Function: "f"}}
	if err := c.ValidateResolved(); !errors.Is(err, ErrValidation) {
		t.Fatalf("structured-key trigger err = %v", err)
	}
	c.Triggers = []TriggerDef{{OnUpload: "file", Function: "ghost"}}
	if err := c.ValidateResolved(); !errors.Is(err, ErrValidation) {
		t.Fatalf("ghost-function trigger err = %v", err)
	}
	c.Triggers = []TriggerDef{{OnUpload: "file", Function: "f"}}
	if err := c.ValidateResolved(); err != nil {
		t.Fatalf("valid trigger rejected: %v", err)
	}
}

func TestReadonlyAndConcurrencyModeParse(t *testing.T) {
	yaml := `classes:
  - name: Account
    concurrencyMode: occ
    keySpecs:
      - name: balance
        kind: number
    functions:
      - name: deposit
        image: img/deposit
      - name: balanceOf
        image: img/balance
        readonly: true
`
	pkg, err := ParseYAML([]byte(yaml))
	if err != nil {
		t.Fatal(err)
	}
	classes, err := Resolve(pkg, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := classes["Account"]
	if c.Concurrency != ConcurrencyOCC {
		t.Fatalf("concurrency = %q, want occ", c.Concurrency)
	}
	ro, _ := c.Function("balanceOf")
	if !ro.Readonly {
		t.Fatal("balanceOf not marked readonly")
	}
	rw, _ := c.Function("deposit")
	if rw.Readonly {
		t.Fatal("deposit wrongly marked readonly")
	}
}

func TestConcurrencyModeValidation(t *testing.T) {
	yaml := `classes:
  - name: Bad
    concurrencyMode: optimistic-ish
    functions:
      - name: f
        image: img/f
`
	if _, err := ParseYAML([]byte(yaml)); !errors.Is(err, ErrValidation) {
		t.Fatalf("err = %v, want ErrValidation for unknown concurrency mode", err)
	}
}

func TestConcurrencyModeInheritance(t *testing.T) {
	yaml := `classes:
  - name: Base
    concurrencyMode: locked
    functions:
      - name: f
        image: img/f
  - name: Child
    parent: Base
  - name: Override
    parent: Base
    concurrencyMode: adaptive
`
	pkg, err := ParseYAML([]byte(yaml))
	if err != nil {
		t.Fatal(err)
	}
	classes, err := Resolve(pkg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := classes["Child"].Concurrency; got != ConcurrencyLocked {
		t.Fatalf("Child concurrency = %q, want inherited locked", got)
	}
	if got := classes["Override"].Concurrency; got != ConcurrencyAdaptive {
		t.Fatalf("Override concurrency = %q, want adaptive", got)
	}
}
