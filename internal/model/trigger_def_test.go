package model

import (
	"errors"
	"strings"
	"testing"
)

// TestEventTriggerValidation table-tests the event-trigger shapes.
func TestEventTriggerValidation(t *testing.T) {
	base := `classes:
  - name: A
    keySpecs:
      - name: count
        kind: number
    functions:
      - name: react
        image: img/react
    triggers:
      - %s
`
	cases := []struct {
		name    string
		trigger string
		ok      bool
	}{
		{"self method", "on: stateChanged\n        function: react", true},
		{"cross object", "on: stateChanged\n        targetObject: agg-1\n        function: anything", true},
		{"webhook", "on: invocationCompleted\n        webhook: http://example.test/hook", true},
		{"prefix filter", "on: stateChanged\n        keyPrefix: cou\n        function: react", true},
		{"unknown event", "on: somethingElse\n        function: react", false},
		{"no sink", "on: stateChanged", false},
		{"two sinks", "on: stateChanged\n        function: react\n        webhook: http://x", false},
		{"both kinds", "on: stateChanged\n        onUpload: count\n        function: react", false},
		{"prefix on terminal", "on: invocationFailed\n        keyPrefix: cou\n        function: react", false},
		{"target without function", "on: stateChanged\n        targetObject: agg-1\n        webhook: http://x", false},
		{"self method unknown member", "on: stateChanged\n        function: ghost", false},
		{"upload with webhook", "onUpload: count\n        function: react\n        webhook: http://x", false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			yaml := strings.Replace(base, "%s", c.trigger, 1)
			pkg, err := ParseYAML([]byte(yaml))
			if err == nil {
				// Member references surface at resolution time.
				var classes map[string]*Class
				classes, err = Resolve(pkg, nil)
				if err == nil {
					err = classes["A"].ValidateResolved()
				}
			}
			if c.ok && err != nil {
				t.Fatalf("valid trigger rejected: %v", err)
			}
			if !c.ok && !errors.Is(err, ErrValidation) {
				t.Fatalf("err = %v, want ErrValidation", err)
			}
		})
	}
}

// TestEventTriggersInheritAndSeparate verifies event triggers flow
// through inheritance independently of upload triggers and surface via
// EventTriggers.
func TestEventTriggersInheritAndSeparate(t *testing.T) {
	yaml := `classes:
  - name: Base
    keySpecs:
      - name: photo
        kind: file
      - name: count
        kind: number
    functions:
      - name: thumb
        image: img/thumb
      - name: react
        image: img/react
    triggers:
      - onUpload: photo
        function: thumb
      - on: stateChanged
        function: react
  - name: Child
    parent: Base
    triggers:
      - on: invocationFailed
        webhook: http://alerts.test/hook
`
	pkg, err := ParseYAML([]byte(yaml))
	if err != nil {
		t.Fatal(err)
	}
	classes, err := Resolve(pkg, nil)
	if err != nil {
		t.Fatal(err)
	}
	child := classes["Child"]
	if err := child.ValidateResolved(); err != nil {
		t.Fatal(err)
	}
	if tr, ok := child.Trigger("photo"); !ok || tr.Function != "thumb" {
		t.Fatalf("upload trigger = %+v, %v", tr, ok)
	}
	evs := child.EventTriggers()
	if len(evs) != 2 {
		t.Fatalf("event triggers = %+v", evs)
	}
	kinds := map[string]bool{}
	for _, tr := range evs {
		kinds[tr.On] = true
	}
	if !kinds[EventStateChanged] || !kinds[EventInvocationFailed] {
		t.Fatalf("inherited event triggers = %+v", evs)
	}
	// Identical re-declaration in a child collapses (same identity).
	dupe := `classes:
  - name: Grand
    parent: Child
    triggers:
      - on: stateChanged
        function: react
`
	pkg2, err := ParseYAML([]byte(dupe))
	if err != nil {
		t.Fatal(err)
	}
	classes2, err := Resolve(pkg2, map[string]*Class{"Child": child})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(classes2["Grand"].EventTriggers()); got != 2 {
		t.Fatalf("grandchild event triggers = %d, want 2 (identical override collapses)", got)
	}
}
