package faas

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/hpcclab/oparaca-go/internal/cluster"
	"github.com/hpcclab/oparaca-go/internal/invoker"
)

// testRig bundles a cluster, registry and engine for tests.
type testRig struct {
	cluster  *cluster.Cluster
	registry *invoker.Registry
	engine   *Engine
}

func newRig(t *testing.T, mode Mode, nodes int, opts func(*Config)) *testRig {
	t.Helper()
	c := cluster.New(cluster.Config{OpsPerMilliCPU: 1000})
	for i := 0; i < nodes; i++ {
		if _, err := c.AddNode(fmt.Sprintf("vm-%02d", i), cluster.Resources{MilliCPU: 4000, MemoryMB: 8192}); err != nil {
			t.Fatal(err)
		}
	}
	reg := invoker.NewRegistry()
	reg.Register("img/echo", invoker.HandlerFunc(func(_ context.Context, task invoker.Task) (invoker.Result, error) {
		return invoker.Result{Output: task.Payload}, nil
	}))
	cfg := Config{
		Mode:          mode,
		Cluster:       c,
		Transport:     invoker.NewLocal(reg),
		ScaleInterval: 10 * time.Millisecond,
		IdleTimeout:   50 * time.Millisecond,
		ColdStart:     20 * time.Millisecond,
	}
	if opts != nil {
		opts(&cfg)
	}
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return &testRig{cluster: c, registry: reg, engine: e}
}

func echoSpec(name string) FunctionSpec {
	return FunctionSpec{Name: name, Image: "img/echo", Concurrency: 8, MaxScale: 8}
}

func TestNewEngineValidation(t *testing.T) {
	if _, err := NewEngine(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	c := cluster.New(cluster.Config{})
	if _, err := NewEngine(Config{Mode: ModeKnative, Cluster: c}); err == nil {
		t.Fatal("missing transport accepted")
	}
	if _, err := NewEngine(Config{Mode: Mode(99), Cluster: c, Transport: invoker.NewLocal(invoker.NewRegistry())}); err == nil {
		t.Fatal("bad mode accepted")
	}
}

func TestDeployValidation(t *testing.T) {
	rig := newRig(t, ModeDeployment, 1, nil)
	if err := rig.engine.Deploy(FunctionSpec{}); err == nil {
		t.Fatal("empty spec accepted")
	}
	if err := rig.engine.Deploy(echoSpec("f")); err != nil {
		t.Fatal(err)
	}
	if err := rig.engine.Deploy(echoSpec("f")); !errors.Is(err, ErrFunctionExists) {
		t.Fatalf("duplicate deploy = %v", err)
	}
}

func TestDeploymentModeStartsWarm(t *testing.T) {
	rig := newRig(t, ModeDeployment, 1, nil)
	spec := echoSpec("f")
	spec.InitialScale = 2
	if err := rig.engine.Deploy(spec); err != nil {
		t.Fatal(err)
	}
	n, err := rig.engine.Replicas("f")
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("Replicas = %d, want 2", n)
	}
	// Warm pods serve immediately (no cold-start wait).
	start := time.Now()
	res, err := rig.engine.Invoke(context.Background(), "f", invoker.Task{Payload: json.RawMessage(`"hi"`)})
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Output) != `"hi"` {
		t.Fatalf("output = %s", res.Output)
	}
	if time.Since(start) > 15*time.Millisecond {
		t.Fatalf("warm invoke took %v; cold start charged incorrectly", time.Since(start))
	}
}

func TestInvokeUnknownFunction(t *testing.T) {
	rig := newRig(t, ModeDeployment, 1, nil)
	if _, err := rig.engine.Invoke(context.Background(), "ghost", invoker.Task{}); !errors.Is(err, ErrFunctionNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestKnativeScaleFromZero(t *testing.T) {
	rig := newRig(t, ModeKnative, 1, nil)
	spec := echoSpec("f") // MinScale 0, InitialScale 0
	if err := rig.engine.Deploy(spec); err != nil {
		t.Fatal(err)
	}
	if n, _ := rig.engine.Replicas("f"); n != 0 {
		t.Fatalf("initial replicas = %d, want 0", n)
	}
	start := time.Now()
	if _, err := rig.engine.Invoke(context.Background(), "f", invoker.Task{}); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed < 15*time.Millisecond {
		t.Fatalf("scale-from-zero invoke took %v; cold start not charged", elapsed)
	}
	if n, _ := rig.engine.Replicas("f"); n < 1 {
		t.Fatalf("replicas after invoke = %d", n)
	}
	stats := rig.engine.Stats()
	if len(stats) != 1 || stats[0].ColdStarts < 1 {
		t.Fatalf("stats = %+v, want >=1 cold start", stats)
	}
}

func TestKnativeScaleToZeroAfterIdle(t *testing.T) {
	rig := newRig(t, ModeKnative, 1, nil)
	if err := rig.engine.Deploy(echoSpec("f")); err != nil {
		t.Fatal(err)
	}
	if _, err := rig.engine.Invoke(context.Background(), "f", invoker.Task{}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for {
		n, err := rig.engine.Replicas("f")
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("function never scaled to zero (replicas=%d)", n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestKnativeRespectsMinScale(t *testing.T) {
	rig := newRig(t, ModeKnative, 1, nil)
	spec := echoSpec("f")
	spec.MinScale = 2
	spec.InitialScale = 2
	if err := rig.engine.Deploy(spec); err != nil {
		t.Fatal(err)
	}
	time.Sleep(150 * time.Millisecond) // several idle windows
	if n, _ := rig.engine.Replicas("f"); n < 2 {
		t.Fatalf("replicas fell below MinScale: %d", n)
	}
}

func TestKnativeScalesUpUnderLoad(t *testing.T) {
	rig := newRig(t, ModeKnative, 2, func(c *Config) {
		c.IdleTimeout = time.Minute
	})
	spec := FunctionSpec{
		Name: "f", Image: "img/echo",
		Concurrency: 2, MaxScale: 8,
		ServiceTime: 30 * time.Millisecond,
	}
	if err := rig.engine.Deploy(spec); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				if _, err := rig.engine.Invoke(ctx, "f", invoker.Task{}); err != nil {
					return
				}
			}
		}()
	}
	wg.Wait()
	stats := rig.engine.Stats()
	if stats[0].Replicas < 2 {
		t.Fatalf("autoscaler never scaled up: %+v", stats[0])
	}
}

func TestMaxScaleRespected(t *testing.T) {
	rig := newRig(t, ModeKnative, 2, func(c *Config) {
		c.IdleTimeout = time.Minute
	})
	spec := FunctionSpec{
		Name: "f", Image: "img/echo",
		Concurrency: 1, MaxScale: 2,
		ServiceTime: 20 * time.Millisecond,
	}
	if err := rig.engine.Deploy(spec); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = rig.engine.Invoke(ctx, "f", invoker.Task{})
		}()
	}
	wg.Wait()
	if n, _ := rig.engine.Replicas("f"); n > 2 {
		t.Fatalf("replicas %d exceeded MaxScale 2", n)
	}
}

func TestConcurrencyLimitEnforced(t *testing.T) {
	rig := newRig(t, ModeDeployment, 1, nil)
	spec := FunctionSpec{
		Name: "f", Image: "img/echo",
		Concurrency: 1, InitialScale: 1, MaxScale: 1,
		ServiceTime: 40 * time.Millisecond,
	}
	if err := rig.engine.Deploy(spec); err != nil {
		t.Fatal(err)
	}
	// Two sequentialized invocations through one slot must take at
	// least 2x the service time.
	ctx := context.Background()
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := rig.engine.Invoke(ctx, "f", invoker.Task{}); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed < 75*time.Millisecond {
		t.Fatalf("2 invocations with concurrency 1 took %v, want >= ~80ms", elapsed)
	}
}

func TestRemoveFunction(t *testing.T) {
	rig := newRig(t, ModeDeployment, 1, nil)
	if err := rig.engine.Deploy(echoSpec("f")); err != nil {
		t.Fatal(err)
	}
	if err := rig.engine.Remove("f"); err != nil {
		t.Fatal(err)
	}
	if _, err := rig.engine.Invoke(context.Background(), "f", invoker.Task{}); !errors.Is(err, ErrFunctionNotFound) {
		t.Fatalf("invoke after remove = %v", err)
	}
	if err := rig.engine.Remove("f"); !errors.Is(err, ErrFunctionNotFound) {
		t.Fatalf("double remove = %v", err)
	}
	// Cluster resources released.
	var alloc int64
	for _, n := range rig.cluster.Nodes() {
		alloc += n.Allocated().MilliCPU
	}
	if alloc != 0 {
		t.Fatalf("allocation leak after remove: %d mCPU", alloc)
	}
}

func TestFunctionsList(t *testing.T) {
	rig := newRig(t, ModeDeployment, 1, nil)
	rig.engine.Deploy(echoSpec("zeta"))
	rig.engine.Deploy(echoSpec("alpha"))
	fns := rig.engine.Functions()
	if len(fns) != 2 || fns[0] != "alpha" || fns[1] != "zeta" {
		t.Fatalf("Functions = %v", fns)
	}
}

func TestEngineCloseFailsPending(t *testing.T) {
	rig := newRig(t, ModeKnative, 1, func(c *Config) {
		c.ColdStart = time.Hour // pods never become ready
	})
	spec := echoSpec("f")
	if err := rig.engine.Deploy(spec); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := rig.engine.Invoke(context.Background(), "f", invoker.Task{})
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	rig.engine.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrEngineClosed) && !errors.Is(err, context.Canceled) {
			t.Fatalf("pending invoke err = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pending invoke never failed after Close")
	}
}

func TestCloseIdempotent(t *testing.T) {
	rig := newRig(t, ModeKnative, 1, nil)
	rig.engine.Close()
	rig.engine.Close()
}

func TestInvokeAfterClose(t *testing.T) {
	rig := newRig(t, ModeDeployment, 1, nil)
	rig.engine.Deploy(echoSpec("f"))
	rig.engine.Close()
	if _, err := rig.engine.Invoke(context.Background(), "f", invoker.Task{}); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("err = %v", err)
	}
}

func TestThroughputBoundedByNodeCompute(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	// One node with 200 ops/sec of compute; 100 invocations of cost 1
	// must take roughly >= 350ms (bucket burst absorbs some).
	c := cluster.New(cluster.Config{OpsPerMilliCPU: 0.05}) // 4000 mCPU * 0.05 = 200 ops/s
	if _, err := c.AddNode("vm", cluster.Resources{MilliCPU: 4000, MemoryMB: 8192}); err != nil {
		t.Fatal(err)
	}
	reg := invoker.NewRegistry()
	reg.Register("img/echo", invoker.HandlerFunc(func(context.Context, invoker.Task) (invoker.Result, error) {
		return invoker.Result{}, nil
	}))
	e, err := NewEngine(Config{Mode: ModeDeployment, Cluster: c, Transport: invoker.NewLocal(reg)})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.Deploy(FunctionSpec{Name: "f", Image: "img/echo", Concurrency: 64, InitialScale: 1}); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := e.Invoke(ctx, "f", invoker.Task{}); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	// 100 ops at 200/s with ~20 burst → ≥ 350ms.
	if elapsed < 300*time.Millisecond {
		t.Fatalf("100 ops finished in %v; node compute cap not enforced", elapsed)
	}
}

func TestModeString(t *testing.T) {
	if ModeKnative.String() != "knative" || ModeDeployment.String() != "deployment" {
		t.Fatal("mode strings wrong")
	}
	if Mode(42).String() != "Mode(42)" {
		t.Fatal("unknown mode string wrong")
	}
}
