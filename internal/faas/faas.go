// Package faas implements the function-execution engine substrate.
//
// Two engine modes mirror the systems in the paper's evaluation (§V):
//
//   - ModeKnative models Knative serving: a request-driven autoscaler
//     (desired replicas follow in-flight concurrency), scale-to-zero
//     after an idle window, cold-start delay before a new pod accepts
//     traffic, and an activator/queue-proxy hop charged to every
//     request.
//   - ModeDeployment models a plain Kubernetes Deployment (the
//     `oprc-bypass` configuration): a fixed replica set with no
//     activator hop and no scale-to-zero.
//
// Pods are placed on cluster nodes; each invocation draws compute
// tokens from its pod's node, which makes aggregate throughput scale
// with worker-VM count exactly as in the paper's Figure 3 experiment.
package faas

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/hpcclab/oparaca-go/internal/cluster"
	"github.com/hpcclab/oparaca-go/internal/invoker"
	"github.com/hpcclab/oparaca-go/internal/vclock"
)

// Sentinel errors.
var (
	// ErrFunctionNotFound is returned for unknown function names.
	ErrFunctionNotFound = errors.New("faas: function not found")
	// ErrFunctionExists is returned when deploying a duplicate name.
	ErrFunctionExists = errors.New("faas: function already deployed")
	// ErrEngineClosed is returned after Close.
	ErrEngineClosed = errors.New("faas: engine closed")
)

// Mode selects the engine's execution policy.
type Mode int

const (
	// ModeKnative autoscales on demand with scale-to-zero.
	ModeKnative Mode = iota + 1
	// ModeDeployment keeps a fixed replica set (bypass mode).
	ModeDeployment
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeKnative:
		return "knative"
	case ModeDeployment:
		return "deployment"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// FunctionSpec describes a deployable function.
type FunctionSpec struct {
	// Name is the unique function name (class.method in Oparaca).
	Name string
	// Image is the container image resolved through the invoker
	// registry (e.g. "img/resize").
	Image string
	// Concurrency is the per-pod concurrent request limit
	// (Knative's containerConcurrency). Defaults to 16.
	Concurrency int
	// ServiceTime is the simulated execution duration charged per
	// invocation in addition to running the handler.
	ServiceTime time.Duration
	// Cost is the node-compute tokens consumed per invocation.
	// Defaults to 1.
	Cost float64
	// MinScale / MaxScale bound the autoscaler. MinScale 0 enables
	// scale-to-zero (Knative mode only). MaxScale defaults to 100.
	MinScale int
	MaxScale int
	// InitialScale is the replica count right after Deploy. Knative
	// mode defaults to MinScale; Deployment mode defaults to 1.
	InitialScale int
	// Resources is the per-pod resource request. Defaults to
	// 250 mCPU / 128 MB.
	Resources cluster.Resources
	// Region, when non-empty, restricts pod placement to nodes in
	// that region (jurisdiction constraints).
	Region string
}

func (s FunctionSpec) withDefaults(mode Mode) FunctionSpec {
	if s.Concurrency <= 0 {
		s.Concurrency = 16
	}
	if s.Cost <= 0 {
		s.Cost = 1
	}
	if s.MaxScale <= 0 {
		s.MaxScale = 100
	}
	if s.MinScale < 0 {
		s.MinScale = 0
	}
	if s.MinScale > s.MaxScale {
		s.MinScale = s.MaxScale
	}
	if s.InitialScale == 0 {
		if mode == ModeDeployment {
			s.InitialScale = 1
		} else {
			s.InitialScale = s.MinScale
		}
	}
	if s.InitialScale > s.MaxScale {
		s.InitialScale = s.MaxScale
	}
	if s.Resources.MilliCPU <= 0 {
		s.Resources.MilliCPU = 250
	}
	if s.Resources.MemoryMB <= 0 {
		s.Resources.MemoryMB = 128
	}
	return s
}

// Config configures an Engine.
type Config struct {
	// Mode selects the execution policy; required.
	Mode Mode
	// Cluster hosts the function pods; required.
	Cluster *cluster.Cluster
	// Transport executes tasks against function code; required.
	Transport invoker.Transport
	// TargetConcurrency is the autoscaler's per-pod in-flight target
	// (Knative's target utilization). Defaults to 0.7*Concurrency of
	// each function.
	TargetUtilization float64
	// ScaleInterval is the autoscaler evaluation period. Defaults to
	// 100ms.
	ScaleInterval time.Duration
	// IdleTimeout is how long a function must be idle before
	// scale-to-zero. Defaults to 30s.
	IdleTimeout time.Duration
	// ColdStart is the delay before a new pod serves traffic.
	// Defaults to 100ms.
	ColdStart time.Duration
	// RequestOverhead is the per-request data-path cost. For
	// ModeKnative this models the activator/queue-proxy hop; for
	// ModeDeployment it should be smaller (kube-proxy only).
	RequestOverhead time.Duration
	// Namespace prefixes the engine's cluster deployment names so
	// multiple engines (one per class runtime) share a cluster without
	// collisions. Defaults to a random value.
	Namespace string
	// Clock supplies time; defaults to the real clock.
	Clock vclock.Clock
}

func (c Config) withDefaults() Config {
	if c.TargetUtilization <= 0 || c.TargetUtilization > 1 {
		c.TargetUtilization = 0.7
	}
	if c.ScaleInterval <= 0 {
		c.ScaleInterval = 100 * time.Millisecond
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 30 * time.Second
	}
	if c.ColdStart <= 0 {
		c.ColdStart = 100 * time.Millisecond
	}
	if c.Clock == nil {
		c.Clock = vclock.NewReal()
	}
	if c.Namespace == "" {
		var b [4]byte
		if _, err := rand.Read(b[:]); err == nil {
			c.Namespace = hex.EncodeToString(b[:])
		}
	}
	return c
}

// podSlot is one unit of per-pod concurrency, bound to a node for
// compute accounting.
type podSlot struct {
	podID string
	node  string
}

// function is the runtime state of one deployed function.
type function struct {
	spec       FunctionSpec
	deployment *cluster.Deployment
	slots      chan podSlot

	mu       sync.Mutex
	livePods map[string]string // podID -> node

	inflight   atomic.Int64
	lastActive atomic.Int64 // unix nanos

	invocations atomic.Int64
	coldStarts  atomic.Int64
}

// Engine executes functions on a cluster. It is safe for concurrent
// use.
type Engine struct {
	cfg Config

	mu        sync.Mutex
	functions map[string]*function
	closed    bool

	stop chan struct{}
	done chan struct{}
}

// NewEngine creates an engine and, in Knative mode, starts its
// autoscaler.
func NewEngine(cfg Config) (*Engine, error) {
	if cfg.Mode != ModeKnative && cfg.Mode != ModeDeployment {
		return nil, fmt.Errorf("faas: invalid mode %v", cfg.Mode)
	}
	if cfg.Cluster == nil {
		return nil, errors.New("faas: Config.Cluster is required")
	}
	if cfg.Transport == nil {
		return nil, errors.New("faas: Config.Transport is required")
	}
	e := &Engine{
		cfg:       cfg.withDefaults(),
		functions: make(map[string]*function),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	if e.cfg.Mode == ModeKnative {
		go e.autoscaleLoop()
	} else {
		close(e.done)
	}
	return e, nil
}

// Mode returns the engine's mode.
func (e *Engine) Mode() Mode { return e.cfg.Mode }

// Deploy registers a function and scales it to its initial replica
// count.
func (e *Engine) Deploy(spec FunctionSpec) error {
	if spec.Name == "" || spec.Image == "" {
		return errors.New("faas: FunctionSpec needs Name and Image")
	}
	spec = spec.withDefaults(e.cfg.Mode)
	if e.cfg.Mode == ModeDeployment && spec.InitialScale < 1 {
		return fmt.Errorf("faas: deployment mode function %q needs at least 1 replica", spec.Name)
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrEngineClosed
	}
	if _, ok := e.functions[spec.Name]; ok {
		e.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrFunctionExists, spec.Name)
	}
	dep, err := e.cfg.Cluster.CreateRegionDeployment("fn-"+e.cfg.Namespace+"-"+spec.Name, spec.Resources, 0, cluster.StrategySpread, spec.Region)
	if err != nil {
		e.mu.Unlock()
		return fmt.Errorf("faas: creating deployment: %w", err)
	}
	fn := &function{
		spec:       spec,
		deployment: dep,
		slots:      make(chan podSlot, (spec.MaxScale+1)*spec.Concurrency),
		livePods:   make(map[string]string),
	}
	fn.lastActive.Store(e.cfg.Clock.Now().UnixNano())
	e.functions[spec.Name] = fn
	e.mu.Unlock()
	if spec.InitialScale > 0 {
		// Initial replicas are warm: no cold-start delay, matching a
		// completed rollout.
		if err := e.scaleTo(fn, spec.InitialScale, false); err != nil {
			_ = e.Remove(spec.Name)
			return err
		}
	}
	return nil
}

// Remove deletes a function and frees its pods.
func (e *Engine) Remove(name string) error {
	e.mu.Lock()
	fn, ok := e.functions[name]
	if !ok {
		e.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrFunctionNotFound, name)
	}
	delete(e.functions, name)
	e.mu.Unlock()
	fn.mu.Lock()
	fn.livePods = make(map[string]string)
	fn.mu.Unlock()
	return e.cfg.Cluster.DeleteDeployment(fn.deployment.Name())
}

// lookup returns the named function.
func (e *Engine) lookup(name string) (*function, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, ErrEngineClosed
	}
	fn, ok := e.functions[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrFunctionNotFound, name)
	}
	return fn, nil
}

// Replicas returns the current replica count of a function.
func (e *Engine) Replicas(name string) (int, error) {
	fn, err := e.lookup(name)
	if err != nil {
		return 0, err
	}
	return fn.deployment.Replicas(), nil
}

// Functions returns deployed function names, sorted.
func (e *Engine) Functions() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]string, 0, len(e.functions))
	for name := range e.functions {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Invoke executes one task on the named function, blocking until a
// pod slot is available (triggering scale-from-zero when needed).
func (e *Engine) Invoke(ctx context.Context, name string, task invoker.Task) (invoker.Result, error) {
	fn, err := e.lookup(name)
	if err != nil {
		return invoker.Result{}, err
	}
	fn.inflight.Add(1)
	fn.lastActive.Store(e.cfg.Clock.Now().UnixNano())
	defer fn.inflight.Add(-1)

	// Data-path overhead (activator / queue-proxy hop in Knative
	// mode; kube-proxy in deployment mode).
	if e.cfg.RequestOverhead > 0 {
		if err := e.cfg.Clock.Sleep(ctx, e.cfg.RequestOverhead); err != nil {
			return invoker.Result{}, err
		}
	}

	// Scale from zero: the activator kicks the autoscaler
	// synchronously rather than waiting for the next tick.
	if e.cfg.Mode == ModeKnative && fn.deployment.Replicas() == 0 {
		fn.coldStarts.Add(1)
		fn.mu.Lock()
		floor := fn.spec.MinScale
		fn.mu.Unlock()
		if floor < 1 {
			floor = 1
		}
		if err := e.scaleTo(fn, floor, true); err != nil {
			return invoker.Result{}, err
		}
	}

	slot, err := e.acquireSlot(ctx, fn)
	if err != nil {
		return invoker.Result{}, err
	}
	defer e.releaseSlot(fn, slot)

	// Charge the pod's node for the compute.
	node, err := e.cfg.Cluster.Node(slot.node)
	if err == nil {
		cost := task.Cost
		if cost <= 0 {
			cost = fn.spec.Cost
		}
		if err := node.Compute().Take(ctx, cost); err != nil {
			if errors.Is(err, vclock.ErrBucketClosed) {
				// Node was removed mid-flight; drop the slot and fail
				// the request like a terminated pod would.
				return invoker.Result{}, fmt.Errorf("faas: node %s terminated", slot.node)
			}
			return invoker.Result{}, err
		}
	}
	if fn.spec.ServiceTime > 0 {
		if err := e.cfg.Clock.Sleep(ctx, fn.spec.ServiceTime); err != nil {
			return invoker.Result{}, err
		}
	}
	fn.invocations.Add(1)
	return e.cfg.Transport.Offload(ctx, fn.spec.Image, task)
}

// acquireSlot pops a live pod slot, discarding slots from evicted pods.
func (e *Engine) acquireSlot(ctx context.Context, fn *function) (podSlot, error) {
	for {
		select {
		case slot := <-fn.slots:
			fn.mu.Lock()
			_, alive := fn.livePods[slot.podID]
			fn.mu.Unlock()
			if alive {
				return slot, nil
			}
		case <-ctx.Done():
			return podSlot{}, ctx.Err()
		case <-e.stop:
			return podSlot{}, ErrEngineClosed
		}
	}
}

// releaseSlot returns a slot unless its pod has been evicted.
func (e *Engine) releaseSlot(fn *function, slot podSlot) {
	fn.mu.Lock()
	_, alive := fn.livePods[slot.podID]
	fn.mu.Unlock()
	if !alive {
		return
	}
	select {
	case fn.slots <- slot:
	default:
		// Channel full can only happen after a scale-down raced a
		// release; dropping is safe (capacity is re-synced on the
		// next scale).
	}
}

// scaleTo adjusts the function to n replicas and synchronizes slot
// tokens with the actual pod set. When coldStart is true, slots for
// new pods become available only after the cold-start delay.
func (e *Engine) scaleTo(fn *function, n int, coldStart bool) error {
	fn.mu.Lock()
	defer fn.mu.Unlock()
	if n > fn.spec.MaxScale {
		n = fn.spec.MaxScale
	}
	if err := fn.deployment.Scale(n); err != nil {
		if !errors.Is(err, cluster.ErrNoCapacity) {
			return err
		}
		// Partial scale: keep whatever was placed.
	}
	actual := make(map[string]string)
	for _, p := range fn.deployment.Pods() {
		actual[p.ID] = p.Node
	}
	// Evict slots of removed pods (lazily drained).
	for id := range fn.livePods {
		if _, ok := actual[id]; !ok {
			delete(fn.livePods, id)
		}
	}
	// Announce new pods.
	for id, node := range actual {
		if _, ok := fn.livePods[id]; ok {
			continue
		}
		fn.livePods[id] = node
		slot := podSlot{podID: id, node: node}
		conc := fn.spec.Concurrency
		if coldStart && e.cfg.ColdStart > 0 {
			go e.warmup(fn, slot, conc)
			continue
		}
		for i := 0; i < conc; i++ {
			fn.slots <- slot
		}
	}
	return nil
}

// warmup publishes a new pod's slots after the cold-start delay.
func (e *Engine) warmup(fn *function, slot podSlot, conc int) {
	select {
	case <-e.cfg.Clock.After(e.cfg.ColdStart):
	case <-e.stop:
		return
	}
	fn.mu.Lock()
	_, alive := fn.livePods[slot.podID]
	fn.mu.Unlock()
	if !alive {
		return
	}
	for i := 0; i < conc; i++ {
		select {
		case fn.slots <- slot:
		case <-e.stop:
			return
		}
	}
}

// autoscaleLoop is the Knative-style autoscaler: desired replicas
// follow in-flight demand, bounded by Min/MaxScale, with scale-to-zero
// after IdleTimeout.
func (e *Engine) autoscaleLoop() {
	defer close(e.done)
	for {
		select {
		case <-e.stop:
			return
		case <-e.cfg.Clock.After(e.cfg.ScaleInterval):
		}
		e.mu.Lock()
		fns := make([]*function, 0, len(e.functions))
		for _, fn := range e.functions {
			fns = append(fns, fn)
		}
		e.mu.Unlock()
		now := e.cfg.Clock.Now()
		for _, fn := range fns {
			e.evaluate(fn, now)
		}
	}
}

// evaluate computes and applies one autoscale decision for fn.
func (e *Engine) evaluate(fn *function, now time.Time) {
	fn.mu.Lock()
	spec := fn.spec // SetMinScale may mutate the spec concurrently
	fn.mu.Unlock()
	inflight := fn.inflight.Load()
	cur := fn.deployment.Replicas()
	target := float64(spec.Concurrency) * e.cfg.TargetUtilization
	desired := int(math.Ceil(float64(inflight) / target))
	if inflight > 0 && desired < 1 {
		desired = 1
	}
	if desired < spec.MinScale {
		desired = spec.MinScale
	}
	if desired > spec.MaxScale {
		desired = spec.MaxScale
	}
	if inflight == 0 {
		idle := now.Sub(time.Unix(0, fn.lastActive.Load()))
		if idle >= e.cfg.IdleTimeout {
			desired = spec.MinScale
		} else {
			// Not idle long enough: never scale below current (but
			// also never below MinScale).
			if desired < cur {
				desired = cur
			}
		}
	}
	if desired != cur {
		_ = e.scaleTo(fn, desired, true)
	}
}

// ScaleFunction manually sets a function's replica count. In Knative
// mode the autoscaler may override the value on its next evaluation;
// pair with SetMinScale to make a floor stick.
func (e *Engine) ScaleFunction(name string, replicas int) error {
	if replicas < 0 {
		return fmt.Errorf("faas: negative replica count %d", replicas)
	}
	fn, err := e.lookup(name)
	if err != nil {
		return err
	}
	return e.scaleTo(fn, replicas, true)
}

// SetMinScale updates a function's autoscaler floor (and ceiling-clamps
// it to MaxScale). The optimizer uses this to hold capacity for QoS.
func (e *Engine) SetMinScale(name string, minScale int) error {
	if minScale < 0 {
		return fmt.Errorf("faas: negative min scale %d", minScale)
	}
	fn, err := e.lookup(name)
	if err != nil {
		return err
	}
	fn.mu.Lock()
	if minScale > fn.spec.MaxScale {
		minScale = fn.spec.MaxScale
	}
	fn.spec.MinScale = minScale
	fn.mu.Unlock()
	if fn.deployment.Replicas() < minScale {
		return e.scaleTo(fn, minScale, true)
	}
	return nil
}

// FunctionStats reports one function's counters.
type FunctionStats struct {
	Name        string `json:"name"`
	Replicas    int    `json:"replicas"`
	Inflight    int64  `json:"inflight"`
	Invocations int64  `json:"invocations"`
	ColdStarts  int64  `json:"cold_starts"`
}

// Stats returns counters for every deployed function, sorted by name.
func (e *Engine) Stats() []FunctionStats {
	e.mu.Lock()
	fns := make([]*function, 0, len(e.functions))
	for _, fn := range e.functions {
		fns = append(fns, fn)
	}
	e.mu.Unlock()
	out := make([]FunctionStats, 0, len(fns))
	for _, fn := range fns {
		out = append(out, FunctionStats{
			Name:        fn.spec.Name,
			Replicas:    fn.deployment.Replicas(),
			Inflight:    fn.inflight.Load(),
			Invocations: fn.invocations.Load(),
			ColdStarts:  fn.coldStarts.Load(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Close stops the autoscaler and fails pending invocations.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	e.mu.Unlock()
	close(e.stop)
	<-e.done
}
