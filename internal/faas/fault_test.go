package faas

import (
	"context"
	"sync"
	"testing"
	"time"

	"github.com/hpcclab/oparaca-go/internal/invoker"
)

// TestNodeRemovalMidFlightRecovers removes a worker VM while
// invocations are in flight and verifies the engine keeps serving from
// the remaining node once its deployment heals.
func TestNodeRemovalMidFlightRecovers(t *testing.T) {
	rig := newRig(t, ModeDeployment, 2, nil)
	spec := FunctionSpec{
		Name: "f", Image: "img/echo",
		Concurrency: 4, InitialScale: 4, MaxScale: 8,
		ServiceTime: 5 * time.Millisecond,
	}
	if err := rig.engine.Deploy(spec); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	// Background load while the node goes away.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Errors are acceptable during the disruption window;
				// the assertion is on recovery below.
				_, _ = rig.engine.Invoke(ctx, "f", invoker.Task{})
			}
		}()
	}
	time.Sleep(20 * time.Millisecond)
	if err := rig.cluster.RemoveNode("vm-00"); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	// Heal: re-scale onto the surviving node.
	if err := rig.engine.ScaleFunction("f", 4); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := rig.engine.Invoke(ctx, "f", invoker.Task{}); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("engine never recovered after node removal")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// All replicas now live on the surviving node.
	n, err := rig.cluster.Node("vm-01")
	if err != nil {
		t.Fatal(err)
	}
	if n.PodCount() == 0 {
		t.Fatal("surviving node hosts no pods after heal")
	}
}

// TestScaleFunctionManual verifies the optimizer's manual scaling
// entry points.
func TestScaleFunctionManual(t *testing.T) {
	rig := newRig(t, ModeDeployment, 2, nil)
	if err := rig.engine.Deploy(echoSpec("f")); err != nil {
		t.Fatal(err)
	}
	if err := rig.engine.ScaleFunction("f", 3); err != nil {
		t.Fatal(err)
	}
	if n, _ := rig.engine.Replicas("f"); n != 3 {
		t.Fatalf("replicas = %d, want 3", n)
	}
	if err := rig.engine.ScaleFunction("f", -1); err == nil {
		t.Fatal("negative scale accepted")
	}
	if err := rig.engine.ScaleFunction("ghost", 1); err == nil {
		t.Fatal("scaling unknown function succeeded")
	}
}

// TestSetMinScaleRaisesReplicas verifies SetMinScale provisions up to
// the floor immediately and clamps to MaxScale.
func TestSetMinScaleRaisesReplicas(t *testing.T) {
	rig := newRig(t, ModeKnative, 2, func(c *Config) {
		c.IdleTimeout = time.Minute
	})
	spec := echoSpec("f")
	spec.MaxScale = 4
	if err := rig.engine.Deploy(spec); err != nil {
		t.Fatal(err)
	}
	if err := rig.engine.SetMinScale("f", 10); err != nil { // clamped to 4
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for {
		n, err := rig.engine.Replicas("f")
		if err != nil {
			t.Fatal(err)
		}
		if n == 4 {
			break
		}
		if n > 4 {
			t.Fatalf("replicas %d exceeded MaxScale", n)
		}
		if time.Now().After(deadline) {
			t.Fatalf("replicas never reached floor: %d", n)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := rig.engine.SetMinScale("f", -1); err == nil {
		t.Fatal("negative min scale accepted")
	}
	if err := rig.engine.SetMinScale("ghost", 1); err == nil {
		t.Fatal("unknown function accepted")
	}
}
