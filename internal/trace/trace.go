// Package trace is the platform's dependency-free distributed-tracing
// layer: one trace per end-to-end invocation, spans for every stage it
// crosses (gateway HTTP, ownership admission, queue wait, drain
// dispatch, state load, handler execution, OCC attempts, commit, event
// log append, trigger dispatch, webhook delivery), linked across the
// async submit→drain boundary and across forwarded ingress→owner hops
// so a queued task's whole life is one trace.
//
// The design constraints come from the warm-path allocation contract
// (see internal/runtime/pool.go): a nil *Tracer — and a nil *Span —
// disables everything at the cost of a nil check, spans and trace
// accumulators are pooled, and a trace that the tail-based sampler
// drops returns every transient to its pool without materializing
// anything. Only kept traces allocate (their immutable TraceView).
//
// Sampling is tail-based: the keep decision is made when the last span
// (or cross-goroutine link) of a trace finishes, so it can see the
// whole outcome. A trace is kept when any of:
//
//   - it was forced (the inbound W3C traceparent carried the sampled
//     flag — CI and debugging force traces this way);
//   - any span recorded an error (failures, fence rejections and
//     deadline expiries all surface as span errors);
//   - its root duration reaches the slowest-percentile threshold
//     learned from recent roots (the "where did this one slow
//     invocation go" case);
//   - a seeded probabilistic sample (Config.SampleRate) selects it.
//
// Kept traces land in a bounded ring (Config.Capacity), indexed by
// trace ID and by the invocation IDs the trace touched, and are served
// by the gateway (`GET /api/traces`, `GET /api/invocations/{id}/trace`)
// and `ocli trace`.
//
// Propagation is W3C traceparent ("00-<trace-id>-<span-id>-<flags>"):
// the gateway accepts and emits the header, Event.Trace carries it into
// the trigger/event-log plane, and Tracer.Attach re-joins a trace from
// the bare header — attaching to the live trace when it is still open,
// or appending a late span to the kept view when the trace already
// finalized (late spans after a sampled-out drop are lost by design).
package trace

import (
	"context"
	"encoding/hex"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID is the 16-byte W3C trace identifier.
type TraceID [16]byte

// SpanID is the 8-byte W3C span identifier.
type SpanID [8]byte

// String returns the lowercase-hex form.
func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// String returns the lowercase-hex form.
func (id SpanID) String() string { return hex.EncodeToString(id[:]) }

// IsZero reports an all-zero (invalid per W3C) trace ID.
func (id TraceID) IsZero() bool { return id == TraceID{} }

// maxAttrs bounds the per-span attribute array; attrs past the bound
// are dropped. Fixed so attribute recording never allocates.
const maxAttrs = 6

// Attr is one span attribute. The fixed string/int split avoids
// interface boxing on the record path.
type Attr struct {
	Key   string
	Str   string
	Int   int64
	IsInt bool
}

// Config tunes a Tracer.
type Config struct {
	// Capacity bounds the kept-trace ring. Defaults to 256.
	Capacity int
	// SampleRate is the probabilistic keep rate for traces that are
	// neither forced, errored, nor slow. Defaults to 0.05 when zero;
	// negative disables probabilistic keeps entirely (forced / error /
	// slow traces are still kept).
	SampleRate float64
	// Seed seeds the tracer's deterministic ID/sampling generator;
	// zero picks a fixed default.
	Seed uint64
	// Now supplies time (the platform passes its vclock). Defaults to
	// time.Now.
	Now func() time.Time
}

// Tracer owns the active-trace table, the kept-trace ring, and the
// span/trace pools. A nil *Tracer is a valid disabled tracer: every
// method no-ops and Root/Attach return nil spans.
type Tracer struct {
	now        func() time.Time
	sampleRate float64
	capacity   int

	rng atomic.Uint64 // splitmix64 state

	mu     sync.Mutex
	active map[TraceID]*traceData
	ring   []*TraceView // circular, capacity entries
	next   int
	byID   map[TraceID]*TraceView
	byInv  map[string]*TraceView
	// recent holds the latest root durations; every recomputeEvery
	// finalizations the slowest-percentile keep threshold is refreshed
	// from it.
	recent    []time.Duration
	nRecent   int
	finalizes int

	slowNs atomic.Int64 // cached slow-keep threshold (0 = not yet learned)

	started atomic.Int64
	kept    atomic.Int64
	dropped atomic.Int64
}

const (
	recentWindow   = 128
	recomputeEvery = 64
	slowQuantile   = 0.95
)

// New builds a tracer.
func New(cfg Config) *Tracer {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 256
	}
	if cfg.SampleRate == 0 {
		cfg.SampleRate = 0.05
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Seed == 0 {
		cfg.Seed = 0x6f70617261636131 // arbitrary fixed default
	}
	t := &Tracer{
		now:        cfg.Now,
		sampleRate: cfg.SampleRate,
		capacity:   cfg.Capacity,
		active:     make(map[TraceID]*traceData),
		ring:       make([]*TraceView, cfg.Capacity),
		byID:       make(map[TraceID]*TraceView),
		byInv:      make(map[string]*TraceView),
		recent:     make([]time.Duration, 0, recentWindow),
	}
	t.rng.Store(cfg.Seed)
	return t
}

// Enabled reports whether tracing is on (the nil tracer is off).
func (t *Tracer) Enabled() bool { return t != nil }

// rand is splitmix64 over an atomic counter: deterministic under a
// fixed seed, allocation-free, and safe for concurrent use.
func (t *Tracer) rand() uint64 {
	x := t.rng.Add(0x9E3779B97F4A7C15)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	return x ^ (x >> 31)
}

func (t *Tracer) newTraceID() TraceID {
	var id TraceID
	for id.IsZero() {
		a, b := t.rand(), t.rand()
		for i := 0; i < 8; i++ {
			id[i] = byte(a >> (8 * i))
			id[8+i] = byte(b >> (8 * i))
		}
	}
	return id
}

func (t *Tracer) newSpanID() SpanID {
	var id SpanID
	for id == (SpanID{}) {
		a := t.rand()
		for i := 0; i < 8; i++ {
			id[i] = byte(a >> (8 * i))
		}
	}
	return id
}

// traceData accumulates one in-flight trace. It is pooled: finalize
// returns it (and every parked span) to the pools whether the trace is
// kept or dropped.
type traceData struct {
	tr     *Tracer
	id     TraceID
	start  time.Time
	forced bool

	mu sync.Mutex
	// open is the reference count holding the trace alive: open spans
	// plus outstanding Links. The trace finalizes when it hits zero.
	open        int
	done        bool
	errored     bool
	spans       []*Span // ended spans, parked until finalize
	rootName    string
	rootDur     time.Duration
	invocations []string
}

var dataPool = sync.Pool{New: func() any { return &traceData{} }}

var spanPool = sync.Pool{New: func() any { return &Span{} }}

// Span is one stage of a trace. All methods are nil-receiver safe, so
// instrumentation sites need no enabled-checks. A span is owned by one
// goroutine at a time; End must be called exactly once.
type Span struct {
	td     *traceData
	view   *TraceView // late-attach target when td is nil
	tr     *Tracer    // set for late spans only
	id     SpanID
	parent SpanID
	name   string
	start  time.Time
	dur    time.Duration
	errMsg string
	root   bool
	attrs  [maxAttrs]Attr
	nattrs int
}

func (t *Tracer) getSpan(td *traceData, parent SpanID, name string) *Span {
	s := spanPool.Get().(*Span)
	s.td = td
	s.view = nil
	s.tr = nil
	s.id = t.newSpanID()
	s.parent = parent
	s.name = name
	s.start = t.now()
	s.dur = 0
	s.errMsg = ""
	s.root = false
	s.nattrs = 0
	return s
}

func releaseSpan(s *Span) {
	s.td = nil
	s.view = nil
	s.tr = nil
	s.name = ""
	s.errMsg = ""
	s.attrs = [maxAttrs]Attr{}
	s.nattrs = 0
	spanPool.Put(s)
}

// Root starts a new trace (or continues the one named by the inbound
// W3C traceparent header; its sampled flag forces the keep decision)
// and returns its root span. If the named trace is already active in
// this process — the forwarded-hop case — the returned span joins it
// as a child instead of colliding. Returns nil on a nil tracer.
func (t *Tracer) Root(name, traceparent string) *Span {
	if t == nil {
		return nil
	}
	t.started.Add(1)
	var (
		tid    TraceID
		parent SpanID
		forced bool
	)
	if p, ok := parseTraceparent(traceparent); ok {
		tid, parent, forced = p.traceID, p.spanID, p.flags&1 == 1
	} else {
		tid = t.newTraceID()
	}
	t.mu.Lock()
	if td := t.active[tid]; td != nil {
		// The trace is already live here: a second ingress of the same
		// trace (forwarded hop) joins it rather than forking it.
		t.mu.Unlock()
		td.mu.Lock()
		if !td.done {
			td.open++
			td.mu.Unlock()
			return t.getSpan(td, parent, name)
		}
		td.mu.Unlock()
		// Lost the race against finalize; fall through to a fresh trace.
		tid = t.newTraceID()
		t.mu.Lock()
	}
	td := dataPool.Get().(*traceData)
	td.tr = t
	td.id = tid
	td.start = t.now()
	td.forced = forced
	td.open = 1
	td.done = false
	td.errored = false
	td.spans = td.spans[:0]
	td.rootName = ""
	td.rootDur = 0
	td.invocations = td.invocations[:0]
	t.active[tid] = td
	t.mu.Unlock()
	sp := t.getSpan(td, parent, name)
	sp.root = true
	sp.start = td.start
	return sp
}

// Attach re-joins a trace from a bare traceparent (Event.Trace — the
// publish/delivery planes have no context). An active trace gets a
// normal child span; a finalized-and-kept trace gets a late span
// appended to its stored view on End; anything else (unknown, or
// sampled out) returns nil.
func (t *Tracer) Attach(traceparent, name string) *Span {
	if t == nil || traceparent == "" {
		return nil
	}
	p, ok := parseTraceparent(traceparent)
	if !ok {
		return nil
	}
	t.mu.Lock()
	td := t.active[p.traceID]
	view := t.byID[p.traceID]
	t.mu.Unlock()
	if td != nil {
		td.mu.Lock()
		if !td.done {
			td.open++
			td.mu.Unlock()
			return t.getSpan(td, p.spanID, name)
		}
		td.mu.Unlock()
	}
	if view == nil {
		return nil
	}
	s := t.getSpan(nil, p.spanID, name)
	s.view = view
	s.tr = t
	return s
}

// Child starts a sub-span. Nil-safe: a nil receiver returns nil.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	if s.td == nil {
		// Children of a late span stay on the same stored view.
		c := s.tr.getSpan(nil, s.id, name)
		c.view = s.view
		c.tr = s.tr
		return c
	}
	td := s.td
	td.mu.Lock()
	td.open++
	td.mu.Unlock()
	return td.tr.getSpan(td, s.id, name)
}

// SetAttr records a string attribute (dropped past the fixed bound).
func (s *Span) SetAttr(key, val string) {
	if s == nil || s.nattrs >= maxAttrs {
		return
	}
	s.attrs[s.nattrs] = Attr{Key: key, Str: val}
	s.nattrs++
}

// SetInt records an integer attribute (dropped past the fixed bound).
func (s *Span) SetInt(key string, v int) {
	if s == nil || s.nattrs >= maxAttrs {
		return
	}
	s.attrs[s.nattrs] = Attr{Key: key, Int: int64(v), IsInt: true}
	s.nattrs++
}

// Error records a failure on the span (and, at End, marks the whole
// trace errored — errored traces are always kept). Nil err is a no-op.
func (s *Span) Error(err error) {
	if s == nil || err == nil {
		return
	}
	s.errMsg = err.Error()
}

// SetInvocation associates an asynchronous invocation ID with the
// trace, so the kept view is retrievable by invocation.
func (s *Span) SetInvocation(id string) {
	if s == nil || s.td == nil || id == "" {
		return
	}
	td := s.td
	td.mu.Lock()
	for _, have := range td.invocations {
		if have == id {
			td.mu.Unlock()
			return
		}
	}
	td.invocations = append(td.invocations, id)
	td.mu.Unlock()
}

// TraceIDString returns the span's trace ID in hex ("" when disabled).
func (s *Span) TraceIDString() string {
	if s == nil {
		return ""
	}
	if s.td != nil {
		return s.td.id.String()
	}
	if s.view != nil {
		return s.view.ID
	}
	return ""
}

// Traceparent renders the W3C header for propagating this span as a
// parent ("" when disabled). The sampled flag carries the trace's
// forced bit.
func (s *Span) Traceparent() string {
	if s == nil || s.td == nil {
		return ""
	}
	var b [55]byte
	b[0], b[1], b[2] = '0', '0', '-'
	hex.Encode(b[3:35], s.td.id[:])
	b[35] = '-'
	hex.Encode(b[36:52], s.id[:])
	b[52], b[53] = '-', '0'
	if s.td.forced {
		b[54] = '1'
	} else {
		b[54] = '0'
	}
	return string(b[:])
}

// End finishes the span. The last End (or Link.Release) of a trace
// triggers finalization: the tail-based keep decision, then either the
// immutable TraceView landing in the ring or every transient returning
// to its pool. The span must not be used after End.
func (s *Span) End() {
	if s == nil {
		return
	}
	if s.td == nil {
		s.endLate()
		return
	}
	td := s.td
	s.dur = td.tr.now().Sub(s.start)
	td.mu.Lock()
	if s.errMsg != "" {
		td.errored = true
	}
	if s.root {
		td.rootName, td.rootDur = s.name, s.dur
	}
	td.spans = append(td.spans, s)
	td.open--
	fin := td.open == 0
	td.mu.Unlock()
	if fin {
		td.tr.finalize(td)
	}
}

// endLate appends a finished late span to its stored view.
func (s *Span) endLate() {
	s.dur = s.tr.now().Sub(s.start)
	sv := s.toView()
	tr := s.tr
	view := s.view
	tr.mu.Lock()
	view.Spans = append(view.Spans, sv)
	tr.mu.Unlock()
	releaseSpan(s)
}

// Link is a cross-goroutine handle holding a trace open across an
// asynchronous boundary (queue submit → worker drain). The zero Link
// is inert. Release must be called exactly once per Link; Start may be
// called any number of times before that.
type Link struct {
	td     *traceData
	parent SpanID
}

// Link returns a handle pinning the span's trace open until Release.
func (s *Span) Link() Link {
	if s == nil || s.td == nil {
		return Link{}
	}
	s.td.mu.Lock()
	s.td.open++
	s.td.mu.Unlock()
	return Link{td: s.td, parent: s.id}
}

// Start opens a new span under the link's parent (nil on a zero Link).
func (l Link) Start(name string) *Span {
	if l.td == nil {
		return nil
	}
	l.td.mu.Lock()
	l.td.open++
	l.td.mu.Unlock()
	return l.td.tr.getSpan(l.td, l.parent, name)
}

// Release drops the link's hold on the trace, finalizing it if this
// was the last reference.
func (l Link) Release() {
	if l.td == nil {
		return
	}
	td := l.td
	td.mu.Lock()
	td.open--
	fin := td.open == 0 && !td.done
	td.mu.Unlock()
	if fin {
		td.tr.finalize(td)
	}
}

// finalize makes the tail-based keep decision for a completed trace
// and recycles its transients. Safe against concurrent late Attach:
// the done flag is settled under td.mu before anything is torn down.
func (t *Tracer) finalize(td *traceData) {
	td.mu.Lock()
	if td.open != 0 || td.done {
		// An Attach/Link revived the trace between the zero-crossing
		// and here; its eventual End re-finalizes.
		td.mu.Unlock()
		return
	}
	td.done = true
	td.mu.Unlock()

	t.mu.Lock()
	delete(t.active, td.id)
	// Learn the slowest-percentile threshold from recent roots.
	if len(t.recent) < recentWindow {
		t.recent = append(t.recent, td.rootDur)
	} else {
		t.recent[t.nRecent%recentWindow] = td.rootDur
	}
	t.nRecent++
	t.finalizes++
	if t.finalizes%recomputeEvery == 0 {
		sorted := make([]time.Duration, len(t.recent))
		copy(sorted, t.recent)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		idx := int(float64(len(sorted)) * slowQuantile)
		if idx >= len(sorted) {
			idx = len(sorted) - 1
		}
		thr := sorted[idx]
		if thr > 0 {
			t.slowNs.Store(int64(thr))
		}
	}
	t.mu.Unlock()

	reason := ""
	switch {
	case td.forced:
		reason = "forced"
	case td.errored:
		reason = "error"
	case t.slowNs.Load() > 0 && td.rootDur > time.Duration(t.slowNs.Load()):
		reason = "slow"
	case t.sampleRate > 0 && float64(t.rand()>>11)/(1<<53) < t.sampleRate:
		reason = "sampled"
	}
	if reason == "" {
		t.dropped.Add(1)
		t.release(td)
		return
	}
	t.kept.Add(1)
	view := buildView(td, reason)
	t.mu.Lock()
	if old := t.ring[t.next]; old != nil {
		delete(t.byID, old.tid)
		for _, inv := range old.Invocations {
			if t.byInv[inv] == old {
				delete(t.byInv, inv)
			}
		}
	}
	t.ring[t.next] = view
	t.next = (t.next + 1) % len(t.ring)
	t.byID[td.id] = view
	for _, inv := range view.Invocations {
		t.byInv[inv] = view
	}
	t.mu.Unlock()
	t.release(td)
}

// release recycles a finalized trace's spans and accumulator.
func (t *Tracer) release(td *traceData) {
	for i, s := range td.spans {
		td.spans[i] = nil
		releaseSpan(s)
	}
	td.spans = td.spans[:0]
	td.invocations = td.invocations[:0]
	td.tr = nil
	dataPool.Put(td)
}

// SpanView is one finished span of a kept trace.
type SpanView struct {
	ID       string         `json:"id"`
	Parent   string         `json:"parent,omitempty"`
	Name     string         `json:"name"`
	Start    time.Time      `json:"start"`
	Duration time.Duration  `json:"duration_ns"`
	Error    string         `json:"error,omitempty"`
	Attrs    map[string]any `json:"attrs,omitempty"`
}

// TraceView is one kept trace: the immutable record served by the API.
type TraceView struct {
	tid         TraceID
	ID          string        `json:"id"`
	Root        string        `json:"root"`
	Start       time.Time     `json:"start"`
	Duration    time.Duration `json:"duration_ns"`
	Reason      string        `json:"reason"`
	Invocations []string      `json:"invocations,omitempty"`
	Spans       []SpanView    `json:"spans"`
}

func (s *Span) toView() SpanView {
	sv := SpanView{
		ID:       s.id.String(),
		Name:     s.name,
		Start:    s.start,
		Duration: s.dur,
		Error:    s.errMsg,
	}
	if s.parent != (SpanID{}) {
		sv.Parent = s.parent.String()
	}
	if s.nattrs > 0 {
		sv.Attrs = make(map[string]any, s.nattrs)
		for _, a := range s.attrs[:s.nattrs] {
			if a.IsInt {
				sv.Attrs[a.Key] = a.Int
			} else {
				sv.Attrs[a.Key] = a.Str
			}
		}
	}
	return sv
}

func buildView(td *traceData, reason string) *TraceView {
	v := &TraceView{
		tid:      td.id,
		ID:       td.id.String(),
		Root:     td.rootName,
		Start:    td.start,
		Duration: td.rootDur,
		Reason:   reason,
	}
	if len(td.invocations) > 0 {
		v.Invocations = append([]string(nil), td.invocations...)
	}
	v.Spans = make([]SpanView, len(td.spans))
	for i, s := range td.spans {
		v.Spans[i] = s.toView()
	}
	// Spans park in end order; serve them in start order so the view
	// reads as a timeline.
	sort.SliceStable(v.Spans, func(i, j int) bool { return v.Spans[i].Start.Before(v.Spans[j].Start) })
	return v
}

// cloneView snapshots a stored view (late spans may still append).
// Caller holds t.mu.
func cloneView(v *TraceView) TraceView {
	out := *v
	out.Spans = append([]SpanView(nil), v.Spans...)
	return out
}

// Traces returns up to limit kept traces, newest first (limit <= 0
// returns all retained).
func (t *Tracer) Traces(limit int) []TraceView {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TraceView, 0, len(t.byID))
	for i := 0; i < len(t.ring); i++ {
		idx := (t.next - 1 - i + 2*len(t.ring)) % len(t.ring)
		v := t.ring[idx]
		if v == nil {
			continue
		}
		out = append(out, cloneView(v))
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out
}

// TraceByID returns one kept trace by hex trace ID.
func (t *Tracer) TraceByID(id string) (TraceView, bool) {
	if t == nil {
		return TraceView{}, false
	}
	raw, err := hex.DecodeString(id)
	if err != nil || len(raw) != 16 {
		return TraceView{}, false
	}
	var tid TraceID
	copy(tid[:], raw)
	t.mu.Lock()
	defer t.mu.Unlock()
	v := t.byID[tid]
	if v == nil {
		return TraceView{}, false
	}
	return cloneView(v), true
}

// ByInvocation returns the kept trace that touched an asynchronous
// invocation ID.
func (t *Tracer) ByInvocation(inv string) (TraceView, bool) {
	if t == nil {
		return TraceView{}, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	v := t.byInv[inv]
	if v == nil {
		return TraceView{}, false
	}
	return cloneView(v), true
}

// Stats is a tracer snapshot.
type Stats struct {
	// Started counts root spans opened; Kept/Dropped partition the
	// finalized traces by the tail-sampling decision.
	Started int64 `json:"started"`
	Kept    int64 `json:"kept"`
	Dropped int64 `json:"dropped"`
	// Retained is the number of traces currently in the ring.
	Retained int `json:"retained"`
}

// Stats snapshots the tracer's counters.
func (t *Tracer) Stats() Stats {
	if t == nil {
		return Stats{}
	}
	t.mu.Lock()
	retained := len(t.byID)
	t.mu.Unlock()
	return Stats{
		Started:  t.started.Load(),
		Kept:     t.kept.Load(),
		Dropped:  t.dropped.Load(),
		Retained: retained,
	}
}

// ctxKey carries the current span through context.
type ctxKey struct{}

// ContextWith returns ctx carrying the span (ctx unchanged for a nil
// span, so the disabled path allocates nothing).
func ContextWith(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the span carried by ctx, or nil.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// parsed is a decoded traceparent header.
type parsed struct {
	traceID TraceID
	spanID  SpanID
	flags   byte
}

// parseTraceparent decodes a W3C traceparent header
// ("00-<32 hex>-<16 hex>-<2 hex>"). Unknown versions are accepted per
// spec (the known fields parse identically); all-zero trace or span
// IDs are rejected.
func parseTraceparent(s string) (parsed, bool) {
	var p parsed
	if len(s) < 55 || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return p, false
	}
	if s[0] == 'f' && s[1] == 'f' {
		return p, false // version 0xff is forbidden
	}
	if _, err := hex.Decode(p.traceID[:], []byte(s[3:35])); err != nil {
		return p, false
	}
	if _, err := hex.Decode(p.spanID[:], []byte(s[36:52])); err != nil {
		return p, false
	}
	var fl [1]byte
	if _, err := hex.Decode(fl[:], []byte(s[53:55])); err != nil {
		return p, false
	}
	p.flags = fl[0]
	if p.traceID.IsZero() || p.spanID == (SpanID{}) {
		return p, false
	}
	return p, true
}
