package trace

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// testClock is a monotonically advancing fake clock.
type testClock struct {
	mu  sync.Mutex
	now time.Time
}

func newTestClock() *testClock {
	return &testClock{now: time.Unix(1_700_000_000, 0)}
}

func (c *testClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(time.Microsecond)
	return c.now
}

func (c *testClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func newTestTracer(rate float64) (*Tracer, *testClock) {
	clk := newTestClock()
	return New(Config{SampleRate: rate, Now: clk.Now, Capacity: 8}), clk
}

func TestNilTracerAndSpanAreInert(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	sp := tr.Root("x", "")
	if sp != nil {
		t.Fatalf("nil tracer Root = %v", sp)
	}
	// Every span method must be a no-op on nil.
	sp.SetAttr("k", "v")
	sp.SetInt("k", 1)
	sp.Error(errors.New("boom"))
	sp.SetInvocation("inv")
	if got := sp.Traceparent(); got != "" {
		t.Fatalf("nil Traceparent = %q", got)
	}
	child := sp.Child("c")
	if child != nil {
		t.Fatal("nil Child non-nil")
	}
	l := sp.Link()
	if s := l.Start("d"); s != nil {
		t.Fatal("zero Link Start non-nil")
	}
	l.Release()
	sp.End()
	ctx := ContextWith(context.Background(), nil)
	if FromContext(ctx) != nil {
		t.Fatal("nil span round-tripped through context")
	}
	if tr.Attach("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", "x") != nil {
		t.Fatal("nil tracer Attach non-nil")
	}
	if got := tr.Traces(10); got != nil {
		t.Fatalf("nil tracer Traces = %v", got)
	}
}

func TestForcedTraceKeptWithSpanTree(t *testing.T) {
	tr, _ := newTestTracer(-1) // probabilistic off: only forced/error/slow kept
	const parent = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	root := tr.Root("gateway", parent)
	if root == nil {
		t.Fatal("Root returned nil")
	}
	if got := root.TraceIDString(); got != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("trace id = %q", got)
	}
	tp := root.Traceparent()
	if len(tp) != 55 || tp[54] != '1' {
		t.Fatalf("emitted traceparent %q should carry the forced flag", tp)
	}
	root.SetAttr("method", "POST")
	c := root.Child("handler")
	c.SetInt("attempt", 1)
	c.End()
	root.SetInvocation("inv-1")
	root.End()

	v, ok := tr.TraceByID("4bf92f3577b34da6a3ce929d0e0e4736")
	if !ok {
		t.Fatal("forced trace not retained")
	}
	if v.Reason != "forced" {
		t.Fatalf("reason = %q", v.Reason)
	}
	if len(v.Spans) != 2 {
		t.Fatalf("spans = %d", len(v.Spans))
	}
	if v.Spans[0].Name != "gateway" || v.Spans[1].Name != "handler" {
		t.Fatalf("span order = %q, %q", v.Spans[0].Name, v.Spans[1].Name)
	}
	if v.Spans[1].Parent != v.Spans[0].ID {
		t.Fatal("child span not parented to root")
	}
	if v.Spans[0].Attrs["method"] != "POST" {
		t.Fatalf("root attrs = %v", v.Spans[0].Attrs)
	}
	if got, _ := v.Spans[1].Attrs["attempt"].(int64); got != 1 {
		t.Fatalf("child attrs = %v", v.Spans[1].Attrs)
	}
	byInv, ok := tr.ByInvocation("inv-1")
	if !ok || byInv.ID != v.ID {
		t.Fatal("invocation index lookup failed")
	}
}

func TestErroredTraceAlwaysKept(t *testing.T) {
	tr, _ := newTestTracer(-1)
	root := tr.Root("invoke", "")
	c := root.Child("commit")
	c.Error(errors.New("fence rejected"))
	c.End()
	root.End()
	traces := tr.Traces(0)
	if len(traces) != 1 {
		t.Fatalf("kept %d traces, want 1", len(traces))
	}
	if traces[0].Reason != "error" {
		t.Fatalf("reason = %q", traces[0].Reason)
	}
	found := false
	for _, sv := range traces[0].Spans {
		if sv.Name == "commit" && sv.Error == "fence rejected" {
			found = true
		}
	}
	if !found {
		t.Fatalf("commit error not recorded: %+v", traces[0].Spans)
	}
}

func TestUnremarkableTracesDroppedWhenSamplingDisabled(t *testing.T) {
	tr, _ := newTestTracer(-1)
	for i := 0; i < 50; i++ {
		sp := tr.Root("invoke", "")
		sp.Child("handler").End()
		sp.End()
	}
	st := tr.Stats()
	if st.Kept != 0 || st.Dropped != 50 {
		t.Fatalf("stats = %+v, want 0 kept / 50 dropped", st)
	}
	if got := tr.Traces(0); len(got) != 0 {
		t.Fatalf("retained %d traces", len(got))
	}
}

func TestProbabilisticSamplingKeepsAll(t *testing.T) {
	tr, _ := newTestTracer(1.0)
	for i := 0; i < 20; i++ {
		tr.Root("invoke", "").End()
	}
	if st := tr.Stats(); st.Kept != 20 {
		t.Fatalf("stats = %+v, want 20 kept", st)
	}
}

func TestSlowTraceKeptAfterThresholdLearned(t *testing.T) {
	tr, clk := newTestTracer(-1)
	// Teach the tracer a baseline of fast traces (threshold recomputes
	// every recomputeEvery finalizations).
	for i := 0; i < recomputeEvery; i++ {
		tr.Root("invoke", "").End() // ~µs roots
	}
	if tr.slowNs.Load() == 0 {
		t.Fatal("slow threshold not learned")
	}
	sp := tr.Root("invoke", "")
	clk.Advance(time.Second)
	sp.End()
	traces := tr.Traces(0)
	if len(traces) != 1 || traces[0].Reason != "slow" {
		t.Fatalf("slow trace not kept: %+v", traces)
	}
}

func TestRingEvictionBoundsRetention(t *testing.T) {
	tr, _ := newTestTracer(1.0) // keep everything; capacity 8
	for i := 0; i < 30; i++ {
		sp := tr.Root("invoke", "")
		sp.SetInvocation(fmt.Sprintf("inv-%d", i))
		sp.End()
	}
	traces := tr.Traces(0)
	if len(traces) != 8 {
		t.Fatalf("retained %d traces, want capacity 8", len(traces))
	}
	// Newest first; evicted invocation index entries must be gone.
	if traces[0].Invocations[0] != "inv-29" {
		t.Fatalf("newest trace = %v", traces[0].Invocations)
	}
	if _, ok := tr.ByInvocation("inv-0"); ok {
		t.Fatal("evicted trace still indexed by invocation")
	}
	if _, ok := tr.ByInvocation("inv-29"); !ok {
		t.Fatal("retained trace lost its invocation index")
	}
}

func TestLinkSpansAsyncBoundary(t *testing.T) {
	tr, _ := newTestTracer(1.0)
	root := tr.Root("gateway", "")
	wait := root.Child("queue.wait")
	link := root.Link()
	root.End() // request returns while the task is queued
	if got := tr.Traces(0); len(got) != 0 {
		t.Fatal("trace finalized while link held")
	}
	wait.End()
	drain := link.Start("queue.drain")
	handler := drain.Child("handler")
	handler.End()
	drain.End()
	link.Release()
	traces := tr.Traces(0)
	if len(traces) != 1 {
		t.Fatalf("kept %d traces", len(traces))
	}
	names := map[string]bool{}
	for _, sv := range traces[0].Spans {
		names[sv.Name] = true
	}
	for _, want := range []string{"gateway", "queue.wait", "queue.drain", "handler"} {
		if !names[want] {
			t.Fatalf("span %q missing from %v", want, names)
		}
	}
}

func TestAttachActiveAndLate(t *testing.T) {
	tr, _ := newTestTracer(-1)
	const parent = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	root := tr.Root("invoke", "")
	tp := root.Traceparent()

	// Active attach: joins the live trace.
	att := tr.Attach(tp, "eventlog.append")
	if att == nil {
		t.Fatal("Attach to active trace returned nil")
	}
	att.End()
	root.Error(errors.New("keep me"))
	root.End()

	// Late attach: the trace has finalized and was kept; the late span
	// must land on the stored view.
	late := tr.Attach(tp, "webhook.delivery")
	if late == nil {
		t.Fatal("Attach to kept trace returned nil")
	}
	late.SetAttr("url", "http://example")
	late.End()

	v, ok := tr.TraceByID(root.TraceIDString())
	if ok {
		t.Log("trace id still resolvable after End via captured string")
	}
	v, ok = tr.TraceByID(tp[3:35])
	if !ok {
		t.Fatal("trace not retained")
	}
	names := map[string]bool{}
	for _, sv := range v.Spans {
		names[sv.Name] = true
	}
	if !names["eventlog.append"] || !names["webhook.delivery"] {
		t.Fatalf("attached spans missing: %v", names)
	}

	// Attach to an unknown (dropped) trace is nil.
	if tr.Attach(parent, "x") != nil {
		t.Fatal("Attach to unknown trace returned a span")
	}
}

func TestRootJoinsActiveTraceOnForwardedHop(t *testing.T) {
	tr, _ := newTestTracer(-1)
	const hdr = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	ingress := tr.Root("gateway", hdr)
	// The owner node sees the same traceparent while the ingress span
	// is still open: it must join, not fork.
	owner := tr.Root("gateway", ingress.Traceparent())
	owner.End()
	ingress.End()
	traces := tr.Traces(0)
	if len(traces) != 1 {
		t.Fatalf("forwarded hop forked the trace: %d kept", len(traces))
	}
	if len(traces[0].Spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(traces[0].Spans))
	}
}

func TestParseTraceparent(t *testing.T) {
	cases := []struct {
		in string
		ok bool
	}{
		{"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", true},
		{"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00", true},
		{"cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", true}, // future version
		{"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", false},
		{"00-00000000000000000000000000000000-00f067aa0ba902b7-01", false},
		{"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", false},
		{"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7", false},
		{"garbage", false},
		{"", false},
	}
	for _, c := range cases {
		if _, ok := parseTraceparent(c.in); ok != c.ok {
			t.Errorf("parseTraceparent(%q) ok = %v, want %v", c.in, ok, c.ok)
		}
	}
}

func TestConcurrentSpansSingleTrace(t *testing.T) {
	tr, _ := newTestTracer(1.0)
	root := tr.Root("gateway", "")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		link := root.Link()
		go func(i int) {
			defer wg.Done()
			sp := link.Start("worker")
			sp.SetInt("i", i)
			sp.End()
			link.Release()
		}(i)
	}
	root.End()
	wg.Wait()
	traces := tr.Traces(0)
	if len(traces) != 1 {
		t.Fatalf("kept %d traces", len(traces))
	}
	if got := len(traces[0].Spans); got != 17 {
		t.Fatalf("spans = %d, want 17", got)
	}
}

func TestDisabledPathAllocations(t *testing.T) {
	var tr *Tracer
	ctx := context.Background()
	n := testing.AllocsPerRun(100, func() {
		sp := tr.Root("gateway", "")
		c := FromContext(ContextWith(ctx, sp)).Child("handler")
		c.SetAttr("k", "v")
		c.End()
		sp.End()
	})
	if n != 0 {
		t.Fatalf("disabled tracing path allocates %v per op", n)
	}
}

func TestUnsampledPathSteadyStateAllocations(t *testing.T) {
	tr, _ := newTestTracer(-1)
	// Warm the pools and the recent-duration window.
	for i := 0; i < 200; i++ {
		sp := tr.Root("invoke", "")
		sp.Child("handler").End()
		sp.End()
	}
	n := testing.AllocsPerRun(500, func() {
		sp := tr.Root("invoke", "")
		c := sp.Child("handler")
		c.SetAttr("class", "X")
		c.End()
		sp.End()
	})
	// Pool-recycled spans and accumulators: a small constant for the
	// occasional slow-keep view is tolerated, but the path must not
	// allocate per span.
	if n > 2 {
		t.Fatalf("unsampled trace path allocates %v per op", n)
	}
}
