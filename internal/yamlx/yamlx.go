// Package yamlx implements a YAML-subset decoder sufficient for
// Oparaca class-definition packages (paper §IV, Listing 1), without
// third-party dependencies.
//
// Supported subset:
//   - block mappings and nested mappings via indentation
//   - block sequences ("- item"), including sequences of mappings
//   - scalars: strings (plain, 'single', "double" with escapes),
//     integers, floats, booleans (true/false), null (~ / null / empty)
//   - comments ("# ..." to end of line, outside quotes)
//   - flow-style sequences [a, b] and mappings {k: v} on one line
//   - multi-document input is rejected (one document per file)
//
// Decode produces a tree of map[string]any / []any / scalar values.
// Unmarshal bridges that tree into typed structs via encoding/json,
// so struct tags follow `json:"..."` conventions.
package yamlx

import (
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// SyntaxError describes a parse failure with its 1-based line number.
type SyntaxError struct {
	Line int
	Msg  string
}

// Error implements error.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("yamlx: line %d: %s", e.Line, e.Msg)
}

func errAt(line int, format string, args ...any) error {
	return &SyntaxError{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// ErrEmptyDocument is returned when the input holds no content.
var ErrEmptyDocument = errors.New("yamlx: empty document")

// line is one significant (non-blank, non-comment-only) input line.
type line struct {
	num    int    // 1-based line number in the source
	indent int    // count of leading spaces
	text   string // content with indentation stripped, comments removed
}

// Decode parses a single YAML document into a generic tree of
// map[string]any, []any, string, int64, float64, bool, or nil.
func Decode(data []byte) (any, error) {
	lines, err := splitLines(string(data))
	if err != nil {
		return nil, err
	}
	if len(lines) == 0 {
		return nil, ErrEmptyDocument
	}
	p := &parser{lines: lines}
	v, err := p.parseBlock(lines[0].indent)
	if err != nil {
		return nil, err
	}
	if p.pos < len(p.lines) {
		return nil, errAt(p.lines[p.pos].num, "unexpected content after document (indentation mismatch?)")
	}
	return v, nil
}

// Unmarshal decodes YAML into v using encoding/json struct-tag
// conventions: the generic tree is re-marshalled to JSON and
// json.Unmarshal-ed into v.
func Unmarshal(data []byte, v any) error {
	tree, err := Decode(data)
	if err != nil {
		return err
	}
	raw, err := json.Marshal(tree)
	if err != nil {
		return fmt.Errorf("yamlx: bridging to JSON: %w", err)
	}
	if err := json.Unmarshal(raw, v); err != nil {
		return fmt.Errorf("yamlx: %w", err)
	}
	return nil
}

// splitLines tokenizes the input into significant lines.
func splitLines(src string) ([]line, error) {
	var out []line
	for i, raw := range strings.Split(src, "\n") {
		num := i + 1
		if strings.HasPrefix(strings.TrimSpace(raw), "---") {
			if len(out) > 0 {
				return nil, errAt(num, "multi-document input is not supported")
			}
			continue // leading document marker is tolerated
		}
		if strings.ContainsRune(raw, '\t') {
			trimmed := strings.TrimLeft(raw, " ")
			if strings.HasPrefix(trimmed, "\t") {
				return nil, errAt(num, "tabs are not allowed for indentation")
			}
		}
		content := stripComment(raw)
		trimmed := strings.TrimRight(content, " \r")
		if strings.TrimSpace(trimmed) == "" {
			continue
		}
		indent := len(trimmed) - len(strings.TrimLeft(trimmed, " "))
		out = append(out, line{num: num, indent: indent, text: strings.TrimLeft(trimmed, " ")})
	}
	return out, nil
}

// stripComment removes a trailing "# ..." comment that is not inside a
// quoted string.
func stripComment(s string) string {
	inSingle, inDouble := false, false
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c == '\'' && !inDouble:
			inSingle = !inSingle
		case c == '"' && !inSingle:
			if i == 0 || s[i-1] != '\\' {
				inDouble = !inDouble
			}
		case c == '#' && !inSingle && !inDouble:
			// A '#' begins a comment only at start of line or after
			// whitespace, per YAML.
			if i == 0 || s[i-1] == ' ' {
				return s[:i]
			}
		}
	}
	return s
}

type parser struct {
	lines []line
	pos   int
}

func (p *parser) peek() (line, bool) {
	if p.pos >= len(p.lines) {
		return line{}, false
	}
	return p.lines[p.pos], true
}

// parseBlock parses a block value (mapping, sequence, or scalar) whose
// lines sit at exactly the given indent.
func (p *parser) parseBlock(indent int) (any, error) {
	ln, ok := p.peek()
	if !ok {
		return nil, nil
	}
	if ln.indent != indent {
		return nil, errAt(ln.num, "unexpected indentation %d (expected %d)", ln.indent, indent)
	}
	if strings.HasPrefix(ln.text, "- ") || ln.text == "-" {
		return p.parseSequence(indent)
	}
	if isMappingLine(ln.text) {
		return p.parseMapping(indent)
	}
	// Bare scalar document.
	p.pos++
	return parseScalar(ln.text, ln.num)
}

// isMappingLine reports whether the line looks like "key: ..." with a
// colon outside quotes and flow delimiters.
func isMappingLine(s string) bool {
	_, _, ok := splitKeyValue(s)
	return ok
}

// splitKeyValue splits "key: value" at the first top-level ": " (or a
// trailing ":"). It respects quotes and flow brackets in the key.
func splitKeyValue(s string) (key, value string, ok bool) {
	inSingle, inDouble := false, false
	depth := 0
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c == '\'' && !inDouble:
			inSingle = !inSingle
		case c == '"' && !inSingle:
			if i == 0 || s[i-1] != '\\' {
				inDouble = !inDouble
			}
		case inSingle || inDouble:
		case c == '[' || c == '{':
			depth++
		case c == ']' || c == '}':
			depth--
		case c == ':' && depth == 0:
			if i == len(s)-1 {
				return strings.TrimSpace(s[:i]), "", true
			}
			if s[i+1] == ' ' {
				return strings.TrimSpace(s[:i]), strings.TrimSpace(s[i+2:]), true
			}
		}
	}
	return "", "", false
}

// parseMapping parses consecutive "key: value" lines at indent.
func (p *parser) parseMapping(indent int) (any, error) {
	m := make(map[string]any)
	for {
		ln, ok := p.peek()
		if !ok || ln.indent < indent {
			return m, nil
		}
		if ln.indent > indent {
			return nil, errAt(ln.num, "unexpected indent %d inside mapping at indent %d", ln.indent, indent)
		}
		if strings.HasPrefix(ln.text, "- ") || ln.text == "-" {
			return m, nil // sibling sequence belongs to the caller
		}
		key, value, ok := splitKeyValue(ln.text)
		if !ok {
			return nil, errAt(ln.num, "expected 'key: value', got %q", ln.text)
		}
		key, err := unquoteKey(key, ln.num)
		if err != nil {
			return nil, err
		}
		if _, dup := m[key]; dup {
			return nil, errAt(ln.num, "duplicate mapping key %q", key)
		}
		p.pos++
		if value == "" {
			// Nested block (mapping or sequence) or null.
			child, ok := p.peek()
			switch {
			case ok && child.indent > indent:
				v, err := p.parseBlock(child.indent)
				if err != nil {
					return nil, err
				}
				m[key] = v
			case ok && child.indent == indent && (strings.HasPrefix(child.text, "- ") || child.text == "-"):
				// Sequences are commonly indented at the same level
				// as their key.
				v, err := p.parseSequence(indent)
				if err != nil {
					return nil, err
				}
				m[key] = v
			default:
				m[key] = nil
			}
			continue
		}
		v, err := parseScalar(value, ln.num)
		if err != nil {
			return nil, err
		}
		m[key] = v
	}
}

// parseSequence parses consecutive "- item" lines at indent.
func (p *parser) parseSequence(indent int) (any, error) {
	var seq []any
	for {
		ln, ok := p.peek()
		if !ok || ln.indent != indent || !(strings.HasPrefix(ln.text, "- ") || ln.text == "-") {
			if ok && ln.indent > indent {
				return nil, errAt(ln.num, "unexpected indent %d inside sequence at indent %d", ln.indent, indent)
			}
			return seq, nil
		}
		rest := strings.TrimSpace(strings.TrimPrefix(ln.text, "-"))
		if rest == "" {
			// "-" alone: nested block on following lines.
			p.pos++
			child, ok := p.peek()
			if !ok || child.indent <= indent {
				seq = append(seq, nil)
				continue
			}
			v, err := p.parseBlock(child.indent)
			if err != nil {
				return nil, err
			}
			seq = append(seq, v)
			continue
		}
		if isMappingLine(rest) {
			// "- key: value" starts an inline mapping whose further
			// keys are indented past the dash.
			v, err := p.parseInlineSeqMapping(indent, rest, ln.num)
			if err != nil {
				return nil, err
			}
			seq = append(seq, v)
			continue
		}
		p.pos++
		v, err := parseScalar(rest, ln.num)
		if err != nil {
			return nil, err
		}
		seq = append(seq, v)
	}
}

// parseInlineSeqMapping handles "- key: value" plus continuation keys
// indented deeper than the dash.
func (p *parser) parseInlineSeqMapping(dashIndent int, first string, num int) (any, error) {
	m := make(map[string]any)
	// Rewrite the current line as if it were the first key of a
	// mapping indented at dashIndent+2 and parse forward.
	key, value, _ := splitKeyValue(first)
	key, err := unquoteKey(key, num)
	if err != nil {
		return nil, err
	}
	p.pos++
	childIndent := dashIndent + 2
	if value == "" {
		child, ok := p.peek()
		switch {
		case ok && child.indent > childIndent:
			v, err := p.parseBlock(child.indent)
			if err != nil {
				return nil, err
			}
			m[key] = v
		case ok && child.indent == childIndent && (strings.HasPrefix(child.text, "- ") || child.text == "-"):
			v, err := p.parseSequence(childIndent)
			if err != nil {
				return nil, err
			}
			m[key] = v
		default:
			m[key] = nil
		}
	} else {
		v, err := parseScalar(value, num)
		if err != nil {
			return nil, err
		}
		m[key] = v
	}
	// Continuation keys at childIndent.
	for {
		ln, ok := p.peek()
		if !ok || ln.indent < childIndent {
			return m, nil
		}
		if strings.HasPrefix(ln.text, "- ") || ln.text == "-" {
			return m, nil
		}
		rest, err := p.parseMapping(ln.indent)
		if err != nil {
			return nil, err
		}
		restMap, ok := rest.(map[string]any)
		if !ok {
			return nil, errAt(ln.num, "expected mapping continuation")
		}
		for k, v := range restMap {
			if _, dup := m[k]; dup {
				return nil, errAt(ln.num, "duplicate mapping key %q", k)
			}
			m[k] = v
		}
	}
}

// unquoteKey removes optional quotes around a mapping key.
func unquoteKey(key string, num int) (string, error) {
	if key == "" {
		return "", errAt(num, "empty mapping key")
	}
	if key[0] == '"' || key[0] == '\'' {
		v, err := parseScalar(key, num)
		if err != nil {
			return "", err
		}
		s, ok := v.(string)
		if !ok {
			return "", errAt(num, "quoted key did not parse to string")
		}
		return s, nil
	}
	return key, nil
}

// parseScalar interprets a single scalar token, including flow
// collections.
func parseScalar(s string, num int) (any, error) {
	s = strings.TrimSpace(s)
	switch {
	case s == "":
		return nil, nil
	case s[0] == '[':
		return parseFlowSeq(s, num)
	case s[0] == '{':
		return parseFlowMap(s, num)
	case s[0] == '"':
		if len(s) < 2 || s[len(s)-1] != '"' {
			return nil, errAt(num, "unterminated double-quoted string")
		}
		unq, err := strconv.Unquote(s)
		if err != nil {
			return nil, errAt(num, "bad double-quoted string %s: %v", s, err)
		}
		return unq, nil
	case s[0] == '\'':
		if len(s) < 2 || s[len(s)-1] != '\'' {
			return nil, errAt(num, "unterminated single-quoted string")
		}
		return strings.ReplaceAll(s[1:len(s)-1], "''", "'"), nil
	}
	switch s {
	case "null", "~", "Null", "NULL":
		return nil, nil
	case "true", "True", "TRUE":
		return true, nil
	case "false", "False", "FALSE":
		return false, nil
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return i, nil
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f, nil
	}
	return s, nil
}

// parseFlowSeq parses "[a, b, c]".
func parseFlowSeq(s string, num int) (any, error) {
	if s[len(s)-1] != ']' {
		return nil, errAt(num, "unterminated flow sequence %q", s)
	}
	inner := strings.TrimSpace(s[1 : len(s)-1])
	if inner == "" {
		return []any{}, nil
	}
	parts, err := splitFlow(inner, num)
	if err != nil {
		return nil, err
	}
	seq := make([]any, 0, len(parts))
	for _, part := range parts {
		v, err := parseScalar(part, num)
		if err != nil {
			return nil, err
		}
		seq = append(seq, v)
	}
	return seq, nil
}

// parseFlowMap parses "{k: v, k2: v2}".
func parseFlowMap(s string, num int) (any, error) {
	if s[len(s)-1] != '}' {
		return nil, errAt(num, "unterminated flow mapping %q", s)
	}
	inner := strings.TrimSpace(s[1 : len(s)-1])
	m := make(map[string]any)
	if inner == "" {
		return m, nil
	}
	parts, err := splitFlow(inner, num)
	if err != nil {
		return nil, err
	}
	for _, part := range parts {
		key, value, ok := splitKeyValue(part)
		if !ok {
			// Also allow "k:v" without space inside flow maps.
			if i := strings.IndexByte(part, ':'); i > 0 {
				key, value, ok = strings.TrimSpace(part[:i]), strings.TrimSpace(part[i+1:]), true
			}
		}
		if !ok {
			return nil, errAt(num, "bad flow mapping entry %q", part)
		}
		key, err := unquoteKey(key, num)
		if err != nil {
			return nil, err
		}
		v, err := parseScalar(value, num)
		if err != nil {
			return nil, err
		}
		m[key] = v
	}
	return m, nil
}

// splitFlow splits a flow collection body on top-level commas.
func splitFlow(s string, num int) ([]string, error) {
	var parts []string
	depth := 0
	inSingle, inDouble := false, false
	start := 0
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c == '\'' && !inDouble:
			inSingle = !inSingle
		case c == '"' && !inSingle:
			if i == 0 || s[i-1] != '\\' {
				inDouble = !inDouble
			}
		case inSingle || inDouble:
		case c == '[' || c == '{':
			depth++
		case c == ']' || c == '}':
			depth--
			if depth < 0 {
				return nil, errAt(num, "unbalanced brackets in flow collection")
			}
		case c == ',' && depth == 0:
			parts = append(parts, strings.TrimSpace(s[start:i]))
			start = i + 1
		}
	}
	if depth != 0 || inSingle || inDouble {
		return nil, errAt(num, "unbalanced delimiters in flow collection")
	}
	parts = append(parts, strings.TrimSpace(s[start:]))
	return parts, nil
}
