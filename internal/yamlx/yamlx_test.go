package yamlx

import (
	"errors"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"testing/quick"
)

func decodeOK(t *testing.T, src string) any {
	t.Helper()
	v, err := Decode([]byte(src))
	if err != nil {
		t.Fatalf("Decode(%q) error: %v", src, err)
	}
	return v
}

func TestDecodeScalarTypes(t *testing.T) {
	cases := []struct {
		in   string
		want any
	}{
		{"42", int64(42)},
		{"-7", int64(-7)},
		{"3.14", 3.14},
		{"true", true},
		{"false", false},
		{"null", nil},
		{"~", nil},
		{"hello", "hello"},
		{"'quoted string'", "quoted string"},
		{`"escaped\nstring"`, "escaped\nstring"},
		{"'it''s'", "it's"},
	}
	for _, c := range cases {
		got := decodeOK(t, c.in)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Decode(%q) = %#v, want %#v", c.in, got, c.want)
		}
	}
}

func TestDecodeSimpleMapping(t *testing.T) {
	got := decodeOK(t, "name: Image\nthroughput: 100\npersistent: true\n")
	want := map[string]any{"name": "Image", "throughput": int64(100), "persistent": true}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %#v, want %#v", got, want)
	}
}

func TestDecodeNestedMapping(t *testing.T) {
	src := `
qos:
  throughput: 100
  availability: 0.99
constraint:
  persistent: true
`
	got := decodeOK(t, src)
	want := map[string]any{
		"qos":        map[string]any{"throughput": int64(100), "availability": 0.99},
		"constraint": map[string]any{"persistent": true},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %#v, want %#v", got, want)
	}
}

func TestDecodeSequenceOfScalars(t *testing.T) {
	got := decodeOK(t, "- a\n- 2\n- true\n")
	want := []any{"a", int64(2), true}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %#v, want %#v", got, want)
	}
}

func TestDecodeSequenceOfMappings(t *testing.T) {
	src := `
functions:
  - name: resize
    image: img/resize
  - name: changeFormat
    image: img/change-format
`
	got := decodeOK(t, src)
	want := map[string]any{
		"functions": []any{
			map[string]any{"name": "resize", "image": "img/resize"},
			map[string]any{"name": "changeFormat", "image": "img/change-format"},
		},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %#v, want %#v", got, want)
	}
}

// TestDecodePaperListing1 exercises the exact class definition from the
// paper's Listing 1 (simplified YAML for image processing).
func TestDecodePaperListing1(t *testing.T) {
	src := `classes:
  - name: Image
    qos:
      throughput: 100 # rps
    constraint:
      persistent: true
    keySpecs:
      - name: image # File Image ;
    functions:
      - name: resize
        # container image
        image: img/resize
      - name: changeFormat
        image: img/change-format
  - name: LabelledImage
    parent: Image
    functions:
      - name: detectObject
        image: img/detect-object
`
	got := decodeOK(t, src)
	root, ok := got.(map[string]any)
	if !ok {
		t.Fatalf("root is %T", got)
	}
	classes, ok := root["classes"].([]any)
	if !ok || len(classes) != 2 {
		t.Fatalf("classes = %#v", root["classes"])
	}
	img := classes[0].(map[string]any)
	if img["name"] != "Image" {
		t.Errorf("class 0 name = %v", img["name"])
	}
	qos := img["qos"].(map[string]any)
	if qos["throughput"] != int64(100) {
		t.Errorf("throughput = %#v", qos["throughput"])
	}
	fns := img["functions"].([]any)
	if len(fns) != 2 {
		t.Fatalf("functions = %#v", fns)
	}
	if fns[0].(map[string]any)["image"] != "img/resize" {
		t.Errorf("fn0 image = %v", fns[0].(map[string]any)["image"])
	}
	labelled := classes[1].(map[string]any)
	if labelled["parent"] != "Image" {
		t.Errorf("parent = %v", labelled["parent"])
	}
}

func TestDecodeFlowCollections(t *testing.T) {
	got := decodeOK(t, "tags: [a, b, 3]\nmeta: {k: v, n: 2}\nempty: []\n")
	want := map[string]any{
		"tags":  []any{"a", "b", int64(3)},
		"meta":  map[string]any{"k": "v", "n": int64(2)},
		"empty": []any{},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %#v, want %#v", got, want)
	}
}

func TestDecodeCommentsStripped(t *testing.T) {
	got := decodeOK(t, "# leading comment\nkey: value # trailing\nurl: \"http://x#frag\"\n")
	want := map[string]any{"key": "value", "url": "http://x#frag"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %#v, want %#v", got, want)
	}
}

func TestDecodeNullValueForEmptyKey(t *testing.T) {
	got := decodeOK(t, "a:\nb: 1\n")
	want := map[string]any{"a": nil, "b": int64(1)}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %#v, want %#v", got, want)
	}
}

func TestDecodeSequenceAtSameIndentAsKey(t *testing.T) {
	src := "items:\n- one\n- two\n"
	got := decodeOK(t, src)
	want := map[string]any{"items": []any{"one", "two"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %#v, want %#v", got, want)
	}
}

func TestDecodeDashOnlyNestedBlock(t *testing.T) {
	src := "-\n  name: x\n- plain\n"
	got := decodeOK(t, src)
	want := []any{map[string]any{"name": "x"}, "plain"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %#v, want %#v", got, want)
	}
}

func TestDecodeLeadingDocumentMarker(t *testing.T) {
	got := decodeOK(t, "---\nkey: v\n")
	want := map[string]any{"key": "v"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %#v, want %#v", got, want)
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"only comments", "# nothing\n\n"},
		{"tab indent", "key:\n\tbad: 1\n"},
		{"duplicate key", "a: 1\na: 2\n"},
		{"multi-doc", "a: 1\n---\nb: 2\n"},
		{"unterminated dquote", `k: "abc`},
		{"unterminated squote", "k: 'abc"},
		{"unterminated flow", "k: [1, 2"},
		{"bad flow map entry", "k: {nonsense}"},
		{"mapping then garbage", "a: 1\n  b: 2\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Decode([]byte(c.in)); err == nil {
				t.Fatalf("Decode(%q) succeeded, want error", c.in)
			}
		})
	}
}

func TestDecodeEmptyDocSentinel(t *testing.T) {
	_, err := Decode(nil)
	if !errors.Is(err, ErrEmptyDocument) {
		t.Fatalf("err = %v, want ErrEmptyDocument", err)
	}
}

func TestSyntaxErrorHasLine(t *testing.T) {
	_, err := Decode([]byte("ok: 1\nbroken line without colon\n"))
	var se *SyntaxError
	if !errors.As(err, &se) {
		t.Fatalf("err %v is not a SyntaxError", err)
	}
	if se.Line != 2 {
		t.Fatalf("error line = %d, want 2", se.Line)
	}
	if !strings.Contains(se.Error(), "line 2") {
		t.Fatalf("Error() = %q does not mention line", se.Error())
	}
}

func TestUnmarshalIntoStruct(t *testing.T) {
	type fn struct {
		Name  string `json:"name"`
		Image string `json:"image"`
	}
	type class struct {
		Name      string `json:"name"`
		Parent    string `json:"parent"`
		Functions []fn   `json:"functions"`
	}
	var out struct {
		Classes []class `json:"classes"`
	}
	src := `classes:
  - name: LabelledImage
    parent: Image
    functions:
      - name: detectObject
        image: img/detect-object
`
	if err := Unmarshal([]byte(src), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Classes) != 1 || out.Classes[0].Parent != "Image" {
		t.Fatalf("out = %+v", out)
	}
	if out.Classes[0].Functions[0].Image != "img/detect-object" {
		t.Fatalf("fn = %+v", out.Classes[0].Functions[0])
	}
}

func TestUnmarshalTypeMismatch(t *testing.T) {
	var out struct {
		N int `json:"n"`
	}
	if err := Unmarshal([]byte("n: notanumber\n"), &out); err == nil {
		t.Fatal("Unmarshal with type mismatch succeeded")
	}
}

func TestDecodeDeepNesting(t *testing.T) {
	src := `a:
  b:
    c:
      d:
        e: bottom
`
	got := decodeOK(t, src)
	cur := got
	for _, k := range []string{"a", "b", "c", "d"} {
		m, ok := cur.(map[string]any)
		if !ok {
			t.Fatalf("level %q is %T", k, cur)
		}
		cur = m[k]
	}
	if cur.(map[string]any)["e"] != "bottom" {
		t.Fatalf("deep value = %#v", cur)
	}
}

func TestDecodeWindowsLineEndings(t *testing.T) {
	got := decodeOK(t, "a: 1\r\nb: two\r\n")
	want := map[string]any{"a": int64(1), "b": "two"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %#v, want %#v", got, want)
	}
}

func TestDecodeQuotedKeys(t *testing.T) {
	got := decodeOK(t, "\"key with: colon\": 1\n'another key': 2\n")
	want := map[string]any{"key with: colon": int64(1), "another key": int64(2)}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %#v, want %#v", got, want)
	}
}

// Property: Decode never panics on arbitrary input.
func TestDecodeNoPanicProperty(t *testing.T) {
	prop := func(s string) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		_, _ = Decode([]byte(s))
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: for scalar integers, decode(itoa(n)) == n.
func TestDecodeIntRoundTripProperty(t *testing.T) {
	prop := func(n int64) bool {
		v, err := Decode([]byte("v: " + strconv.FormatInt(n, 10)))
		if err != nil {
			return false
		}
		m, ok := v.(map[string]any)
		return ok && m["v"] == n
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
