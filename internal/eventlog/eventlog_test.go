package eventlog

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/hpcclab/oparaca-go/internal/kvstore"
	"github.com/hpcclab/oparaca-go/internal/vclock"
)

func testStore(t *testing.T) *kvstore.Store {
	t.Helper()
	st := kvstore.Open(kvstore.Config{})
	t.Cleanup(func() { st.Close() })
	return st
}

func testLog(t *testing.T, cfg Config) *Log {
	t.Helper()
	l, err := New(cfg)
	if err != nil {
		t.Fatalf("new log: %v", err)
	}
	t.Cleanup(l.Close)
	return l
}

func appendN(t *testing.T, l *Log, object string, n int) {
	t.Helper()
	ctx := context.Background()
	for i := 0; i < n; i++ {
		_, err := l.Append(ctx, object, func(off int64) (json.RawMessage, error) {
			return json.RawMessage(fmt.Sprintf(`{"offset":%d}`, off)), nil
		})
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
}

func TestAppendAssignsMonotoneOffsets(t *testing.T) {
	l := testLog(t, Config{})
	ctx := context.Background()
	for want := int64(1); want <= 5; want++ {
		var stamped int64
		got, err := l.Append(ctx, "obj", func(off int64) (json.RawMessage, error) {
			stamped = off
			return json.RawMessage(`{}`), nil
		})
		if err != nil {
			t.Fatalf("append: %v", err)
		}
		if got != want || stamped != want {
			t.Fatalf("offset = %d (stamped %d), want %d", got, stamped, want)
		}
	}
	entries, err := l.Read(ctx, "obj", 0, 0)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if len(entries) != 5 {
		t.Fatalf("read %d entries, want 5", len(entries))
	}
	for i, e := range entries {
		if e.Offset != int64(i+1) {
			t.Fatalf("entry %d offset = %d", i, e.Offset)
		}
	}
}

func TestReadFromOffsetAndBounds(t *testing.T) {
	l := testLog(t, Config{})
	ctx := context.Background()
	appendN(t, l, "obj", 10)
	entries, err := l.Read(ctx, "obj", 7, 2)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if len(entries) != 2 || entries[0].Offset != 7 || entries[1].Offset != 8 {
		t.Fatalf("read from 7 = %+v", entries)
	}
	if entries, err = l.Read(ctx, "obj", 11, 0); err != nil || len(entries) != 0 {
		t.Fatalf("read past end = %v, %v", entries, err)
	}
	first, next, err := l.Bounds(ctx, "obj")
	if err != nil || first != 1 || next != 11 {
		t.Fatalf("bounds = %d, %d, %v", first, next, err)
	}
}

func TestSizeCapEvictsOldestAndCompactsReads(t *testing.T) {
	st := testStore(t)
	l := testLog(t, Config{Backing: st, MaxPerObject: 4})
	ctx := context.Background()
	appendN(t, l, "obj", 10)
	first, next, err := l.Bounds(ctx, "obj")
	if err != nil || first != 7 || next != 11 {
		t.Fatalf("bounds = %d, %d, %v", first, next, err)
	}
	if _, err := l.Read(ctx, "obj", 3, 0); !errors.Is(err, ErrOffsetCompacted) {
		t.Fatalf("read below floor err = %v, want ErrOffsetCompacted", err)
	}
	entries, err := l.Read(ctx, "obj", 7, 0)
	if err != nil || len(entries) != 4 {
		t.Fatalf("read retained = %d entries, %v", len(entries), err)
	}
	// The sweep deletes the evicted backing keys.
	l.Compact(ctx)
	keys, err := st.List(ctx, "evlog/obj/")
	if err != nil {
		t.Fatalf("list: %v", err)
	}
	if len(keys) != 4 {
		t.Fatalf("backing holds %d entry keys after sweep, want 4", len(keys))
	}
}

func TestTTLSweepEvicts(t *testing.T) {
	clk := vclock.NewManual(time.Unix(1700000000, 0))
	st := testStore(t)
	l := testLog(t, Config{Backing: st, RetentionTTL: time.Minute, GCInterval: time.Hour, Clock: clk})
	appendN(t, l, "obj", 3)
	clk.Advance(2 * time.Minute)
	appendN(t, l, "obj", 2)
	l.Compact(context.Background())
	first, next, err := l.Bounds(context.Background(), "obj")
	if err != nil || first != 4 || next != 6 {
		t.Fatalf("bounds after sweep = %d, %d, %v", first, next, err)
	}
	if got := l.Stats().Compacted; got != 3 {
		t.Fatalf("compacted = %d, want 3", got)
	}
}

func TestAppendBatchIsOneBackingWrite(t *testing.T) {
	st := testStore(t)
	l := testLog(t, Config{Backing: st})
	ctx := context.Background()
	before := st.Stats().WriteOps
	first, err := l.AppendBatch(ctx, "obj", 16, func(i int, off int64) (json.RawMessage, error) {
		return json.RawMessage(fmt.Sprintf(`{"i":%d,"offset":%d}`, i, off)), nil
	})
	if err != nil || first != 1 {
		t.Fatalf("append batch = %d, %v", first, err)
	}
	if ops := st.Stats().WriteOps - before; ops != 1 {
		t.Fatalf("batch append cost %d write ops, want 1", ops)
	}
	entries, err := l.Read(ctx, "obj", 0, 0)
	if err != nil || len(entries) != 16 {
		t.Fatalf("read back %d entries, %v", len(entries), err)
	}
}

func TestLogSurvivesRestart(t *testing.T) {
	st := testStore(t)
	l1 := testLog(t, Config{Backing: st})
	ctx := context.Background()
	appendN(t, l1, "obj", 5)
	if err := l1.SetCursor(ctx, "named/hook", "obj", 3); err != nil {
		t.Fatalf("set cursor: %v", err)
	}
	l1.Close()

	l2 := testLog(t, Config{Backing: st})
	if err := l2.LoadCursors(ctx); err != nil {
		t.Fatalf("load cursors: %v", err)
	}
	entries, err := l2.Read(ctx, "obj", 1, 0)
	if err != nil || len(entries) != 5 {
		t.Fatalf("read after restart = %d entries, %v", len(entries), err)
	}
	for i, e := range entries {
		if e.Offset != int64(i+1) {
			t.Fatalf("entry %d offset = %d after restart", i, e.Offset)
		}
	}
	if next, ok := l2.Cursor("named/hook", "obj"); !ok || next != 3 {
		t.Fatalf("cursor after restart = %d, %v", next, ok)
	}
	// New appends continue the sequence, no offset reuse.
	off, err := l2.Append(ctx, "obj", func(off int64) (json.RawMessage, error) {
		return json.RawMessage(`{}`), nil
	})
	if err != nil || off != 6 {
		t.Fatalf("append after restart = %d, %v", off, err)
	}
}

func TestKillLosesOnlyWriteBehindCursorAdvances(t *testing.T) {
	st := testStore(t)
	l1 := testLog(t, Config{Backing: st, CursorFlushInterval: time.Hour})
	ctx := context.Background()
	appendN(t, l1, "obj", 5)
	// First write per cursor is write-through, later advances are not.
	if err := l1.SetCursor(ctx, "named/hook", "obj", 1); err != nil {
		t.Fatalf("set cursor: %v", err)
	}
	if err := l1.SetCursor(ctx, "named/hook", "obj", 5); err != nil {
		t.Fatalf("advance cursor: %v", err)
	}
	l1.Kill()

	l2 := testLog(t, Config{Backing: st})
	if err := l2.LoadCursors(ctx); err != nil {
		t.Fatalf("load cursors: %v", err)
	}
	next, ok := l2.Cursor("named/hook", "obj")
	if !ok {
		t.Fatal("cursor registration lost by kill; first write must be durable")
	}
	if next != 1 {
		t.Fatalf("cursor after kill = %d, want the write-through value 1", next)
	}
}

func TestCursorLag(t *testing.T) {
	l := testLog(t, Config{})
	ctx := context.Background()
	appendN(t, l, "a", 6)
	appendN(t, l, "b", 3)
	if err := l.SetCursor(ctx, "s", "a", 4); err != nil {
		t.Fatalf("set cursor: %v", err)
	}
	if err := l.SetCursor(ctx, "s", "b", 4); err != nil {
		t.Fatalf("set cursor: %v", err)
	}
	// a: next=7, cursor=4 -> 3 behind. b: next=4, cursor=4 -> caught up.
	if lag := l.CursorLag("s"); lag != 3 {
		t.Fatalf("lag = %d, want 3", lag)
	}
}

func TestNoteCreatedSkipsRecoveryProbe(t *testing.T) {
	st := testStore(t)
	ctx := context.Background()
	// Plant stale bounds from a dead prior incarnation: a probe-free
	// first append must ignore them and start the log at offset 1.
	stale, _ := json.Marshal(objMeta{First: 3, Next: 7})
	if _, err := st.Put(ctx, metaKey("obj"), stale); err != nil {
		t.Fatal(err)
	}
	l := testLog(t, Config{Backing: st})
	l.NoteCreated("obj")
	off, err := l.Append(ctx, "obj", func(off int64) (json.RawMessage, error) {
		return json.RawMessage(`{}`), nil
	})
	if err != nil {
		t.Fatalf("append: %v", err)
	}
	if off != 1 {
		t.Fatalf("first append offset = %d, want 1 (stale meta consulted)", off)
	}
}

func TestDropRemovesLogFromBacking(t *testing.T) {
	st := testStore(t)
	ctx := context.Background()
	l := testLog(t, Config{Backing: st})
	appendN(t, l, "obj", 3)
	if err := l.Drop(ctx, "obj"); err != nil {
		t.Fatalf("drop: %v", err)
	}
	if keys, err := st.List(ctx, "evlog/obj/"); err != nil || len(keys) != 0 {
		t.Fatalf("entry keys after drop = %v (err %v), want none", keys, err)
	}
	if _, err := st.Get(ctx, metaKey("obj")); !errors.Is(err, kvstore.ErrNotFound) {
		t.Fatalf("meta after drop: err = %v, want ErrNotFound", err)
	}
	// A reopened log sees a pristine object: bounds [1,1) and a fresh
	// first offset, not the dead incarnation's.
	l2 := testLog(t, Config{Backing: st})
	first, next, err := l2.Bounds(ctx, "obj")
	if err != nil {
		t.Fatalf("bounds: %v", err)
	}
	if first != 1 || next != 1 {
		t.Fatalf("bounds after drop = [%d,%d), want [1,1)", first, next)
	}
	appendN(t, l2, "obj", 1)
	entries, err := l2.Read(ctx, "obj", 0, 0)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if len(entries) != 1 || entries[0].Offset != 1 {
		t.Fatalf("entries after drop+append = %+v, want one at offset 1", entries)
	}
}
