// Package eventlog implements the durable, replayable event log
// beneath the trigger subsystem: one append-only log per object with
// monotone 1-based offsets, written through to the backing document
// store before dispatch so every committed StateChanged and terminal
// invocation event survives process death.
//
// The log turns the event bus's sinks into cursor-based consumers:
// each (subscription, object) pair owns a durable cursor — the offset
// of the next undelivered entry — persisted write-behind through a
// memtable exactly like the async queue's invocation records. Losing a
// cursor write in a crash only widens redelivery (the consumer resumes
// from an older offset), never narrows it, so the delivery contract is
// at-least-once. The one synchronous exception is a cursor's first
// write: registration is flushed through immediately, so a consumer
// that ever activated cannot be orphaned by a crash.
//
// Retention is bounded two ways: MaxPerObject caps each object's
// retained entries (the oldest are evicted as new ones append) and
// RetentionTTL ages entries out on the background sweep, which rides
// the platform's async GC cadence. Reading below the retained floor
// fails with ErrOffsetCompacted (HTTP 410 at the gateway).
package eventlog

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/hpcclab/oparaca-go/internal/kvstore"
	"github.com/hpcclab/oparaca-go/internal/memtable"
	"github.com/hpcclab/oparaca-go/internal/vclock"
)

// Sentinel errors.
var (
	// ErrOffsetCompacted is returned by Read when the requested offset
	// lies below the object's retained floor: the entries existed but
	// retention (size cap or TTL) has evicted them.
	ErrOffsetCompacted = errors.New("eventlog: offset compacted")
)

// Entry is one appended event.
type Entry struct {
	// Offset is the entry's per-object position, 1-based and monotone.
	Offset int64 `json:"offset"`
	// Time is the append instant (retention ages against it).
	Time time.Time `json:"time"`
	// Payload is the event JSON exactly as appended.
	Payload json.RawMessage `json:"payload"`
}

// Config sizes a Log.
type Config struct {
	// Backing is the document store appends write through to. Nil
	// keeps the log in memory only: offsets and replay work within the
	// process, nothing survives a restart.
	Backing *kvstore.Store
	// RetentionTTL evicts entries this long after their append on the
	// background sweep. Zero keeps entries until the size cap evicts
	// them.
	RetentionTTL time.Duration
	// MaxPerObject caps each object's retained entries; the oldest are
	// evicted as new ones append. Defaults to 1024; negative disables
	// the cap.
	MaxPerObject int
	// GCInterval paces the background sweep (TTL eviction plus backing
	// cleanup of size-evicted entries). Defaults to RetentionTTL/4
	// when a TTL is set, else 30s. The platform passes its async GC
	// cadence so one interval paces every background reclaimer.
	GCInterval time.Duration
	// CursorFlushInterval is the cursor table's write-behind flush
	// period (see memtable.Config.FlushInterval).
	CursorFlushInterval time.Duration
	// Clock supplies time; defaults to the real clock.
	Clock vclock.Clock
}

func (c Config) withDefaults() Config {
	if c.MaxPerObject == 0 {
		c.MaxPerObject = 1024
	}
	if c.GCInterval <= 0 {
		if c.RetentionTTL > 0 {
			c.GCInterval = c.RetentionTTL / 4
		} else {
			c.GCInterval = 30 * time.Second
		}
	}
	if c.Clock == nil {
		c.Clock = vclock.NewReal()
	}
	return c
}

// objMeta is the persisted per-object bounds document: reloading it
// (rather than scanning entry keys alone) lets recovery distinguish an
// empty log from a fully compacted one.
type objMeta struct {
	// First is the oldest retained offset (== Next when empty).
	First int64 `json:"first"`
	// Next is the offset the next append receives.
	Next int64 `json:"next"`
}

// objectLog is one object's in-memory log state. Entries are
// contiguous by offset — retention only ever trims the prefix — so
// reads index directly instead of searching.
type objectLog struct {
	mu      sync.Mutex
	loaded  bool
	next    int64
	entries []Entry
	// garbage holds backing keys of evicted entries awaiting deletion
	// by the background sweep (eviction itself must not pay a
	// per-entry delete on the append path).
	garbage []string
}

// floor is the oldest retained offset (== next when empty). Callers
// hold ol.mu.
func (ol *objectLog) floor() int64 {
	if len(ol.entries) > 0 {
		return ol.entries[0].Offset
	}
	return ol.next
}

// Cursor names one durable consumer position.
type Cursor struct {
	// Subscription is the owning subscription's durable identity.
	Subscription string `json:"subscription"`
	// Object scopes the cursor to one object's log.
	Object string `json:"object"`
	// Next is the offset of the next undelivered entry.
	Next int64 `json:"next"`
}

// Log is the durable event log. It is safe for concurrent use.
type Log struct {
	cfg Config

	mu   sync.Mutex
	objs map[string]*objectLog

	// curs persists consumer cursors write-behind (memory-only when
	// the log has no backing); cursors mirrors it in plain maps so
	// reads, lag computation and recovery scans never pay table I/O.
	curs    *memtable.Table
	cursMu  sync.Mutex
	cursors map[string]map[string]int64 // subscription -> object -> next

	gcStop    chan struct{}
	gcDone    chan struct{}
	closeOnce sync.Once

	statsMu   sync.Mutex
	appended  int64
	replayed  int64
	compacted int64
}

// New builds a log and starts its background sweep.
func New(cfg Config) (*Log, error) {
	cfg = cfg.withDefaults()
	tblCfg := memtable.Config{
		Mode:          memtable.ModeWriteBehind,
		Backing:       cfg.Backing,
		FlushInterval: cfg.CursorFlushInterval,
		Clock:         cfg.Clock,
	}
	if cfg.Backing == nil {
		tblCfg.Mode = memtable.ModeMemoryOnly
	}
	curs, err := memtable.New(tblCfg)
	if err != nil {
		return nil, fmt.Errorf("eventlog: cursor table: %w", err)
	}
	l := &Log{
		cfg:     cfg,
		objs:    make(map[string]*objectLog),
		curs:    curs,
		cursors: make(map[string]map[string]int64),
		gcStop:  make(chan struct{}),
		gcDone:  make(chan struct{}),
	}
	go l.gcLoop()
	return l, nil
}

// Persistence keys. Offsets are fixed-width hex so List returns entry
// keys in offset order; object IDs cannot contain '/', so the last
// separator in a cursor key unambiguously splits subscription from
// object even though subscription identities may contain '/'.
func entryKey(object string, off int64) string {
	// Hand-rolled %016x: entryKey runs once per appended event on the
	// commit path, and fmt's reflection pass costs several allocations
	// where this costs exactly the result string.
	const hexDigits = "0123456789abcdef"
	var hex [16]byte
	u := uint64(off)
	for i := 15; i >= 0; i-- {
		hex[i] = hexDigits[u&0xf]
		u >>= 4
	}
	var b strings.Builder
	b.Grow(len("evlog/") + len(object) + 1 + len(hex))
	b.WriteString("evlog/")
	b.WriteString(object)
	b.WriteByte('/')
	b.Write(hex[:])
	return b.String()
}
func metaKey(object string) string        { return "evmeta/" + object }
func cursorKey(sub, object string) string { return "evcursor/" + sub + "/" + object }

// object returns (creating if needed) the in-memory log of one object.
func (l *Log) object(object string) *objectLog {
	l.mu.Lock()
	defer l.mu.Unlock()
	ol, ok := l.objs[object]
	if !ok {
		ol = &objectLog{next: 1}
		l.objs[object] = ol
	}
	return ol
}

// peek returns an object's log only if it is already in memory.
func (l *Log) peek(object string) *objectLog {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.objs[object]
}

// load lazily recovers an object's retained entries and bounds from
// the backing store. Callers hold ol.mu.
func (l *Log) load(ctx context.Context, object string, ol *objectLog) error {
	if ol.loaded {
		return nil
	}
	if l.cfg.Backing == nil {
		ol.loaded = true
		return nil
	}
	doc, err := l.cfg.Backing.Get(ctx, metaKey(object))
	if errors.Is(err, kvstore.ErrNotFound) {
		ol.loaded = true
		return nil
	}
	if err != nil {
		return fmt.Errorf("eventlog: loading %s meta: %w", object, err)
	}
	var meta objMeta
	if err := json.Unmarshal(doc.Value, &meta); err != nil {
		return fmt.Errorf("eventlog: corrupt %s meta: %w", object, err)
	}
	prefix := "evlog/" + object + "/"
	keys, err := l.cfg.Backing.List(ctx, prefix)
	if err != nil {
		return fmt.Errorf("eventlog: listing %s entries: %w", object, err)
	}
	var live []string
	offsets := make([]int64, 0, len(keys))
	for _, k := range keys {
		off, perr := strconv.ParseInt(k[len(prefix):], 16, 64)
		if perr != nil || off < meta.First || off >= meta.Next {
			// Below the persisted floor: evicted but not yet deleted
			// when the process died. Re-queue for the sweep.
			ol.garbage = append(ol.garbage, k)
			continue
		}
		live = append(live, k)
		offsets = append(offsets, off)
	}
	docs, err := l.cfg.Backing.BatchGet(ctx, live)
	if err != nil {
		return fmt.Errorf("eventlog: loading %s entries: %w", object, err)
	}
	entries := make([]Entry, 0, len(live))
	for i, k := range live {
		d, ok := docs[k]
		if !ok {
			continue
		}
		entries = append(entries, Entry{Offset: offsets[i], Time: d.Updated, Payload: d.Value})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Offset < entries[j].Offset })
	// Keep the longest contiguous suffix: a hole (an entry write lost
	// to a backing fault) must not break the direct-index invariant,
	// so everything below the hole is treated as compacted.
	lo := len(entries) - 1
	for lo > 0 && entries[lo-1].Offset == entries[lo].Offset-1 {
		lo--
	}
	for _, e := range entries[:lo] {
		ol.garbage = append(ol.garbage, entryKey(object, e.Offset))
	}
	ol.entries = entries[lo:]
	ol.next = meta.Next
	ol.loaded = true
	return nil
}

// NoteCreated marks a just-created object's log as loaded and empty.
// The creator has verified no prior incarnation of the object exists,
// so the first append can skip the backing-store recovery probe (a
// meta read plus a key listing) that lazy loading would otherwise pay
// — a measurable cost when many fresh objects publish their first
// event under simulated DB read latency. Must not be called for
// recovered objects: their logs have to load from backing.
func (l *Log) NoteCreated(object string) {
	ol := l.object(object)
	ol.mu.Lock()
	ol.loaded = true
	ol.mu.Unlock()
}

// Drop discards an object's log when the object itself is deleted:
// in-memory state is removed and persisted entries and bounds are
// deleted from the backing store, so a later object reusing the ID
// starts a fresh log at offset 1 instead of resurrecting the old one.
// Stored cursors pointing at the dropped log are left in place — they
// read as zero lag against an empty log and are rewritten on the
// consumer's next delivery.
func (l *Log) Drop(ctx context.Context, object string) error {
	l.mu.Lock()
	delete(l.objs, object)
	l.mu.Unlock()
	if l.cfg.Backing == nil {
		return nil
	}
	keys, err := l.cfg.Backing.List(ctx, "evlog/"+object+"/")
	if err != nil {
		return fmt.Errorf("eventlog: listing %s entries: %w", object, err)
	}
	keys = append(keys, metaKey(object))
	for _, k := range keys {
		if err := l.cfg.Backing.Delete(ctx, k); err != nil && !errors.Is(err, kvstore.ErrNotFound) {
			return fmt.Errorf("eventlog: dropping %s: %w", object, err)
		}
	}
	return nil
}

// Append appends one entry to an object's log. build receives the
// assigned offset and returns the payload to store — the caller stamps
// the offset into the event before marshaling, so the persisted JSON
// carries its own log position. The entry is durable in the backing
// store before Append returns.
func (l *Log) Append(ctx context.Context, object string, build func(offset int64) (json.RawMessage, error)) (int64, error) {
	return l.AppendBatch(ctx, object, 1, func(_ int, off int64) (json.RawMessage, error) {
		return build(off)
	})
}

// AppendBatch appends n entries to one object's log in a single
// backing write: the group-commit path publishes every event of a
// coalesced invocation batch at the cost of roughly one write
// operation instead of n. It returns the first assigned offset; the
// i-th entry holds offset first+i. Nothing is appended on error.
func (l *Log) AppendBatch(ctx context.Context, object string, n int, build func(i int, offset int64) (json.RawMessage, error)) (int64, error) {
	if n <= 0 {
		return 0, nil
	}
	ol := l.object(object)
	ol.mu.Lock()
	defer ol.mu.Unlock()
	if err := l.load(ctx, object, ol); err != nil {
		return 0, err
	}
	first := ol.next
	now := l.cfg.Clock.Now()
	fresh := make([]Entry, n)
	var batch map[string]json.RawMessage
	if l.cfg.Backing != nil {
		batch = make(map[string]json.RawMessage, n+1)
	}
	for i := 0; i < n; i++ {
		off := first + int64(i)
		payload, err := build(i, off)
		if err != nil {
			return 0, err
		}
		fresh[i] = Entry{Offset: off, Time: now, Payload: payload}
		if batch != nil {
			batch[entryKey(object, off)] = payload
		}
	}
	entries := append(ol.entries, fresh...)
	var evicted []Entry
	if max := l.cfg.MaxPerObject; max > 0 && len(entries) > max {
		evicted = entries[:len(entries)-max]
		entries = entries[len(entries)-max:]
	}
	if batch != nil {
		floor := ol.next + int64(n)
		if len(entries) > 0 {
			floor = entries[0].Offset
		}
		meta, err := json.Marshal(objMeta{First: floor, Next: first + int64(n)})
		if err != nil {
			return 0, err
		}
		batch[metaKey(object)] = meta
		// Durability before dispatch: the batch (entries plus bounds)
		// lands before the in-memory log advances, so a failed write
		// leaves no hole and an appended event can never be lost to a
		// crash.
		if err := l.cfg.Backing.BatchPut(ctx, batch); err != nil {
			return 0, fmt.Errorf("eventlog: appending to %s: %w", object, err)
		}
		for _, e := range evicted {
			ol.garbage = append(ol.garbage, entryKey(object, e.Offset))
		}
	}
	ol.entries = entries
	ol.next = first + int64(n)
	l.statsMu.Lock()
	l.appended += int64(n)
	l.statsMu.Unlock()
	return first, nil
}

// Read returns up to max retained entries of one object starting at
// offset from (1-based; <=0 reads from the start, max<=0 is
// unlimited). Reading below the retained floor fails with
// ErrOffsetCompacted; reading at or past the end returns an empty
// slice.
func (l *Log) Read(ctx context.Context, object string, from int64, max int) ([]Entry, error) {
	if from <= 0 {
		from = 1
	}
	ol := l.object(object)
	ol.mu.Lock()
	defer ol.mu.Unlock()
	if err := l.load(ctx, object, ol); err != nil {
		return nil, err
	}
	floor := ol.floor()
	if from < floor {
		return nil, fmt.Errorf("%w: %s offset %d is below the retained floor %d", ErrOffsetCompacted, object, from, floor)
	}
	if from >= ol.next {
		return nil, nil
	}
	idx := int(from - floor)
	out := ol.entries[idx:]
	if max > 0 && len(out) > max {
		out = out[:max]
	}
	res := make([]Entry, len(out))
	copy(res, out)
	l.statsMu.Lock()
	l.replayed += int64(len(res))
	l.statsMu.Unlock()
	return res, nil
}

// Bounds returns an object's retained floor and next-append offset
// (replayable entries are [first, next)).
func (l *Log) Bounds(ctx context.Context, object string) (first, next int64, err error) {
	ol := l.object(object)
	ol.mu.Lock()
	defer ol.mu.Unlock()
	if err := l.load(ctx, object, ol); err != nil {
		return 0, 0, err
	}
	return ol.floor(), ol.next, nil
}

// Cursor returns a consumer's stored position (ok=false when the
// consumer has never registered).
func (l *Log) Cursor(sub, object string) (int64, bool) {
	l.cursMu.Lock()
	defer l.cursMu.Unlock()
	next, ok := l.cursors[sub][object]
	return next, ok
}

// SetCursor stores a consumer's next undelivered offset. Advances are
// write-behind (a crash loses at most a flush interval of progress and
// only widens redelivery), but a cursor's FIRST write is flushed
// through synchronously: registration must be durable immediately so a
// consumer that activated before a crash is found by recovery.
func (l *Log) SetCursor(ctx context.Context, sub, object string, next int64) error {
	l.cursMu.Lock()
	m, ok := l.cursors[sub]
	if !ok {
		m = make(map[string]int64)
		l.cursors[sub] = m
	}
	_, existed := m[object]
	m[object] = next
	l.cursMu.Unlock()
	if err := l.curs.Put(ctx, cursorKey(sub, object), json.RawMessage(strconv.FormatInt(next, 10))); err != nil {
		return err
	}
	if !existed {
		l.curs.Flush(ctx)
	}
	return nil
}

// LoadCursors recovers every persisted cursor from the backing store
// into the in-memory mirror. The platform calls it once at startup,
// before any subscription registers.
func (l *Log) LoadCursors(ctx context.Context) error {
	if l.cfg.Backing == nil {
		return nil
	}
	keys, err := l.cfg.Backing.List(ctx, "evcursor/")
	if err != nil {
		return fmt.Errorf("eventlog: listing cursors: %w", err)
	}
	if len(keys) == 0 {
		return nil
	}
	docs, err := l.cfg.Backing.BatchGet(ctx, keys)
	if err != nil {
		return fmt.Errorf("eventlog: loading cursors: %w", err)
	}
	l.cursMu.Lock()
	defer l.cursMu.Unlock()
	for _, k := range keys {
		rest := strings.TrimPrefix(k, "evcursor/")
		i := strings.LastIndex(rest, "/")
		if i <= 0 {
			continue
		}
		doc, ok := docs[k]
		if !ok {
			continue
		}
		next, perr := strconv.ParseInt(strings.TrimSpace(string(doc.Value)), 10, 64)
		if perr != nil || next <= 0 {
			continue
		}
		sub, object := rest[:i], rest[i+1:]
		m, ok := l.cursors[sub]
		if !ok {
			m = make(map[string]int64)
			l.cursors[sub] = m
		}
		m[object] = next
	}
	return nil
}

// CursorsFor returns a copy of one subscription's cursors
// (object -> next undelivered offset).
func (l *Log) CursorsFor(sub string) map[string]int64 {
	l.cursMu.Lock()
	defer l.cursMu.Unlock()
	m := l.cursors[sub]
	if len(m) == 0 {
		return nil
	}
	out := make(map[string]int64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// CursorLag sums a subscription's undelivered backlog (log end minus
// cursor) across objects whose logs are in memory. Objects not yet
// touched since startup report zero; the recovery scan loads every
// object a cursor points at, so post-recovery lag is complete.
func (l *Log) CursorLag(sub string) int64 {
	var lag int64
	for object, next := range l.CursorsFor(sub) {
		ol := l.peek(object)
		if ol == nil {
			continue
		}
		ol.mu.Lock()
		if ol.loaded && ol.next > next {
			lag += ol.next - next
		}
		ol.mu.Unlock()
	}
	return lag
}

// gcLoop runs the retention sweep until Close.
func (l *Log) gcLoop() {
	defer close(l.gcDone)
	for {
		select {
		case <-l.gcStop:
			return
		case <-l.cfg.Clock.After(l.cfg.GCInterval):
		}
		l.Compact(context.Background())
	}
}

// Compact runs one retention sweep: entries older than RetentionTTL
// are evicted from every in-memory log, per-object bounds are
// re-persisted, and the backing keys of evicted entries (including
// size-cap evictions queued by Append) are deleted.
func (l *Log) Compact(ctx context.Context) {
	l.mu.Lock()
	objects := make([]string, 0, len(l.objs))
	for object := range l.objs {
		objects = append(objects, object)
	}
	l.mu.Unlock()
	now := l.cfg.Clock.Now()
	for _, object := range objects {
		ol := l.peek(object)
		if ol == nil {
			continue
		}
		ol.mu.Lock()
		if !ol.loaded {
			ol.mu.Unlock()
			continue
		}
		var evicted int
		if ttl := l.cfg.RetentionTTL; ttl > 0 {
			cutoff := now.Add(-ttl)
			for evicted < len(ol.entries) && ol.entries[evicted].Time.Before(cutoff) {
				evicted++
			}
		}
		if evicted > 0 {
			if l.cfg.Backing != nil {
				for _, e := range ol.entries[:evicted] {
					ol.garbage = append(ol.garbage, entryKey(object, e.Offset))
				}
			}
			ol.entries = ol.entries[evicted:]
		}
		garbage := ol.garbage
		ol.garbage = nil
		var meta json.RawMessage
		if evicted > 0 && l.cfg.Backing != nil {
			meta, _ = json.Marshal(objMeta{First: ol.floor(), Next: ol.next})
		}
		ol.mu.Unlock()
		if meta != nil {
			if _, err := l.cfg.Backing.Put(ctx, metaKey(object), meta); err != nil {
				// The floor advanced in memory only; the next sweep or
				// append re-persists it. Evicted keys still get deleted.
				_ = err
			}
		}
		for _, k := range garbage {
			if err := l.cfg.Backing.Delete(ctx, k); err != nil && !errors.Is(err, kvstore.ErrNotFound) {
				// Put the key back so the next sweep retries.
				ol.mu.Lock()
				ol.garbage = append(ol.garbage, k)
				ol.mu.Unlock()
			}
		}
		if evicted > 0 {
			l.statsMu.Lock()
			l.compacted += int64(evicted)
			l.statsMu.Unlock()
		}
	}
}

// Stats is a point-in-time log snapshot.
type Stats struct {
	// Appended counts entries appended since New.
	Appended int64 `json:"appended"`
	// Replayed counts entries returned by Read.
	Replayed int64 `json:"replayed"`
	// Compacted counts entries evicted by the TTL sweep.
	Compacted int64 `json:"compacted"`
	// Objects counts per-object logs held in memory.
	Objects int `json:"objects"`
}

// Stats snapshots the log counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	objects := len(l.objs)
	l.mu.Unlock()
	l.statsMu.Lock()
	defer l.statsMu.Unlock()
	return Stats{Appended: l.appended, Replayed: l.replayed, Compacted: l.compacted, Objects: objects}
}

// Close stops the sweep and flushes pending cursor writes through to
// the backing store. Idempotent.
func (l *Log) Close() {
	l.shutdown(false)
}

// Kill stops the sweep and abandons the cursor table WITHOUT its final
// flush, modeling process death: write-behind cursor advances that
// have not flushed yet are lost, exactly what a crash loses (and what
// redelivery then covers). Entry appends need no kill path — they are
// write-through and already durable.
func (l *Log) Kill() {
	l.shutdown(true)
}

func (l *Log) shutdown(kill bool) {
	l.closeOnce.Do(func() {
		close(l.gcStop)
		<-l.gcDone
		if kill {
			l.curs.Kill()
			return
		}
		l.curs.Close()
	})
}
