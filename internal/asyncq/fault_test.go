package asyncq

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestHandlerPanicMarksFailedAndPoolSurvives submits a panicking
// invocation and verifies the record turns failed while the worker
// keeps draining later submissions.
func TestHandlerPanicMarksFailedAndPoolSurvives(t *testing.T) {
	q := newQueue(t, Config{Workers: 1, Invoke: func(_ context.Context, objectID, _ string, _ json.RawMessage, _ map[string]string) (json.RawMessage, error) {
		if objectID == "bomb" {
			panic("kaboom")
		}
		return json.RawMessage(`"ok"`), nil
	}})
	ctx := context.Background()
	bombID, err := q.Submit(ctx, "bomb", "m", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := q.Wait(ctx, bombID)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Status != StatusFailed || !strings.Contains(rec.Error, "kaboom") {
		t.Fatalf("panic record = %+v", rec)
	}
	// The single worker must still be alive to run this one.
	okID, err := q.Submit(ctx, "fine", "m", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	rec, err = q.Wait(ctx, okID)
	if err != nil || rec.Status != StatusCompleted {
		t.Fatalf("post-panic record = %v %+v", err, rec)
	}
	if s := q.Stats(); s.Failed != 1 || s.Completed != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestQueueOverflowReturnsBackpressure fills the queue past capacity
// while the single worker is blocked and expects ErrQueueFull.
func TestQueueOverflowReturnsBackpressure(t *testing.T) {
	release := make(chan struct{})
	q := newQueue(t, Config{Workers: 1, Shards: 1, Capacity: 4, Invoke: func(context.Context, string, string, json.RawMessage, map[string]string) (json.RawMessage, error) {
		<-release
		return nil, nil
	}})
	defer close(release)
	ctx := context.Background()
	// One task occupies the worker; Capacity more fill the shard. The
	// first submissions may race the dequeue, so keep submitting until
	// the queue pushes back.
	var sawFull bool
	for i := 0; i < 16 && !sawFull; i++ {
		_, err := q.Submit(ctx, "obj", "m", nil, nil)
		switch {
		case err == nil:
		case errors.Is(err, ErrQueueFull):
			sawFull = true
		default:
			t.Fatal(err)
		}
	}
	if !sawFull {
		t.Fatal("queue never returned ErrQueueFull")
	}
	if s := q.Stats(); s.Rejected == 0 {
		t.Fatalf("rejected counter = %+v", s)
	}
}

// TestQueuedInvocationObservesCancellation cancels a submission while
// it is still queued behind a blocked worker: it must fail with the
// context error without the handler ever running.
func TestQueuedInvocationObservesCancellation(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	var ranMu sync.Mutex
	ran := make(map[string]bool)
	// The batched drain publishes a cancelled-while-queued failure as
	// soon as the pull is recorded — possibly while an earlier task of
	// the same pull is still executing — so the map needs a lock even
	// with a single worker.
	q := newQueue(t, Config{Workers: 1, Shards: 1, Capacity: 8, Invoke: func(_ context.Context, objectID, _ string, _ json.RawMessage, _ map[string]string) (json.RawMessage, error) {
		ranMu.Lock()
		ran[objectID] = true
		ranMu.Unlock()
		if objectID == "blocker" {
			close(started)
		}
		<-release
		return nil, nil
	}})
	ctx := context.Background()
	if _, err := q.Submit(ctx, "blocker", "m", nil, nil); err != nil {
		t.Fatal(err)
	}
	// Submit the victim only once the blocker is executing, so it can
	// never ride the blocker's drain pull (a pull snapshots each task's
	// cancellation state at dequeue, before this cancel lands).
	<-started
	cctx, cancel := context.WithCancel(ctx)
	victimID, err := q.Submit(cctx, "victim", "m", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	close(release)
	rec, err := q.Wait(ctx, victimID)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Status != StatusFailed || !strings.Contains(rec.Error, context.Canceled.Error()) {
		t.Fatalf("cancelled record = %+v", rec)
	}
	if ran["victim"] {
		t.Fatal("cancelled invocation still executed")
	}
}

// TestInFlightInvocationObservesCancellation verifies a running
// handler sees its submitter's cancellation through the task context.
func TestInFlightInvocationObservesCancellation(t *testing.T) {
	started := make(chan struct{})
	q := newQueue(t, Config{Workers: 1, Invoke: func(ctx context.Context, _, _ string, _ json.RawMessage, _ map[string]string) (json.RawMessage, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	}})
	cctx, cancel := context.WithCancel(context.Background())
	id, err := q.Submit(cctx, "o", "m", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	<-started
	cancel()
	rec, err := q.Wait(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Status != StatusFailed || !strings.Contains(rec.Error, context.Canceled.Error()) {
		t.Fatalf("in-flight cancel record = %+v", rec)
	}
}

// TestCloseDrainsAcceptedRecords accepts a burst of slow tasks, closes
// the queue, and verifies every accepted invocation reached a terminal
// record — none lost.
func TestCloseDrainsAcceptedRecords(t *testing.T) {
	q, err := New(Config{Workers: 2, Capacity: 64, Invoke: func(context.Context, string, string, json.RawMessage, map[string]string) (json.RawMessage, error) {
		time.Sleep(2 * time.Millisecond)
		return json.RawMessage(`"done"`), nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	ids := make([]string, 0, 32)
	for i := 0; i < 32; i++ {
		id, err := q.Submit(ctx, fmt.Sprintf("o%d", i), "m", nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	q.Close() // blocks until drained
	if s := q.Stats(); s.Completed != int64(len(ids)) || s.Depth != 0 {
		t.Fatalf("post-close stats = %+v", s)
	}
	// Records stay readable after Close for late pollers? The table is
	// closed with the queue; the contract is that all records reached
	// terminal state before shutdown, which the counters above prove.
}

// TestWaitHonorsContextDeadline ensures Wait unblocks on a context
// timeout while the invocation is still parked.
func TestWaitHonorsContextDeadline(t *testing.T) {
	release := make(chan struct{})
	q := newQueue(t, Config{Workers: 1, Invoke: func(context.Context, string, string, json.RawMessage, map[string]string) (json.RawMessage, error) {
		<-release
		return nil, nil
	}})
	defer close(release)
	id, err := q.Submit(context.Background(), "o", "m", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := q.Wait(ctx, id); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}
