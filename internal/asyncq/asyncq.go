// Package asyncq implements the platform's asynchronous invocation
// subsystem: a bounded, sharded queue drained by a configurable worker
// pool, with per-invocation records persisted in a memtable so results
// survive flush cycles and stay poll-able after completion.
//
// Synchronous invocation forces the client to hold a connection for the
// full method latency; the queue decouples submission from execution
// the same way Knative's activator/queue decouples request arrival from
// pod readiness on the serving side (which internal/faas models). A
// client submits a task, receives an invocation ID immediately, and
// later polls or waits for the terminal record.
//
// Lifecycle of one invocation:
//
//	Submit -> record {status: pending}   (persisted, queued)
//	worker -> record {status: running}   (dequeued)
//	handler ok  -> {status: completed, result}
//	handler err -> {status: failed, error}
//
// Backpressure is explicit: Submit returns ErrQueueFull once the
// target shard is at capacity. A panicking handler marks its record
// failed without killing the worker. Close stops intake, drains every
// accepted task, then flushes the record table.
//
// Terminal records do not accumulate forever: when Config.RecordTTL is
// set, a background sweeper evicts completed/failed records once they
// have been terminal for the TTL, so long-running platforms keep a
// bounded record table. Evictions are counted in Stats().Evicted.
package asyncq

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"maps"
	"sync"
	"time"

	"github.com/hpcclab/oparaca-go/internal/kvstore"
	"github.com/hpcclab/oparaca-go/internal/memtable"
	"github.com/hpcclab/oparaca-go/internal/metrics"
	"github.com/hpcclab/oparaca-go/internal/vclock"
)

// Sentinel errors.
var (
	// ErrQueueFull is the backpressure signal: the invocation was not
	// accepted because the target shard is at capacity.
	ErrQueueFull = errors.New("asyncq: queue full")
	// ErrNotFound is returned when no record exists for an invocation ID.
	ErrNotFound = errors.New("asyncq: invocation not found")
	// ErrClosed is returned for submissions after Close.
	ErrClosed = errors.New("asyncq: queue closed")
)

// Status is an invocation's lifecycle phase.
type Status string

// Invocation statuses.
const (
	StatusPending   Status = "pending"
	StatusRunning   Status = "running"
	StatusCompleted Status = "completed"
	StatusFailed    Status = "failed"
)

// Terminal reports whether s is a final status.
func (s Status) Terminal() bool { return s == StatusCompleted || s == StatusFailed }

// Record is the durable state of one asynchronous invocation.
type Record struct {
	// ID identifies the invocation (returned by Submit).
	ID string `json:"id"`
	// Object and Member name the target method.
	Object string `json:"object"`
	Member string `json:"member"`
	// Status is the lifecycle phase.
	Status Status `json:"status"`
	// Result holds the method output once Status is completed.
	Result json.RawMessage `json:"result,omitempty"`
	// Error holds the failure message once Status is failed.
	Error string `json:"error,omitempty"`
	// Enqueued / Started / Finished are the transition timestamps.
	Enqueued time.Time `json:"enqueued"`
	Started  time.Time `json:"started,omitzero"`
	Finished time.Time `json:"finished,omitzero"`
}

// Invoker executes one dequeued invocation. The platform passes its
// synchronous Invoke path here; the indirection keeps this package free
// of a dependency on core.
type Invoker func(ctx context.Context, objectID, member string, payload json.RawMessage, args map[string]string) (json.RawMessage, error)

// Request is one batch-submission entry.
type Request struct {
	Object  string            `json:"object"`
	Member  string            `json:"member"`
	Payload json.RawMessage   `json:"payload,omitempty"`
	Args    map[string]string `json:"args,omitempty"`
}

// Config sizes a Queue.
type Config struct {
	// Invoke drains dequeued tasks; required.
	Invoke Invoker
	// Workers is the pool size. Defaults to 4.
	Workers int
	// Capacity bounds the number of queued (accepted but not yet
	// dequeued) invocations across all shards. Defaults to 1024.
	Capacity int
	// Shards partitions the queue; tasks are spread across shards by
	// invocation ID so a burst against one hot object uses the whole
	// queue. Defaults to min(Workers, 4) and is clamped to Workers so
	// every shard has a dedicated drainer.
	Shards int
	// Backing persists invocation records through a write-behind
	// memtable. nil keeps records in memory only.
	Backing *kvstore.Store
	// FlushInterval overrides the record table's flush period.
	FlushInterval time.Duration
	// RecordTTL evicts completed/failed records this long after they
	// reach their terminal status. Zero keeps records forever (the
	// pre-GC behaviour).
	RecordTTL time.Duration
	// GCInterval is the eviction sweep period. Defaults to RecordTTL/4
	// (clamped to at least 1ms) and is ignored when RecordTTL is zero.
	GCInterval time.Duration
	// MaxRetries re-runs a failed invocation up to this many
	// additional times before the record goes terminal-failed. A
	// cancelled submission context is never retried. Zero disables
	// retries.
	MaxRetries int
	// RetryBackoff is the delay before the first retry, doubled per
	// attempt. Defaults to 10ms when MaxRetries is set.
	RetryBackoff time.Duration
	// Metrics receives queue gauges/counters/histograms. A private
	// registry is created when nil.
	Metrics *metrics.Registry
	// Clock supplies time; defaults to the real clock.
	Clock vclock.Clock
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Capacity <= 0 {
		c.Capacity = 1024
	}
	if c.Shards <= 0 {
		c.Shards = min(c.Workers, 4)
	}
	if c.Shards > c.Workers {
		c.Shards = c.Workers
	}
	if c.Metrics == nil {
		c.Metrics = metrics.NewRegistry()
	}
	if c.RecordTTL > 0 && c.GCInterval <= 0 {
		c.GCInterval = c.RecordTTL / 4
		if c.GCInterval < time.Millisecond {
			c.GCInterval = time.Millisecond
		}
	}
	if c.MaxRetries > 0 && c.RetryBackoff <= 0 {
		c.RetryBackoff = 10 * time.Millisecond
	}
	if c.Clock == nil {
		c.Clock = vclock.NewReal()
	}
	return c
}

// task is one queued invocation.
type task struct {
	id      string
	object  string
	member  string
	payload json.RawMessage
	args    map[string]string
	ctx     context.Context // submitter's context; cancellation is observed
	queued  time.Time
}

// Queue is the asynchronous invocation engine. It is safe for
// concurrent use.
type Queue struct {
	cfg     Config
	records *memtable.Table
	shards  []chan task

	mu      sync.Mutex
	waiters map[string]chan struct{}
	closed  bool

	// terminal is the GC's eviction index: records that reached a
	// terminal status, in roughly finish order, with the instant each
	// becomes evictable. Only populated when RecordTTL > 0.
	terminalMu sync.Mutex
	terminal   []expiringRecord

	gcStop chan struct{}
	gcDone chan struct{}

	wg        sync.WaitGroup
	closeOnce sync.Once
}

// expiringRecord is one entry of the GC's eviction index.
type expiringRecord struct {
	id      string
	expires time.Time
}

// recordKey is the memtable key for one invocation ID.
func recordKey(id string) string { return "invocations/" + id }

// New builds a queue and starts its worker pool.
func New(cfg Config) (*Queue, error) {
	cfg = cfg.withDefaults()
	if cfg.Invoke == nil {
		return nil, errors.New("asyncq: Config.Invoke is required")
	}
	tblCfg := memtable.Config{
		Mode:          memtable.ModeWriteBehind,
		Backing:       cfg.Backing,
		FlushInterval: cfg.FlushInterval,
		Clock:         cfg.Clock,
	}
	if cfg.Backing == nil {
		tblCfg.Mode = memtable.ModeMemoryOnly
	}
	records, err := memtable.New(tblCfg)
	if err != nil {
		return nil, fmt.Errorf("asyncq: record table: %w", err)
	}
	q := &Queue{
		cfg:     cfg,
		records: records,
		shards:  make([]chan task, cfg.Shards),
		waiters: make(map[string]chan struct{}),
	}
	perShard := (cfg.Capacity + cfg.Shards - 1) / cfg.Shards
	for i := range q.shards {
		q.shards[i] = make(chan task, perShard)
	}
	for i := 0; i < cfg.Workers; i++ {
		q.wg.Add(1)
		go q.worker(q.shards[i%cfg.Shards])
	}
	if cfg.RecordTTL > 0 {
		q.gcStop = make(chan struct{})
		q.gcDone = make(chan struct{})
		go q.gcLoop()
	}
	return q, nil
}

// Metrics exposes the queue's registry (depth/in-flight gauges, wait
// and exec histograms, enqueued/rejected/completed/failed counters).
func (q *Queue) Metrics() *metrics.Registry { return q.cfg.Metrics }

// shardFor picks the shard channel for one invocation. Sharding by
// invocation ID (not object) keeps hot-object bursts from saturating a
// single shard's capacity.
func (q *Queue) shardFor(invocationID string) chan task {
	h := fnv.New32a()
	_, _ = h.Write([]byte(invocationID))
	return q.shards[h.Sum32()%uint32(len(q.shards))]
}

// newInvocationID returns a 12-byte hex identifier.
func newInvocationID() string {
	var b [12]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("asyncq: crypto/rand unavailable: " + err.Error())
	}
	return "inv-" + hex.EncodeToString(b[:])
}

// Submit enqueues one invocation and returns its ID. The context is
// retained: cancelling it fails the invocation if it is still queued
// and propagates into the handler once running. Submit returns
// ErrQueueFull when the queue is at capacity and ErrClosed after
// Close.
func (q *Queue) Submit(ctx context.Context, objectID, member string, payload json.RawMessage, args map[string]string) (string, error) {
	if err := ctx.Err(); err != nil {
		return "", err
	}
	t := task{
		id:      newInvocationID(),
		object:  objectID,
		member:  member,
		payload: append(json.RawMessage(nil), payload...),
		args:    maps.Clone(args),
		ctx:     ctx,
		queued:  q.cfg.Clock.Now(),
	}
	// The pending record and depth gauge must exist before the task is
	// visible to a worker: a fast worker would otherwise write the
	// terminal record first and have it clobbered by a late pending
	// write (leaving pollers stuck at "pending" forever).
	q.putRecord(Record{
		ID: t.id, Object: objectID, Member: member,
		Status: StatusPending, Enqueued: t.queued,
	})
	m := q.cfg.Metrics
	m.Gauge("queue.depth").Add(1)
	// The closed check and the shard send share the lock so Close
	// cannot observe an accepted task it will not drain.
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		m.Gauge("queue.depth").Add(-1)
		_ = q.records.Delete(context.Background(), recordKey(t.id))
		return "", ErrClosed
	}
	select {
	case q.shardFor(t.id) <- t:
	default:
		q.mu.Unlock()
		m.Gauge("queue.depth").Add(-1)
		m.Counter("queue.rejected").Inc()
		_ = q.records.Delete(context.Background(), recordKey(t.id))
		return "", fmt.Errorf("%w: object %s", ErrQueueFull, objectID)
	}
	m.Counter("queue.enqueued").Inc()
	q.mu.Unlock()
	return t.id, nil
}

// BatchResult is one batch-submission outcome.
type BatchResult struct {
	ID  string
	Err error
}

// putRecord persists a record transition and wakes terminal waiters.
func (q *Queue) putRecord(rec Record) {
	raw, err := json.Marshal(rec)
	if err != nil {
		// Only Result (a handler-supplied RawMessage) can be
		// unencodable; degrade to a failed record rather than leaving
		// the invocation parked in a non-terminal state forever.
		rec.Result = nil
		rec.Status = StatusFailed
		rec.Error = "asyncq: unencodable result: " + err.Error()
		raw, _ = json.Marshal(rec)
	}
	// Record writes must outlive the submitter's context: a cancelled
	// invocation still gets its terminal "failed" record.
	_ = q.records.Put(context.Background(), recordKey(rec.ID), raw)
	if rec.Status.Terminal() {
		q.mu.Lock()
		if ch, ok := q.waiters[rec.ID]; ok {
			close(ch)
			delete(q.waiters, rec.ID)
		}
		q.mu.Unlock()
		if q.cfg.RecordTTL > 0 {
			q.terminalMu.Lock()
			q.terminal = append(q.terminal, expiringRecord{
				id:      rec.ID,
				expires: q.cfg.Clock.Now().Add(q.cfg.RecordTTL),
			})
			q.terminalMu.Unlock()
		}
	}
}

// gcLoop periodically evicts records whose TTL has elapsed.
func (q *Queue) gcLoop() {
	defer close(q.gcDone)
	for {
		select {
		case <-q.gcStop:
			return
		case <-q.cfg.Clock.After(q.cfg.GCInterval):
		}
		q.evictExpired()
	}
}

// evictExpired removes every terminal record past its TTL from the
// record table and counts it in the queue.evicted metric.
func (q *Queue) evictExpired() {
	now := q.cfg.Clock.Now()
	q.terminalMu.Lock()
	// Workers append in near-finish order, so scan the whole slice and
	// keep survivors: cheap, and robust to slight reordering.
	var expired []string
	kept := q.terminal[:0]
	for _, e := range q.terminal {
		if e.expires.After(now) {
			kept = append(kept, e)
			continue
		}
		expired = append(expired, e.id)
	}
	q.terminal = kept
	q.terminalMu.Unlock()
	for _, id := range expired {
		if err := q.records.Delete(context.Background(), recordKey(id)); err != nil {
			// Backing-store hiccup: the durable copy may survive (and
			// the record table would read it back through), so requeue
			// the eviction for the next sweep instead of leaking it.
			q.terminalMu.Lock()
			q.terminal = append(q.terminal, expiringRecord{id: id, expires: now})
			q.terminalMu.Unlock()
			continue
		}
		q.cfg.Metrics.Counter("queue.evicted").Inc()
	}
}

// Get returns the record for an invocation ID.
func (q *Queue) Get(ctx context.Context, id string) (Record, error) {
	raw, err := q.records.Get(ctx, recordKey(id))
	if err != nil {
		if errors.Is(err, memtable.ErrNotFound) {
			return Record{}, fmt.Errorf("%w: %q", ErrNotFound, id)
		}
		return Record{}, err
	}
	var rec Record
	if err := json.Unmarshal(raw, &rec); err != nil {
		return Record{}, fmt.Errorf("asyncq: corrupt record %q: %w", id, err)
	}
	return rec, nil
}

// Wait blocks until the invocation reaches a terminal status or ctx is
// done, then returns the record.
func (q *Queue) Wait(ctx context.Context, id string) (Record, error) {
	q.mu.Lock()
	ch, ok := q.waiters[id]
	if !ok {
		ch = make(chan struct{})
		q.waiters[id] = ch
	}
	q.mu.Unlock()
	// Check after registering so a transition between Get and wait
	// cannot be missed.
	rec, err := q.Get(ctx, id)
	if err != nil || rec.Status.Terminal() {
		// The terminal wake will never come (it already happened, or
		// the id is unknown): retire the waiter entry so the map does
		// not grow without bound. Closing the channel releases any
		// concurrent waiter that registered before the transition; it
		// re-checks the record and observes the same terminal state.
		q.mu.Lock()
		if cur, live := q.waiters[id]; live && cur == ch {
			close(ch)
			delete(q.waiters, id)
		}
		q.mu.Unlock()
		return rec, err
	}
	select {
	case <-ch:
		return q.Get(ctx, id)
	case <-ctx.Done():
		return Record{}, ctx.Err()
	}
}

// worker drains one shard until it is closed.
func (q *Queue) worker(shard chan task) {
	defer q.wg.Done()
	for t := range shard {
		q.run(t)
	}
}

// run executes one task, recovering handler panics into a failed
// record so the worker survives.
func (q *Queue) run(t task) {
	m := q.cfg.Metrics
	m.Gauge("queue.depth").Add(-1)
	m.Histogram("queue.wait").Observe(q.cfg.Clock.Since(t.queued))
	started := q.cfg.Clock.Now()
	rec := Record{
		ID: t.id, Object: t.object, Member: t.member,
		Status: StatusRunning, Enqueued: t.queued, Started: started,
	}
	// A submission cancelled while queued fails without invoking.
	if err := t.ctx.Err(); err != nil {
		rec.Status, rec.Error, rec.Finished = StatusFailed, err.Error(), started
		q.putRecord(rec)
		m.Counter("queue.failed").Inc()
		return
	}
	q.putRecord(rec)
	m.Gauge("queue.inflight").Add(1)
	out, err := q.invokeWithRetries(t)
	m.Gauge("queue.inflight").Add(-1)
	if err == nil && len(out) > 0 && !json.Valid(out) {
		err = fmt.Errorf("asyncq: handler returned invalid JSON output")
	}
	rec.Finished = q.cfg.Clock.Now()
	m.Histogram("queue.exec").Observe(rec.Finished.Sub(started))
	if err != nil {
		rec.Status, rec.Error = StatusFailed, err.Error()
		m.Counter("queue.failed").Inc()
	} else {
		rec.Status, rec.Result = StatusCompleted, out
		m.Counter("queue.completed").Inc()
	}
	q.putRecord(rec)
}

// invokeWithRetries drives the retry policy: a failed invocation is
// re-run up to MaxRetries additional times, waiting RetryBackoff
// (doubled per attempt) between runs, before the failure becomes
// terminal. Retries run inline on the worker — the record stays
// "running" across attempts — and stop immediately once the
// submitter's context is cancelled. Each re-run is counted in the
// queue.retries metric (Stats().Retried).
func (q *Queue) invokeWithRetries(t task) (json.RawMessage, error) {
	out, err := q.invoke(t)
	if err == nil || q.cfg.MaxRetries <= 0 {
		return out, err
	}
	backoff := q.cfg.RetryBackoff
	for attempt := 0; attempt < q.cfg.MaxRetries; attempt++ {
		if t.ctx.Err() != nil {
			return out, err
		}
		if serr := q.cfg.Clock.Sleep(t.ctx, backoff); serr != nil {
			return out, err
		}
		backoff *= 2
		q.cfg.Metrics.Counter("queue.retries").Inc()
		if out, err = q.invoke(t); err == nil {
			return out, nil
		}
	}
	return out, err
}

// invoke calls the handler with panic isolation.
func (q *Queue) invoke(t task) (out json.RawMessage, err error) {
	defer func() {
		if r := recover(); r != nil {
			q.cfg.Metrics.Counter("queue.panics").Inc()
			out, err = nil, fmt.Errorf("asyncq: handler panic: %v", r)
		}
	}()
	return q.cfg.Invoke(t.ctx, t.object, t.member, t.payload, t.args)
}

// Stats is a point-in-time queue snapshot.
type Stats struct {
	// Workers / Shards / Capacity echo the configuration.
	Workers  int `json:"workers"`
	Shards   int `json:"shards"`
	Capacity int `json:"capacity"`
	// Depth is the number of accepted-but-not-dequeued invocations;
	// InFlight the number currently executing.
	Depth    int64 `json:"depth"`
	InFlight int64 `json:"in_flight"`
	// Enqueued / Rejected / Completed / Failed are lifetime counters.
	Enqueued  int64 `json:"enqueued"`
	Rejected  int64 `json:"rejected"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	// Retried counts re-runs of failed invocations under the retry
	// policy (Config.MaxRetries).
	Retried int64 `json:"retried"`
	// Evicted counts terminal records garbage-collected after
	// Config.RecordTTL elapsed.
	Evicted int64 `json:"evicted"`
	// DequeueP50 is the median enqueue-to-dequeue latency.
	DequeueP50 time.Duration `json:"dequeue_p50_ns"`
}

// Stats snapshots the queue counters.
func (q *Queue) Stats() Stats {
	m := q.cfg.Metrics
	return Stats{
		Workers:    q.cfg.Workers,
		Shards:     q.cfg.Shards,
		Capacity:   len(q.shards) * cap(q.shards[0]),
		Depth:      m.Gauge("queue.depth").Value(),
		InFlight:   m.Gauge("queue.inflight").Value(),
		Enqueued:   m.Counter("queue.enqueued").Value(),
		Rejected:   m.Counter("queue.rejected").Value(),
		Completed:  m.Counter("queue.completed").Value(),
		Failed:     m.Counter("queue.failed").Value(),
		Retried:    m.Counter("queue.retries").Value(),
		Evicted:    m.Counter("queue.evicted").Value(),
		DequeueP50: m.Histogram("queue.wait").Quantile(0.5),
	}
}

// Close stops intake, drains every accepted invocation through the
// worker pool, then flushes and closes the record table. It is
// idempotent and safe to call concurrently with Submit.
func (q *Queue) Close() {
	q.closeOnce.Do(func() {
		q.mu.Lock()
		q.closed = true
		q.mu.Unlock()
		// No Submit can send after closed is set (sends happen under
		// mu), so closing the shards is race-free.
		for _, sh := range q.shards {
			close(sh)
		}
		q.wg.Wait()
		// Stop the GC before closing the record table so the sweeper
		// never deletes against a closed table.
		if q.gcStop != nil {
			close(q.gcStop)
			<-q.gcDone
		}
		q.records.Close()
	})
}
