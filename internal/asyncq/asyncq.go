// Package asyncq implements the platform's asynchronous invocation
// subsystem: a bounded, sharded queue drained by a configurable worker
// pool, with per-invocation records persisted in a memtable so results
// survive flush cycles and stay poll-able after completion.
//
// Synchronous invocation forces the client to hold a connection for the
// full method latency; the queue decouples submission from execution
// the same way Knative's activator/queue decouples request arrival from
// pod readiness on the serving side (which internal/faas models). A
// client submits a task, receives an invocation ID immediately, and
// later polls or waits for the terminal record.
//
// Lifecycle of one invocation:
//
//	Submit -> record {status: pending}   (persisted, queued)
//	worker -> record {status: running}   (dequeued)
//	handler ok  -> {status: completed, result}
//	handler err -> {status: failed, error}
//
// Backpressure is explicit: Submit returns ErrQueueFull once the
// target shard is at capacity. A panicking handler marks its record
// failed without killing the worker. Close stops intake, drains every
// accepted task, then flushes the record table.
//
// Terminal records do not accumulate forever: when Config.RecordTTL is
// set, a background sweeper evicts completed/failed records once they
// have been terminal for the TTL, so long-running platforms keep a
// bounded record table. Evictions are counted in Stats().Evicted.
//
// # Batched drain
//
// Workers drain in batches: each pull takes up to Config.DrainBatch
// tasks from the shard (blocking for the first, non-blocking for the
// rest), writes the running and terminal record transitions for the
// whole pull in one batched memtable.PutMany each, and groups the
// pull's tasks by target object. When Config.InvokeBatch is set,
// same-object groups of two or more dispatch through it in one call —
// the runtime's group-commit path — so N coalesced invocations on a
// hot object cost one concurrency window and one simulated DB round
// trip instead of N. Per-call outcomes stay independent: a failing or
// panicking member poisons only its own record. Stats().BatchedDrains
// counts multi-task pulls and Stats().Coalesced counts invocations
// that shared a group dispatch.
//
// # Class quotas
//
// Config.ClassQuotas caps the number of queued (accepted but not yet
// dequeued) invocations per class: an over-quota Submit is rejected
// with ErrClassQuotaExceeded while other classes keep their share of
// the queue. Quotas need Config.ClassOf to resolve an object's class.
package asyncq

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"maps"
	"sync"
	"sync/atomic"
	"time"

	"github.com/hpcclab/oparaca-go/internal/kvstore"
	"github.com/hpcclab/oparaca-go/internal/memtable"
	"github.com/hpcclab/oparaca-go/internal/metrics"
	"github.com/hpcclab/oparaca-go/internal/trace"
	"github.com/hpcclab/oparaca-go/internal/vclock"
)

// Sentinel errors.
var (
	// ErrQueueFull is the backpressure signal: the invocation was not
	// accepted because the target shard is at capacity.
	ErrQueueFull = errors.New("asyncq: queue full")
	// ErrNotFound is returned when no record exists for an invocation ID.
	ErrNotFound = errors.New("asyncq: invocation not found")
	// ErrClosed is returned for submissions after Close.
	ErrClosed = errors.New("asyncq: queue closed")
	// ErrClassQuotaExceeded is returned when a submission would push a
	// class past its Config.ClassQuotas cap while the queue itself
	// still has room.
	ErrClassQuotaExceeded = errors.New("asyncq: class quota exceeded")
)

// Status is an invocation's lifecycle phase.
type Status string

// Invocation statuses.
const (
	StatusPending   Status = "pending"
	StatusRunning   Status = "running"
	StatusCompleted Status = "completed"
	StatusFailed    Status = "failed"
	// StatusExpired marks an invocation whose deadline elapsed — either
	// while it sat queued (stale work is dropped without executing) or
	// while its handler ran (the handler's delta never committed).
	StatusExpired Status = "expired"
)

// Terminal reports whether s is a final status.
func (s Status) Terminal() bool {
	return s == StatusCompleted || s == StatusFailed || s == StatusExpired
}

// Record is the durable state of one asynchronous invocation.
type Record struct {
	// ID identifies the invocation (returned by Submit).
	ID string `json:"id"`
	// Object and Member name the target method.
	Object string `json:"object"`
	Member string `json:"member"`
	// Status is the lifecycle phase.
	Status Status `json:"status"`
	// Payload and Args echo the submission while the record is
	// non-terminal, so a successor process (or a rebalanced owner) can
	// re-execute stranded work from the durable record alone. Both are
	// dropped from terminal records to keep the table lean.
	Payload json.RawMessage   `json:"payload,omitempty"`
	Args    map[string]string `json:"args,omitempty"`
	// Result holds the method output once Status is completed.
	Result json.RawMessage `json:"result,omitempty"`
	// Error holds the failure message once Status is failed.
	Error string `json:"error,omitempty"`
	// Enqueued / Started / Finished are the transition timestamps.
	Enqueued time.Time `json:"enqueued"`
	Started  time.Time `json:"started,omitzero"`
	Finished time.Time `json:"finished,omitzero"`
}

// Invoker executes one dequeued invocation. The platform passes its
// synchronous Invoke path here; the indirection keeps this package free
// of a dependency on core.
type Invoker func(ctx context.Context, objectID, member string, payload json.RawMessage, args map[string]string) (json.RawMessage, error)

// Call is one member of a coalesced same-object dispatch.
type Call struct {
	// Member is the method name.
	Member string
	// Payload and Args mirror the submission.
	Payload json.RawMessage
	Args    map[string]string
	// Ctx is the submitter's context; the batch executor scopes this
	// call's handler run to it.
	Ctx context.Context
}

// CallResult is one coalesced call's outcome.
type CallResult struct {
	Output json.RawMessage
	Err    error
}

// BatchInvoker executes a group of calls against one object in a
// single concurrency window (the platform passes its group-commit
// InvokeBatch path). It must return exactly one result per call;
// results are independent — one failing call must not poison the rest.
type BatchInvoker func(ctx context.Context, objectID string, calls []Call) []CallResult

// Request is one batch-submission entry.
type Request struct {
	Object  string            `json:"object"`
	Member  string            `json:"member"`
	Payload json.RawMessage   `json:"payload,omitempty"`
	Args    map[string]string `json:"args,omitempty"`
}

// Config sizes a Queue.
type Config struct {
	// Invoke drains dequeued tasks; required.
	Invoke Invoker
	// InvokeBatch, when set, executes same-object groups of a drain
	// pull in one call (group commit). Groups of one, and every group
	// when InvokeBatch is nil, go through Invoke.
	InvokeBatch BatchInvoker
	// DrainBatch is the maximum number of tasks one worker pulls from
	// its shard per drain (the first blocking, the rest non-blocking).
	// Defaults to 16; 1 restores strictly per-task draining.
	DrainBatch int
	// Workers is the pool size. Defaults to 4.
	Workers int
	// Capacity bounds the number of queued (accepted but not yet
	// dequeued) invocations across all shards. Defaults to 1024.
	Capacity int
	// Shards partitions the queue; tasks are spread across shards by
	// invocation ID so a burst against one hot object uses the whole
	// queue. Defaults to min(Workers, 4) and is clamped to Workers so
	// every shard has a dedicated drainer.
	Shards int
	// Backing persists invocation records through a write-behind
	// memtable. nil keeps records in memory only.
	Backing *kvstore.Store
	// FlushInterval overrides the record table's flush period.
	FlushInterval time.Duration
	// RecordTTL evicts completed/failed records this long after they
	// reach their terminal status. Zero keeps records forever (the
	// pre-GC behaviour).
	RecordTTL time.Duration
	// GCInterval is the eviction sweep period. Defaults to RecordTTL/4
	// (clamped to at least 1ms) and is ignored when RecordTTL is zero.
	GCInterval time.Duration
	// MaxRetries re-runs a failed invocation up to this many
	// additional times before the record goes terminal-failed. A
	// cancelled submission context is never retried. Zero disables
	// retries.
	MaxRetries int
	// RetryBackoff is the delay before the first retry, doubled per
	// attempt. Defaults to 10ms when MaxRetries is set.
	RetryBackoff time.Duration
	// ClassQuotas caps the queued (accepted but not yet dequeued)
	// invocations per class name; over-quota submissions fail with
	// ErrClassQuotaExceeded. Classes without an entry are unbounded
	// (up to Capacity). Requires ClassOf.
	ClassQuotas map[string]int
	// ClassOf resolves an object ID to its class name for quota
	// accounting. Objects resolving to "" bypass quotas.
	ClassOf func(objectID string) string
	// TimeoutFor resolves the declared invocation deadline for one
	// submission (the platform passes its function/class/platform
	// TimeoutMs resolution). The duration is measured from submission
	// time: queued work that outlives it is dropped as expired instead
	// of executed, and a running handler is cut off when it elapses.
	// Zero (or a nil TimeoutFor) leaves the task without a declared
	// deadline; a deadline on the submitter's context still applies
	// (the earlier of the two wins).
	TimeoutFor func(objectID, member string) time.Duration
	// Requeue, when set, classifies execution errors that mean the
	// invocation should go back to the queue with the same ID instead
	// of retrying inline or failing terminally — the cluster ownership
	// layer passes a predicate matching epoch-fence rejections, so work
	// admitted on an ex-owner re-runs under the new ownership without
	// ever acknowledging a failure. Requeued work is bounded by
	// MaxRequeues and still respects the submission deadline.
	Requeue func(error) bool
	// MaxRequeues bounds how many times one invocation may be requeued
	// by the Requeue classifier before its error goes terminal.
	// Defaults to 8 when Requeue is set.
	MaxRequeues int
	// OnTerminal, when set, is called once per invocation record that
	// reaches a terminal status (completed or failed), after the record
	// is persisted, with the submission's args — the platform publishes
	// InvocationCompleted/InvocationFailed events (and webhook pushes)
	// from it. Called from worker goroutines; must not block
	// indefinitely.
	OnTerminal func(rec Record, args map[string]string)
	// Drain, when set, is called by Close after every accepted
	// invocation has finished and its terminal hook has run, before
	// Close returns — the platform points it at the event bus's Drain
	// so pending trigger deliveries (terminal-record webhooks included)
	// flush before teardown.
	Drain func()
	// Metrics receives queue gauges/counters/histograms. A private
	// registry is created when nil.
	Metrics *metrics.Registry
	// Clock supplies time; defaults to the real clock.
	Clock vclock.Clock
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.DrainBatch <= 0 {
		c.DrainBatch = 16
	}
	if c.Capacity <= 0 {
		c.Capacity = 1024
	}
	if c.Shards <= 0 {
		c.Shards = min(c.Workers, 4)
	}
	if c.Shards > c.Workers {
		c.Shards = c.Workers
	}
	if c.Metrics == nil {
		c.Metrics = metrics.NewRegistry()
	}
	if c.RecordTTL > 0 && c.GCInterval <= 0 {
		c.GCInterval = c.RecordTTL / 4
		if c.GCInterval < time.Millisecond {
			c.GCInterval = time.Millisecond
		}
	}
	if c.MaxRetries > 0 && c.RetryBackoff <= 0 {
		c.RetryBackoff = 10 * time.Millisecond
	}
	if c.Requeue != nil && c.MaxRequeues <= 0 {
		c.MaxRequeues = 8
	}
	if c.Clock == nil {
		c.Clock = vclock.NewReal()
	}
	return c
}

// task is one queued invocation.
type task struct {
	id      string
	object  string
	member  string
	class   string // resolved at submit for quota accounting ("" = none)
	payload json.RawMessage
	args    map[string]string
	ctx     context.Context // submitter's context; cancellation is observed
	queued  time.Time
	// deadline is the absolute submission deadline (zero = none): the
	// earlier of queued+TimeoutFor and the submitter context's own
	// deadline. Execution contexts are capped to it, and a task still
	// queued past it is dropped as expired.
	deadline time.Time
	// requeues counts how many times the Requeue classifier sent this
	// task back to its shard (bounded by Config.MaxRequeues).
	requeues int
	// span is the open queue.wait span of the submission's trace (nil
	// when the submitter carried none); link holds the trace open across
	// the queue hop so it finalizes only once the task goes terminal.
	span *trace.Span
	link trace.Link
}

// dropTrace closes the task's wait span (recording err) and releases
// its hold on the trace — the task will never execute.
func (t *task) dropTrace(err error) {
	t.span.Error(err)
	t.span.End()
	t.link.Release()
}

// Queue is the asynchronous invocation engine. It is safe for
// concurrent use.
type Queue struct {
	cfg     Config
	records *memtable.Table
	shards  []chan task

	mu      sync.Mutex
	waiters map[string]chan struct{}
	closed  bool
	// classPending counts queued (accepted, not yet dequeued) tasks per
	// class, the ClassQuotas accounting. Guarded by mu.
	classPending map[string]int
	// tracked holds the IDs of every invocation currently queued or
	// executing in this process. RecoverStranded consults it so it only
	// adopts records orphaned by another (dead) process — replaying a
	// task that is still live here would double-execute it. Guarded by
	// mu.
	tracked map[string]struct{}

	// terminal is the GC's eviction index: records that reached a
	// terminal status, in roughly finish order, with the instant each
	// becomes evictable. Only populated when RecordTTL > 0.
	terminalMu sync.Mutex
	terminal   []expiringRecord

	gcStop chan struct{}
	gcDone chan struct{}

	wg        sync.WaitGroup
	closeOnce sync.Once
	killed    atomic.Bool // drop queued tasks instead of running them
}

// expiringRecord is one entry of the GC's eviction index.
type expiringRecord struct {
	id      string
	expires time.Time
}

// recordKey is the memtable key for one invocation ID.
func recordKey(id string) string { return "invocations/" + id }

// New builds a queue and starts its worker pool.
func New(cfg Config) (*Queue, error) {
	cfg = cfg.withDefaults()
	if cfg.Invoke == nil {
		return nil, errors.New("asyncq: Config.Invoke is required")
	}
	if len(cfg.ClassQuotas) > 0 && cfg.ClassOf == nil {
		// Without a class resolver every task's class is "" and the
		// quota check silently never fires; fail loudly instead.
		return nil, errors.New("asyncq: Config.ClassQuotas requires Config.ClassOf")
	}
	tblCfg := memtable.Config{
		Mode:          memtable.ModeWriteBehind,
		Backing:       cfg.Backing,
		FlushInterval: cfg.FlushInterval,
		Clock:         cfg.Clock,
	}
	if cfg.Backing == nil {
		tblCfg.Mode = memtable.ModeMemoryOnly
	}
	records, err := memtable.New(tblCfg)
	if err != nil {
		return nil, fmt.Errorf("asyncq: record table: %w", err)
	}
	q := &Queue{
		cfg:          cfg,
		records:      records,
		shards:       make([]chan task, cfg.Shards),
		waiters:      make(map[string]chan struct{}),
		classPending: make(map[string]int),
		tracked:      make(map[string]struct{}),
	}
	perShard := (cfg.Capacity + cfg.Shards - 1) / cfg.Shards
	for i := range q.shards {
		q.shards[i] = make(chan task, perShard)
	}
	for i := 0; i < cfg.Workers; i++ {
		q.wg.Add(1)
		go q.worker(q.shards[i%cfg.Shards])
	}
	if cfg.RecordTTL > 0 {
		q.gcStop = make(chan struct{})
		q.gcDone = make(chan struct{})
		go q.gcLoop()
	}
	return q, nil
}

// Metrics exposes the queue's registry (depth/in-flight gauges, wait
// and exec histograms, enqueued/rejected/completed/failed counters).
func (q *Queue) Metrics() *metrics.Registry { return q.cfg.Metrics }

// shardFor picks the shard channel for one invocation. Sharding by
// invocation ID (not object) keeps hot-object bursts from saturating a
// single shard's capacity.
func (q *Queue) shardFor(invocationID string) chan task {
	h := fnv.New32a()
	_, _ = h.Write([]byte(invocationID))
	return q.shards[h.Sum32()%uint32(len(q.shards))]
}

// newInvocationID returns a 12-byte hex identifier.
func newInvocationID() string {
	var b [12]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("asyncq: crypto/rand unavailable: " + err.Error())
	}
	return "inv-" + hex.EncodeToString(b[:])
}

// Submit enqueues one invocation and returns its ID. The context is
// retained: cancelling it fails the invocation if it is still queued
// and propagates into the handler once running. Submit returns
// ErrQueueFull when the queue is at capacity and ErrClosed after
// Close.
func (q *Queue) Submit(ctx context.Context, objectID, member string, payload json.RawMessage, args map[string]string) (string, error) {
	if err := ctx.Err(); err != nil {
		return "", err
	}
	t := task{
		id:      newInvocationID(),
		object:  objectID,
		member:  member,
		payload: append(json.RawMessage(nil), payload...),
		args:    maps.Clone(args),
		ctx:     ctx,
		queued:  q.cfg.Clock.Now(),
	}
	if q.cfg.TimeoutFor != nil {
		if d := q.cfg.TimeoutFor(objectID, member); d > 0 {
			t.deadline = t.queued.Add(d)
		}
	}
	if ctxDl, ok := ctx.Deadline(); ok && (t.deadline.IsZero() || ctxDl.Before(t.deadline)) {
		t.deadline = ctxDl
	}
	if len(q.cfg.ClassQuotas) > 0 && q.cfg.ClassOf != nil {
		t.class = q.cfg.ClassOf(objectID)
	}
	if sp := trace.FromContext(ctx); sp != nil {
		// The queue hop outlives the submitter's request: a link keeps
		// the trace open until the task goes terminal, and the wait span
		// measures time-to-drain.
		sp.SetInvocation(t.id)
		t.link = sp.Link()
		t.span = sp.Child("queue.wait")
	}
	// The pending record and depth gauge must exist before the task is
	// visible to a worker: a fast worker would otherwise write the
	// terminal record first and have it clobbered by a late pending
	// write (leaving pollers stuck at "pending" forever).
	q.putRecord(Record{
		ID: t.id, Object: objectID, Member: member,
		Status: StatusPending, Enqueued: t.queued,
		Payload: t.payload, Args: t.args,
	})
	m := q.cfg.Metrics
	m.Gauge("queue.depth").Add(1)
	// The closed check, quota reservation and shard send share the lock
	// so Close cannot observe an accepted task it will not drain and a
	// quota can never be oversubscribed by racing submitters.
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		m.Gauge("queue.depth").Add(-1)
		_ = q.records.Delete(context.Background(), recordKey(t.id))
		t.dropTrace(ErrClosed)
		return "", ErrClosed
	}
	if quota, capped := q.cfg.ClassQuotas[t.class]; capped && t.class != "" && q.classPending[t.class] >= quota {
		q.mu.Unlock()
		m.Gauge("queue.depth").Add(-1)
		m.Counter("queue.quota_rejected").Inc()
		_ = q.records.Delete(context.Background(), recordKey(t.id))
		err := fmt.Errorf("%w: class %s at quota %d", ErrClassQuotaExceeded, t.class, quota)
		t.dropTrace(err)
		return "", err
	}
	select {
	case q.shardFor(t.id) <- t:
	default:
		q.mu.Unlock()
		m.Gauge("queue.depth").Add(-1)
		m.Counter("queue.rejected").Inc()
		_ = q.records.Delete(context.Background(), recordKey(t.id))
		err := fmt.Errorf("%w: object %s", ErrQueueFull, objectID)
		t.dropTrace(err)
		return "", err
	}
	if t.class != "" {
		q.classPending[t.class]++
	}
	q.tracked[t.id] = struct{}{}
	m.Counter("queue.enqueued").Inc()
	q.mu.Unlock()
	return t.id, nil
}

// BatchResult is one batch-submission outcome.
type BatchResult struct {
	ID  string
	Err error
}

// encodeRecord marshals a record, degrading an unencodable one to a
// terminal failure rather than leaving the invocation parked in a
// non-terminal state forever. Only Result (a handler-supplied
// RawMessage) can be unencodable.
func encodeRecord(rec Record) (Record, json.RawMessage) {
	raw, err := json.Marshal(rec)
	if err != nil {
		rec.Result = nil
		rec.Status = StatusFailed
		rec.Error = "asyncq: unencodable result: " + err.Error()
		raw, _ = json.Marshal(rec)
	}
	return rec, raw
}

// putRecord persists a record transition and wakes terminal waiters.
func (q *Queue) putRecord(rec Record) {
	rec, raw := encodeRecord(rec)
	// Record writes must outlive the submitter's context: a cancelled
	// invocation still gets its terminal "failed" record.
	_ = q.records.Put(context.Background(), recordKey(rec.ID), raw)
	if rec.Status.Terminal() {
		q.noteTerminal(rec.ID)
	}
}

// putRecords persists a whole drain pull's record transitions in one
// batched table write — the per-pull consolidation that replaces one
// putRecord (and one shard-lock window) per task — then runs the
// terminal bookkeeping for every record that went terminal.
func (q *Queue) putRecords(recs []Record) {
	if len(recs) == 0 {
		return
	}
	if len(recs) == 1 {
		q.putRecord(recs[0])
		return
	}
	entries := make(map[string]json.RawMessage, len(recs))
	terminal := make([]string, 0, len(recs))
	for _, rec := range recs {
		rec, raw := encodeRecord(rec)
		entries[recordKey(rec.ID)] = raw
		if rec.Status.Terminal() {
			terminal = append(terminal, rec.ID)
		}
	}
	_ = q.records.PutMany(context.Background(), entries)
	for _, id := range terminal {
		q.noteTerminal(id)
	}
}

// noteTerminal wakes waiters on a now-terminal invocation and, when a
// TTL is configured, registers the record for eviction.
func (q *Queue) noteTerminal(id string) {
	q.mu.Lock()
	if ch, ok := q.waiters[id]; ok {
		close(ch)
		delete(q.waiters, id)
	}
	delete(q.tracked, id)
	q.mu.Unlock()
	if q.cfg.RecordTTL > 0 {
		q.terminalMu.Lock()
		q.terminal = append(q.terminal, expiringRecord{
			id:      id,
			expires: q.cfg.Clock.Now().Add(q.cfg.RecordTTL),
		})
		q.terminalMu.Unlock()
	}
}

// gcLoop periodically evicts records whose TTL has elapsed.
func (q *Queue) gcLoop() {
	defer close(q.gcDone)
	for {
		select {
		case <-q.gcStop:
			return
		case <-q.cfg.Clock.After(q.cfg.GCInterval):
		}
		q.evictExpired()
	}
}

// evictExpired removes every terminal record past its TTL from the
// record table and counts it in the queue.evicted metric.
func (q *Queue) evictExpired() {
	now := q.cfg.Clock.Now()
	q.terminalMu.Lock()
	// Workers append in near-finish order, so scan the whole slice and
	// keep survivors: cheap, and robust to slight reordering.
	var expired []string
	kept := q.terminal[:0]
	for _, e := range q.terminal {
		if e.expires.After(now) {
			kept = append(kept, e)
			continue
		}
		expired = append(expired, e.id)
	}
	q.terminal = kept
	q.terminalMu.Unlock()
	for _, id := range expired {
		if err := q.records.Delete(context.Background(), recordKey(id)); err != nil {
			// Backing-store hiccup: the durable copy may survive (and
			// the record table would read it back through), so requeue
			// the eviction for the next sweep instead of leaking it.
			q.terminalMu.Lock()
			q.terminal = append(q.terminal, expiringRecord{id: id, expires: now})
			q.terminalMu.Unlock()
			continue
		}
		q.cfg.Metrics.Counter("queue.evicted").Inc()
	}
}

// Get returns the record for an invocation ID.
func (q *Queue) Get(ctx context.Context, id string) (Record, error) {
	raw, err := q.records.Get(ctx, recordKey(id))
	if err != nil {
		if errors.Is(err, memtable.ErrNotFound) {
			return Record{}, fmt.Errorf("%w: %q", ErrNotFound, id)
		}
		return Record{}, err
	}
	var rec Record
	if err := json.Unmarshal(raw, &rec); err != nil {
		return Record{}, fmt.Errorf("asyncq: corrupt record %q: %w", id, err)
	}
	return rec, nil
}

// Wait blocks until the invocation reaches a terminal status or ctx is
// done, then returns the record.
func (q *Queue) Wait(ctx context.Context, id string) (Record, error) {
	q.mu.Lock()
	ch, ok := q.waiters[id]
	if !ok {
		ch = make(chan struct{})
		q.waiters[id] = ch
	}
	q.mu.Unlock()
	// Check after registering so a transition between Get and wait
	// cannot be missed.
	rec, err := q.Get(ctx, id)
	if err != nil || rec.Status.Terminal() {
		// The terminal wake will never come (it already happened, or
		// the id is unknown): retire the waiter entry so the map does
		// not grow without bound. Closing the channel releases any
		// concurrent waiter that registered before the transition; it
		// re-checks the record and observes the same terminal state.
		q.mu.Lock()
		if cur, live := q.waiters[id]; live && cur == ch {
			close(ch)
			delete(q.waiters, id)
		}
		q.mu.Unlock()
		return rec, err
	}
	select {
	case <-ch:
		return q.Get(ctx, id)
	case <-ctx.Done():
		return Record{}, ctx.Err()
	}
}

// worker drains one shard until it is closed, pulling up to DrainBatch
// tasks per drain: the first receive blocks, the rest are non-blocking,
// so a lone task still runs immediately while a backlog coalesces.
func (q *Queue) worker(shard chan task) {
	defer q.wg.Done()
	batch := make([]task, 0, q.cfg.DrainBatch)
	for {
		t, ok := <-shard
		if !ok {
			return
		}
		if q.killed.Load() {
			// Simulated crash: drain the shard without running anything
			// so Kill's wg.Wait returns promptly. The submissions'
			// pending records stay in the backing store for recovery.
			continue
		}
		batch = append(batch[:0], t)
	fill:
		for len(batch) < q.cfg.DrainBatch {
			select {
			case t, ok := <-shard:
				if !ok {
					// Shard closed mid-fill: run what was pulled, then
					// exit (the range-less loop observes the close on
					// its next blocking receive).
					break fill
				}
				batch = append(batch, t)
			default:
				break fill
			}
		}
		q.runBatch(batch)
	}
}

// outcome is one drained task's execution result.
type outcome struct {
	out json.RawMessage
	err error
}

// runBatch executes one drain pull: it writes the pull's running (and
// cancelled-while-queued failed) record transitions in one batched
// table write, groups runnable tasks by target object for coalesced
// dispatch, then writes every terminal record in a second batched
// write. Handler panics are recovered into failed records so the
// worker survives.
//
// Terminal publication is per pull, not per task: a task's record (and
// its Wait waiters) becomes visible once the whole pull finishes, and
// all records of the pull share the pull window's Started/Finished
// timestamps — the throughput/latency trade the drain batching makes,
// bounded by DrainBatch. DrainBatch=1 restores per-task publication.
func (q *Queue) runBatch(batch []task) {
	m := q.cfg.Metrics
	m.Gauge("queue.depth").Add(-int64(len(batch)))
	q.releaseQuota(batch)
	if len(batch) > 1 {
		m.Counter("queue.batched_drains").Inc()
	}
	started := q.cfg.Clock.Now()
	recs := make([]Record, 0, len(batch))
	runnable := make([]task, 0, len(batch))
	var cancelled []terminalHook
	for _, t := range batch {
		m.Histogram("queue.wait").Observe(q.cfg.Clock.Since(t.queued))
		rec := Record{
			ID: t.id, Object: t.object, Member: t.member,
			Status: StatusRunning, Enqueued: t.queued, Started: started,
			// Running records keep the submission so a crash mid-run
			// leaves enough in the backing store to re-execute.
			Payload: t.payload, Args: t.args,
		}
		// A submission cancelled or expired while queued goes terminal
		// without invoking; its terminal metrics mirror every other exit
		// path (a zero execution-time sample keeps queue.exec's count
		// equal to the terminal-record total).
		if err := t.ctx.Err(); err != nil {
			rec.Finished = started
			rec.Payload, rec.Args = nil, nil
			if errors.Is(err, context.DeadlineExceeded) {
				rec.Status, rec.Error = StatusExpired, err.Error()
				m.Counter("queue.expired").Inc()
			} else {
				rec.Status, rec.Error = StatusFailed, err.Error()
				m.Counter("queue.failed").Inc()
			}
			m.Histogram("queue.exec").Observe(0)
			recs = append(recs, rec)
			cancelled = append(cancelled, terminalHook{rec: rec, args: t.args})
			t.dropTrace(err)
			continue
		}
		if !t.deadline.IsZero() && !started.Before(t.deadline) {
			// Stale queued work: the submission deadline elapsed while
			// the task waited. Nobody is waiting for the result anymore,
			// so dropping it beats executing it.
			rec.Status, rec.Finished = StatusExpired, started
			rec.Payload, rec.Args = nil, nil
			rec.Error = "asyncq: submission deadline elapsed while queued"
			m.Histogram("queue.exec").Observe(0)
			m.Counter("queue.expired").Inc()
			recs = append(recs, rec)
			cancelled = append(cancelled, terminalHook{rec: rec, args: t.args})
			t.dropTrace(errors.New(rec.Error))
			continue
		}
		t.span.End() // the wait is over; drain spans take it from here
		recs = append(recs, rec)
		runnable = append(runnable, t)
	}
	q.putRecords(recs)
	q.notifyTerminal(cancelled)
	if len(runnable) == 0 {
		return
	}
	m.Gauge("queue.inflight").Add(int64(len(runnable)))
	outcomes := q.executeGroups(runnable)
	m.Gauge("queue.inflight").Add(-int64(len(runnable)))
	finished := q.cfg.Clock.Now()
	term := make([]Record, 0, len(runnable))
	hooks := make([]terminalHook, 0, len(runnable))
	for i, t := range runnable {
		out, err := outcomes[i].out, outcomes[i].err
		if err == nil && len(out) > 0 && !json.Valid(out) {
			err = fmt.Errorf("asyncq: handler returned invalid JSON output")
		}
		// Ownership-fence (and other Requeue-classified) failures go
		// back to the queue with the same ID instead of terminating:
		// the work was never acknowledged, so the new owner simply
		// re-runs it. The terminal path below is the fallback when the
		// requeue bound is hit or the queue is closing.
		if err != nil && q.cfg.Requeue != nil && q.cfg.Requeue(err) &&
			t.requeues < q.cfg.MaxRequeues && t.ctx.Err() == nil &&
			(t.deadline.IsZero() || q.cfg.Clock.Now().Before(t.deadline)) {
			t.requeues++
			// Back to the shard under the same trace: a fresh wait span
			// opens so the re-run's queue time is visible too.
			t.span = t.link.Start("queue.wait")
			if q.requeue(t) {
				continue
			}
			t.span.End()
		}
		rec := Record{
			ID: t.id, Object: t.object, Member: t.member,
			Enqueued: t.queued, Started: started, Finished: finished,
		}
		// One exec sample per task keeps the histogram count equal to
		// the terminal-record count across batch sizes.
		m.Histogram("queue.exec").Observe(finished.Sub(started))
		switch {
		case err != nil && errors.Is(err, context.DeadlineExceeded):
			// The handler outlived the task's deadline; the runtime's
			// commit guards guarantee its delta never persisted.
			rec.Status, rec.Error = StatusExpired, err.Error()
			m.Counter("queue.expired").Inc()
		case err != nil:
			rec.Status, rec.Error = StatusFailed, err.Error()
			m.Counter("queue.failed").Inc()
		default:
			rec.Status, rec.Result = StatusCompleted, out
			m.Counter("queue.completed").Inc()
		}
		term = append(term, rec)
		hooks = append(hooks, terminalHook{rec: rec, args: t.args})
		t.link.Release() // terminal: the trace's queue hop is over
	}
	q.putRecords(term)
	q.notifyTerminal(hooks)
}

// requeue sends a live task back to its shard, restoring the pending
// record first (record before send, same as Submit, so a fast worker
// cannot have its terminal write clobbered). It reports false when the
// queue is closing or the shard is full — the caller then falls back
// to the terminal path. Safe against Close: the closed check and the
// send share q.mu, and shutdown closes the shards only after setting
// closed under the same lock.
func (q *Queue) requeue(t task) bool {
	q.putRecord(Record{
		ID: t.id, Object: t.object, Member: t.member,
		Status: StatusPending, Enqueued: t.queued,
		Payload: t.payload, Args: t.args,
	})
	m := q.cfg.Metrics
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return false
	}
	select {
	case q.shardFor(t.id) <- t:
	default:
		q.mu.Unlock()
		return false
	}
	if t.class != "" {
		q.classPending[t.class]++
	}
	q.tracked[t.id] = struct{}{}
	m.Gauge("queue.depth").Add(1)
	m.Counter("queue.requeued").Inc()
	q.mu.Unlock()
	return true
}

// RecoverStranded adopts non-terminal invocation records that no live
// worker in this process owns — the queued and in-flight work a dead
// node (or a crashed predecessor on the same backing store) left
// behind. Each stranded record is re-run from its persisted payload
// under the same invocation ID, so pollers waiting on the original ID
// observe the eventual terminal record. Returns how many invocations
// were adopted.
func (q *Queue) RecoverStranded(ctx context.Context) (int, error) {
	if q.cfg.Backing == nil {
		return 0, nil
	}
	keys, err := q.cfg.Backing.List(ctx, "invocations/")
	if err != nil {
		return 0, err
	}
	adopted := 0
	now := q.cfg.Clock.Now()
	for _, key := range keys {
		id := key[len("invocations/"):]
		// Tracked check BEFORE the record read: a worker untracks only
		// after persisting the terminal record, so an untracked ID
		// whose record still reads non-terminal is genuinely stranded
		// (the inverse order could adopt a task that went terminal
		// between the read and the check).
		q.mu.Lock()
		_, live := q.tracked[id]
		q.mu.Unlock()
		if live {
			continue // still queued or executing in this process
		}
		// Read through the record table, not the raw backing doc: this
		// process's own terminal transitions may not have flushed yet,
		// and replaying a locally-completed invocation would
		// double-execute it.
		raw, err := q.records.Get(ctx, key)
		if err != nil {
			continue
		}
		var rec Record
		if json.Unmarshal(raw, &rec) != nil || rec.ID == "" || rec.Status.Terminal() {
			continue
		}
		t := task{
			id:       rec.ID,
			object:   rec.Object,
			member:   rec.Member,
			payload:  rec.Payload,
			args:     rec.Args,
			ctx:      context.Background(),
			queued:   now,
			requeues: 0,
		}
		if q.cfg.TimeoutFor != nil {
			if d := q.cfg.TimeoutFor(t.object, t.member); d > 0 {
				t.deadline = now.Add(d)
			}
		}
		if len(q.cfg.ClassQuotas) > 0 && q.cfg.ClassOf != nil {
			t.class = q.cfg.ClassOf(t.object)
		}
		m := q.cfg.Metrics
		q.mu.Lock()
		if q.closed {
			q.mu.Unlock()
			break
		}
		if _, live := q.tracked[rec.ID]; live {
			q.mu.Unlock()
			continue // still queued or executing in this process
		}
		select {
		case q.shardFor(t.id) <- t:
		default:
			q.mu.Unlock()
			continue // shard full; the next recovery pass retries
		}
		if t.class != "" {
			q.classPending[t.class]++
		}
		q.tracked[t.id] = struct{}{}
		m.Gauge("queue.depth").Add(1)
		m.Counter("queue.recovered").Inc()
		q.mu.Unlock()
		adopted++
	}
	return adopted, nil
}

// terminalHook pairs a terminal record with its submission args for
// the OnTerminal callback.
type terminalHook struct {
	rec  Record
	args map[string]string
}

// notifyTerminal runs the terminal-record hook after the records are
// persisted (and Wait waiters woken), so a hook observer polling the
// record sees the terminal state.
func (q *Queue) notifyTerminal(hooks []terminalHook) {
	if q.cfg.OnTerminal == nil {
		return
	}
	for _, h := range hooks {
		q.cfg.OnTerminal(h.rec, h.args)
	}
}

// releaseQuota returns the pull's tasks to their classes' quotas.
func (q *Queue) releaseQuota(batch []task) {
	if len(q.cfg.ClassQuotas) == 0 {
		return
	}
	q.mu.Lock()
	for _, t := range batch {
		if t.class == "" {
			continue
		}
		if q.classPending[t.class]--; q.classPending[t.class] <= 0 {
			delete(q.classPending, t.class)
		}
	}
	q.mu.Unlock()
}

// executeGroups runs the pull's tasks grouped by target object. Groups
// of two or more dispatch through the batch invoker in one group-commit
// window when one is configured (counted in queue.coalesced); singleton
// groups — and every group when no batch invoker is set — run through
// the per-task path with its retry policy. Outcomes align with tasks.
func (q *Queue) executeGroups(tasks []task) []outcome {
	outcomes := make([]outcome, len(tasks))
	if q.cfg.InvokeBatch == nil || len(tasks) == 1 {
		for i, t := range tasks {
			outcomes[i].out, outcomes[i].err = q.invokeWithRetries(t)
		}
		return outcomes
	}
	// Group positions by object, preserving dequeue order within each
	// group so same-object calls execute in the order they drained.
	groups := make(map[string][]int, len(tasks))
	order := make([]string, 0, len(tasks))
	for i, t := range tasks {
		if _, seen := groups[t.object]; !seen {
			order = append(order, t.object)
		}
		groups[t.object] = append(groups[t.object], i)
	}
	for _, object := range order {
		idxs := groups[object]
		if len(idxs) == 1 {
			i := idxs[0]
			outcomes[i].out, outcomes[i].err = q.invokeWithRetries(tasks[i])
			continue
		}
		q.cfg.Metrics.Counter("queue.coalesced").Add(int64(len(idxs)))
		calls := make([]Call, len(idxs))
		dspans := make([]*trace.Span, len(idxs))
		var cancels []context.CancelFunc
		for j, i := range idxs {
			t := tasks[i]
			dsp := t.link.Start("queue.drain")
			dsp.SetInt("coalesced", len(idxs))
			dspans[j] = dsp
			cctx := trace.ContextWith(t.ctx, dsp)
			if !t.deadline.IsZero() {
				var cancel context.CancelFunc
				cctx, cancel = context.WithDeadline(cctx, t.deadline)
				cancels = append(cancels, cancel)
			}
			calls[j] = Call{Member: t.member, Payload: t.payload, Args: t.args, Ctx: cctx}
		}
		results := q.invokeBatch(object, calls)
		for _, cancel := range cancels {
			cancel()
		}
		for j := range dspans {
			dspans[j].Error(results[j].Err)
			dspans[j].End()
		}
		for j, i := range idxs {
			out, err := results[j].Output, results[j].Err
			if err != nil && q.cfg.MaxRetries > 0 && !errors.Is(err, context.DeadlineExceeded) &&
				!(q.cfg.Requeue != nil && q.cfg.Requeue(err)) {
				// Failed group members re-run individually under the
				// standard retry policy, keeping per-call retry
				// semantics identical to the per-task path.
				out, err = q.retry(tasks[i], out, err)
			}
			outcomes[i] = outcome{out: out, err: err}
		}
	}
	return outcomes
}

// invokeBatch calls the batch invoker with panic isolation and a
// result-shape guard: a misbehaving batch executor fails the whole
// group's calls without killing the worker.
func (q *Queue) invokeBatch(object string, calls []Call) (results []CallResult) {
	defer func() {
		if r := recover(); r != nil {
			q.cfg.Metrics.Counter("queue.panics").Inc()
			results = failAll(calls, fmt.Errorf("asyncq: batch handler panic: %v", r))
		}
	}()
	results = q.cfg.InvokeBatch(context.Background(), object, calls)
	if len(results) != len(calls) {
		results = failAll(calls, fmt.Errorf("asyncq: batch invoker returned %d results for %d calls", len(results), len(calls)))
	}
	return results
}

// failAll builds a uniform-failure result set.
func failAll(calls []Call, err error) []CallResult {
	out := make([]CallResult, len(calls))
	for i := range out {
		out[i].Err = err
	}
	return out
}

// invokeWithRetries drives the retry policy: a failed invocation is
// re-run up to MaxRetries additional times, waiting RetryBackoff
// (doubled per attempt) between runs, before the failure becomes
// terminal. Retries run inline on the worker — the record stays
// "running" across attempts — and stop immediately once the
// submitter's context is cancelled. Each re-run is counted in the
// queue.retries metric (Stats().Retried).
func (q *Queue) invokeWithRetries(t task) (json.RawMessage, error) {
	out, err := q.invoke(t)
	if err == nil || q.cfg.MaxRetries <= 0 || errors.Is(err, context.DeadlineExceeded) {
		// A deadline expiry is never retried: the deadline is absolute,
		// so every re-run would start already expired.
		return out, err
	}
	if q.cfg.Requeue != nil && q.cfg.Requeue(err) {
		// Requeue-classified errors (ownership fences) skip the inline
		// retry: re-running immediately on this worker would race the
		// rebalance it lost to. runBatch requeues it instead.
		return out, err
	}
	return q.retry(t, out, err)
}

// retry re-runs an already-failed invocation under the backoff policy.
func (q *Queue) retry(t task, out json.RawMessage, err error) (json.RawMessage, error) {
	backoff := q.cfg.RetryBackoff
	for attempt := 0; attempt < q.cfg.MaxRetries; attempt++ {
		if t.ctx.Err() != nil {
			return out, err
		}
		if !t.deadline.IsZero() && !q.cfg.Clock.Now().Before(t.deadline) {
			return out, err
		}
		if serr := q.cfg.Clock.Sleep(t.ctx, backoff); serr != nil {
			return out, err
		}
		backoff *= 2
		q.cfg.Metrics.Counter("queue.retries").Inc()
		if out, err = q.invoke(t); err == nil {
			return out, nil
		}
		if errors.Is(err, context.DeadlineExceeded) {
			return out, err
		}
	}
	return out, err
}

// invoke calls the handler with panic isolation, capping the execution
// context to the task's submission deadline. Each attempt runs under
// its own queue.drain span of the submission's trace.
func (q *Queue) invoke(t task) (out json.RawMessage, err error) {
	dsp := t.link.Start("queue.drain")
	defer func() {
		dsp.Error(err)
		dsp.End()
	}()
	defer func() {
		if r := recover(); r != nil {
			q.cfg.Metrics.Counter("queue.panics").Inc()
			out, err = nil, fmt.Errorf("asyncq: handler panic: %v", r)
		}
	}()
	ctx := trace.ContextWith(t.ctx, dsp)
	if !t.deadline.IsZero() {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, t.deadline)
		defer cancel()
	}
	return q.cfg.Invoke(ctx, t.object, t.member, t.payload, t.args)
}

// Stats is a point-in-time queue snapshot.
type Stats struct {
	// Workers / Shards / Capacity echo the configuration.
	Workers  int `json:"workers"`
	Shards   int `json:"shards"`
	Capacity int `json:"capacity"`
	// Depth is the number of accepted-but-not-dequeued invocations;
	// InFlight the number currently executing.
	Depth    int64 `json:"depth"`
	InFlight int64 `json:"in_flight"`
	// Enqueued / Rejected / Completed / Failed are lifetime counters.
	Enqueued  int64 `json:"enqueued"`
	Rejected  int64 `json:"rejected"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	// Expired counts invocations dropped or cut off by their deadline
	// (StatusExpired): stale queued work plus handlers that outlived
	// their submission deadline.
	Expired int64 `json:"expired"`
	// Retried counts re-runs of failed invocations under the retry
	// policy (Config.MaxRetries).
	Retried int64 `json:"retried"`
	// Requeued counts invocations sent back to the queue by the
	// Requeue classifier (ownership moved mid-flight).
	Requeued int64 `json:"requeued"`
	// Recovered counts stranded invocations adopted from durable
	// records by RecoverStranded (dead-node / crash failover).
	Recovered int64 `json:"recovered"`
	// Evicted counts terminal records garbage-collected after
	// Config.RecordTTL elapsed.
	Evicted int64 `json:"evicted"`
	// BatchedDrains counts worker pulls that dequeued more than one
	// task in a single drain (Config.DrainBatch > 1 doing its job).
	BatchedDrains int64 `json:"batched_drains"`
	// Coalesced counts invocations that shared a same-object
	// group-commit dispatch with at least one other invocation; the
	// ratio Coalesced/Completed is the coalescing rate.
	Coalesced int64 `json:"coalesced"`
	// QuotaRejected counts submissions rejected by a class quota
	// (Config.ClassQuotas).
	QuotaRejected int64 `json:"quota_rejected"`
	// DequeueP50 is the median enqueue-to-dequeue latency.
	DequeueP50 time.Duration `json:"dequeue_p50_ns"`
}

// Stats snapshots the queue counters.
func (q *Queue) Stats() Stats {
	m := q.cfg.Metrics
	return Stats{
		Workers:       q.cfg.Workers,
		Shards:        q.cfg.Shards,
		Capacity:      len(q.shards) * cap(q.shards[0]),
		Depth:         m.Gauge("queue.depth").Value(),
		InFlight:      m.Gauge("queue.inflight").Value(),
		Enqueued:      m.Counter("queue.enqueued").Value(),
		Rejected:      m.Counter("queue.rejected").Value(),
		Completed:     m.Counter("queue.completed").Value(),
		Failed:        m.Counter("queue.failed").Value(),
		Expired:       m.Counter("queue.expired").Value(),
		Retried:       m.Counter("queue.retries").Value(),
		Requeued:      m.Counter("queue.requeued").Value(),
		Recovered:     m.Counter("queue.recovered").Value(),
		Evicted:       m.Counter("queue.evicted").Value(),
		BatchedDrains: m.Counter("queue.batched_drains").Value(),
		Coalesced:     m.Counter("queue.coalesced").Value(),
		QuotaRejected: m.Counter("queue.quota_rejected").Value(),
		DequeueP50:    m.Histogram("queue.wait").Quantile(0.5),
	}
}

// Close stops intake, drains every accepted invocation through the
// worker pool, then flushes and closes the record table. It is
// idempotent and safe to call concurrently with Submit.
func (q *Queue) Close() {
	q.shutdown(false)
}

// Kill models process death: intake stops, queued tasks are abandoned
// without running, downstream deliveries are not drained, and the
// record table is dropped without its final flush. Only state already
// flushed to the backing store survives — exactly what a crash leaves
// for recovery.
func (q *Queue) Kill() {
	q.killed.Store(true)
	q.shutdown(true)
}

func (q *Queue) shutdown(kill bool) {
	q.closeOnce.Do(func() {
		q.mu.Lock()
		q.closed = true
		q.mu.Unlock()
		// No Submit can send after closed is set (sends happen under
		// mu), so closing the shards is race-free.
		for _, sh := range q.shards {
			close(sh)
		}
		q.wg.Wait()
		// Every accepted invocation has finished and fired its terminal
		// hook; drain downstream deliveries (terminal-record webhooks on
		// the event bus) before the platform tears anything down.
		if !kill && q.cfg.Drain != nil {
			q.cfg.Drain()
		}
		// Stop the GC before closing the record table so the sweeper
		// never deletes against a closed table.
		if q.gcStop != nil {
			close(q.gcStop)
			<-q.gcDone
		}
		if kill {
			q.records.Kill()
			return
		}
		q.records.Close()
	})
}
