package asyncq

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/hpcclab/oparaca-go/internal/kvstore"
)

// echoInvoker returns the payload and counts executions.
type echoInvoker struct {
	calls atomic.Int64
}

func (e *echoInvoker) invoke(_ context.Context, objectID, member string, payload json.RawMessage, _ map[string]string) (json.RawMessage, error) {
	e.calls.Add(1)
	if len(payload) > 0 {
		return payload, nil
	}
	out, _ := json.Marshal(objectID + "." + member)
	return out, nil
}

func newQueue(t *testing.T, cfg Config) *Queue {
	t.Helper()
	q, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(q.Close)
	return q
}

func TestSubmitCompletesAndRecordsResult(t *testing.T) {
	inv := &echoInvoker{}
	q := newQueue(t, Config{Invoke: inv.invoke, Workers: 2})
	ctx := context.Background()
	id, err := q.Submit(ctx, "obj-1", "greet", json.RawMessage(`"hi"`), nil)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := q.Wait(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Status != StatusCompleted {
		t.Fatalf("status = %s (err %q), want completed", rec.Status, rec.Error)
	}
	if string(rec.Result) != `"hi"` {
		t.Fatalf("result = %s", rec.Result)
	}
	if rec.Object != "obj-1" || rec.Member != "greet" {
		t.Fatalf("record target = %s.%s", rec.Object, rec.Member)
	}
	if rec.Enqueued.IsZero() || rec.Started.IsZero() || rec.Finished.IsZero() {
		t.Fatalf("timings incomplete: %+v", rec)
	}
	if inv.calls.Load() != 1 {
		t.Fatalf("handler ran %d times, want 1", inv.calls.Load())
	}
}

func TestGetUnknownInvocation(t *testing.T) {
	q := newQueue(t, Config{Invoke: (&echoInvoker{}).invoke})
	if _, err := q.Get(context.Background(), "inv-ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestFailedInvocationRecordsError(t *testing.T) {
	boom := errors.New("boom")
	q := newQueue(t, Config{Invoke: func(context.Context, string, string, json.RawMessage, map[string]string) (json.RawMessage, error) {
		return nil, boom
	}})
	id, err := q.Submit(context.Background(), "o", "m", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := q.Wait(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Status != StatusFailed || rec.Error != "boom" {
		t.Fatalf("record = %+v", rec)
	}
	if s := q.Stats(); s.Failed != 1 || s.Completed != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestWaitRetiresWaiterEntries(t *testing.T) {
	inv := &echoInvoker{}
	q := newQueue(t, Config{Invoke: inv.invoke, Workers: 2})
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		id, err := q.Submit(ctx, fmt.Sprintf("o%d", i), "m", nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		// Two waits per invocation: the first may consume the terminal
		// wake, the second exercises the already-terminal fast path.
		for j := 0; j < 2; j++ {
			if _, err := q.Wait(ctx, id); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Waiting on an unknown id must not leave an entry behind either.
	if _, err := q.Wait(ctx, "inv-ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	q.mu.Lock()
	n := len(q.waiters)
	q.mu.Unlock()
	if n != 0 {
		t.Fatalf("%d waiter entries leaked", n)
	}
}

func TestInvalidHandlerOutputFailsRecord(t *testing.T) {
	q := newQueue(t, Config{Invoke: func(context.Context, string, string, json.RawMessage, map[string]string) (json.RawMessage, error) {
		return json.RawMessage("not-json"), nil
	}})
	id, err := q.Submit(context.Background(), "o", "m", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := q.Wait(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Status != StatusFailed || rec.Error == "" {
		t.Fatalf("record = %+v", rec)
	}
}

func TestRecordsSurviveFlushCycles(t *testing.T) {
	db := kvstore.Open(kvstore.Config{})
	t.Cleanup(db.Close)
	inv := &echoInvoker{}
	q := newQueue(t, Config{
		Invoke:        inv.invoke,
		Backing:       db,
		FlushInterval: time.Millisecond,
	})
	id, err := q.Submit(context.Background(), "o", "m", json.RawMessage(`42`), nil)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := q.Wait(context.Background(), id)
	if err != nil || rec.Status != StatusCompleted {
		t.Fatalf("wait: %v %+v", err, rec)
	}
	// Give the write-behind flusher a few cycles, then verify the
	// terminal record landed in the backing store too.
	deadline := time.Now().Add(2 * time.Second)
	for {
		doc, err := db.Get(context.Background(), "invocations/"+id)
		if err == nil {
			var persisted Record
			if err := json.Unmarshal(doc.Value, &persisted); err != nil {
				t.Fatal(err)
			}
			if persisted.Status == StatusCompleted {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("terminal record never flushed to backing store")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Still poll-able after completion.
	again, err := q.Get(context.Background(), id)
	if err != nil || string(again.Result) != `42` {
		t.Fatalf("re-poll: %v %+v", err, again)
	}
}

func TestStatsCountersMatchSubmissions(t *testing.T) {
	inv := &echoInvoker{}
	q := newQueue(t, Config{Invoke: inv.invoke, Workers: 4, Capacity: 64})
	const n = 32
	ids := make([]string, 0, n)
	for i := 0; i < n; i++ {
		id, err := q.Submit(context.Background(), fmt.Sprintf("o%d", i), "m", nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for _, id := range ids {
		if _, err := q.Wait(context.Background(), id); err != nil {
			t.Fatal(err)
		}
	}
	s := q.Stats()
	if s.Enqueued != n || s.Completed != n || s.Failed != 0 || s.Rejected != 0 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Depth != 0 || s.InFlight != 0 {
		t.Fatalf("queue not drained: %+v", s)
	}
	if s.Workers != 4 || s.Capacity < 64 {
		t.Fatalf("config echo = %+v", s)
	}
}

func TestConcurrentSubmitAndWait(t *testing.T) {
	inv := &echoInvoker{}
	q := newQueue(t, Config{Invoke: inv.invoke, Workers: 8, Capacity: 1024})
	const n = 200
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id, err := q.Submit(context.Background(), fmt.Sprintf("obj-%d", i%13), "m", nil, nil)
			if err != nil {
				errs <- err
				return
			}
			rec, err := q.Wait(context.Background(), id)
			if err == nil && rec.Status != StatusCompleted {
				err = fmt.Errorf("status %s: %s", rec.Status, rec.Error)
			}
			errs <- err
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if inv.calls.Load() != n {
		t.Fatalf("handler ran %d times, want %d", inv.calls.Load(), n)
	}
}

func TestNewRequiresInvoker(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted a nil Invoker")
	}
}

func TestSubmitAfterCloseRejected(t *testing.T) {
	q, err := New(Config{Invoke: (&echoInvoker{}).invoke})
	if err != nil {
		t.Fatal(err)
	}
	q.Close()
	if _, err := q.Submit(context.Background(), "o", "m", nil, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	q.Close() // idempotent
}

func TestStatusTerminal(t *testing.T) {
	for s, want := range map[Status]bool{
		StatusPending: false, StatusRunning: false,
		StatusCompleted: true, StatusFailed: true,
	} {
		if s.Terminal() != want {
			t.Errorf("Terminal(%s) = %v", s, !want)
		}
	}
}

// TestRecordGCEvictsTerminalRecords verifies completed records are
// evicted once RecordTTL elapses and that the eviction is counted.
func TestRecordGCEvictsTerminalRecords(t *testing.T) {
	inv := &echoInvoker{}
	q := newQueue(t, Config{
		Invoke:     inv.invoke,
		Workers:    2,
		RecordTTL:  30 * time.Millisecond,
		GCInterval: 5 * time.Millisecond,
	})
	ctx := context.Background()
	ids := make([]string, 5)
	for i := range ids {
		id, err := q.Submit(ctx, fmt.Sprintf("obj-%d", i), "m", nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	for _, id := range ids {
		if _, err := q.Wait(ctx, id); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		evicted := 0
		for _, id := range ids {
			if _, err := q.Get(ctx, id); errors.Is(err, ErrNotFound) {
				evicted++
			}
		}
		if evicted == len(ids) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("records not evicted after TTL: %d/%d gone", evicted, len(ids))
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := q.Stats().Evicted; got != int64(len(ids)) {
		t.Fatalf("Stats().Evicted = %d, want %d", got, len(ids))
	}
}

// TestRecordGCSparesNonTerminalRecords verifies in-flight records
// survive sweeps even when older than the TTL.
func TestRecordGCSparesNonTerminalRecords(t *testing.T) {
	release := make(chan struct{})
	q := newQueue(t, Config{
		Invoke: func(ctx context.Context, _, _ string, _ json.RawMessage, _ map[string]string) (json.RawMessage, error) {
			select {
			case <-release:
				return json.RawMessage(`"done"`), nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		},
		Workers:    1,
		RecordTTL:  10 * time.Millisecond,
		GCInterval: 5 * time.Millisecond,
	})
	ctx := context.Background()
	id, err := q.Submit(ctx, "obj", "slow", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Let several TTLs and sweeps pass while the handler is running.
	time.Sleep(50 * time.Millisecond)
	rec, err := q.Get(ctx, id)
	if err != nil {
		t.Fatalf("running record evicted: %v", err)
	}
	if rec.Status.Terminal() {
		t.Fatalf("status = %s, want non-terminal", rec.Status)
	}
	close(release)
	if _, err := q.Wait(ctx, id); err != nil {
		t.Fatal(err)
	}
	// Now it is terminal and must eventually be evicted.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := q.Get(ctx, id); errors.Is(err, ErrNotFound) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("terminal record never evicted")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRecordGCEvictsFromBackingStore verifies eviction removes durable
// records from the backing document store, not just from memory.
func TestRecordGCEvictsFromBackingStore(t *testing.T) {
	db := kvstore.Open(kvstore.Config{})
	defer db.Close()
	inv := &echoInvoker{}
	q := newQueue(t, Config{
		Invoke:        inv.invoke,
		Workers:       1,
		Backing:       db,
		FlushInterval: 2 * time.Millisecond,
		RecordTTL:     20 * time.Millisecond,
		GCInterval:    5 * time.Millisecond,
	})
	ctx := context.Background()
	id, err := q.Submit(ctx, "obj", "m", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Wait(ctx, id); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		keys, err := db.List(ctx, recordKey(id))
		if err != nil {
			t.Fatal(err)
		}
		if len(keys) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("backing store still holds %v after TTL", keys)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestNoGCWithoutTTL verifies the zero-value config keeps records
// forever (the pre-GC behaviour).
func TestNoGCWithoutTTL(t *testing.T) {
	inv := &echoInvoker{}
	q := newQueue(t, Config{Invoke: inv.invoke, Workers: 1})
	ctx := context.Background()
	id, err := q.Submit(ctx, "obj", "m", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Wait(ctx, id); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	if _, err := q.Get(ctx, id); err != nil {
		t.Fatalf("record evicted without a TTL: %v", err)
	}
	if q.Stats().Evicted != 0 {
		t.Fatalf("Evicted = %d, want 0", q.Stats().Evicted)
	}
}

// flakyInvoker fails the first failures calls, then succeeds.
type flakyInvoker struct {
	calls    atomic.Int64
	failures int64
}

func (f *flakyInvoker) invoke(_ context.Context, _, _ string, _ json.RawMessage, _ map[string]string) (json.RawMessage, error) {
	if f.calls.Add(1) <= f.failures {
		return nil, errors.New("transient")
	}
	return json.RawMessage(`"recovered"`), nil
}

func TestRetryPolicyRecoversTransientFailure(t *testing.T) {
	inv := &flakyInvoker{failures: 2}
	q := newQueue(t, Config{
		Invoke: inv.invoke, Workers: 1,
		MaxRetries: 3, RetryBackoff: time.Millisecond,
	})
	ctx := context.Background()
	id, err := q.Submit(ctx, "obj", "m", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := q.Wait(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Status != StatusCompleted {
		t.Fatalf("status = %s (%s), want completed after retries", rec.Status, rec.Error)
	}
	if string(rec.Result) != `"recovered"` {
		t.Fatalf("result = %s", rec.Result)
	}
	if got := inv.calls.Load(); got != 3 {
		t.Fatalf("handler ran %d times, want 3 (1 + 2 retries)", got)
	}
	st := q.Stats()
	if st.Retried != 2 {
		t.Fatalf("Stats().Retried = %d, want 2", st.Retried)
	}
	if st.Failed != 0 || st.Completed != 1 {
		t.Fatalf("failed/completed = %d/%d, want 0/1", st.Failed, st.Completed)
	}
}

func TestRetryPolicyExhaustionFails(t *testing.T) {
	inv := &flakyInvoker{failures: 100}
	q := newQueue(t, Config{
		Invoke: inv.invoke, Workers: 1,
		MaxRetries: 2, RetryBackoff: time.Millisecond,
	})
	ctx := context.Background()
	id, err := q.Submit(ctx, "obj", "m", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := q.Wait(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Status != StatusFailed || rec.Error == "" {
		t.Fatalf("record = %+v, want failed with error after exhausted retries", rec)
	}
	if got := inv.calls.Load(); got != 3 {
		t.Fatalf("handler ran %d times, want 3 (1 + 2 retries)", got)
	}
	st := q.Stats()
	if st.Retried != 2 || st.Failed != 1 {
		t.Fatalf("retried/failed = %d/%d, want 2/1", st.Retried, st.Failed)
	}
}

func TestNoRetriesByDefault(t *testing.T) {
	inv := &flakyInvoker{failures: 1}
	q := newQueue(t, Config{Invoke: inv.invoke, Workers: 1})
	ctx := context.Background()
	id, err := q.Submit(ctx, "obj", "m", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := q.Wait(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Status != StatusFailed {
		t.Fatalf("status = %s, want failed (retries are opt-in)", rec.Status)
	}
	if got := inv.calls.Load(); got != 1 {
		t.Fatalf("handler ran %d times, want 1", got)
	}
	if st := q.Stats(); st.Retried != 0 {
		t.Fatalf("Stats().Retried = %d, want 0", st.Retried)
	}
}
