package asyncq

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/hpcclab/oparaca-go/internal/kvstore"
)

// echoInvoker returns the payload and counts executions.
type echoInvoker struct {
	calls atomic.Int64
}

func (e *echoInvoker) invoke(_ context.Context, objectID, member string, payload json.RawMessage, _ map[string]string) (json.RawMessage, error) {
	e.calls.Add(1)
	if len(payload) > 0 {
		return payload, nil
	}
	out, _ := json.Marshal(objectID + "." + member)
	return out, nil
}

func newQueue(t *testing.T, cfg Config) *Queue {
	t.Helper()
	q, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(q.Close)
	return q
}

func TestSubmitCompletesAndRecordsResult(t *testing.T) {
	inv := &echoInvoker{}
	q := newQueue(t, Config{Invoke: inv.invoke, Workers: 2})
	ctx := context.Background()
	id, err := q.Submit(ctx, "obj-1", "greet", json.RawMessage(`"hi"`), nil)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := q.Wait(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Status != StatusCompleted {
		t.Fatalf("status = %s (err %q), want completed", rec.Status, rec.Error)
	}
	if string(rec.Result) != `"hi"` {
		t.Fatalf("result = %s", rec.Result)
	}
	if rec.Object != "obj-1" || rec.Member != "greet" {
		t.Fatalf("record target = %s.%s", rec.Object, rec.Member)
	}
	if rec.Enqueued.IsZero() || rec.Started.IsZero() || rec.Finished.IsZero() {
		t.Fatalf("timings incomplete: %+v", rec)
	}
	if inv.calls.Load() != 1 {
		t.Fatalf("handler ran %d times, want 1", inv.calls.Load())
	}
}

func TestGetUnknownInvocation(t *testing.T) {
	q := newQueue(t, Config{Invoke: (&echoInvoker{}).invoke})
	if _, err := q.Get(context.Background(), "inv-ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestFailedInvocationRecordsError(t *testing.T) {
	boom := errors.New("boom")
	q := newQueue(t, Config{Invoke: func(context.Context, string, string, json.RawMessage, map[string]string) (json.RawMessage, error) {
		return nil, boom
	}})
	id, err := q.Submit(context.Background(), "o", "m", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := q.Wait(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Status != StatusFailed || rec.Error != "boom" {
		t.Fatalf("record = %+v", rec)
	}
	if s := q.Stats(); s.Failed != 1 || s.Completed != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestWaitRetiresWaiterEntries(t *testing.T) {
	inv := &echoInvoker{}
	q := newQueue(t, Config{Invoke: inv.invoke, Workers: 2})
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		id, err := q.Submit(ctx, fmt.Sprintf("o%d", i), "m", nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		// Two waits per invocation: the first may consume the terminal
		// wake, the second exercises the already-terminal fast path.
		for j := 0; j < 2; j++ {
			if _, err := q.Wait(ctx, id); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Waiting on an unknown id must not leave an entry behind either.
	if _, err := q.Wait(ctx, "inv-ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	q.mu.Lock()
	n := len(q.waiters)
	q.mu.Unlock()
	if n != 0 {
		t.Fatalf("%d waiter entries leaked", n)
	}
}

func TestInvalidHandlerOutputFailsRecord(t *testing.T) {
	q := newQueue(t, Config{Invoke: func(context.Context, string, string, json.RawMessage, map[string]string) (json.RawMessage, error) {
		return json.RawMessage("not-json"), nil
	}})
	id, err := q.Submit(context.Background(), "o", "m", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := q.Wait(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Status != StatusFailed || rec.Error == "" {
		t.Fatalf("record = %+v", rec)
	}
}

func TestRecordsSurviveFlushCycles(t *testing.T) {
	db := kvstore.Open(kvstore.Config{})
	t.Cleanup(db.Close)
	inv := &echoInvoker{}
	q := newQueue(t, Config{
		Invoke:        inv.invoke,
		Backing:       db,
		FlushInterval: time.Millisecond,
	})
	id, err := q.Submit(context.Background(), "o", "m", json.RawMessage(`42`), nil)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := q.Wait(context.Background(), id)
	if err != nil || rec.Status != StatusCompleted {
		t.Fatalf("wait: %v %+v", err, rec)
	}
	// Give the write-behind flusher a few cycles, then verify the
	// terminal record landed in the backing store too.
	deadline := time.Now().Add(2 * time.Second)
	for {
		doc, err := db.Get(context.Background(), "invocations/"+id)
		if err == nil {
			var persisted Record
			if err := json.Unmarshal(doc.Value, &persisted); err != nil {
				t.Fatal(err)
			}
			if persisted.Status == StatusCompleted {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("terminal record never flushed to backing store")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Still poll-able after completion.
	again, err := q.Get(context.Background(), id)
	if err != nil || string(again.Result) != `42` {
		t.Fatalf("re-poll: %v %+v", err, again)
	}
}

func TestStatsCountersMatchSubmissions(t *testing.T) {
	inv := &echoInvoker{}
	q := newQueue(t, Config{Invoke: inv.invoke, Workers: 4, Capacity: 64})
	const n = 32
	ids := make([]string, 0, n)
	for i := 0; i < n; i++ {
		id, err := q.Submit(context.Background(), fmt.Sprintf("o%d", i), "m", nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for _, id := range ids {
		if _, err := q.Wait(context.Background(), id); err != nil {
			t.Fatal(err)
		}
	}
	s := q.Stats()
	if s.Enqueued != n || s.Completed != n || s.Failed != 0 || s.Rejected != 0 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Depth != 0 || s.InFlight != 0 {
		t.Fatalf("queue not drained: %+v", s)
	}
	if s.Workers != 4 || s.Capacity < 64 {
		t.Fatalf("config echo = %+v", s)
	}
}

func TestConcurrentSubmitAndWait(t *testing.T) {
	inv := &echoInvoker{}
	q := newQueue(t, Config{Invoke: inv.invoke, Workers: 8, Capacity: 1024})
	const n = 200
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id, err := q.Submit(context.Background(), fmt.Sprintf("obj-%d", i%13), "m", nil, nil)
			if err != nil {
				errs <- err
				return
			}
			rec, err := q.Wait(context.Background(), id)
			if err == nil && rec.Status != StatusCompleted {
				err = fmt.Errorf("status %s: %s", rec.Status, rec.Error)
			}
			errs <- err
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if inv.calls.Load() != n {
		t.Fatalf("handler ran %d times, want %d", inv.calls.Load(), n)
	}
}

func TestNewRequiresInvoker(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted a nil Invoker")
	}
}

func TestSubmitAfterCloseRejected(t *testing.T) {
	q, err := New(Config{Invoke: (&echoInvoker{}).invoke})
	if err != nil {
		t.Fatal(err)
	}
	q.Close()
	if _, err := q.Submit(context.Background(), "o", "m", nil, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	q.Close() // idempotent
}

func TestStatusTerminal(t *testing.T) {
	for s, want := range map[Status]bool{
		StatusPending: false, StatusRunning: false,
		StatusCompleted: true, StatusFailed: true,
	} {
		if s.Terminal() != want {
			t.Errorf("Terminal(%s) = %v", s, !want)
		}
	}
}

// TestRecordGCEvictsTerminalRecords verifies completed records are
// evicted once RecordTTL elapses and that the eviction is counted.
func TestRecordGCEvictsTerminalRecords(t *testing.T) {
	inv := &echoInvoker{}
	q := newQueue(t, Config{
		Invoke:     inv.invoke,
		Workers:    2,
		RecordTTL:  30 * time.Millisecond,
		GCInterval: 5 * time.Millisecond,
	})
	ctx := context.Background()
	ids := make([]string, 5)
	for i := range ids {
		id, err := q.Submit(ctx, fmt.Sprintf("obj-%d", i), "m", nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	for _, id := range ids {
		if _, err := q.Wait(ctx, id); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		evicted := 0
		for _, id := range ids {
			if _, err := q.Get(ctx, id); errors.Is(err, ErrNotFound) {
				evicted++
			}
		}
		if evicted == len(ids) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("records not evicted after TTL: %d/%d gone", evicted, len(ids))
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := q.Stats().Evicted; got != int64(len(ids)) {
		t.Fatalf("Stats().Evicted = %d, want %d", got, len(ids))
	}
}

// TestRecordGCSparesNonTerminalRecords verifies in-flight records
// survive sweeps even when older than the TTL.
func TestRecordGCSparesNonTerminalRecords(t *testing.T) {
	release := make(chan struct{})
	q := newQueue(t, Config{
		Invoke: func(ctx context.Context, _, _ string, _ json.RawMessage, _ map[string]string) (json.RawMessage, error) {
			select {
			case <-release:
				return json.RawMessage(`"done"`), nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		},
		Workers:    1,
		RecordTTL:  10 * time.Millisecond,
		GCInterval: 5 * time.Millisecond,
	})
	ctx := context.Background()
	id, err := q.Submit(ctx, "obj", "slow", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Let several TTLs and sweeps pass while the handler is running.
	time.Sleep(50 * time.Millisecond)
	rec, err := q.Get(ctx, id)
	if err != nil {
		t.Fatalf("running record evicted: %v", err)
	}
	if rec.Status.Terminal() {
		t.Fatalf("status = %s, want non-terminal", rec.Status)
	}
	close(release)
	if _, err := q.Wait(ctx, id); err != nil {
		t.Fatal(err)
	}
	// Now it is terminal and must eventually be evicted.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := q.Get(ctx, id); errors.Is(err, ErrNotFound) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("terminal record never evicted")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRecordGCEvictsFromBackingStore verifies eviction removes durable
// records from the backing document store, not just from memory.
func TestRecordGCEvictsFromBackingStore(t *testing.T) {
	db := kvstore.Open(kvstore.Config{})
	defer db.Close()
	inv := &echoInvoker{}
	q := newQueue(t, Config{
		Invoke:        inv.invoke,
		Workers:       1,
		Backing:       db,
		FlushInterval: 2 * time.Millisecond,
		RecordTTL:     20 * time.Millisecond,
		GCInterval:    5 * time.Millisecond,
	})
	ctx := context.Background()
	id, err := q.Submit(ctx, "obj", "m", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Wait(ctx, id); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		keys, err := db.List(ctx, recordKey(id))
		if err != nil {
			t.Fatal(err)
		}
		if len(keys) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("backing store still holds %v after TTL", keys)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestNoGCWithoutTTL verifies the zero-value config keeps records
// forever (the pre-GC behaviour).
func TestNoGCWithoutTTL(t *testing.T) {
	inv := &echoInvoker{}
	q := newQueue(t, Config{Invoke: inv.invoke, Workers: 1})
	ctx := context.Background()
	id, err := q.Submit(ctx, "obj", "m", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Wait(ctx, id); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	if _, err := q.Get(ctx, id); err != nil {
		t.Fatalf("record evicted without a TTL: %v", err)
	}
	if q.Stats().Evicted != 0 {
		t.Fatalf("Evicted = %d, want 0", q.Stats().Evicted)
	}
}

// flakyInvoker fails the first failures calls, then succeeds.
type flakyInvoker struct {
	calls    atomic.Int64
	failures int64
}

func (f *flakyInvoker) invoke(_ context.Context, _, _ string, _ json.RawMessage, _ map[string]string) (json.RawMessage, error) {
	if f.calls.Add(1) <= f.failures {
		return nil, errors.New("transient")
	}
	return json.RawMessage(`"recovered"`), nil
}

func TestRetryPolicyRecoversTransientFailure(t *testing.T) {
	inv := &flakyInvoker{failures: 2}
	q := newQueue(t, Config{
		Invoke: inv.invoke, Workers: 1,
		MaxRetries: 3, RetryBackoff: time.Millisecond,
	})
	ctx := context.Background()
	id, err := q.Submit(ctx, "obj", "m", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := q.Wait(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Status != StatusCompleted {
		t.Fatalf("status = %s (%s), want completed after retries", rec.Status, rec.Error)
	}
	if string(rec.Result) != `"recovered"` {
		t.Fatalf("result = %s", rec.Result)
	}
	if got := inv.calls.Load(); got != 3 {
		t.Fatalf("handler ran %d times, want 3 (1 + 2 retries)", got)
	}
	st := q.Stats()
	if st.Retried != 2 {
		t.Fatalf("Stats().Retried = %d, want 2", st.Retried)
	}
	if st.Failed != 0 || st.Completed != 1 {
		t.Fatalf("failed/completed = %d/%d, want 0/1", st.Failed, st.Completed)
	}
}

func TestRetryPolicyExhaustionFails(t *testing.T) {
	inv := &flakyInvoker{failures: 100}
	q := newQueue(t, Config{
		Invoke: inv.invoke, Workers: 1,
		MaxRetries: 2, RetryBackoff: time.Millisecond,
	})
	ctx := context.Background()
	id, err := q.Submit(ctx, "obj", "m", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := q.Wait(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Status != StatusFailed || rec.Error == "" {
		t.Fatalf("record = %+v, want failed with error after exhausted retries", rec)
	}
	if got := inv.calls.Load(); got != 3 {
		t.Fatalf("handler ran %d times, want 3 (1 + 2 retries)", got)
	}
	st := q.Stats()
	if st.Retried != 2 || st.Failed != 1 {
		t.Fatalf("retried/failed = %d/%d, want 2/1", st.Retried, st.Failed)
	}
}

func TestNoRetriesByDefault(t *testing.T) {
	inv := &flakyInvoker{failures: 1}
	q := newQueue(t, Config{Invoke: inv.invoke, Workers: 1})
	ctx := context.Background()
	id, err := q.Submit(ctx, "obj", "m", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := q.Wait(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Status != StatusFailed {
		t.Fatalf("status = %s, want failed (retries are opt-in)", rec.Status)
	}
	if got := inv.calls.Load(); got != 1 {
		t.Fatalf("handler ran %d times, want 1", got)
	}
	if st := q.Stats(); st.Retried != 0 {
		t.Fatalf("Stats().Retried = %d, want 0", st.Retried)
	}
}

// --- Batched drain and quota tests -----------------------------------

// blockingQueue builds a single-worker, single-shard queue whose
// handler parks on release; started signals the first execution.
func blockingQueue(t *testing.T, cfg Config) (q *Queue, started, release chan struct{}) {
	t.Helper()
	started = make(chan struct{})
	release = make(chan struct{})
	var once sync.Once
	cfg.Workers, cfg.Shards = 1, 1
	cfg.Invoke = func(context.Context, string, string, json.RawMessage, map[string]string) (json.RawMessage, error) {
		once.Do(func() { close(started) })
		<-release
		return json.RawMessage(`"ok"`), nil
	}
	return newQueue(t, cfg), started, release
}

// TestClassQuotaRejectsAndReleases caps a class at 2 queued
// invocations: the third submission fails with ErrClassQuotaExceeded,
// and draining the backlog returns the quota.
func TestClassQuotaRejectsAndReleases(t *testing.T) {
	q, started, release := blockingQueue(t, Config{
		Capacity:    16,
		DrainBatch:  1, // quota releases at dequeue; per-task keeps it deterministic
		ClassQuotas: map[string]int{"Capped": 2},
		ClassOf: func(objectID string) string {
			if objectID == "free" {
				return "Boundless"
			}
			return "Capped"
		},
	})
	ctx := context.Background()
	// Occupy the single worker with an unquoted class so the capped
	// submissions stay queued.
	if _, err := q.Submit(ctx, "free", "m", nil, nil); err != nil {
		t.Fatal(err)
	}
	<-started
	for i := 0; i < 2; i++ {
		if _, err := q.Submit(ctx, "capped", "m", nil, nil); err != nil {
			t.Fatalf("submission %d within quota: %v", i, err)
		}
	}
	if _, err := q.Submit(ctx, "capped", "m", nil, nil); !errors.Is(err, ErrClassQuotaExceeded) {
		t.Fatalf("over-quota err = %v, want ErrClassQuotaExceeded", err)
	}
	// Unquoted classes are unaffected by the capped class's limit.
	if _, err := q.Submit(ctx, "free", "m", nil, nil); err != nil {
		t.Fatalf("unquoted class rejected: %v", err)
	}
	if s := q.Stats(); s.QuotaRejected != 1 {
		t.Fatalf("QuotaRejected = %d, want 1", s.QuotaRejected)
	}
	close(release)
	// Draining returns the quota: wait for the backlog, then resubmit.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := q.Submit(ctx, "capped", "m", nil, nil); err == nil {
			break
		} else if !errors.Is(err, ErrClassQuotaExceeded) {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatal("quota never released after drain")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestBatchedDrainCoalescesSameObject parks the worker, builds a
// same-object backlog, and verifies one multi-task pull dispatches the
// group through the batch invoker, with BatchedDrains and Coalesced
// reflecting it.
func TestBatchedDrainCoalescesSameObject(t *testing.T) {
	const backlog = 6
	var groups atomic.Int64
	var grouped atomic.Int64
	inv := &echoInvoker{}
	cfg := Config{
		Capacity:   32,
		DrainBatch: 8,
		InvokeBatch: func(ctx context.Context, objectID string, calls []Call) []CallResult {
			groups.Add(1)
			grouped.Add(int64(len(calls)))
			out := make([]CallResult, len(calls))
			for i, c := range calls {
				out[i].Output, out[i].Err = inv.invoke(c.Ctx, objectID, c.Member, c.Payload, c.Args)
			}
			return out
		},
	}
	q, started, release := blockingQueue(t, cfg)
	ctx := context.Background()
	if _, err := q.Submit(ctx, "blocker", "m", nil, nil); err != nil {
		t.Fatal(err)
	}
	<-started
	ids := make([]string, 0, backlog)
	for i := 0; i < backlog; i++ {
		id, err := q.Submit(ctx, "hot", "m", nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	close(release)
	for _, id := range ids {
		rec, err := q.Wait(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if rec.Status != StatusCompleted {
			t.Fatalf("record = %+v", rec)
		}
		if string(rec.Result) != `"hot.m"` {
			t.Fatalf("result = %s", rec.Result)
		}
	}
	if groups.Load() == 0 || grouped.Load() < 2 {
		t.Fatalf("batch invoker saw %d groups / %d calls, want a coalesced group", groups.Load(), grouped.Load())
	}
	s := q.Stats()
	if s.BatchedDrains == 0 {
		t.Fatalf("BatchedDrains = 0 after a %d-task backlog drained", backlog)
	}
	if s.Coalesced != grouped.Load() {
		t.Fatalf("Coalesced = %d, want %d (calls dispatched through groups)", s.Coalesced, grouped.Load())
	}
	if s.Completed != int64(backlog)+1 {
		t.Fatalf("Completed = %d, want %d", s.Completed, backlog+1)
	}
}

// TestBatchInvokerPanicFailsGroupOnly panics the batch invoker itself:
// the group's records fail, the worker survives, and later singleton
// work still completes.
func TestBatchInvokerPanicFailsGroupOnly(t *testing.T) {
	cfg := Config{
		Capacity:   32,
		DrainBatch: 8,
		InvokeBatch: func(context.Context, string, []Call) []CallResult {
			panic("broken batch executor")
		},
	}
	q, started, release := blockingQueue(t, cfg)
	ctx := context.Background()
	if _, err := q.Submit(ctx, "blocker", "m", nil, nil); err != nil {
		t.Fatal(err)
	}
	<-started
	ids := make([]string, 0, 4)
	for i := 0; i < 4; i++ {
		id, err := q.Submit(ctx, "hot", "m", nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	close(release)
	sawPanic := false
	for _, id := range ids {
		rec, err := q.Wait(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		switch rec.Status {
		case StatusFailed:
			sawPanic = true
			if !strings.Contains(rec.Error, "batch handler panic") {
				t.Fatalf("failed record error = %q", rec.Error)
			}
		case StatusCompleted:
			// A task drained alone (singleton groups skip the batch
			// invoker) — fine.
		default:
			t.Fatalf("record = %+v", rec)
		}
	}
	if !sawPanic {
		t.Fatal("no group ever hit the panicking batch invoker")
	}
	// The worker survived: a fresh singleton completes.
	id, err := q.Submit(ctx, "later", "m", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rec, err := q.Wait(ctx, id); err != nil || rec.Status != StatusCompleted {
		t.Fatalf("post-panic record = %v %+v", err, rec)
	}
}

// TestBatchInvokerShapeMismatchFailsGroup returns the wrong number of
// results from the batch invoker and expects a uniform shape error.
func TestBatchInvokerShapeMismatchFailsGroup(t *testing.T) {
	cfg := Config{
		Capacity:   32,
		DrainBatch: 8,
		InvokeBatch: func(context.Context, string, []Call) []CallResult {
			return make([]CallResult, 1) // wrong shape for any group >= 2
		},
	}
	q, started, release := blockingQueue(t, cfg)
	ctx := context.Background()
	if _, err := q.Submit(ctx, "blocker", "m", nil, nil); err != nil {
		t.Fatal(err)
	}
	<-started
	ids := make([]string, 0, 4)
	for i := 0; i < 4; i++ {
		id, err := q.Submit(ctx, "hot", "m", nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	close(release)
	sawShape := false
	for _, id := range ids {
		rec, err := q.Wait(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if rec.Status == StatusFailed && strings.Contains(rec.Error, "results for") {
			sawShape = true
		}
	}
	if !sawShape {
		t.Fatal("shape mismatch never surfaced in a failed record")
	}
}

// TestTerminalMetricsConsistentAcrossExitPaths verifies every terminal
// record — completed, failed, and cancelled-while-queued — contributes
// exactly one queue.exec sample, so the histogram count always equals
// completed+failed (the cancelled path used to skip it).
func TestTerminalMetricsConsistentAcrossExitPaths(t *testing.T) {
	q, started, release := blockingQueue(t, Config{Capacity: 16, DrainBatch: 1})
	ctx := context.Background()
	if _, err := q.Submit(ctx, "blocker", "m", nil, nil); err != nil {
		t.Fatal(err)
	}
	<-started
	cctx, cancel := context.WithCancel(ctx)
	victimID, err := q.Submit(cctx, "victim", "m", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	close(release)
	if rec, err := q.Wait(ctx, victimID); err != nil || rec.Status != StatusFailed {
		t.Fatalf("victim record = %v %+v", err, rec)
	}
	// Drain fully so the blocker's terminal bookkeeping is done too.
	id, err := q.Submit(ctx, "after", "m", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Wait(ctx, id); err != nil {
		t.Fatal(err)
	}
	s := q.Stats()
	if got, want := q.Metrics().Histogram("queue.exec").Count(), s.Completed+s.Failed; got != want {
		t.Fatalf("queue.exec samples = %d, terminal records = %d (completed %d + failed %d)",
			got, want, s.Completed, s.Failed)
	}
	if s.InFlight != 0 {
		t.Fatalf("InFlight = %d after drain, want 0", s.InFlight)
	}
}

// TestNewRejectsQuotasWithoutClassOf: quotas with no class resolver
// would silently never fire, so construction must fail.
func TestNewRejectsQuotasWithoutClassOf(t *testing.T) {
	_, err := New(Config{
		Invoke:      (&echoInvoker{}).invoke,
		ClassQuotas: map[string]int{"C": 1},
	})
	if err == nil || !strings.Contains(err.Error(), "ClassOf") {
		t.Fatalf("err = %v, want ClassOf requirement error", err)
	}
}
