package runtime

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/hpcclab/oparaca-go/internal/cluster"
	"github.com/hpcclab/oparaca-go/internal/faas"
	"github.com/hpcclab/oparaca-go/internal/invoker"
	"github.com/hpcclab/oparaca-go/internal/kvstore"
	"github.com/hpcclab/oparaca-go/internal/memtable"
	"github.com/hpcclab/oparaca-go/internal/model"
	"github.com/hpcclab/oparaca-go/internal/objectstore"
	"github.com/hpcclab/oparaca-go/internal/vclock"
)

// counterClass is a class with a numeric counter and an increment
// function.
const counterYAML = `classes:
  - name: Counter
    keySpecs:
      - name: value
        kind: number
        default: 0
    functions:
      - name: incr
        image: img/incr
      - name: get
        image: img/get
    dataflows:
      - name: doubleIncr
        steps:
          - name: one
            function: incr
          - name: two
            function: incr
            after: [one]
`

func resolvedClass(t *testing.T, yaml, name string) *model.Class {
	t.Helper()
	pkg, err := model.ParseYAML([]byte(yaml))
	if err != nil {
		t.Fatal(err)
	}
	classes, err := model.Resolve(pkg, nil)
	if err != nil {
		t.Fatal(err)
	}
	c, ok := classes[name]
	if !ok {
		t.Fatalf("class %q missing", name)
	}
	return c
}

// testInfra builds shared infrastructure with registered handlers.
func testInfra(t *testing.T) Infra {
	t.Helper()
	c := cluster.New(cluster.Config{OpsPerMilliCPU: 1000})
	for i := 0; i < 2; i++ {
		if _, err := c.AddNode(fmt.Sprintf("vm-%d", i), cluster.Resources{MilliCPU: 8000, MemoryMB: 16384}); err != nil {
			t.Fatal(err)
		}
	}
	reg := invoker.NewRegistry()
	reg.Register("img/incr", invoker.HandlerFunc(func(_ context.Context, task invoker.Task) (invoker.Result, error) {
		var n float64
		if raw, ok := task.State["value"]; ok {
			_ = json.Unmarshal(raw, &n)
		}
		out, _ := json.Marshal(n + 1)
		return invoker.Result{Output: out, State: map[string]json.RawMessage{"value": out}}, nil
	}))
	reg.Register("img/get", invoker.HandlerFunc(func(_ context.Context, task invoker.Task) (invoker.Result, error) {
		return invoker.Result{Output: task.State["value"]}, nil
	}))
	reg.Register("img/fail", invoker.HandlerFunc(func(context.Context, invoker.Task) (invoker.Result, error) {
		return invoker.Result{}, errors.New("deliberate")
	}))
	reg.Register("img/rogue", invoker.HandlerFunc(func(context.Context, invoker.Task) (invoker.Result, error) {
		return invoker.Result{State: map[string]json.RawMessage{"undeclared": json.RawMessage(`1`)}}, nil
	}))
	db := kvstore.Open(kvstore.Config{})
	t.Cleanup(db.Close)
	return Infra{
		Cluster:       c,
		Transport:     invoker.NewLocal(reg),
		Backing:       db,
		ScaleInterval: 10 * time.Millisecond,
		IdleTimeout:   time.Minute,
		ColdStart:     5 * time.Millisecond,
	}
}

func stdTemplate() Template {
	return Template{
		Name: "test", EngineMode: faas.ModeDeployment, TableMode: memtable.ModeWriteBehind,
		FlushInterval: 10 * time.Millisecond, DefaultConcurrency: 16, InitialScale: 1, MaxScale: 8,
	}
}

func newRuntime(t *testing.T, yaml, class string) *ClassRuntime {
	t.Helper()
	rt, err := New(testInfra(t), resolvedClass(t, yaml, class), stdTemplate())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt
}

func TestMatchConditions(t *testing.T) {
	yes, no := true, false
	persistent := &model.Class{Name: "P", QoS: model.QoS{ThroughputRPS: 2000, LatencyMs: 20}}
	ephemeral := &model.Class{Name: "E", Constraint: model.Constraints{Persistent: &no}}
	cases := []struct {
		name  string
		m     Match
		c     *model.Class
		match bool
	}{
		{"empty matches all", Match{}, persistent, true},
		{"persistent true", Match{Persistent: &yes}, persistent, true},
		{"persistent false vs persistent class", Match{Persistent: &no}, persistent, false},
		{"persistent false vs ephemeral", Match{Persistent: &no}, ephemeral, true},
		{"throughput met", Match{MinThroughputRPS: 1000}, persistent, true},
		{"throughput unmet", Match{MinThroughputRPS: 5000}, persistent, false},
		{"latency met", Match{MaxLatencyMs: 50}, persistent, true},
		{"latency unmet", Match{MaxLatencyMs: 10}, persistent, false},
		{"latency unset on class", Match{MaxLatencyMs: 50}, ephemeral, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := c.m.Matches(c.c); got != c.match {
				t.Fatalf("Matches = %v, want %v", got, c.match)
			}
		})
	}
}

func TestTemplateRegistrySelection(t *testing.T) {
	reg, err := NewTemplateRegistry(DefaultTemplates()...)
	if err != nil {
		t.Fatal(err)
	}
	no := false
	cases := []struct {
		class *model.Class
		want  string
	}{
		{&model.Class{Name: "A"}, "standard"},
		{&model.Class{Name: "B", Constraint: model.Constraints{Persistent: &no}}, "ephemeral"},
		{&model.Class{Name: "C", QoS: model.QoS{ThroughputRPS: 5000}}, "high-throughput"},
		{&model.Class{Name: "D", QoS: model.QoS{LatencyMs: 10}}, "low-latency"},
	}
	for _, c := range cases {
		tmpl, err := reg.Select(c.class)
		if err != nil {
			t.Fatalf("Select(%s): %v", c.class.Name, err)
		}
		if tmpl.Name != c.want {
			t.Errorf("Select(%s) = %q, want %q", c.class.Name, tmpl.Name, c.want)
		}
	}
}

func TestTemplateRegistryPriorityOrder(t *testing.T) {
	a := Template{Name: "low", Priority: 1, EngineMode: faas.ModeDeployment, TableMode: memtable.ModeMemoryOnly, InitialScale: 1}
	b := Template{Name: "high", Priority: 10, EngineMode: faas.ModeDeployment, TableMode: memtable.ModeMemoryOnly, InitialScale: 1}
	reg, err := NewTemplateRegistry(a, b)
	if err != nil {
		t.Fatal(err)
	}
	got, err := reg.Select(&model.Class{Name: "X"})
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "high" {
		t.Fatalf("Select = %q, want priority winner", got.Name)
	}
}

func TestTemplateRegistryDuplicateName(t *testing.T) {
	a := Template{Name: "dup", EngineMode: faas.ModeDeployment, TableMode: memtable.ModeMemoryOnly, InitialScale: 1}
	reg, err := NewTemplateRegistry(a)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Add(a); err == nil {
		t.Fatal("duplicate template accepted")
	}
}

func TestTemplateValidate(t *testing.T) {
	bad := []Template{
		{},
		{Name: "x"},
		{Name: "x", EngineMode: faas.ModeKnative},
		{Name: "x", EngineMode: faas.ModeDeployment, TableMode: memtable.ModeMemoryOnly, InitialScale: 0},
	}
	for i, tmpl := range bad {
		if err := tmpl.Validate(); err == nil {
			t.Errorf("template %d validated", i)
		}
	}
}

func TestTemplateRegistryNoMatch(t *testing.T) {
	yes := true
	only := Template{
		Name: "picky", Match: Match{Persistent: &yes, MinThroughputRPS: 1e6},
		EngineMode: faas.ModeDeployment, TableMode: memtable.ModeMemoryOnly, InitialScale: 1,
	}
	reg, _ := NewTemplateRegistry(only)
	if _, err := reg.Select(&model.Class{Name: "X"}); err == nil {
		t.Fatal("Select with no match succeeded")
	}
}

func TestInvokeStatefulRoundTrip(t *testing.T) {
	rt := newRuntime(t, counterYAML, "Counter")
	ctx := context.Background()
	if err := rt.InitObjectState(ctx, "obj1"); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		out, err := rt.Invoke(ctx, "obj1", "incr", nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		var n float64
		json.Unmarshal(out, &n)
		if n != float64(i) {
			t.Fatalf("incr #%d = %v", i, n)
		}
	}
	// State persisted across invocations.
	v, err := rt.GetState(ctx, "obj1", "value")
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "3" {
		t.Fatalf("state value = %s", v)
	}
}

func TestObjectsAreIsolated(t *testing.T) {
	rt := newRuntime(t, counterYAML, "Counter")
	ctx := context.Background()
	rt.InitObjectState(ctx, "a")
	rt.InitObjectState(ctx, "b")
	rt.Invoke(ctx, "a", "incr", nil, nil)
	rt.Invoke(ctx, "a", "incr", nil, nil)
	rt.Invoke(ctx, "b", "incr", nil, nil)
	va, _ := rt.GetState(ctx, "a", "value")
	vb, _ := rt.GetState(ctx, "b", "value")
	if string(va) != "2" || string(vb) != "1" {
		t.Fatalf("state leaked across objects: a=%s b=%s", va, vb)
	}
}

func TestInvokeUnknownFunction(t *testing.T) {
	rt := newRuntime(t, counterYAML, "Counter")
	if _, err := rt.Invoke(context.Background(), "o", "ghost", nil, nil); !errors.Is(err, ErrFunctionUnknown) {
		t.Fatalf("err = %v", err)
	}
}

func TestInvokeRejectsUndeclaredStateWrites(t *testing.T) {
	const rogueYAML = `classes:
  - name: Rogue
    keySpecs:
      - name: legit
    functions:
      - name: hack
        image: img/rogue
`
	rt := newRuntime(t, rogueYAML, "Rogue")
	_, err := rt.Invoke(context.Background(), "o", "hack", nil, nil)
	if err == nil || !strings.Contains(err.Error(), "undeclared") {
		t.Fatalf("err = %v, want undeclared-key rejection", err)
	}
}

func TestDefaultValueVisibleBeforeInit(t *testing.T) {
	rt := newRuntime(t, counterYAML, "Counter")
	v, err := rt.GetState(context.Background(), "fresh", "value")
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "0" {
		t.Fatalf("default = %s", v)
	}
}

func TestGetStateUnknownKey(t *testing.T) {
	rt := newRuntime(t, counterYAML, "Counter")
	if _, err := rt.GetState(context.Background(), "o", "nope"); err == nil {
		t.Fatal("unknown key read succeeded")
	}
}

func TestPutState(t *testing.T) {
	rt := newRuntime(t, counterYAML, "Counter")
	ctx := context.Background()
	if err := rt.PutState(ctx, "o", "value", json.RawMessage(`42`)); err != nil {
		t.Fatal(err)
	}
	v, _ := rt.GetState(ctx, "o", "value")
	if string(v) != "42" {
		t.Fatalf("value = %s", v)
	}
	if err := rt.PutState(ctx, "o", "ghost", json.RawMessage(`1`)); err == nil {
		t.Fatal("put to unknown key succeeded")
	}
}

func TestDeleteObjectState(t *testing.T) {
	rt := newRuntime(t, counterYAML, "Counter")
	ctx := context.Background()
	rt.PutState(ctx, "o", "value", json.RawMessage(`5`))
	if err := rt.DeleteObjectState(ctx, "o"); err != nil {
		t.Fatal(err)
	}
	// Reads fall back to the default after deletion.
	v, err := rt.GetState(ctx, "o", "value")
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "0" {
		t.Fatalf("value after delete = %s", v)
	}
}

func TestInvokeDataflow(t *testing.T) {
	rt := newRuntime(t, counterYAML, "Counter")
	ctx := context.Background()
	rt.InitObjectState(ctx, "o")
	res, err := rt.InvokeDataflow(ctx, "o", "doubleIncr", nil)
	if err != nil {
		t.Fatal(err)
	}
	var n float64
	json.Unmarshal(res.Output, &n)
	if n != 2 {
		t.Fatalf("dataflow output = %v, want 2", n)
	}
	v, _ := rt.GetState(ctx, "o", "value")
	if string(v) != "2" {
		t.Fatalf("state after dataflow = %s", v)
	}
}

func TestInvokeDataflowUnknown(t *testing.T) {
	rt := newRuntime(t, counterYAML, "Counter")
	if _, err := rt.InvokeDataflow(context.Background(), "o", "ghost", nil); !errors.Is(err, ErrDataflowUnknown) {
		t.Fatalf("err = %v", err)
	}
}

func TestStatePersistsToBackingStore(t *testing.T) {
	infra := testInfra(t)
	rt, err := New(infra, resolvedClass(t, counterYAML, "Counter"), stdTemplate())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	rt.Invoke(ctx, "o", "incr", nil, nil)
	rt.Close() // final flush
	keys, err := infra.Backing.List(ctx, "state/Counter/o/")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 {
		t.Fatalf("backing keys = %v", keys)
	}
}

func TestPresignedFileRefsInTask(t *testing.T) {
	const fileYAML = `classes:
  - name: Image
    keySpecs:
      - name: image
        kind: file
    functions:
      - name: inspect
        image: img/inspect
`
	infra := testInfra(t)
	store := newObjectStore(t)
	infra.Objects = store.store
	infra.ObjectsBaseURL = store.url

	var captured invoker.Task
	reg := invoker.NewRegistry()
	reg.Register("img/inspect", invoker.HandlerFunc(func(_ context.Context, task invoker.Task) (invoker.Result, error) {
		captured = task
		return invoker.Result{}, nil
	}))
	infra.Transport = invoker.NewLocal(reg)

	rt, err := New(infra, resolvedClass(t, fileYAML, "Image"), stdTemplate())
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if _, err := rt.Invoke(context.Background(), "o1", "inspect", nil, nil); err != nil {
		t.Fatal(err)
	}
	get, put := captured.Refs["image"], captured.Refs["image!put"]
	if !strings.Contains(get, "X-Oprc-Signature=") || !strings.Contains(put, "X-Oprc-Signature=") {
		t.Fatalf("refs not presigned: %v", captured.Refs)
	}
	if !strings.Contains(get, "cls-image/o1/image") {
		t.Fatalf("GET ref path wrong: %s", get)
	}
}

func TestTemplateDrivesTableMode(t *testing.T) {
	infra := testInfra(t)
	tmpl := stdTemplate()
	tmpl.TableMode = memtable.ModeMemoryOnly
	rt, err := New(infra, resolvedClass(t, counterYAML, "Counter"), tmpl)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if rt.Table().Mode() != memtable.ModeMemoryOnly {
		t.Fatalf("table mode = %v", rt.Table().Mode())
	}
	ctx := context.Background()
	rt.Invoke(ctx, "o", "incr", nil, nil)
	rt.Flush(ctx)
	// Nothing must reach the backing store.
	keys, _ := infra.Backing.List(ctx, "state/")
	if len(keys) != 0 {
		t.Fatalf("memory-only runtime persisted: %v", keys)
	}
}

func TestRuntimeMetricsRecorded(t *testing.T) {
	rt := newRuntime(t, counterYAML, "Counter")
	ctx := context.Background()
	rt.Invoke(ctx, "o", "incr", nil, nil)
	snap := rt.Metrics().Snapshot()
	if snap.Counters["invoke.total"] != 1 {
		t.Fatalf("invoke.total = %d", snap.Counters["invoke.total"])
	}
	if snap.Histograms["invoke.latency"].Count != 1 {
		t.Fatalf("latency samples = %d", snap.Histograms["invoke.latency"].Count)
	}
}

func TestNewValidation(t *testing.T) {
	infra := testInfra(t)
	class := resolvedClass(t, counterYAML, "Counter")
	if _, err := New(infra, nil, stdTemplate()); err == nil {
		t.Fatal("nil class accepted")
	}
	if _, err := New(Infra{}, class, stdTemplate()); err == nil {
		t.Fatal("empty infra accepted")
	}
	badTmpl := stdTemplate()
	badTmpl.TableMode = memtable.ModeWriteBehind
	noBacking := infra
	noBacking.Backing = nil
	if _, err := New(noBacking, class, badTmpl); err == nil {
		t.Fatal("persistent template without backing accepted")
	}
}

// objectStoreFixture serves an object store over HTTP for tests.
type objectStoreFixture struct {
	store *objectstore.Store
	url   string
}

func newObjectStore(t *testing.T) objectStoreFixture {
	t.Helper()
	s := objectstore.New("test-secret", nil)
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	return objectStoreFixture{store: s, url: srv.URL}
}

// TestColdStateLoadIsOneBatchRead verifies the invocation path loads a
// multi-key object's cold state in a single backing-store round trip.
func TestColdStateLoadIsOneBatchRead(t *testing.T) {
	const wideYAML = `classes:
  - name: Wide
    keySpecs:
      - name: a
      - name: b
      - name: c
      - name: d
    functions:
      - name: get
        image: img/get
`
	infra := testInfra(t)
	rt, err := New(infra, resolvedClass(t, wideYAML, "Wide"), stdTemplate())
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	ctx := context.Background()
	// Seed all four keys straight into the backing store so the first
	// invocation misses every one of them.
	seed := make(map[string]json.RawMessage, 4)
	for _, k := range []string{"a", "b", "c", "d"} {
		seed["state/Wide/o1/"+k] = json.RawMessage(`1`)
	}
	if err := infra.Backing.BatchPut(ctx, seed); err != nil {
		t.Fatal(err)
	}
	before := infra.Backing.Stats()
	if _, err := rt.Invoke(ctx, "o1", "get", nil, nil); err != nil {
		t.Fatal(err)
	}
	after := infra.Backing.Stats()
	if got := after.ReadOps - before.ReadOps; got != 1 {
		t.Fatalf("cold 4-key load cost %d read ops, want 1", got)
	}
	if got := after.DocsRead - before.DocsRead; got != 4 {
		t.Fatalf("docs read = %d, want 4", got)
	}
}

// TestRogueDeltaPersistsNothing verifies an undeclared key anywhere in
// the state delta rejects the whole delta: no partial writes.
func TestRogueDeltaPersistsNothing(t *testing.T) {
	const mixedYAML = `classes:
  - name: Mixed
    keySpecs:
      - name: legit
    functions:
      - name: hack
        image: img/mixed-rogue
`
	infra := testInfra(t)
	reg := invoker.NewRegistry()
	reg.Register("img/mixed-rogue", invoker.HandlerFunc(func(context.Context, invoker.Task) (invoker.Result, error) {
		return invoker.Result{State: map[string]json.RawMessage{
			"legit":      json.RawMessage(`1`),
			"undeclared": json.RawMessage(`1`),
		}}, nil
	}))
	infra.Transport = invoker.NewLocal(reg)
	rt, err := New(infra, resolvedClass(t, mixedYAML, "Mixed"), stdTemplate())
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	ctx := context.Background()
	if _, err := rt.Invoke(ctx, "o", "hack", nil, nil); err == nil {
		t.Fatal("rogue delta accepted")
	}
	if _, err := rt.GetState(ctx, "o", "legit"); !errors.Is(err, memtable.ErrNotFound) {
		t.Fatalf("legit = %v, want not-found (no partial persist)", err)
	}
}

// TestConcurrentInvocationsOnOneObjectAreExact is the lost-update
// regression test at the runtime layer: concurrent increments on one
// object must all land. The handler yields between state load and
// merge (as any real function with nonzero service time does), which
// reliably opens the read-modify-write race window even on GOMAXPROCS=1
// — without per-object serialization this test loses updates.
func TestConcurrentInvocationsOnOneObjectAreExact(t *testing.T) {
	infra := testInfra(t)
	reg := invoker.NewRegistry()
	reg.Register("img/incr", invoker.HandlerFunc(func(ctx context.Context, task invoker.Task) (invoker.Result, error) {
		var n float64
		if raw, ok := task.State["value"]; ok {
			_ = json.Unmarshal(raw, &n)
		}
		select { // yield mid-window, like a real function's service time
		case <-time.After(100 * time.Microsecond):
		case <-ctx.Done():
			return invoker.Result{}, ctx.Err()
		}
		out, _ := json.Marshal(n + 1)
		return invoker.Result{Output: out, State: map[string]json.RawMessage{"value": out}}, nil
	}))
	infra.Transport = invoker.NewLocal(reg)
	rt, err := New(infra, resolvedClass(t, counterYAML, "Counter"), stdTemplate())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	ctx := context.Background()
	if err := rt.InitObjectState(ctx, "hot"); err != nil {
		t.Fatal(err)
	}
	const (
		clients = 8
		perEach = 25
	)
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perEach; i++ {
				if _, err := rt.Invoke(ctx, "hot", "incr", nil, nil); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	v, err := rt.GetState(ctx, "hot", "value")
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != fmt.Sprintf("%d", clients*perEach) {
		t.Fatalf("counter = %s, want %d (lost updates)", v, clients*perEach)
	}
}

// TestPresignedRefsCachedUntilHalfTTL verifies ref reuse within the
// refresh window, regeneration after it, and invalidation on object
// deletion.
func TestPresignedRefsCachedUntilHalfTTL(t *testing.T) {
	const fileYAML = `classes:
  - name: Doc
    keySpecs:
      - name: blob
        kind: file
    functions:
      - name: peek
        image: img/peek
`
	clock := vclock.NewManual(time.Unix(1000, 0))
	infra := testInfra(t)
	infra.Clock = clock
	infra.PresignTTL = 10 * time.Minute
	infra.Objects = objectstore.New("secret", clock)
	infra.ObjectsBaseURL = "http://127.0.0.1:9"

	var refs []map[string]string
	reg := invoker.NewRegistry()
	reg.Register("img/peek", invoker.HandlerFunc(func(_ context.Context, task invoker.Task) (invoker.Result, error) {
		refs = append(refs, task.Refs)
		return invoker.Result{}, nil
	}))
	infra.Transport = invoker.NewLocal(reg)
	rt, err := New(infra, resolvedClass(t, fileYAML, "Doc"), stdTemplate())
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	ctx := context.Background()
	invoke := func() {
		t.Helper()
		if _, err := rt.Invoke(ctx, "o1", "peek", nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	invoke()
	clock.Advance(time.Minute) // well inside TTL/2
	invoke()
	if refs[0]["blob"] != refs[1]["blob"] || refs[0]["blob!put"] != refs[1]["blob!put"] {
		t.Fatal("refs regenerated inside the refresh window")
	}
	clock.Advance(5 * time.Minute) // past TTL/2 since generation
	invoke()
	if refs[1]["blob"] == refs[2]["blob"] {
		t.Fatal("refs not refreshed after half the presign TTL")
	}
	// The refreshed URL must still verify against the object store.
	if !strings.Contains(refs[2]["blob"], "X-Oprc-Signature=") {
		t.Fatalf("refreshed ref unsigned: %s", refs[2]["blob"])
	}
	// Deletion invalidates the cache entry immediately. Advance the
	// clock inside the refresh window first: a surviving cache entry
	// would replay the old URL, while regeneration signs a new expiry.
	if err := rt.DeleteObjectState(ctx, "o1"); err != nil {
		t.Fatal(err)
	}
	clock.Advance(time.Minute)
	invoke()
	if refs[2]["blob"] == refs[3]["blob"] {
		t.Fatal("refs survived object deletion")
	}
}

// TestTaskIDsUnique verifies the atomic-counter ID scheme never reuses
// an ID across rapid-fire invocations.
func TestTaskIDsUnique(t *testing.T) {
	infra := testInfra(t)
	seen := make(map[string]bool)
	var mu sync.Mutex
	reg := invoker.NewRegistry()
	reg.Register("img/idcheck", invoker.HandlerFunc(func(_ context.Context, task invoker.Task) (invoker.Result, error) {
		mu.Lock()
		defer mu.Unlock()
		if seen[task.ID] {
			return invoker.Result{}, fmt.Errorf("duplicate task ID %q", task.ID)
		}
		seen[task.ID] = true
		return invoker.Result{}, nil
	}))
	infra.Transport = invoker.NewLocal(reg)
	const idYAML = `classes:
  - name: ID
    functions:
      - name: f
        image: img/idcheck
`
	rt, err := New(infra, resolvedClass(t, idYAML, "ID"), stdTemplate())
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if _, err := rt.Invoke(ctx, "o", "f", nil, nil); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if len(seen) != 800 {
		t.Fatalf("unique IDs = %d, want 800", len(seen))
	}
}

func TestIsNull(t *testing.T) {
	cases := []struct {
		in   string
		want bool
	}{
		{"", true},
		{"null", true},
		{" null ", true},
		{"\t\nnull\r ", true},
		{"  ", true},
		{"0", false},
		{"false", false},
		{`"null"`, false},
		{"nul", false},
		{"nulll", false},
		{"[null]", false},
	}
	for _, c := range cases {
		if got := isNull(json.RawMessage(c.in)); got != c.want {
			t.Errorf("isNull(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

// TestDeleteObjectStateSerializesWithInvocations verifies an in-flight
// invocation's delta merge cannot resurrect a concurrently deleted
// object: DeleteObjectState waits on the object's stripe, so it runs
// strictly after the merge and the final state is gone.
func TestDeleteObjectStateSerializesWithInvocations(t *testing.T) {
	infra := testInfra(t)
	reg := invoker.NewRegistry()
	reg.Register("img/incr", invoker.HandlerFunc(func(ctx context.Context, task invoker.Task) (invoker.Result, error) {
		select {
		case <-time.After(30 * time.Millisecond):
		case <-ctx.Done():
			return invoker.Result{}, ctx.Err()
		}
		return invoker.Result{Output: json.RawMessage(`1`),
			State: map[string]json.RawMessage{"value": json.RawMessage(`1`)}}, nil
	}))
	infra.Transport = invoker.NewLocal(reg)
	rt, err := New(infra, resolvedClass(t, counterYAML, "Counter"), stdTemplate())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	ctx := context.Background()
	if err := rt.InitObjectState(ctx, "o"); err != nil {
		t.Fatal(err)
	}
	invoked := make(chan error, 1)
	go func() {
		_, err := rt.Invoke(ctx, "o", "incr", nil, nil)
		invoked <- err
	}()
	time.Sleep(10 * time.Millisecond) // handler is mid-execution
	if err := rt.DeleteObjectState(ctx, "o"); err != nil {
		t.Fatal(err)
	}
	if err := <-invoked; err != nil {
		t.Fatal(err)
	}
	// The delete must have run after the merge: only the class default
	// remains, not the merged value.
	v, err := rt.GetState(ctx, "o", "value")
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "0" {
		t.Fatalf("state after delete = %s, want default 0 (merge resurrected deleted object)", v)
	}
}
