package runtime

// Tests for the optimistic-concurrency invocation path: mode
// resolution, the readonly fast path, lock-free commit exactness, and
// the adaptive fallback.

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/hpcclab/oparaca-go/internal/invoker"
	"github.com/hpcclab/oparaca-go/internal/model"
)

// occCounterYAML declares a counter class with a readonly peek method
// and an explicit concurrency mode slot filled in per test.
const occCounterYAML = `classes:
  - name: OCounter
    concurrencyMode: %s
    keySpecs:
      - name: value
        kind: number
        default: 0
    functions:
      - name: incr
        image: img/incr
      - name: peek
        image: img/get
        readonly: true
      - name: sneak
        image: img/incr
        readonly: true
`

func newOCCRuntime(t *testing.T, mode model.ConcurrencyMode) *ClassRuntime {
	t.Helper()
	yaml := fmt.Sprintf(occCounterYAML, mode)
	rt, err := New(testInfra(t), resolvedClass(t, yaml, "OCounter"), stdTemplate())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt
}

func TestConcurrencyModeResolution(t *testing.T) {
	// Class declaration wins.
	rt := newOCCRuntime(t, model.ConcurrencyLocked)
	if got := rt.ConcurrencyMode(); got != model.ConcurrencyLocked {
		t.Fatalf("mode = %q, want locked", got)
	}
	// Infra default applies when the class is silent.
	infra := testInfra(t)
	infra.ConcurrencyMode = model.ConcurrencyOCC
	rt2, err := New(infra, resolvedClass(t, counterYAML, "Counter"), stdTemplate())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt2.Close)
	if got := rt2.ConcurrencyMode(); got != model.ConcurrencyOCC {
		t.Fatalf("mode = %q, want occ (infra default)", got)
	}
	// Adaptive is the default of defaults.
	rt3 := newRuntime(t, counterYAML, "Counter")
	if got := rt3.ConcurrencyMode(); got != model.ConcurrencyAdaptive {
		t.Fatalf("mode = %q, want adaptive", got)
	}
	// A bogus platform-level default is rejected, not silently routed.
	bad := testInfra(t)
	bad.ConcurrencyMode = "lock"
	if _, err := New(bad, resolvedClass(t, counterYAML, "Counter"), stdTemplate()); err == nil ||
		!strings.Contains(err.Error(), "concurrency mode") {
		t.Fatalf("invalid infra mode: err = %v, want invalid-mode error", err)
	}
}

// TestOCCHotObjectExactness bumps one object from concurrent clients
// in pure OCC mode: version-validated commit retries must preserve
// exactness without any per-object lock.
func TestOCCHotObjectExactness(t *testing.T) {
	const clients, perEach = 4, 25
	rt := newOCCRuntime(t, model.ConcurrencyOCC)
	ctx := context.Background()
	if err := rt.InitObjectState(ctx, "o"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perEach; i++ {
				if _, err := rt.Invoke(ctx, "o", "incr", nil, nil); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	v, err := rt.GetState(ctx, "o", "value")
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != fmt.Sprintf("%d", clients*perEach) {
		t.Fatalf("counter = %s, want %d", v, clients*perEach)
	}
	cs := rt.ConcurrencyStats()
	if cs.Commits != clients*perEach {
		t.Fatalf("commits = %d, want %d", cs.Commits, clients*perEach)
	}
	if cs.Mode != "occ" {
		t.Fatalf("stats mode = %q, want occ", cs.Mode)
	}
}

// TestReadonlyFastPath verifies the annotated read path serves from
// the table without committing, and that a readonly function writing
// state fails the invocation instead of silently mutating.
func TestReadonlyFastPath(t *testing.T) {
	rt := newOCCRuntime(t, model.ConcurrencyAdaptive)
	ctx := context.Background()
	if err := rt.InitObjectState(ctx, "o"); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Invoke(ctx, "o", "incr", nil, nil); err != nil {
		t.Fatal(err)
	}
	out, err := rt.Invoke(ctx, "o", "peek", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "1" {
		t.Fatalf("peek = %s, want 1", out)
	}
	if got := rt.ConcurrencyStats().Readonly; got != 1 {
		t.Fatalf("readonly invocations = %d, want 1", got)
	}
	// sneak is annotated readonly but its handler returns a delta.
	if _, err := rt.Invoke(ctx, "o", "sneak", nil, nil); err == nil ||
		!strings.Contains(err.Error(), "readonly") {
		t.Fatalf("readonly function returning a delta: err = %v, want readonly contract error", err)
	}
	// The sneak delta must not have landed.
	if v, err := rt.GetState(ctx, "o", "value"); err != nil || string(v) != "1" {
		t.Fatalf("state after rejected readonly write = %s (%v), want 1", v, err)
	}
}

// TestReadonlyConcurrentWithWriters interleaves readonly peeks with
// write invocations: reads must never block on the write path and
// writes must stay exact.
func TestReadonlyConcurrentWithWriters(t *testing.T) {
	const writers, readers, perEach = 2, 4, 20
	rt := newOCCRuntime(t, model.ConcurrencyOCC)
	ctx := context.Background()
	if err := rt.InitObjectState(ctx, "o"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, writers+readers)
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perEach; i++ {
				if _, err := rt.Invoke(ctx, "o", "incr", nil, nil); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perEach; i++ {
				out, err := rt.Invoke(ctx, "o", "peek", nil, nil)
				if err != nil {
					errs <- err
					return
				}
				var n float64
				if err := json.Unmarshal(out, &n); err != nil {
					errs <- fmt.Errorf("peek output %q: %w", out, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	v, err := rt.GetState(ctx, "o", "value")
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != fmt.Sprintf("%d", writers*perEach) {
		t.Fatalf("counter = %s, want %d", v, writers*perEach)
	}
}

// TestAdaptiveFallsBackAndRecovers drives a write-hot object in
// adaptive mode long enough for the abort EWMA to degrade it to the
// barrier, then verifies single-threaded traffic brings it back to
// lock-free commits.
func TestAdaptiveFallsBackAndRecovers(t *testing.T) {
	const clients, perEach = 8, 25
	infra := testInfra(t)
	reg := invoker.NewRegistry()
	reg.Register("img/slowincr", invoker.HandlerFunc(func(ctx context.Context, task invoker.Task) (invoker.Result, error) {
		var n float64
		if raw, ok := task.State["value"]; ok {
			_ = json.Unmarshal(raw, &n)
		}
		select {
		case <-time.After(200 * time.Microsecond):
		case <-ctx.Done():
			return invoker.Result{}, ctx.Err()
		}
		out, _ := json.Marshal(n + 1)
		return invoker.Result{Output: out, State: map[string]json.RawMessage{"value": out}}, nil
	}))
	infra.Transport = invoker.NewLocal(reg)
	yaml := `classes:
  - name: Hot
    concurrencyMode: adaptive
    keySpecs:
      - name: value
        kind: number
        default: 0
    functions:
      - name: incr
        image: img/slowincr
        concurrency: 64
`
	rt, err := New(infra, resolvedClass(t, yaml, "Hot"), stdTemplate())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	ctx := context.Background()
	if err := rt.InitObjectState(ctx, "h"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perEach; i++ {
				if _, err := rt.Invoke(ctx, "h", "incr", nil, nil); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	v, err := rt.GetState(ctx, "h", "value")
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != fmt.Sprintf("%d", clients*perEach) {
		t.Fatalf("counter = %s, want %d", v, clients*perEach)
	}
	cs := rt.ConcurrencyStats()
	if cs.Aborts == 0 {
		t.Fatalf("expected CAS aborts under %d contending clients, got none (stats %+v)", clients, cs)
	}
	if cs.Fallbacks == 0 {
		t.Fatalf("expected adaptive fallbacks under contention, got none (stats %+v)", cs)
	}
	// Quiet, uncontended traffic must decay the abort EWMA until the
	// object leaves the degraded regime.
	tr := rt.contentionFor("h")
	for i := 0; i < 200 && tr.useLocked(); i++ {
		if _, err := rt.Invoke(ctx, "h", "incr", nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	if tr.useLocked() {
		t.Fatal("object never returned to lock-free commits after contention subsided")
	}
}

// TestOCCSameClassSyncComposition verifies the constraint lifted by
// the optimistic path: a handler synchronously invoking another
// stateful object of the same class, which deadlocked under the
// per-object stripe lock whenever the two objects collided.
func TestOCCSameClassSyncComposition(t *testing.T) {
	infra := testInfra(t)
	reg := invoker.NewRegistry()
	var rtRef *ClassRuntime
	reg.Register("img/chain", invoker.HandlerFunc(func(ctx context.Context, task invoker.Task) (invoker.Result, error) {
		// Forward to the sibling object named in the payload, if any.
		var target string
		_ = json.Unmarshal(task.Payload, &target)
		if target != "" {
			if _, err := rtRef.Invoke(ctx, target, "touch", nil, nil); err != nil {
				return invoker.Result{}, err
			}
		}
		return invoker.Result{
			Output: json.RawMessage(`"ok"`),
			State:  map[string]json.RawMessage{"value": json.RawMessage(`1`)},
		}, nil
	}))
	infra.Transport = invoker.NewLocal(reg)
	yaml := `classes:
  - name: Chain
    concurrencyMode: occ
    keySpecs:
      - name: value
        kind: number
        default: 0
    functions:
      - name: touch
        image: img/chain
`
	rt, err := New(infra, resolvedClass(t, yaml, "Chain"), stdTemplate())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	rtRef = rt
	ctx := context.Background()
	for _, id := range []string{"a", "b"} {
		if err := rt.InitObjectState(ctx, id); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan error, 1)
	go func() {
		_, err := rt.Invoke(ctx, "a", "touch", json.RawMessage(`"b"`), nil)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("same-class synchronous composition deadlocked")
	}
	for _, id := range []string{"a", "b"} {
		if v, err := rt.GetState(ctx, id, "value"); err != nil || string(v) != "1" {
			t.Fatalf("state[%s] = %s (%v), want 1", id, v, err)
		}
	}
}
