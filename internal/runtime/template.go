// Package runtime implements Oparaca's class runtime and class runtime
// templates (paper §III-B).
//
// A ClassRuntime is the dedicated deployment realizing one class: its
// functions deployed on a FaaS engine, its structured state held in a
// distributed in-memory table, its unstructured state in the object
// store, and its dataflows compiled for execution. Because sharing a
// runtime across classes with conflicting requirements "is difficult
// to manage", each class gets its own runtime instantiated from a
// Template — "a configurable class runtime design optimized for a
// specific set of requirement combinations" — chosen by matching the
// class's declared non-functional requirements. Platform providers can
// register their own templates, selection conditions and priorities.
package runtime

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/hpcclab/oparaca-go/internal/faas"
	"github.com/hpcclab/oparaca-go/internal/memtable"
	"github.com/hpcclab/oparaca-go/internal/model"
)

// Match is a template's selection condition against a class's
// non-functional requirements.
type Match struct {
	// Persistent, when non-nil, requires the class's persistence
	// constraint to equal the value.
	Persistent *bool
	// MinThroughputRPS, when > 0, requires the class to declare at
	// least this required throughput.
	MinThroughputRPS float64
	// MaxLatencyMs, when > 0, requires the class to declare a latency
	// target at or below this value.
	MaxLatencyMs float64
}

// Matches reports whether class c satisfies the condition.
func (m Match) Matches(c *model.Class) bool {
	if m.Persistent != nil && c.Constraint.IsPersistent() != *m.Persistent {
		return false
	}
	if m.MinThroughputRPS > 0 && c.QoS.ThroughputRPS < m.MinThroughputRPS {
		return false
	}
	if m.MaxLatencyMs > 0 && (c.QoS.LatencyMs == 0 || c.QoS.LatencyMs > m.MaxLatencyMs) {
		return false
	}
	return true
}

// Template is a configurable class-runtime design.
type Template struct {
	// Name identifies the template.
	Name string
	// Priority orders template selection (higher wins among matches).
	Priority int
	// Match is the selection condition.
	Match Match

	// EngineMode selects the function execution engine.
	EngineMode faas.Mode
	// TableMode selects state persistence behaviour.
	TableMode memtable.Mode
	// FlushInterval / FlushBatchSize tune the write-behind flusher.
	FlushInterval  time.Duration
	FlushBatchSize int
	// Shards is the state table partition count (0 = default).
	Shards int

	// DefaultConcurrency is the per-pod request limit applied to
	// functions that do not declare their own.
	DefaultConcurrency int
	// InvokeCost is the node-compute tokens charged per invocation
	// (0 = engine default of 1). Templates with heavier data paths
	// (state serialization, synchronous persistence) set this higher;
	// the benchmark harness uses it to model the per-request CPU cost
	// differences between the paper's system variants.
	InvokeCost float64
	// MinScale / MaxScale / InitialScale bound each function's
	// replicas.
	MinScale     int
	MaxScale     int
	InitialScale int
}

// Validate checks a template is self-consistent.
func (t Template) Validate() error {
	if t.Name == "" {
		return fmt.Errorf("runtime: template needs a name")
	}
	switch t.EngineMode {
	case faas.ModeKnative, faas.ModeDeployment:
	default:
		return fmt.Errorf("runtime: template %q has invalid engine mode", t.Name)
	}
	switch t.TableMode {
	case memtable.ModeWriteBehind, memtable.ModeWriteThrough, memtable.ModeMemoryOnly:
	default:
		return fmt.Errorf("runtime: template %q has invalid table mode", t.Name)
	}
	if t.EngineMode == faas.ModeDeployment && t.InitialScale < 1 {
		return fmt.Errorf("runtime: template %q: deployment engine needs InitialScale >= 1", t.Name)
	}
	return nil
}

// TemplateRegistry holds the provider's templates and selects the best
// match for each class. It is safe for concurrent use.
type TemplateRegistry struct {
	mu        sync.RWMutex
	templates []Template
}

// NewTemplateRegistry returns a registry preloaded with the given
// templates (use DefaultTemplates() for the stock set).
func NewTemplateRegistry(templates ...Template) (*TemplateRegistry, error) {
	r := &TemplateRegistry{}
	for _, t := range templates {
		if err := r.Add(t); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// Add registers a template. Duplicate names are rejected.
func (r *TemplateRegistry) Add(t Template) error {
	if err := t.Validate(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, existing := range r.templates {
		if existing.Name == t.Name {
			return fmt.Errorf("runtime: duplicate template %q", t.Name)
		}
	}
	r.templates = append(r.templates, t)
	sort.SliceStable(r.templates, func(i, j int) bool {
		return r.templates[i].Priority > r.templates[j].Priority
	})
	return nil
}

// Templates returns the registered templates in selection order.
func (r *TemplateRegistry) Templates() []Template {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]Template(nil), r.templates...)
}

// Select returns the highest-priority template matching the class.
func (r *TemplateRegistry) Select(c *model.Class) (Template, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, t := range r.templates {
		if t.Match.Matches(c) {
			return t, nil
		}
	}
	return Template{}, fmt.Errorf("runtime: no template matches class %q (qos=%+v persistent=%v)",
		c.Name, c.QoS, c.Constraint.IsPersistent())
}

// DefaultTemplates returns the stock template set:
//
//   - "ephemeral":       non-persistent classes → deployment engine +
//     memory-only table (the paper's nonpersist variant).
//   - "high-throughput": persistent classes demanding ≥1000 rps →
//     deployment engine (no Knative data-path overhead) + write-behind.
//   - "low-latency":     persistent classes with a tight latency target
//     → Knative engine held warm (MinScale 1) + write-behind.
//   - "standard":        everything else → Knative engine with
//     scale-to-zero + write-behind.
func DefaultTemplates() []Template {
	no := false
	return []Template{
		{
			Name:       "ephemeral",
			Priority:   40,
			Match:      Match{Persistent: &no},
			EngineMode: faas.ModeDeployment, TableMode: memtable.ModeMemoryOnly,
			DefaultConcurrency: 64, InitialScale: 1, MaxScale: 200,
		},
		{
			Name:       "high-throughput",
			Priority:   30,
			Match:      Match{MinThroughputRPS: 1000},
			EngineMode: faas.ModeDeployment, TableMode: memtable.ModeWriteBehind,
			FlushInterval: 20 * time.Millisecond, FlushBatchSize: 256,
			DefaultConcurrency: 64, InitialScale: 2, MaxScale: 200,
		},
		{
			Name:       "low-latency",
			Priority:   20,
			Match:      Match{MaxLatencyMs: 50},
			EngineMode: faas.ModeKnative, TableMode: memtable.ModeWriteBehind,
			FlushInterval: 20 * time.Millisecond, FlushBatchSize: 128,
			DefaultConcurrency: 16, MinScale: 1, InitialScale: 1, MaxScale: 100,
		},
		{
			Name:       "standard",
			Priority:   0,
			Match:      Match{},
			EngineMode: faas.ModeKnative, TableMode: memtable.ModeWriteBehind,
			FlushInterval: 50 * time.Millisecond, FlushBatchSize: 256,
			DefaultConcurrency: 16, MinScale: 0, MaxScale: 100,
		},
	}
}
