package runtime

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"

	"github.com/hpcclab/oparaca-go/internal/model"
	"github.com/hpcclab/oparaca-go/internal/trigger"
)

// eventsYAML declares an event-test class under one concurrency mode:
// a counter write, a readonly read, a failing handler and a
// rogue-delta handler.
func eventsYAML(mode model.ConcurrencyMode) string {
	return fmt.Sprintf(`classes:
  - name: Counter
    concurrencyMode: %s
    keySpecs:
      - name: value
        kind: number
        default: 0
      - name: note
    functions:
      - name: incr
        image: img/incr
      - name: get
        image: img/get
        readonly: true
      - name: fail
        image: img/fail
      - name: rogue
        image: img/rogue
`, mode)
}

// eventRecorder collects emitted events thread-safely.
type eventRecorder struct {
	mu     sync.Mutex
	events []trigger.Event
}

func (r *eventRecorder) emit(ev trigger.Event) {
	r.mu.Lock()
	r.events = append(r.events, ev)
	r.mu.Unlock()
}

func (r *eventRecorder) snapshot() []trigger.Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]trigger.Event(nil), r.events...)
}

// newEventsRuntime builds a runtime whose Events hook records into rec.
func newEventsRuntime(t *testing.T, mode model.ConcurrencyMode, rec *eventRecorder) *ClassRuntime {
	t.Helper()
	infra := testInfra(t)
	infra.Events = rec.emit
	rt, err := New(infra, resolvedClass(t, eventsYAML(mode), "Counter"), stdTemplate())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt
}

// TestCommitEventExactness is the -race exactness test of the
// acceptance criteria: all three commit regimes emit exactly one
// StateChanged event per committed write invocation, and readonly or
// failing calls emit none.
func TestCommitEventExactness(t *testing.T) {
	const workers, perWorker = 8, 25
	for _, mode := range []model.ConcurrencyMode{model.ConcurrencyLocked, model.ConcurrencyOCC, model.ConcurrencyAdaptive} {
		t.Run(string(mode), func(t *testing.T) {
			rec := &eventRecorder{}
			rt := newEventsRuntime(t, mode, rec)
			ctx := context.Background()
			if err := rt.InitObjectState(ctx, "c-1"); err != nil {
				t.Fatal(err)
			}
			rec.mu.Lock()
			rec.events = nil // drop any init-time noise (there is none, but stay robust)
			rec.mu.Unlock()
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < perWorker; i++ {
						if _, err := rt.Invoke(ctx, "c-1", "incr", nil, nil); err != nil {
							t.Error(err)
							return
						}
						// Interleave readonly reads and failures: none
						// of them may emit.
						if _, err := rt.Invoke(ctx, "c-1", "get", nil, nil); err != nil {
							t.Error(err)
							return
						}
						if _, err := rt.Invoke(ctx, "c-1", "fail", nil, nil); err == nil {
							t.Error("fail handler succeeded")
							return
						}
					}
				}()
			}
			wg.Wait()
			events := rec.snapshot()
			if len(events) != workers*perWorker {
				t.Fatalf("events = %d, want exactly %d (one per committed write)", len(events), workers*perWorker)
			}
			var v float64
			raw, err := rt.GetState(ctx, "c-1", "value")
			if err != nil || json.Unmarshal(raw, &v) != nil || v != workers*perWorker {
				t.Fatalf("counter = %s (%v), want %d", raw, err, workers*perWorker)
			}
			for _, ev := range events {
				if ev.Type != trigger.StateChanged || ev.Class != "Counter" || ev.Object != "c-1" ||
					ev.Function != "incr" || strings.Join(ev.Keys, ",") != "value" || ev.Depth != 0 {
					t.Fatalf("malformed event: %+v", ev)
				}
			}
		})
	}
}

// TestCommitEventBatchPath covers the group-commit regime: a batch
// with successes, a failure and a rogue delta emits exactly one event
// per committed member, none for the casualties or readonly members.
func TestCommitEventBatchPath(t *testing.T) {
	for _, mode := range []model.ConcurrencyMode{model.ConcurrencyLocked, model.ConcurrencyOCC, model.ConcurrencyAdaptive} {
		t.Run(string(mode), func(t *testing.T) {
			rec := &eventRecorder{}
			rt := newEventsRuntime(t, mode, rec)
			ctx := context.Background()
			if err := rt.InitObjectState(ctx, "c-1"); err != nil {
				t.Fatal(err)
			}
			results := rt.InvokeBatch(ctx, "c-1", []BatchCall{
				{Function: "incr"},
				{Function: "fail"},
				{Function: "incr"},
				{Function: "rogue"},
				{Function: "get"},
				{Function: "incr"},
			})
			wantErr := []bool{false, true, false, true, false, false}
			for i, res := range results {
				if (res.Err != nil) != wantErr[i] {
					t.Fatalf("result %d = %v, want err=%v", i, res.Err, wantErr[i])
				}
			}
			events := rec.snapshot()
			if len(events) != 3 {
				t.Fatalf("events = %d, want 3 (the committed incr calls)", len(events))
			}
			for _, ev := range events {
				if ev.Function != "incr" || strings.Join(ev.Keys, ",") != "value" {
					t.Fatalf("malformed batch event: %+v", ev)
				}
			}
		})
	}
}

// TestCommitEventDepthPropagates verifies the chain-depth arg stamped
// by the bus surfaces on the emitted event.
func TestCommitEventDepthPropagates(t *testing.T) {
	rec := &eventRecorder{}
	rt := newEventsRuntime(t, model.ConcurrencyAdaptive, rec)
	ctx := context.Background()
	if err := rt.InitObjectState(ctx, "c-1"); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Invoke(ctx, "c-1", "incr", nil, map[string]string{trigger.ArgDepth: "3"}); err != nil {
		t.Fatal(err)
	}
	events := rec.snapshot()
	if len(events) != 1 || events[0].Depth != 3 {
		t.Fatalf("events = %+v, want one event at depth 3", events)
	}
}

// TestStatelessClassEmitsNothing: with no state specs there is no
// state mutation to react to.
func TestStatelessClassEmitsNothing(t *testing.T) {
	rec := &eventRecorder{}
	infra := testInfra(t)
	infra.Events = rec.emit
	rt, err := New(infra, resolvedClass(t, `classes:
  - name: Pure
    functions:
      - name: get
        image: img/get
`, "Pure"), stdTemplate())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	if _, err := rt.Invoke(context.Background(), "p-1", "get", nil, nil); err != nil {
		t.Fatal(err)
	}
	if events := rec.snapshot(); len(events) != 0 {
		t.Fatalf("stateless class emitted %d events", len(events))
	}
}
