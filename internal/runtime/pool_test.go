package runtime

// Tests for the warm-path pooling contract (pool.go): nothing that
// crosses the handler boundary — the Task.State map, its zero-copy
// value views, or the returned delta — may ever be recycled or
// mutated after the invocation that produced it releases its pooled
// scratch. Run under -race these tests catch the runtime touching
// handler-retained memory; the byte-for-byte comparisons catch silent
// reuse even without the detector. The occValidate scope tests live
// here too: per-key validation shares the pooled commit plumbing.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/hpcclab/oparaca-go/internal/invoker"
	"github.com/hpcclab/oparaca-go/internal/model"
)

// aliasRecord is what the retaining handler smuggles out of one call:
// the live maps it was handed plus deep copies taken inside the
// handler, for later byte-exact comparison.
type aliasRecord struct {
	state, stateCopy map[string]json.RawMessage
	delta, deltaCopy map[string]json.RawMessage
}

func deepCopyState(m map[string]json.RawMessage) map[string]json.RawMessage {
	out := make(map[string]json.RawMessage, len(m))
	for k, v := range m {
		out[k] = append(json.RawMessage(nil), v...)
	}
	return out
}

// retainYAML is a two-key class whose bump method retains everything
// it touches; the second key gives the snapshot a value the handler
// never writes (a pure zero-copy read view).
const retainYAML = `classes:
  - name: Retainer
    concurrencyMode: %s
    keySpecs:
      - name: value
        kind: number
        default: 0
      - name: note
        kind: string
        default: "constant"
    functions:
      - name: bump
        image: img/retain
`

func newRetainRuntime(t *testing.T, mode model.ConcurrencyMode, records *[]aliasRecord, mu *sync.Mutex) *ClassRuntime {
	t.Helper()
	infra := testInfra(t)
	reg := invoker.NewRegistry()
	reg.Register("img/retain", invoker.HandlerFunc(func(_ context.Context, task invoker.Task) (invoker.Result, error) {
		var n float64
		if raw, ok := task.State["value"]; ok {
			_ = json.Unmarshal(raw, &n)
		}
		out, _ := json.Marshal(n + 1)
		delta := map[string]json.RawMessage{"value": out}
		rec := aliasRecord{
			state: task.State, stateCopy: deepCopyState(task.State),
			delta: delta, deltaCopy: deepCopyState(delta),
		}
		mu.Lock()
		*records = append(*records, rec)
		mu.Unlock()
		return invoker.Result{Output: out, State: delta}, nil
	}))
	infra.Transport = invoker.NewLocal(reg)
	rt, err := New(infra, resolvedClass(t, fmt.Sprintf(retainYAML, mode), "Retainer"), stdTemplate())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt
}

// checkAliasRecords fails if any retained map diverged from the copy
// taken inside the handler — i.e. if the runtime mutated or recycled
// memory it had handed to (or received from) a handler.
func checkAliasRecords(t *testing.T, records []aliasRecord) {
	t.Helper()
	for i, rec := range records {
		for name, pair := range map[string][2]map[string]json.RawMessage{
			"Task.State":   {rec.state, rec.stateCopy},
			"Result.State": {rec.delta, rec.deltaCopy},
		} {
			live, want := pair[0], pair[1]
			if len(live) != len(want) {
				t.Fatalf("call %d: retained %s has %d keys, had %d at handler time", i, name, len(live), len(want))
			}
			for k, v := range want {
				if !bytes.Equal(live[k], v) {
					t.Fatalf("call %d: retained %s[%q] = %s, was %s at handler time (mutated after pool release)", i, name, k, live[k], v)
				}
			}
		}
	}
}

// TestHandlerRetainedMapsNeverRecycled drives concurrent single
// invokes in every concurrency mode while a verifier goroutine
// continuously reads everything past handlers retained. Any runtime
// write into retained memory is a -race report and/or a byte diff.
func TestHandlerRetainedMapsNeverRecycled(t *testing.T) {
	for _, mode := range batchModes {
		t.Run(string(mode), func(t *testing.T) {
			var mu sync.Mutex
			var records []aliasRecord
			rt := newRetainRuntime(t, mode, &records, &mu)
			ctx := context.Background()
			if err := rt.InitObjectState(ctx, "o"); err != nil {
				t.Fatal(err)
			}
			done := make(chan struct{})
			var verifier sync.WaitGroup
			verifier.Add(1)
			go func() {
				// Concurrent reader: makes the race detector see any
				// post-release write the runtime performs.
				defer verifier.Done()
				for {
					select {
					case <-done:
						return
					default:
					}
					mu.Lock()
					snapshot := records
					mu.Unlock()
					for _, rec := range snapshot {
						for _, v := range rec.state {
							_ = len(v)
						}
						for _, v := range rec.delta {
							_ = len(v)
						}
					}
					time.Sleep(100 * time.Microsecond)
				}
			}()
			const clients, perEach = 4, 25
			var wg sync.WaitGroup
			errs := make(chan error, clients)
			for g := 0; g < clients; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < perEach; i++ {
						if _, err := rt.Invoke(ctx, "o", "bump", nil, nil); err != nil {
							errs <- err
							return
						}
					}
				}()
			}
			wg.Wait()
			close(done)
			verifier.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
			if v, err := rt.GetState(ctx, "o", "value"); err != nil || string(v) != fmt.Sprintf("%d", clients*perEach) {
				t.Fatalf("counter = %s (%v), want %d", v, err, clients*perEach)
			}
			mu.Lock()
			defer mu.Unlock()
			checkAliasRecords(t, records)
		})
	}
}

// TestBatchHandlerRetainedMapsNeverRecycled is the InvokeBatch twin:
// group-committed calls share one load and one merged commit, so the
// evolving in-window view must still never alias pooled memory into
// the tasks it hands out.
func TestBatchHandlerRetainedMapsNeverRecycled(t *testing.T) {
	for _, mode := range batchModes {
		t.Run(string(mode), func(t *testing.T) {
			var mu sync.Mutex
			var records []aliasRecord
			rt := newRetainRuntime(t, mode, &records, &mu)
			ctx := context.Background()
			if err := rt.InitObjectState(ctx, "o"); err != nil {
				t.Fatal(err)
			}
			const batches, perBatch = 12, 8
			var wg sync.WaitGroup
			errs := make(chan error, batches)
			for g := 0; g < batches; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					calls := make([]BatchCall, perBatch)
					for i := range calls {
						calls[i] = BatchCall{Function: "bump"}
					}
					for _, res := range rt.InvokeBatch(ctx, "o", calls) {
						if res.Err != nil {
							errs <- res.Err
							return
						}
					}
				}()
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
			if v, err := rt.GetState(ctx, "o", "value"); err != nil || string(v) != fmt.Sprintf("%d", batches*perBatch) {
				t.Fatalf("counter = %s (%v), want %d", v, err, batches*perBatch)
			}
			mu.Lock()
			defer mu.Unlock()
			checkAliasRecords(t, records)
		})
	}
}

// occValidateYAML declares two independent counters on one object,
// each bumped by its own method, with the validation scope and
// concurrency mode filled per test.
const occValidateYAML = `classes:
  - name: Split
    concurrencyMode: %s
    occValidate: %s
    keySpecs:
      - name: a
        kind: number
        default: 0
      - name: b
        kind: number
        default: 0
    functions:
      - name: bumpA
        image: img/bump-a
      - name: bumpB
        image: img/bump-b
`

func newSplitRuntime(t *testing.T, mode model.ConcurrencyMode, scope model.OCCValidate) *ClassRuntime {
	t.Helper()
	infra := testInfra(t)
	reg := invoker.NewRegistry()
	bump := func(key string) invoker.Handler {
		return invoker.HandlerFunc(func(_ context.Context, task invoker.Task) (invoker.Result, error) {
			var n float64
			if raw, ok := task.State[key]; ok {
				_ = json.Unmarshal(raw, &n)
			}
			// A small window so concurrent invocations genuinely
			// overlap their load→commit spans.
			time.Sleep(200 * time.Microsecond)
			out, _ := json.Marshal(n + 1)
			return invoker.Result{Output: out, State: map[string]json.RawMessage{key: out}}, nil
		})
	}
	reg.Register("img/bump-a", bump("a"))
	reg.Register("img/bump-b", bump("b"))
	infra.Transport = invoker.NewLocal(reg)
	yaml := fmt.Sprintf(occValidateYAML, mode, scope)
	rt, err := New(infra, resolvedClass(t, yaml, "Split"), stdTemplate())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt
}

// runSplitWriters bumps key a and key b from one goroutine each,
// n times per key, concurrently on one object.
func runSplitWriters(t *testing.T, rt *ClassRuntime, fnA, fnB string, n int) {
	t.Helper()
	ctx := context.Background()
	if err := rt.InitObjectState(ctx, "o"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	for _, fn := range []string{fnA, fnB} {
		wg.Add(1)
		go func(fn string) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				if _, err := rt.Invoke(ctx, "o", fn, nil, nil); err != nil {
					errs <- err
					return
				}
			}
		}(fn)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestOCCValidateKeysDisjointWritersNeverAbort is the point of the
// narrowed scope: two writers touching disjoint keys of one object
// share no validated version, so neither can ever invalidate the
// other's commit — zero aborts, deterministically.
func TestOCCValidateKeysDisjointWritersNeverAbort(t *testing.T) {
	const n = 40
	rt := newSplitRuntime(t, model.ConcurrencyOCC, model.OCCValidateKeys)
	runSplitWriters(t, rt, "bumpA", "bumpB", n)
	ctx := context.Background()
	for _, key := range []string{"a", "b"} {
		if v, err := rt.GetState(ctx, "o", key); err != nil || string(v) != fmt.Sprintf("%d", n) {
			t.Fatalf("%s = %s (%v), want %d", key, v, err, n)
		}
	}
	cs := rt.ConcurrencyStats()
	if cs.Aborts != 0 {
		t.Fatalf("aborts = %d, want 0: disjoint-key writers must not conflict under occValidate: keys", cs.Aborts)
	}
	if cs.Commits != 2*n {
		t.Fatalf("commits = %d, want %d", cs.Commits, 2*n)
	}
}

// TestOCCValidateKeysOverlappingWritersStayExact narrows validation
// but not correctness: when both writers hit the SAME key, written-key
// validation still detects every conflict — no lost updates.
func TestOCCValidateKeysOverlappingWritersStayExact(t *testing.T) {
	const n = 40
	rt := newSplitRuntime(t, model.ConcurrencyOCC, model.OCCValidateKeys)
	// Both writers bump key a.
	ctx := context.Background()
	if err := rt.InitObjectState(ctx, "o"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n; i++ {
				if _, err := rt.Invoke(ctx, "o", "bumpA", nil, nil); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if v, err := rt.GetState(ctx, "o", "a"); err != nil || string(v) != fmt.Sprintf("%d", 2*n) {
		t.Fatalf("a = %s (%v), want %d (lost update under per-key validation)", v, err, 2*n)
	}
	if cs := rt.ConcurrencyStats(); cs.Commits != 2*n {
		t.Fatalf("commits = %d, want %d", cs.Commits, 2*n)
	}
}

// TestOCCValidateKeysAdaptiveEscalationUnchanged runs the same
// overlapping-writer contention under the adaptive mode with per-key
// validation: exactness must hold through whatever mix of optimistic
// commits and barrier fallbacks the abort EWMA chooses — the
// narrowed scope changes what a commit validates, never whether a
// hot object may escalate.
func TestOCCValidateKeysAdaptiveEscalationUnchanged(t *testing.T) {
	const clients, perEach = 4, 25
	rt := newSplitRuntime(t, model.ConcurrencyAdaptive, model.OCCValidateKeys)
	ctx := context.Background()
	if err := rt.InitObjectState(ctx, "o"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perEach; i++ {
				if _, err := rt.Invoke(ctx, "o", "bumpA", nil, nil); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if v, err := rt.GetState(ctx, "o", "a"); err != nil || string(v) != fmt.Sprintf("%d", clients*perEach) {
		t.Fatalf("a = %s (%v), want %d", v, err, clients*perEach)
	}
	cs := rt.ConcurrencyStats()
	if cs.Mode != string(model.ConcurrencyAdaptive) {
		t.Fatalf("stats mode = %q, want adaptive", cs.Mode)
	}
	if cs.Commits != clients*perEach {
		t.Fatalf("commits = %d, want %d", cs.Commits, clients*perEach)
	}
}

// TestOCCValidateYAMLRejectsUnknownScope: a bogus occValidate value is
// a deploy-time validation error, not a silent readset fallback.
func TestOCCValidateYAMLRejectsUnknownScope(t *testing.T) {
	yaml := fmt.Sprintf(occValidateYAML, model.ConcurrencyOCC, "sometimes")
	pkg, err := model.ParseYAML([]byte(yaml))
	if err == nil {
		_, err = model.Resolve(pkg, nil)
	}
	if err == nil || !strings.Contains(err.Error(), "occValidate") {
		t.Fatalf("err = %v, want occValidate validation error", err)
	}
}

// TestKeyCacheResetBound fills the per-class composed-key cache past
// its bound and checks it resets wholesale instead of growing without
// limit (the cache trades recomputation for a hard memory ceiling).
func TestKeyCacheResetBound(t *testing.T) {
	rt := newRuntime(t, counterYAML, "Counter")
	for i := 0; i < maxKeyCacheObjects+10; i++ {
		rt.keysFor(fmt.Sprintf("obj-%d", i))
	}
	if n := rt.keyCacheLen.Load(); n > maxKeyCacheObjects {
		t.Fatalf("keyCacheLen = %d after overflow, want <= %d (wholesale reset)", n, maxKeyCacheObjects)
	}
	// Entries computed after the reset are still correct.
	keys := rt.keysFor("obj-after")
	if len(keys.keys) != 1 || keys.keys[0] != rt.stateKey("obj-after", "value") {
		t.Fatalf("post-reset keys = %v", keys.keys)
	}
	if _, ok := keys.byName["value"]; !ok {
		t.Fatalf("post-reset byName missing structured key: %v", keys.byName)
	}
}
