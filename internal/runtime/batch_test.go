package runtime

// Tests for the group-commit InvokeBatch path: evolving-view
// sequencing, per-call fault isolation (handler errors, panics, rogue
// deltas), the readonly bypass, and exactness when batches interleave
// with per-call invocations.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/hpcclab/oparaca-go/internal/invoker"
	"github.com/hpcclab/oparaca-go/internal/model"
)

// batchYAML declares a counter class with failing, panicking, rogue
// and readonly members alongside the increment.
const batchYAML = `classes:
  - name: BCounter
    concurrencyMode: %s
    keySpecs:
      - name: value
        kind: number
        default: 0
    functions:
      - name: incr
        image: img/incr
      - name: peek
        image: img/get
        readonly: true
      - name: boom
        image: img/fail
      - name: kaboom
        image: img/panic
      - name: rogue
        image: img/rogue
`

func newBatchRuntime(t *testing.T, mode model.ConcurrencyMode) *ClassRuntime {
	t.Helper()
	infra := testInfra(t)
	// testInfra's registry lacks a panicking image; rebuild the
	// transport with one added.
	reg := invoker.NewRegistry()
	reg.Register("img/incr", invoker.HandlerFunc(func(_ context.Context, task invoker.Task) (invoker.Result, error) {
		var n float64
		if raw, ok := task.State["value"]; ok {
			_ = json.Unmarshal(raw, &n)
		}
		out, _ := json.Marshal(n + 1)
		return invoker.Result{Output: out, State: map[string]json.RawMessage{"value": out}}, nil
	}))
	reg.Register("img/get", invoker.HandlerFunc(func(_ context.Context, task invoker.Task) (invoker.Result, error) {
		return invoker.Result{Output: task.State["value"]}, nil
	}))
	reg.Register("img/fail", invoker.HandlerFunc(func(context.Context, invoker.Task) (invoker.Result, error) {
		return invoker.Result{}, fmt.Errorf("deliberate")
	}))
	reg.Register("img/panic", invoker.HandlerFunc(func(context.Context, invoker.Task) (invoker.Result, error) {
		panic("mid-batch kaboom")
	}))
	reg.Register("img/rogue", invoker.HandlerFunc(func(context.Context, invoker.Task) (invoker.Result, error) {
		return invoker.Result{State: map[string]json.RawMessage{"undeclared": json.RawMessage(`1`)}}, nil
	}))
	infra.Transport = invoker.NewLocal(reg)
	rt, err := New(infra, resolvedClass(t, fmt.Sprintf(batchYAML, mode), "BCounter"), stdTemplate())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt
}

var batchModes = []model.ConcurrencyMode{
	model.ConcurrencyLocked, model.ConcurrencyOCC, model.ConcurrencyAdaptive,
}

// TestInvokeBatchEvolvingView runs N increments in one group and
// requires each call to observe its predecessors' deltas (outputs
// 1..N) with exactly N landing in state — in every concurrency mode.
func TestInvokeBatchEvolvingView(t *testing.T) {
	for _, mode := range batchModes {
		t.Run(string(mode), func(t *testing.T) {
			rt := newBatchRuntime(t, mode)
			ctx := context.Background()
			if err := rt.InitObjectState(ctx, "o"); err != nil {
				t.Fatal(err)
			}
			const n = 8
			calls := make([]BatchCall, n)
			for i := range calls {
				calls[i] = BatchCall{Function: "incr"}
			}
			results := rt.InvokeBatch(ctx, "o", calls)
			for i, res := range results {
				if res.Err != nil {
					t.Fatalf("call %d: %v", i, res.Err)
				}
				if want := fmt.Sprintf("%d", i+1); string(res.Output) != want {
					t.Fatalf("call %d output = %s, want %s (evolving view)", i, res.Output, want)
				}
			}
			if v, err := rt.GetState(ctx, "o", "value"); err != nil || string(v) != fmt.Sprintf("%d", n) {
				t.Fatalf("state = %s (%v), want %d", v, err, n)
			}
		})
	}
}

// TestInvokeBatchFaultIsolation interleaves failing, panicking, rogue
// and unknown calls with increments: each poisons only its own result,
// and the merged commit carries exactly the successful deltas.
func TestInvokeBatchFaultIsolation(t *testing.T) {
	for _, mode := range batchModes {
		t.Run(string(mode), func(t *testing.T) {
			rt := newBatchRuntime(t, mode)
			ctx := context.Background()
			if err := rt.InitObjectState(ctx, "o"); err != nil {
				t.Fatal(err)
			}
			calls := []BatchCall{
				{Function: "incr"},
				{Function: "boom"},
				{Function: "incr"},
				{Function: "kaboom"},
				{Function: "rogue"},
				{Function: "nosuch"},
				{Function: "incr"},
			}
			results := rt.InvokeBatch(ctx, "o", calls)
			wantErr := map[int]string{
				1: "deliberate",
				3: "handler panic",
				5: "not declared",
			}
			if res := results[4]; res.Err == nil || !strings.Contains(res.Err.Error(), "undeclared key") {
				t.Fatalf("rogue delta: err = %v, want undeclared-key error", res.Err)
			}
			for i, substr := range wantErr {
				if res := results[i]; res.Err == nil || !strings.Contains(res.Err.Error(), substr) {
					t.Fatalf("call %d: err = %v, want %q", i, res.Err, substr)
				}
			}
			for _, i := range []int{0, 2, 6} {
				if results[i].Err != nil {
					t.Fatalf("incr call %d poisoned by sibling failure: %v", i, results[i].Err)
				}
			}
			// Exactly the three successful increments landed.
			if v, err := rt.GetState(ctx, "o", "value"); err != nil || string(v) != "3" {
				t.Fatalf("state = %s (%v), want 3", v, err)
			}
			if _, err := rt.GetState(ctx, "o", "undeclared"); err == nil {
				t.Fatal("rogue delta key persisted")
			}
		})
	}
}

// TestInvokeBatchReadonlyBypass mixes annotated reads into a write
// group: the reads serve from the fast path (counted in the readonly
// stat) while the writers commit exactly.
func TestInvokeBatchReadonlyBypass(t *testing.T) {
	rt := newBatchRuntime(t, model.ConcurrencyOCC)
	ctx := context.Background()
	if err := rt.InitObjectState(ctx, "o"); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Invoke(ctx, "o", "incr", nil, nil); err != nil {
		t.Fatal(err)
	}
	results := rt.InvokeBatch(ctx, "o", []BatchCall{
		{Function: "peek"},
		{Function: "incr"},
		{Function: "incr"},
	})
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("call %d: %v", i, res.Err)
		}
	}
	// The readonly call bypassed the window: it observed the committed
	// pre-batch value, not the evolving view.
	if string(results[0].Output) != "1" {
		t.Fatalf("readonly output = %s, want 1", results[0].Output)
	}
	if got := rt.ConcurrencyStats().Readonly; got != 1 {
		t.Fatalf("readonly stat = %d, want 1", got)
	}
	if v, err := rt.GetState(ctx, "o", "value"); err != nil || string(v) != "3" {
		t.Fatalf("state = %s (%v), want 3", v, err)
	}
}

// TestInvokeBatchInterleavesWithSingles runs concurrent per-call
// invocations against repeated batches on one hot object: the final
// count must be exact under validated group commits in every mode.
func TestInvokeBatchInterleavesWithSingles(t *testing.T) {
	for _, mode := range batchModes {
		t.Run(string(mode), func(t *testing.T) {
			const (
				batches   = 10
				batchSize = 5
				singles   = 50
				wantTotal = batches*batchSize + singles
			)
			rt := newBatchRuntime(t, mode)
			ctx := context.Background()
			if err := rt.InitObjectState(ctx, "o"); err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			errs := make(chan error, 2)
			wg.Add(2)
			go func() {
				defer wg.Done()
				for i := 0; i < singles; i++ {
					if _, err := rt.Invoke(ctx, "o", "incr", nil, nil); err != nil {
						errs <- err
						return
					}
				}
			}()
			go func() {
				defer wg.Done()
				calls := make([]BatchCall, batchSize)
				for i := range calls {
					calls[i] = BatchCall{Function: "incr"}
				}
				for b := 0; b < batches; b++ {
					for i, res := range rt.InvokeBatch(ctx, "o", calls) {
						if res.Err != nil {
							errs <- fmt.Errorf("batch %d call %d: %w", b, i, res.Err)
							return
						}
					}
				}
			}()
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
			if v, err := rt.GetState(ctx, "o", "value"); err != nil || string(v) != fmt.Sprintf("%d", wantTotal) {
				t.Fatalf("state = %s (%v), want %d", v, err, wantTotal)
			}
		})
	}
}

// deadlineYAML declares a counter class whose `stuck` member carries a
// 150ms deadline; `incr` inherits no timeout.
const deadlineYAML = `classes:
  - name: TCounter
    concurrencyMode: %s
    keySpecs:
      - name: value
        kind: number
        default: 0
    functions:
      - name: incr
        image: img/incr
      - name: stuck
        image: img/stuck
        timeoutMs: 150
`

// newDeadlineRuntime builds a TCounter runtime whose img/stuck handler
// ignores its context entirely: it blocks until release is closed and
// then tries to write value=99. The watchdog must abandon it at the
// deadline and the commit guards must discard its late delta.
func newDeadlineRuntime(t *testing.T, mode model.ConcurrencyMode, release <-chan struct{}) *ClassRuntime {
	t.Helper()
	infra := testInfra(t)
	reg := invoker.NewRegistry()
	reg.Register("img/incr", invoker.HandlerFunc(func(_ context.Context, task invoker.Task) (invoker.Result, error) {
		var n float64
		if raw, ok := task.State["value"]; ok {
			_ = json.Unmarshal(raw, &n)
		}
		out, _ := json.Marshal(n + 1)
		return invoker.Result{Output: out, State: map[string]json.RawMessage{"value": out}}, nil
	}))
	reg.Register("img/stuck", invoker.HandlerFunc(func(context.Context, invoker.Task) (invoker.Result, error) {
		<-release
		return invoker.Result{State: map[string]json.RawMessage{"value": json.RawMessage(`99`)}}, nil
	}))
	infra.Transport = invoker.NewLocal(reg)
	rt, err := New(infra, resolvedClass(t, fmt.Sprintf(deadlineYAML, mode), "TCounter"), stdTemplate())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt
}

// drainLeakedHandlers waits for abandoned handlers to return after
// their release channel is closed.
func drainLeakedHandlers(t *testing.T, rt *ClassRuntime) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for rt.LeakedHandlers() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("leaked handlers never drained: %d", rt.LeakedHandlers())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestInvokeDeadlineExpiredNeverCommits drives a handler that ignores
// cancellation into its 150ms deadline under every concurrency mode:
// the invocation must fail with ErrDeadlineExceeded within 2x the
// deadline, other objects must keep committing while the stuck handler
// is still running, and the handler's late delta must never land.
func TestInvokeDeadlineExpiredNeverCommits(t *testing.T) {
	for _, mode := range batchModes {
		t.Run(string(mode), func(t *testing.T) {
			release := make(chan struct{})
			rt := newDeadlineRuntime(t, mode, release)
			ctx := context.Background()
			for _, id := range []string{"o", "other"} {
				if err := rt.InitObjectState(ctx, id); err != nil {
					t.Fatal(err)
				}
			}
			start := time.Now()
			_, err := rt.Invoke(ctx, "o", "stuck", nil, nil)
			elapsed := time.Since(start)
			if !errors.Is(err, ErrDeadlineExceeded) || !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
			}
			if elapsed > 300*time.Millisecond {
				t.Fatalf("deadline failure took %v, want <= 2x the 150ms deadline", elapsed)
			}
			if got := rt.LeakedHandlers(); got != 1 {
				t.Fatalf("LeakedHandlers = %d, want 1 while the abandoned handler runs", got)
			}
			// The shard is not wedged: another object commits while the
			// abandoned handler is still blocked.
			if _, err := rt.Invoke(ctx, "other", "incr", nil, nil); err != nil {
				t.Fatalf("sibling object blocked by expired handler: %v", err)
			}
			close(release)
			drainLeakedHandlers(t, rt)
			// The late delta never committed.
			if v, err := rt.GetState(ctx, "o", "value"); err != nil || string(v) != "0" {
				t.Fatalf("state = %s (%v), want 0 (expired handler committed)", v, err)
			}
			// The object is healthy afterwards.
			if _, err := rt.Invoke(ctx, "o", "incr", nil, nil); err != nil {
				t.Fatal(err)
			}
			if v, _ := rt.GetState(ctx, "o", "value"); string(v) != "1" {
				t.Fatalf("post-expiry state = %s, want 1", v)
			}
		})
	}
}

// TestInvokeBatchDeadlineFailsOnlyOwnEntry puts the stuck member
// between two increments in one group-commit window: its expiry fails
// only its own entry, the sibling increments commit exactly, and the
// late delta stays out of the merged commit — in every mode.
func TestInvokeBatchDeadlineFailsOnlyOwnEntry(t *testing.T) {
	for _, mode := range batchModes {
		t.Run(string(mode), func(t *testing.T) {
			release := make(chan struct{})
			rt := newDeadlineRuntime(t, mode, release)
			ctx := context.Background()
			if err := rt.InitObjectState(ctx, "o"); err != nil {
				t.Fatal(err)
			}
			results := rt.InvokeBatch(ctx, "o", []BatchCall{
				{Function: "incr"},
				{Function: "stuck"},
				{Function: "incr"},
			})
			if err := results[1].Err; !errors.Is(err, ErrDeadlineExceeded) {
				t.Fatalf("stuck entry err = %v, want ErrDeadlineExceeded", err)
			}
			for _, i := range []int{0, 2} {
				if results[i].Err != nil {
					t.Fatalf("incr call %d poisoned by expired sibling: %v", i, results[i].Err)
				}
			}
			close(release)
			drainLeakedHandlers(t, rt)
			if v, err := rt.GetState(ctx, "o", "value"); err != nil || string(v) != "2" {
				t.Fatalf("state = %s (%v), want exactly the two increments", v, err)
			}
		})
	}
}

// TestInvokeBatchDeleteRestoresDefault verifies a mid-group delete
// (JSON null delta) resolves back to the class default for later calls
// in the same group, matching what a fresh load would observe.
func TestInvokeBatchDeleteRestoresDefault(t *testing.T) {
	infra := testInfra(t)
	reg := invoker.NewRegistry()
	reg.Register("img/incr", invoker.HandlerFunc(func(_ context.Context, task invoker.Task) (invoker.Result, error) {
		var n float64
		if raw, ok := task.State["value"]; ok {
			_ = json.Unmarshal(raw, &n)
		}
		out, _ := json.Marshal(n + 1)
		return invoker.Result{Output: out, State: map[string]json.RawMessage{"value": out}}, nil
	}))
	reg.Register("img/clear", invoker.HandlerFunc(func(context.Context, invoker.Task) (invoker.Result, error) {
		return invoker.Result{State: map[string]json.RawMessage{"value": json.RawMessage(`null`)}}, nil
	}))
	infra.Transport = invoker.NewLocal(reg)
	yaml := `classes:
  - name: DCounter
    concurrencyMode: occ
    keySpecs:
      - name: value
        kind: number
        default: 0
    functions:
      - name: incr
        image: img/incr
      - name: clear
        image: img/clear
`
	rt, err := New(infra, resolvedClass(t, yaml, "DCounter"), stdTemplate())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	ctx := context.Background()
	if err := rt.InitObjectState(ctx, "o"); err != nil {
		t.Fatal(err)
	}
	results := rt.InvokeBatch(ctx, "o", []BatchCall{
		{Function: "incr"}, // 1
		{Function: "incr"}, // 2
		{Function: "clear"},
		{Function: "incr"}, // default 0 -> 1
	})
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("call %d: %v", i, res.Err)
		}
	}
	if string(results[3].Output) != "1" {
		t.Fatalf("post-delete incr output = %s, want 1 (default restored)", results[3].Output)
	}
	if v, err := rt.GetState(ctx, "o", "value"); err != nil || string(v) != "1" {
		t.Fatalf("state = %s (%v), want 1", v, err)
	}
}
