package runtime

import (
	"encoding/json"
	"strconv"
	"strings"
	"sync"

	"github.com/hpcclab/oparaca-go/internal/memtable"
)

// This file holds the warm-path allocation machinery: precomputed
// per-object key slices and pooled per-invoke transients.
//
// The pooling contract is strict about what may cross the handler
// boundary. Handlers receive Task.State and return a delta map; either
// may be retained by a (buggy or abandoned) handler long after the
// invocation finished, so NOTHING handed to or received from a handler
// is ever pooled or reused — the state map is allocated fresh per
// attempt and the delta map stays owned by the handler (the table
// clones delta values at commit, see memtable.PutManyIfVersion).
// Only invocation-internal transients are pooled: the versioned
// read-set map, the raw load map, and the CAS op map, none of which a
// handler can observe. runtime's pool-aliasing race tests
// (pool_test.go) pin this boundary.

// maxKeyCacheObjects bounds the per-object key cache. Hitting the
// bound resets the whole cache (entries are cheap to regenerate); the
// bound matches the presign cache's sizing rationale.
const maxKeyCacheObjects = 8192

// objectKeys is one object's precomputed table keys: the state-table
// key of every structured key (aligned with ClassRuntime.stateSpecs)
// plus a by-name index covering every declared key. Both are immutable
// after construction — keys derive only from the class and object
// names — so lookups are lock-free and never invalidated.
type objectKeys struct {
	// keys[i] is the table key of stateSpecs[i].
	keys []string
	// byName maps a structured key name to its table key. Membership
	// doubles as the "in the versioned snapshot" test, so file keys are
	// deliberately absent (a file key written as state takes the
	// unconditional-write fallback path).
	byName map[string]string
}

// keysFor returns the object's precomputed table keys, building and
// caching them on first use.
func (rt *ClassRuntime) keysFor(objectID string) *objectKeys {
	if v, ok := rt.keyCache.Load(objectID); ok {
		return v.(*objectKeys)
	}
	ok2 := &objectKeys{
		keys:   make([]string, len(rt.stateSpecs)),
		byName: make(map[string]string, len(rt.stateSpecs)),
	}
	for i, k := range rt.stateSpecs {
		ok2.keys[i] = rt.stateKey(objectID, k.Name)
		ok2.byName[k.Name] = ok2.keys[i]
	}
	// The size bound is approximate under concurrent fills (the
	// counter can overshoot by in-flight builders); a wholesale reset
	// only costs regeneration, never correctness.
	if rt.keyCacheLen.Add(1) > maxKeyCacheObjects {
		rt.keyCache.Clear()
		rt.keyCacheLen.Store(1)
	}
	if prev, loaded := rt.keyCache.LoadOrStore(objectID, ok2); loaded {
		return prev.(*objectKeys)
	}
	return ok2
}

// invokeScratch pools the invocation-internal maps of one
// load→invoke→commit attempt. Every field stays inside the runtime:
// nothing here is ever reachable from a handler (see the file comment
// for the boundary contract).
type invokeScratch struct {
	// got receives the versioned table read (OCC paths).
	got map[string]memtable.VersionedValue
	// raw receives the unversioned table read (locked/readonly paths).
	raw map[string]json.RawMessage
	// ops accumulates the commit's CAS operations. The memtable clones
	// written values and retains neither the map nor its CASOp
	// entries, so releasing after PutManyIfVersion returns is safe.
	ops map[string]memtable.CASOp
}

var scratchPool = sync.Pool{New: func() any {
	return &invokeScratch{
		got: make(map[string]memtable.VersionedValue, 8),
		raw: make(map[string]json.RawMessage, 8),
		ops: make(map[string]memtable.CASOp, 16),
	}
}}

// getScratch takes a scratch from the pool. Callers must release() on
// every exit path (commit, abort, error, deadline, panic unwind — a
// deferred release covers them all).
func getScratch() *invokeScratch {
	return scratchPool.Get().(*invokeScratch)
}

// release clears the scratch and returns it to the pool.
func (sc *invokeScratch) release() {
	clear(sc.got)
	clear(sc.raw)
	clear(sc.ops)
	scratchPool.Put(sc)
}

// buildTaskID assembles "object/fn#seq36" in a single allocation.
func buildTaskID(objectID, fn string, seq uint64) string {
	var b strings.Builder
	b.Grow(len(objectID) + len(fn) + 16)
	b.WriteString(objectID)
	b.WriteByte('/')
	b.WriteString(fn)
	b.WriteByte('#')
	var buf [13]byte // 64 bits in base 36
	b.Write(strconv.AppendUint(buf[:0], seq, 36))
	return b.String()
}
