package runtime

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"github.com/hpcclab/oparaca-go/internal/cluster"
	"github.com/hpcclab/oparaca-go/internal/dataflow"
	"github.com/hpcclab/oparaca-go/internal/faas"
	"github.com/hpcclab/oparaca-go/internal/invoker"
	"github.com/hpcclab/oparaca-go/internal/kvstore"
	"github.com/hpcclab/oparaca-go/internal/memtable"
	"github.com/hpcclab/oparaca-go/internal/metrics"
	"github.com/hpcclab/oparaca-go/internal/model"
	"github.com/hpcclab/oparaca-go/internal/objectstore"
	"github.com/hpcclab/oparaca-go/internal/vclock"
)

// Sentinel errors.
var (
	// ErrFunctionUnknown is returned for invocations of undeclared
	// methods.
	ErrFunctionUnknown = errors.New("runtime: function not declared on class")
	// ErrDataflowUnknown is returned for undeclared dataflows.
	ErrDataflowUnknown = errors.New("runtime: dataflow not declared on class")
)

// Infra bundles the shared platform substrates a class runtime is
// wired to.
type Infra struct {
	// Cluster hosts function pods; required.
	Cluster *cluster.Cluster
	// Transport executes invocation tasks; required.
	Transport invoker.Transport
	// Backing is the persistent document store (required unless every
	// template is memory-only).
	Backing *kvstore.Store
	// Objects stores unstructured state; optional (file keys fail
	// without it).
	Objects *objectstore.Store
	// ObjectsBaseURL is the address the object store is served on,
	// used to render presigned URLs.
	ObjectsBaseURL string
	// PresignTTL bounds presigned URL validity. Defaults to 15min.
	PresignTTL time.Duration
	// KnativeOverhead / BypassOverhead are the per-request data-path
	// costs of the two engine modes (activator hop vs direct).
	KnativeOverhead time.Duration
	BypassOverhead  time.Duration
	// ColdStart is the pod warmup delay.
	ColdStart time.Duration
	// ScaleInterval / IdleTimeout drive the Knative autoscaler.
	ScaleInterval time.Duration
	IdleTimeout   time.Duration
	// Clock supplies time; defaults to the real clock.
	Clock vclock.Clock
}

func (i Infra) withDefaults() Infra {
	if i.Clock == nil {
		i.Clock = vclock.NewReal()
	}
	if i.PresignTTL <= 0 {
		i.PresignTTL = 15 * time.Minute
	}
	return i
}

// ClassRuntime is the dedicated deployment for one class.
type ClassRuntime struct {
	class *model.Class
	tmpl  Template
	infra Infra

	engine *faas.Engine
	table  *memtable.Table
	plans  map[string]*dataflow.Plan

	reg   *metrics.Registry
	meter *metrics.Meter
}

// New instantiates a class runtime from a template (paper Figure 2:
// "for a specific class, Oparaca uses one of its predefined templates
// to create a class runtime").
func New(infra Infra, class *model.Class, tmpl Template) (*ClassRuntime, error) {
	if class == nil {
		return nil, errors.New("runtime: nil class")
	}
	if err := tmpl.Validate(); err != nil {
		return nil, err
	}
	infra = infra.withDefaults()
	if infra.Cluster == nil || infra.Transport == nil {
		return nil, errors.New("runtime: Infra needs Cluster and Transport")
	}
	if tmpl.TableMode != memtable.ModeMemoryOnly && infra.Backing == nil {
		return nil, fmt.Errorf("runtime: template %q needs Infra.Backing", tmpl.Name)
	}

	table, err := memtable.New(memtable.Config{
		Mode:           tmpl.TableMode,
		Backing:        infra.Backing,
		Shards:         tmpl.Shards,
		FlushInterval:  tmpl.FlushInterval,
		FlushBatchSize: tmpl.FlushBatchSize,
		Clock:          infra.Clock,
	})
	if err != nil {
		return nil, fmt.Errorf("runtime: creating state table: %w", err)
	}

	overhead := infra.KnativeOverhead
	if tmpl.EngineMode == faas.ModeDeployment {
		overhead = infra.BypassOverhead
	}
	engine, err := faas.NewEngine(faas.Config{
		Mode:            tmpl.EngineMode,
		Cluster:         infra.Cluster,
		Transport:       infra.Transport,
		ScaleInterval:   infra.ScaleInterval,
		IdleTimeout:     infra.IdleTimeout,
		ColdStart:       infra.ColdStart,
		RequestOverhead: overhead,
		Clock:           infra.Clock,
	})
	if err != nil {
		table.Close()
		return nil, fmt.Errorf("runtime: creating engine: %w", err)
	}

	rt := &ClassRuntime{
		class:  class,
		tmpl:   tmpl,
		infra:  infra,
		engine: engine,
		table:  table,
		plans:  make(map[string]*dataflow.Plan, len(class.Dataflows)),
		reg:    metrics.NewRegistry(),
		meter:  metrics.NewMeter(10*time.Second, 10, infra.Clock.Now),
	}

	for _, fn := range class.Functions {
		conc := fn.Concurrency
		if conc <= 0 {
			conc = tmpl.DefaultConcurrency
		}
		spec := faas.FunctionSpec{
			Name:         rt.fnKey(fn.Name),
			Image:        fn.Image,
			Concurrency:  conc,
			Cost:         tmpl.InvokeCost,
			MinScale:     tmpl.MinScale,
			MaxScale:     tmpl.MaxScale,
			InitialScale: tmpl.InitialScale,
			// The jurisdiction constraint pins function pods to the
			// matching data center (paper §II-C).
			Region: class.Constraint.Jurisdiction,
		}
		if err := engine.Deploy(spec); err != nil {
			rt.Close()
			return nil, fmt.Errorf("runtime: deploying %s: %w", spec.Name, err)
		}
	}
	for _, df := range class.Dataflows {
		plan, err := dataflow.Compile(df)
		if err != nil {
			rt.Close()
			return nil, fmt.Errorf("runtime: compiling dataflow %s.%s: %w", class.Name, df.Name, err)
		}
		rt.plans[df.Name] = plan
	}
	if rt.infra.Objects != nil && len(class.FileKeys()) > 0 {
		if err := rt.infra.Objects.EnsureBucket(rt.Bucket()); err != nil {
			rt.Close()
			return nil, fmt.Errorf("runtime: creating bucket: %w", err)
		}
	}
	return rt, nil
}

// Class returns the runtime's resolved class.
func (rt *ClassRuntime) Class() *model.Class { return rt.class }

// Template returns the template the runtime was instantiated from.
func (rt *ClassRuntime) Template() Template { return rt.tmpl }

// Engine exposes the runtime's FaaS engine (used by the optimizer).
func (rt *ClassRuntime) Engine() *faas.Engine { return rt.engine }

// Table exposes the runtime's state table (used by benches/tests).
func (rt *ClassRuntime) Table() *memtable.Table { return rt.table }

// Metrics exposes the runtime's metric registry.
func (rt *ClassRuntime) Metrics() *metrics.Registry { return rt.reg }

// ThroughputRPS reports the invocation rate over the last window.
func (rt *ClassRuntime) ThroughputRPS() float64 { return rt.meter.Rate() }

// Bucket returns the class's object-store bucket name.
func (rt *ClassRuntime) Bucket() string {
	return "cls-" + strings.ToLower(rt.class.Name)
}

// fnKey is the engine-level function name for a class method.
func (rt *ClassRuntime) fnKey(fn string) string {
	return rt.class.Name + "." + fn
}

// stateKey is the table key for one object's state attribute.
func (rt *ClassRuntime) stateKey(objectID, key string) string {
	return "state/" + rt.class.Name + "/" + objectID + "/" + key
}

// fileKey is the object-store key for one object's file attribute.
func (rt *ClassRuntime) fileKey(objectID, key string) string {
	return objectID + "/" + key
}

// InitObjectState writes the class's default values for a new object.
func (rt *ClassRuntime) InitObjectState(ctx context.Context, objectID string) error {
	for _, k := range rt.class.Keys {
		if k.Kind == model.KindFile || len(k.Default) == 0 {
			continue
		}
		if err := rt.table.Put(ctx, rt.stateKey(objectID, k.Name), k.Default); err != nil {
			return fmt.Errorf("runtime: initializing %s/%s: %w", objectID, k.Name, err)
		}
	}
	return nil
}

// DeleteObjectState removes all of an object's state.
func (rt *ClassRuntime) DeleteObjectState(ctx context.Context, objectID string) error {
	for _, k := range rt.class.Keys {
		if k.Kind == model.KindFile {
			if rt.infra.Objects != nil {
				if err := rt.infra.Objects.Delete(rt.Bucket(), rt.fileKey(objectID, k.Name)); err != nil &&
					!errors.Is(err, objectstore.ErrNoSuchBucket) {
					return err
				}
			}
			continue
		}
		if err := rt.table.Delete(ctx, rt.stateKey(objectID, k.Name)); err != nil {
			return err
		}
	}
	return nil
}

// GetState reads one structured state key of an object. Missing keys
// resolve to the class default (or kvstore.ErrNotFound-compatible
// memtable.ErrNotFound when there is none).
func (rt *ClassRuntime) GetState(ctx context.Context, objectID, key string) (json.RawMessage, error) {
	spec, ok := rt.class.Key(key)
	if !ok {
		return nil, fmt.Errorf("runtime: class %s has no key %q", rt.class.Name, key)
	}
	if spec.Kind == model.KindFile {
		return nil, fmt.Errorf("runtime: key %q is a file; use PresignFile", key)
	}
	v, err := rt.table.Get(ctx, rt.stateKey(objectID, key))
	if errors.Is(err, memtable.ErrNotFound) && len(spec.Default) > 0 {
		return spec.Default, nil
	}
	return v, err
}

// PutState writes one structured state key of an object directly
// (outside a method invocation — used by the gateway's state API).
func (rt *ClassRuntime) PutState(ctx context.Context, objectID, key string, value json.RawMessage) error {
	spec, ok := rt.class.Key(key)
	if !ok {
		return fmt.Errorf("runtime: class %s has no key %q", rt.class.Name, key)
	}
	if spec.Kind == model.KindFile {
		return fmt.Errorf("runtime: key %q is a file; upload via presigned URL", key)
	}
	return rt.table.Put(ctx, rt.stateKey(objectID, key), value)
}

// PresignFile returns a presigned URL authorizing method on an
// object's file key (paper §III-D).
func (rt *ClassRuntime) PresignFile(objectID, key, method string) (string, error) {
	spec, ok := rt.class.Key(key)
	if !ok || spec.Kind != model.KindFile {
		return "", fmt.Errorf("runtime: class %s has no file key %q", rt.class.Name, key)
	}
	if rt.infra.Objects == nil {
		return "", errors.New("runtime: no object store configured")
	}
	return rt.infra.Objects.PresignURL(rt.infra.ObjectsBaseURL, method, rt.Bucket(),
		rt.fileKey(objectID, key), rt.infra.PresignTTL), nil
}

// loadState gathers an object's structured state for task bundling.
func (rt *ClassRuntime) loadState(ctx context.Context, objectID string) (map[string]json.RawMessage, error) {
	state := make(map[string]json.RawMessage)
	for _, k := range rt.class.Keys {
		if k.Kind == model.KindFile {
			continue
		}
		v, err := rt.table.Get(ctx, rt.stateKey(objectID, k.Name))
		switch {
		case err == nil:
			state[k.Name] = v
		case errors.Is(err, memtable.ErrNotFound):
			if len(k.Default) > 0 {
				state[k.Name] = k.Default
			}
		default:
			return nil, fmt.Errorf("runtime: loading state %s/%s: %w", objectID, k.Name, err)
		}
	}
	return state, nil
}

// buildRefs assembles presigned URLs for the object's file keys: for
// each file key K the task gets K (GET) and "K!put" (PUT).
func (rt *ClassRuntime) buildRefs(objectID string) (map[string]string, error) {
	files := rt.class.FileKeys()
	if len(files) == 0 {
		return nil, nil
	}
	if rt.infra.Objects == nil {
		return nil, errors.New("runtime: class has file keys but no object store configured")
	}
	refs := make(map[string]string, 2*len(files))
	for _, k := range files {
		refs[k] = rt.infra.Objects.PresignURL(rt.infra.ObjectsBaseURL, http.MethodGet,
			rt.Bucket(), rt.fileKey(objectID, k), rt.infra.PresignTTL)
		refs[k+"!put"] = rt.infra.Objects.PresignURL(rt.infra.ObjectsBaseURL, http.MethodPut,
			rt.Bucket(), rt.fileKey(objectID, k), rt.infra.PresignTTL)
	}
	return refs, nil
}

// Invoke executes one method on an object: it bundles the object's
// state and the request into a standalone task, offloads it to the
// FaaS engine, and merges the returned state delta back into the state
// table (the pure-function contract, paper §III-C).
func (rt *ClassRuntime) Invoke(ctx context.Context, objectID, function string, payload json.RawMessage, args map[string]string) (json.RawMessage, error) {
	fn, ok := rt.class.Function(function)
	if !ok {
		return nil, fmt.Errorf("%w: %s.%s", ErrFunctionUnknown, rt.class.Name, function)
	}
	start := rt.infra.Clock.Now()
	out, err := rt.invokeFn(ctx, objectID, fn, payload, args)
	rt.reg.Histogram("invoke.latency").Observe(rt.infra.Clock.Since(start))
	rt.reg.Counter("invoke.total").Inc()
	rt.meter.Mark(1)
	if err != nil {
		rt.reg.Counter("invoke.errors").Inc()
		return nil, err
	}
	return out, nil
}

// invokeFn is the uninstrumented invocation path.
func (rt *ClassRuntime) invokeFn(ctx context.Context, objectID string, fn model.FunctionDef, payload json.RawMessage, args map[string]string) (json.RawMessage, error) {
	state, err := rt.loadState(ctx, objectID)
	if err != nil {
		return nil, err
	}
	refs, err := rt.buildRefs(objectID)
	if err != nil {
		return nil, err
	}
	task := invoker.Task{
		ID:       fmt.Sprintf("%s-%s-%d", objectID, fn.Name, rt.infra.Clock.Now().UnixNano()),
		Class:    rt.class.Name,
		Object:   objectID,
		Function: fn.Name,
		State:    state,
		Payload:  payload,
		Args:     args,
		Refs:     refs,
	}
	res, err := rt.engine.Invoke(ctx, rt.fnKey(fn.Name), task)
	if err != nil {
		return nil, err
	}
	// Persist the state delta.
	for k, v := range res.State {
		if _, ok := rt.class.Key(k); !ok {
			return nil, fmt.Errorf("runtime: function %s.%s wrote undeclared key %q", rt.class.Name, fn.Name, k)
		}
		key := rt.stateKey(objectID, k)
		if isNull(v) {
			if err := rt.table.Delete(ctx, key); err != nil {
				return nil, err
			}
			continue
		}
		if err := rt.table.Put(ctx, key, v); err != nil {
			return nil, err
		}
	}
	return res.Output, nil
}

func isNull(v json.RawMessage) bool {
	s := strings.TrimSpace(string(v))
	return s == "" || s == "null"
}

// InvokeDataflow runs a declared dataflow on an object. Each step
// invokes a class method on the same object; state deltas persist
// step-by-step per the pure-function contract.
func (rt *ClassRuntime) InvokeDataflow(ctx context.Context, objectID, flow string, payload json.RawMessage) (dataflow.Result, error) {
	plan, ok := rt.plans[flow]
	if !ok {
		return dataflow.Result{}, fmt.Errorf("%w: %s.%s", ErrDataflowUnknown, rt.class.Name, flow)
	}
	invoke := func(ctx context.Context, function string, payload json.RawMessage) (json.RawMessage, error) {
		return rt.Invoke(ctx, objectID, function, payload, nil)
	}
	return plan.Execute(ctx, payload, invoke)
}

// Flush forces pending state to the backing store.
func (rt *ClassRuntime) Flush(ctx context.Context) { rt.table.Flush(ctx) }

// Close tears the runtime down: engine first (stops traffic), then the
// state table (final flush).
func (rt *ClassRuntime) Close() {
	if rt.engine != nil {
		rt.engine.Close()
	}
	if rt.table != nil {
		rt.table.Close()
	}
}
