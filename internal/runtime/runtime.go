package runtime

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"maps"
	"math"
	"net/http"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/hpcclab/oparaca-go/internal/cluster"
	"github.com/hpcclab/oparaca-go/internal/dataflow"
	"github.com/hpcclab/oparaca-go/internal/faas"
	"github.com/hpcclab/oparaca-go/internal/invoker"
	"github.com/hpcclab/oparaca-go/internal/kvstore"
	"github.com/hpcclab/oparaca-go/internal/memtable"
	"github.com/hpcclab/oparaca-go/internal/metrics"
	"github.com/hpcclab/oparaca-go/internal/model"
	"github.com/hpcclab/oparaca-go/internal/objectstore"
	"github.com/hpcclab/oparaca-go/internal/striped"
	"github.com/hpcclab/oparaca-go/internal/trace"
	"github.com/hpcclab/oparaca-go/internal/trigger"
	"github.com/hpcclab/oparaca-go/internal/vclock"
)

// Sentinel errors.
var (
	// ErrFunctionUnknown is returned for invocations of undeclared
	// methods.
	ErrFunctionUnknown = errors.New("runtime: function not declared on class")
	// ErrDataflowUnknown is returned for undeclared dataflows.
	ErrDataflowUnknown = errors.New("runtime: dataflow not declared on class")
	// ErrDeadlineExceeded is returned when an invocation outlives its
	// effective deadline (function TimeoutMs > class TimeoutMs >
	// platform default > request deadline). It wraps
	// context.DeadlineExceeded so errors.Is matches either sentinel.
	// An expired invocation never commits its state delta.
	ErrDeadlineExceeded = fmt.Errorf("runtime: invocation deadline exceeded: %w", context.DeadlineExceeded)
)

// Infra bundles the shared platform substrates a class runtime is
// wired to.
type Infra struct {
	// Cluster hosts function pods; required.
	Cluster *cluster.Cluster
	// Transport executes invocation tasks; required.
	Transport invoker.Transport
	// Backing is the persistent document store (required unless every
	// template is memory-only).
	Backing *kvstore.Store
	// Objects stores unstructured state; optional (file keys fail
	// without it).
	Objects *objectstore.Store
	// ObjectsBaseURL is the address the object store is served on,
	// used to render presigned URLs.
	ObjectsBaseURL string
	// PresignTTL bounds presigned URL validity. Defaults to 15min.
	PresignTTL time.Duration
	// KnativeOverhead / BypassOverhead are the per-request data-path
	// costs of the two engine modes (activator hop vs direct).
	KnativeOverhead time.Duration
	BypassOverhead  time.Duration
	// ColdStart is the pod warmup delay.
	ColdStart time.Duration
	// ScaleInterval / IdleTimeout drive the Knative autoscaler.
	ScaleInterval time.Duration
	IdleTimeout   time.Duration
	// ConcurrencyMode is the platform default for classes that do not
	// declare their own (model.ClassDef.Concurrency). Empty means
	// model.ConcurrencyAdaptive.
	ConcurrencyMode model.ConcurrencyMode
	// DefaultInvokeTimeout bounds invocations whose function and class
	// declare no TimeoutMs of their own. Zero leaves such invocations
	// without a platform-imposed deadline (request contexts still
	// apply).
	DefaultInvokeTimeout time.Duration
	// Events receives one trigger.StateChanged event per committed
	// write invocation with a non-empty state delta on a stateful class
	// — emitted by every commit path (locked window, OCC/adaptive CAS
	// commit, InvokeBatch group commit) after the commit lands, never
	// on abort, for readonly calls, or for committed calls that wrote
	// nothing (no state changed, so there is nothing to react to). nil
	// disables emission.
	Events func(trigger.Event)
	// EventsNeeded, when set, reports whether any event consumer — a
	// durable event log, a matching subscription, or a live stream —
	// currently exists for the class. Commit paths consult it before
	// constructing an event so a bus nobody listens to costs the warm
	// path nothing. nil means events are always needed.
	EventsNeeded func(class string) bool
	// EventsBatch, when set, receives the StateChanged events of one
	// group-committed invocation batch as a single publication (all
	// events share the object): the bus appends them to the durable
	// event log in one backing write, matching the group commit's own
	// one-write cost. nil falls back to per-event Events calls.
	EventsBatch func([]trigger.Event)
	// TombstoneTTL evicts a deleted key's version tombstone this long
	// after the deletion, bounding state-table growth under object
	// churn (see memtable.Config.TombstoneTTL). Zero keeps tombstones
	// forever.
	TombstoneTTL time.Duration
	// TombstoneGCInterval overrides the tombstone sweep period.
	TombstoneGCInterval time.Duration
	// Degraded reports whether the backing store is currently
	// unavailable (the platform wires it to the store's circuit
	// breaker); forwarded to the state table so cache hits served
	// during an outage are surfaced as degraded reads. nil means never
	// degraded.
	Degraded func() bool
	// Fence, when set, is consulted at every commit exit (locked, OCC,
	// adaptive, and group-commit) immediately before the state delta is
	// persisted. A non-nil return aborts the commit without writing
	// anything — the cluster ownership layer uses it to reject commits
	// admitted under an ownership epoch that has since moved, so a
	// paused or partitioned ex-owner can never double-commit. nil (the
	// default, and whenever ownership is disabled) costs the warm path
	// nothing. Read-only invocations and empty deltas never fence: they
	// commit nothing, so there is nothing to protect.
	Fence func(ctx context.Context, objectID string) error
	// PprofLabels wraps handler execution in runtime/pprof.Do with
	// class/function labels so CPU profiles attribute samples to
	// handlers. Off by default: a goroutine-label swap per invocation
	// is measurable on the warm path.
	PprofLabels bool
	// Clock supplies time; defaults to the real clock.
	Clock vclock.Clock
}

func (i Infra) withDefaults() Infra {
	if i.Clock == nil {
		i.Clock = vclock.NewReal()
	}
	if i.PresignTTL <= 0 {
		i.PresignTTL = 15 * time.Minute
	}
	return i
}

// ClassRuntime is the dedicated deployment for one class.
type ClassRuntime struct {
	class *model.Class
	tmpl  Template
	infra Infra

	engine *faas.Engine
	table  *memtable.Table
	plans  map[string]*dataflow.Plan

	// stateSpecs are the class's structured (non-file) keys, cached so
	// the hot path never re-filters class.Keys.
	stateSpecs []model.KeySpec
	// fnKeys maps each declared function name to its engine-level key,
	// precomputed at construction so the hot path never re-concatenates
	// it. Read-only after New.
	fnKeys map[string]string
	// pprofLabels holds the per-function class/fn label set used when
	// Infra.PprofLabels is on, precomputed so the hot path never
	// rebuilds it. Read-only after New.
	pprofLabels map[string]pprof.LabelSet
	// keyCache memoizes per-object table-key slices (see pool.go);
	// keyCacheLen approximates its size for the wholesale-reset bound.
	keyCache    sync.Map
	keyCacheLen atomic.Int64
	// concMode is the resolved concurrency mode for this class (class
	// declaration > platform default > adaptive).
	concMode model.ConcurrencyMode
	// occKeysOnly narrows optimistic commit validation from the full
	// read set to the written keys (model.OCCValidateKeys): methods
	// touching disjoint keys of one wide object stop aborting each
	// other, at the cost of admitting write skew on unwritten reads.
	occKeysOnly bool
	// objLocks serializes the load→invoke→merge window of concurrent
	// invocations on one object in the locked mode and in OCC/adaptive
	// fallbacks (see invokeFn). Striped: two distinct objects contend
	// only on a stripe collision (1/objLockStripes per pair), trading
	// a bounded chance of transient false sharing for constant memory.
	objLocks *striped.Mutexes
	// delGuard keeps administrative state operations serialized with
	// lock-free invocations: optimistic invocations hold their
	// object's stripe shared across the whole snapshot→run→commit
	// window (so they still interleave with each other), while
	// DeleteObjectState/InitObjectState take it exclusive — a delete
	// therefore waits out every in-flight invocation and no commit
	// retry can resurrect a deleted object. Lock order where both are
	// taken: delGuard before objLocks.
	delGuard *striped.RWMutexes
	// contention tracks CAS abort pressure per object (striped like
	// objLocks; a collision merely shares an EWMA, which only skews
	// the adaptive heuristic, never correctness).
	contention []contentionTracker
	// taskSeq generates invocation task IDs; seeded from the clock at
	// construction so IDs stay unique across runtime generations.
	taskSeq atomic.Uint64
	// leakedHandlers gauges handlers still running detached after
	// their invocation's deadline expired: the watchdog fails the
	// invocation and abandons the handler goroutine, and a reaper
	// decrements the gauge when the handler finally returns. A bounded
	// value means abandoned handlers terminate rather than pile up.
	leakedHandlers atomic.Int64

	// refsCache memoizes presigned file refs per object; entries are
	// regenerated once half the presign TTL has elapsed so handed-out
	// URLs always carry at least TTL/2 of remaining validity.
	refsMu    sync.Mutex
	refsCache map[string]refsEntry

	reg   *metrics.Registry
	meter *metrics.Meter
}

// refsEntry is one cached presigned-ref bundle.
type refsEntry struct {
	refs    map[string]string
	refresh time.Time // regenerate once this instant passes
}

// maxPresignCacheObjects bounds the presign cache. Hitting the bound
// resets the whole cache; entries are cheap to regenerate.
const maxPresignCacheObjects = 8192

// objLockStripes sizes the per-object lock table. 1024 stripes is 8KiB
// per class runtime and keeps the per-pair collision probability at
// ~0.1%, so false serialization between distinct hot objects is rare
// and transient.
const objLockStripes = 1024

// Optimistic-concurrency tuning.
const (
	// maxOCCAttempts bounds the lock-free retry loop; past it the
	// invocation finishes under the object's stripe lock so progress
	// never depends on winning a CAS race.
	maxOCCAttempts = 4
	// maxLockedCASAttempts bounds the under-lock retry loop. Aborts
	// there come only from lock-free stragglers or direct PutState
	// writes, each of which implies another commit succeeded, so the
	// cap is a livelock backstop rather than an expected path.
	maxLockedCASAttempts = 16
	// contentionAlpha is the abort-rate EWMA smoothing factor.
	contentionAlpha = 0.125
	// lockFallbackRate / occResumeRate are the adaptive hysteresis
	// thresholds: above the first the object's invocations take the
	// striped lock, below the second they return to lock-free OCC.
	lockFallbackRate = 0.5
	occResumeRate    = 0.15
)

// contentionTracker is a per-stripe abort-rate EWMA plus the sticky
// locked/optimistic decision it drives. All fields are atomics: the
// tracker sits on the hot path of every invocation in adaptive mode.
type contentionTracker struct {
	ewma   atomic.Uint64 // math.Float64bits of the abort-rate EWMA
	locked atomic.Bool   // currently degraded to the striped lock
}

// record folds one commit-attempt outcome (abort or success) into the
// EWMA.
func (c *contentionTracker) record(abort bool) {
	x := 0.0
	if abort {
		x = 1.0
	}
	for {
		old := c.ewma.Load()
		cur := math.Float64frombits(old)
		next := cur + contentionAlpha*(x-cur)
		if c.ewma.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// useLocked decides, with hysteresis, whether the next invocation on
// this stripe should run under the lock.
func (c *contentionTracker) useLocked() bool {
	rate := math.Float64frombits(c.ewma.Load())
	if c.locked.Load() {
		if rate < occResumeRate {
			c.locked.Store(false)
			return false
		}
		return true
	}
	if rate > lockFallbackRate {
		c.locked.Store(true)
		return true
	}
	return false
}

// New instantiates a class runtime from a template (paper Figure 2:
// "for a specific class, Oparaca uses one of its predefined templates
// to create a class runtime").
func New(infra Infra, class *model.Class, tmpl Template) (*ClassRuntime, error) {
	if class == nil {
		return nil, errors.New("runtime: nil class")
	}
	if err := tmpl.Validate(); err != nil {
		return nil, err
	}
	infra = infra.withDefaults()
	if infra.Cluster == nil || infra.Transport == nil {
		return nil, errors.New("runtime: Infra needs Cluster and Transport")
	}
	if tmpl.TableMode != memtable.ModeMemoryOnly && infra.Backing == nil {
		return nil, fmt.Errorf("runtime: template %q needs Infra.Backing", tmpl.Name)
	}

	table, err := memtable.New(memtable.Config{
		Mode:                tmpl.TableMode,
		Backing:             infra.Backing,
		Shards:              tmpl.Shards,
		FlushInterval:       tmpl.FlushInterval,
		FlushBatchSize:      tmpl.FlushBatchSize,
		TombstoneTTL:        infra.TombstoneTTL,
		TombstoneGCInterval: infra.TombstoneGCInterval,
		Degraded:            infra.Degraded,
		Clock:               infra.Clock,
	})
	if err != nil {
		return nil, fmt.Errorf("runtime: creating state table: %w", err)
	}

	overhead := infra.KnativeOverhead
	if tmpl.EngineMode == faas.ModeDeployment {
		overhead = infra.BypassOverhead
	}
	engine, err := faas.NewEngine(faas.Config{
		Mode:            tmpl.EngineMode,
		Cluster:         infra.Cluster,
		Transport:       infra.Transport,
		ScaleInterval:   infra.ScaleInterval,
		IdleTimeout:     infra.IdleTimeout,
		ColdStart:       infra.ColdStart,
		RequestOverhead: overhead,
		Clock:           infra.Clock,
	})
	if err != nil {
		table.Close()
		return nil, fmt.Errorf("runtime: creating engine: %w", err)
	}

	delGuard := striped.NewRW(objLockStripes)
	rt := &ClassRuntime{
		class:      class,
		tmpl:       tmpl,
		infra:      infra,
		engine:     engine,
		table:      table,
		plans:      make(map[string]*dataflow.Plan, len(class.Dataflows)),
		objLocks:   striped.New(objLockStripes),
		delGuard:   delGuard,
		contention: make([]contentionTracker, delGuard.Len()),
		refsCache:  make(map[string]refsEntry),
		reg:        metrics.NewRegistry(),
		meter:      metrics.NewMeter(10*time.Second, 10, infra.Clock.Now),
	}
	for _, k := range class.Keys {
		if k.Kind != model.KindFile {
			rt.stateSpecs = append(rt.stateSpecs, k)
		}
	}
	rt.fnKeys = make(map[string]string, len(class.Functions))
	for _, fn := range class.Functions {
		rt.fnKeys[fn.Name] = rt.fnKey(fn.Name)
	}
	if infra.PprofLabels {
		rt.pprofLabels = make(map[string]pprof.LabelSet, len(class.Functions))
		for _, fn := range class.Functions {
			rt.pprofLabels[fn.Name] = pprof.Labels("class", class.Name, "fn", fn.Name)
		}
	}
	rt.occKeysOnly = class.OCCValidate == model.OCCValidateKeys
	rt.concMode = class.Concurrency
	if rt.concMode == model.ConcurrencyDefault {
		rt.concMode = infra.ConcurrencyMode
	}
	if rt.concMode == model.ConcurrencyDefault {
		rt.concMode = model.ConcurrencyAdaptive
	}
	if !rt.concMode.Valid() {
		rt.Close()
		return nil, fmt.Errorf("runtime: invalid concurrency mode %q (want occ, locked or adaptive)", rt.concMode)
	}
	rt.taskSeq.Store(uint64(infra.Clock.Now().UnixNano()))

	for _, fn := range class.Functions {
		conc := fn.Concurrency
		if conc <= 0 {
			conc = tmpl.DefaultConcurrency
		}
		spec := faas.FunctionSpec{
			Name:         rt.fnKey(fn.Name),
			Image:        fn.Image,
			Concurrency:  conc,
			Cost:         tmpl.InvokeCost,
			MinScale:     tmpl.MinScale,
			MaxScale:     tmpl.MaxScale,
			InitialScale: tmpl.InitialScale,
			// The jurisdiction constraint pins function pods to the
			// matching data center (paper §II-C).
			Region: class.Constraint.Jurisdiction,
		}
		if err := engine.Deploy(spec); err != nil {
			rt.Close()
			return nil, fmt.Errorf("runtime: deploying %s: %w", spec.Name, err)
		}
	}
	for _, df := range class.Dataflows {
		plan, err := dataflow.Compile(df)
		if err != nil {
			rt.Close()
			return nil, fmt.Errorf("runtime: compiling dataflow %s.%s: %w", class.Name, df.Name, err)
		}
		rt.plans[df.Name] = plan
	}
	if rt.infra.Objects != nil && len(class.FileKeys()) > 0 {
		if err := rt.infra.Objects.EnsureBucket(rt.Bucket()); err != nil {
			rt.Close()
			return nil, fmt.Errorf("runtime: creating bucket: %w", err)
		}
	}
	return rt, nil
}

// Class returns the runtime's resolved class.
func (rt *ClassRuntime) Class() *model.Class { return rt.class }

// Template returns the template the runtime was instantiated from.
func (rt *ClassRuntime) Template() Template { return rt.tmpl }

// Engine exposes the runtime's FaaS engine (used by the optimizer).
func (rt *ClassRuntime) Engine() *faas.Engine { return rt.engine }

// Table exposes the runtime's state table (used by benches/tests).
func (rt *ClassRuntime) Table() *memtable.Table { return rt.table }

// Metrics exposes the runtime's metric registry.
func (rt *ClassRuntime) Metrics() *metrics.Registry { return rt.reg }

// ConcurrencyMode returns the resolved invocation concurrency mode.
func (rt *ClassRuntime) ConcurrencyMode() model.ConcurrencyMode { return rt.concMode }

// ConcurrencyStats counts optimistic-concurrency outcomes for one
// class runtime.
type ConcurrencyStats struct {
	// Mode is the resolved concurrency mode ("occ", "locked",
	// "adaptive").
	Mode string `json:"mode"`
	// Commits counts committed write invocations: one per successful
	// version-validated per-call commit, and one per call carried by a
	// successful merged group commit (InvokeBatch), so the counter
	// tracks invocations, not CAS operations. Aborts counts commit
	// passes rejected on a version mismatch; Retries counts
	// re-load+re-run passes after an abort; Fallbacks counts
	// invocations (or groups) that ran under the stripe lock because
	// of retry exhaustion or an adaptive degradation.
	Commits   int64 `json:"commits"`
	Aborts    int64 `json:"aborts"`
	Retries   int64 `json:"retries"`
	Fallbacks int64 `json:"fallbacks"`
	// Readonly counts invocations served by the lock-free read-only
	// fast path.
	Readonly int64 `json:"readonly"`
}

// ConcurrencyStats snapshots the runtime's OCC counters.
func (rt *ClassRuntime) ConcurrencyStats() ConcurrencyStats {
	return ConcurrencyStats{
		Mode:      string(rt.concMode),
		Commits:   rt.reg.Counter("occ.commits").Value(),
		Aborts:    rt.reg.Counter("occ.aborts").Value(),
		Retries:   rt.reg.Counter("occ.retries").Value(),
		Fallbacks: rt.reg.Counter("occ.fallbacks").Value(),
		Readonly:  rt.reg.Counter("invoke.readonly").Value(),
	}
}

// ThroughputRPS reports the invocation rate over the last window.
func (rt *ClassRuntime) ThroughputRPS() float64 { return rt.meter.Rate() }

// Bucket returns the class's object-store bucket name.
func (rt *ClassRuntime) Bucket() string {
	return "cls-" + strings.ToLower(rt.class.Name)
}

// fnKey is the engine-level function name for a class method.
func (rt *ClassRuntime) fnKey(fn string) string {
	return rt.class.Name + "." + fn
}

// fnKeyFor is fnKey served from the precomputed table (falling back to
// concatenation for undeclared names, e.g. probes in tests).
func (rt *ClassRuntime) fnKeyFor(fn string) string {
	if k, ok := rt.fnKeys[fn]; ok {
		return k
	}
	return rt.fnKey(fn)
}

// stateKey is the table key for one object's state attribute.
func (rt *ClassRuntime) stateKey(objectID, key string) string {
	return "state/" + rt.class.Name + "/" + objectID + "/" + key
}

// fileKey is the object-store key for one object's file attribute.
func (rt *ClassRuntime) fileKey(objectID, key string) string {
	return objectID + "/" + key
}

// lockObject serializes state mutations for one object when the class
// is stateful. The returned func releases the stripe; for stateless
// classes it is a no-op.
func (rt *ClassRuntime) lockObject(objectID string) func() {
	if len(rt.stateSpecs) == 0 {
		return func() {}
	}
	mu := rt.objLocks.For(objectID)
	mu.Lock()
	return mu.Unlock
}

// InitObjectState writes the class's default values for a new object.
// It holds the object's delete guard exclusive so concurrent
// optimistic invocations cannot interleave with initialization.
func (rt *ClassRuntime) InitObjectState(ctx context.Context, objectID string) error {
	if len(rt.stateSpecs) > 0 {
		guard := rt.delGuard.For(objectID)
		guard.Lock()
		defer guard.Unlock()
	}
	defer rt.lockObject(objectID)()
	for _, k := range rt.class.Keys {
		if k.Kind == model.KindFile || len(k.Default) == 0 {
			continue
		}
		if err := rt.table.Put(ctx, rt.stateKey(objectID, k.Name), k.Default); err != nil {
			return fmt.Errorf("runtime: initializing %s/%s: %w", objectID, k.Name, err)
		}
	}
	return nil
}

// DeleteObjectState removes all of an object's state. It takes the
// object's delete guard exclusive and its lock stripe, so neither a
// locked invocation's merge nor an optimistic invocation's commit
// retry can resurrect state for a deleted object.
func (rt *ClassRuntime) DeleteObjectState(ctx context.Context, objectID string) error {
	if len(rt.stateSpecs) > 0 {
		guard := rt.delGuard.For(objectID)
		guard.Lock()
		defer guard.Unlock()
	}
	defer rt.lockObject(objectID)()
	rt.refsMu.Lock()
	delete(rt.refsCache, objectID)
	rt.refsMu.Unlock()
	for _, k := range rt.class.Keys {
		if k.Kind == model.KindFile {
			if rt.infra.Objects != nil {
				if err := rt.infra.Objects.Delete(rt.Bucket(), rt.fileKey(objectID, k.Name)); err != nil &&
					!errors.Is(err, objectstore.ErrNoSuchBucket) {
					return err
				}
			}
			continue
		}
		if err := rt.table.Delete(ctx, rt.stateKey(objectID, k.Name)); err != nil {
			return err
		}
	}
	return nil
}

// GetState reads one structured state key of an object. Missing keys
// resolve to the class default (or kvstore.ErrNotFound-compatible
// memtable.ErrNotFound when there is none).
func (rt *ClassRuntime) GetState(ctx context.Context, objectID, key string) (json.RawMessage, error) {
	spec, ok := rt.class.Key(key)
	if !ok {
		return nil, fmt.Errorf("runtime: class %s has no key %q", rt.class.Name, key)
	}
	if spec.Kind == model.KindFile {
		return nil, fmt.Errorf("runtime: key %q is a file; use PresignFile", key)
	}
	v, err := rt.table.Get(ctx, rt.stateKey(objectID, key))
	if errors.Is(err, memtable.ErrNotFound) && len(spec.Default) > 0 {
		return spec.Default, nil
	}
	return v, err
}

// PutState writes one structured state key of an object directly
// (outside a method invocation — used by the gateway's state API).
func (rt *ClassRuntime) PutState(ctx context.Context, objectID, key string, value json.RawMessage) error {
	spec, ok := rt.class.Key(key)
	if !ok {
		return fmt.Errorf("runtime: class %s has no key %q", rt.class.Name, key)
	}
	if spec.Kind == model.KindFile {
		return fmt.Errorf("runtime: key %q is a file; upload via presigned URL", key)
	}
	return rt.table.Put(ctx, rt.stateKey(objectID, key), value)
}

// PresignFile returns a presigned URL authorizing method on an
// object's file key (paper §III-D).
func (rt *ClassRuntime) PresignFile(objectID, key, method string) (string, error) {
	spec, ok := rt.class.Key(key)
	if !ok || spec.Kind != model.KindFile {
		return "", fmt.Errorf("runtime: class %s has no file key %q", rt.class.Name, key)
	}
	if rt.infra.Objects == nil {
		return "", errors.New("runtime: no object store configured")
	}
	return rt.infra.Objects.PresignURL(rt.infra.ObjectsBaseURL, method, rt.Bucket(),
		rt.fileKey(objectID, key), rt.infra.PresignTTL), nil
}

// loadState gathers an object's structured state for task bundling in
// one batched table read: every key of the object travels in a single
// GetMany, so a fully cold object costs one backing-store round trip
// instead of one per key.
func (rt *ClassRuntime) loadState(ctx context.Context, objectID string) (_ map[string]json.RawMessage, err error) {
	state := make(map[string]json.RawMessage, len(rt.stateSpecs))
	if len(rt.stateSpecs) == 0 {
		return state, nil
	}
	sp := trace.FromContext(ctx).Child("load")
	defer func() { sp.Error(err); sp.End() }()
	keys := rt.keysFor(objectID)
	sc := getScratch()
	defer sc.release()
	if err := rt.table.GetManyInto(ctx, keys.keys, sc.raw); err != nil {
		return nil, fmt.Errorf("runtime: loading state %s: %w", objectID, err)
	}
	for i, k := range rt.stateSpecs {
		if v, ok := sc.raw[keys.keys[i]]; ok {
			state[k.Name] = v
		} else if len(k.Default) > 0 {
			state[k.Name] = k.Default
		}
	}
	return state, nil
}

// buildRefs assembles presigned URLs for the object's file keys: for
// each file key K the task gets K (GET) and "K!put" (PUT). Refs are
// deterministic until their expiry, so they are cached per object and
// regenerated once half the presign TTL has elapsed — every URL handed
// to a task keeps at least TTL/2 of validity. Each call returns a
// fresh shallow copy so a handler mutating its Task.Refs cannot race
// or poison other invocations; the HMAC signing is the part worth
// caching, not the map.
func (rt *ClassRuntime) buildRefs(objectID string) (map[string]string, error) {
	files := rt.class.FileKeys()
	if len(files) == 0 {
		return nil, nil
	}
	if rt.infra.Objects == nil {
		return nil, errors.New("runtime: class has file keys but no object store configured")
	}
	now := rt.infra.Clock.Now()
	rt.refsMu.Lock()
	if e, ok := rt.refsCache[objectID]; ok && now.Before(e.refresh) {
		rt.refsMu.Unlock()
		return maps.Clone(e.refs), nil
	}
	rt.refsMu.Unlock()
	// Sign outside the lock: HMAC is the expensive part, and a raced
	// duplicate generation is harmless (last writer wins).
	refs := make(map[string]string, 2*len(files))
	for _, k := range files {
		refs[k] = rt.infra.Objects.PresignURL(rt.infra.ObjectsBaseURL, http.MethodGet,
			rt.Bucket(), rt.fileKey(objectID, k), rt.infra.PresignTTL)
		refs[k+"!put"] = rt.infra.Objects.PresignURL(rt.infra.ObjectsBaseURL, http.MethodPut,
			rt.Bucket(), rt.fileKey(objectID, k), rt.infra.PresignTTL)
	}
	rt.refsMu.Lock()
	if len(rt.refsCache) >= maxPresignCacheObjects {
		rt.refsCache = make(map[string]refsEntry)
	}
	rt.refsCache[objectID] = refsEntry{refs: refs, refresh: now.Add(rt.infra.PresignTTL / 2)}
	rt.refsMu.Unlock()
	return maps.Clone(refs), nil
}

// LeakedHandlers gauges handlers abandoned past their deadline that
// have not yet returned (see ClassRuntime.leakedHandlers).
func (rt *ClassRuntime) LeakedHandlers() int64 { return rt.leakedHandlers.Load() }

// effectiveTimeout resolves one function's invocation deadline:
// function TimeoutMs beats the class default beats the platform
// default. Zero means no declared deadline (the request context may
// still carry one).
func (rt *ClassRuntime) effectiveTimeout(fn model.FunctionDef) time.Duration {
	if fn.TimeoutMs > 0 {
		return time.Duration(fn.TimeoutMs) * time.Millisecond
	}
	if rt.class.TimeoutMs > 0 {
		return time.Duration(rt.class.TimeoutMs) * time.Millisecond
	}
	return rt.infra.DefaultInvokeTimeout
}

// EffectiveTimeout resolves the declared invocation deadline for one
// member name (zero when neither the function, the class nor the
// platform declares one). Unknown members resolve to the class or
// platform default — the asyncq deadline hook calls this before the
// member is validated.
func (rt *ClassRuntime) EffectiveTimeout(member string) time.Duration {
	fn, _ := rt.class.Function(member)
	return rt.effectiveTimeout(fn)
}

// deadlineError is the sentinel-wrapping error surfaced for one
// function's expired invocation.
func (rt *ClassRuntime) deadlineError(fn model.FunctionDef) error {
	return fmt.Errorf("%s.%s: %w", rt.class.Name, fn.Name, ErrDeadlineExceeded)
}

// ctxAbort translates an expired or cancelled invocation context into
// the error surfaced to the caller: deadline expiry maps to the
// runtime sentinel, plain cancellation passes through.
func (rt *ClassRuntime) ctxAbort(ctx context.Context, fn model.FunctionDef) error {
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		return rt.deadlineError(fn)
	}
	return ctx.Err()
}

// Invoke executes one method on an object: it bundles the object's
// state and the request into a standalone task, offloads it to the
// FaaS engine, and merges the returned state delta back into the state
// table (the pure-function contract, paper §III-C). The function's
// effective deadline (if any) is applied here, min-combining with
// whatever deadline the request context already carries.
func (rt *ClassRuntime) Invoke(ctx context.Context, objectID, function string, payload json.RawMessage, args map[string]string) (json.RawMessage, error) {
	fn, ok := rt.class.Function(function)
	if !ok {
		return nil, fmt.Errorf("%w: %s.%s", ErrFunctionUnknown, rt.class.Name, function)
	}
	if d := rt.effectiveTimeout(fn); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	start := rt.infra.Clock.Now()
	out, err := rt.invokeFn(ctx, objectID, fn, payload, args)
	rt.reg.Histogram("invoke.latency").Observe(rt.infra.Clock.Since(start))
	rt.reg.Counter("invoke.total").Inc()
	rt.meter.Mark(1)
	if err != nil {
		rt.reg.Counter("invoke.errors").Inc()
		return nil, err
	}
	return out, nil
}

// invokeFn is the uninstrumented invocation path. How the
// load→invoke→merge window is protected against concurrent invocations
// on the same object depends on the class's concurrency mode:
//
//   - locked: the whole window runs under the object's striped lock
//     (the PR-2 pessimistic baseline) — hot-object invocations queue.
//   - occ: the handler runs lock-free on a version-stamped snapshot
//     and the delta commits through a validated compare-and-swap
//     (memtable.PutManyIfVersion); on ErrVersionMismatch the
//     invocation re-loads and re-runs (the pure-function contract
//     makes re-execution safe), escalating to the exclusive
//     delete-guard barrier after maxOCCAttempts so progress never
//     depends on winning the race.
//   - adaptive (default): per-object abort-rate EWMA picks between
//     the two — lock-free while commits land, the serializing barrier
//     while the object is pathologically write-hot, back to lock-free
//     when aborts subside. Every non-locked commit is
//     version-validated, so mixing the regimes on one object cannot
//     lose updates.
//
// Functions annotated readonly skip locking and the merge/commit
// entirely and serve concurrently straight from the state table, in
// every mode. Stateless classes keep the PR-2 behaviour (no lock, no
// versioning — there is no state to race on), so parallel dataflow
// fan-out steps stay concurrent.
//
// Because lock-free invocations hold only the read side of their
// delete-guard stripe, the PR-2 rule that a handler must never
// synchronously invoke another stateful object of the same class is
// relaxed under occ: a nested invocation on a colliding stripe shares
// the read side and proceeds, where the old exclusive stripe
// deadlocked unconditionally. It can still deadlock if an exclusive
// acquisition (object delete/init, or a barrier fallback) wedges
// between the two read holds of one goroutine, so dataflows/async
// remain the guaranteed-safe composition; under locked mode the
// original constraint stands.
func (rt *ClassRuntime) invokeFn(ctx context.Context, objectID string, fn model.FunctionDef, payload json.RawMessage, args map[string]string) (json.RawMessage, error) {
	if fn.Readonly {
		return rt.invokeReadonly(ctx, objectID, fn, payload, args)
	}
	if len(rt.stateSpecs) == 0 || rt.concMode == model.ConcurrencyLocked {
		return rt.invokeLockedPlain(ctx, objectID, fn, payload, args)
	}
	// One hash resolves the object's stripe for both the delete guard
	// and its contention tracker, keeping the two aligned.
	stripe := rt.delGuard.Index(objectID)
	guard := rt.delGuard.At(stripe)
	tr := &rt.contention[stripe]
	if rt.concMode == model.ConcurrencyAdaptive && tr.useLocked() {
		rt.reg.Counter("occ.fallbacks").Inc()
		return rt.invokeBarrier(ctx, guard, objectID, fn, payload, args, tr)
	}
	out, err := rt.invokeOCC(ctx, guard, objectID, fn, payload, args, tr)
	if err != nil && errors.Is(err, memtable.ErrVersionMismatch) {
		// The bounded lock-free loop kept losing the commit race;
		// finish behind the barrier, which drains and excludes the
		// racers, so progress never depends on winning a CAS.
		rt.reg.Counter("occ.fallbacks").Inc()
		return rt.invokeBarrier(ctx, guard, objectID, fn, payload, args, tr)
	}
	return out, err
}

// contentionFor returns the contention tracker of an object's stripe
// (aligned with its delete-guard stripe).
func (rt *ClassRuntime) contentionFor(objectID string) *contentionTracker {
	return &rt.contention[rt.delGuard.Index(objectID)]
}

// eventsNeeded reports whether a committed delta on this class should
// be turned into a StateChanged event at all: an event sink must be
// wired, the class must be stateful, and — when the platform exposes
// consumer interest — someone (durable log, subscription, stream) must
// actually be listening. Checked before any event or key-slice
// allocation so an unobserved commit costs nothing.
func (rt *ClassRuntime) eventsNeeded() bool {
	if (rt.infra.Events == nil && rt.infra.EventsBatch == nil) || len(rt.stateSpecs) == 0 {
		return false
	}
	return rt.infra.EventsNeeded == nil || rt.infra.EventsNeeded(rt.class.Name)
}

// emitCommit publishes the StateChanged event of one committed write
// invocation: called once per committed call by every commit path,
// after its persistence step succeeded. Keys carries the sorted key
// names of the call's delta (deletes included), Depth the
// trigger-chain depth of the invocation so chained reactions can be
// cycle-limited. Committed calls whose delta is empty emit nothing —
// no state changed, so there is no mutation to react to — and neither
// do stateless classes.
func (rt *ClassRuntime) emitCommit(ctx context.Context, objectID string, fn model.FunctionDef, delta map[string]json.RawMessage, args map[string]string) {
	if len(delta) == 0 || !rt.eventsNeeded() {
		return
	}
	rt.emitCommitKeys(ctx, objectID, fn, deltaKeys(delta), args)
}

// emitCommitKeys is emitCommit for callers that already hold the
// delta's sorted key names (the group-commit path). The event carries
// the committing invocation's traceparent so the trigger plane
// (dispatch, webhook delivery) re-joins the trace.
func (rt *ClassRuntime) emitCommitKeys(ctx context.Context, objectID string, fn model.FunctionDef, keys []string, args map[string]string) {
	if len(keys) == 0 || rt.infra.Events == nil || !rt.eventsNeeded() {
		return
	}
	rt.infra.Events(trigger.Event{
		Type:     trigger.StateChanged,
		Class:    rt.class.Name,
		Object:   objectID,
		Function: fn.Name,
		Keys:     keys,
		Depth:    trigger.DepthOf(args),
		Trace:    trace.FromContext(ctx).Traceparent(),
	})
}

// deltaKeys returns a delta's key names, sorted (nil for an empty
// delta).
func deltaKeys(delta map[string]json.RawMessage) []string {
	if len(delta) == 0 {
		return nil
	}
	keys := make([]string, 0, len(delta))
	for k := range delta {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// engineInvoke offloads one task to the FaaS engine, tagging the
// handler's CPU samples with class/function pprof labels when
// Infra.PprofLabels is on.
func (rt *ClassRuntime) engineInvoke(ctx context.Context, fnk string, task invoker.Task) (invoker.Result, error) {
	ls, ok := rt.pprofLabels[task.Function]
	if !ok {
		return rt.engine.Invoke(ctx, fnk, task)
	}
	var res invoker.Result
	var err error
	pprof.Do(ctx, ls, func(ctx context.Context) {
		res, err = rt.engine.Invoke(ctx, fnk, task)
	})
	return res, err
}

// runTask bundles state and request into a standalone task and
// offloads it to the FaaS engine (the pure-function contract, paper
// §III-C). The stage runs under a "handler" span; a deadline expiry
// surfaces as the span's error, which keeps the trace.
func (rt *ClassRuntime) runTask(ctx context.Context, objectID string, fn model.FunctionDef, payload json.RawMessage, args map[string]string, state map[string]json.RawMessage) (_ invoker.Result, err error) {
	hs := trace.FromContext(ctx).Child("handler")
	if hs != nil {
		hs.SetAttr("class", rt.class.Name)
		hs.SetAttr("fn", fn.Name)
		defer func() { hs.Error(err); hs.End() }()
	}
	refs, err := rt.buildRefs(objectID)
	if err != nil {
		return invoker.Result{}, err
	}
	task := invoker.Task{
		ID:       buildTaskID(objectID, fn.Name, rt.taskSeq.Add(1)),
		Class:    rt.class.Name,
		Object:   objectID,
		Function: fn.Name,
		State:    state,
		Payload:  payload,
		Args:     args,
		Refs:     refs,
	}
	fnk := rt.fnKeyFor(fn.Name)
	if _, hasDeadline := ctx.Deadline(); !hasDeadline {
		// No deadline, no watchdog: the warm path stays a plain call.
		return rt.engineInvoke(ctx, fnk, task)
	}
	type outcome struct {
		res invoker.Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := rt.engineInvoke(ctx, fnk, task)
		done <- outcome{res, err}
	}()
	select {
	case out := <-done:
		if out.err != nil && errors.Is(ctx.Err(), context.DeadlineExceeded) {
			// The handler noticed the expiry itself (or failed after
			// it); either way the invocation is expired, not failed.
			return invoker.Result{}, rt.deadlineError(fn)
		}
		return out.res, out.err
	case <-ctx.Done():
		// A handler stuck past its deadline: fail the invocation now —
		// the commit guards guarantee it can never commit — and leave a
		// reaper behind so the leaked-handler gauge drops when the
		// abandoned goroutine finally returns.
		rt.leakedHandlers.Add(1)
		go func() {
			<-done
			rt.leakedHandlers.Add(-1)
		}()
		return invoker.Result{}, rt.ctxAbort(ctx, fn)
	}
}

// invokeReadonly is the read-only fast path: no lock, no merge, no
// commit — the state snapshot is served straight from the memtable and
// any state delta the handler returns is a contract violation.
func (rt *ClassRuntime) invokeReadonly(ctx context.Context, objectID string, fn model.FunctionDef, payload json.RawMessage, args map[string]string) (json.RawMessage, error) {
	state, err := rt.loadState(ctx, objectID)
	if err != nil {
		return nil, err
	}
	res, err := rt.runTask(ctx, objectID, fn, payload, args, state)
	if err != nil {
		return nil, err
	}
	if len(res.State) > 0 {
		return nil, fmt.Errorf("runtime: readonly function %s.%s returned a state delta", rt.class.Name, fn.Name)
	}
	rt.reg.Counter("invoke.readonly").Inc()
	return res.Output, nil
}

// invokeLockedPlain is the pessimistic path: the striped lock covers
// the whole window and the delta merges unconditionally (no version
// validation — under the lock, and with no lock-free writers in this
// mode, there is nothing to validate against). Stateless classes also
// land here with a no-op lock.
func (rt *ClassRuntime) invokeLockedPlain(ctx context.Context, objectID string, fn model.FunctionDef, payload json.RawMessage, args map[string]string) (json.RawMessage, error) {
	defer rt.lockObject(objectID)()
	state, err := rt.loadState(ctx, objectID)
	if err != nil {
		return nil, err
	}
	res, err := rt.runTask(ctx, objectID, fn, payload, args, state)
	if err != nil {
		return nil, err
	}
	// An invocation whose context expired while the handler ran must
	// never commit: the caller has been (or is being) failed with the
	// deadline error, so a late commit would be a lost-response write.
	if ctx.Err() != nil {
		return nil, rt.ctxAbort(ctx, fn)
	}
	// Persist the state delta: validate every key first so a rogue
	// delta persists nothing, then write all updates in one batched
	// table operation and apply deletions (JSON null values).
	if err := rt.validateDelta(fn, res.State); err != nil {
		return nil, err
	}
	var puts map[string]json.RawMessage
	var dels []string
	keys := rt.keysFor(objectID)
	for k, v := range res.State {
		key, ok := keys.byName[k]
		if !ok {
			key = rt.stateKey(objectID, k)
		}
		if isNull(v) {
			dels = append(dels, key)
			continue
		}
		if puts == nil {
			puts = make(map[string]json.RawMessage, len(res.State))
		}
		puts[key] = v
	}
	if len(puts) > 0 || len(dels) > 0 {
		csp := trace.FromContext(ctx).Child("commit")
		// Epoch fence: a commit admitted under moved ownership must not
		// land even though we hold the local object lock — the lock
		// means nothing to the new owner.
		if rt.infra.Fence != nil {
			if err := rt.infra.Fence(ctx, objectID); err != nil {
				csp.Error(err)
				csp.End()
				return nil, err
			}
		}
		if len(puts) > 0 {
			if err := rt.table.PutMany(ctx, puts); err != nil {
				csp.Error(err)
				csp.End()
				return nil, err
			}
		}
		for _, key := range dels {
			if err := rt.table.Delete(ctx, key); err != nil {
				csp.Error(err)
				csp.End()
				return nil, err
			}
		}
		csp.End()
	}
	rt.emitCommit(ctx, objectID, fn, res.State, args)
	return res.Output, nil
}

// stateSnapshot is one version-stamped view of an object's structured
// state. state maps key names to values (class defaults resolved) and
// is handler-facing, so it is allocated fresh per attempt — never
// pooled. keys and sc are invocation-internal: keys is the object's
// precomputed table-key bundle and sc.got holds the versioned read
// set (every snapshot key present; absent keys carry the version a
// creating CAS expects). The owning attempt releases sc.
type stateSnapshot struct {
	state map[string]json.RawMessage
	keys  *objectKeys
	sc    *invokeScratch
}

// loadStateVersioned gathers the object's structured state with the
// version of every key (including absent ones, whose version anchors a
// creating CAS), in one batched table read into the attempt's pooled
// scratch.
func (rt *ClassRuntime) loadStateVersioned(ctx context.Context, objectID string, sc *invokeScratch) (_ stateSnapshot, err error) {
	sp := trace.FromContext(ctx).Child("load")
	defer func() { sp.Error(err); sp.End() }()
	keys := rt.keysFor(objectID)
	clear(sc.got) // retry attempts reuse the scratch
	if err := rt.table.GetManyVersionedInto(ctx, keys.keys, sc.got); err != nil {
		return stateSnapshot{}, fmt.Errorf("runtime: loading state %s: %w", objectID, err)
	}
	state := make(map[string]json.RawMessage, len(rt.stateSpecs))
	for i, k := range rt.stateSpecs {
		if vv := sc.got[keys.keys[i]]; vv.Value != nil {
			state[k.Name] = vv.Value
		} else if len(k.Default) > 0 {
			state[k.Name] = k.Default
		}
	}
	return stateSnapshot{state: state, keys: keys, sc: sc}, nil
}

// buildCommit turns a handler's state delta into a version-validated
// commit: write ops for delta keys (JSON null deletes) and — in the
// default full-read-set mode — check-only ops for every other state
// key read by the handler, so decisions based on unwritten keys cannot
// commit against changed state (write skew). Under
// model.OCCValidateKeys only the written keys are validated: writers
// on disjoint keys of one object no longer abort each other, and the
// class has opted into write skew on its unwritten reads. Undeclared
// keys reject the whole delta; an empty delta returns no ops (nothing
// to commit). The returned map is the attempt's pooled scratch — valid
// until the snapshot's scratch is released.
func (rt *ClassRuntime) buildCommit(objectID string, fn model.FunctionDef, snap stateSnapshot, delta map[string]json.RawMessage) (map[string]memtable.CASOp, error) {
	if len(delta) == 0 {
		return nil, nil
	}
	if err := rt.validateDelta(fn, delta); err != nil {
		return nil, err
	}
	ops := snap.sc.ops
	clear(ops)
	if !rt.occKeysOnly {
		for _, key := range snap.keys.keys {
			ops[key] = memtable.CASOp{Expect: snap.sc.got[key].Version}
		}
	}
	for k, v := range delta {
		key, inSnap := snap.keys.byName[k]
		var op memtable.CASOp
		if inSnap {
			op = memtable.CASOp{Expect: snap.sc.got[key].Version}
		} else {
			// A declared key outside the structured snapshot (a file
			// key written as state): keep the pre-OCC unconditional
			// write semantics.
			key = rt.stateKey(objectID, k)
			op = memtable.CASOp{Expect: memtable.AnyVersion}
		}
		op.Write = true
		if !isNull(v) {
			op.Value = v
		}
		ops[key] = op
	}
	return ops, nil
}

// occAttempt runs one optimistic pass: snapshot, lock-free handler
// execution, validated commit. It returns memtable.ErrVersionMismatch
// when a concurrent commit invalidated the snapshot. The pooled
// scratch backing the snapshot and commit ops lives exactly as long as
// the attempt (the deferred release covers every exit, panic unwind
// included); only the never-pooled state map reaches the handler.
//
// Each pass runs under an "occ.attempt" span (the load/handler/commit
// spans nest inside it). A version-mismatch abort is normal protocol
// flow — it is recorded as a span attribute, not an error, so pure
// contention alone never forces a trace to be kept; fence rejections
// and real failures do surface as span errors.
func (rt *ClassRuntime) occAttempt(ctx context.Context, objectID string, fn model.FunctionDef, payload json.RawMessage, args map[string]string, attempt int) (_ json.RawMessage, err error) {
	if asp := trace.FromContext(ctx).Child("occ.attempt"); asp != nil {
		asp.SetInt("attempt", attempt)
		ctx = trace.ContextWith(ctx, asp)
		defer func() {
			if errors.Is(err, memtable.ErrVersionMismatch) {
				asp.SetAttr("abort", "version_mismatch")
			} else {
				asp.Error(err)
			}
			asp.End()
		}()
	}
	sc := getScratch()
	defer sc.release()
	snap, err := rt.loadStateVersioned(ctx, objectID, sc)
	if err != nil {
		return nil, err
	}
	res, err := rt.runTask(ctx, objectID, fn, payload, args, snap.state)
	if err != nil {
		return nil, err
	}
	// Expired invocations never commit (see invokeLockedPlain).
	if ctx.Err() != nil {
		return nil, rt.ctxAbort(ctx, fn)
	}
	ops, err := rt.buildCommit(objectID, fn, snap, res.State)
	if err != nil {
		return nil, err
	}
	if len(ops) > 0 {
		csp := trace.FromContext(ctx).Child("commit")
		// Epoch fence before the CAS: ownership that moved since
		// admission fails the attempt outright (the fence error is not
		// ErrVersionMismatch, so the OCC retry loop propagates it
		// instead of re-running against state this node no longer owns).
		if rt.infra.Fence != nil {
			if err := rt.infra.Fence(ctx, objectID); err != nil {
				csp.Error(err)
				csp.End()
				return nil, err
			}
		}
		if err := rt.table.PutManyIfVersion(ctx, ops); err != nil {
			if !errors.Is(err, memtable.ErrVersionMismatch) {
				csp.Error(err)
			}
			csp.End()
			return nil, err
		}
		csp.End()
	}
	// The validated commit landed (or there was nothing to commit):
	// this is the one success exit of the optimistic retry loops, so
	// the call's event is emitted exactly once — aborted passes return
	// through the ErrVersionMismatch path above and emit nothing.
	rt.emitCommit(ctx, objectID, fn, res.State, args)
	return res.Output, nil
}

// invokeOCC drives the bounded lock-free retry loop while holding the
// object's delete guard shared: concurrent invocations interleave
// freely, but an exclusive holder (object delete/init, or a barrier
// invocation) still waits out every in-flight window. Exhaustion
// returns the last ErrVersionMismatch; invokeFn escalates it to the
// barrier.
func (rt *ClassRuntime) invokeOCC(ctx context.Context, guard *sync.RWMutex, objectID string, fn model.FunctionDef, payload json.RawMessage, args map[string]string, tr *contentionTracker) (json.RawMessage, error) {
	guard.RLock()
	defer guard.RUnlock()
	var lastErr error
	for attempt := 0; attempt < maxOCCAttempts; attempt++ {
		if ctx.Err() != nil {
			return nil, rt.ctxAbort(ctx, fn)
		}
		if attempt > 0 {
			rt.reg.Counter("occ.retries").Inc()
		}
		out, err := rt.occAttempt(ctx, objectID, fn, payload, args, attempt)
		if err == nil {
			tr.record(false)
			rt.reg.Counter("occ.commits").Inc()
			return out, nil
		}
		if !errors.Is(err, memtable.ErrVersionMismatch) {
			return nil, err
		}
		tr.record(true)
		rt.reg.Counter("occ.aborts").Inc()
		lastErr = err
	}
	return nil, lastErr
}

// invokeBarrier runs the invocation holding the object's delete guard
// exclusive: pending writer acquisition drains the lock-free racers
// and blocks new ones, so the window is effectively serialized and a
// commit attempt can only be aborted by guard-free writers (direct
// PutState). The commit still goes through the version check — only a
// validated commit keeps exactness across regime mixes — and each
// under-barrier abort implies another commit landed, so the bounded
// loop is a livelock backstop, not an expected path.
func (rt *ClassRuntime) invokeBarrier(ctx context.Context, guard *sync.RWMutex, objectID string, fn model.FunctionDef, payload json.RawMessage, args map[string]string, tr *contentionTracker) (json.RawMessage, error) {
	guard.Lock()
	defer guard.Unlock()
	var lastErr error
	for attempt := 0; attempt < maxLockedCASAttempts; attempt++ {
		if ctx.Err() != nil {
			return nil, rt.ctxAbort(ctx, fn)
		}
		if attempt > 0 {
			rt.reg.Counter("occ.retries").Inc()
		}
		out, err := rt.occAttempt(ctx, objectID, fn, payload, args, attempt)
		if err == nil {
			tr.record(false)
			rt.reg.Counter("occ.commits").Inc()
			return out, nil
		}
		if !errors.Is(err, memtable.ErrVersionMismatch) {
			return nil, err
		}
		tr.record(true)
		rt.reg.Counter("occ.aborts").Inc()
		lastErr = err
	}
	return nil, fmt.Errorf("runtime: %s.%s on %s: commit contention persisted through %d serialized attempts: %w",
		rt.class.Name, fn.Name, objectID, maxLockedCASAttempts, lastErr)
}

// isNull reports whether v is empty or the JSON literal null. It works
// byte-wise on the raw message: JSON whitespace is only space, tab, CR
// and LF, so no string conversion or unicode trimming is needed.
func isNull(v json.RawMessage) bool {
	i, j := 0, len(v)
	for i < j && isJSONSpace(v[i]) {
		i++
	}
	for j > i && isJSONSpace(v[j-1]) {
		j--
	}
	if i == j {
		return true
	}
	return j-i == 4 && v[i] == 'n' && v[i+1] == 'u' && v[i+2] == 'l' && v[i+3] == 'l'
}

func isJSONSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }

// InvokeDataflow runs a declared dataflow on an object. Each step
// invokes a class method on the same object; state deltas persist
// step-by-step per the pure-function contract.
func (rt *ClassRuntime) InvokeDataflow(ctx context.Context, objectID, flow string, payload json.RawMessage) (dataflow.Result, error) {
	plan, ok := rt.plans[flow]
	if !ok {
		return dataflow.Result{}, fmt.Errorf("%w: %s.%s", ErrDataflowUnknown, rt.class.Name, flow)
	}
	invoke := func(ctx context.Context, function string, payload json.RawMessage) (json.RawMessage, error) {
		return rt.Invoke(ctx, objectID, function, payload, nil)
	}
	return plan.Execute(ctx, payload, invoke)
}

// Flush forces pending state to the backing store.
func (rt *ClassRuntime) Flush(ctx context.Context) { rt.table.Flush(ctx) }

// Close tears the runtime down: engine first (stops traffic), then the
// state table (final flush).
func (rt *ClassRuntime) Close() {
	if rt.engine != nil {
		rt.engine.Close()
	}
	if rt.table != nil {
		rt.table.Close()
	}
}

// Kill tears the runtime down WITHOUT the state table's final flush,
// modeling process death: dirty write-behind state is abandoned, as a
// crash would abandon it.
func (rt *ClassRuntime) Kill() {
	if rt.engine != nil {
		rt.engine.Close()
	}
	if rt.table != nil {
		rt.table.Kill()
	}
}
