package runtime

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"maps"
	"sync"

	"github.com/hpcclab/oparaca-go/internal/invoker"
	"github.com/hpcclab/oparaca-go/internal/memtable"
	"github.com/hpcclab/oparaca-go/internal/model"
	"github.com/hpcclab/oparaca-go/internal/trace"
	"github.com/hpcclab/oparaca-go/internal/trigger"
)

// BatchCall is one method call of an InvokeBatch group. All calls of a
// group target the same object.
type BatchCall struct {
	// Function is the method name (must be a declared function, not a
	// dataflow).
	Function string
	// Payload is the request body.
	Payload json.RawMessage
	// Args are free-form invocation parameters.
	Args map[string]string
	// Ctx optionally scopes this call's handler execution (the async
	// queue passes each submitter's context). The batch context is used
	// when nil; state I/O always runs under the batch context so one
	// cancelled submitter cannot abort the group's shared load/commit.
	Ctx context.Context
}

// BatchCallResult is one call's outcome. Results are independent: a
// failing or panicking handler poisons only its own entry, and under
// optimistic concurrency its delta is excluded from the merged commit.
type BatchCallResult struct {
	Output json.RawMessage
	Err    error
}

// writerCall pairs a resolved state-mutating call with its position in
// the caller's slice.
type writerCall struct {
	idx  int
	fn   model.FunctionDef
	call BatchCall
}

// InvokeBatch executes a group of method calls on one object in a
// single concurrency window — the group-commit path the async queue's
// batched drain dispatches coalesced same-object invocations through.
// Instead of paying one load→invoke→merge window (and one simulated DB
// round trip) per call, the group pays one:
//
//   - locked mode takes the object's stripe once, loads state once,
//     runs the handlers sequentially against the evolving in-memory
//     view, and persists the merged delta in one batched table write.
//   - occ/adaptive snapshots versioned state once, applies the handlers
//     sequentially against the evolving view, and commits the merged
//     delta through a single validated PutManyIfVersion; a version
//     mismatch re-runs the whole group (handlers are pure functions, so
//     re-execution is safe), escalating to the object's exclusive
//     barrier after maxOCCAttempts exactly like the per-call path.
//
// Calls annotated readonly bypass the window entirely and serve from
// the lock-free fast path. Per-call results stay independent: an
// unknown function, a handler error, a panic, or a rogue delta fails
// only that call's entry while the rest of the group commits. Handlers
// observe the deltas of earlier successful calls in the group (the
// evolving view), matching the state they would have seen had the
// calls run back-to-back.
func (rt *ClassRuntime) InvokeBatch(ctx context.Context, objectID string, calls []BatchCall) []BatchCallResult {
	results := make([]BatchCallResult, len(calls))
	if len(calls) == 0 {
		return results
	}
	start := rt.infra.Clock.Now()
	var writers []writerCall
	for i, c := range calls {
		fn, ok := rt.class.Function(c.Function)
		if !ok {
			results[i].Err = fmt.Errorf("%w: %s.%s", ErrFunctionUnknown, rt.class.Name, c.Function)
			continue
		}
		if fn.Readonly {
			callCtx, cancel := rt.callTimeoutCtx(ctx, c, fn)
			out, err := rt.invokeReadonlySafe(callCtx, objectID, fn, c.Payload, c.Args)
			cancel()
			results[i] = BatchCallResult{Output: out, Err: err}
			continue
		}
		writers = append(writers, writerCall{idx: i, fn: fn, call: c})
	}
	if len(writers) > 0 {
		rt.runWriterGroup(ctx, objectID, writers, results)
	}
	// Per-call instrumentation: every group member counts as one
	// invocation; its effective latency is the group window (the calls
	// complete together at the merged commit).
	elapsed := rt.infra.Clock.Since(start)
	lat := rt.reg.Histogram("invoke.latency")
	var failed int64
	for range calls {
		lat.Observe(elapsed)
	}
	for i := range results {
		if results[i].Err != nil {
			failed++
		}
	}
	rt.reg.Counter("invoke.total").Add(int64(len(calls)))
	rt.reg.Counter("invoke.errors").Add(failed)
	rt.meter.Mark(int64(len(calls)))
	return results
}

// callContext resolves a call's effective handler context.
func callContext(batch context.Context, c BatchCall) context.Context {
	if c.Ctx != nil {
		return c.Ctx
	}
	return batch
}

// callTimeoutCtx resolves a call's handler context and applies the
// function's effective deadline to it (min-combining with any deadline
// the context already carries). The cancel func must always be called.
func (rt *ClassRuntime) callTimeoutCtx(batch context.Context, c BatchCall, fn model.FunctionDef) (context.Context, context.CancelFunc) {
	ctx := callContext(batch, c)
	if d := rt.effectiveTimeout(fn); d > 0 {
		return context.WithTimeout(ctx, d)
	}
	return ctx, func() {}
}

// groupCtxAbort reports the group-level error for an expired or
// cancelled batch context (nil while the context is live). Expiry maps
// to the runtime deadline sentinel; an expired group never commits.
func (rt *ClassRuntime) groupCtxAbort(ctx context.Context, objectID string) error {
	err := ctx.Err()
	if err == nil {
		return nil
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("runtime: batch on %s/%s: %w", rt.class.Name, objectID, ErrDeadlineExceeded)
	}
	return err
}

// invokeReadonlySafe is invokeReadonly with panic isolation: a
// panicking handler fails its own call instead of unwinding the group.
func (rt *ClassRuntime) invokeReadonlySafe(ctx context.Context, objectID string, fn model.FunctionDef, payload json.RawMessage, args map[string]string) (out json.RawMessage, err error) {
	defer rt.recoverCall(fn, &err)
	return rt.invokeReadonly(ctx, objectID, fn, payload, args)
}

// runTaskSafe is runTask with panic isolation.
func (rt *ClassRuntime) runTaskSafe(ctx context.Context, objectID string, fn model.FunctionDef, payload json.RawMessage, args map[string]string, state map[string]json.RawMessage) (res invoker.Result, err error) {
	defer rt.recoverCall(fn, &err)
	return rt.runTask(ctx, objectID, fn, payload, args, state)
}

// recoverCall converts a handler panic into that call's error.
func (rt *ClassRuntime) recoverCall(fn model.FunctionDef, err *error) {
	if r := recover(); r != nil {
		*err = fmt.Errorf("runtime: handler panic in %s.%s: %v", rt.class.Name, fn.Name, r)
	}
}

// runWriterGroup executes the state-mutating calls of a group under the
// class's concurrency mode, mirroring invokeFn's mode selection.
func (rt *ClassRuntime) runWriterGroup(ctx context.Context, objectID string, group []writerCall, results []BatchCallResult) {
	if len(rt.stateSpecs) == 0 || rt.concMode == model.ConcurrencyLocked {
		rt.batchLockedPlain(ctx, objectID, group, results)
		return
	}
	stripe := rt.delGuard.Index(objectID)
	guard := rt.delGuard.At(stripe)
	tr := &rt.contention[stripe]
	var err error
	if rt.concMode == model.ConcurrencyAdaptive && tr.useLocked() {
		rt.reg.Counter("occ.fallbacks").Inc()
		err = rt.batchBarrier(ctx, guard, objectID, group, results, tr)
	} else {
		err = rt.batchOCC(ctx, guard, objectID, group, results, tr)
		if err != nil && errors.Is(err, memtable.ErrVersionMismatch) {
			rt.reg.Counter("occ.fallbacks").Inc()
			err = rt.batchBarrier(ctx, guard, objectID, group, results, tr)
		}
	}
	if err != nil {
		// Group-level failure (state load, commit I/O, or persistent
		// contention): nothing was committed, so every call that
		// thought it succeeded fails with it. Calls that already carry
		// their own deterministic error (handler failure, panic, rogue
		// delta) keep it — the group error explains nothing about them.
		for _, w := range group {
			if results[w.idx].Err == nil {
				results[w.idx] = BatchCallResult{Err: err}
			}
		}
	}
}

// applyGroup runs the group's handlers sequentially against the
// evolving state view, filling per-call results and returning the
// merged delta (JSON null marks a delete). The view mutates as each
// successful call lands: call i+1 observes call i's writes. A failing,
// panicking, or rogue-delta call contributes nothing to the view or
// the merged delta. Each attempt overwrites every writer call's result
// (and its callKeys entry), so optimistic re-runs start clean.
// callKeys, indexed like group, receives each successful call's sorted
// delta key names for the commit's event emission (nil for failures).
func (rt *ClassRuntime) applyGroup(ctx context.Context, objectID string, group []writerCall, state map[string]json.RawMessage, results []BatchCallResult, callKeys [][]string) map[string]json.RawMessage {
	merged := make(map[string]json.RawMessage)
	for gi, w := range group {
		callKeys[gi] = nil
		// Handlers may mutate their Task.State; a shallow clone keeps
		// the shared evolving view out of their reach.
		callCtx, cancel := rt.callTimeoutCtx(ctx, w.call, w.fn)
		res, err := rt.runTaskSafe(callCtx, objectID, w.fn, w.call.Payload, w.call.Args, maps.Clone(state))
		if err == nil && callCtx.Err() != nil {
			// The call's deadline expired after its handler returned:
			// its delta must not ride the group commit, and only this
			// entry fails.
			err = rt.ctxAbort(callCtx, w.fn)
		}
		cancel()
		if err != nil {
			results[w.idx] = BatchCallResult{Err: err}
			continue
		}
		if err := rt.validateDelta(w.fn, res.State); err != nil {
			results[w.idx] = BatchCallResult{Err: err}
			continue
		}
		callKeys[gi] = deltaKeys(res.State)
		for k, v := range res.State {
			merged[k] = v
			spec, _ := rt.class.Key(k)
			if spec.Kind == model.KindFile {
				// A file key written as state persists (pre-batch
				// semantics) but never appears in the structured view.
				continue
			}
			if isNull(v) {
				// A deleted key resolves back to its class default for
				// later calls, exactly as a fresh load would.
				if len(spec.Default) > 0 {
					state[k] = spec.Default
				} else {
					delete(state, k)
				}
				continue
			}
			state[k] = v
		}
		results[w.idx] = BatchCallResult{Output: res.Output}
	}
	return merged
}

// validateDelta rejects a handler delta touching undeclared keys; a
// rogue delta persists nothing (per-call, the rest of the group is
// unaffected).
func (rt *ClassRuntime) validateDelta(fn model.FunctionDef, delta map[string]json.RawMessage) error {
	for k := range delta {
		if _, ok := rt.class.Key(k); !ok {
			return fmt.Errorf("runtime: function %s.%s wrote undeclared key %q", rt.class.Name, fn.Name, k)
		}
	}
	return nil
}

// batchLockedPlain is the pessimistic group window: one stripe take,
// one state load, sequential handlers, one merged batched write.
// Stateless classes land here too with a no-op lock and an empty view.
func (rt *ClassRuntime) batchLockedPlain(ctx context.Context, objectID string, group []writerCall, results []BatchCallResult) {
	defer rt.lockObject(objectID)()
	state, err := rt.loadState(ctx, objectID)
	if err != nil {
		for _, w := range group {
			results[w.idx] = BatchCallResult{Err: err}
		}
		return
	}
	callKeys := make([][]string, len(group))
	merged := rt.applyGroup(ctx, objectID, group, state, results, callKeys)
	if err := rt.groupCtxAbort(ctx, objectID); err != nil {
		// An expired group never commits its merged delta.
		for _, w := range group {
			if results[w.idx].Err == nil {
				results[w.idx] = BatchCallResult{Err: err}
			}
		}
		return
	}
	var puts map[string]json.RawMessage
	var dels []string
	keys := rt.keysFor(objectID)
	for k, v := range merged {
		key, ok := keys.byName[k]
		if !ok {
			key = rt.stateKey(objectID, k)
		}
		if isNull(v) {
			dels = append(dels, key)
			continue
		}
		if puts == nil {
			puts = make(map[string]json.RawMessage, len(merged))
		}
		puts[key] = v
	}
	err = nil
	if len(puts) > 0 || len(dels) > 0 {
		csp := trace.FromContext(ctx).Child("commit")
		csp.SetInt("calls", len(group))
		if rt.infra.Fence != nil {
			// Epoch fence: the whole merged group is one commit, so moved
			// ownership fails every call in it (they all requeue).
			err = rt.infra.Fence(ctx, objectID)
		}
		if err == nil && len(puts) > 0 {
			err = rt.table.PutMany(ctx, puts)
		}
		for _, key := range dels {
			if err != nil {
				break
			}
			err = rt.table.Delete(ctx, key)
		}
		csp.Error(err)
		csp.End()
	}
	if err != nil {
		// The merged commit failed: every call that thought it
		// succeeded did not actually persist.
		for _, w := range group {
			if results[w.idx].Err == nil {
				results[w.idx] = BatchCallResult{Err: err}
			}
		}
		return
	}
	rt.emitGroupCommits(ctx, objectID, group, results, callKeys)
}

// emitGroupCommits publishes one StateChanged event per call the
// merged commit carried — the group-commit path's realization of
// one-event-per-committed-write-invocation. Calls that failed inside
// the group emit nothing, and neither do committed calls with an empty
// delta (no state changed). When the platform wires EventsBatch, the
// whole group publishes in one call so the durable event log appends
// it in one backing write (the commit itself was one write; its
// events should not cost n).
func (rt *ClassRuntime) emitGroupCommits(ctx context.Context, objectID string, group []writerCall, results []BatchCallResult, callKeys [][]string) {
	if !rt.eventsNeeded() {
		return
	}
	if rt.infra.EventsBatch == nil {
		for gi, w := range group {
			if results[w.idx].Err != nil {
				continue
			}
			rt.emitCommitKeys(callContext(ctx, w.call), objectID, w.fn, callKeys[gi], w.call.Args)
		}
		return
	}
	evs := make([]trigger.Event, 0, len(group))
	for gi, w := range group {
		if results[w.idx].Err != nil || len(callKeys[gi]) == 0 {
			continue
		}
		evs = append(evs, trigger.Event{
			Type:     trigger.StateChanged,
			Class:    rt.class.Name,
			Object:   objectID,
			Function: w.fn.Name,
			Keys:     callKeys[gi],
			Depth:    trigger.DepthOf(w.call.Args),
			Trace:    trace.FromContext(callContext(ctx, w.call)).Traceparent(),
		})
	}
	if len(evs) > 0 {
		rt.infra.EventsBatch(evs)
	}
}

// batchAttempt runs one optimistic group pass: one versioned snapshot,
// sequential handlers on the evolving view, one validated merged
// commit (an all-calls-failed pass has nothing to commit). The pooled
// scratch backing the snapshot and commit ops lives exactly as long as
// the attempt; handlers only ever see per-call clones of the evolving
// view (applyGroup), never the scratch.
func (rt *ClassRuntime) batchAttempt(ctx context.Context, objectID string, group []writerCall, results []BatchCallResult, callKeys [][]string) error {
	sc := getScratch()
	defer sc.release()
	snap, err := rt.loadStateVersioned(ctx, objectID, sc)
	if err != nil {
		return err
	}
	merged := rt.applyGroup(ctx, objectID, group, snap.state, results, callKeys)
	if err := rt.groupCtxAbort(ctx, objectID); err != nil {
		return err
	}
	if len(merged) == 0 {
		return nil
	}
	// Read-set validation plus the merged writes, exactly like the
	// per-call buildCommit: by default decisions every handler in the
	// group made against unwritten keys cannot commit against changed
	// state; under model.OCCValidateKeys only the written keys are
	// checked.
	ops := snap.sc.ops
	clear(ops)
	if !rt.occKeysOnly {
		for _, key := range snap.keys.keys {
			ops[key] = memtable.CASOp{Expect: snap.sc.got[key].Version}
		}
	}
	for k, v := range merged {
		key, inSnap := snap.keys.byName[k]
		var op memtable.CASOp
		if inSnap {
			op = memtable.CASOp{Expect: snap.sc.got[key].Version}
		} else {
			key = rt.stateKey(objectID, k)
			op = memtable.CASOp{Expect: memtable.AnyVersion}
		}
		op.Write = true
		if !isNull(v) {
			op.Value = v
		}
		ops[key] = op
	}
	// Epoch fence before the group CAS; a fence error is not
	// ErrVersionMismatch, so the group retry loop propagates it and the
	// whole group fails over to the new owner.
	csp := trace.FromContext(ctx).Child("commit")
	csp.SetInt("calls", len(group))
	if rt.infra.Fence != nil {
		if err := rt.infra.Fence(ctx, objectID); err != nil {
			csp.Error(err)
			csp.End()
			return err
		}
	}
	err = rt.table.PutManyIfVersion(ctx, ops)
	if err != nil && !errors.Is(err, memtable.ErrVersionMismatch) {
		csp.Error(err)
	} else if errors.Is(err, memtable.ErrVersionMismatch) {
		csp.SetAttr("abort", "version_mismatch")
	}
	csp.End()
	return err
}

// countGroupCommits books one occ.commit per call that landed in the
// merged commit, keeping Stats().Concurrency.Commits equal to the
// number of committed write invocations whether they went through the
// per-call or the group-commit path.
func (rt *ClassRuntime) countGroupCommits(group []writerCall, results []BatchCallResult) {
	var ok int64
	for _, w := range group {
		if results[w.idx].Err == nil {
			ok++
		}
	}
	rt.reg.Counter("occ.commits").Add(ok)
}

// batchOCC drives the bounded lock-free retry loop for a group,
// holding the object's delete guard shared. A version mismatch re-runs
// the whole group against a fresh snapshot; exhaustion returns the
// last mismatch for escalation to the barrier.
func (rt *ClassRuntime) batchOCC(ctx context.Context, guard *sync.RWMutex, objectID string, group []writerCall, results []BatchCallResult, tr *contentionTracker) error {
	guard.RLock()
	defer guard.RUnlock()
	return rt.batchRetryLoop(ctx, objectID, group, results, tr, maxOCCAttempts)
}

// batchBarrier runs the group holding the delete guard exclusive, the
// same escalation the per-call path uses: pending writer acquisition
// drains the lock-free racers, the commit stays version-validated, and
// the bounded loop is a livelock backstop.
func (rt *ClassRuntime) batchBarrier(ctx context.Context, guard *sync.RWMutex, objectID string, group []writerCall, results []BatchCallResult, tr *contentionTracker) error {
	guard.Lock()
	defer guard.Unlock()
	err := rt.batchRetryLoop(ctx, objectID, group, results, tr, maxLockedCASAttempts)
	if err != nil && errors.Is(err, memtable.ErrVersionMismatch) {
		// Under the barrier there is no further escalation: exhaustion
		// is terminal.
		return fmt.Errorf("runtime: batch of %d on %s.%s: commit contention persisted through %d serialized attempts: %w",
			len(group), rt.class.Name, objectID, maxLockedCASAttempts, err)
	}
	return err
}

// batchRetryLoop is the shared bounded retry: re-run the whole group
// against a fresh snapshot on each version mismatch, with the same
// abort/retry/commit accounting as the per-call loops. Events emit
// only on the successful pass — aborted passes publish nothing.
func (rt *ClassRuntime) batchRetryLoop(ctx context.Context, objectID string, group []writerCall, results []BatchCallResult, tr *contentionTracker, attempts int) error {
	var lastErr error
	callKeys := make([][]string, len(group))
	for attempt := 0; attempt < attempts; attempt++ {
		if err := rt.groupCtxAbort(ctx, objectID); err != nil {
			return err
		}
		if attempt > 0 {
			rt.reg.Counter("occ.retries").Inc()
		}
		asp := trace.FromContext(ctx).Child("occ.attempt")
		asp.SetInt("attempt", attempt)
		err := rt.batchAttempt(trace.ContextWith(ctx, asp), objectID, group, results, callKeys)
		if err == nil {
			asp.End()
			tr.record(false)
			rt.countGroupCommits(group, results)
			rt.emitGroupCommits(ctx, objectID, group, results, callKeys)
			return nil
		}
		if !errors.Is(err, memtable.ErrVersionMismatch) {
			asp.Error(err)
			asp.End()
			return err
		}
		asp.SetAttr("abort", "version_mismatch")
		asp.End()
		tr.record(true)
		rt.reg.Counter("occ.aborts").Inc()
		lastErr = err
	}
	return lastErr
}
