package dataflow

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"github.com/hpcclab/oparaca-go/internal/model"
)

// step builds a DataflowStep briefly.
func step(name, fn string, after ...string) model.DataflowStep {
	return model.DataflowStep{Name: name, Function: fn, After: after}
}

// appendInvoker returns an Invoke that appends the function name to
// the (string) payload, making data flow observable.
func appendInvoker() Invoke {
	return func(_ context.Context, fn string, payload json.RawMessage) (json.RawMessage, error) {
		var s string
		if len(payload) > 0 {
			if err := json.Unmarshal(payload, &s); err != nil {
				return nil, err
			}
		}
		out, _ := json.Marshal(s + "|" + fn)
		return out, nil
	}
}

func TestCompileRejectsEmpty(t *testing.T) {
	if _, err := Compile(model.DataflowDef{Name: "d"}); err == nil {
		t.Fatal("empty flow compiled")
	}
}

func TestCompileRejectsCycle(t *testing.T) {
	def := model.DataflowDef{Name: "d", Steps: []model.DataflowStep{
		step("a", "f", "b"),
		step("b", "f", "a"),
	}}
	if _, err := Compile(def); !errors.Is(err, ErrCycle) {
		t.Fatalf("err = %v, want ErrCycle", err)
	}
}

func TestCompileRejectsSelfInputRef(t *testing.T) {
	def := model.DataflowDef{Name: "d", Steps: []model.DataflowStep{
		{Name: "a", Function: "f", Input: "steps.a.output"},
	}}
	if _, err := Compile(def); !errors.Is(err, ErrBadInputRef) {
		t.Fatalf("err = %v", err)
	}
}

func TestCompileRejectsUnknownInputRef(t *testing.T) {
	def := model.DataflowDef{Name: "d", Steps: []model.DataflowStep{
		{Name: "a", Function: "f", Input: "steps.ghost.output"},
	}}
	if _, err := Compile(def); !errors.Is(err, ErrBadInputRef) {
		t.Fatalf("err = %v", err)
	}
}

func TestCompileRejectsUnknownDep(t *testing.T) {
	def := model.DataflowDef{Name: "d", Steps: []model.DataflowStep{
		step("a", "f", "ghost"),
	}}
	if _, err := Compile(def); err == nil {
		t.Fatal("unknown dep compiled")
	}
}

func TestTopologicalOrder(t *testing.T) {
	def := model.DataflowDef{Name: "d", Steps: []model.DataflowStep{
		step("c", "f", "b"),
		step("a", "f"),
		step("b", "f", "a"),
	}}
	p, err := Compile(def)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(p.Order(), ","); got != "a,b,c" {
		t.Fatalf("order = %s", got)
	}
}

func TestExecuteChainThreadsData(t *testing.T) {
	def := model.DataflowDef{Name: "chain", Steps: []model.DataflowStep{
		step("first", "f1"),
		{Name: "second", Function: "f2", Input: "steps.first.output"},
		{Name: "third", Function: "f3", Input: "steps.second.output"},
	}}
	p, err := Compile(def)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Execute(context.Background(), json.RawMessage(`"in"`), appendInvoker())
	if err != nil {
		t.Fatal(err)
	}
	var out string
	if err := json.Unmarshal(res.Output, &out); err != nil {
		t.Fatal(err)
	}
	if out != "in|f1|f2|f3" {
		t.Fatalf("output = %q", out)
	}
	if len(res.Steps) != 3 {
		t.Fatalf("steps = %d", len(res.Steps))
	}
}

func TestExecuteImplicitDepFromInputRef(t *testing.T) {
	// No After declared; Input alone must force ordering.
	def := model.DataflowDef{Name: "implicit", Steps: []model.DataflowStep{
		{Name: "consumer", Function: "f2", Input: "steps.producer.output"},
		{Name: "producer", Function: "f1"},
	}}
	p, err := Compile(def)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Execute(context.Background(), json.RawMessage(`"x"`), appendInvoker())
	if err != nil {
		t.Fatal(err)
	}
	var out string
	json.Unmarshal(res.Steps["consumer"].Output, &out)
	if out != "x|f1|f2" {
		t.Fatalf("consumer output = %q; input ref did not order steps", out)
	}
}

func TestExecuteDiamondParallelism(t *testing.T) {
	// a -> (b, c) -> d. b and c each sleep; if they run concurrently
	// the whole flow finishes in ~1 sleep, not 2.
	const delay = 60 * time.Millisecond
	def := model.DataflowDef{Name: "diamond", Output: "d", Steps: []model.DataflowStep{
		step("a", "fa"),
		step("b", "slow", "a"),
		step("c", "slow", "a"),
		step("d", "fd", "b", "c"),
	}}
	p, err := Compile(def)
	if err != nil {
		t.Fatal(err)
	}
	invoke := func(ctx context.Context, fn string, payload json.RawMessage) (json.RawMessage, error) {
		if fn == "slow" {
			select {
			case <-time.After(delay):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		return json.RawMessage(`"ok"`), nil
	}
	start := time.Now()
	if _, err := p.Execute(context.Background(), nil, invoke); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed >= 2*delay {
		t.Fatalf("diamond took %v; parallel branches ran sequentially", elapsed)
	}
}

func TestExecuteStepFailureCancelsRest(t *testing.T) {
	var invoked atomic.Int64
	def := model.DataflowDef{Name: "failing", Steps: []model.DataflowStep{
		step("bad", "boom"),
		step("after", "f", "bad"),
	}}
	p, err := Compile(def)
	if err != nil {
		t.Fatal(err)
	}
	invoke := func(_ context.Context, fn string, _ json.RawMessage) (json.RawMessage, error) {
		invoked.Add(1)
		if fn == "boom" {
			return nil, errors.New("exploded")
		}
		return nil, nil
	}
	_, err = p.Execute(context.Background(), nil, invoke)
	if !errors.Is(err, ErrStepFailed) {
		t.Fatalf("err = %v, want ErrStepFailed", err)
	}
	if invoked.Load() != 1 {
		t.Fatalf("%d functions invoked; dependent step ran after failure", invoked.Load())
	}
}

func TestExecuteFailureRecordedInStepResult(t *testing.T) {
	def := model.DataflowDef{Name: "f", Steps: []model.DataflowStep{step("only", "boom")}}
	p, _ := Compile(def)
	res, err := p.Execute(context.Background(), nil, func(context.Context, string, json.RawMessage) (json.RawMessage, error) {
		return nil, errors.New("kapow")
	})
	if err == nil {
		t.Fatal("no error returned")
	}
	if sr := res.Steps["only"]; sr.Err == "" || !strings.Contains(sr.Err, "kapow") {
		t.Fatalf("step result = %+v", sr)
	}
}

func TestExecuteContextCancellation(t *testing.T) {
	def := model.DataflowDef{Name: "slow", Steps: []model.DataflowStep{step("s", "hang")}}
	p, _ := Compile(def)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err := p.Execute(ctx, nil, func(ctx context.Context, _ string, _ json.RawMessage) (json.RawMessage, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	})
	if err == nil {
		t.Fatal("cancelled execute returned nil error")
	}
}

func TestExecuteDefaultOutputIsLastStep(t *testing.T) {
	def := model.DataflowDef{Name: "d", Steps: []model.DataflowStep{
		step("a", "fa"),
		step("b", "fb", "a"),
	}}
	p, _ := Compile(def)
	res, err := p.Execute(context.Background(), json.RawMessage(`""`), appendInvoker())
	if err != nil {
		t.Fatal(err)
	}
	var out string
	json.Unmarshal(res.Output, &out)
	if !strings.HasSuffix(out, "|fb") {
		t.Fatalf("default output = %q, want last step's", out)
	}
}

func TestExecuteExplicitOutputStep(t *testing.T) {
	def := model.DataflowDef{Name: "d", Output: "a", Steps: []model.DataflowStep{
		step("a", "fa"),
		step("b", "fb", "a"),
	}}
	p, _ := Compile(def)
	res, err := p.Execute(context.Background(), json.RawMessage(`""`), appendInvoker())
	if err != nil {
		t.Fatal(err)
	}
	var out string
	json.Unmarshal(res.Output, &out)
	if out != "|fa" {
		t.Fatalf("output = %q, want step a's", out)
	}
}

func TestExecuteFanOutAllRun(t *testing.T) {
	const n = 8
	var steps []model.DataflowStep
	steps = append(steps, step("src", "f"))
	for i := 0; i < n; i++ {
		steps = append(steps, step(fmt.Sprintf("w%d", i), "f", "src"))
	}
	def := model.DataflowDef{Name: "fan", Steps: steps}
	p, err := Compile(def)
	if err != nil {
		t.Fatal(err)
	}
	var count atomic.Int64
	_, err = p.Execute(context.Background(), nil, func(context.Context, string, json.RawMessage) (json.RawMessage, error) {
		count.Add(1)
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count.Load() != n+1 {
		t.Fatalf("invocations = %d, want %d", count.Load(), n+1)
	}
}

func TestStepTimesRecorded(t *testing.T) {
	def := model.DataflowDef{Name: "d", Steps: []model.DataflowStep{step("a", "f")}}
	p, _ := Compile(def)
	res, err := p.Execute(context.Background(), nil, func(context.Context, string, json.RawMessage) (json.RawMessage, error) {
		time.Sleep(5 * time.Millisecond)
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	sr := res.Steps["a"]
	if !sr.Finished.After(sr.Started) {
		t.Fatalf("timing not recorded: %+v", sr)
	}
}

func TestChangingFlowWithoutChangingFunctions(t *testing.T) {
	// The paper's §II-B claim: rewiring the flow definition alone
	// changes execution order using the same functions.
	seqDef := model.DataflowDef{Name: "v1", Steps: []model.DataflowStep{
		{Name: "s1", Function: "f1"},
		{Name: "s2", Function: "f2", Input: "steps.s1.output"},
	}}
	swappedDef := model.DataflowDef{Name: "v2", Steps: []model.DataflowStep{
		{Name: "s1", Function: "f2"},
		{Name: "s2", Function: "f1", Input: "steps.s1.output"},
	}}
	inv := appendInvoker()
	p1, _ := Compile(seqDef)
	p2, _ := Compile(swappedDef)
	r1, err := p1.Execute(context.Background(), json.RawMessage(`""`), inv)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := p2.Execute(context.Background(), json.RawMessage(`""`), inv)
	if err != nil {
		t.Fatal(err)
	}
	var o1, o2 string
	json.Unmarshal(r1.Output, &o1)
	json.Unmarshal(r2.Output, &o2)
	if o1 != "|f1|f2" || o2 != "|f2|f1" {
		t.Fatalf("flows = %q / %q", o1, o2)
	}
}

// Property: for random DAGs (edges only from lower to higher index,
// guaranteeing acyclicity), Compile succeeds and the topological order
// places every step after all of its dependencies.
func TestTopoOrderRespectsDepsProperty(t *testing.T) {
	prop := func(edgeBits []byte, nRaw uint8) bool {
		n := int(nRaw%6) + 2
		steps := make([]model.DataflowStep, n)
		for i := range steps {
			steps[i] = model.DataflowStep{Name: fmt.Sprintf("s%d", i), Function: "f"}
		}
		bit := 0
		next := func() bool {
			if bit/8 >= len(edgeBits) {
				return false
			}
			b := edgeBits[bit/8]&(1<<(bit%8)) != 0
			bit++
			return b
		}
		for j := 1; j < n; j++ {
			for i := 0; i < j; i++ {
				if next() {
					steps[j].After = append(steps[j].After, steps[i].Name)
				}
			}
		}
		p, err := Compile(model.DataflowDef{Name: "rand", Steps: steps})
		if err != nil {
			return false
		}
		pos := map[string]int{}
		for i, name := range p.Order() {
			pos[name] = i
		}
		for _, s := range steps {
			for _, dep := range s.After {
				if pos[dep] >= pos[s.Name] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
