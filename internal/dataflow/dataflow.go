// Package dataflow implements the dataflow abstraction (paper §II-B):
// execution order derives from the flow of data rather than explicit
// invocation order. The platform "handles parallelism and data
// navigation in the background" — steps whose data dependencies are
// satisfied run concurrently, and a step's input can reference a prior
// step's output. Developers can change the invocation flow by editing
// the dataflow definition alone, never the function code.
package dataflow

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"github.com/hpcclab/oparaca-go/internal/model"
)

// Sentinel errors.
var (
	// ErrCycle is returned when step dependencies form a cycle.
	ErrCycle = errors.New("dataflow: dependency cycle")
	// ErrStepFailed wraps the first step failure of a run.
	ErrStepFailed = errors.New("dataflow: step failed")
	// ErrBadInputRef is returned for unresolvable input references.
	ErrBadInputRef = errors.New("dataflow: bad input reference")
)

// Invoke executes one function of the owning class with the given
// payload and returns its output. The core platform supplies this; the
// dataflow engine itself is agnostic of objects and state.
type Invoke func(ctx context.Context, function string, payload json.RawMessage) (json.RawMessage, error)

// StepResult records one step's execution.
type StepResult struct {
	// Name is the step name.
	Name string `json:"name"`
	// Output is the step's function output.
	Output json.RawMessage `json:"output,omitempty"`
	// Started / Finished bound the step's execution.
	Started  time.Time `json:"started"`
	Finished time.Time `json:"finished"`
	// Err holds a failure message ("" on success).
	Err string `json:"error,omitempty"`
}

// Result is the outcome of a dataflow run.
type Result struct {
	// Output is the flow's final output (the designated output
	// step's, or the last topological step's).
	Output json.RawMessage `json:"output,omitempty"`
	// Steps holds per-step results keyed by step name.
	Steps map[string]StepResult `json:"steps"`
}

// Plan is a validated, executable dataflow.
type Plan struct {
	def    model.DataflowDef
	order  []string            // topological order (for determinism in tests)
	deps   map[string][]string // step -> prerequisites
	output string
}

// Compile validates def (dependency closure, acyclicity) and prepares
// an executable plan.
func Compile(def model.DataflowDef) (*Plan, error) {
	if len(def.Steps) == 0 {
		return nil, fmt.Errorf("dataflow: %q has no steps", def.Name)
	}
	steps := make(map[string]model.DataflowStep, len(def.Steps))
	for _, s := range def.Steps {
		if _, dup := steps[s.Name]; dup {
			return nil, fmt.Errorf("dataflow: duplicate step %q", s.Name)
		}
		steps[s.Name] = s
	}
	deps := make(map[string][]string, len(def.Steps))
	for _, s := range def.Steps {
		for _, d := range s.After {
			if _, ok := steps[d]; !ok {
				return nil, fmt.Errorf("dataflow: step %q depends on unknown step %q", s.Name, d)
			}
		}
		deps[s.Name] = append([]string(nil), s.After...)
		// An input reference to another step is an implicit data
		// dependency (this is the "flow of data" part).
		if ref, ok := stepOfInputRef(s.Input); ok {
			if _, known := steps[ref]; !known {
				return nil, fmt.Errorf("%w: step %q input references unknown step %q", ErrBadInputRef, s.Name, ref)
			}
			if ref == s.Name {
				return nil, fmt.Errorf("%w: step %q references its own output", ErrBadInputRef, s.Name)
			}
			if !contains(deps[s.Name], ref) {
				deps[s.Name] = append(deps[s.Name], ref)
			}
		}
	}
	order, err := topoSort(def.Steps, deps)
	if err != nil {
		return nil, err
	}
	output := def.Output
	if output == "" {
		output = order[len(order)-1]
	}
	if _, ok := steps[output]; !ok {
		return nil, fmt.Errorf("dataflow: output step %q not found", output)
	}
	return &Plan{def: def, order: order, deps: deps, output: output}, nil
}

// stepOfInputRef extracts the step name from "steps.<name>.output".
func stepOfInputRef(ref string) (string, bool) {
	if !strings.HasPrefix(ref, "steps.") {
		return "", false
	}
	rest := strings.TrimPrefix(ref, "steps.")
	name, field, ok := strings.Cut(rest, ".")
	if !ok || field != "output" || name == "" {
		return "", false
	}
	return name, true
}

func contains(s []string, v string) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// topoSort returns a deterministic topological order or ErrCycle.
func topoSort(steps []model.DataflowStep, deps map[string][]string) ([]string, error) {
	indeg := make(map[string]int, len(steps))
	dependents := make(map[string][]string, len(steps))
	for _, s := range steps {
		indeg[s.Name] = len(deps[s.Name])
		for _, d := range deps[s.Name] {
			dependents[d] = append(dependents[d], s.Name)
		}
	}
	// Ready queue seeded in definition order for determinism.
	var ready []string
	for _, s := range steps {
		if indeg[s.Name] == 0 {
			ready = append(ready, s.Name)
		}
	}
	var order []string
	for len(ready) > 0 {
		n := ready[0]
		ready = ready[1:]
		order = append(order, n)
		for _, m := range dependents[n] {
			indeg[m]--
			if indeg[m] == 0 {
				ready = append(ready, m)
			}
		}
	}
	if len(order) != len(steps) {
		var stuck []string
		for n, d := range indeg {
			if d > 0 {
				stuck = append(stuck, n)
			}
		}
		return nil, fmt.Errorf("%w involving steps %v", ErrCycle, stuck)
	}
	return order, nil
}

// Name returns the dataflow's name.
func (p *Plan) Name() string { return p.def.Name }

// Order returns the deterministic topological order (primarily for
// inspection and tests).
func (p *Plan) Order() []string { return append([]string(nil), p.order...) }

// Execute runs the plan. Steps run as soon as their dependencies
// complete; independent steps run concurrently. The first failure
// cancels outstanding steps and is returned wrapped in ErrStepFailed.
func (p *Plan) Execute(ctx context.Context, input json.RawMessage, invoke Invoke) (Result, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type doneMsg struct {
		name string
		res  StepResult
	}
	doneCh := make(chan doneMsg)

	stepsByName := make(map[string]model.DataflowStep, len(p.def.Steps))
	for _, s := range p.def.Steps {
		stepsByName[s.Name] = s
	}
	remainingDeps := make(map[string]int, len(p.def.Steps))
	dependents := make(map[string][]string, len(p.def.Steps))
	for name, ds := range p.deps {
		remainingDeps[name] = len(ds)
		for _, d := range ds {
			dependents[d] = append(dependents[d], name)
		}
	}

	results := make(map[string]StepResult, len(p.def.Steps))
	var mu sync.Mutex // guards results for the goroutines resolving inputs

	start := func(name string) {
		step := stepsByName[name]
		go func() {
			sr := StepResult{Name: name, Started: time.Now()}
			payload, err := p.resolveInput(step, input, &mu, results)
			if err == nil {
				sr.Output, err = invoke(ctx, step.Function, payload)
			}
			sr.Finished = time.Now()
			if err != nil {
				sr.Err = err.Error()
			}
			select {
			case doneCh <- doneMsg{name: name, res: sr}:
			case <-ctx.Done():
			}
		}()
	}

	launched := 0
	for _, name := range p.order {
		if remainingDeps[name] == 0 {
			start(name)
			launched++
		}
	}

	completed := 0
	var firstErr error
	for completed < len(p.def.Steps) {
		select {
		case msg := <-doneCh:
			completed++
			mu.Lock()
			results[msg.name] = msg.res
			mu.Unlock()
			if msg.res.Err != "" {
				if firstErr == nil {
					firstErr = fmt.Errorf("%w: step %q: %s", ErrStepFailed, msg.name, msg.res.Err)
					cancel() // stop in-flight steps; do not launch more
				}
				continue
			}
			if firstErr == nil {
				for _, dep := range dependents[msg.name] {
					remainingDeps[dep]--
					if remainingDeps[dep] == 0 {
						start(dep)
						launched++
					}
				}
			}
		case <-ctx.Done():
			if firstErr == nil {
				firstErr = ctx.Err()
			}
			// Give up waiting for outstanding steps.
			completed = len(p.def.Steps)
		}
		// If a failure pruned the frontier, the steps that never
		// launched will never complete; exit once all launched steps
		// have reported.
		if firstErr != nil && completed >= launched {
			break
		}
	}

	res := Result{Steps: results}
	if firstErr != nil {
		return res, firstErr
	}
	res.Output = results[p.output].Output
	return res, nil
}

// resolveInput produces a step's payload from the flow input or a
// prior step's output.
func (p *Plan) resolveInput(step model.DataflowStep, input json.RawMessage, mu *sync.Mutex, results map[string]StepResult) (json.RawMessage, error) {
	switch {
	case step.Input == "" || step.Input == "payload":
		return input, nil
	default:
		ref, ok := stepOfInputRef(step.Input)
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrBadInputRef, step.Input)
		}
		mu.Lock()
		defer mu.Unlock()
		sr, done := results[ref]
		if !done {
			// Compile added the implicit dependency, so this is a bug
			// guard rather than an expected path.
			return nil, fmt.Errorf("%w: step %q not finished", ErrBadInputRef, ref)
		}
		return sr.Output, nil
	}
}
