package core

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/hpcclab/oparaca-go/internal/cluster"
	"github.com/hpcclab/oparaca-go/internal/invoker"
)

// euPackage declares a class pinned to the "eu" region and an
// unpinned sibling.
const euPackage = `classes:
  - name: EuRecords
    constraint:
      jurisdiction: eu
    keySpecs:
      - name: doc
        default: {}
    functions:
      - name: touch
        image: img/touch
  - name: Anywhere
    keySpecs:
      - name: doc
        default: {}
    functions:
      - name: touch
        image: img/touch
`

func newRegionPlatform(t *testing.T, interRegion time.Duration) *Platform {
	t.Helper()
	p, err := New(Config{
		Workers:            2, // default region
		Regions:            []RegionSpec{{Name: "eu", Workers: 2}},
		InterRegionLatency: interRegion,
		ColdStart:          time.Millisecond,
		IdleTimeout:        time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	p.Images().Register("img/touch", invoker.HandlerFunc(func(_ context.Context, task invoker.Task) (invoker.Result, error) {
		return invoker.Result{Output: json.RawMessage(`"touched"`)}, nil
	}))
	if _, err := p.DeployYAML(context.Background(), []byte(euPackage)); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestJurisdictionPinsPodsToRegion(t *testing.T) {
	p := newRegionPlatform(t, 0)
	ctx := context.Background()
	id, err := p.CreateObject(ctx, "EuRecords", "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Invoke(ctx, id, "touch", nil, nil); err != nil {
		t.Fatal(err)
	}
	rt, err := p.Runtime("EuRecords")
	if err != nil {
		t.Fatal(err)
	}
	stats := rt.Engine().Stats()
	if len(stats) != 1 || stats[0].Replicas < 1 {
		t.Fatalf("engine stats = %+v", stats)
	}
	// Every pod of the jurisdiction-pinned class must sit on an eu
	// node: verify through the cluster deployment's pod placements.
	dep, err := p.Cluster().Deployment(deploymentNameFor(t, p, "EuRecords.touch"))
	if err != nil {
		t.Fatal(err)
	}
	if dep.Region() != "eu" {
		t.Fatalf("deployment region = %q", dep.Region())
	}
	for _, pod := range dep.Pods() {
		node, err := p.Cluster().Node(pod.Node)
		if err != nil {
			t.Fatal(err)
		}
		if node.Region() != "eu" {
			t.Fatalf("pod %s placed on %s (region %s)", pod.ID, pod.Node, node.Region())
		}
	}
}

// deploymentNameFor finds the cluster deployment backing an engine
// function. Engine namespaces are random, so match the
// "fn-<namespace>-<function>" suffix.
func deploymentNameFor(t *testing.T, p *Platform, fn string) string {
	t.Helper()
	for _, name := range p.Cluster().Deployments() {
		if strings.HasSuffix(name, "-"+fn) {
			return name
		}
	}
	t.Fatalf("deployment for %s not found", fn)
	return ""
}

func TestJurisdictionWithoutRegionFails(t *testing.T) {
	p, err := New(Config{Workers: 1, ColdStart: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.Images().Register("img/touch", invoker.HandlerFunc(func(context.Context, invoker.Task) (invoker.Result, error) {
		return invoker.Result{}, nil
	}))
	pkg := `classes:
  - name: Mars
    constraint:
      jurisdiction: mars
    functions:
      - name: f
        image: img/touch
`
	// Deployment-mode templates need initial replicas which cannot be
	// placed: the deploy must fail rather than silently place pods
	// outside the jurisdiction.
	yes := false
	_ = yes
	if _, err := p.DeployYAML(context.Background(), []byte(pkg)); err == nil {
		// Knative-mode standard template starts at 0 replicas, so the
		// deploy may succeed; the invocation must then fail.
		id, err := p.CreateObject(context.Background(), "Mars", "")
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		if _, err := p.Invoke(ctx, id, "f", nil, nil); err == nil {
			t.Fatal("invocation succeeded with no nodes in the jurisdiction")
		}
	}
}

func TestHomeRegion(t *testing.T) {
	p := newRegionPlatform(t, 0)
	ctx := context.Background()
	eu, _ := p.CreateObject(ctx, "EuRecords", "")
	anywhere, _ := p.CreateObject(ctx, "Anywhere", "")
	if r, err := p.HomeRegion(eu); err != nil || r != "eu" {
		t.Fatalf("HomeRegion(eu obj) = %q, %v", r, err)
	}
	if r, err := p.HomeRegion(anywhere); err != nil || r != cluster.DefaultRegion {
		t.Fatalf("HomeRegion(default obj) = %q, %v", r, err)
	}
	if _, err := p.HomeRegion("ghost"); !errors.Is(err, ErrObjectNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestInvokeFromChargesCrossRegionLatency(t *testing.T) {
	const rtt = 25 * time.Millisecond
	p := newRegionPlatform(t, rtt)
	ctx := context.Background()
	id, err := p.CreateObject(ctx, "EuRecords", "")
	if err != nil {
		t.Fatal(err)
	}
	// Warm up so we are not measuring cold start.
	if _, err := p.InvokeFrom(ctx, "eu", id, "touch", nil, nil); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	if _, err := p.InvokeFrom(ctx, "eu", id, "touch", nil, nil); err != nil {
		t.Fatal(err)
	}
	local := time.Since(start)

	start = time.Now()
	if _, err := p.InvokeFrom(ctx, "", id, "touch", nil, nil); err != nil { // default region client
		t.Fatal(err)
	}
	remote := time.Since(start)

	if remote < 2*rtt {
		t.Fatalf("cross-region invoke took %v, want >= %v", remote, 2*rtt)
	}
	if local > remote {
		t.Fatalf("same-region invoke (%v) slower than cross-region (%v)", local, remote)
	}
}

func TestInvokeAsyncFromChargesCrossRegionLatency(t *testing.T) {
	const rtt = 25 * time.Millisecond
	p := newRegionPlatform(t, rtt)
	ctx := context.Background()
	id, err := p.CreateObject(ctx, "EuRecords", "")
	if err != nil {
		t.Fatal(err)
	}
	// Same-region submission: no penalty on the submit path.
	start := time.Now()
	invID, err := p.InvokeAsyncFrom(ctx, "eu", id, "touch", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	local := time.Since(start)
	if _, err := p.WaitInvocation(ctx, invID); err != nil {
		t.Fatal(err)
	}
	if local >= 2*rtt {
		t.Fatalf("same-region async submission charged a penalty: %v", local)
	}
	// Cross-region submission: the inter-region round trip is charged
	// on submission itself, mirroring the synchronous InvokeFrom.
	start = time.Now()
	invID, err = p.InvokeAsyncFrom(ctx, "", id, "touch", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if remote := time.Since(start); remote < 2*rtt {
		t.Fatalf("cross-region async submission took %v, want >= %v", remote, 2*rtt)
	}
	if rec, err := p.WaitInvocation(ctx, invID); err != nil || rec.Status != "completed" {
		t.Fatalf("record = %+v, %v", rec, err)
	}
	if _, err := p.InvokeAsyncFrom(ctx, "eu", "ghost", "touch", nil, nil); !errors.Is(err, ErrObjectNotFound) {
		t.Fatalf("err = %v, want ErrObjectNotFound", err)
	}
}

func TestInvokeFromSameRegionNoPenalty(t *testing.T) {
	p := newRegionPlatform(t, 100*time.Millisecond)
	ctx := context.Background()
	id, _ := p.CreateObject(ctx, "Anywhere", "")
	p.InvokeFrom(ctx, "", id, "touch", nil, nil) // warm
	start := time.Now()
	if _, err := p.InvokeFrom(ctx, "", id, "touch", nil, nil); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 80*time.Millisecond {
		t.Fatalf("same-region invoke charged a penalty: %v", elapsed)
	}
}

func TestRegionSpecValidation(t *testing.T) {
	if _, err := New(Config{Regions: []RegionSpec{{Name: "", Workers: 1}}}); err == nil {
		t.Fatal("empty region name accepted")
	}
	if _, err := New(Config{Regions: []RegionSpec{{Name: "x", Workers: 0}}}); err == nil {
		t.Fatal("zero workers accepted")
	}
}

func TestClusterRegionsListed(t *testing.T) {
	p := newRegionPlatform(t, 0)
	regions := p.Cluster().Regions()
	if strings.Join(regions, ",") != "default,eu" {
		t.Fatalf("regions = %v", regions)
	}
}
