// Package core implements the Oparaca platform façade: the package
// manager that deploys class definitions through template-selected
// class runtimes, and the object manager that creates objects and
// routes method/dataflow invocations (paper §III).
//
// The platform owns the shared substrates — simulated cluster,
// document store, object store (served over HTTP for presigned URL
// access), function-image registry — and exposes the developer-facing
// operations the Oparaca CLI and REST gateway build on.
package core

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/hpcclab/oparaca-go/internal/asyncq"
	"github.com/hpcclab/oparaca-go/internal/cluster"
	"github.com/hpcclab/oparaca-go/internal/eventlog"
	"github.com/hpcclab/oparaca-go/internal/invoker"
	"github.com/hpcclab/oparaca-go/internal/kvstore"
	"github.com/hpcclab/oparaca-go/internal/model"
	"github.com/hpcclab/oparaca-go/internal/objectstore"
	"github.com/hpcclab/oparaca-go/internal/optimizer"
	"github.com/hpcclab/oparaca-go/internal/resilience"
	"github.com/hpcclab/oparaca-go/internal/runtime"
	"github.com/hpcclab/oparaca-go/internal/trace"
	"github.com/hpcclab/oparaca-go/internal/trigger"
	"github.com/hpcclab/oparaca-go/internal/vclock"
)

// Sentinel errors.
var (
	// ErrClassNotFound is returned for operations on unknown classes.
	ErrClassNotFound = errors.New("core: class not found")
	// ErrObjectNotFound is returned for operations on unknown objects.
	ErrObjectNotFound = errors.New("core: object not found")
	// ErrObjectExists is returned when creating a duplicate object ID.
	ErrObjectExists = errors.New("core: object already exists")
	// ErrMemberNotFound is returned when an invoked name is neither a
	// function nor a dataflow of the class.
	ErrMemberNotFound = errors.New("core: no such function or dataflow")
	// ErrClosed is returned after Close.
	ErrClosed = errors.New("core: platform closed")
	// ErrQueueFull is the async path's backpressure signal
	// (re-exported for errors.Is at the API boundary).
	ErrQueueFull = asyncq.ErrQueueFull
	// ErrInvocationNotFound is returned when polling an unknown
	// asynchronous invocation ID.
	ErrInvocationNotFound = asyncq.ErrNotFound
	// ErrClassQuotaExceeded is returned for async submissions that
	// would push a class past its Config.AsyncClassQuotas cap.
	ErrClassQuotaExceeded = asyncq.ErrClassQuotaExceeded
	// ErrOffsetCompacted is returned when reading an object's event log
	// below its retained floor (re-exported for errors.Is at the API
	// boundary; HTTP 410 at the gateway).
	ErrOffsetCompacted = eventlog.ErrOffsetCompacted
)

// Config sizes and tunes a Platform.
type Config struct {
	// Workers is the number of simulated worker VMs. Defaults to 3
	// (the paper's smallest configuration).
	Workers int
	// VMResources is each worker's capacity. Defaults to 4 vCPU /
	// 8 GiB.
	VMResources cluster.Resources
	// OpsPerMilliCPU converts VM CPU into function executions/sec.
	// Defaults to 1 (i.e. 4000 ops/s per 4-vCPU VM).
	OpsPerMilliCPU float64
	// DBWriteOpsPerSec caps the document store's write throughput —
	// the bottleneck behind the paper's Figure 3. 0 = unlimited.
	DBWriteOpsPerSec float64
	// DBWriteLatency / DBReadLatency are per-operation service times.
	DBWriteLatency time.Duration
	DBReadLatency  time.Duration
	// KnativeOverhead / BypassOverhead / ColdStart parameterize the
	// FaaS engines (see internal/faas).
	KnativeOverhead time.Duration
	BypassOverhead  time.Duration
	ColdStart       time.Duration
	// ScaleInterval / IdleTimeout drive Knative-mode autoscalers.
	ScaleInterval time.Duration
	IdleTimeout   time.Duration
	// Templates is the provider's template set; defaults to
	// runtime.DefaultTemplates().
	Templates []runtime.Template
	// EnableOptimizer starts the QoS control loop. Defaults off; the
	// gateway/daemon turns it on.
	EnableOptimizer bool
	// EnableTracing turns on end-to-end invocation tracing: every
	// gateway request / invocation opens a trace, spans cover each
	// pipeline stage, and completed traces are tail-sampled into a
	// bounded ring surfaced via the gateway's /api/traces. Defaults off
	// (like EnableOptimizer); the daemon turns it on. Off, the warm
	// invoke path pays zero allocations for the plumbing.
	EnableTracing bool
	// TraceCapacity bounds the kept-trace ring (default 256).
	TraceCapacity int
	// TraceSampleRate is the probabilistic keep rate for traces that
	// are neither errored, forced, nor tail-latency outliers. 0 selects
	// the 0.05 default; negative disables probabilistic keeps.
	TraceSampleRate float64
	// PprofLabels wraps handler execution in runtime/pprof.Do with
	// class/function labels so CPU profiles attribute samples per
	// method. Off by default: the goroutine label swap is measurable on
	// the warm path.
	PprofLabels bool
	// OptimizerInterval overrides the control-loop period.
	OptimizerInterval time.Duration
	// Regions adds extra data centers beyond the default region's
	// Workers (paper §VI future work: multi-datacenter deployment).
	// Classes whose Jurisdiction constraint names a region have their
	// function pods pinned there.
	Regions []RegionSpec
	// InterRegionLatency is the one-way network latency charged to an
	// invocation whose client region differs from the object's home
	// region (see InvokeFrom). Defaults to 0.
	InterRegionLatency time.Duration
	// OwnershipLeaseTTL enables the lease-based ownership layer when
	// positive: every worker VM holds a kvstore-persisted lease renewed
	// on a jittered heartbeat, objects map to live workers by
	// rendezvous hash, every state commit is epoch-fenced, and lease
	// expiry triggers rebalancing plus requeue of the dead node's
	// durable async work (see internal/cluster.Membership). Zero — the
	// default — disables the layer entirely: no heartbeats, no fence,
	// no hot-path overhead.
	OwnershipLeaseTTL time.Duration
	// OwnershipHeartbeat overrides the lease renewal interval
	// (defaults to OwnershipLeaseTTL/3).
	OwnershipHeartbeat time.Duration
	// OwnershipTransitionWindow is how long routed invocations
	// fast-fail with a retryable "ownership moving" error after a
	// rebalance (defaults to the heartbeat interval).
	OwnershipTransitionWindow time.Duration
	// ForwardLatency is the one-way latency charged per ingress→owner
	// forwarding hop when a routed invocation lands on a node that
	// does not own the object (round trip: 2×, mirroring
	// InterRegionLatency's charge model). Zero charges nothing.
	ForwardLatency time.Duration
	// AsyncWorkers sizes the asynchronous invocation worker pool.
	// Defaults to 4.
	AsyncWorkers int
	// AsyncQueueCapacity bounds the number of queued async invocations
	// before Submit returns ErrQueueFull. Defaults to 1024.
	AsyncQueueCapacity int
	// AsyncQueueShards partitions the async queue; tasks are spread
	// across shards by invocation ID (not object), so bursts against
	// one hot object use the whole capacity. Defaults to
	// min(AsyncWorkers, 4).
	AsyncQueueShards int
	// AsyncRecordTTL evicts completed/failed invocation records this
	// long after they finish, keeping the record table bounded on
	// long-running platforms. Zero keeps records forever.
	AsyncRecordTTL time.Duration
	// AsyncGCInterval overrides the record-eviction sweep period
	// (defaults to AsyncRecordTTL/4).
	AsyncGCInterval time.Duration
	// AsyncMaxRetries re-runs a failed asynchronous invocation up to
	// this many additional times (with AsyncRetryBackoff between
	// attempts) before its record goes terminal-failed. Zero disables
	// retries.
	AsyncMaxRetries int
	// AsyncRetryBackoff is the delay before the first async retry,
	// doubled per attempt. Defaults to 10ms when retries are enabled.
	AsyncRetryBackoff time.Duration
	// AsyncDrainBatch is the maximum number of queued invocations one
	// async worker pulls per drain; same-object pulls coalesce through
	// the group-commit InvokeBatch path. Defaults to 16; 1 restores
	// strictly per-task draining.
	AsyncDrainBatch int
	// AsyncClassQuotas caps the queued async invocations per class
	// name; over-quota submissions fail with ErrClassQuotaExceeded
	// (HTTP 429 at the gateway) while other classes keep their share
	// of the queue. Classes without an entry are unbounded.
	AsyncClassQuotas map[string]int
	// ConcurrencyMode is the default invocation concurrency mode for
	// classes that do not declare their own (occ, locked or adaptive;
	// see model.ConcurrencyMode). Defaults to adaptive.
	ConcurrencyMode model.ConcurrencyMode
	// DefaultInvokeTimeout bounds invocations whose function and class
	// declare no timeoutMs of their own (see model.FunctionDef). Zero
	// leaves such invocations without a platform-imposed deadline.
	DefaultInvokeTimeout time.Duration
	// Breaker tunes the backing-store circuit breaker (zero fields take
	// the resilience package's defaults). While the breaker is open,
	// reads are served from the memtable cache where populated
	// (degraded mode) and writes fail fast with a Retry-After hint.
	Breaker resilience.Config
	// Chaos installs a seeded probabilistic fault schedule on the
	// backing store (the chaos harness). The zero plan injects nothing.
	Chaos kvstore.FaultPlan
	// TriggerShards / TriggerBuffer size the event bus: events spread
	// across TriggerShards dispatch partitions (by object, preserving
	// per-object order) of TriggerBuffer queued events each. Default
	// 4 shards × 256 events.
	TriggerShards int
	TriggerBuffer int
	// TriggerOverflow selects what happens when an event finds its bus
	// shard full: trigger.OverflowDrop (default) counts and discards
	// it, trigger.OverflowBlock backpressures the commit path.
	TriggerOverflow trigger.OverflowPolicy
	// TriggerMaxChainDepth bounds data-triggered object→object chains:
	// an event whose chain depth has reached the limit is not
	// dispatched to method sinks (counted in Stats().Triggers.Dropped
	// and CycleDropped). Defaults to 8.
	TriggerMaxChainDepth int
	// TriggerDeliveryWorkers sizes the event bus's sink delivery pool
	// (webhook POSTs and cursor-consumer runs; never the dispatch
	// loops, so a stalled endpoint cannot block dispatch). Defaults
	// to 4.
	TriggerDeliveryWorkers int
	// EventLogMemoryOnly keeps the durable event log in memory: replay
	// within the process still works (offsets, fromOffset resumption)
	// but nothing survives a restart and — crucially for the paper's
	// write-accounting experiments — event appends cost no document
	// store writes. The experiment harness sets it so measured DB
	// write ops reflect the paper's systems, not the event plumbing.
	EventLogMemoryOnly bool
	// EventLogRetention evicts an object's log entries this long after
	// their append (on the background sweep). Zero keeps entries until
	// EventLogMaxPerObject evicts them.
	EventLogRetention time.Duration
	// EventLogMaxPerObject caps each object's retained log entries
	// (oldest evicted first). Defaults to 1024; negative disables the
	// cap.
	EventLogMaxPerObject int
	// EventLogGCInterval overrides the event-log retention sweep
	// period; it piggybacks on the async GC cadence by default
	// (AsyncGCInterval when set, else EventLogRetention/4).
	EventLogGCInterval time.Duration
	// WebhookMaxRetries / WebhookRetryBackoff / WebhookTimeout tune
	// webhook sink delivery: a failed POST is retried up to
	// WebhookMaxRetries additional times with WebhookRetryBackoff
	// doubling between attempts, each attempt bounded by
	// WebhookTimeout. Defaults: 3 retries (negative disables retries),
	// 10ms, 5s.
	WebhookMaxRetries   int
	WebhookRetryBackoff time.Duration
	WebhookTimeout      time.Duration
	// TombstoneTTL evicts a deleted state key's version tombstone this
	// long after the deletion, keeping class state tables bounded under
	// object churn (see memtable.Config.TombstoneTTL). Zero keeps
	// tombstones forever.
	TombstoneTTL time.Duration
	// TombstoneGCInterval overrides the tombstone sweep period; the
	// sweep piggybacks on the async GC cadence by default
	// (AsyncGCInterval when set, else TombstoneTTL/4).
	TombstoneGCInterval time.Duration
	// ServeObjectStore starts a loopback HTTP server for the object
	// store so presigned URLs are fetchable. Defaults to true; benches
	// that never touch file keys can disable it.
	ServeObjectStore *bool
	// Backing injects an existing document store instead of opening a
	// fresh one — the restart path: a new platform against the store a
	// killed one wrote recovers its object directory, named trigger
	// subscriptions, event log and delivery cursors. The caller keeps
	// ownership (Close/Kill leave the store open). Nil opens a private
	// store sized by the DB* knobs.
	Backing *kvstore.Store
	// Secret signs presigned URLs. Defaults to a random value.
	Secret string
	// Clock supplies time; defaults to the real clock.
	Clock vclock.Clock
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 3
	}
	if c.VMResources.MilliCPU <= 0 {
		c.VMResources = cluster.Resources{MilliCPU: 4000, MemoryMB: 8192}
	}
	if c.OpsPerMilliCPU <= 0 {
		c.OpsPerMilliCPU = 1
	}
	if len(c.Templates) == 0 {
		c.Templates = runtime.DefaultTemplates()
	}
	if c.Secret == "" {
		c.Secret = randomID()
	}
	if c.Clock == nil {
		c.Clock = vclock.NewReal()
	}
	if c.ServeObjectStore == nil {
		yes := true
		c.ServeObjectStore = &yes
	}
	if c.TombstoneTTL > 0 && c.TombstoneGCInterval <= 0 && c.AsyncGCInterval > 0 {
		// Piggyback the tombstone sweep on the async GC cadence so one
		// configured interval paces both background reclaimers.
		c.TombstoneGCInterval = c.AsyncGCInterval
	}
	if c.EventLogGCInterval <= 0 && c.AsyncGCInterval > 0 {
		// Same piggyback for the event-log retention sweep.
		c.EventLogGCInterval = c.AsyncGCInterval
	}
	return c
}

// RegionSpec sizes one additional data center.
type RegionSpec struct {
	// Name is the region identifier referenced by jurisdiction
	// constraints.
	Name string
	// Workers is the VM count in this region.
	Workers int
	// VMResources overrides the per-VM capacity (defaults to the
	// platform's VMResources).
	VMResources cluster.Resources
}

// objectRecord is the directory entry for one object.
type objectRecord struct {
	Class   string    `json:"class"`
	Created time.Time `json:"created"`
}

// Platform is the Oparaca control plane plus its simulated data plane.
type Platform struct {
	cfg       Config
	cluster   *cluster.Cluster
	backing   *kvstore.Store
	objects   *objectstore.Store
	objectsLn net.Listener
	objectsSv *http.Server
	images    *invoker.Registry
	templates *runtime.TemplateRegistry
	optim     *optimizer.Optimizer
	queue     *asyncq.Queue
	bus       *trigger.Bus
	elog      *eventlog.Log
	breaker   *resilience.Breaker
	// tracer is the invocation trace collector; nil unless
	// Config.EnableTracing turned the subsystem on.
	tracer *trace.Tracer
	// own is the lease-based ownership layer; nil unless
	// Config.OwnershipLeaseTTL enabled it.
	own *ownership

	// ownsBacking is false when Config.Backing injected the store; the
	// caller then keeps it open across platform restarts.
	ownsBacking bool

	mu       sync.Mutex
	classes  map[string]*model.Class
	runtimes map[string]*runtime.ClassRuntime
	dir      map[string]objectRecord
	closed   bool

	triggersFired atomic.Int64
}

// New builds a platform: worker VMs, document store, object store
// (optionally served over loopback HTTP), template registry and
// optimizer.
func New(cfg Config) (*Platform, error) {
	cfg = cfg.withDefaults()
	cl := cluster.New(cluster.Config{OpsPerMilliCPU: cfg.OpsPerMilliCPU, Clock: cfg.Clock})
	for i := 0; i < cfg.Workers; i++ {
		if _, err := cl.AddNode(fmt.Sprintf("vm-%02d", i), cfg.VMResources); err != nil {
			return nil, fmt.Errorf("core: adding worker: %w", err)
		}
	}
	for _, region := range cfg.Regions {
		if region.Name == "" || region.Workers <= 0 {
			return nil, fmt.Errorf("core: region spec needs a name and positive workers: %+v", region)
		}
		res := region.VMResources
		if res.MilliCPU <= 0 {
			res = cfg.VMResources
		}
		for i := 0; i < region.Workers; i++ {
			name := fmt.Sprintf("%s-vm-%02d", region.Name, i)
			if _, err := cl.AddRegionNode(name, region.Name, res); err != nil {
				return nil, fmt.Errorf("core: adding worker in %s: %w", region.Name, err)
			}
		}
	}
	templates, err := runtime.NewTemplateRegistry(cfg.Templates...)
	if err != nil {
		return nil, err
	}
	backing := cfg.Backing
	ownsBacking := backing == nil
	if ownsBacking {
		backing = kvstore.Open(kvstore.Config{
			WriteOpsPerSec: cfg.DBWriteOpsPerSec,
			WriteLatency:   cfg.DBWriteLatency,
			ReadLatency:    cfg.DBReadLatency,
			Clock:          cfg.Clock,
		})
	}
	// One circuit breaker guards the backing store: the store consults
	// it on every operation (Allow before, Record after), so kvstore
	// failures trip it and successful probes close it regardless of
	// which subsystem — state tables, async records, event log — issued
	// the operation.
	breakerCfg := cfg.Breaker
	if breakerCfg.Clock == nil {
		breakerCfg.Clock = cfg.Clock
	}
	breaker := resilience.New(breakerCfg)
	backing.SetBreaker(breaker)
	if cfg.Chaos != (kvstore.FaultPlan{}) {
		backing.SetFaultPlan(cfg.Chaos)
	}
	p := &Platform{
		cfg:         cfg,
		cluster:     cl,
		backing:     backing,
		breaker:     breaker,
		ownsBacking: ownsBacking,
		objects:     objectstore.New(cfg.Secret, cfg.Clock),
		images:      invoker.NewRegistry(),
		templates:   templates,
		classes:     make(map[string]*model.Class),
		runtimes:    make(map[string]*runtime.ClassRuntime),
		dir:         make(map[string]objectRecord),
	}
	closeBacking := func() {
		if p.ownsBacking {
			p.backing.Close()
		}
	}
	p.optim = optimizer.New(optimizer.Config{Interval: cfg.OptimizerInterval, Clock: cfg.Clock})
	if cfg.EnableTracing {
		p.tracer = trace.New(trace.Config{
			Capacity:   cfg.TraceCapacity,
			SampleRate: cfg.TraceSampleRate,
			Seed:       uint64(cfg.Chaos.Seed),
			Now:        cfg.Clock.Now,
		})
	}
	// The durable event log: every published event is appended (one
	// write-through batch per publication) before dispatch, and sink
	// delivery cursors persist beside it, so committed events and
	// delivery progress survive process death.
	elogBacking := p.backing
	if cfg.EventLogMemoryOnly {
		elogBacking = nil
	}
	p.elog, err = eventlog.New(eventlog.Config{
		Backing:      elogBacking,
		RetentionTTL: cfg.EventLogRetention,
		MaxPerObject: cfg.EventLogMaxPerObject,
		GCInterval:   cfg.EventLogGCInterval,
		Clock:        cfg.Clock,
	})
	if err != nil {
		closeBacking()
		return nil, fmt.Errorf("core: event log: %w", err)
	}
	if err := p.elog.LoadCursors(context.Background()); err != nil {
		p.elog.Close()
		closeBacking()
		return nil, fmt.Errorf("core: recovering event cursors: %w", err)
	}
	// The event bus routes committed-state and terminal-invocation
	// events to data-triggered methods (through the async queue),
	// webhooks, and live streams.
	p.bus, err = trigger.New(trigger.Config{
		InvokeAsync:       p.InvokeAsync,
		Log:               p.elog,
		Shards:            cfg.TriggerShards,
		Buffer:            cfg.TriggerBuffer,
		Overflow:          cfg.TriggerOverflow,
		MaxChainDepth:     cfg.TriggerMaxChainDepth,
		DeliveryWorkers:   cfg.TriggerDeliveryWorkers,
		WebhookMaxRetries: cfg.WebhookMaxRetries,
		WebhookBackoff:    cfg.WebhookRetryBackoff,
		WebhookTimeout:    cfg.WebhookTimeout,
		JitterSeed:        cfg.Chaos.Seed,
		Tracer:            p.tracer,
		Clock:             cfg.Clock,
	})
	if err != nil {
		p.elog.Close()
		closeBacking()
		return nil, fmt.Errorf("core: event bus: %w", err)
	}
	// The async queue drains through the synchronous Invoke path and
	// persists its invocation records in the shared document store.
	// Terminal records publish InvocationCompleted/InvocationFailed
	// events, and the queue's Close drains the bus so pending webhook
	// deliveries flush before teardown.
	// Ownership fence/transition errors mean "the work is fine, the
	// owner moved": the queue requeues such tasks to be re-dispatched
	// under the new ownership instead of failing them.
	var requeue func(error) bool
	if cfg.OwnershipLeaseTTL > 0 {
		requeue = requeueable
	}
	p.queue, err = asyncq.New(asyncq.Config{
		Invoke:       p.Invoke,
		InvokeBatch:  p.invokeCoalesced,
		DrainBatch:   cfg.AsyncDrainBatch,
		Workers:      cfg.AsyncWorkers,
		Capacity:     cfg.AsyncQueueCapacity,
		Shards:       cfg.AsyncQueueShards,
		RecordTTL:    cfg.AsyncRecordTTL,
		GCInterval:   cfg.AsyncGCInterval,
		MaxRetries:   cfg.AsyncMaxRetries,
		RetryBackoff: cfg.AsyncRetryBackoff,
		ClassQuotas:  cfg.AsyncClassQuotas,
		ClassOf:      p.classOf,
		TimeoutFor:   p.timeoutFor,
		OnTerminal:   p.onAsyncTerminal,
		Drain:        p.bus.Drain,
		Backing:      p.backing,
		Requeue:      requeue,
		Clock:        cfg.Clock,
	})
	if err != nil {
		p.bus.Close()
		p.elog.Close()
		closeBacking()
		return nil, fmt.Errorf("core: async queue: %w", err)
	}
	// The ownership layer joins every worker VM once the queue and bus
	// exist, because its rebalance hook requeues stranded async work
	// through them.
	if cfg.OwnershipLeaseTTL > 0 {
		p.own, err = newOwnership(p, cfg)
		if err != nil {
			p.queue.Close()
			p.elog.Close()
			closeBacking()
			return nil, err
		}
	}
	closeOwnership := func() {
		if p.own != nil {
			p.own.members.Close()
		}
	}
	// Recover durable control-plane state from the backing store: the
	// object directory and named trigger subscriptions. Re-registering
	// a subscription schedules redelivery of any backlog its stored
	// cursors point at, so deliveries a crash interrupted resume here.
	if err := p.recover(context.Background()); err != nil {
		closeOwnership()
		p.queue.Close()
		p.elog.Close()
		closeBacking()
		return nil, err
	}
	if *cfg.ServeObjectStore {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			closeOwnership()
			p.queue.Close()
			p.elog.Close()
			closeBacking()
			return nil, fmt.Errorf("core: object store listener: %w", err)
		}
		p.objectsLn = ln
		p.objectsSv = &http.Server{Handler: p.objects.Handler()}
		go func() { _ = p.objectsSv.Serve(ln) }()
	}
	if cfg.EnableOptimizer {
		p.optim.Start()
	}
	// Upload triggers (paper §II-D): object-store writes fire the
	// functions declared in class trigger definitions.
	p.objects.Subscribe(p.handleUpload)
	return p, nil
}

// recover reloads durable control-plane state persisted by a previous
// platform against the same backing store: the object directory and
// the named trigger subscriptions. Re-registering a subscription
// schedules consumer runs for its stored cursors, so deliveries a
// crash interrupted are re-attempted. On a fresh store both scans are
// empty and recovery is two cheap reads.
func (p *Platform) recover(ctx context.Context) error {
	keys, err := p.backing.List(ctx, "objects/")
	if err != nil {
		return fmt.Errorf("core: recovering object directory: %w", err)
	}
	if len(keys) > 0 {
		docs, err := p.backing.BatchGet(ctx, keys)
		if err != nil {
			return fmt.Errorf("core: recovering object directory: %w", err)
		}
		p.mu.Lock()
		for _, k := range keys {
			doc, ok := docs[k]
			if !ok {
				continue
			}
			var rec objectRecord
			if json.Unmarshal(doc.Value, &rec) != nil || rec.Class == "" {
				continue
			}
			p.dir[strings.TrimPrefix(k, "objects/")] = rec
		}
		p.mu.Unlock()
	}
	subKeys, err := p.backing.List(ctx, "triggersubs/")
	if err != nil {
		return fmt.Errorf("core: recovering trigger subscriptions: %w", err)
	}
	if len(subKeys) > 0 {
		docs, err := p.backing.BatchGet(ctx, subKeys)
		if err != nil {
			return fmt.Errorf("core: recovering trigger subscriptions: %w", err)
		}
		for _, k := range subKeys {
			doc, ok := docs[k]
			if !ok {
				continue
			}
			var sub trigger.Subscription
			if json.Unmarshal(doc.Value, &sub) != nil {
				continue
			}
			// Subscribe re-stamps the deterministic "named/<name>"
			// identity, so the recovered subscription finds the same
			// cursors the killed platform persisted.
			_ = p.bus.Subscribe(strings.TrimPrefix(k, "triggersubs/"), sub)
		}
	}
	return nil
}

// handleUpload dispatches object-store upload events to the triggers
// declared on the owning class. Like S3+Lambda, a trigger function
// that writes back to its own trigger key will loop; avoiding that is
// the application's responsibility.
func (p *Platform) handleUpload(ev objectstore.UploadEvent) {
	p.mu.Lock()
	var rt *runtime.ClassRuntime
	for _, r := range p.runtimes {
		if r.Bucket() == ev.Bucket {
			rt = r
			break
		}
	}
	closed := p.closed
	p.mu.Unlock()
	if rt == nil || closed {
		return
	}
	idx := strings.LastIndex(ev.Key, "/")
	if idx <= 0 {
		return
	}
	objectID, fileKey := ev.Key[:idx], ev.Key[idx+1:]
	tr, ok := rt.Class().Trigger(fileKey)
	if !ok {
		return
	}
	if _, err := p.ObjectClass(objectID); err != nil {
		return // upload to an unknown object: nothing to trigger
	}
	payload, err := json.Marshal(ev)
	if err != nil {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := p.Invoke(ctx, objectID, tr.Function, payload, map[string]string{"trigger": "onUpload"}); err == nil {
		p.triggersFired.Add(1)
	}
}

// TriggersFired reports how many upload triggers have successfully
// invoked their function.
func (p *Platform) TriggersFired() int64 { return p.triggersFired.Load() }

// onAsyncTerminal publishes the terminal event of an asynchronous
// invocation (wired as the queue's OnTerminal hook). The submission
// args carry the trigger-chain depth, so reactions to completions stay
// cycle-limited like state-change chains.
func (p *Platform) onAsyncTerminal(rec asyncq.Record, args map[string]string) {
	typ := trigger.InvocationCompleted
	if rec.Status == asyncq.StatusFailed || rec.Status == asyncq.StatusExpired {
		// An expired invocation never ran to commit; reactions treat it
		// like any other failure (the record keeps the precise status).
		typ = trigger.InvocationFailed
	}
	p.bus.Publish(trigger.Event{
		Type:       typ,
		Class:      p.classOf(rec.Object),
		Object:     rec.Object,
		Function:   rec.Member,
		Invocation: rec.ID,
		Error:      rec.Error,
		Depth:      trigger.DepthOf(args),
	})
}

// TriggerBus exposes the event bus (stats and tests).
func (p *Platform) TriggerBus() *trigger.Bus { return p.bus }

// SubscribeTrigger registers (or replaces) a named dynamic event
// subscription and persists it, so a platform restart against the
// same backing store restores the subscription — and resumes its
// delivery cursors. YAML-declared class triggers are managed
// separately by DeployPackage and are not addressable here.
func (p *Platform) SubscribeTrigger(name string, sub trigger.Subscription) error {
	if err := p.bus.Subscribe(name, sub); err != nil {
		return err
	}
	raw, err := json.Marshal(sub)
	if err != nil {
		return err
	}
	if _, err := p.backing.Put(context.Background(), "triggersubs/"+name, raw); err != nil {
		return fmt.Errorf("core: persisting trigger subscription: %w", err)
	}
	return nil
}

// UnsubscribeTrigger removes a named dynamic subscription, reporting
// whether it existed. The stored delivery cursors are kept:
// re-subscribing under the same name resumes them.
func (p *Platform) UnsubscribeTrigger(name string) bool {
	ok := p.bus.Unsubscribe(name)
	if err := p.backing.Delete(context.Background(), "triggersubs/"+name); err != nil && !errors.Is(err, kvstore.ErrNotFound) {
		// The in-memory removal stands; a restart may resurrect the
		// subscription until the delete lands on a retry path.
		_ = err
	}
	return ok
}

// TriggerSubscriptions lists the named dynamic subscriptions (sorted
// names plus the subscription per name).
func (p *Platform) TriggerSubscriptions() ([]string, map[string]trigger.Subscription) {
	return p.bus.Subscriptions()
}

// StreamEvents opens a live event tail for one object (the gateway's
// SSE feed). buf bounds consumer lag (<=0 selects the default); a
// stream whose buffer fills loses events rather than stalling
// dispatch — the gateway heals such gaps by replaying ReadEvents.
// Callers must Close the stream.
func (p *Platform) StreamEvents(objectID string, buf int) (*trigger.Stream, error) {
	if _, err := p.ObjectClass(objectID); err != nil {
		return nil, err
	}
	return p.bus.Stream(objectID, buf), nil
}

// EventLog exposes the durable event log (tests and stats).
func (p *Platform) EventLog() *eventlog.Log { return p.elog }

// EventLogEntry is one stored event-log record, re-exported so API
// consumers (gateway, CLI helpers) need not import internal/eventlog.
type EventLogEntry = eventlog.Entry

// ReadEvents returns up to max retained entries of one object's
// durable event log starting at offset from (1-based; <=0 reads from
// the start, max<=0 is unlimited). Reading below the retained floor
// fails with ErrOffsetCompacted.
func (p *Platform) ReadEvents(ctx context.Context, objectID string, from int64, max int) ([]eventlog.Entry, error) {
	if _, err := p.ObjectClass(objectID); err != nil {
		return nil, err
	}
	return p.elog.Read(ctx, objectID, from, max)
}

// EventBounds returns one object's retained event-log floor and
// next-append offset (replayable entries are [first, next)).
func (p *Platform) EventBounds(ctx context.Context, objectID string) (first, next int64, err error) {
	if _, err := p.ObjectClass(objectID); err != nil {
		return 0, 0, err
	}
	return p.elog.Bounds(ctx, objectID)
}

// randomID returns an 8-byte hex identifier.
func randomID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("core: crypto/rand unavailable: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}

// Images returns the container-image registry. Developers register
// their function handlers here, keyed by the image names used in
// class definitions.
func (p *Platform) Images() *invoker.Registry { return p.images }

// Cluster exposes the simulated cluster (benches scale VM counts).
func (p *Platform) Cluster() *cluster.Cluster { return p.cluster }

// Backing exposes the document store (benches inspect write stats).
func (p *Platform) Backing() *kvstore.Store { return p.backing }

// ObjectStore exposes the unstructured store.
func (p *Platform) ObjectStore() *objectstore.Store { return p.objects }

// ObjectStoreURL returns the loopback base URL of the served object
// store ("" when serving is disabled).
func (p *Platform) ObjectStoreURL() string {
	if p.objectsLn == nil {
		return ""
	}
	return "http://" + p.objectsLn.Addr().String()
}

// Optimizer exposes the QoS control loop.
func (p *Platform) Optimizer() *optimizer.Optimizer { return p.optim }

// Templates exposes the provider's template registry.
func (p *Platform) Templates() *runtime.TemplateRegistry { return p.templates }

// infra assembles the Infra view handed to class runtimes.
func (p *Platform) infra() runtime.Infra {
	inf := runtime.Infra{
		Cluster:              p.cluster,
		Transport:            newRoutingTransport(p.images),
		Backing:              p.backing,
		Objects:              p.objects,
		ObjectsBaseURL:       p.ObjectStoreURL(),
		KnativeOverhead:      p.cfg.KnativeOverhead,
		BypassOverhead:       p.cfg.BypassOverhead,
		ColdStart:            p.cfg.ColdStart,
		ScaleInterval:        p.cfg.ScaleInterval,
		IdleTimeout:          p.cfg.IdleTimeout,
		ConcurrencyMode:      p.cfg.ConcurrencyMode,
		DefaultInvokeTimeout: p.cfg.DefaultInvokeTimeout,
		Events:               p.bus.Publish,
		EventsBatch:          p.bus.PublishBatch,
		EventsNeeded:         p.bus.NeedsEvents,
		TombstoneTTL:         p.cfg.TombstoneTTL,
		TombstoneGCInterval:  p.cfg.TombstoneGCInterval,
		Degraded:             p.Degraded,
		PprofLabels:          p.cfg.PprofLabels,
		Clock:                p.cfg.Clock,
	}
	if p.own != nil {
		// Only installed when the ownership layer exists, so a platform
		// without it pays nothing on the commit path.
		inf.Fence = p.fence
	}
	return inf
}

// Breaker exposes the backing-store circuit breaker.
func (p *Platform) Breaker() *resilience.Breaker { return p.breaker }

// Tracer exposes the invocation trace collector (nil when tracing is
// disabled). The gateway roots request spans here and serves the kept
// ring via /api/traces.
func (p *Platform) Tracer() *trace.Tracer { return p.tracer }

// Degraded reports whether the platform is in degraded mode: the
// backing-store breaker is not closed, so reads serve from the
// memtable cache where populated and writes fail fast.
func (p *Platform) Degraded() bool {
	return p.breaker.State() != resilience.StateClosed
}

// timeoutFor resolves the declared invocation deadline of one async
// submission (the queue's TimeoutFor hook): function timeoutMs, then
// class, then the platform default. Unknown objects resolve to zero —
// they fail on dispatch anyway.
func (p *Platform) timeoutFor(objectID, member string) time.Duration {
	rt, _, err := p.objectRuntime(objectID)
	if err != nil {
		return 0
	}
	return rt.EffectiveTimeout(member)
}

// DeployPackage resolves and deploys every class in pkg, selecting a
// template per class from the declared non-functional requirements and
// instantiating a dedicated class runtime (paper §IV step 5).
// Redeploying an existing class replaces its runtime; object state
// survives in the shared stores.
func (p *Platform) DeployPackage(ctx context.Context, pkg *model.Package) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := pkg.Validate(); err != nil {
		return nil, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, ErrClosed
	}
	resolved, err := model.Resolve(pkg, p.classes)
	if err != nil {
		return nil, err
	}
	// Cross-member checks need the flattened view (triggers may
	// reference inherited keys/functions).
	for _, class := range resolved {
		if err := class.ValidateResolved(); err != nil {
			return nil, err
		}
	}
	// Select templates first so a selection failure deploys nothing.
	selections := make(map[string]runtime.Template, len(resolved))
	for name, class := range resolved {
		tmpl, err := p.templates.Select(class)
		if err != nil {
			return nil, err
		}
		selections[name] = tmpl
	}
	deployed := make([]string, 0, len(resolved))
	for name, class := range resolved {
		rt, err := runtime.New(p.infra(), class, selections[name])
		if err != nil {
			return nil, fmt.Errorf("core: deploying class %s: %w", name, err)
		}
		if old, ok := p.runtimes[name]; ok {
			p.optim.Unmanage(name)
			old.Close()
		}
		p.classes[name] = class
		p.runtimes[name] = rt
		p.optim.Manage(rt)
		// Register the class's YAML-declared event triggers; a redeploy
		// replaces the whole set.
		subs := make([]trigger.Subscription, 0, len(class.Triggers))
		for _, tr := range class.EventTriggers() {
			subs = append(subs, trigger.Subscription{
				// The declaration-derived identity keys the trigger's
				// durable delivery cursors, so redeploys (even with the
				// trigger list reordered) resume rather than restart.
				ID:             "class/" + name + "/" + tr.Identity(),
				Class:          name,
				Type:           trigger.EventType(tr.On),
				KeyPrefix:      tr.KeyPrefix,
				TargetObject:   tr.TargetObject,
				TargetFunction: tr.Function,
				Webhook:        tr.Webhook,
			})
		}
		p.bus.SetClassTriggers(name, subs)
		deployed = append(deployed, name)
	}
	sort.Strings(deployed)
	return deployed, nil
}

// DeployYAML parses and deploys a YAML package.
func (p *Platform) DeployYAML(ctx context.Context, data []byte) ([]string, error) {
	pkg, err := model.ParseYAML(data)
	if err != nil {
		return nil, err
	}
	return p.DeployPackage(ctx, pkg)
}

// Class returns a deployed, resolved class.
func (p *Platform) Class(name string) (*model.Class, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	c, ok := p.classes[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrClassNotFound, name)
	}
	return c, nil
}

// Classes returns deployed class names, sorted.
func (p *Platform) Classes() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, len(p.classes))
	for name := range p.classes {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Runtime returns the class runtime for a deployed class.
func (p *Platform) Runtime(class string) (*runtime.ClassRuntime, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	rt, ok := p.runtimes[class]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrClassNotFound, class)
	}
	return rt, nil
}

// CreateObject instantiates an object of a class. Empty id generates
// one. The object's default state is initialized and the directory
// entry persisted.
func (p *Platform) CreateObject(ctx context.Context, class, id string) (string, error) {
	rt, err := p.Runtime(class)
	if err != nil {
		return "", err
	}
	if id == "" {
		id = class + "-" + randomID()
	}
	if strings.ContainsAny(id, "/ ") {
		return "", fmt.Errorf("core: object id %q must not contain '/' or spaces", id)
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return "", ErrClosed
	}
	if _, exists := p.dir[id]; exists {
		p.mu.Unlock()
		return "", fmt.Errorf("%w: %q", ErrObjectExists, id)
	}
	rec := objectRecord{Class: class, Created: p.cfg.Clock.Now()}
	p.dir[id] = rec
	p.mu.Unlock()
	// A brand-new object (the directory check above rules out a
	// recovered incarnation) provably has an empty event log; telling
	// the log now spares its first append the backing-store recovery
	// probe.
	p.elog.NoteCreated(id)
	if err := rt.InitObjectState(ctx, id); err != nil {
		p.mu.Lock()
		delete(p.dir, id)
		p.mu.Unlock()
		return "", err
	}
	// Persist the directory entry (control plane write).
	raw, _ := json.Marshal(rec)
	if _, err := p.backing.Put(ctx, "objects/"+id, raw); err != nil {
		p.mu.Lock()
		delete(p.dir, id)
		p.mu.Unlock()
		return "", fmt.Errorf("core: persisting object record: %w", err)
	}
	return id, nil
}

// DeleteObject removes an object and all its state.
func (p *Platform) DeleteObject(ctx context.Context, id string) error {
	rt, _, err := p.objectRuntime(id)
	if err != nil {
		return err
	}
	if err := rt.DeleteObjectState(ctx, id); err != nil {
		return err
	}
	p.mu.Lock()
	delete(p.dir, id)
	p.mu.Unlock()
	if err := p.elog.Drop(ctx, id); err != nil {
		return fmt.Errorf("core: dropping %s event log: %w", id, err)
	}
	return p.backing.Delete(ctx, "objects/"+id)
}

// ObjectClass returns the class name of an object.
func (p *Platform) ObjectClass(id string) (string, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	rec, ok := p.dir[id]
	if !ok {
		return "", fmt.Errorf("%w: %q", ErrObjectNotFound, id)
	}
	return rec.Class, nil
}

// ListObjects returns object IDs (optionally filtered by class),
// sorted. The filter honors polymorphism: objects of subclasses are
// included when listing a parent class.
func (p *Platform) ListObjects(class string) []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []string
	for id, rec := range p.dir {
		if class != "" {
			c, ok := p.classes[rec.Class]
			if !ok || !c.IsSubclassOf(class) {
				continue
			}
		}
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// objectRuntime resolves an object ID to its class runtime.
func (p *Platform) objectRuntime(id string) (*runtime.ClassRuntime, string, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, "", ErrClosed
	}
	rec, ok := p.dir[id]
	if !ok {
		return nil, "", fmt.Errorf("%w: %q", ErrObjectNotFound, id)
	}
	rt, ok := p.runtimes[rec.Class]
	if !ok {
		return nil, "", fmt.Errorf("%w: %q (object %q orphaned)", ErrClassNotFound, rec.Class, id)
	}
	return rt, rec.Class, nil
}

// HomeRegion returns the data center an object's class runtime lives
// in: its class's jurisdiction constraint, or the default region.
func (p *Platform) HomeRegion(objectID string) (string, error) {
	rt, _, err := p.objectRuntime(objectID)
	if err != nil {
		return "", err
	}
	if j := rt.Class().Constraint.Jurisdiction; j != "" {
		return j, nil
	}
	return cluster.DefaultRegion, nil
}

// InvokeFrom executes a method or dataflow on an object on behalf of a
// client in clientRegion, charging the configured inter-region latency
// when the object's home region differs (paper §VI: multi-datacenter
// deployments unlock latency-aware placement). Empty clientRegion
// means the default region.
func (p *Platform) InvokeFrom(ctx context.Context, clientRegion, objectID, member string, payload json.RawMessage, args map[string]string) (json.RawMessage, error) {
	if clientRegion == "" {
		clientRegion = cluster.DefaultRegion
	}
	home, err := p.HomeRegion(objectID)
	if err != nil {
		return nil, err
	}
	if home != clientRegion && p.cfg.InterRegionLatency > 0 {
		// Round trip: request in, response out.
		if err := p.cfg.Clock.Sleep(ctx, 2*p.cfg.InterRegionLatency); err != nil {
			return nil, err
		}
	}
	return p.Invoke(ctx, objectID, member, payload, args)
}

// Invoke executes a method or dataflow on an object. Dataflow results
// return the designated output step's output.
func (p *Platform) Invoke(ctx context.Context, objectID, member string, payload json.RawMessage, args map[string]string) (out json.RawMessage, err error) {
	rt, _, err := p.objectRuntime(objectID)
	if err != nil {
		return nil, err
	}
	if p.tracer != nil && trace.FromContext(ctx) == nil {
		// Library callers (benches, embedded use) get a root span here;
		// gateway and async-drain callers arrive with one already.
		sp := p.tracer.Root("invoke", "")
		sp.SetAttr("object", objectID)
		sp.SetAttr("fn", member)
		ctx = trace.ContextWith(ctx, sp)
		defer func() {
			sp.Error(err)
			sp.End()
		}()
	}
	if ctx, err = p.admitCtx(ctx, objectID); err != nil {
		return nil, err
	}
	class := rt.Class()
	if _, ok := class.Function(member); ok {
		return rt.Invoke(ctx, objectID, member, payload, args)
	}
	if _, ok := class.Dataflow(member); ok {
		res, err := rt.InvokeDataflow(ctx, objectID, member, payload)
		if err != nil {
			return nil, err
		}
		return res.Output, nil
	}
	return nil, fmt.Errorf("%w: %s.%s", ErrMemberNotFound, class.Name, member)
}

// InvokeBatch executes a group of method calls on one object through
// the runtime's group-commit window: one state load, sequential
// handlers against the evolving view, one merged (version-validated
// under occ/adaptive) commit — so N same-object calls cost one
// concurrency window and one simulated DB round trip. Per-call results
// are independent. Calls naming a dataflow fall back to individual
// synchronous invocation; calls naming neither a function nor a
// dataflow fail only their own entry. An unknown object fails the
// whole batch.
func (p *Platform) InvokeBatch(ctx context.Context, objectID string, calls []runtime.BatchCall) ([]runtime.BatchCallResult, error) {
	rt, _, err := p.objectRuntime(objectID)
	if err != nil {
		return nil, err
	}
	if ctx, err = p.admitCtx(ctx, objectID); err != nil {
		return nil, err
	}
	class := rt.Class()
	results := make([]runtime.BatchCallResult, len(calls))
	// Partition: function calls ride the group-commit window, dataflow
	// members run individually (a dataflow is already a multi-step
	// composition with its own persistence points).
	grouped := make([]runtime.BatchCall, 0, len(calls))
	positions := make([]int, 0, len(calls))
	for i, c := range calls {
		if _, ok := class.Function(c.Function); ok {
			grouped = append(grouped, c)
			positions = append(positions, i)
			continue
		}
		if _, ok := class.Dataflow(c.Function); ok {
			cctx := ctx
			if c.Ctx != nil {
				cctx = c.Ctx
			}
			res, err := rt.InvokeDataflow(cctx, objectID, c.Function, c.Payload)
			results[i] = runtime.BatchCallResult{Output: res.Output, Err: err}
			continue
		}
		results[i].Err = fmt.Errorf("%w: %s.%s", ErrMemberNotFound, class.Name, c.Function)
	}
	if len(grouped) > 0 {
		for j, res := range rt.InvokeBatch(ctx, objectID, grouped) {
			results[positions[j]] = res
		}
	}
	return results, nil
}

// invokeCoalesced adapts InvokeBatch to the async queue's dispatch
// hook (asyncq types keep that package free of a core dependency).
func (p *Platform) invokeCoalesced(ctx context.Context, objectID string, calls []asyncq.Call) []asyncq.CallResult {
	bcalls := make([]runtime.BatchCall, len(calls))
	for i, c := range calls {
		bcalls[i] = runtime.BatchCall{Function: c.Member, Payload: c.Payload, Args: c.Args, Ctx: c.Ctx}
	}
	out := make([]asyncq.CallResult, len(calls))
	results, err := p.InvokeBatch(ctx, objectID, bcalls)
	if err != nil {
		for i := range out {
			out[i].Err = err
		}
		return out
	}
	for i, r := range results {
		out[i] = asyncq.CallResult{Output: r.Output, Err: r.Err}
	}
	return out
}

// classOf resolves an object's class for async quota accounting ("" for
// unknown objects, which bypass quotas and fail later on dispatch).
func (p *Platform) classOf(objectID string) string {
	class, err := p.ObjectClass(objectID)
	if err != nil {
		return ""
	}
	return class
}

// checkInvokeTarget validates that an object exists and that member
// names one of its functions or dataflows, without invoking anything.
func (p *Platform) checkInvokeTarget(objectID, member string) error {
	rt, _, err := p.objectRuntime(objectID)
	if err != nil {
		return err
	}
	class := rt.Class()
	if _, ok := class.Function(member); ok {
		return nil
	}
	if _, ok := class.Dataflow(member); ok {
		return nil
	}
	return fmt.Errorf("%w: %s.%s", ErrMemberNotFound, class.Name, member)
}

// InvokeAsync enqueues a method or dataflow invocation and returns an
// invocation ID immediately. The target is validated synchronously so
// unknown objects/members fail fast; execution errors surface in the
// polled record. Backpressure: ErrQueueFull once the queue is at
// capacity.
func (p *Platform) InvokeAsync(ctx context.Context, objectID, member string, payload json.RawMessage, args map[string]string) (id string, err error) {
	if err := p.checkInvokeTarget(objectID, member); err != nil {
		return "", err
	}
	if p.tracer != nil && trace.FromContext(ctx) == nil {
		// The submit span ends at acceptance; the queue's link keeps the
		// trace open until the invocation goes terminal.
		sp := p.tracer.Root("invoke.async", "")
		sp.SetAttr("object", objectID)
		sp.SetAttr("fn", member)
		ctx = trace.ContextWith(ctx, sp)
		defer func() {
			sp.Error(err)
			sp.End()
		}()
	}
	return p.queue.Submit(ctx, objectID, member, payload, args)
}

// InvokeAsyncFrom enqueues an asynchronous invocation on behalf of a
// client in clientRegion, charging the configured inter-region round
// trip on submission when the object's home region differs — the async
// mirror of InvokeFrom (the acceptance acknowledgement still has to
// cross the inter-region link and return). Empty clientRegion means
// the default region.
func (p *Platform) InvokeAsyncFrom(ctx context.Context, clientRegion, objectID, member string, payload json.RawMessage, args map[string]string) (string, error) {
	if clientRegion == "" {
		clientRegion = cluster.DefaultRegion
	}
	home, err := p.HomeRegion(objectID)
	if err != nil {
		return "", err
	}
	if home != clientRegion && p.cfg.InterRegionLatency > 0 {
		// Round trip: submission in, acceptance acknowledgement out.
		if err := p.cfg.Clock.Sleep(ctx, 2*p.cfg.InterRegionLatency); err != nil {
			return "", err
		}
	}
	return p.InvokeAsync(ctx, objectID, member, payload, args)
}

// InvokeAsyncBatch enqueues every request in one call, returning one
// ID-or-error result per entry in order. Entries with unknown targets
// or a full shard are rejected individually; the rest proceed.
func (p *Platform) InvokeAsyncBatch(ctx context.Context, reqs []asyncq.Request) []asyncq.BatchResult {
	out := make([]asyncq.BatchResult, len(reqs))
	for i, r := range reqs {
		if err := p.checkInvokeTarget(r.Object, r.Member); err != nil {
			out[i] = asyncq.BatchResult{Err: err}
			continue
		}
		id, err := p.queue.Submit(ctx, r.Object, r.Member, r.Payload, r.Args)
		out[i] = asyncq.BatchResult{ID: id, Err: err}
	}
	return out
}

// Invocation returns the durable record of an asynchronous invocation.
func (p *Platform) Invocation(ctx context.Context, id string) (asyncq.Record, error) {
	return p.queue.Get(ctx, id)
}

// WaitInvocation blocks until the invocation reaches a terminal status
// (completed or failed) or ctx is done.
func (p *Platform) WaitInvocation(ctx context.Context, id string) (asyncq.Record, error) {
	return p.queue.Wait(ctx, id)
}

// AsyncQueue exposes the asynchronous invocation queue (metrics and
// stats inspection).
func (p *Platform) AsyncQueue() *asyncq.Queue { return p.queue }

// GetState reads one structured state key of an object.
func (p *Platform) GetState(ctx context.Context, objectID, key string) (json.RawMessage, error) {
	rt, _, err := p.objectRuntime(objectID)
	if err != nil {
		return nil, err
	}
	return rt.GetState(ctx, objectID, key)
}

// PutState writes one structured state key of an object.
func (p *Platform) PutState(ctx context.Context, objectID, key string, value json.RawMessage) error {
	rt, _, err := p.objectRuntime(objectID)
	if err != nil {
		return err
	}
	return rt.PutState(ctx, objectID, key, value)
}

// PresignFile returns a presigned URL for an object's file key.
func (p *Platform) PresignFile(objectID, key, method string) (string, error) {
	rt, _, err := p.objectRuntime(objectID)
	if err != nil {
		return "", err
	}
	return rt.PresignFile(objectID, key, method)
}

// ResilienceStats is the failure-semantics view of a platform
// snapshot.
type ResilienceStats struct {
	// Breaker is the backing-store circuit breaker snapshot.
	Breaker resilience.Stats `json:"breaker"`
	// Degraded reports whether the platform is currently serving in
	// degraded mode (breaker not closed).
	Degraded bool `json:"degraded"`
	// DegradedReads counts state-table cache hits served while the
	// backing store was unavailable, summed across class runtimes.
	DegradedReads int64 `json:"degraded_reads"`
	// LeakedHandlers gauges handlers abandoned past their invocation
	// deadline that have not yet returned, summed across class
	// runtimes. A bounded value means stuck handlers terminate rather
	// than accumulate.
	LeakedHandlers int64 `json:"leaked_handlers"`
	// Expired counts asynchronous invocations dropped or cut off by
	// their deadline (mirrors Async.Expired).
	Expired int64 `json:"expired"`
}

// Stats is a platform-wide snapshot.
type Stats struct {
	Workers     int                                 `json:"workers"`
	Classes     []string                            `json:"classes"`
	Objects     int                                 `json:"objects"`
	DB          kvstore.Stats                       `json:"db"`
	ByClass     map[string]float64                  `json:"throughput_rps"`
	Invocations int64                               `json:"invocations"`
	Async       asyncq.Stats                        `json:"async"`
	Concurrency map[string]runtime.ConcurrencyStats `json:"concurrency"`
	Triggers    trigger.Stats                       `json:"triggers"`
	Resilience  ResilienceStats                     `json:"resilience"`
	Cluster     ClusterStats                        `json:"cluster"`
}

// Stats snapshots the platform.
func (p *Platform) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := Stats{
		Workers:     p.cluster.NodeCount(),
		Objects:     len(p.dir),
		DB:          p.backing.Stats(),
		ByClass:     make(map[string]float64, len(p.runtimes)),
		Async:       p.queue.Stats(),
		Concurrency: make(map[string]runtime.ConcurrencyStats, len(p.runtimes)),
		Triggers:    p.bus.Stats(),
	}
	for name := range p.classes {
		s.Classes = append(s.Classes, name)
	}
	sort.Strings(s.Classes)
	s.Resilience = ResilienceStats{
		Breaker:  p.breaker.Stats(),
		Degraded: p.breaker.State() != resilience.StateClosed,
		Expired:  s.Async.Expired,
	}
	s.Cluster = p.clusterStatsLocked()
	s.Cluster.Requeued = s.Async.Requeued
	for name, rt := range p.runtimes {
		s.ByClass[name] = rt.ThroughputRPS()
		s.Invocations += rt.Metrics().Counter("invoke.total").Value()
		s.Concurrency[name] = rt.ConcurrencyStats()
		s.Resilience.DegradedReads += rt.Table().Stats().DegradedHits
		s.Resilience.LeakedHandlers += rt.LeakedHandlers()
	}
	return s
}

// Flush forces all runtimes' pending state to the backing store.
func (p *Platform) Flush(ctx context.Context) {
	p.mu.Lock()
	rts := make([]*runtime.ClassRuntime, 0, len(p.runtimes))
	for _, rt := range p.runtimes {
		rts = append(rts, rt)
	}
	p.mu.Unlock()
	for _, rt := range rts {
		rt.Flush(ctx)
	}
}

// Close tears the platform down: async queue (drains accepted
// invocations — and, through its Drain hook, pending trigger
// deliveries — first, while runtimes are still alive), optimizer,
// runtimes (final state flushes), event bus (drains events emitted by
// the final flushes' window and closes live streams), object store
// server, and document store.
func (p *Platform) Close() {
	// Stop membership first: no rebalance may fire into a tearing-down
	// queue/bus. The fence stays answerable (epoch is in memory) for
	// invocations the queue drains below.
	if p.own != nil {
		p.own.members.Close()
	}
	// Drain before marking closed: queued invocations still route
	// through Invoke, which rejects work on a closed platform.
	p.queue.Close()
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	rts := make([]*runtime.ClassRuntime, 0, len(p.runtimes))
	for _, rt := range p.runtimes {
		rts = append(rts, rt)
	}
	p.mu.Unlock()
	p.optim.Stop()
	for _, rt := range rts {
		rt.Close()
	}
	p.bus.Close()
	p.elog.Close()
	if p.objectsSv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		_ = p.objectsSv.Shutdown(ctx)
		cancel()
	}
	if p.ownsBacking {
		p.backing.Close()
	}
}

// Kill models process death for crash/replay testing: nothing drains
// and nothing flushes. Queued async tasks and undispatched events are
// abandoned, in-flight webhook deliveries are cancelled, and every
// write-behind table (class state, async records, delivery cursors)
// is dropped without its final flush — only state already persisted
// in the backing store survives. An injected Config.Backing store is
// left open so a successor platform can recover from it.
func (p *Platform) Kill() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	rts := make([]*runtime.ClassRuntime, 0, len(p.runtimes))
	for _, rt := range p.runtimes {
		rts = append(rts, rt)
	}
	p.mu.Unlock()
	if p.own != nil {
		// Heartbeats stop but leases are left to expire, so a successor
		// platform against the same backing store sees the death.
		p.own.members.Close()
	}
	p.optim.Stop()
	p.queue.Kill()
	p.bus.Kill()
	for _, rt := range rts {
		rt.Kill()
	}
	p.elog.Kill()
	if p.objectsSv != nil {
		_ = p.objectsSv.Close()
	}
	if p.ownsBacking {
		p.backing.Close()
	}
}
