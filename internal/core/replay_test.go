package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/hpcclab/oparaca-go/internal/kvstore"
	"github.com/hpcclab/oparaca-go/internal/model"
	"github.com/hpcclab/oparaca-go/internal/trigger"
)

// replayYAML declares Doc with a YAML chain trigger into Tally.bump;
// the webhook sink is added as a named subscription so both recovery
// paths (triggersubs/ at New, class triggers at redeploy) are
// exercised by the crash test.
const replayYAML = `classes:
  - name: Doc
    concurrencyMode: locked
    keySpecs:
      - name: content
    functions:
      - name: write
        image: img/write
    triggers:
      - on: stateChanged
        keyPrefix: content
        targetObject: tally-1
        function: bump
  - name: Tally
    concurrencyMode: locked
    keySpecs:
      - name: n
        kind: number
        default: 0
    functions:
      - name: bump
        image: img/bump
`

// chainSubID is the deterministic identity core stamps on the YAML
// chain trigger above — cursors stored under it before the crash must
// be found again after the redeploy.
var chainSubID = "class/Doc/" + model.TriggerDef{
	On: "stateChanged", KeyPrefix: "content",
	TargetObject: "tally-1", Function: "bump",
}.Identity()

// waitUntil polls cond until it holds or the deadline lapses.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestCrashReplayRedeliversEvents is the kill-and-restart acceptance
// test: events appended before a crash must be redelivered to both
// sink kinds after a successor platform recovers from the same
// backing store — the webhook from its recovered named-subscription
// cursor, the object-method chain from its recovered class-trigger
// cursor — and a reader must observe the full gap-free offset
// sequence.
func TestCrashReplayRedeliversEvents(t *testing.T) {
	const writes = 3
	ctx := context.Background()

	// One webhook endpoint outlives both platform incarnations. It
	// refuses deliveries until the "restart" flips accepting, then
	// records the offsets it acknowledged.
	var accepting atomic.Bool
	var hits atomic.Int64
	var mu sync.Mutex
	var acked []int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		if !accepting.Load() {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		var ev trigger.Event
		_ = json.NewDecoder(r.Body).Decode(&ev)
		mu.Lock()
		acked = append(acked, ev.Offset)
		mu.Unlock()
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	shared := kvstore.Open(kvstore.Config{})
	defer shared.Close()

	// First life: webhook deliveries fail fast, chain deliveries are
	// wedged behind a zero async quota on Tally — every event ends up
	// appended and cursor-pending, nothing acknowledged.
	p1 := newEventPlatform(t, Config{
		Backing:             shared,
		WebhookMaxRetries:   1,
		WebhookRetryBackoff: time.Millisecond,
		AsyncClassQuotas:    map[string]int{"Tally": 0},
	})
	if _, err := p1.DeployYAML(ctx, []byte(replayYAML)); err != nil {
		t.Fatal(err)
	}
	doc, err := p1.CreateObject(ctx, "Doc", "doc-1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p1.CreateObject(ctx, "Tally", "tally-1"); err != nil {
		t.Fatal(err)
	}
	if err := p1.SubscribeTrigger("hook", trigger.Subscription{
		Class: "Doc", Type: trigger.StateChanged, KeyPrefix: "con", Webhook: srv.URL,
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < writes; i++ {
		payload, _ := json.Marshal(fmt.Sprintf("v%d", i))
		if _, err := p1.Invoke(ctx, doc, "write", payload, nil); err != nil {
			t.Fatal(err)
		}
	}
	// The crash is only meaningful once both consumers registered
	// durably: cursor first-writes are flushed through, so their keys
	// must be visible in the backing store; the webhook must have
	// burned its retry budget at least once.
	waitUntil(t, "webhook attempts", func() bool { return hits.Load() >= 2 })
	waitUntil(t, "durable webhook cursor", func() bool {
		_, err := shared.Get(ctx, "evcursor/named/hook/"+doc)
		return err == nil
	})
	waitUntil(t, "durable chain cursor", func() bool {
		_, err := shared.Get(ctx, "evcursor/"+chainSubID+"/"+doc)
		return err == nil
	})
	if n := tallyCount(t, p1, "tally-1"); n != 0 {
		t.Fatalf("chain delivered %v times despite the quota wedge", n)
	}
	p1.Kill()

	// Second life: the endpoint accepts, the quota is gone. The named
	// subscription recovers during New; the class trigger recovers at
	// redeploy. Both must replay from their stored cursors.
	accepting.Store(true)
	preRestart := hits.Load()
	p2 := newEventPlatform(t, Config{
		Backing:             shared,
		WebhookMaxRetries:   4,
		WebhookRetryBackoff: time.Millisecond,
	})
	if _, err := p2.DeployYAML(ctx, []byte(replayYAML)); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "webhook redelivery of every pre-crash event", func() bool {
		mu.Lock()
		defer mu.Unlock()
		// Redelivery is at-least-once, so duplicates are legal and a
		// bare length check can be satisfied before every offset has
		// arrived; wait for the full set.
		seen := map[int64]bool{}
		for _, off := range acked {
			seen[off] = true
		}
		for off := int64(1); off <= writes; off++ {
			if !seen[off] {
				return false
			}
		}
		return true
	})
	if preRestart < 2 {
		t.Fatalf("pre-crash attempts = %d, want >= 2", preRestart)
	}
	mu.Lock()
	got := append([]int64(nil), acked...)
	mu.Unlock()
	seen := map[int64]bool{}
	last := int64(0)
	for _, off := range got {
		if off < last {
			t.Fatalf("webhook offsets out of order: %v", got)
		}
		last = off
		seen[off] = true
	}
	for off := int64(1); off <= writes; off++ {
		if !seen[off] {
			t.Fatalf("offset %d never redelivered (acked %v)", off, got)
		}
	}
	waitUntil(t, "chain redelivery into Tally", func() bool {
		return tallyCount(t, p2, "tally-1") >= writes
	})

	// A reader resuming from offset 1 sees the whole pre-crash
	// sequence, contiguous and in per-object order.
	entries, err := p2.ReadEvents(ctx, doc, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != writes {
		t.Fatalf("replayed %d entries, want %d", len(entries), writes)
	}
	for i, e := range entries {
		if e.Offset != int64(i+1) {
			t.Fatalf("entry %d has offset %d (gap): %+v", i, e.Offset, entries)
		}
	}
	first, next, err := p2.EventBounds(ctx, doc)
	if err != nil || first != 1 || next != int64(writes+1) {
		t.Fatalf("bounds = [%d, %d), %v; want [1, %d)", first, next, err, writes+1)
	}
}

// TestEventLogRetentionTruncation caps the per-object log and checks
// that reads below the retained floor fail with ErrOffsetCompacted
// while reads at the floor still succeed.
func TestEventLogRetentionTruncation(t *testing.T) {
	const cap, writes = 4, 10
	ctx := context.Background()
	p := newEventPlatform(t, Config{EventLogMaxPerObject: cap})
	if _, err := p.DeployYAML(ctx, []byte(chainYAML("locked"))); err != nil {
		t.Fatal(err)
	}
	doc, err := p.CreateObject(ctx, "Doc", "doc-1")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < writes; i++ {
		payload, _ := json.Marshal(i)
		if _, err := p.Invoke(ctx, doc, "write", payload, nil); err != nil {
			t.Fatal(err)
		}
	}
	first, next, err := p.EventBounds(ctx, doc)
	if err != nil {
		t.Fatal(err)
	}
	if first != writes-cap+1 || next != writes+1 {
		t.Fatalf("bounds = [%d, %d), want [%d, %d)", first, next, writes-cap+1, writes+1)
	}
	if _, err := p.ReadEvents(ctx, doc, 1, 0); !errors.Is(err, ErrOffsetCompacted) {
		t.Fatalf("read below floor returned %v, want ErrOffsetCompacted", err)
	}
	entries, err := p.ReadEvents(ctx, doc, first, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != cap || entries[0].Offset != first {
		t.Fatalf("read at floor: %d entries from %d", len(entries), entries[0].Offset)
	}
}
