package core

import (
	"context"
	"strings"
	"sync"

	"github.com/hpcclab/oparaca-go/internal/invoker"
)

// routingTransport dispatches invocation tasks by image name: plain
// image names resolve through the in-process registry, while images of
// the form "http://host:port/img/name" are offloaded over HTTP to an
// external code-execution runtime. This realizes the paper's
// platform-agnostic claim (§III-C): "any FaaS engine can accept this
// task ... connecting the other FaaS engine can be done by configuring
// the URL".
type routingTransport struct {
	local *invoker.Local

	mu      sync.Mutex
	clients map[string]*invoker.Client // base URL -> client
}

var _ invoker.Transport = (*routingTransport)(nil)

// newRoutingTransport wraps the image registry with URL dispatch.
func newRoutingTransport(registry *invoker.Registry) *routingTransport {
	return &routingTransport{
		local:   invoker.NewLocal(registry),
		clients: make(map[string]*invoker.Client),
	}
}

// splitRemoteImage splits "http://host/img/x" into base URL and image
// name. ok is false for local image names.
func splitRemoteImage(image string) (baseURL, name string, ok bool) {
	if !strings.HasPrefix(image, "http://") && !strings.HasPrefix(image, "https://") {
		return "", "", false
	}
	scheme, rest, _ := strings.Cut(image, "://")
	host, path, found := strings.Cut(rest, "/")
	if !found || host == "" || path == "" {
		return "", "", false
	}
	return scheme + "://" + host, path, true
}

// Offload implements invoker.Transport.
func (t *routingTransport) Offload(ctx context.Context, image string, task invoker.Task) (invoker.Result, error) {
	baseURL, name, remote := splitRemoteImage(image)
	if !remote {
		return t.local.Offload(ctx, image, task)
	}
	t.mu.Lock()
	client, ok := t.clients[baseURL]
	if !ok {
		client = invoker.NewClient(invoker.ClientConfig{BaseURL: baseURL, Retries: 2})
		t.clients[baseURL] = client
	}
	t.mu.Unlock()
	return client.Offload(ctx, name, task)
}
