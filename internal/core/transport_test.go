package core

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/hpcclab/oparaca-go/internal/invoker"
)

func TestSplitRemoteImage(t *testing.T) {
	cases := []struct {
		in         string
		base, name string
		ok         bool
	}{
		{"img/resize", "", "", false},
		{"http://10.0.0.1:8080/img/resize", "http://10.0.0.1:8080", "img/resize", true},
		{"https://faas.example/fn", "https://faas.example", "fn", true},
		{"http://hostonly", "", "", false},
	}
	for _, c := range cases {
		base, name, ok := splitRemoteImage(c.in)
		if base != c.base || name != c.name || ok != c.ok {
			t.Errorf("splitRemoteImage(%q) = (%q, %q, %v), want (%q, %q, %v)",
				c.in, base, name, ok, c.base, c.name, c.ok)
		}
	}
}

// TestRemoteImageOffloadedOverHTTP stands up an external function
// runtime (an invoker.Server) and deploys a class whose image is that
// runtime's URL — the paper's "any FaaS engine, configure the URL"
// integration path.
func TestRemoteImageOffloadedOverHTTP(t *testing.T) {
	remoteReg := invoker.NewRegistry()
	remoteReg.Register("img/remote-echo", invoker.HandlerFunc(func(_ context.Context, task invoker.Task) (invoker.Result, error) {
		return invoker.Result{Output: json.RawMessage(`"from-remote"`)}, nil
	}))
	remote := httptest.NewServer(invoker.Server(remoteReg))
	defer remote.Close()

	p, err := New(Config{Workers: 1, ColdStart: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	pkg := "classes:\n  - name: R\n    functions:\n      - name: f\n        image: " + remote.URL + "/img/remote-echo\n"
	ctx := context.Background()
	if _, err := p.DeployYAML(ctx, []byte(pkg)); err != nil {
		t.Fatal(err)
	}
	id, err := p.CreateObject(ctx, "R", "")
	if err != nil {
		t.Fatal(err)
	}
	out, err := p.Invoke(ctx, id, "f", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != `"from-remote"` {
		t.Fatalf("out = %s", out)
	}
}
