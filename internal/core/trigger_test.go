package core

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/hpcclab/oparaca-go/internal/invoker"
	"github.com/hpcclab/oparaca-go/internal/model"
)

// triggerPackage declares a multimedia-style class whose thumbnail
// method fires automatically when a photo is uploaded (paper §II-D's
// motivating scenario).
const triggerPackage = `classes:
  - name: Photo
    keySpecs:
      - name: photo
        kind: file
      - name: thumbnailed
        kind: bool
        default: false
      - name: lastEvent
    functions:
      - name: makeThumbnail
        image: img/thumbnail
    triggers:
      - onUpload: photo
        function: makeThumbnail
`

// newTriggerPlatform builds a platform recording thumbnail calls.
func newTriggerPlatform(t *testing.T) (*Platform, *sync.Map) {
	t.Helper()
	p, err := New(Config{Workers: 2, ColdStart: time.Millisecond, IdleTimeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	var calls sync.Map
	p.Images().Register("img/thumbnail", invoker.HandlerFunc(func(_ context.Context, task invoker.Task) (invoker.Result, error) {
		calls.Store(task.Object, string(task.Payload))
		return invoker.Result{
			Output: json.RawMessage(`"thumbnail-done"`),
			State: map[string]json.RawMessage{
				"thumbnailed": json.RawMessage(`true`),
				"lastEvent":   task.Payload,
			},
		}, nil
	}))
	if _, err := p.DeployYAML(context.Background(), []byte(triggerPackage)); err != nil {
		t.Fatal(err)
	}
	return p, &calls
}

func TestUploadTriggerFiresFunction(t *testing.T) {
	p, calls := newTriggerPlatform(t)
	ctx := context.Background()
	id, err := p.CreateObject(ctx, "Photo", "pic-1")
	if err != nil {
		t.Fatal(err)
	}
	// Upload through the presigned URL, exactly like a customer would.
	putURL, err := p.PresignFile(id, "photo", http.MethodPut)
	if err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodPut, putURL, strings.NewReader("jpegbytes"))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("upload status = %d", resp.StatusCode)
	}
	// The trigger runs asynchronously; wait for it. TriggersFired only
	// increments once the triggered invocation fully returns (the
	// handler records its call before that), so poll the counter too.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := calls.Load(id); ok && p.TriggersFired() >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("trigger never fired (calls=%v, fired=%d)", func() bool { _, ok := calls.Load(id); return ok }(), p.TriggersFired())
		}
		time.Sleep(2 * time.Millisecond)
	}
	// The trigger's state delta persisted.
	deadline = time.Now().Add(2 * time.Second)
	for {
		v, err := p.GetState(ctx, id, "thumbnailed")
		if err == nil && string(v) == "true" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("state after trigger = %s, %v", v, err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	// The event payload carried bucket/key/etag.
	raw, _ := calls.Load(id)
	var ev struct {
		Bucket string `json:"bucket"`
		Key    string `json:"key"`
		ETag   string `json:"etag"`
		Size   int    `json:"size"`
	}
	if err := json.Unmarshal([]byte(raw.(string)), &ev); err != nil {
		t.Fatalf("event payload %q: %v", raw, err)
	}
	if ev.Bucket != "cls-photo" || ev.Key != id+"/photo" || ev.Size != len("jpegbytes") || ev.ETag == "" {
		t.Fatalf("event = %+v", ev)
	}
}

func TestUploadToUnknownObjectDoesNotTrigger(t *testing.T) {
	p, calls := newTriggerPlatform(t)
	// Direct store write for an object that was never created.
	if _, err := p.ObjectStore().Put("cls-photo", "ghost/photo", []byte("x"), ""); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	count := 0
	calls.Range(func(_, _ any) bool { count++; return true })
	if count != 0 {
		t.Fatalf("trigger fired for unknown object")
	}
}

func TestUploadToUntriggeredKeyDoesNotFire(t *testing.T) {
	p, calls := newTriggerPlatform(t)
	ctx := context.Background()
	id, _ := p.CreateObject(ctx, "Photo", "")
	// Write under an undeclared key path: no trigger is bound to it.
	if _, err := p.ObjectStore().Put("cls-photo", id+"/otherkey", []byte("x"), ""); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if _, ok := calls.Load(id); ok {
		t.Fatal("trigger fired for unbound key")
	}
}

func TestTriggerValidationRejectsBadReferences(t *testing.T) {
	p, _ := newTriggerPlatform(t)
	ctx := context.Background()
	cases := []struct {
		name string
		pkg  string
	}{
		{"non-file key", `classes:
  - name: BadA
    keySpecs:
      - name: notafile
    functions:
      - name: f
        image: img/thumbnail
    triggers:
      - onUpload: notafile
        function: f
`},
		{"unknown function", `classes:
  - name: BadB
    keySpecs:
      - name: photo
        kind: file
    triggers:
      - onUpload: photo
        function: ghost
`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := p.DeployYAML(ctx, []byte(c.pkg)); !errors.Is(err, model.ErrValidation) {
				t.Fatalf("err = %v, want ErrValidation", err)
			}
		})
	}
}

func TestTriggerInherited(t *testing.T) {
	p, calls := newTriggerPlatform(t)
	ctx := context.Background()
	// A subclass inherits the photo key, the function and the trigger.
	sub := `classes:
  - name: ProfilePhoto
    parent: Photo
`
	if _, err := p.DeployYAML(ctx, []byte(sub)); err != nil {
		t.Fatal(err)
	}
	id, err := p.CreateObject(ctx, "ProfilePhoto", "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.ObjectStore().Put("cls-profilephoto", id+"/photo", []byte("y"), ""); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := calls.Load(id); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("inherited trigger never fired")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestCreateObjectRejectsSlashIDs(t *testing.T) {
	p, _ := newTriggerPlatform(t)
	if _, err := p.CreateObject(context.Background(), "Photo", "has/slash"); err == nil {
		t.Fatal("slash id accepted")
	}
	if _, err := p.CreateObject(context.Background(), "Photo", "has space"); err == nil {
		t.Fatal("space id accepted")
	}
}
