// Ownership wires the cluster membership layer into the platform:
// worker VMs hold kvstore-persisted leases, objects map to live
// workers by rendezvous hash, and every state commit carries an
// admission stamp that the runtime fences at commit time. On lease
// expiry or explicit drain the membership rebalances, and the
// platform's rebalance hook requeues the dead node's durable async
// work and replays trigger delivery cursors so acknowledged work is
// never lost.
package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"github.com/hpcclab/oparaca-go/internal/cluster"
	"github.com/hpcclab/oparaca-go/internal/trace"
)

// ErrOwnershipDisabled is returned by ownership admin operations when
// the platform was built without OwnershipLeaseTTL.
var ErrOwnershipDisabled = errors.New("core: ownership layer disabled (set OwnershipLeaseTTL)")

// ownerStampKey carries the admission stamp through an invocation's
// context so the commit-time fence can compare it against the current
// epoch.
type ownerStampKey struct{}

type ownerStamp struct {
	owner string
	epoch uint64
}

// ownership is the platform-side view of the membership layer.
type ownership struct {
	members *cluster.Membership
	// forward is the one-way ingress→owner hop latency charged per
	// forwarded invocation (round trip: 2×).
	forward time.Duration
	// retryAfter hints clients how long to back off when a routed
	// invocation races a handoff.
	retryAfter time.Duration

	ingress    atomic.Uint64
	forwarded  atomic.Int64
	ownerLocal atomic.Int64
	recovered  atomic.Int64
	replays    atomic.Int64
}

// admitCtx stamps ctx with the object's current owner and epoch — the
// ticket the commit fence validates. Invocations arriving with a stamp
// (the routed path admitted them at ingress) pass through unchanged.
// Admission itself never fast-fails on an open transition window: the
// fence provides correctness, and internal dispatch (async drain,
// trigger chains) admitted at the post-rebalance epoch commits safely.
// Only the routing layer (InvokeRoutedFrom) turns the window into a
// retryable fast-fail.
func (p *Platform) admitCtx(ctx context.Context, objectID string) (context.Context, error) {
	if p.own == nil {
		return ctx, nil
	}
	if _, ok := ctx.Value(ownerStampKey{}).(ownerStamp); ok {
		return ctx, nil
	}
	sp := trace.FromContext(ctx).Child("admission")
	owner, epoch, ok := p.own.members.Admit(objectID)
	if !ok {
		sp.End()
		return ctx, nil // no live members: ownership inert
	}
	sp.SetAttr("owner", owner)
	sp.End()
	return context.WithValue(ctx, ownerStampKey{}, ownerStamp{owner: owner, epoch: epoch}), nil
}

// fence is the runtime.Infra hook consulted at every commit exit. A
// commit whose admission stamp is stale — the epoch moved and the
// object's owner changed — is rejected with ErrOwnershipMoved before
// anything is persisted, so a paused ex-owner cannot double-commit
// after failover.
func (p *Platform) fence(ctx context.Context, objectID string) error {
	st, ok := ctx.Value(ownerStampKey{}).(ownerStamp)
	if !ok {
		return nil
	}
	return p.own.members.Fence(objectID, st.owner, st.epoch)
}

// requeueable classifies invocation errors the async queue should
// redeliver rather than fail: fence rejections and transition-window
// fast-fails both mean "the work is fine, the owner moved".
func requeueable(err error) bool {
	return errors.Is(err, cluster.ErrOwnershipMoved) || errors.Is(err, cluster.ErrOwnershipMoving)
}

// onRebalance is the membership's rebalance hook: after an epoch bump
// it adopts the dead nodes' durable async records back into the local
// queue and replays trigger delivery cursors, so queued and in-flight
// work acknowledged before the failure is redelivered under the new
// ownership.
func (p *Platform) onRebalance(dead []string, epoch uint64) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	n, err := p.queue.RecoverStranded(ctx)
	if err == nil {
		p.own.recovered.Add(int64(n))
	}
	p.bus.ReplayCursors()
	p.own.replays.Add(1)
}

// Membership exposes the lease-based membership layer (nil when
// ownership is disabled).
func (p *Platform) Membership() *cluster.Membership {
	if p.own == nil {
		return nil
	}
	return p.own.members
}

// KillNode models a worker VM crash for the ownership layer: its
// heartbeat stops and failover happens when the lease expires, exactly
// as for a real dead machine.
func (p *Platform) KillNode(name string) error {
	if p.own == nil {
		return ErrOwnershipDisabled
	}
	return p.own.members.Kill(name)
}

// DrainNode removes a worker from the ownership layer gracefully: its
// lease is deleted and its objects reassigned immediately.
func (p *Platform) DrainNode(name string) error {
	if p.own == nil {
		return ErrOwnershipDisabled
	}
	return p.own.members.Leave(name)
}

// InvokeRouted is InvokeRoutedFrom for a client in the default region
// with no ingress affinity.
func (p *Platform) InvokeRouted(ctx context.Context, objectID, member string, payload json.RawMessage, args map[string]string) (json.RawMessage, string, error) {
	return p.InvokeRoutedFrom(ctx, "", "", objectID, member, payload, args)
}

// InvokeRoutedFrom executes a method or dataflow on an object through
// the ownership router: the request lands on ingress node via (empty
// picks one round-robin, modelling a load balancer), and when that
// node does not own the object the invocation is forwarded one hop to
// the owner, charging 2×ForwardLatency for the round trip — the same
// charge model InvokeFrom applies to inter-region clients. The node
// that served the invocation is returned for response attribution.
//
// During a post-rebalance transition window, or when ownership moves
// again while the forwarded request is in flight, the call fast-fails
// with a retryable TransitionError (HTTP 503 + Retry-After at the
// gateway) instead of chasing the handoff. With ownership disabled it
// degrades to InvokeFrom.
func (p *Platform) InvokeRoutedFrom(ctx context.Context, clientRegion, via, objectID, member string, payload json.RawMessage, args map[string]string) (json.RawMessage, string, error) {
	o := p.own
	if o == nil {
		out, err := p.InvokeFrom(ctx, clientRegion, objectID, member, payload, args)
		return out, "", err
	}
	if err := o.members.CheckMoving(); err != nil {
		return nil, "", err
	}
	owner, epoch, ok := o.members.Admit(objectID)
	if !ok {
		out, err := p.InvokeFrom(ctx, clientRegion, objectID, member, payload, args)
		return out, "", err
	}
	ingress := via
	if ingress == "" {
		ingress = o.pickIngress()
	}
	if ingress == owner {
		o.ownerLocal.Add(1)
	} else {
		fsp := trace.FromContext(ctx).Child("forward")
		fsp.SetAttr("via", ingress)
		fsp.SetAttr("owner", owner)
		// One forwarding hop ingress→owner (and the response back).
		if o.forward > 0 {
			if err := p.cfg.Clock.Sleep(ctx, 2*o.forward); err != nil {
				fsp.Error(err)
				fsp.End()
				return nil, "", err
			}
		}
		// Re-admit at the owner: a single-hop guard. If ownership moved
		// while the request was in flight, fail fast retryably rather
		// than hop again and race the rebalance around the ring.
		owner2, epoch2, ok2 := o.members.Admit(objectID)
		if !ok2 || owner2 != owner {
			terr := &cluster.TransitionError{RetryAfter: o.retryAfter}
			fsp.Error(terr)
			fsp.End()
			return nil, "", terr
		}
		owner, epoch = owner2, epoch2
		o.forwarded.Add(1)
		fsp.End()
	}
	ctx = context.WithValue(ctx, ownerStampKey{}, ownerStamp{owner: owner, epoch: epoch})
	out, err := p.InvokeFrom(ctx, clientRegion, objectID, member, payload, args)
	return out, owner, err
}

// pickIngress round-robins over the live member set, modelling a
// load balancer spreading requests across nodes. It reads the
// published lock-free name set so un-pinned ingress selection costs
// no locks or allocations on the invoke hot path.
func (o *ownership) pickIngress() string {
	names := o.members.LiveNames()
	if len(names) == 0 {
		return ""
	}
	i := o.ingress.Add(1)
	return names[int((i-1)%uint64(len(names)))]
}

// MemberStats describes one lease-holding node in the cluster
// ownership view.
type MemberStats struct {
	Name  string `json:"name"`
	Local bool   `json:"local"`
	// LeaseAge is how long the node has held its lease.
	LeaseAge time.Duration `json:"lease_age"`
	// LeaseRemaining is time until lease expiry; ≤ 0 means the node is
	// about to be swept out.
	LeaseRemaining time.Duration `json:"lease_remaining"`
	// Objects is how many directory objects currently hash to this
	// node.
	Objects int `json:"objects"`
}

// ClusterStats is the ownership-layer half of a platform snapshot.
type ClusterStats struct {
	// Enabled reports whether the ownership layer is active; all other
	// fields are zero when it is not.
	Enabled bool `json:"enabled"`
	// Epoch is the current ownership epoch (bumped per rebalance).
	Epoch uint64 `json:"epoch"`
	// Moving reports an open post-rebalance transition window.
	Moving bool `json:"moving"`
	// Members is the live member set with per-node object counts.
	Members []MemberStats `json:"members,omitempty"`
	// Rebalances counts completed failovers/drains.
	Rebalances int64 `json:"rebalances"`
	// FenceRejections counts commits the epoch fence refused — each is
	// a double-commit that did not happen.
	FenceRejections int64 `json:"fence_rejections"`
	// Forwarded / OwnerLocal split routed invocations by whether the
	// ingress node owned the object.
	Forwarded  int64 `json:"forwarded"`
	OwnerLocal int64 `json:"owner_local"`
	// Requeued counts async invocations redelivered after a fence or
	// transition rejection; Recovered counts stranded records adopted
	// from dead nodes by rebalances.
	Requeued  int64 `json:"requeued"`
	Recovered int64 `json:"recovered"`
}

// clusterStatsLocked snapshots the ownership layer; p.mu must be held
// (it walks the object directory to attribute objects to owners).
func (p *Platform) clusterStatsLocked() ClusterStats {
	if p.own == nil {
		return ClusterStats{}
	}
	m := p.own.members
	cs := ClusterStats{
		Enabled:         true,
		Epoch:           m.Epoch(),
		Moving:          m.CheckMoving() != nil,
		Rebalances:      m.Rebalances(),
		FenceRejections: m.FenceRejections(),
		Forwarded:       p.own.forwarded.Load(),
		OwnerLocal:      p.own.ownerLocal.Load(),
		Recovered:       p.own.recovered.Load(),
	}
	counts := make(map[string]int, 8)
	for id := range p.dir {
		if owner, ok := m.Owner(id); ok {
			counts[owner]++
		}
	}
	for _, mi := range m.Members() {
		cs.Members = append(cs.Members, MemberStats{
			Name:           mi.Name,
			Local:          mi.Local,
			LeaseAge:       mi.LeaseAge,
			LeaseRemaining: mi.LeaseRemaining,
			Objects:        counts[mi.Name],
		})
	}
	return cs
}

// RecoverStrandedInvocations adopts asynchronous invocation records a
// dead predecessor process left non-terminal in the shared backing
// store into this platform's queue, and replays trigger delivery
// cursors. Call it on a successor platform after redeploying classes
// (dispatch needs the class runtimes); in-process node failures run
// the same recovery automatically through the rebalance hook. Returns
// how many records were adopted.
func (p *Platform) RecoverStrandedInvocations(ctx context.Context) (int, error) {
	n, err := p.queue.RecoverStranded(ctx)
	if err == nil && p.own != nil {
		p.own.recovered.Add(int64(n))
	}
	p.bus.ReplayCursors()
	return n, err
}

// ClusterStats snapshots just the ownership layer (the gateway's
// GET /api/cluster and ocli cluster), cheaper than the full Stats
// walk.
func (p *Platform) ClusterStats() ClusterStats {
	p.mu.Lock()
	cs := p.clusterStatsLocked()
	p.mu.Unlock()
	if p.own != nil {
		cs.Requeued = p.queue.Stats().Requeued
	}
	return cs
}

// newOwnership builds the membership layer over the backing store and
// joins every cluster node. Callers wire OnRebalance before any lease
// can lapse because the monitor only starts inside NewMembership.
func newOwnership(p *Platform, cfg Config) (*ownership, error) {
	hb := cfg.OwnershipHeartbeat
	if hb <= 0 {
		hb = cfg.OwnershipLeaseTTL / 3
	}
	window := cfg.OwnershipTransitionWindow
	if window <= 0 {
		window = hb
	}
	o := &ownership{forward: cfg.ForwardLatency, retryAfter: window}
	members, err := cluster.NewMembership(cluster.MembershipConfig{
		Backing:          p.backing,
		Clock:            cfg.Clock,
		LeaseTTL:         cfg.OwnershipLeaseTTL,
		Heartbeat:        cfg.OwnershipHeartbeat,
		TransitionWindow: window,
		JitterSeed:       cfg.Chaos.Seed,
		OnRebalance:      p.onRebalance,
	})
	if err != nil {
		return nil, fmt.Errorf("core: membership: %w", err)
	}
	o.members = members
	for _, n := range p.cluster.Nodes() {
		if err := members.Join(n.Name()); err != nil {
			members.Close()
			return nil, fmt.Errorf("core: joining %s: %w", n.Name(), err)
		}
	}
	return o, nil
}
