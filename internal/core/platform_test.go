package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/hpcclab/oparaca-go/internal/asyncq"
	"github.com/hpcclab/oparaca-go/internal/faas"
	"github.com/hpcclab/oparaca-go/internal/invoker"
	"github.com/hpcclab/oparaca-go/internal/memtable"
	"github.com/hpcclab/oparaca-go/internal/runtime"
)

// imagePackage is the paper's Listing 1 with a jsonrandom sibling used
// across tests.
const testPackage = `classes:
  - name: Image
    qos:
      throughput: 100
    constraint:
      persistent: true
    keySpecs:
      - name: image
        kind: file
      - name: meta
        default: {}
    functions:
      - name: resize
        image: img/resize
      - name: changeFormat
        image: img/change-format
  - name: LabelledImage
    parent: Image
    functions:
      - name: detectObject
        image: img/detect-object
`

// newPlatform builds a small platform with handlers registered.
func newPlatform(t *testing.T, mutate func(*Config)) *Platform {
	t.Helper()
	cfg := Config{
		Workers:       2,
		ScaleInterval: 10 * time.Millisecond,
		IdleTimeout:   time.Minute,
		ColdStart:     time.Millisecond,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	reg := p.Images()
	// resize records the requested width into meta.
	reg.Register("img/resize", invoker.HandlerFunc(func(_ context.Context, task invoker.Task) (invoker.Result, error) {
		meta := map[string]any{}
		if raw, ok := task.State["meta"]; ok {
			_ = json.Unmarshal(raw, &meta)
		}
		meta["width"] = task.Args["w"]
		raw, _ := json.Marshal(meta)
		return invoker.Result{
			Output: json.RawMessage(`"resized"`),
			State:  map[string]json.RawMessage{"meta": raw},
		}, nil
	}))
	reg.Register("img/change-format", invoker.HandlerFunc(func(_ context.Context, task invoker.Task) (invoker.Result, error) {
		return invoker.Result{Output: json.RawMessage(`"converted"`)}, nil
	}))
	reg.Register("img/detect-object", invoker.HandlerFunc(func(_ context.Context, task invoker.Task) (invoker.Result, error) {
		return invoker.Result{Output: json.RawMessage(`["cat"]`)}, nil
	}))
	return p
}

func deployTest(t *testing.T, p *Platform) {
	t.Helper()
	if _, err := p.DeployYAML(context.Background(), []byte(testPackage)); err != nil {
		t.Fatal(err)
	}
}

func TestDeployPackageListsClasses(t *testing.T) {
	p := newPlatform(t, nil)
	names, err := p.DeployYAML(context.Background(), []byte(testPackage))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(names, ",") != "Image,LabelledImage" {
		t.Fatalf("deployed = %v", names)
	}
	if got := strings.Join(p.Classes(), ","); got != "Image,LabelledImage" {
		t.Fatalf("Classes = %s", got)
	}
}

func TestDeployInvalidYAML(t *testing.T) {
	p := newPlatform(t, nil)
	if _, err := p.DeployYAML(context.Background(), []byte("classes: []")); err == nil {
		t.Fatal("invalid package deployed")
	}
}

func TestTemplateSelectionFailureDeploysNothing(t *testing.T) {
	p := newPlatform(t, func(c *Config) {
		// The only template requires throughput no class declares.
		c.Templates = []runtime.Template{{
			Name:       "picky",
			Match:      runtime.Match{MinThroughputRPS: 1e9},
			EngineMode: faas.ModeDeployment, TableMode: memtable.ModeMemoryOnly,
			InitialScale: 1,
		}}
	})
	if _, err := p.DeployYAML(context.Background(), []byte(testPackage)); err == nil {
		t.Fatal("deploy succeeded with unmatchable template")
	}
	if len(p.Classes()) != 0 {
		t.Fatalf("partial deploy: %v", p.Classes())
	}
}

func TestCreateObjectAndInvoke(t *testing.T) {
	p := newPlatform(t, nil)
	deployTest(t, p)
	ctx := context.Background()
	id, err := p.CreateObject(ctx, "Image", "")
	if err != nil {
		t.Fatal(err)
	}
	if id == "" {
		t.Fatal("empty generated id")
	}
	out, err := p.Invoke(ctx, id, "resize", nil, map[string]string{"w": "100"})
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != `"resized"` {
		t.Fatalf("output = %s", out)
	}
	meta, err := p.GetState(ctx, id, "meta")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(meta), `"width":"100"`) {
		t.Fatalf("meta = %s", meta)
	}
}

func TestCreateObjectUnknownClass(t *testing.T) {
	p := newPlatform(t, nil)
	if _, err := p.CreateObject(context.Background(), "Ghost", ""); !errors.Is(err, ErrClassNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestCreateObjectDuplicateID(t *testing.T) {
	p := newPlatform(t, nil)
	deployTest(t, p)
	ctx := context.Background()
	if _, err := p.CreateObject(ctx, "Image", "fixed"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.CreateObject(ctx, "Image", "fixed"); !errors.Is(err, ErrObjectExists) {
		t.Fatalf("err = %v", err)
	}
}

func TestPolymorphicInvocation(t *testing.T) {
	p := newPlatform(t, nil)
	deployTest(t, p)
	ctx := context.Background()
	id, err := p.CreateObject(ctx, "LabelledImage", "")
	if err != nil {
		t.Fatal(err)
	}
	// Inherited method works on the subclass object.
	if _, err := p.Invoke(ctx, id, "resize", nil, map[string]string{"w": "1"}); err != nil {
		t.Fatalf("inherited method: %v", err)
	}
	// Subclass-only method works too.
	out, err := p.Invoke(ctx, id, "detectObject", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != `["cat"]` {
		t.Fatalf("output = %s", out)
	}
}

func TestListObjectsPolymorphic(t *testing.T) {
	p := newPlatform(t, nil)
	deployTest(t, p)
	ctx := context.Background()
	p.CreateObject(ctx, "Image", "img1")
	p.CreateObject(ctx, "LabelledImage", "lbl1")
	// Listing the parent class includes subclass instances.
	got := p.ListObjects("Image")
	if strings.Join(got, ",") != "img1,lbl1" {
		t.Fatalf("ListObjects(Image) = %v", got)
	}
	if got := p.ListObjects("LabelledImage"); strings.Join(got, ",") != "lbl1" {
		t.Fatalf("ListObjects(LabelledImage) = %v", got)
	}
	if got := p.ListObjects(""); len(got) != 2 {
		t.Fatalf("ListObjects() = %v", got)
	}
}

func TestInvokeUnknownMember(t *testing.T) {
	p := newPlatform(t, nil)
	deployTest(t, p)
	ctx := context.Background()
	id, _ := p.CreateObject(ctx, "Image", "")
	if _, err := p.Invoke(ctx, id, "ghost", nil, nil); !errors.Is(err, ErrMemberNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestInvokeUnknownObject(t *testing.T) {
	p := newPlatform(t, nil)
	deployTest(t, p)
	if _, err := p.Invoke(context.Background(), "nope", "resize", nil, nil); !errors.Is(err, ErrObjectNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestDeleteObject(t *testing.T) {
	p := newPlatform(t, nil)
	deployTest(t, p)
	ctx := context.Background()
	id, _ := p.CreateObject(ctx, "Image", "victim")
	if err := p.DeleteObject(ctx, id); err != nil {
		t.Fatal(err)
	}
	if _, err := p.ObjectClass(id); !errors.Is(err, ErrObjectNotFound) {
		t.Fatalf("object survives delete: %v", err)
	}
	if _, err := p.Invoke(ctx, id, "resize", nil, nil); !errors.Is(err, ErrObjectNotFound) {
		t.Fatalf("invoke after delete = %v", err)
	}
}

func TestPresignedFileUploadDownload(t *testing.T) {
	p := newPlatform(t, nil)
	deployTest(t, p)
	ctx := context.Background()
	id, _ := p.CreateObject(ctx, "Image", "")

	putURL, err := p.PresignFile(id, "image", http.MethodPut)
	if err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodPut, putURL, strings.NewReader("fake-png"))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT status = %d", resp.StatusCode)
	}

	getURL, err := p.PresignFile(id, "image", http.MethodGet)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(getURL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "fake-png" {
		t.Fatalf("downloaded %q", body)
	}
}

func TestObjectClassLookup(t *testing.T) {
	p := newPlatform(t, nil)
	deployTest(t, p)
	ctx := context.Background()
	id, _ := p.CreateObject(ctx, "LabelledImage", "")
	class, err := p.ObjectClass(id)
	if err != nil {
		t.Fatal(err)
	}
	if class != "LabelledImage" {
		t.Fatalf("class = %q", class)
	}
}

func TestStats(t *testing.T) {
	p := newPlatform(t, nil)
	deployTest(t, p)
	ctx := context.Background()
	id, _ := p.CreateObject(ctx, "Image", "")
	p.Invoke(ctx, id, "resize", nil, map[string]string{"w": "9"})
	s := p.Stats()
	if s.Workers != 2 || s.Objects != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Invocations != 1 {
		t.Fatalf("invocations = %d", s.Invocations)
	}
	if len(s.Classes) != 2 {
		t.Fatalf("classes = %v", s.Classes)
	}
}

func TestRedeployReplacesRuntime(t *testing.T) {
	p := newPlatform(t, nil)
	deployTest(t, p)
	ctx := context.Background()
	id, _ := p.CreateObject(ctx, "Image", "keepme")
	p.Invoke(ctx, id, "resize", nil, map[string]string{"w": "7"})
	p.Flush(ctx)
	// Redeploy the same package.
	if _, err := p.DeployYAML(ctx, []byte(testPackage)); err != nil {
		t.Fatal(err)
	}
	// Object state survives because it lives in the shared backing
	// store (read-through on the fresh runtime).
	meta, err := p.GetState(ctx, id, "meta")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(meta), `"width":"7"`) {
		t.Fatalf("state lost on redeploy: %s", meta)
	}
}

func TestCloseRejectsOperations(t *testing.T) {
	p := newPlatform(t, nil)
	deployTest(t, p)
	ctx := context.Background()
	id, _ := p.CreateObject(ctx, "Image", "")
	p.Close()
	if _, err := p.Invoke(ctx, id, "resize", nil, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("invoke after close = %v", err)
	}
	if _, err := p.DeployYAML(ctx, []byte(testPackage)); !errors.Is(err, ErrClosed) {
		t.Fatalf("deploy after close = %v", err)
	}
	if _, err := p.CreateObject(ctx, "Image", "x"); err == nil {
		t.Fatal("create after close succeeded")
	}
	p.Close() // idempotent
}

func TestExtendDeployedClassInSecondPackage(t *testing.T) {
	p := newPlatform(t, nil)
	deployTest(t, p)
	ctx := context.Background()
	ext := `classes:
  - name: ThumbImage
    parent: Image
`
	if _, err := p.DeployYAML(ctx, []byte(ext)); err != nil {
		t.Fatal(err)
	}
	id, err := p.CreateObject(ctx, "ThumbImage", "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Invoke(ctx, id, "resize", nil, map[string]string{"w": "3"}); err != nil {
		t.Fatalf("inherited method via cross-package inheritance: %v", err)
	}
}

func TestDataflowThroughPlatform(t *testing.T) {
	p := newPlatform(t, nil)
	flowPkg := `classes:
  - name: Pipeline
    keySpecs:
      - name: log
        default: []
    functions:
      - name: stepA
        image: img/step
      - name: stepB
        image: img/step
    dataflows:
      - name: run
        steps:
          - name: a
            function: stepA
          - name: b
            function: stepB
            input: steps.a.output
`
	p.Images().Register("img/step", invoker.HandlerFunc(func(_ context.Context, task invoker.Task) (invoker.Result, error) {
		var s string
		if len(task.Payload) > 0 {
			json.Unmarshal(task.Payload, &s)
		}
		out, _ := json.Marshal(s + ">" + task.Function)
		return invoker.Result{Output: out}, nil
	}))
	ctx := context.Background()
	if _, err := p.DeployYAML(ctx, []byte(flowPkg)); err != nil {
		t.Fatal(err)
	}
	id, _ := p.CreateObject(ctx, "Pipeline", "")
	out, err := p.Invoke(ctx, id, "run", json.RawMessage(`"in"`), nil)
	if err != nil {
		t.Fatal(err)
	}
	var s string
	json.Unmarshal(out, &s)
	if s != "in>stepA>stepB" {
		t.Fatalf("dataflow output = %q", s)
	}
}

func TestConcurrentInvocations(t *testing.T) {
	p := newPlatform(t, nil)
	deployTest(t, p)
	ctx := context.Background()
	ids := make([]string, 8)
	for i := range ids {
		id, err := p.CreateObject(ctx, "Image", fmt.Sprintf("obj-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	errCh := make(chan error, len(ids)*10)
	for _, id := range ids {
		id := id
		go func() {
			for j := 0; j < 10; j++ {
				_, err := p.Invoke(ctx, id, "changeFormat", nil, nil)
				errCh <- err
			}
		}()
	}
	for i := 0; i < len(ids)*10; i++ {
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
	}
}

// --- Asynchronous invocation ----------------------------------------

func TestInvokeAsyncLifecycle(t *testing.T) {
	p := newPlatform(t, nil)
	deployTest(t, p)
	ctx := context.Background()
	id, err := p.CreateObject(ctx, "Image", "")
	if err != nil {
		t.Fatal(err)
	}
	invID, err := p.InvokeAsync(ctx, id, "resize", nil, map[string]string{"w": "120"})
	if err != nil {
		t.Fatal(err)
	}
	if invID == "" {
		t.Fatal("empty invocation id")
	}
	rec, err := p.WaitInvocation(ctx, invID)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Status != asyncq.StatusCompleted {
		t.Fatalf("status = %s (error %q)", rec.Status, rec.Error)
	}
	if string(rec.Result) != `"resized"` {
		t.Fatalf("result = %s", rec.Result)
	}
	// The handler's state write landed like a synchronous call.
	meta, err := p.GetState(ctx, id, "meta")
	if err != nil || !strings.Contains(string(meta), `"120"`) {
		t.Fatalf("meta = %s, %v", meta, err)
	}
	// Polling by ID returns the same terminal record.
	again, err := p.Invocation(ctx, invID)
	if err != nil || again.Status != asyncq.StatusCompleted {
		t.Fatalf("re-poll = %+v, %v", again, err)
	}
	if s := p.Stats(); s.Async.Completed != 1 || s.Async.Enqueued != 1 {
		t.Fatalf("async stats = %+v", s.Async)
	}
}

func TestInvokeAsyncValidatesTarget(t *testing.T) {
	p := newPlatform(t, nil)
	deployTest(t, p)
	ctx := context.Background()
	id, err := p.CreateObject(ctx, "Image", "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.InvokeAsync(ctx, "ghost", "resize", nil, nil); !errors.Is(err, ErrObjectNotFound) {
		t.Fatalf("unknown object err = %v", err)
	}
	if _, err := p.InvokeAsync(ctx, id, "nope", nil, nil); !errors.Is(err, ErrMemberNotFound) {
		t.Fatalf("unknown member err = %v", err)
	}
	if _, err := p.Invocation(ctx, "inv-ghost"); !errors.Is(err, ErrInvocationNotFound) {
		t.Fatalf("unknown invocation err = %v", err)
	}
}

func TestInvokeAsyncDataflowMember(t *testing.T) {
	p := newPlatform(t, nil)
	pkg := `classes:
  - name: Chain
    functions:
      - name: step
        image: img/change-format
    dataflows:
      - name: run
        steps:
          - name: a
            function: step
          - name: b
            function: step
            after: [a]
`
	ctx := context.Background()
	if _, err := p.DeployYAML(ctx, []byte(pkg)); err != nil {
		t.Fatal(err)
	}
	id, err := p.CreateObject(ctx, "Chain", "")
	if err != nil {
		t.Fatal(err)
	}
	invID, err := p.InvokeAsync(ctx, id, "run", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := p.WaitInvocation(ctx, invID)
	if err != nil || rec.Status != asyncq.StatusCompleted {
		t.Fatalf("dataflow record = %+v, %v", rec, err)
	}
}

func TestInvokeAsyncBatchMixedValidity(t *testing.T) {
	p := newPlatform(t, nil)
	deployTest(t, p)
	ctx := context.Background()
	id, err := p.CreateObject(ctx, "Image", "")
	if err != nil {
		t.Fatal(err)
	}
	results := p.InvokeAsyncBatch(ctx, []asyncq.Request{
		{Object: id, Member: "changeFormat"},
		{Object: "ghost", Member: "resize"},
		{Object: id, Member: "nope"},
		{Object: id, Member: "resize", Args: map[string]string{"w": "9"}},
	})
	if len(results) != 4 {
		t.Fatalf("results = %d", len(results))
	}
	if results[0].Err != nil || results[3].Err != nil {
		t.Fatalf("valid entries rejected: %v %v", results[0].Err, results[3].Err)
	}
	if !errors.Is(results[1].Err, ErrObjectNotFound) || !errors.Is(results[2].Err, ErrMemberNotFound) {
		t.Fatalf("invalid entries = %v %v", results[1].Err, results[2].Err)
	}
	for _, i := range []int{0, 3} {
		rec, err := p.WaitInvocation(ctx, results[i].ID)
		if err != nil || rec.Status != asyncq.StatusCompleted {
			t.Fatalf("entry %d: %+v, %v", i, rec, err)
		}
	}
}

func TestCloseDrainsAsyncQueue(t *testing.T) {
	p := newPlatform(t, nil)
	deployTest(t, p)
	ctx := context.Background()
	id, err := p.CreateObject(ctx, "Image", "")
	if err != nil {
		t.Fatal(err)
	}
	const n = 16
	for i := 0; i < n; i++ {
		if _, err := p.InvokeAsync(ctx, id, "changeFormat", nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	p.Close() // drains the queue before tearing runtimes down
	s := p.AsyncQueue().Stats()
	if s.Completed != n || s.Failed != 0 || s.Depth != 0 {
		t.Fatalf("post-close async stats = %+v", s)
	}
	if _, err := p.InvokeAsync(ctx, id, "changeFormat", nil, nil); err == nil {
		t.Fatal("InvokeAsync after Close succeeded")
	}
}

// TestInvokeBatchMixedMembers drives Platform.InvokeBatch with a
// function, a dataflow, and an unknown member in one group: the
// function rides the group-commit window, the dataflow falls back to
// individual invocation, and the unknown member fails only its own
// entry.
func TestInvokeBatchMixedMembers(t *testing.T) {
	p := newPlatform(t, nil)
	pkg := `classes:
  - name: Mixed
    keySpecs:
      - name: meta
        default: {}
    functions:
      - name: resize
        image: img/resize
      - name: convert
        image: img/change-format
    dataflows:
      - name: flow
        steps:
          - name: s0
            function: convert
`
	ctx := context.Background()
	if _, err := p.DeployYAML(ctx, []byte(pkg)); err != nil {
		t.Fatal(err)
	}
	id, err := p.CreateObject(ctx, "Mixed", "mx")
	if err != nil {
		t.Fatal(err)
	}
	results, err := p.InvokeBatch(ctx, id, []runtime.BatchCall{
		{Function: "resize", Args: map[string]string{"w": "64"}},
		{Function: "flow"},
		{Function: "nosuch"},
		{Function: "convert"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil || string(results[0].Output) != `"resized"` {
		t.Fatalf("function call = %+v", results[0])
	}
	if results[1].Err != nil || string(results[1].Output) != `"converted"` {
		t.Fatalf("dataflow fallback = %+v", results[1])
	}
	if !errors.Is(results[2].Err, ErrMemberNotFound) {
		t.Fatalf("unknown member err = %v, want ErrMemberNotFound", results[2].Err)
	}
	if results[3].Err != nil || string(results[3].Output) != `"converted"` {
		t.Fatalf("second function call = %+v", results[3])
	}
	// The resize delta landed through the merged commit.
	meta, err := p.GetState(ctx, id, "meta")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(meta), `"width":"64"`) {
		t.Fatalf("meta = %s, want width recorded", meta)
	}
	// An unknown object fails the whole batch.
	if _, err := p.InvokeBatch(ctx, "ghost", []runtime.BatchCall{{Function: "resize"}}); !errors.Is(err, ErrObjectNotFound) {
		t.Fatalf("unknown object err = %v, want ErrObjectNotFound", err)
	}
}
