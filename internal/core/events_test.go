package core

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/hpcclab/oparaca-go/internal/invoker"
	"github.com/hpcclab/oparaca-go/internal/trigger"
)

// chainYAML wires the data-triggered composition under test: Doc
// commits fire Tally.bump through the event bus and the async queue.
// The Doc concurrency mode is parameterized; Tally counts under the
// locked regime so the downstream count is trustworthy.
func chainYAML(mode string) string {
	return fmt.Sprintf(`classes:
  - name: Doc
    concurrencyMode: %s
    keySpecs:
      - name: content
    functions:
      - name: write
        image: img/write
  - name: Tally
    concurrencyMode: locked
    keySpecs:
      - name: n
        kind: number
        default: 0
    functions:
      - name: bump
        image: img/bump
`, mode)
}

// newEventPlatform builds a platform with write/bump handlers.
func newEventPlatform(t *testing.T, cfg Config) *Platform {
	t.Helper()
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	cfg.ColdStart = time.Millisecond
	cfg.IdleTimeout = time.Minute
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	p.Images().Register("img/write", invoker.HandlerFunc(func(_ context.Context, task invoker.Task) (invoker.Result, error) {
		return invoker.Result{
			Output: json.RawMessage(`"written"`),
			State:  map[string]json.RawMessage{"content": task.Payload},
		}, nil
	}))
	p.Images().Register("img/bump", invoker.HandlerFunc(func(_ context.Context, task invoker.Task) (invoker.Result, error) {
		var n float64
		if raw, ok := task.State["n"]; ok {
			_ = json.Unmarshal(raw, &n)
		}
		out, _ := json.Marshal(n + 1)
		return invoker.Result{Output: out, State: map[string]json.RawMessage{"n": out}}, nil
	}))
	return p
}

// tallyCount reads Tally's counter.
func tallyCount(t *testing.T, p *Platform, id string) float64 {
	t.Helper()
	raw, err := p.GetState(context.Background(), id, "n")
	if err != nil {
		t.Fatal(err)
	}
	var n float64
	if err := json.Unmarshal(raw, &n); err != nil {
		t.Fatalf("counter %s: %v", raw, err)
	}
	return n
}

// TestDataTriggeredChainIsExact drives the acceptance criterion: N
// committed writes on object A yield exactly N downstream invocations
// on object B, in every commit regime, under -race.
func TestDataTriggeredChainIsExact(t *testing.T) {
	const writers, perWriter = 4, 15
	const total = writers * perWriter
	for _, mode := range []string{"locked", "occ", "adaptive"} {
		t.Run(mode, func(t *testing.T) {
			p := newEventPlatform(t, Config{})
			ctx := context.Background()
			if _, err := p.DeployYAML(ctx, []byte(chainYAML(mode))); err != nil {
				t.Fatal(err)
			}
			doc, err := p.CreateObject(ctx, "Doc", "doc-1")
			if err != nil {
				t.Fatal(err)
			}
			tally, err := p.CreateObject(ctx, "Tally", "tally-1")
			if err != nil {
				t.Fatal(err)
			}
			if err := p.SubscribeTrigger("doc-chain", trigger.Subscription{
				Class: "Doc", Type: trigger.StateChanged, KeyPrefix: "con",
				TargetObject: tally, TargetFunction: "bump",
			}); err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < perWriter; i++ {
						payload, _ := json.Marshal(fmt.Sprintf("w%d-%d", w, i))
						if _, err := p.Invoke(ctx, doc, "write", payload, nil); err != nil {
							t.Error(err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			// The chain is asynchronous (bus dispatch + async queue):
			// wait for the count to arrive, then hold to catch
			// over-delivery.
			deadline := time.Now().Add(10 * time.Second)
			for tallyCount(t, p, tally) < total {
				if time.Now().After(deadline) {
					t.Fatalf("tally = %v, want %d (stats %+v / %+v)",
						tallyCount(t, p, tally), total, p.TriggerBus().Stats(), p.Stats().Async)
				}
				time.Sleep(2 * time.Millisecond)
			}
			p.TriggerBus().Drain()
			time.Sleep(20 * time.Millisecond)
			if got := tallyCount(t, p, tally); got != total {
				t.Fatalf("tally = %v, want exactly %d", got, total)
			}
			s := p.Stats().Triggers
			if s.Emitted < total || s.Delivered < total {
				t.Fatalf("trigger stats = %+v", s)
			}
		})
	}
}

// TestYAMLTriggerCycleDepthTerminates deploys a class whose
// stateChanged trigger re-invokes its own writer: the chain must stop
// after TriggerMaxChainDepth hops with the cycle counted.
func TestYAMLTriggerCycleDepthTerminates(t *testing.T) {
	const maxDepth = 3
	p := newEventPlatform(t, Config{TriggerMaxChainDepth: maxDepth})
	ctx := context.Background()
	loopYAML := `classes:
  - name: Loop
    keySpecs:
      - name: n
        kind: number
        default: 0
    functions:
      - name: bump
        image: img/bump
    triggers:
      - on: stateChanged
        function: bump
`
	if _, err := p.DeployYAML(ctx, []byte(loopYAML)); err != nil {
		t.Fatal(err)
	}
	id, err := p.CreateObject(ctx, "Loop", "loop-1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Invoke(ctx, id, "bump", nil, nil); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for p.Stats().Triggers.CycleDropped == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("cycle never terminated: %+v", p.Stats().Triggers)
		}
		time.Sleep(2 * time.Millisecond)
	}
	p.TriggerBus().Drain()
	time.Sleep(20 * time.Millisecond)
	// Client bump (depth 0) plus one chained bump per depth level.
	if got := tallyCount(t, p, id); got != maxDepth+1 {
		t.Fatalf("loop counter = %v, want %d", got, maxDepth+1)
	}
}

// TestWebhookPushOnTerminalRecords covers the terminal-record webhook
// satellite: a flaky endpoint is retried with backoff and counted, an
// always-failing one is dropped, and Close drains pending deliveries.
func TestWebhookPushOnTerminalRecords(t *testing.T) {
	t.Run("retries then delivers", func(t *testing.T) {
		var hits atomic.Int64
		var gotEvent atomic.Value
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if hits.Add(1) <= 2 {
				w.WriteHeader(http.StatusBadGateway)
				return
			}
			var ev trigger.Event
			_ = json.NewDecoder(r.Body).Decode(&ev)
			gotEvent.Store(ev)
			w.WriteHeader(http.StatusOK)
		}))
		defer srv.Close()
		p := newEventPlatform(t, Config{WebhookMaxRetries: 4, WebhookRetryBackoff: time.Millisecond})
		ctx := context.Background()
		if _, err := p.DeployYAML(ctx, []byte(chainYAML("adaptive"))); err != nil {
			t.Fatal(err)
		}
		doc, _ := p.CreateObject(ctx, "Doc", "doc-1")
		if err := p.SubscribeTrigger("hook", trigger.Subscription{
			Class: "Doc", Type: trigger.InvocationCompleted, Webhook: srv.URL,
		}); err != nil {
			t.Fatal(err)
		}
		invID, err := p.InvokeAsync(ctx, doc, "write", json.RawMessage(`"x"`), nil)
		if err != nil {
			t.Fatal(err)
		}
		if rec, err := p.WaitInvocation(ctx, invID); err != nil || rec.Status != "completed" {
			t.Fatalf("record = %+v, %v", rec, err)
		}
		deadline := time.Now().Add(5 * time.Second)
		for p.Stats().Triggers.Delivered == 0 {
			if time.Now().After(deadline) {
				t.Fatalf("webhook never delivered: %+v", p.Stats().Triggers)
			}
			time.Sleep(2 * time.Millisecond)
		}
		s := p.Stats().Triggers
		if s.Retried != 2 || s.Dropped != 0 {
			t.Fatalf("stats = %+v, want 2 retries and no drops", s)
		}
		ev, _ := gotEvent.Load().(trigger.Event)
		if ev.Type != trigger.InvocationCompleted || ev.Object != doc || ev.Invocation != invID || ev.Class != "Doc" {
			t.Fatalf("delivered event = %+v", ev)
		}
	})
	t.Run("exhausted retries leave delivery pending", func(t *testing.T) {
		var hits atomic.Int64
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			hits.Add(1)
			w.WriteHeader(http.StatusInternalServerError)
		}))
		defer srv.Close()
		p := newEventPlatform(t, Config{WebhookMaxRetries: 2, WebhookRetryBackoff: time.Millisecond})
		ctx := context.Background()
		if _, err := p.DeployYAML(ctx, []byte(chainYAML("adaptive"))); err != nil {
			t.Fatal(err)
		}
		doc, _ := p.CreateObject(ctx, "Doc", "doc-1")
		if err := p.SubscribeTrigger("hook", trigger.Subscription{
			Class: "Doc", Type: trigger.InvocationFailed, Webhook: srv.URL,
		}); err != nil {
			t.Fatal(err)
		}
		// An unknown member passes submission validation only for known
		// members, so fail through the handler instead: cancel context.
		cctx, cancel := context.WithCancel(ctx)
		invID, err := p.InvokeAsync(cctx, doc, "write", nil, nil)
		cancel() // cancelled while queued -> terminal failed record
		if err != nil {
			t.Fatal(err)
		}
		if rec, err := p.WaitInvocation(ctx, invID); err != nil || !rec.Status.Terminal() {
			t.Fatalf("record = %+v, %v", rec, err)
		}
		// With the durable log the event is NOT dropped once the retry
		// budget is spent: the consumer's cursor stays put (visible as
		// CursorLag) and the delivery is re-attempted on the next
		// notify or restart.
		deadline := time.Now().Add(5 * time.Second)
		for p.Stats().Triggers.Retried < 2 {
			if time.Now().After(deadline) {
				t.Fatalf("retries never counted: %+v", p.Stats().Triggers)
			}
			time.Sleep(2 * time.Millisecond)
		}
		for hits.Load() < 3 {
			if time.Now().After(deadline) {
				t.Fatalf("attempts = %d, want 3 (1 + 2 retries)", hits.Load())
			}
			time.Sleep(2 * time.Millisecond)
		}
		s := p.Stats().Triggers
		if s.Delivered != 0 {
			t.Fatalf("stats = %+v, want no deliveries", s)
		}
		sub := s.Subscriptions["named/hook"]
		if sub.CursorLag < 1 {
			t.Fatalf("per-sub stats = %+v, want pending cursor lag", sub)
		}
	})
	t.Run("close drains pending deliveries", func(t *testing.T) {
		release := make(chan struct{})
		var hits atomic.Int64
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			<-release
			hits.Add(1)
			w.WriteHeader(http.StatusOK)
		}))
		defer srv.Close()
		p := newEventPlatform(t, Config{})
		ctx := context.Background()
		if _, err := p.DeployYAML(ctx, []byte(chainYAML("adaptive"))); err != nil {
			t.Fatal(err)
		}
		doc, _ := p.CreateObject(ctx, "Doc", "doc-1")
		if err := p.SubscribeTrigger("hook", trigger.Subscription{
			Class: "Doc", Type: trigger.InvocationCompleted, Webhook: srv.URL,
		}); err != nil {
			t.Fatal(err)
		}
		if _, err := p.InvokeAsync(ctx, doc, "write", json.RawMessage(`"x"`), nil); err != nil {
			t.Fatal(err)
		}
		time.AfterFunc(50*time.Millisecond, func() { close(release) })
		p.Close() // must block until the webhook went out
		if hits.Load() != 1 {
			t.Fatalf("Close returned before the webhook delivery (hits=%d)", hits.Load())
		}
	})
}

// TestStateChangedWebhookFromYAML delivers a YAML-declared webhook
// trigger with a key-prefix filter.
func TestStateChangedWebhookFromYAML(t *testing.T) {
	events := make(chan trigger.Event, 4)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var ev trigger.Event
		_ = json.NewDecoder(r.Body).Decode(&ev)
		events <- ev
		w.WriteHeader(http.StatusNoContent)
	}))
	defer srv.Close()
	p := newEventPlatform(t, Config{})
	ctx := context.Background()
	yaml := fmt.Sprintf(`classes:
  - name: Doc
    keySpecs:
      - name: content
    functions:
      - name: write
        image: img/write
    triggers:
      - on: stateChanged
        keyPrefix: content
        webhook: %s
`, srv.URL)
	if _, err := p.DeployYAML(ctx, []byte(yaml)); err != nil {
		t.Fatal(err)
	}
	doc, err := p.CreateObject(ctx, "Doc", "doc-1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Invoke(ctx, doc, "write", json.RawMessage(`"hello"`), nil); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-events:
		if ev.Type != trigger.StateChanged || ev.Object != doc || ev.Function != "write" {
			t.Fatalf("event = %+v", ev)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("YAML webhook trigger never delivered")
	}
}

// TestStreamEventsLifecycle exercises the live-tail surface at the
// platform level: open, receive, close, and unknown-object rejection.
func TestStreamEventsLifecycle(t *testing.T) {
	p := newEventPlatform(t, Config{})
	ctx := context.Background()
	if _, err := p.DeployYAML(ctx, []byte(chainYAML("adaptive"))); err != nil {
		t.Fatal(err)
	}
	doc, _ := p.CreateObject(ctx, "Doc", "doc-1")
	if _, err := p.StreamEvents("ghost", 8); err == nil {
		t.Fatal("stream for unknown object accepted")
	}
	st, err := p.StreamEvents(doc, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Invoke(ctx, doc, "write", json.RawMessage(`"x"`), nil); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-st.Events():
		if ev.Type != trigger.StateChanged || ev.Object != doc {
			t.Fatalf("event = %+v", ev)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stream never received the commit event")
	}
	st.Close()
	if _, open := <-st.Events(); open {
		t.Fatal("closed stream still open")
	}
}
