// Package invoker defines Oparaca's pure-function invocation contract
// (paper §III-C): the class runtime "bundles the object state and
// input request into the standalone invocation task for offloading
// this task to the code execution runtime (FaaS engine) and expects
// the runtime to return with the modified state".
//
// A Task is fully self-contained — structured state travels with the
// request, unstructured state is referenced by presigned URLs — so any
// engine that speaks the HTTP framing can execute it. The package
// provides the Handler abstraction for function code ("container
// images"), an image registry, a local transport, and an HTTP
// transport with timeouts and retries.
package invoker

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"github.com/hpcclab/oparaca-go/internal/vclock"
)

// Sentinel errors.
var (
	// ErrImageNotFound is returned when no handler is registered for
	// an image name.
	ErrImageNotFound = errors.New("invoker: image not found")
	// ErrFunctionFailed wraps an error reported by function code.
	ErrFunctionFailed = errors.New("invoker: function failed")
)

// Task is a standalone invocation request. It carries everything the
// function needs, decoupling code execution from state management.
type Task struct {
	// ID uniquely identifies this invocation.
	ID string `json:"id"`
	// Class and Object identify the receiver; Function is the method.
	Class    string `json:"class"`
	Object   string `json:"object"`
	Function string `json:"function"`
	// State maps structured state keys to their current values.
	State map[string]json.RawMessage `json:"state,omitempty"`
	// Payload is the request body.
	Payload json.RawMessage `json:"payload,omitempty"`
	// Args are free-form invocation parameters.
	Args map[string]string `json:"args,omitempty"`
	// Refs maps unstructured state keys to presigned URLs (paper
	// §III-D) so function code accesses files without credentials.
	Refs map[string]string `json:"refs,omitempty"`
	// Cost is the simulated compute cost in node-compute tokens
	// (defaults to 1 when zero).
	Cost float64 `json:"cost,omitempty"`
}

// Result is the function's reply: its output plus any modified state.
type Result struct {
	// Output is the function's return value.
	Output json.RawMessage `json:"output,omitempty"`
	// State holds modified structured-state entries. Keys absent from
	// the map are unchanged; a key mapped to JSON null is deleted.
	State map[string]json.RawMessage `json:"state,omitempty"`
}

// Handler is the interface function code implements. Handlers must be
// pure with respect to platform state: all reads come from task.State
// or task.Refs, all writes go into the Result.
type Handler interface {
	Invoke(ctx context.Context, task Task) (Result, error)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(ctx context.Context, task Task) (Result, error)

// Invoke implements Handler.
func (f HandlerFunc) Invoke(ctx context.Context, task Task) (Result, error) {
	return f(ctx, task)
}

// Registry maps container-image names (e.g. "img/resize") to handlers,
// standing in for a container registry. It is safe for concurrent use.
type Registry struct {
	mu     sync.RWMutex
	images map[string]Handler
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{images: make(map[string]Handler)}
}

// Register binds image to handler, replacing any previous binding.
func (r *Registry) Register(image string, h Handler) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.images[image] = h
}

// Lookup returns the handler for image.
func (r *Registry) Lookup(image string) (Handler, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	h, ok := r.images[image]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrImageNotFound, image)
	}
	return h, nil
}

// Images returns registered image names, sorted.
func (r *Registry) Images() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.images))
	for k := range r.images {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Transport delivers a task to the execution runtime of one image and
// returns the function's result. Implementations: Local (in-process)
// and Client (HTTP).
type Transport interface {
	Offload(ctx context.Context, image string, task Task) (Result, error)
}

// Local executes tasks in-process against a Registry.
type Local struct {
	registry *Registry
}

var _ Transport = (*Local)(nil)

// NewLocal returns a Transport that runs handlers in-process.
func NewLocal(registry *Registry) *Local {
	return &Local{registry: registry}
}

// Offload implements Transport.
func (l *Local) Offload(ctx context.Context, image string, task Task) (Result, error) {
	h, err := l.registry.Lookup(image)
	if err != nil {
		return Result{}, err
	}
	res, err := h.Invoke(ctx, task)
	if err != nil {
		return Result{}, fmt.Errorf("%w: image %q: %v", ErrFunctionFailed, image, err)
	}
	return res, nil
}

// wireRequest is the HTTP framing of an offloaded task.
type wireRequest struct {
	Image string `json:"image"`
	Task  Task   `json:"task"`
}

// wireResponse is the HTTP framing of a result.
type wireResponse struct {
	Result Result `json:"result"`
	Error  string `json:"error,omitempty"`
}

// Server exposes a Registry over HTTP at POST /invoke, so any
// platform component (or an external FaaS engine, paper §III-C:
// "connecting the other FaaS engine can be done by configuring the
// URL") can execute tasks via RPC.
func Server(registry *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/invoke", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 32<<20))
		if err != nil {
			http.Error(w, "unreadable body", http.StatusBadRequest)
			return
		}
		var req wireRequest
		if err := json.Unmarshal(body, &req); err != nil {
			http.Error(w, "bad JSON: "+err.Error(), http.StatusBadRequest)
			return
		}
		h, err := registry.Lookup(req.Image)
		if err != nil {
			writeWire(w, http.StatusNotFound, wireResponse{Error: err.Error()})
			return
		}
		res, err := h.Invoke(r.Context(), req.Task)
		if err != nil {
			writeWire(w, http.StatusUnprocessableEntity, wireResponse{Error: err.Error()})
			return
		}
		writeWire(w, http.StatusOK, wireResponse{Result: res})
	})
	return mux
}

func writeWire(w http.ResponseWriter, status int, resp wireResponse) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(resp)
}

// ClientConfig tunes the HTTP transport.
type ClientConfig struct {
	// BaseURL is the execution runtime's address, e.g.
	// "http://127.0.0.1:8081".
	BaseURL string
	// Timeout bounds one attempt. Defaults to 30s.
	Timeout time.Duration
	// Retries is the number of additional attempts on transport
	// errors (function errors are not retried: the contract does not
	// assume idempotent functions beyond state-merge semantics).
	Retries int
	// Backoff is the initial retry delay, doubled per attempt.
	// Defaults to 10ms.
	Backoff time.Duration
	// HTTPClient overrides the default client (tests).
	HTTPClient *http.Client
	// Clock supplies time for backoff sleeps.
	Clock vclock.Clock
}

func (c ClientConfig) withDefaults() ClientConfig {
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	if c.Backoff <= 0 {
		c.Backoff = 10 * time.Millisecond
	}
	if c.HTTPClient == nil {
		c.HTTPClient = &http.Client{}
	}
	if c.Clock == nil {
		c.Clock = vclock.NewReal()
	}
	return c
}

// Client is the HTTP Transport.
type Client struct {
	cfg ClientConfig
}

var _ Transport = (*Client)(nil)

// NewClient returns an HTTP transport targeting cfg.BaseURL.
func NewClient(cfg ClientConfig) *Client {
	return &Client{cfg: cfg.withDefaults()}
}

// Offload implements Transport. Transport-level failures are retried
// with exponential backoff; HTTP 4xx/422 responses are terminal.
func (c *Client) Offload(ctx context.Context, image string, task Task) (Result, error) {
	payload, err := json.Marshal(wireRequest{Image: image, Task: task})
	if err != nil {
		return Result{}, fmt.Errorf("invoker: encoding task: %w", err)
	}
	backoff := c.cfg.Backoff
	var lastErr error
	for attempt := 0; attempt <= c.cfg.Retries; attempt++ {
		if attempt > 0 {
			if err := c.cfg.Clock.Sleep(ctx, backoff); err != nil {
				return Result{}, err
			}
			backoff *= 2
		}
		res, done, err := c.attempt(ctx, payload)
		if done {
			return res, err
		}
		lastErr = err
	}
	return Result{}, fmt.Errorf("invoker: offload failed after %d attempts: %w", c.cfg.Retries+1, lastErr)
}

// attempt performs one HTTP round trip. done=true means the outcome is
// terminal (success or a non-retryable failure).
func (c *Client) attempt(ctx context.Context, payload []byte) (Result, bool, error) {
	actx, cancel := context.WithTimeout(ctx, c.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodPost, c.cfg.BaseURL+"/invoke", bytes.NewReader(payload))
	if err != nil {
		return Result{}, true, fmt.Errorf("invoker: building request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return Result{}, true, ctx.Err()
		}
		return Result{}, false, err // transport error: retryable
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 32<<20))
	if err != nil {
		return Result{}, false, err
	}
	var wire wireResponse
	if err := json.Unmarshal(body, &wire); err != nil {
		return Result{}, false, fmt.Errorf("invoker: bad response: %w", err)
	}
	switch resp.StatusCode {
	case http.StatusOK:
		return wire.Result, true, nil
	case http.StatusNotFound:
		return Result{}, true, fmt.Errorf("%w: %s", ErrImageNotFound, wire.Error)
	case http.StatusUnprocessableEntity:
		return Result{}, true, fmt.Errorf("%w: %s", ErrFunctionFailed, wire.Error)
	default:
		return Result{}, false, fmt.Errorf("invoker: HTTP %d: %s", resp.StatusCode, wire.Error)
	}
}

// MergeState applies a Result's state delta onto base, honoring the
// pure-function contract: nil map = no change, JSON null value =
// delete key. It returns a new map; base is not mutated.
func MergeState(base map[string]json.RawMessage, delta map[string]json.RawMessage) map[string]json.RawMessage {
	merged := make(map[string]json.RawMessage, len(base)+len(delta))
	for k, v := range base {
		merged[k] = v
	}
	for k, v := range delta {
		if isJSONNull(v) {
			delete(merged, k)
			continue
		}
		merged[k] = v
	}
	return merged
}

func isJSONNull(v json.RawMessage) bool {
	return len(bytes.TrimSpace(v)) == 0 || bytes.Equal(bytes.TrimSpace(v), []byte("null"))
}
