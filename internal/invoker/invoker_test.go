package invoker

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

// echoHandler returns its payload as output and bumps a state counter.
func echoHandler() Handler {
	return HandlerFunc(func(_ context.Context, task Task) (Result, error) {
		var n int
		if raw, ok := task.State["count"]; ok {
			_ = json.Unmarshal(raw, &n)
		}
		raw, _ := json.Marshal(n + 1)
		return Result{
			Output: task.Payload,
			State:  map[string]json.RawMessage{"count": raw},
		}, nil
	})
}

func TestRegistryLookup(t *testing.T) {
	r := NewRegistry()
	r.Register("img/echo", echoHandler())
	if _, err := r.Lookup("img/echo"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Lookup("img/none"); !errors.Is(err, ErrImageNotFound) {
		t.Fatalf("missing image err = %v", err)
	}
}

func TestRegistryImagesSorted(t *testing.T) {
	r := NewRegistry()
	r.Register("img/z", echoHandler())
	r.Register("img/a", echoHandler())
	imgs := r.Images()
	if len(imgs) != 2 || imgs[0] != "img/a" || imgs[1] != "img/z" {
		t.Fatalf("Images = %v", imgs)
	}
}

func TestRegistryReplace(t *testing.T) {
	r := NewRegistry()
	r.Register("img/x", HandlerFunc(func(context.Context, Task) (Result, error) {
		return Result{Output: json.RawMessage(`"v1"`)}, nil
	}))
	r.Register("img/x", HandlerFunc(func(context.Context, Task) (Result, error) {
		return Result{Output: json.RawMessage(`"v2"`)}, nil
	}))
	h, _ := r.Lookup("img/x")
	res, _ := h.Invoke(context.Background(), Task{})
	if string(res.Output) != `"v2"` {
		t.Fatalf("got %s, want replacement handler", res.Output)
	}
}

func TestLocalOffload(t *testing.T) {
	r := NewRegistry()
	r.Register("img/echo", echoHandler())
	l := NewLocal(r)
	res, err := l.Offload(context.Background(), "img/echo", Task{
		Payload: json.RawMessage(`{"hello":1}`),
		State:   map[string]json.RawMessage{"count": json.RawMessage(`41`)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Output) != `{"hello":1}` {
		t.Fatalf("output = %s", res.Output)
	}
	if string(res.State["count"]) != `42` {
		t.Fatalf("state count = %s", res.State["count"])
	}
}

func TestLocalOffloadUnknownImage(t *testing.T) {
	l := NewLocal(NewRegistry())
	if _, err := l.Offload(context.Background(), "img/none", Task{}); !errors.Is(err, ErrImageNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestLocalOffloadFunctionError(t *testing.T) {
	r := NewRegistry()
	r.Register("img/bad", HandlerFunc(func(context.Context, Task) (Result, error) {
		return Result{}, errors.New("boom")
	}))
	l := NewLocal(r)
	if _, err := l.Offload(context.Background(), "img/bad", Task{}); !errors.Is(err, ErrFunctionFailed) {
		t.Fatalf("err = %v", err)
	}
}

func newHTTPPair(t *testing.T, r *Registry) *Client {
	t.Helper()
	srv := httptest.NewServer(Server(r))
	t.Cleanup(srv.Close)
	return NewClient(ClientConfig{BaseURL: srv.URL, Timeout: 5 * time.Second})
}

func TestHTTPOffloadRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Register("img/echo", echoHandler())
	c := newHTTPPair(t, r)
	res, err := c.Offload(context.Background(), "img/echo", Task{
		ID:       "t1",
		Class:    "Image",
		Object:   "o1",
		Function: "resize",
		Payload:  json.RawMessage(`"payload"`),
		State:    map[string]json.RawMessage{"count": json.RawMessage(`9`)},
		Args:     map[string]string{"w": "100"},
		Refs:     map[string]string{"image": "http://store/b/k?sig=x"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Output) != `"payload"` {
		t.Fatalf("output = %s", res.Output)
	}
	if string(res.State["count"]) != `10` {
		t.Fatalf("state = %s", res.State["count"])
	}
}

func TestHTTPOffloadTaskFieldsArrive(t *testing.T) {
	r := NewRegistry()
	var got Task
	r.Register("img/capture", HandlerFunc(func(_ context.Context, task Task) (Result, error) {
		got = task
		return Result{}, nil
	}))
	c := newHTTPPair(t, r)
	want := Task{
		ID: "abc", Class: "C", Object: "obj-1", Function: "f",
		Args: map[string]string{"k": "v"},
		Refs: map[string]string{"file": "http://x"},
		Cost: 2.5,
	}
	if _, err := c.Offload(context.Background(), "img/capture", want); err != nil {
		t.Fatal(err)
	}
	if got.ID != want.ID || got.Class != want.Class || got.Object != want.Object ||
		got.Function != want.Function || got.Args["k"] != "v" ||
		got.Refs["file"] != "http://x" || got.Cost != 2.5 {
		t.Fatalf("task fields lost in transit: %+v", got)
	}
}

func TestHTTPOffloadImageNotFound(t *testing.T) {
	c := newHTTPPair(t, NewRegistry())
	if _, err := c.Offload(context.Background(), "img/none", Task{}); !errors.Is(err, ErrImageNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestHTTPOffloadFunctionError(t *testing.T) {
	r := NewRegistry()
	r.Register("img/bad", HandlerFunc(func(context.Context, Task) (Result, error) {
		return Result{}, errors.New("kaput")
	}))
	c := newHTTPPair(t, r)
	_, err := c.Offload(context.Background(), "img/bad", Task{})
	if !errors.Is(err, ErrFunctionFailed) {
		t.Fatalf("err = %v", err)
	}
}

func TestHTTPServerRejectsGET(t *testing.T) {
	srv := httptest.NewServer(Server(NewRegistry()))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/invoke")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestHTTPServerRejectsBadJSON(t *testing.T) {
	srv := httptest.NewServer(Server(NewRegistry()))
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/invoke", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestClientRetriesTransportErrors(t *testing.T) {
	var calls atomic.Int64
	// Fail twice with a 503, then succeed.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "unavailable", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(wireResponse{Result: Result{Output: json.RawMessage(`"ok"`)}})
	}))
	defer srv.Close()
	c := NewClient(ClientConfig{BaseURL: srv.URL, Retries: 3, Backoff: time.Millisecond})
	res, err := c.Offload(context.Background(), "img/x", Task{})
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Output) != `"ok"` {
		t.Fatalf("output = %s", res.Output)
	}
	if calls.Load() != 3 {
		t.Fatalf("server called %d times, want 3", calls.Load())
	}
}

func TestClientDoesNotRetryFunctionErrors(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusUnprocessableEntity)
		_ = json.NewEncoder(w).Encode(wireResponse{Error: "app bug"})
	}))
	defer srv.Close()
	c := NewClient(ClientConfig{BaseURL: srv.URL, Retries: 5, Backoff: time.Millisecond})
	_, err := c.Offload(context.Background(), "img/x", Task{})
	if !errors.Is(err, ErrFunctionFailed) {
		t.Fatalf("err = %v", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("function error retried %d times", calls.Load())
	}
}

func TestClientExhaustsRetries(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "always down", http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	c := NewClient(ClientConfig{BaseURL: srv.URL, Retries: 2, Backoff: time.Millisecond})
	if _, err := c.Offload(context.Background(), "img/x", Task{}); err == nil {
		t.Fatal("offload to dead server succeeded")
	}
}

func TestClientContextCancellation(t *testing.T) {
	block := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-block
	}))
	defer srv.Close()
	defer close(block)
	c := NewClient(ClientConfig{BaseURL: srv.URL, Timeout: time.Minute})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := c.Offload(ctx, "img/x", Task{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}

func TestMergeState(t *testing.T) {
	base := map[string]json.RawMessage{
		"a": json.RawMessage(`1`),
		"b": json.RawMessage(`2`),
	}
	delta := map[string]json.RawMessage{
		"b": json.RawMessage(`20`),   // update
		"c": json.RawMessage(`3`),    // insert
		"a": json.RawMessage(`null`), // delete
	}
	merged := MergeState(base, delta)
	if _, ok := merged["a"]; ok {
		t.Fatal("null value did not delete key")
	}
	if string(merged["b"]) != `20` || string(merged["c"]) != `3` {
		t.Fatalf("merged = %v", merged)
	}
	// base untouched
	if string(base["b"]) != `2` {
		t.Fatal("MergeState mutated base")
	}
}

func TestMergeStateNilDelta(t *testing.T) {
	base := map[string]json.RawMessage{"a": json.RawMessage(`1`)}
	merged := MergeState(base, nil)
	if len(merged) != 1 || string(merged["a"]) != `1` {
		t.Fatalf("merged = %v", merged)
	}
}

func TestMergeStateNilBase(t *testing.T) {
	merged := MergeState(nil, map[string]json.RawMessage{"x": json.RawMessage(`1`)})
	if string(merged["x"]) != `1` {
		t.Fatalf("merged = %v", merged)
	}
}

// Property: MergeState is idempotent for deltas without nulls.
func TestMergeStateIdempotentProperty(t *testing.T) {
	prop := func(baseKeys, deltaKeys []byte) bool {
		base := map[string]json.RawMessage{}
		for _, k := range baseKeys {
			base[fmt.Sprintf("k%d", k%16)] = json.RawMessage(`"base"`)
		}
		delta := map[string]json.RawMessage{}
		for _, k := range deltaKeys {
			delta[fmt.Sprintf("k%d", k%16)] = json.RawMessage(`"delta"`)
		}
		once := MergeState(base, delta)
		twice := MergeState(once, delta)
		if len(once) != len(twice) {
			return false
		}
		for k, v := range once {
			if string(twice[k]) != string(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTaskJSONRoundTrip(t *testing.T) {
	task := Task{
		ID: "i", Class: "C", Object: "o", Function: "f",
		State:   map[string]json.RawMessage{"k": json.RawMessage(`{"deep":[1,2]}`)},
		Payload: json.RawMessage(`"p"`),
		Args:    map[string]string{"a": "b"},
		Refs:    map[string]string{"r": "u"},
		Cost:    1.5,
	}
	raw, err := json.Marshal(task)
	if err != nil {
		t.Fatal(err)
	}
	var back Task
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.ID != task.ID || string(back.State["k"]) != string(task.State["k"]) || back.Cost != 1.5 {
		t.Fatalf("round trip lost data: %+v", back)
	}
}
