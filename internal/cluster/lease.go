package cluster

// Lease-based membership and epoch-fenced object ownership.
//
// Each node holds a lease document in the backing kvstore
// (cluster/lease/<node>) renewed by a jittered heartbeat goroutine.
// Objects are assigned an owning node by rendezvous (highest-random-
// weight) hash over the live member set, so placement needs no central
// table and moves minimally when membership changes. Every rebalance
// bumps a monotone ownership epoch (persisted at cluster/epoch);
// commits admitted under an older epoch are fenced — rejected unless
// the object's owner is provably unchanged — so a partitioned or
// paused ex-owner can never double-commit against the new owner.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/hpcclab/oparaca-go/internal/kvstore"
	"github.com/hpcclab/oparaca-go/internal/vclock"
)

// Ownership sentinels.
var (
	// ErrOwnershipMoved is returned by the epoch fence when a commit
	// was admitted under an ownership assignment that no longer holds.
	// The invocation must be retried (sync) or requeued (async) — it
	// has not been acknowledged and nothing was persisted.
	ErrOwnershipMoved = errors.New("cluster: ownership moved (epoch fence)")
	// ErrOwnershipMoving is returned while a rebalance transition
	// window is open; callers should fast-fail with Retry-After rather
	// than pile onto a membership view that is still converging.
	ErrOwnershipMoving = errors.New("cluster: ownership transition in progress")
	// ErrNotMember is returned when joining a duplicate node or
	// operating on a node that never joined.
	ErrNotMember = errors.New("cluster: node is not a member")
)

// TransitionError wraps ErrOwnershipMoving with the time remaining in
// the transition window, mirroring resilience.OpenError so the gateway
// can surface a Retry-After header.
type TransitionError struct {
	RetryAfter time.Duration
}

// Error implements error.
func (e *TransitionError) Error() string {
	return fmt.Sprintf("%v (retry after %s)", ErrOwnershipMoving, e.RetryAfter)
}

// Unwrap lets errors.Is(err, ErrOwnershipMoving) match.
func (e *TransitionError) Unwrap() error { return ErrOwnershipMoving }

const (
	leasePrefix = "cluster/lease/"
	epochKey    = "cluster/epoch"
)

// leaseDoc is the persisted lease record.
type leaseDoc struct {
	Node    string    `json:"node"`
	Expires time.Time `json:"expires"`
	Epoch   uint64    `json:"epoch"`
}

type epochDoc struct {
	Epoch uint64 `json:"epoch"`
}

// MembershipConfig configures a Membership.
type MembershipConfig struct {
	// Backing persists leases and the ownership epoch so they survive
	// the process. Required.
	Backing *kvstore.Store
	// Clock supplies time; defaults to the real clock.
	Clock vclock.Clock
	// LeaseTTL is how long a lease lives without renewal. Defaults to
	// 2s.
	LeaseTTL time.Duration
	// Heartbeat is the base renewal interval. Defaults to LeaseTTL/3.
	Heartbeat time.Duration
	// HeartbeatJitter spreads each renewal interval uniformly over
	// [Heartbeat*(1-j), Heartbeat*(1+j)] so simultaneous expiry storms
	// don't thundering-herd the backing store. Defaults to 0.2;
	// negative disables.
	HeartbeatJitter float64
	// JitterSeed seeds the jitter source (the chaos RNG plumbing);
	// zero seeds from 1.
	JitterSeed int64
	// TransitionWindow is how long after a rebalance the membership
	// reports ErrOwnershipMoving so routers fast-fail instead of
	// racing the handoff. Defaults to Heartbeat.
	TransitionWindow time.Duration
	// OnRebalance, when set, runs after each rebalance (epoch already
	// bumped) with the nodes that left and the new epoch. It is called
	// without internal locks held; implementations requeue orphaned
	// async work and replay trigger cursors.
	OnRebalance func(dead []string, epoch uint64)
}

func (c MembershipConfig) withDefaults() MembershipConfig {
	if c.Clock == nil {
		c.Clock = vclock.NewReal()
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 2 * time.Second
	}
	if c.Heartbeat <= 0 {
		c.Heartbeat = c.LeaseTTL / 3
	}
	if c.HeartbeatJitter == 0 {
		c.HeartbeatJitter = 0.2
	}
	if c.HeartbeatJitter < 0 {
		c.HeartbeatJitter = 0
	}
	if c.TransitionWindow <= 0 {
		c.TransitionWindow = c.Heartbeat
	}
	if c.JitterSeed == 0 {
		c.JitterSeed = 1
	}
	return c
}

// member is one locally heartbeated node.
type member struct {
	name   string
	joined time.Time
	stop   chan struct{}
	done   chan struct{}
}

// admitView is the immutable admission-path snapshot: the live member
// names, the current epoch, and the transition-window deadline. A new
// one is published atomically on every membership change, so the
// per-invoke read paths (Admit, Fence, CheckMoving, Owner, Epoch) are
// lock-free — three mutex acquisitions per routed invocation would
// otherwise serialize the whole invoke hot path on one global lock.
type admitView struct {
	names       []string
	epoch       uint64
	movingUntil time.Time
}

// Membership tracks live nodes via kvstore leases and assigns object
// ownership by rendezvous hash over the live set. It is safe for
// concurrent use.
type Membership struct {
	cfg MembershipConfig

	mu          sync.Mutex
	members     map[string]*member   // locally heartbeated
	live        map[string]time.Time // name → lease expiry (local + remote)
	epoch       uint64
	epochVer    int64 // kvstore version of the epoch doc, for CAS bumps
	movingUntil time.Time
	rebalances  int64
	closed      bool

	rndMu sync.Mutex
	rnd   *rand.Rand

	// view caches the admission snapshot derived from live/epoch/
	// movingUntil; rebuilt by publishLocked whenever those change.
	view atomic.Pointer[admitView]

	fenceRejections atomic.Int64

	killCtx    context.Context
	killCancel context.CancelFunc
	wg         sync.WaitGroup
}

// NewMembership creates a membership layer over the backing store and
// starts the lease-expiry monitor. Callers Join nodes and must Close
// when done.
func NewMembership(cfg MembershipConfig) (*Membership, error) {
	if cfg.Backing == nil {
		return nil, errors.New("cluster: membership requires a backing store")
	}
	cfg = cfg.withDefaults()
	m := &Membership{
		cfg:     cfg,
		members: make(map[string]*member),
		live:    make(map[string]time.Time),
		rnd:     rand.New(rand.NewSource(cfg.JitterSeed)),
	}
	m.killCtx, m.killCancel = context.WithCancel(context.Background())
	// Adopt a persisted epoch (a successor process must fence at least
	// as high as its predecessor).
	if doc, err := cfg.Backing.Get(m.killCtx, epochKey); err == nil {
		var ed epochDoc
		if json.Unmarshal(doc.Value, &ed) == nil {
			m.epoch, m.epochVer = ed.Epoch, doc.Version
		}
	}
	// Adopt still-live leases left by a predecessor so stranded-work
	// recovery sees the old owners until they expire.
	if keys, err := cfg.Backing.List(m.killCtx, leasePrefix); err == nil && len(keys) > 0 {
		if docs, err := cfg.Backing.BatchGet(m.killCtx, keys); err == nil {
			now := cfg.Clock.Now()
			for _, doc := range docs {
				var ld leaseDoc
				if json.Unmarshal(doc.Value, &ld) == nil && ld.Node != "" && ld.Expires.After(now) {
					m.live[ld.Node] = ld.Expires
				}
			}
		}
	}
	m.publishLocked() // no concurrency yet; mu not required
	m.wg.Add(1)
	go m.monitor()
	return m, nil
}

// publishLocked rebuilds the lock-free admission snapshot from the
// authoritative (mutex-guarded) state. Call it with m.mu held after
// any change to the live set, epoch, or transition window.
func (m *Membership) publishLocked() {
	names := make([]string, 0, len(m.live))
	for name := range m.live {
		names = append(names, name)
	}
	m.view.Store(&admitView{names: names, epoch: m.epoch, movingUntil: m.movingUntil})
}

// jitteredInterval returns the next heartbeat delay.
func (m *Membership) jitteredInterval() time.Duration {
	j := m.cfg.HeartbeatJitter
	if j <= 0 {
		return m.cfg.Heartbeat
	}
	m.rndMu.Lock()
	f := 1 - j + 2*j*m.rnd.Float64()
	m.rndMu.Unlock()
	return time.Duration(float64(m.cfg.Heartbeat) * f)
}

// Join registers a node and starts its heartbeat. The first renewal is
// written synchronously so the node is immediately visible to a
// successor process.
func (m *Membership) Join(name string) error {
	if name == "" {
		return errors.New("cluster: empty member name")
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return errors.New("cluster: membership closed")
	}
	if _, ok := m.members[name]; ok {
		m.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNodeExists, name)
	}
	mem := &member{
		name:   name,
		joined: m.cfg.Clock.Now(),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	m.members[name] = mem
	m.live[name] = m.cfg.Clock.Now().Add(m.cfg.LeaseTTL)
	m.publishLocked()
	m.mu.Unlock()
	m.renewLease(name) // best effort; heartbeat retries
	m.wg.Add(1)
	go m.heartbeat(mem)
	return nil
}

// renewLease writes the lease document. Failures are tolerated: the
// next heartbeat retries, and if the store stays down long enough the
// lease expires — which is the correct semantic for a node that cannot
// prove liveness.
func (m *Membership) renewLease(name string) {
	expires := m.cfg.Clock.Now().Add(m.cfg.LeaseTTL)
	m.mu.Lock()
	if _, ok := m.members[name]; !ok {
		m.mu.Unlock()
		return
	}
	m.live[name] = expires
	epoch := m.epoch
	m.mu.Unlock()
	raw, _ := json.Marshal(leaseDoc{Node: name, Expires: expires, Epoch: epoch})
	_, _ = m.cfg.Backing.Put(m.killCtx, leasePrefix+name, raw)
}

// heartbeat renews one node's lease at a jittered cadence until the
// node is killed, leaves, or the membership closes.
func (m *Membership) heartbeat(mem *member) {
	defer m.wg.Done()
	defer close(mem.done)
	for {
		d := m.jitteredInterval()
		select {
		case <-mem.stop:
			return
		case <-m.killCtx.Done():
			return
		case <-m.cfg.Clock.After(d):
		}
		m.renewLease(mem.name)
	}
}

// monitor watches for expired leases and rebalances when a member
// dies. It also adopts remote leases written by other processes.
func (m *Membership) monitor() {
	defer m.wg.Done()
	for {
		select {
		case <-m.killCtx.Done():
			return
		case <-m.cfg.Clock.After(m.cfg.Heartbeat):
		}
		m.sweep()
	}
}

// sweep folds the persisted lease set into the live view and expires
// the dead. Exposed to tests (and manual-clock drivers) via Converge.
func (m *Membership) sweep() {
	now := m.cfg.Clock.Now()
	// Merge remote leases (best effort — a store outage must not kill
	// liveness tracking for locally heartbeated members).
	if keys, err := m.cfg.Backing.List(m.killCtx, leasePrefix); err == nil && len(keys) > 0 {
		if docs, err := m.cfg.Backing.BatchGet(m.killCtx, keys); err == nil {
			m.mu.Lock()
			for _, doc := range docs {
				var ld leaseDoc
				if json.Unmarshal(doc.Value, &ld) != nil || ld.Node == "" {
					continue
				}
				if _, local := m.members[ld.Node]; local {
					continue // local expiry tracking is authoritative
				}
				if ld.Expires.After(now) {
					m.live[ld.Node] = ld.Expires
				}
			}
			m.publishLocked()
			m.mu.Unlock()
		}
	}
	var dead []string
	m.mu.Lock()
	for name, exp := range m.live {
		if !exp.After(now) {
			dead = append(dead, name)
		}
	}
	m.mu.Unlock()
	if len(dead) > 0 {
		sort.Strings(dead)
		m.rebalance(dead)
	}
}

// Converge runs one synchronous sweep, returning true once no
// transition window is open. The gateway's readiness probe uses it to
// report membership convergence without waiting for the next tick.
func (m *Membership) Converge() bool {
	m.sweep()
	m.mu.Lock()
	defer m.mu.Unlock()
	return !m.cfg.Clock.Now().Before(m.movingUntil)
}

// rebalance removes dead nodes from the live set, bumps the epoch,
// opens the transition window, and fires OnRebalance.
func (m *Membership) rebalance(dead []string) {
	m.mu.Lock()
	removed := dead[:0]
	for _, name := range dead {
		if _, ok := m.live[name]; !ok {
			continue // already handled by a concurrent sweep
		}
		delete(m.live, name)
		if mem, ok := m.members[name]; ok {
			// A locally heartbeated member whose lease lapsed (e.g.
			// Kill, or a store outage outlasting the TTL) stops
			// renewing; otherwise it would immediately resurrect.
			select {
			case <-mem.stop:
			default:
				close(mem.stop)
			}
			delete(m.members, name)
		}
		removed = append(removed, name)
	}
	if len(removed) == 0 {
		m.mu.Unlock()
		return
	}
	m.epoch++
	m.rebalances++
	m.movingUntil = m.cfg.Clock.Now().Add(m.cfg.TransitionWindow)
	m.publishLocked()
	epoch := m.epoch
	cb := m.cfg.OnRebalance
	m.mu.Unlock()

	m.persistEpoch(epoch)
	for _, name := range removed {
		_ = m.cfg.Backing.Delete(m.killCtx, leasePrefix+name)
	}
	if cb != nil {
		cb(removed, epoch)
	}
}

// persistEpoch CAS-writes the epoch doc, taking the max on conflict so
// concurrent processes only ratchet forward. Best effort: the
// in-memory epoch is authoritative for this process's fence even when
// the store is down.
func (m *Membership) persistEpoch(epoch uint64) {
	for attempt := 0; attempt < 3; attempt++ {
		m.mu.Lock()
		ver := m.epochVer
		m.mu.Unlock()
		raw, _ := json.Marshal(epochDoc{Epoch: epoch})
		doc, err := m.cfg.Backing.CompareAndPut(m.killCtx, epochKey, raw, ver)
		if err == nil {
			m.mu.Lock()
			m.epochVer = doc.Version
			m.mu.Unlock()
			return
		}
		if !errors.Is(err, kvstore.ErrVersionMismatch) {
			return
		}
		cur, gerr := m.cfg.Backing.Get(m.killCtx, epochKey)
		if gerr != nil {
			return
		}
		var ed epochDoc
		_ = json.Unmarshal(cur.Value, &ed)
		m.mu.Lock()
		m.epochVer = cur.Version
		if ed.Epoch > m.epoch {
			m.epoch = ed.Epoch
			m.publishLocked()
		}
		if ed.Epoch > epoch {
			epoch = ed.Epoch
		}
		m.mu.Unlock()
	}
}

// Leave drains a node explicitly: its lease is deleted and its objects
// reassigned immediately, without waiting for expiry.
func (m *Membership) Leave(name string) error {
	m.mu.Lock()
	mem, ok := m.members[name]
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotMember, name)
	}
	select {
	case <-mem.stop:
	default:
		close(mem.stop)
	}
	<-mem.done
	m.rebalance([]string{name})
	return nil
}

// Kill simulates a node crash or partition: the heartbeat stops but
// the lease is left to expire naturally, so failover waits for the
// lease TTL exactly as it would for a real dead VM.
func (m *Membership) Kill(name string) error {
	m.mu.Lock()
	mem, ok := m.members[name]
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotMember, name)
	}
	select {
	case <-mem.stop:
	default:
		close(mem.stop)
	}
	<-mem.done
	return nil
}

// Close stops all heartbeats and the monitor. Leases are left to
// expire so a successor process can recover stranded work from them.
func (m *Membership) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.mu.Unlock()
	m.killCancel()
	m.wg.Wait()
}

// fnv1a64 is an inline FNV-1a so the rendezvous score costs no
// allocations on the invoke hot path.
func fnv1a64(node, object string) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for i := 0; i < len(node); i++ {
		h ^= uint64(node[i])
		h *= prime
	}
	h ^= 0x1f // separator so ("ab","c") != ("a","bc")
	h *= prime
	for i := 0; i < len(object); i++ {
		h ^= uint64(object[i])
		h *= prime
	}
	// FNV's multiply-only diffusion pushes differences upward but not
	// back down, so trailing characters barely perturb the high bits a
	// rendezvous comparison keys on; finish with an avalanche mix
	// (splitmix64 finalizer) so sequential IDs spread evenly.
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// Owner returns the node owning objectID under the current live set by
// rendezvous hash (highest score wins; ties break by name so placement
// is deterministic). ok is false when no members are live.
func (m *Membership) Owner(objectID string) (owner string, ok bool) {
	return ownerOf(m.view.Load().names, objectID)
}

// ownerOf runs the rendezvous election over a published name set.
func ownerOf(names []string, objectID string) (string, bool) {
	var best string
	var bestScore uint64
	for _, name := range names {
		s := fnv1a64(name, objectID)
		if best == "" || s > bestScore || (s == bestScore && name < best) {
			best, bestScore = name, s
		}
	}
	return best, best != ""
}

// Admit returns the ownership stamp — current owner and epoch — a
// commit must carry through to the fence. ok is false when no members
// are live (ownership disabled in practice). Lock-free: owner and
// epoch come from one immutable snapshot, so the stamp is internally
// consistent even against a concurrent rebalance.
func (m *Membership) Admit(objectID string) (owner string, epoch uint64, ok bool) {
	v := m.view.Load()
	owner, ok = ownerOf(v.names, objectID)
	return owner, v.epoch, ok
}

// Fence validates a commit admitted under (owner, epoch). Same epoch →
// ownership cannot have moved. Newer epoch → the commit is allowed
// only if this object's owner is provably unchanged; otherwise the
// ex-owner is fenced off with ErrOwnershipMoved and the rejection
// counted.
func (m *Membership) Fence(objectID, owner string, epoch uint64) error {
	v := m.view.Load()
	if v.epoch == epoch {
		return nil
	}
	nowOwner, ok := ownerOf(v.names, objectID)
	if ok && nowOwner == owner {
		return nil
	}
	m.fenceRejections.Add(1)
	return fmt.Errorf("%w: object %q admitted on %q@%d, now %q@%d",
		ErrOwnershipMoved, objectID, owner, epoch, nowOwner, v.epoch)
}

// CheckMoving returns a TransitionError while the post-rebalance
// transition window is open, nil otherwise.
func (m *Membership) CheckMoving() error {
	until := m.view.Load().movingUntil
	if until.IsZero() {
		return nil
	}
	now := m.cfg.Clock.Now()
	if now.Before(until) {
		return &TransitionError{RetryAfter: until.Sub(now)}
	}
	return nil
}

// Epoch returns the current ownership epoch.
func (m *Membership) Epoch() uint64 {
	return m.view.Load().epoch
}

// LiveNames returns the published live member name set. The slice is
// shared and must not be mutated; its order is arbitrary but stable
// between membership changes, which is all round-robin ingress
// selection needs.
func (m *Membership) LiveNames() []string {
	return m.view.Load().names
}

// Rebalances returns how many rebalances have run.
func (m *Membership) Rebalances() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.rebalances
}

// FenceRejections returns how many commits the epoch fence rejected —
// each one is a double-commit that did not happen.
func (m *Membership) FenceRejections() int64 {
	return m.fenceRejections.Load()
}

// MemberInfo is one live member's view for stats.
type MemberInfo struct {
	Name     string        `json:"name"`
	Local    bool          `json:"local"`
	LeaseAge time.Duration `json:"lease_age"`
	// LeaseRemaining is time until expiry; ≤ 0 means about to be
	// swept.
	LeaseRemaining time.Duration `json:"lease_remaining"`
}

// Members returns the live member set sorted by name.
func (m *Membership) Members() []MemberInfo {
	now := m.cfg.Clock.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]MemberInfo, 0, len(m.live))
	for name, exp := range m.live {
		info := MemberInfo{Name: name, LeaseRemaining: exp.Sub(now)}
		if mem, ok := m.members[name]; ok {
			info.Local = true
			info.LeaseAge = now.Sub(mem.joined)
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// LiveCount returns the number of live members.
func (m *Membership) LiveCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.live)
}
