package cluster

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
)

func std() Resources { return Resources{MilliCPU: 1000, MemoryMB: 1024} }

func newCluster(t *testing.T, nodes int) *Cluster {
	t.Helper()
	c := New(Config{})
	for i := 0; i < nodes; i++ {
		if _, err := c.AddNode(fmt.Sprintf("vm-%02d", i), Resources{MilliCPU: 4000, MemoryMB: 8192}); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestAddNodeValidation(t *testing.T) {
	c := New(Config{})
	if _, err := c.AddNode("", std()); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := c.AddNode("n", Resources{}); err == nil {
		t.Fatal("zero CPU accepted")
	}
	if _, err := c.AddNode("n", std()); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddNode("n", std()); !errors.Is(err, ErrNodeExists) {
		t.Fatalf("duplicate add = %v", err)
	}
}

func TestNodeLookup(t *testing.T) {
	c := newCluster(t, 2)
	n, err := c.Node("vm-00")
	if err != nil {
		t.Fatal(err)
	}
	if n.Name() != "vm-00" {
		t.Fatalf("Name = %q", n.Name())
	}
	if _, err := c.Node("absent"); !errors.Is(err, ErrNodeNotFound) {
		t.Fatalf("lookup absent = %v", err)
	}
}

func TestNodesSorted(t *testing.T) {
	c := newCluster(t, 3)
	nodes := c.Nodes()
	if len(nodes) != 3 {
		t.Fatalf("len = %d", len(nodes))
	}
	for i := 1; i < len(nodes); i++ {
		if nodes[i-1].Name() > nodes[i].Name() {
			t.Fatal("nodes not sorted")
		}
	}
}

func TestComputeRateProportionalToCPU(t *testing.T) {
	c := New(Config{OpsPerMilliCPU: 2})
	n, err := c.AddNode("big", Resources{MilliCPU: 4000, MemoryMB: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := n.Compute().Rate(); got != 8000 {
		t.Fatalf("compute rate = %v, want 8000", got)
	}
}

func TestTotalComputeRateScalesWithNodes(t *testing.T) {
	c := New(Config{OpsPerMilliCPU: 1})
	for i := 0; i < 3; i++ {
		if _, err := c.AddNode(fmt.Sprintf("n%d", i), Resources{MilliCPU: 1000, MemoryMB: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.TotalComputeRate(); got != 3000 {
		t.Fatalf("TotalComputeRate = %v, want 3000", got)
	}
}

func TestCreateDeploymentPlacesReplicas(t *testing.T) {
	c := newCluster(t, 3)
	d, err := c.CreateDeployment("fn", std(), 6, StrategySpread)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Replicas(); got != 6 {
		t.Fatalf("Replicas = %d, want 6", got)
	}
	var total int
	for _, n := range c.Nodes() {
		total += n.PodCount()
	}
	if total != 6 {
		t.Fatalf("cluster pod count = %d, want 6", total)
	}
}

func TestSpreadBalances(t *testing.T) {
	c := newCluster(t, 3)
	if _, err := c.CreateDeployment("fn", std(), 6, StrategySpread); err != nil {
		t.Fatal(err)
	}
	for _, n := range c.Nodes() {
		if got := n.PodCount(); got != 2 {
			t.Fatalf("node %s has %d pods, want 2 (spread)", n.Name(), got)
		}
	}
}

func TestBinPackFillsOneNodeFirst(t *testing.T) {
	c := newCluster(t, 3)
	if _, err := c.CreateDeployment("fn", std(), 4, StrategyBinPack); err != nil {
		t.Fatal(err)
	}
	// 4000 mCPU nodes fit 4 pods of 1000 each: binpack puts all 4 on
	// one node.
	var full int
	for _, n := range c.Nodes() {
		switch n.PodCount() {
		case 4:
			full++
		case 0:
		default:
			t.Fatalf("node %s has %d pods; binpack should fill one node", n.Name(), n.PodCount())
		}
	}
	if full != 1 {
		t.Fatalf("%d full nodes, want exactly 1", full)
	}
}

func TestScaleUpAndDown(t *testing.T) {
	c := newCluster(t, 2)
	d, err := c.CreateDeployment("fn", std(), 2, StrategySpread)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Scale(5); err != nil {
		t.Fatal(err)
	}
	if d.Replicas() != 5 {
		t.Fatalf("Replicas = %d after scale up", d.Replicas())
	}
	if err := d.Scale(1); err != nil {
		t.Fatal(err)
	}
	if d.Replicas() != 1 {
		t.Fatalf("Replicas = %d after scale down", d.Replicas())
	}
	// Resources released.
	var alloc int64
	for _, n := range c.Nodes() {
		alloc += n.Allocated().MilliCPU
	}
	if alloc != 1000 {
		t.Fatalf("allocated mCPU = %d, want 1000", alloc)
	}
}

func TestScaleToZero(t *testing.T) {
	c := newCluster(t, 1)
	d, _ := c.CreateDeployment("fn", std(), 2, StrategyBinPack)
	if err := d.Scale(0); err != nil {
		t.Fatal(err)
	}
	if d.Replicas() != 0 {
		t.Fatalf("Replicas = %d", d.Replicas())
	}
	if got := c.Nodes()[0].Allocated().MilliCPU; got != 0 {
		t.Fatalf("allocation leak: %d mCPU", got)
	}
}

func TestScaleNegativeRejected(t *testing.T) {
	c := newCluster(t, 1)
	d, _ := c.CreateDeployment("fn", std(), 0, StrategyBinPack)
	if err := d.Scale(-1); err == nil {
		t.Fatal("negative scale accepted")
	}
}

func TestCapacityExhaustion(t *testing.T) {
	c := newCluster(t, 1) // 4000 mCPU
	d, err := c.CreateDeployment("fn", std(), 4, StrategyBinPack)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Scale(5); !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("over-scale = %v, want ErrNoCapacity", err)
	}
	// Partial state preserved.
	if d.Replicas() != 4 {
		t.Fatalf("Replicas = %d after failed scale", d.Replicas())
	}
}

func TestCreateDeploymentOverCapacityCleansUp(t *testing.T) {
	c := newCluster(t, 1)
	if _, err := c.CreateDeployment("huge", std(), 100, StrategyBinPack); !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("err = %v", err)
	}
	// The failed deployment must not linger.
	if _, err := c.Deployment("huge"); !errors.Is(err, ErrDeploymentNotFound) {
		t.Fatalf("failed deployment still registered: %v", err)
	}
}

func TestDuplicateDeployment(t *testing.T) {
	c := newCluster(t, 1)
	if _, err := c.CreateDeployment("fn", std(), 1, StrategyBinPack); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateDeployment("fn", std(), 1, StrategyBinPack); !errors.Is(err, ErrDeploymentExists) {
		t.Fatalf("duplicate = %v", err)
	}
}

func TestDeleteDeployment(t *testing.T) {
	c := newCluster(t, 1)
	c.CreateDeployment("fn", std(), 2, StrategyBinPack)
	if err := c.DeleteDeployment("fn"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Deployment("fn"); !errors.Is(err, ErrDeploymentNotFound) {
		t.Fatalf("lookup after delete = %v", err)
	}
	if got := c.Nodes()[0].Allocated().MilliCPU; got != 0 {
		t.Fatalf("allocation leak after delete: %d", got)
	}
	if err := c.DeleteDeployment("fn"); !errors.Is(err, ErrDeploymentNotFound) {
		t.Fatalf("double delete = %v", err)
	}
}

func TestRemoveNodeDropsItsPods(t *testing.T) {
	c := newCluster(t, 2)
	d, _ := c.CreateDeployment("fn", std(), 4, StrategySpread)
	if err := c.RemoveNode("vm-00"); err != nil {
		t.Fatal(err)
	}
	if c.NodeCount() != 1 {
		t.Fatalf("NodeCount = %d", c.NodeCount())
	}
	// The deployment lost the pods on vm-00.
	if got := d.Replicas(); got != 2 {
		t.Fatalf("Replicas after node removal = %d, want 2", got)
	}
	// Scale heals back using the remaining node.
	if err := d.Scale(4); err != nil {
		t.Fatal(err)
	}
	for _, p := range d.Pods() {
		if p.Node != "vm-01" {
			t.Fatalf("pod %s on removed node %s", p.ID, p.Node)
		}
	}
}

func TestRemoveAbsentNode(t *testing.T) {
	c := newCluster(t, 1)
	if err := c.RemoveNode("ghost"); !errors.Is(err, ErrNodeNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestPodsSnapshotSorted(t *testing.T) {
	c := newCluster(t, 2)
	d, _ := c.CreateDeployment("fn", std(), 3, StrategySpread)
	pods := d.Pods()
	if len(pods) != 3 {
		t.Fatalf("len = %d", len(pods))
	}
	for i := 1; i < len(pods); i++ {
		if pods[i-1].ID > pods[i].ID {
			t.Fatal("pods not sorted")
		}
	}
}

func TestStrategyString(t *testing.T) {
	if StrategyBinPack.String() != "binpack" || StrategySpread.String() != "spread" {
		t.Fatal("strategy strings wrong")
	}
	if Strategy(9).String() != "Strategy(9)" {
		t.Fatal("unknown strategy string wrong")
	}
}

// Property: for any sequence of scale operations, total allocated
// resources equal the sum of live pod requests (no leaks, no double
// frees).
func TestAllocationConservationProperty(t *testing.T) {
	prop := func(scales []uint8) bool {
		c := New(Config{})
		for i := 0; i < 4; i++ {
			if _, err := c.AddNode(fmt.Sprintf("n%d", i), Resources{MilliCPU: 8000, MemoryMB: 1 << 20}); err != nil {
				return false
			}
		}
		d, err := c.CreateDeployment("fn", Resources{MilliCPU: 500, MemoryMB: 64}, 0, StrategySpread)
		if err != nil {
			return false
		}
		for _, s := range scales {
			_ = d.Scale(int(s % 40))
		}
		var alloc int64
		for _, n := range c.Nodes() {
			alloc += n.Allocated().MilliCPU
		}
		return alloc == int64(d.Replicas())*500
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestPickNodeDeterministicTieBreak places pods repeatedly on
// equal-fit nodes and asserts the choice is stable (lowest name wins),
// under both strategies and regardless of node insertion order.
func TestPickNodeDeterministicTieBreak(t *testing.T) {
	orders := [][]string{
		{"vm-00", "vm-01", "vm-02", "vm-03"},
		{"vm-03", "vm-01", "vm-00", "vm-02"},
		{"vm-02", "vm-03", "vm-01", "vm-00"},
	}
	for _, strategy := range []Strategy{StrategySpread, StrategyBinPack} {
		var want []string
		for trial, order := range orders {
			c := New(Config{})
			for _, name := range order {
				if _, err := c.AddNode(name, Resources{MilliCPU: 4000, MemoryMB: 8192}); err != nil {
					t.Fatal(err)
				}
			}
			d, err := c.CreateDeployment("tie", Resources{MilliCPU: 500, MemoryMB: 256}, 0, strategy)
			if err != nil {
				t.Fatal(err)
			}
			var got []string
			for i := 1; i <= 8; i++ {
				if err := d.Scale(i); err != nil {
					t.Fatal(err)
				}
				pods := d.Pods()
				got = append(got, pods[len(pods)-1].Node)
			}
			if trial == 0 {
				want = got
				// All nodes start equal, so the very first tie must
				// resolve to the lexicographically smallest name.
				if got[0] != "vm-00" {
					t.Fatalf("%v: first placement on %q, want vm-00", strategy, got[0])
				}
				continue
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%v: placement sequence differs across insertion orders:\n  %v\n  %v", strategy, want, got)
				}
			}
		}
	}
}
