package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/hpcclab/oparaca-go/internal/kvstore"
	"github.com/hpcclab/oparaca-go/internal/vclock"
)

func newMembership(t *testing.T, clock vclock.Clock, onReb func([]string, uint64)) (*Membership, *kvstore.Store) {
	t.Helper()
	store := kvstore.Open(kvstore.Config{Clock: clock})
	m, err := NewMembership(MembershipConfig{
		Backing:          store,
		Clock:            clock,
		LeaseTTL:         200 * time.Millisecond,
		Heartbeat:        50 * time.Millisecond,
		TransitionWindow: 100 * time.Millisecond,
		JitterSeed:       42,
		OnRebalance:      onReb,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close(); store.Close() })
	return m, store
}

func TestMembershipJoinAndOwner(t *testing.T) {
	m, _ := newMembership(t, vclock.NewReal(), nil)
	for i := 0; i < 3; i++ {
		if err := m.Join(fmt.Sprintf("vm-%02d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Join("vm-00"); !errors.Is(err, ErrNodeExists) {
		t.Fatalf("duplicate join = %v", err)
	}
	if got := m.LiveCount(); got != 3 {
		t.Fatalf("LiveCount = %d", got)
	}
	owner, ok := m.Owner("obj-a")
	if !ok || owner == "" {
		t.Fatal("no owner for obj-a")
	}
	// Ownership is a pure function of the live set.
	for i := 0; i < 100; i++ {
		if o, _ := m.Owner("obj-a"); o != owner {
			t.Fatalf("owner flapped: %q then %q", owner, o)
		}
	}
}

func TestRendezvousSpreadsObjects(t *testing.T) {
	m, _ := newMembership(t, vclock.NewReal(), nil)
	for i := 0; i < 4; i++ {
		if err := m.Join(fmt.Sprintf("vm-%02d", i)); err != nil {
			t.Fatal(err)
		}
	}
	counts := make(map[string]int)
	for i := 0; i < 400; i++ {
		o, ok := m.Owner(fmt.Sprintf("obj-%04d", i))
		if !ok {
			t.Fatal("no owner")
		}
		counts[o]++
	}
	if len(counts) != 4 {
		t.Fatalf("objects landed on %d of 4 nodes: %v", len(counts), counts)
	}
	for node, n := range counts {
		if n < 40 {
			t.Fatalf("node %s owns only %d/400 objects (poor spread): %v", node, n, counts)
		}
	}
}

func TestRendezvousMinimalReshuffle(t *testing.T) {
	m, _ := newMembership(t, vclock.NewReal(), nil)
	for i := 0; i < 4; i++ {
		if err := m.Join(fmt.Sprintf("vm-%02d", i)); err != nil {
			t.Fatal(err)
		}
	}
	before := make(map[string]string)
	var victim string
	for i := 0; i < 200; i++ {
		id := fmt.Sprintf("obj-%04d", i)
		before[id], _ = m.Owner(id)
		if victim == "" {
			victim = before[id]
		}
	}
	if err := m.Leave(victim); err != nil {
		t.Fatal(err)
	}
	moved := 0
	for id, old := range before {
		now, ok := m.Owner(id)
		if !ok {
			t.Fatal("no owner after leave")
		}
		if old == victim {
			if now == victim {
				t.Fatalf("object %s still owned by departed node", id)
			}
			continue
		}
		if now != old {
			moved++
		}
	}
	if moved != 0 {
		t.Fatalf("%d objects not owned by the dead node moved anyway (rendezvous should be minimal)", moved)
	}
}

func TestKillExpiresLeaseAndRebalances(t *testing.T) {
	var mu sync.Mutex
	var gotDead []string
	var gotEpoch uint64
	m, _ := newMembership(t, vclock.NewReal(), func(dead []string, epoch uint64) {
		mu.Lock()
		gotDead = append(gotDead, dead...)
		gotEpoch = epoch
		mu.Unlock()
	})
	for i := 0; i < 3; i++ {
		if err := m.Join(fmt.Sprintf("vm-%02d", i)); err != nil {
			t.Fatal(err)
		}
	}
	hot := "obj-hot"
	owner, _ := m.Owner(hot)
	epochBefore := m.Epoch()
	if err := m.Kill(owner); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if m.Rebalances() > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("rebalance never ran after kill")
		}
		time.Sleep(10 * time.Millisecond)
	}
	mu.Lock()
	dead, epoch := append([]string(nil), gotDead...), gotEpoch
	mu.Unlock()
	if len(dead) != 1 || dead[0] != owner {
		t.Fatalf("OnRebalance dead = %v, want [%s]", dead, owner)
	}
	if epoch != epochBefore+1 {
		t.Fatalf("epoch = %d, want %d", epoch, epochBefore+1)
	}
	if newOwner, ok := m.Owner(hot); !ok || newOwner == owner {
		t.Fatalf("object still owned by dead node %q (ok=%v)", newOwner, ok)
	}
	if m.LiveCount() != 2 {
		t.Fatalf("LiveCount = %d after kill", m.LiveCount())
	}
}

func TestFenceRejectsMovedOwnership(t *testing.T) {
	m, _ := newMembership(t, vclock.NewReal(), nil)
	for i := 0; i < 3; i++ {
		if err := m.Join(fmt.Sprintf("vm-%02d", i)); err != nil {
			t.Fatal(err)
		}
	}
	hot := "obj-hot"
	owner, epoch, ok := m.Admit(hot)
	if !ok {
		t.Fatal("admit failed")
	}
	if err := m.Fence(hot, owner, epoch); err != nil {
		t.Fatalf("same-epoch fence = %v", err)
	}
	if err := m.Leave(owner); err != nil {
		t.Fatal(err)
	}
	if err := m.Fence(hot, owner, epoch); !errors.Is(err, ErrOwnershipMoved) {
		t.Fatalf("fence after move = %v, want ErrOwnershipMoved", err)
	}
	if m.FenceRejections() == 0 {
		t.Fatal("fence rejection not counted")
	}
	// An object whose owner did NOT move commits fine across the epoch
	// bump.
	var stable string
	for i := 0; ; i++ {
		id := fmt.Sprintf("obj-%04d", i)
		if o, _ := m.Owner(id); o != owner {
			stable = id
			break
		}
	}
	sOwner, _ := m.Owner(stable)
	if err := m.Fence(stable, sOwner, epoch); err != nil {
		t.Fatalf("fence on unmoved object = %v", err)
	}
}

func TestTransitionWindowReportsMoving(t *testing.T) {
	m, _ := newMembership(t, vclock.NewReal(), nil)
	for i := 0; i < 2; i++ {
		if err := m.Join(fmt.Sprintf("vm-%02d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.CheckMoving(); err != nil {
		t.Fatalf("CheckMoving before any rebalance = %v", err)
	}
	if err := m.Leave("vm-01"); err != nil {
		t.Fatal(err)
	}
	err := m.CheckMoving()
	if !errors.Is(err, ErrOwnershipMoving) {
		t.Fatalf("CheckMoving in window = %v, want ErrOwnershipMoving", err)
	}
	var te *TransitionError
	if !errors.As(err, &te) || te.RetryAfter <= 0 {
		t.Fatalf("TransitionError retry-after missing: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for m.CheckMoving() != nil {
		if time.Now().After(deadline) {
			t.Fatal("transition window never closed")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestEpochSurvivesProcessRestart(t *testing.T) {
	clock := vclock.NewReal()
	store := kvstore.Open(kvstore.Config{Clock: clock})
	defer store.Close()
	cfg := MembershipConfig{
		Backing:   store,
		Clock:     clock,
		LeaseTTL:  200 * time.Millisecond,
		Heartbeat: 50 * time.Millisecond,
	}
	m1, err := NewMembership(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := m1.Join(fmt.Sprintf("vm-%02d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := m1.Leave("vm-01"); err != nil {
		t.Fatal(err)
	}
	want := m1.Epoch()
	if want == 0 {
		t.Fatal("epoch not bumped")
	}
	m1.Close()

	m2, err := NewMembership(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if got := m2.Epoch(); got != want {
		t.Fatalf("successor epoch = %d, want %d (persisted)", got, want)
	}
	// The predecessor's still-live lease is adopted into the view.
	found := false
	for _, mem := range m2.Members() {
		if mem.Name == "vm-00" && !mem.Local {
			found = true
		}
	}
	if !found {
		t.Fatalf("predecessor lease not adopted: %+v", m2.Members())
	}
}

func TestHeartbeatJitterSpreadsRenewals(t *testing.T) {
	m, _ := newMembership(t, vclock.NewReal(), nil)
	intervals := make(map[time.Duration]bool)
	for i := 0; i < 32; i++ {
		intervals[m.jitteredInterval()] = true
	}
	if len(intervals) < 8 {
		t.Fatalf("jittered intervals barely vary: %d distinct of 32", len(intervals))
	}
	base := m.cfg.Heartbeat
	lo := time.Duration(float64(base) * (1 - m.cfg.HeartbeatJitter))
	hi := time.Duration(float64(base) * (1 + m.cfg.HeartbeatJitter))
	for d := range intervals {
		if d < lo || d > hi {
			t.Fatalf("interval %s outside [%s, %s]", d, lo, hi)
		}
	}
}

func TestLeaseRenewalPersists(t *testing.T) {
	m, store := newMembership(t, vclock.NewReal(), nil)
	if err := m.Join("vm-00"); err != nil {
		t.Fatal(err)
	}
	doc, err := store.Get(context.Background(), leasePrefix+"vm-00")
	if err != nil {
		t.Fatalf("lease not persisted: %v", err)
	}
	if len(doc.Value) == 0 {
		t.Fatal("empty lease doc")
	}
	// Stays live well past the TTL because the heartbeat renews it.
	time.Sleep(500 * time.Millisecond)
	if m.LiveCount() != 1 {
		t.Fatalf("heartbeated member expired: live=%d", m.LiveCount())
	}
}
