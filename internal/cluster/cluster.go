// Package cluster implements the container-orchestrator substrate
// standing in for Kubernetes (paper §IV step 1: "we use the local
// Kubernetes as the container orchestrator and then install Oparaca on
// top of it").
//
// It models worker VMs (nodes) with CPU/memory capacity, pods placed
// on nodes by a scheduler (bin-pack or spread), and deployments with a
// desired replica count. Each node exposes a compute token bucket
// whose rate is proportional to its CPU allocation; executor pods draw
// from it, which is how the scalability experiment (paper Figure 3)
// gets "more VMs → more aggregate throughput" without real hardware.
package cluster

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/hpcclab/oparaca-go/internal/vclock"
)

// Sentinel errors.
var (
	// ErrNoCapacity is returned when no node can host a pod.
	ErrNoCapacity = errors.New("cluster: insufficient capacity on all nodes")
	// ErrNodeExists is returned when adding a duplicate node name.
	ErrNodeExists = errors.New("cluster: node already exists")
	// ErrNodeNotFound is returned for operations on unknown nodes.
	ErrNodeNotFound = errors.New("cluster: node not found")
	// ErrDeploymentExists is returned for duplicate deployment names.
	ErrDeploymentExists = errors.New("cluster: deployment already exists")
	// ErrDeploymentNotFound is returned for unknown deployments.
	ErrDeploymentNotFound = errors.New("cluster: deployment not found")
)

// Resources is a pod resource request or node capacity.
type Resources struct {
	MilliCPU int64 `json:"milli_cpu"`
	MemoryMB int64 `json:"memory_mb"`
}

// fits reports whether r fits inside free.
func (r Resources) fits(free Resources) bool {
	return r.MilliCPU <= free.MilliCPU && r.MemoryMB <= free.MemoryMB
}

func (r Resources) add(o Resources) Resources {
	return Resources{MilliCPU: r.MilliCPU + o.MilliCPU, MemoryMB: r.MemoryMB + o.MemoryMB}
}

func (r Resources) sub(o Resources) Resources {
	return Resources{MilliCPU: r.MilliCPU - o.MilliCPU, MemoryMB: r.MemoryMB - o.MemoryMB}
}

// DefaultRegion is the region nodes join when none is specified.
const DefaultRegion = "default"

// Node is one worker VM.
type Node struct {
	name    string
	region  string
	cap     Resources
	compute *vclock.TokenBucket

	mu    sync.Mutex
	alloc Resources
	pods  map[string]bool
}

// Name returns the node name.
func (n *Node) Name() string { return n.name }

// Region returns the data center the node belongs to.
func (n *Node) Region() string { return n.region }

// Capacity returns the node's total resources.
func (n *Node) Capacity() Resources { return n.cap }

// Allocated returns currently allocated resources.
func (n *Node) Allocated() Resources {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.alloc
}

// Free returns unallocated resources.
func (n *Node) Free() Resources {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.cap.sub(n.alloc)
}

// Compute returns the node's compute token bucket. Executors Take one
// token per simulated unit of work; the refill rate embodies the VM's
// processing capacity.
func (n *Node) Compute() *vclock.TokenBucket { return n.compute }

// PodCount returns the number of pods bound to this node.
func (n *Node) PodCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.pods)
}

// Pod is a placed unit of work.
type Pod struct {
	ID         string    `json:"id"`
	Deployment string    `json:"deployment"`
	Node       string    `json:"node"`
	Req        Resources `json:"req"`
}

// Strategy selects how the scheduler picks a node.
type Strategy int

const (
	// StrategyBinPack packs pods onto the most-allocated node that
	// still fits, minimizing fragmentation.
	StrategyBinPack Strategy = iota + 1
	// StrategySpread places pods on the least-loaded node, maximizing
	// per-pod burst capacity.
	StrategySpread
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case StrategyBinPack:
		return "binpack"
	case StrategySpread:
		return "spread"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Config configures a Cluster.
type Config struct {
	// OpsPerMilliCPU is the compute-bucket refill rate contributed by
	// each milliCPU of node capacity, in operations/second. A node
	// with 4000 mCPU and OpsPerMilliCPU=2 executes up to 8000 unit
	// operations per second. Defaults to 1.
	OpsPerMilliCPU float64
	// Clock supplies time; defaults to the real clock.
	Clock vclock.Clock
}

func (c Config) withDefaults() Config {
	if c.OpsPerMilliCPU <= 0 {
		c.OpsPerMilliCPU = 1
	}
	if c.Clock == nil {
		c.Clock = vclock.NewReal()
	}
	return c
}

// Cluster tracks nodes, pods and deployments. It is safe for
// concurrent use.
type Cluster struct {
	cfg Config

	mu          sync.Mutex
	nodes       map[string]*Node
	pods        map[string]*Pod
	deployments map[string]*Deployment
	nextPodID   int64
}

// New creates an empty cluster.
func New(cfg Config) *Cluster {
	return &Cluster{
		cfg:         cfg.withDefaults(),
		nodes:       make(map[string]*Node),
		pods:        make(map[string]*Pod),
		deployments: make(map[string]*Deployment),
	}
}

// AddNode registers a worker VM in the default region.
func (c *Cluster) AddNode(name string, capacity Resources) (*Node, error) {
	return c.AddRegionNode(name, DefaultRegion, capacity)
}

// AddRegionNode registers a worker VM in the named region (data
// center). Region-constrained deployments only place pods on matching
// nodes.
func (c *Cluster) AddRegionNode(name, region string, capacity Resources) (*Node, error) {
	if name == "" {
		return nil, errors.New("cluster: empty node name")
	}
	if region == "" {
		region = DefaultRegion
	}
	if capacity.MilliCPU <= 0 {
		return nil, fmt.Errorf("cluster: node %q needs positive CPU", name)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.nodes[name]; ok {
		return nil, fmt.Errorf("%w: %q", ErrNodeExists, name)
	}
	rate := float64(capacity.MilliCPU) * c.cfg.OpsPerMilliCPU
	n := &Node{
		name:    name,
		region:  region,
		cap:     capacity,
		compute: vclock.NewTokenBucket(c.cfg.Clock, rate, rate/10+1),
		pods:    make(map[string]bool),
	}
	c.nodes[name] = n
	return n, nil
}

// Regions returns the distinct regions with at least one node, sorted.
func (c *Cluster) Regions() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	seen := make(map[string]bool)
	for _, n := range c.nodes {
		seen[n.region] = true
	}
	out := make([]string, 0, len(seen))
	for r := range seen {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// RemoveNode drains and removes a node. Its pods are deleted; callers
// that need them rescheduled should scale their deployments.
func (c *Cluster) RemoveNode(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.nodes[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNodeNotFound, name)
	}
	for id := range n.pods {
		if p, ok := c.pods[id]; ok {
			if d, ok := c.deployments[p.Deployment]; ok {
				d.dropPod(id)
			}
			delete(c.pods, id)
		}
	}
	n.compute.Close()
	delete(c.nodes, name)
	return nil
}

// Node returns the named node.
func (c *Cluster) Node(name string) (*Node, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.nodes[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNodeNotFound, name)
	}
	return n, nil
}

// Nodes returns all nodes sorted by name.
func (c *Cluster) Nodes() []*Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Node, 0, len(c.nodes))
	for _, n := range c.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// NodeCount returns the number of registered nodes.
func (c *Cluster) NodeCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.nodes)
}

// placePod schedules one pod for deployment d. Caller holds c.mu.
func (c *Cluster) placePodLocked(d *Deployment) (*Pod, error) {
	node := c.pickNodeLocked(d.req, d.strategy, d.region)
	if node == nil {
		if d.region != "" {
			return nil, fmt.Errorf("%w in region %q (deployment %q, request %+v)",
				ErrNoCapacity, d.region, d.name, d.req)
		}
		return nil, fmt.Errorf("%w (deployment %q, request %+v)", ErrNoCapacity, d.name, d.req)
	}
	c.nextPodID++
	pod := &Pod{
		ID:         fmt.Sprintf("%s-%06d", d.name, c.nextPodID),
		Deployment: d.name,
		Node:       node.name,
		Req:        d.req,
	}
	node.mu.Lock()
	node.alloc = node.alloc.add(d.req)
	node.pods[pod.ID] = true
	node.mu.Unlock()
	c.pods[pod.ID] = pod
	return pod, nil
}

// pickNodeLocked selects a node for req per strategy, restricted to
// region when non-empty. Equal-fit ties break by node name so repeated
// placements are deterministic regardless of iteration order. Caller
// holds c.mu.
func (c *Cluster) pickNodeLocked(req Resources, strategy Strategy, region string) *Node {
	var best *Node
	var bestFree int64
	for _, n := range sortedNodesLocked(c.nodes) {
		if region != "" && n.region != region {
			continue
		}
		n.mu.Lock()
		free := n.cap.sub(n.alloc)
		n.mu.Unlock()
		if !req.fits(free) {
			continue
		}
		switch strategy {
		case StrategySpread:
			if best == nil || free.MilliCPU > bestFree ||
				(free.MilliCPU == bestFree && n.name < best.name) {
				best, bestFree = n, free.MilliCPU
			}
		default: // StrategyBinPack
			if best == nil || free.MilliCPU < bestFree ||
				(free.MilliCPU == bestFree && n.name < best.name) {
				best, bestFree = n, free.MilliCPU
			}
		}
	}
	return best
}

func sortedNodesLocked(m map[string]*Node) []*Node {
	out := make([]*Node, 0, len(m))
	for _, n := range m {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// deletePodLocked releases a pod's resources. Caller holds c.mu.
func (c *Cluster) deletePodLocked(id string) {
	pod, ok := c.pods[id]
	if !ok {
		return
	}
	if n, ok := c.nodes[pod.Node]; ok {
		n.mu.Lock()
		n.alloc = n.alloc.sub(pod.Req)
		delete(n.pods, id)
		n.mu.Unlock()
	}
	delete(c.pods, id)
}

// Deployment is a replicated pod set, analogous to a Kubernetes
// Deployment.
type Deployment struct {
	name     string
	req      Resources
	strategy Strategy
	region   string // "" = any region
	cluster  *Cluster

	mu   sync.Mutex
	pods map[string]*Pod
}

// CreateDeployment registers a deployment and scales it to replicas.
func (c *Cluster) CreateDeployment(name string, req Resources, replicas int, strategy Strategy) (*Deployment, error) {
	return c.CreateRegionDeployment(name, req, replicas, strategy, "")
}

// CreateRegionDeployment registers a deployment whose pods may only be
// placed in the named region ("" = any). This realizes jurisdiction
// constraints (paper §II-C / §VI future work).
func (c *Cluster) CreateRegionDeployment(name string, req Resources, replicas int, strategy Strategy, region string) (*Deployment, error) {
	if name == "" {
		return nil, errors.New("cluster: empty deployment name")
	}
	if strategy == 0 {
		strategy = StrategyBinPack
	}
	c.mu.Lock()
	if _, ok := c.deployments[name]; ok {
		c.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrDeploymentExists, name)
	}
	d := &Deployment{
		name:     name,
		req:      req,
		strategy: strategy,
		region:   region,
		cluster:  c,
		pods:     make(map[string]*Pod),
	}
	c.deployments[name] = d
	c.mu.Unlock()
	if err := d.Scale(replicas); err != nil {
		_ = c.DeleteDeployment(name)
		return nil, err
	}
	return d, nil
}

// Deployment returns the named deployment.
func (c *Cluster) Deployment(name string) (*Deployment, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	d, ok := c.deployments[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrDeploymentNotFound, name)
	}
	return d, nil
}

// Deployments returns all deployment names, sorted.
func (c *Cluster) Deployments() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.deployments))
	for name := range c.deployments {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// DeleteDeployment scales a deployment to zero and removes it.
func (c *Cluster) DeleteDeployment(name string) error {
	c.mu.Lock()
	d, ok := c.deployments[name]
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrDeploymentNotFound, name)
	}
	if err := d.Scale(0); err != nil {
		return err
	}
	c.mu.Lock()
	delete(c.deployments, name)
	c.mu.Unlock()
	return nil
}

// Name returns the deployment name.
func (d *Deployment) Name() string { return d.name }

// Region returns the deployment's region constraint ("" = any).
func (d *Deployment) Region() string { return d.region }

// Replicas returns the current pod count.
func (d *Deployment) Replicas() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.pods)
}

// Pods returns a snapshot of the deployment's pods sorted by ID.
func (d *Deployment) Pods() []*Pod {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]*Pod, 0, len(d.pods))
	for _, p := range d.pods {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// dropPod removes pod bookkeeping when a node is removed. The
// cluster's lock is already held by the caller.
func (d *Deployment) dropPod(id string) {
	d.mu.Lock()
	delete(d.pods, id)
	d.mu.Unlock()
}

// Scale adjusts the deployment to n replicas, adding or evicting pods
// as needed. On ErrNoCapacity it keeps the pods it managed to place
// and returns the error.
func (d *Deployment) Scale(n int) error {
	if n < 0 {
		return fmt.Errorf("cluster: negative replica count %d", n)
	}
	c := d.cluster
	for {
		d.mu.Lock()
		cur := len(d.pods)
		if cur == n {
			d.mu.Unlock()
			return nil
		}
		if cur < n {
			d.mu.Unlock()
			c.mu.Lock()
			pod, err := c.placePodLocked(d)
			c.mu.Unlock()
			if err != nil {
				return err
			}
			d.mu.Lock()
			d.pods[pod.ID] = pod
			d.mu.Unlock()
			continue
		}
		// Evict the newest pod.
		var victim string
		for id := range d.pods {
			if victim == "" || id > victim {
				victim = id
			}
		}
		delete(d.pods, victim)
		d.mu.Unlock()
		c.mu.Lock()
		c.deletePodLocked(victim)
		c.mu.Unlock()
	}
}

// TotalComputeRate returns the sum of all node compute rates in
// ops/second — the cluster's aggregate capacity.
func (c *Cluster) TotalComputeRate() float64 {
	var total float64
	for _, n := range c.Nodes() {
		total += n.compute.Rate()
	}
	return total
}
