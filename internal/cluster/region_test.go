package cluster

import (
	"errors"
	"strings"
	"testing"
)

func TestAddRegionNode(t *testing.T) {
	c := New(Config{})
	n, err := c.AddRegionNode("eu-0", "eu", std())
	if err != nil {
		t.Fatal(err)
	}
	if n.Region() != "eu" {
		t.Fatalf("region = %q", n.Region())
	}
	// Default region for plain AddNode.
	n2, err := c.AddNode("plain-0", std())
	if err != nil {
		t.Fatal(err)
	}
	if n2.Region() != DefaultRegion {
		t.Fatalf("default region = %q", n2.Region())
	}
	// Empty region coerces to default.
	n3, err := c.AddRegionNode("coerced", "", std())
	if err != nil {
		t.Fatal(err)
	}
	if n3.Region() != DefaultRegion {
		t.Fatalf("coerced region = %q", n3.Region())
	}
}

func TestRegionsSorted(t *testing.T) {
	c := New(Config{})
	c.AddRegionNode("z-0", "zone-z", std())
	c.AddRegionNode("a-0", "zone-a", std())
	c.AddNode("d-0", std())
	if got := strings.Join(c.Regions(), ","); got != "default,zone-a,zone-z" {
		t.Fatalf("Regions = %q", got)
	}
}

func TestRegionDeploymentOnlyUsesMatchingNodes(t *testing.T) {
	c := New(Config{})
	c.AddRegionNode("eu-0", "eu", Resources{MilliCPU: 4000, MemoryMB: 8192})
	c.AddRegionNode("us-0", "us", Resources{MilliCPU: 4000, MemoryMB: 8192})
	d, err := c.CreateRegionDeployment("fn", std(), 3, StrategySpread, "eu")
	if err != nil {
		t.Fatal(err)
	}
	if d.Region() != "eu" {
		t.Fatalf("deployment region = %q", d.Region())
	}
	for _, p := range d.Pods() {
		if p.Node != "eu-0" {
			t.Fatalf("pod %s placed on %s outside region", p.ID, p.Node)
		}
	}
	us, _ := c.Node("us-0")
	if us.PodCount() != 0 {
		t.Fatalf("us node has %d pods", us.PodCount())
	}
}

func TestRegionDeploymentCapacityBoundedByRegion(t *testing.T) {
	c := New(Config{})
	c.AddRegionNode("eu-0", "eu", Resources{MilliCPU: 2000, MemoryMB: 8192})
	c.AddRegionNode("us-0", "us", Resources{MilliCPU: 8000, MemoryMB: 8192})
	// 3 pods of 1000 mCPU don't fit in eu even though us has room.
	_, err := c.CreateRegionDeployment("fn", std(), 3, StrategySpread, "eu")
	if !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("err = %v, want ErrNoCapacity", err)
	}
	if err != nil && !strings.Contains(err.Error(), "eu") {
		t.Fatalf("error does not name the region: %v", err)
	}
}

func TestRegionDeploymentUnknownRegion(t *testing.T) {
	c := New(Config{})
	c.AddNode("d-0", Resources{MilliCPU: 8000, MemoryMB: 8192})
	if _, err := c.CreateRegionDeployment("fn", std(), 1, StrategySpread, "mars"); !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("err = %v", err)
	}
}

func TestDeploymentsListed(t *testing.T) {
	c := newCluster(t, 2)
	c.CreateDeployment("b-dep", std(), 1, StrategySpread)
	c.CreateDeployment("a-dep", std(), 1, StrategySpread)
	got := c.Deployments()
	if strings.Join(got, ",") != "a-dep,b-dep" {
		t.Fatalf("Deployments = %v", got)
	}
}
