package kvstore

// Contention and fault coverage for CompareAndPut, the optimistic
// concurrency primitive the memtable's PutManyIfVersion mirrors.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// TestCompareAndPutContended runs concurrent read-CAS-retry increment
// loops against one key: every increment must land exactly once and
// the final version must equal the number of successful commits.
func TestCompareAndPutContended(t *testing.T) {
	s := Open(Config{})
	defer s.Close()
	ctx := context.Background()
	const workers, perEach = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perEach; i++ {
				for {
					var n int
					var expect int64
					if doc, err := s.Get(ctx, "n"); err == nil {
						expect = doc.Version
						if err := json.Unmarshal(doc.Value, &n); err != nil {
							t.Error(err)
							return
						}
					} else if !errors.Is(err, ErrNotFound) {
						t.Error(err)
						return
					}
					raw, _ := json.Marshal(n + 1)
					_, err := s.CompareAndPut(ctx, "n", raw, expect)
					if err == nil {
						break
					}
					if !errors.Is(err, ErrVersionMismatch) {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	doc, err := s.Get(ctx, "n")
	if err != nil {
		t.Fatal(err)
	}
	const total = workers * perEach
	if string(doc.Value) != fmt.Sprintf("%d", total) {
		t.Fatalf("n = %s, want %d (lost updates)", doc.Value, total)
	}
	if doc.Version != total {
		t.Fatalf("version = %d, want %d (one bump per commit)", doc.Version, total)
	}
}

// TestCompareAndPutStaleAlwaysFails pins a stale expectation and
// verifies it can never land, no matter how often it is retried.
func TestCompareAndPutStaleAlwaysFails(t *testing.T) {
	s := Open(Config{})
	defer s.Close()
	ctx := context.Background()
	doc, err := s.Put(ctx, "k", json.RawMessage(`1`))
	if err != nil {
		t.Fatal(err)
	}
	stale := doc.Version
	if _, err := s.Put(ctx, "k", json.RawMessage(`2`)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		_, err := s.CompareAndPut(ctx, "k", json.RawMessage(`99`), stale)
		if !errors.Is(err, ErrVersionMismatch) {
			t.Fatalf("attempt %d: err = %v, want ErrVersionMismatch", i, err)
		}
	}
	// Creation CAS against an existing key is just another stale case.
	if _, err := s.CompareAndPut(ctx, "k", json.RawMessage(`99`), 0); !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("expect-0 on existing key: err = %v, want ErrVersionMismatch", err)
	}
	cur, err := s.Get(ctx, "k")
	if err != nil {
		t.Fatal(err)
	}
	if string(cur.Value) != "2" {
		t.Fatalf("k = %s, want 2 (stale CAS must never land)", cur.Value)
	}
}

// TestCompareAndPutFaultInjection verifies injected write failures
// surface through CompareAndPut before any state or version changes.
func TestCompareAndPutFaultInjection(t *testing.T) {
	s := Open(Config{})
	defer s.Close()
	ctx := context.Background()
	doc, err := s.Put(ctx, "k", json.RawMessage(`1`))
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("disk on fire")
	s.InjectWriteFailures(1, boom)
	if _, err := s.CompareAndPut(ctx, "k", json.RawMessage(`2`), doc.Version); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want injected fault", err)
	}
	if got := s.FaultsServed(); got != 1 {
		t.Fatalf("faults served = %d, want 1", got)
	}
	cur, err := s.Get(ctx, "k")
	if err != nil {
		t.Fatal(err)
	}
	if string(cur.Value) != "1" || cur.Version != doc.Version {
		t.Fatalf("k = {%s, v%d}, want unchanged {1, v%d}", cur.Value, cur.Version, doc.Version)
	}
	// The same expectation commits once the fault clears: a failed CAS
	// consumed nothing.
	if _, err := s.CompareAndPut(ctx, "k", json.RawMessage(`2`), doc.Version); err != nil {
		t.Fatal(err)
	}
}

// TestBatchPutFaultIsAtomic verifies a mid-batch injected failure
// leaves no partial writes behind: admission happens before any
// document lands, so a failed batch is all-or-nothing.
func TestBatchPutFaultIsAtomic(t *testing.T) {
	s := Open(Config{})
	defer s.Close()
	ctx := context.Background()
	boom := errors.New("batch exploded")
	s.InjectWriteFailures(1, boom)
	batch := map[string]json.RawMessage{
		"a": json.RawMessage(`1`),
		"b": json.RawMessage(`2`),
		"c": json.RawMessage(`3`),
	}
	if err := s.BatchPut(ctx, batch); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want injected fault", err)
	}
	for k := range batch {
		if _, err := s.Get(ctx, k); !errors.Is(err, ErrNotFound) {
			t.Fatalf("failed batch leaked key %q", k)
		}
	}
	if s.Len() != 0 {
		t.Fatalf("store holds %d docs after failed batch, want 0", s.Len())
	}
	if err := s.BatchPut(ctx, batch); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 {
		t.Fatalf("store holds %d docs, want 3", s.Len())
	}
}
