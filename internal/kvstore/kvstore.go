// Package kvstore implements the persistent document database
// substrate that backs object state in Oparaca and in the Knative
// baseline.
//
// The paper's evaluation (§V) attributes the Knative baseline's
// throughput plateau to "the database write operation throughput
// bottleneck"; this store therefore models write capacity as a
// first-class, configurable parameter (writes admitted through a token
// bucket), plus a per-operation service latency. Batch writes consume
// capacity per batch with a small per-document increment, which is the
// property Oparaca's write-behind memtable exploits.
//
// Documents are versioned; Put returns the new version and
// CompareAndPut implements optimistic concurrency.
//
// Reads have a batched counterpart too: BatchGet serves any number of
// keys in one round trip, charging the per-operation read latency once
// per batch instead of once per key. The memtable's GetMany uses it to
// consolidate read-through misses the same way the write-behind
// flusher consolidates writes through BatchPut.
package kvstore

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/hpcclab/oparaca-go/internal/resilience"
	"github.com/hpcclab/oparaca-go/internal/vclock"
)

// Sentinel errors.
var (
	// ErrNotFound is returned when a key has no document.
	ErrNotFound = errors.New("kvstore: key not found")
	// ErrVersionMismatch is returned by CompareAndPut on a stale version.
	ErrVersionMismatch = errors.New("kvstore: version mismatch")
	// ErrClosed is returned after Close.
	ErrClosed = errors.New("kvstore: store closed")
	// ErrInjectedTransient is the error class of chaos-plan faults a
	// retry can outlive (the store recovers on its own).
	ErrInjectedTransient = errors.New("kvstore: injected transient fault")
	// ErrInjectedPermanent is the error class of chaos-plan faults
	// retrying cannot fix (a dead replica, a full disk); the breaker —
	// not the retry loop — is the right response.
	ErrInjectedPermanent = errors.New("kvstore: injected permanent fault")
)

// Document is a versioned value.
type Document struct {
	Key     string          `json:"key"`
	Value   json.RawMessage `json:"value"`
	Version int64           `json:"version"`
	Updated time.Time       `json:"updated"`
}

// Config tunes the store's simulated performance characteristics.
type Config struct {
	// WriteOpsPerSec caps admitted write operations per second
	// (a batch counts as one operation plus BatchDocCost per extra
	// document). Zero means unlimited.
	WriteOpsPerSec float64
	// WriteBurst is the token-bucket burst for writes. Defaults to
	// max(1, WriteOpsPerSec/10) when zero.
	WriteBurst float64
	// WriteLatency is the service time charged to each write
	// operation after admission.
	WriteLatency time.Duration
	// ReadLatency is the service time charged to each read.
	ReadLatency time.Duration
	// BatchDocCost is the fractional write-capacity cost of each
	// document in a batch beyond the first. The paper's design
	// consolidates writes so a batch is far cheaper than N singles;
	// 0.02 means a 100-doc batch costs ~3 ops. Defaults to 0.02.
	BatchDocCost float64
	// Clock supplies time; defaults to the real clock.
	Clock vclock.Clock
}

func (c Config) withDefaults() Config {
	if c.Clock == nil {
		c.Clock = vclock.NewReal()
	}
	if c.WriteBurst <= 0 {
		c.WriteBurst = c.WriteOpsPerSec / 10
		if c.WriteBurst < 1 {
			c.WriteBurst = 1
		}
	}
	if c.BatchDocCost <= 0 {
		c.BatchDocCost = 0.02
	}
	return c
}

// Store is an in-memory versioned document store with simulated write
// capacity. It is safe for concurrent use.
type Store struct {
	cfg    Config
	writes *vclock.TokenBucket // nil when unlimited

	mu     sync.RWMutex
	docs   map[string]Document
	closed bool

	statsMu     sync.Mutex
	writeOps    int64 // admitted write operations (batches count once)
	docsWritten int64 // total documents written
	readOps     int64 // read operations (batches count once)
	docsRead    int64 // total documents returned by reads
	deleteOps   int64

	faultMu      sync.Mutex
	failRemain   int   // write ops left to fail
	failErr      error // injected error
	faultsServed int64
	plan         *FaultPlan // probabilistic chaos schedule (nil = off)
	planRand     *rand.Rand // seeded; guarded by faultMu

	// breaker, when set, gates every operation: open-state rejections
	// fail fast before any capacity or latency is charged, and every
	// admitted operation's outcome is recorded back.
	breaker atomic.Pointer[resilience.Breaker]
}

// FaultPlan is a seeded probabilistic fault schedule — the chaos
// harness's generalization of InjectWriteFailures' "fail next N
// writes". Rates are per-operation probabilities in [0, 1]; the Seed
// makes a schedule reproducible (modulo goroutine interleaving) so a
// failing chaos run can be replayed.
type FaultPlan struct {
	// Seed initializes the schedule's random source.
	Seed int64
	// ReadErrorRate / WriteErrorRate fail the operation before any
	// capacity or latency is charged.
	ReadErrorRate  float64
	WriteErrorRate float64
	// LatencySpikeRate adds LatencySpike of extra service time to the
	// operation (on top of the configured base latency).
	LatencySpikeRate float64
	LatencySpike     time.Duration
	// PartialBatchRate makes a BatchPut apply only a random prefix of
	// its documents before failing — the torn-batch case write-behind
	// retry logic must absorb.
	PartialBatchRate float64
	// PermanentRate is the fraction of injected errors classed
	// ErrInjectedPermanent instead of ErrInjectedTransient.
	PermanentRate float64
}

// enabled reports whether the plan can ever fire.
func (p FaultPlan) enabled() bool {
	return p.ReadErrorRate > 0 || p.WriteErrorRate > 0 ||
		p.LatencySpikeRate > 0 || p.PartialBatchRate > 0
}

// SetFaultPlan installs (or, with a zero-rate plan, clears) the
// store's chaos schedule.
func (s *Store) SetFaultPlan(plan FaultPlan) {
	s.faultMu.Lock()
	defer s.faultMu.Unlock()
	if !plan.enabled() {
		s.plan, s.planRand = nil, nil
		return
	}
	s.plan = &plan
	s.planRand = rand.New(rand.NewSource(plan.Seed))
}

// SetBreaker attaches a circuit breaker to the store. Pass nil to
// detach.
func (s *Store) SetBreaker(b *resilience.Breaker) { s.breaker.Store(b) }

// Breaker returns the attached circuit breaker (nil when none).
func (s *Store) Breaker() *resilience.Breaker { return s.breaker.Load() }

// opKind distinguishes read from write faults in the chaos plan.
type opKind int

const (
	opRead opKind = iota
	opWrite
)

// planFault rolls the chaos schedule for one operation, returning any
// extra latency spike and the injected error (nil when the op
// survives).
func (s *Store) planFault(kind opKind) (time.Duration, error) {
	s.faultMu.Lock()
	defer s.faultMu.Unlock()
	if s.plan == nil {
		return 0, nil
	}
	var spike time.Duration
	if s.plan.LatencySpikeRate > 0 && s.planRand.Float64() < s.plan.LatencySpikeRate {
		spike = s.plan.LatencySpike
	}
	rate := s.plan.WriteErrorRate
	if kind == opRead {
		rate = s.plan.ReadErrorRate
	}
	if rate > 0 && s.planRand.Float64() < rate {
		s.faultsServed++
		if s.plan.PermanentRate > 0 && s.planRand.Float64() < s.plan.PermanentRate {
			return spike, ErrInjectedPermanent
		}
		return spike, ErrInjectedTransient
	}
	return spike, nil
}

// planPartialCount rolls the partial-batch fault for an n-document
// BatchPut: -1 means no fault, otherwise the number of documents to
// apply before failing.
func (s *Store) planPartialCount(n int) int {
	s.faultMu.Lock()
	defer s.faultMu.Unlock()
	if s.plan == nil || s.plan.PartialBatchRate <= 0 || n < 2 {
		return -1
	}
	if s.planRand.Float64() < s.plan.PartialBatchRate {
		s.faultsServed++
		return s.planRand.Intn(n)
	}
	return -1
}

// allowOp consults the breaker before an operation touches capacity or
// latency. A non-nil return means fail fast (errors.Is
// resilience.ErrOpen).
func (s *Store) allowOp() error {
	if b := s.breaker.Load(); b != nil {
		return b.Allow()
	}
	return nil
}

// recordOp feeds an admitted operation's outcome to the breaker.
// Not-found, version-mismatch, closed-store and context errors are
// business outcomes, not store health signals: they record as success
// so a contended CAS loop cannot trip the breaker.
func (s *Store) recordOp(err error) {
	b := s.breaker.Load()
	if b == nil {
		return
	}
	if err != nil && (errors.Is(err, ErrNotFound) || errors.Is(err, ErrVersionMismatch) ||
		errors.Is(err, ErrClosed) || errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded)) {
		err = nil
	}
	b.Record(err)
}

// Open creates a store with the given configuration.
func Open(cfg Config) *Store {
	cfg = cfg.withDefaults()
	s := &Store{cfg: cfg, docs: make(map[string]Document)}
	if cfg.WriteOpsPerSec > 0 {
		s.writes = vclock.NewTokenBucket(cfg.Clock, cfg.WriteOpsPerSec, cfg.WriteBurst)
	}
	return s
}

// Close marks the store closed. Subsequent operations fail with
// ErrClosed.
func (s *Store) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	if s.writes != nil {
		s.writes.Close()
	}
}

// InjectWriteFailures makes the next n write operations (Put,
// CompareAndPut, BatchPut, Delete) fail with err before consuming any
// capacity. Resilience tests use this to exercise retry paths such as
// the memtable's write-behind flusher.
func (s *Store) InjectWriteFailures(n int, err error) {
	s.faultMu.Lock()
	defer s.faultMu.Unlock()
	s.failRemain = n
	s.failErr = err
}

// FaultsServed reports how many injected failures have fired.
func (s *Store) FaultsServed() int64 {
	s.faultMu.Lock()
	defer s.faultMu.Unlock()
	return s.faultsServed
}

// takeFault consumes one injected failure if armed.
func (s *Store) takeFault() error {
	s.faultMu.Lock()
	defer s.faultMu.Unlock()
	if s.failRemain <= 0 {
		return nil
	}
	s.failRemain--
	s.faultsServed++
	return s.failErr
}

// admitWrite charges cost write-capacity tokens and the write latency,
// after rolling the injected-fault hooks.
func (s *Store) admitWrite(ctx context.Context, cost float64) error {
	if err := s.takeFault(); err != nil {
		return err
	}
	spike, err := s.planFault(opWrite)
	if err != nil {
		return err
	}
	if s.writes != nil {
		if err := s.writes.Take(ctx, cost); err != nil {
			if errors.Is(err, vclock.ErrBucketClosed) {
				return ErrClosed
			}
			return err
		}
	}
	if lat := s.cfg.WriteLatency + spike; lat > 0 {
		if err := s.cfg.Clock.Sleep(ctx, lat); err != nil {
			return err
		}
	}
	return nil
}

// admitRead rolls the read-fault hooks and charges the read latency
// (plus any chaos latency spike).
func (s *Store) admitRead(ctx context.Context) error {
	spike, err := s.planFault(opRead)
	if err != nil {
		return err
	}
	if lat := s.cfg.ReadLatency + spike; lat > 0 {
		if err := s.cfg.Clock.Sleep(ctx, lat); err != nil {
			return err
		}
	}
	return nil
}

// Get returns the document stored at key.
func (s *Store) Get(ctx context.Context, key string) (Document, error) {
	if err := s.allowOp(); err != nil {
		return Document{}, err
	}
	doc, err := s.get(ctx, key)
	s.recordOp(err)
	return doc, err
}

func (s *Store) get(ctx context.Context, key string) (Document, error) {
	if err := s.admitRead(ctx); err != nil {
		return Document{}, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return Document{}, ErrClosed
	}
	doc, ok := s.docs[key]
	if !ok {
		return Document{}, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	s.statsMu.Lock()
	s.readOps++
	s.docsRead++
	s.statsMu.Unlock()
	return doc, nil
}

// BatchGet returns the documents stored at keys as one consolidated
// read operation: the per-operation read latency is charged once for
// the whole batch rather than once per key. Keys without a document
// are simply absent from the result map; a batch that finds nothing is
// not an error.
func (s *Store) BatchGet(ctx context.Context, keys []string) (map[string]Document, error) {
	if len(keys) == 0 {
		return nil, nil
	}
	if err := s.allowOp(); err != nil {
		return nil, err
	}
	docs, err := s.batchGet(ctx, keys)
	s.recordOp(err)
	return docs, err
}

func (s *Store) batchGet(ctx context.Context, keys []string) (map[string]Document, error) {
	if err := s.admitRead(ctx); err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	out := make(map[string]Document, len(keys))
	for _, k := range keys {
		if doc, ok := s.docs[k]; ok {
			out[k] = doc
		}
	}
	s.statsMu.Lock()
	s.readOps++
	s.docsRead += int64(len(out))
	s.statsMu.Unlock()
	return out, nil
}

// Put stores value at key unconditionally and returns the stored
// document (with its new version).
func (s *Store) Put(ctx context.Context, key string, value json.RawMessage) (Document, error) {
	if err := s.allowOp(); err != nil {
		return Document{}, err
	}
	doc, err := s.put(ctx, key, value)
	s.recordOp(err)
	return doc, err
}

func (s *Store) put(ctx context.Context, key string, value json.RawMessage) (Document, error) {
	if err := s.admitWrite(ctx, 1); err != nil {
		return Document{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return Document{}, ErrClosed
	}
	doc := s.putLocked(key, value)
	s.statsMu.Lock()
	s.writeOps++
	s.docsWritten++
	s.statsMu.Unlock()
	return doc, nil
}

// putLocked inserts or updates a document. Caller holds mu.
func (s *Store) putLocked(key string, value json.RawMessage) Document {
	prev := s.docs[key]
	doc := Document{
		Key:     key,
		Value:   append(json.RawMessage(nil), value...),
		Version: prev.Version + 1,
		Updated: s.cfg.Clock.Now(),
	}
	s.docs[key] = doc
	return doc
}

// CompareAndPut stores value only if the current version equals
// expect. expect 0 requires the key to be absent.
func (s *Store) CompareAndPut(ctx context.Context, key string, value json.RawMessage, expect int64) (Document, error) {
	if err := s.allowOp(); err != nil {
		return Document{}, err
	}
	doc, err := s.compareAndPut(ctx, key, value, expect)
	s.recordOp(err)
	return doc, err
}

func (s *Store) compareAndPut(ctx context.Context, key string, value json.RawMessage, expect int64) (Document, error) {
	if err := s.admitWrite(ctx, 1); err != nil {
		return Document{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return Document{}, ErrClosed
	}
	cur := s.docs[key] // zero Document has Version 0
	if cur.Version != expect {
		return Document{}, fmt.Errorf("%w: key %q at version %d, expected %d",
			ErrVersionMismatch, key, cur.Version, expect)
	}
	doc := s.putLocked(key, value)
	s.statsMu.Lock()
	s.writeOps++
	s.docsWritten++
	s.statsMu.Unlock()
	return doc, nil
}

// BatchPut stores all entries as one consolidated write operation.
// This is the primitive Oparaca's memtable flusher uses: a batch of N
// documents costs 1 + (N-1)*BatchDocCost capacity tokens instead of N.
func (s *Store) BatchPut(ctx context.Context, entries map[string]json.RawMessage) error {
	if len(entries) == 0 {
		return nil
	}
	if err := s.allowOp(); err != nil {
		return err
	}
	err := s.batchPut(ctx, entries)
	s.recordOp(err)
	return err
}

func (s *Store) batchPut(ctx context.Context, entries map[string]json.RawMessage) error {
	cost := 1 + float64(len(entries)-1)*s.cfg.BatchDocCost
	if err := s.admitWrite(ctx, cost); err != nil {
		return err
	}
	partial := s.planPartialCount(len(entries))
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if partial >= 0 {
		// Torn batch: apply a deterministic (sorted) prefix, then fail.
		// The caller's retry re-sends the whole batch; puts are
		// idempotent modulo version bumps, so retries converge.
		keys := make([]string, 0, len(entries))
		for k := range entries {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys[:partial] {
			s.putLocked(k, entries[k])
		}
		s.statsMu.Lock()
		s.writeOps++
		s.docsWritten += int64(partial)
		s.statsMu.Unlock()
		return fmt.Errorf("%w: batch torn after %d/%d documents",
			ErrInjectedTransient, partial, len(entries))
	}
	for k, v := range entries {
		s.putLocked(k, v)
	}
	s.statsMu.Lock()
	s.writeOps++
	s.docsWritten += int64(len(entries))
	s.statsMu.Unlock()
	return nil
}

// Delete removes key. Deleting an absent key is not an error.
func (s *Store) Delete(ctx context.Context, key string) error {
	if err := s.allowOp(); err != nil {
		return err
	}
	err := s.del(ctx, key)
	s.recordOp(err)
	return err
}

func (s *Store) del(ctx context.Context, key string) error {
	if err := s.admitWrite(ctx, 1); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	delete(s.docs, key)
	s.statsMu.Lock()
	s.deleteOps++
	s.statsMu.Unlock()
	return nil
}

// List returns the keys with the given prefix, sorted.
func (s *Store) List(ctx context.Context, prefix string) ([]string, error) {
	if err := s.allowOp(); err != nil {
		return nil, err
	}
	keys, err := s.list(ctx, prefix)
	s.recordOp(err)
	return keys, err
}

func (s *Store) list(ctx context.Context, prefix string) ([]string, error) {
	if err := s.admitRead(ctx); err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	var keys []string
	for k := range s.docs {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys, nil
}

// Len returns the number of stored documents.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.docs)
}

// Stats is a point-in-time view of operation counts.
type Stats struct {
	WriteOps    int64 `json:"write_ops"`
	DocsWritten int64 `json:"docs_written"`
	ReadOps     int64 `json:"read_ops"`
	DocsRead    int64 `json:"docs_read"`
	DeleteOps   int64 `json:"delete_ops"`
}

// Stats returns operation counters since Open.
func (s *Store) Stats() Stats {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	return Stats{
		WriteOps:    s.writeOps,
		DocsWritten: s.docsWritten,
		ReadOps:     s.readOps,
		DocsRead:    s.docsRead,
		DeleteOps:   s.deleteOps,
	}
}

// snapshotFile is the on-disk representation used by Save/Load.
type snapshotFile struct {
	SavedAt time.Time  `json:"saved_at"`
	Docs    []Document `json:"docs"`
}

// Save writes a JSON snapshot of all documents to path. It provides
// the durability component of the paper's "persistent: true"
// constraint in a form that is testable offline.
func (s *Store) Save(path string) error {
	s.mu.RLock()
	snap := snapshotFile{SavedAt: s.cfg.Clock.Now(), Docs: make([]Document, 0, len(s.docs))}
	for _, d := range s.docs {
		snap.Docs = append(snap.Docs, d)
	}
	s.mu.RUnlock()
	sort.Slice(snap.Docs, func(i, j int) bool { return snap.Docs[i].Key < snap.Docs[j].Key })
	raw, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return fmt.Errorf("kvstore: encoding snapshot: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return fmt.Errorf("kvstore: writing snapshot: %w", err)
	}
	return os.Rename(tmp, path)
}

// Load replaces the store contents from a snapshot written by Save.
func (s *Store) Load(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("kvstore: reading snapshot: %w", err)
	}
	var snap snapshotFile
	if err := json.Unmarshal(raw, &snap); err != nil {
		return fmt.Errorf("kvstore: decoding snapshot: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.docs = make(map[string]Document, len(snap.Docs))
	for _, d := range snap.Docs {
		s.docs[d.Key] = d
	}
	return nil
}

// SetWriteRate retunes the write-capacity cap at runtime, which the
// benchmark harness uses for capacity sweeps. It is a no-op for
// unlimited stores.
func (s *Store) SetWriteRate(opsPerSec float64) {
	if s.writes != nil && opsPerSec > 0 {
		s.writes.SetRate(opsPerSec)
	}
}
