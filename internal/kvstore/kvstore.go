// Package kvstore implements the persistent document database
// substrate that backs object state in Oparaca and in the Knative
// baseline.
//
// The paper's evaluation (§V) attributes the Knative baseline's
// throughput plateau to "the database write operation throughput
// bottleneck"; this store therefore models write capacity as a
// first-class, configurable parameter (writes admitted through a token
// bucket), plus a per-operation service latency. Batch writes consume
// capacity per batch with a small per-document increment, which is the
// property Oparaca's write-behind memtable exploits.
//
// Documents are versioned; Put returns the new version and
// CompareAndPut implements optimistic concurrency.
//
// Reads have a batched counterpart too: BatchGet serves any number of
// keys in one round trip, charging the per-operation read latency once
// per batch instead of once per key. The memtable's GetMany uses it to
// consolidate read-through misses the same way the write-behind
// flusher consolidates writes through BatchPut.
package kvstore

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/hpcclab/oparaca-go/internal/vclock"
)

// Sentinel errors.
var (
	// ErrNotFound is returned when a key has no document.
	ErrNotFound = errors.New("kvstore: key not found")
	// ErrVersionMismatch is returned by CompareAndPut on a stale version.
	ErrVersionMismatch = errors.New("kvstore: version mismatch")
	// ErrClosed is returned after Close.
	ErrClosed = errors.New("kvstore: store closed")
)

// Document is a versioned value.
type Document struct {
	Key     string          `json:"key"`
	Value   json.RawMessage `json:"value"`
	Version int64           `json:"version"`
	Updated time.Time       `json:"updated"`
}

// Config tunes the store's simulated performance characteristics.
type Config struct {
	// WriteOpsPerSec caps admitted write operations per second
	// (a batch counts as one operation plus BatchDocCost per extra
	// document). Zero means unlimited.
	WriteOpsPerSec float64
	// WriteBurst is the token-bucket burst for writes. Defaults to
	// max(1, WriteOpsPerSec/10) when zero.
	WriteBurst float64
	// WriteLatency is the service time charged to each write
	// operation after admission.
	WriteLatency time.Duration
	// ReadLatency is the service time charged to each read.
	ReadLatency time.Duration
	// BatchDocCost is the fractional write-capacity cost of each
	// document in a batch beyond the first. The paper's design
	// consolidates writes so a batch is far cheaper than N singles;
	// 0.02 means a 100-doc batch costs ~3 ops. Defaults to 0.02.
	BatchDocCost float64
	// Clock supplies time; defaults to the real clock.
	Clock vclock.Clock
}

func (c Config) withDefaults() Config {
	if c.Clock == nil {
		c.Clock = vclock.NewReal()
	}
	if c.WriteBurst <= 0 {
		c.WriteBurst = c.WriteOpsPerSec / 10
		if c.WriteBurst < 1 {
			c.WriteBurst = 1
		}
	}
	if c.BatchDocCost <= 0 {
		c.BatchDocCost = 0.02
	}
	return c
}

// Store is an in-memory versioned document store with simulated write
// capacity. It is safe for concurrent use.
type Store struct {
	cfg    Config
	writes *vclock.TokenBucket // nil when unlimited

	mu     sync.RWMutex
	docs   map[string]Document
	closed bool

	statsMu     sync.Mutex
	writeOps    int64 // admitted write operations (batches count once)
	docsWritten int64 // total documents written
	readOps     int64 // read operations (batches count once)
	docsRead    int64 // total documents returned by reads
	deleteOps   int64

	faultMu      sync.Mutex
	failRemain   int   // write ops left to fail
	failErr      error // injected error
	faultsServed int64
}

// Open creates a store with the given configuration.
func Open(cfg Config) *Store {
	cfg = cfg.withDefaults()
	s := &Store{cfg: cfg, docs: make(map[string]Document)}
	if cfg.WriteOpsPerSec > 0 {
		s.writes = vclock.NewTokenBucket(cfg.Clock, cfg.WriteOpsPerSec, cfg.WriteBurst)
	}
	return s
}

// Close marks the store closed. Subsequent operations fail with
// ErrClosed.
func (s *Store) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	if s.writes != nil {
		s.writes.Close()
	}
}

// InjectWriteFailures makes the next n write operations (Put,
// CompareAndPut, BatchPut, Delete) fail with err before consuming any
// capacity. Resilience tests use this to exercise retry paths such as
// the memtable's write-behind flusher.
func (s *Store) InjectWriteFailures(n int, err error) {
	s.faultMu.Lock()
	defer s.faultMu.Unlock()
	s.failRemain = n
	s.failErr = err
}

// FaultsServed reports how many injected failures have fired.
func (s *Store) FaultsServed() int64 {
	s.faultMu.Lock()
	defer s.faultMu.Unlock()
	return s.faultsServed
}

// takeFault consumes one injected failure if armed.
func (s *Store) takeFault() error {
	s.faultMu.Lock()
	defer s.faultMu.Unlock()
	if s.failRemain <= 0 {
		return nil
	}
	s.failRemain--
	s.faultsServed++
	return s.failErr
}

// admitWrite charges cost write-capacity tokens and the write latency.
func (s *Store) admitWrite(ctx context.Context, cost float64) error {
	if err := s.takeFault(); err != nil {
		return err
	}
	if s.writes != nil {
		if err := s.writes.Take(ctx, cost); err != nil {
			if errors.Is(err, vclock.ErrBucketClosed) {
				return ErrClosed
			}
			return err
		}
	}
	if s.cfg.WriteLatency > 0 {
		if err := s.cfg.Clock.Sleep(ctx, s.cfg.WriteLatency); err != nil {
			return err
		}
	}
	return nil
}

// Get returns the document stored at key.
func (s *Store) Get(ctx context.Context, key string) (Document, error) {
	if s.cfg.ReadLatency > 0 {
		if err := s.cfg.Clock.Sleep(ctx, s.cfg.ReadLatency); err != nil {
			return Document{}, err
		}
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return Document{}, ErrClosed
	}
	doc, ok := s.docs[key]
	if !ok {
		return Document{}, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	s.statsMu.Lock()
	s.readOps++
	s.docsRead++
	s.statsMu.Unlock()
	return doc, nil
}

// BatchGet returns the documents stored at keys as one consolidated
// read operation: the per-operation read latency is charged once for
// the whole batch rather than once per key. Keys without a document
// are simply absent from the result map; a batch that finds nothing is
// not an error.
func (s *Store) BatchGet(ctx context.Context, keys []string) (map[string]Document, error) {
	if len(keys) == 0 {
		return nil, nil
	}
	if s.cfg.ReadLatency > 0 {
		if err := s.cfg.Clock.Sleep(ctx, s.cfg.ReadLatency); err != nil {
			return nil, err
		}
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	out := make(map[string]Document, len(keys))
	for _, k := range keys {
		if doc, ok := s.docs[k]; ok {
			out[k] = doc
		}
	}
	s.statsMu.Lock()
	s.readOps++
	s.docsRead += int64(len(out))
	s.statsMu.Unlock()
	return out, nil
}

// Put stores value at key unconditionally and returns the stored
// document (with its new version).
func (s *Store) Put(ctx context.Context, key string, value json.RawMessage) (Document, error) {
	if err := s.admitWrite(ctx, 1); err != nil {
		return Document{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return Document{}, ErrClosed
	}
	doc := s.putLocked(key, value)
	s.statsMu.Lock()
	s.writeOps++
	s.docsWritten++
	s.statsMu.Unlock()
	return doc, nil
}

// putLocked inserts or updates a document. Caller holds mu.
func (s *Store) putLocked(key string, value json.RawMessage) Document {
	prev := s.docs[key]
	doc := Document{
		Key:     key,
		Value:   append(json.RawMessage(nil), value...),
		Version: prev.Version + 1,
		Updated: s.cfg.Clock.Now(),
	}
	s.docs[key] = doc
	return doc
}

// CompareAndPut stores value only if the current version equals
// expect. expect 0 requires the key to be absent.
func (s *Store) CompareAndPut(ctx context.Context, key string, value json.RawMessage, expect int64) (Document, error) {
	if err := s.admitWrite(ctx, 1); err != nil {
		return Document{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return Document{}, ErrClosed
	}
	cur := s.docs[key] // zero Document has Version 0
	if cur.Version != expect {
		return Document{}, fmt.Errorf("%w: key %q at version %d, expected %d",
			ErrVersionMismatch, key, cur.Version, expect)
	}
	doc := s.putLocked(key, value)
	s.statsMu.Lock()
	s.writeOps++
	s.docsWritten++
	s.statsMu.Unlock()
	return doc, nil
}

// BatchPut stores all entries as one consolidated write operation.
// This is the primitive Oparaca's memtable flusher uses: a batch of N
// documents costs 1 + (N-1)*BatchDocCost capacity tokens instead of N.
func (s *Store) BatchPut(ctx context.Context, entries map[string]json.RawMessage) error {
	if len(entries) == 0 {
		return nil
	}
	cost := 1 + float64(len(entries)-1)*s.cfg.BatchDocCost
	if err := s.admitWrite(ctx, cost); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	for k, v := range entries {
		s.putLocked(k, v)
	}
	s.statsMu.Lock()
	s.writeOps++
	s.docsWritten += int64(len(entries))
	s.statsMu.Unlock()
	return nil
}

// Delete removes key. Deleting an absent key is not an error.
func (s *Store) Delete(ctx context.Context, key string) error {
	if err := s.admitWrite(ctx, 1); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	delete(s.docs, key)
	s.statsMu.Lock()
	s.deleteOps++
	s.statsMu.Unlock()
	return nil
}

// List returns the keys with the given prefix, sorted.
func (s *Store) List(ctx context.Context, prefix string) ([]string, error) {
	if s.cfg.ReadLatency > 0 {
		if err := s.cfg.Clock.Sleep(ctx, s.cfg.ReadLatency); err != nil {
			return nil, err
		}
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	var keys []string
	for k := range s.docs {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys, nil
}

// Len returns the number of stored documents.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.docs)
}

// Stats is a point-in-time view of operation counts.
type Stats struct {
	WriteOps    int64 `json:"write_ops"`
	DocsWritten int64 `json:"docs_written"`
	ReadOps     int64 `json:"read_ops"`
	DocsRead    int64 `json:"docs_read"`
	DeleteOps   int64 `json:"delete_ops"`
}

// Stats returns operation counters since Open.
func (s *Store) Stats() Stats {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	return Stats{
		WriteOps:    s.writeOps,
		DocsWritten: s.docsWritten,
		ReadOps:     s.readOps,
		DocsRead:    s.docsRead,
		DeleteOps:   s.deleteOps,
	}
}

// snapshotFile is the on-disk representation used by Save/Load.
type snapshotFile struct {
	SavedAt time.Time  `json:"saved_at"`
	Docs    []Document `json:"docs"`
}

// Save writes a JSON snapshot of all documents to path. It provides
// the durability component of the paper's "persistent: true"
// constraint in a form that is testable offline.
func (s *Store) Save(path string) error {
	s.mu.RLock()
	snap := snapshotFile{SavedAt: s.cfg.Clock.Now(), Docs: make([]Document, 0, len(s.docs))}
	for _, d := range s.docs {
		snap.Docs = append(snap.Docs, d)
	}
	s.mu.RUnlock()
	sort.Slice(snap.Docs, func(i, j int) bool { return snap.Docs[i].Key < snap.Docs[j].Key })
	raw, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return fmt.Errorf("kvstore: encoding snapshot: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return fmt.Errorf("kvstore: writing snapshot: %w", err)
	}
	return os.Rename(tmp, path)
}

// Load replaces the store contents from a snapshot written by Save.
func (s *Store) Load(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("kvstore: reading snapshot: %w", err)
	}
	var snap snapshotFile
	if err := json.Unmarshal(raw, &snap); err != nil {
		return fmt.Errorf("kvstore: decoding snapshot: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.docs = make(map[string]Document, len(snap.Docs))
	for _, d := range snap.Docs {
		s.docs[d.Key] = d
	}
	return nil
}

// SetWriteRate retunes the write-capacity cap at runtime, which the
// benchmark harness uses for capacity sweeps. It is a no-op for
// unlimited stores.
func (s *Store) SetWriteRate(opsPerSec float64) {
	if s.writes != nil && opsPerSec > 0 {
		s.writes.SetRate(opsPerSec)
	}
}
