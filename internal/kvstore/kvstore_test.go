package kvstore

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"github.com/hpcclab/oparaca-go/internal/vclock"
)

func openFast() *Store { return Open(Config{}) }

func TestPutGetRoundTrip(t *testing.T) {
	s := openFast()
	defer s.Close()
	ctx := context.Background()
	doc, err := s.Put(ctx, "a", json.RawMessage(`{"x":1}`))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Version != 1 {
		t.Fatalf("first Put version = %d, want 1", doc.Version)
	}
	got, err := s.Get(ctx, "a")
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Value) != `{"x":1}` {
		t.Fatalf("Get value = %s", got.Value)
	}
}

func TestGetMissing(t *testing.T) {
	s := openFast()
	defer s.Close()
	_, err := s.Get(context.Background(), "nope")
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestPutIncrementsVersion(t *testing.T) {
	s := openFast()
	defer s.Close()
	ctx := context.Background()
	for i := 1; i <= 5; i++ {
		doc, err := s.Put(ctx, "k", json.RawMessage(`1`))
		if err != nil {
			t.Fatal(err)
		}
		if doc.Version != int64(i) {
			t.Fatalf("version = %d, want %d", doc.Version, i)
		}
	}
}

func TestPutCopiesValue(t *testing.T) {
	s := openFast()
	defer s.Close()
	ctx := context.Background()
	buf := []byte(`{"x":1}`)
	if _, err := s.Put(ctx, "k", buf); err != nil {
		t.Fatal(err)
	}
	buf[2] = 'y' // mutate caller's buffer
	got, _ := s.Get(ctx, "k")
	if string(got.Value) != `{"x":1}` {
		t.Fatalf("store aliased caller buffer: %s", got.Value)
	}
}

func TestCompareAndPut(t *testing.T) {
	s := openFast()
	defer s.Close()
	ctx := context.Background()

	// expect 0 = create-if-absent
	doc, err := s.CompareAndPut(ctx, "k", json.RawMessage(`1`), 0)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Version != 1 {
		t.Fatalf("version = %d", doc.Version)
	}
	// stale expect fails
	if _, err := s.CompareAndPut(ctx, "k", json.RawMessage(`2`), 0); !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("err = %v, want ErrVersionMismatch", err)
	}
	// correct expect succeeds
	if _, err := s.CompareAndPut(ctx, "k", json.RawMessage(`2`), 1); err != nil {
		t.Fatal(err)
	}
}

func TestCompareAndPutSerializesConcurrentWriters(t *testing.T) {
	s := openFast()
	defer s.Close()
	ctx := context.Background()
	if _, err := s.Put(ctx, "ctr", json.RawMessage(`0`)); err != nil {
		t.Fatal(err)
	}
	var wins Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				cur, err := s.Get(ctx, "ctr")
				if err != nil {
					t.Error(err)
					return
				}
				var n int
				_ = json.Unmarshal(cur.Value, &n)
				raw, _ := json.Marshal(n + 1)
				if _, err := s.CompareAndPut(ctx, "ctr", raw, cur.Version); err == nil {
					wins.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	final, _ := s.Get(ctx, "ctr")
	var n int
	_ = json.Unmarshal(final.Value, &n)
	if int64(n) != wins.Load() {
		t.Fatalf("final counter %d != successful CAS count %d (lost update)", n, wins.Load())
	}
}

// Counter is a tiny atomic counter for tests.
type Counter struct {
	mu sync.Mutex
	n  int64
}

func (c *Counter) Add(d int64) { c.mu.Lock(); c.n += d; c.mu.Unlock() }
func (c *Counter) Load() int64 { c.mu.Lock(); defer c.mu.Unlock(); return c.n }

func TestDelete(t *testing.T) {
	s := openFast()
	defer s.Close()
	ctx := context.Background()
	s.Put(ctx, "k", json.RawMessage(`1`))
	if err := s.Delete(ctx, "k"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(ctx, "k"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("after delete err = %v", err)
	}
	// deleting absent key is fine
	if err := s.Delete(ctx, "k"); err != nil {
		t.Fatal(err)
	}
}

func TestListPrefix(t *testing.T) {
	s := openFast()
	defer s.Close()
	ctx := context.Background()
	for _, k := range []string{"obj/b", "obj/a", "cls/x"} {
		s.Put(ctx, k, json.RawMessage(`1`))
	}
	keys, err := s.List(ctx, "obj/")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 || keys[0] != "obj/a" || keys[1] != "obj/b" {
		t.Fatalf("List = %v", keys)
	}
}

func TestBatchPut(t *testing.T) {
	s := openFast()
	defer s.Close()
	ctx := context.Background()
	entries := map[string]json.RawMessage{
		"a": json.RawMessage(`1`),
		"b": json.RawMessage(`2`),
	}
	if err := s.BatchPut(ctx, entries); err != nil {
		t.Fatal(err)
	}
	for k := range entries {
		if _, err := s.Get(ctx, k); err != nil {
			t.Fatalf("Get(%q) after batch: %v", k, err)
		}
	}
	st := s.Stats()
	if st.WriteOps != 1 {
		t.Fatalf("batch counted as %d write ops, want 1", st.WriteOps)
	}
	if st.DocsWritten != 2 {
		t.Fatalf("docs written = %d, want 2", st.DocsWritten)
	}
}

func TestBatchPutEmptyIsNoop(t *testing.T) {
	s := openFast()
	defer s.Close()
	if err := s.BatchPut(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	if s.Stats().WriteOps != 0 {
		t.Fatal("empty batch consumed a write op")
	}
}

func TestBatchGet(t *testing.T) {
	s := openFast()
	defer s.Close()
	ctx := context.Background()
	for i := 0; i < 4; i++ {
		if _, err := s.Put(ctx, fmt.Sprintf("k%d", i), json.RawMessage(fmt.Sprintf("%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	before := s.Stats()
	got, err := s.BatchGet(ctx, []string{"k0", "k2", "missing", "k3"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("BatchGet returned %d docs, want 3: %v", len(got), got)
	}
	if _, ok := got["missing"]; ok {
		t.Fatal("absent key present in batch result")
	}
	if string(got["k2"].Value) != "2" {
		t.Fatalf("k2 = %s", got["k2"].Value)
	}
	st := s.Stats()
	if st.ReadOps != before.ReadOps+1 {
		t.Fatalf("batch counted as %d read ops, want 1", st.ReadOps-before.ReadOps)
	}
	if st.DocsRead != before.DocsRead+3 {
		t.Fatalf("docs read delta = %d, want 3", st.DocsRead-before.DocsRead)
	}
}

func TestBatchGetEmptyIsNoop(t *testing.T) {
	s := openFast()
	defer s.Close()
	got, err := s.BatchGet(context.Background(), nil)
	if err != nil || len(got) != 0 {
		t.Fatalf("BatchGet(nil) = %v, %v", got, err)
	}
	if s.Stats().ReadOps != 0 {
		t.Fatal("empty batch consumed a read op")
	}
}

func TestBatchGetChargesLatencyOncePerBatch(t *testing.T) {
	clock := vclock.NewManual(time.Unix(0, 0))
	s := Open(Config{ReadLatency: 10 * time.Millisecond, Clock: clock})
	defer s.Close()
	ctx := context.Background()
	done := make(chan error, 1)
	go func() {
		_, err := s.BatchGet(ctx, []string{"a", "b", "c", "d"})
		done <- err
	}()
	// Exactly one sleep is charged regardless of batch width.
	for clock.Pending() == 0 {
		time.Sleep(time.Millisecond)
	}
	clock.Advance(10 * time.Millisecond)
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("batch read still blocked after one latency charge")
	}
}

func TestBatchGetContextCancelledMidBatch(t *testing.T) {
	clock := vclock.NewManual(time.Unix(0, 0))
	s := Open(Config{ReadLatency: time.Hour, Clock: clock})
	defer s.Close()
	cctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := s.BatchGet(cctx, []string{"a", "b"})
		done <- err
	}()
	for clock.Pending() == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestBatchGetClosed(t *testing.T) {
	s := openFast()
	s.Close()
	if _, err := s.BatchGet(context.Background(), []string{"k"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("BatchGet after close = %v", err)
	}
}

func TestWriteCapacityThrottles(t *testing.T) {
	clock := vclock.NewManual(time.Unix(0, 0))
	s := Open(Config{WriteOpsPerSec: 10, WriteBurst: 2, Clock: clock})
	defer s.Close()
	ctx := context.Background()
	// Burst of 2 admits immediately.
	for i := 0; i < 2; i++ {
		if _, err := s.Put(ctx, "k", json.RawMessage(`1`)); err != nil {
			t.Fatal(err)
		}
	}
	// Third write must block until the clock advances.
	done := make(chan error, 1)
	go func() {
		_, err := s.Put(ctx, "k", json.RawMessage(`1`))
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("third write admitted without capacity: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	for clock.Pending() == 0 {
		time.Sleep(time.Millisecond)
	}
	clock.Advance(time.Second)
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("write never admitted after refill")
	}
}

func TestBatchCheaperThanSingles(t *testing.T) {
	// With a real clock and a tight write cap, 64 docs via batch must
	// complete far faster than 64 single puts would be admitted.
	s := Open(Config{WriteOpsPerSec: 50, WriteBurst: 2, BatchDocCost: 0.02})
	defer s.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	entries := make(map[string]json.RawMessage, 64)
	for i := 0; i < 64; i++ {
		entries[fmt.Sprintf("k%02d", i)] = json.RawMessage(`1`)
	}
	start := time.Now()
	if err := s.BatchPut(ctx, entries); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	// Cost = 1 + 63*0.02 ≈ 2.26 tokens; burst 2 → waits ~5ms.
	// 64 singles would need ~1.24s. Assert well under that.
	if elapsed > 500*time.Millisecond {
		t.Fatalf("batch took %v; batching not amortizing capacity", elapsed)
	}
}

func TestClosedStoreErrors(t *testing.T) {
	s := openFast()
	s.Close()
	ctx := context.Background()
	if _, err := s.Get(ctx, "k"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Get after close = %v", err)
	}
	if _, err := s.Put(ctx, "k", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put after close = %v", err)
	}
	if err := s.BatchPut(ctx, map[string]json.RawMessage{"k": nil}); !errors.Is(err, ErrClosed) {
		t.Fatalf("BatchPut after close = %v", err)
	}
	if _, err := s.List(ctx, ""); !errors.Is(err, ErrClosed) {
		t.Fatalf("List after close = %v", err)
	}
}

func TestContextCancelDuringThrottle(t *testing.T) {
	clock := vclock.NewManual(time.Unix(0, 0))
	s := Open(Config{WriteOpsPerSec: 0.001, WriteBurst: 1, Clock: clock})
	defer s.Close()
	ctx := context.Background()
	if _, err := s.Put(ctx, "k", nil); err != nil {
		t.Fatal(err)
	}
	cctx, cancel := context.WithCancel(ctx)
	done := make(chan error, 1)
	go func() {
		_, err := s.Put(cctx, "k", nil)
		done <- err
	}()
	for clock.Pending() == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.json")
	s := openFast()
	ctx := context.Background()
	s.Put(ctx, "a", json.RawMessage(`{"n":1}`))
	s.Put(ctx, "b", json.RawMessage(`"two"`))
	s.Put(ctx, "b", json.RawMessage(`"two-v2"`))
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2 := openFast()
	defer s2.Close()
	if err := s2.Load(path); err != nil {
		t.Fatal(err)
	}
	got, err := s2.Get(ctx, "b")
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Value) != `"two-v2"` || got.Version != 2 {
		t.Fatalf("restored doc = %+v", got)
	}
	if s2.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s2.Len())
	}
}

func TestLoadMissingFile(t *testing.T) {
	s := openFast()
	defer s.Close()
	if err := s.Load(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("Load of absent file succeeded")
	}
}

func TestStatsCounts(t *testing.T) {
	s := openFast()
	defer s.Close()
	ctx := context.Background()
	s.Put(ctx, "a", nil)
	s.Get(ctx, "a")
	s.Delete(ctx, "a")
	st := s.Stats()
	if st.WriteOps != 1 || st.ReadOps != 1 || st.DeleteOps != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// Property: any sequence of puts leaves version == number of puts for
// that key and the last value stored.
func TestVersionMonotonicProperty(t *testing.T) {
	prop := func(values []uint32) bool {
		if len(values) == 0 {
			return true
		}
		s := openFast()
		defer s.Close()
		ctx := context.Background()
		var last json.RawMessage
		for _, v := range values {
			raw, _ := json.Marshal(v)
			last = raw
			if _, err := s.Put(ctx, "k", raw); err != nil {
				return false
			}
		}
		doc, err := s.Get(ctx, "k")
		if err != nil {
			return false
		}
		return doc.Version == int64(len(values)) && string(doc.Value) == string(last)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
