package kvstore

import (
	"context"
	"encoding/json"
	"errors"
	"testing"
)

var errInjected = errors.New("injected disk failure")

func TestInjectWriteFailuresFailsExactlyN(t *testing.T) {
	s := Open(Config{})
	defer s.Close()
	ctx := context.Background()
	s.InjectWriteFailures(2, errInjected)
	for i := 0; i < 2; i++ {
		if _, err := s.Put(ctx, "k", json.RawMessage(`1`)); !errors.Is(err, errInjected) {
			t.Fatalf("write #%d err = %v, want injected", i, err)
		}
	}
	if _, err := s.Put(ctx, "k", json.RawMessage(`1`)); err != nil {
		t.Fatalf("write after faults exhausted = %v", err)
	}
	if got := s.FaultsServed(); got != 2 {
		t.Fatalf("FaultsServed = %d", got)
	}
}

func TestInjectedFailureDoesNotMutateState(t *testing.T) {
	s := Open(Config{})
	defer s.Close()
	ctx := context.Background()
	s.Put(ctx, "k", json.RawMessage(`"before"`))
	s.InjectWriteFailures(1, errInjected)
	if _, err := s.Put(ctx, "k", json.RawMessage(`"after"`)); !errors.Is(err, errInjected) {
		t.Fatalf("err = %v", err)
	}
	doc, err := s.Get(ctx, "k")
	if err != nil {
		t.Fatal(err)
	}
	if string(doc.Value) != `"before"` || doc.Version != 1 {
		t.Fatalf("failed write mutated state: %+v", doc)
	}
}

func TestInjectedFailureAffectsAllWriteKinds(t *testing.T) {
	s := Open(Config{})
	defer s.Close()
	ctx := context.Background()
	s.InjectWriteFailures(3, errInjected)
	if err := s.BatchPut(ctx, map[string]json.RawMessage{"a": nil}); !errors.Is(err, errInjected) {
		t.Fatalf("BatchPut err = %v", err)
	}
	if _, err := s.CompareAndPut(ctx, "a", nil, 0); !errors.Is(err, errInjected) {
		t.Fatalf("CompareAndPut err = %v", err)
	}
	if err := s.Delete(ctx, "a"); !errors.Is(err, errInjected) {
		t.Fatalf("Delete err = %v", err)
	}
}

func TestReadsUnaffectedByWriteFaults(t *testing.T) {
	s := Open(Config{})
	defer s.Close()
	ctx := context.Background()
	s.Put(ctx, "k", json.RawMessage(`1`))
	s.InjectWriteFailures(10, errInjected)
	if _, err := s.Get(ctx, "k"); err != nil {
		t.Fatalf("Get during write faults = %v", err)
	}
	if _, err := s.List(ctx, ""); err != nil {
		t.Fatalf("List during write faults = %v", err)
	}
}
