package vclock

import (
	"context"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestRealNowAdvances(t *testing.T) {
	c := NewReal()
	a := c.Now()
	b := c.Now()
	if b.Before(a) {
		t.Fatalf("real clock went backwards: %v then %v", a, b)
	}
}

func TestRealSleepRespectsContext(t *testing.T) {
	c := NewReal()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := c.Sleep(ctx, time.Hour); err == nil {
		t.Fatal("Sleep with cancelled context returned nil")
	}
}

func TestRealSleepZeroReturnsImmediately(t *testing.T) {
	c := NewReal()
	if err := c.Sleep(context.Background(), 0); err != nil {
		t.Fatalf("Sleep(0) = %v", err)
	}
}

func TestManualNow(t *testing.T) {
	start := time.Unix(1000, 0)
	m := NewManual(start)
	if got := m.Now(); !got.Equal(start) {
		t.Fatalf("Now() = %v, want %v", got, start)
	}
	m.Advance(5 * time.Second)
	if got := m.Now(); !got.Equal(start.Add(5 * time.Second)) {
		t.Fatalf("Now() after advance = %v", got)
	}
}

func TestManualAfterFiresOnAdvance(t *testing.T) {
	m := NewManual(time.Unix(0, 0))
	ch := m.After(10 * time.Second)
	select {
	case <-ch:
		t.Fatal("timer fired before advance")
	default:
	}
	m.Advance(9 * time.Second)
	select {
	case <-ch:
		t.Fatal("timer fired too early")
	default:
	}
	m.Advance(time.Second)
	select {
	case <-ch:
	case <-time.After(time.Second):
		t.Fatal("timer did not fire after advancing past deadline")
	}
}

func TestManualAfterNonPositive(t *testing.T) {
	m := NewManual(time.Unix(0, 0))
	select {
	case <-m.After(0):
	case <-time.After(time.Second):
		t.Fatal("After(0) did not fire immediately")
	}
}

func TestManualSleepWakesSleeper(t *testing.T) {
	m := NewManual(time.Unix(0, 0))
	done := make(chan error, 1)
	go func() {
		done <- m.Sleep(context.Background(), time.Minute)
	}()
	// Wait for the sleeper to register.
	for m.Pending() == 0 {
		time.Sleep(time.Millisecond)
	}
	m.Advance(time.Minute)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Sleep = %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("sleeper never woke")
	}
}

func TestManualSleepContextCancel(t *testing.T) {
	m := NewManual(time.Unix(0, 0))
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- m.Sleep(ctx, time.Hour) }()
	for m.Pending() == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; err != context.Canceled {
		t.Fatalf("Sleep = %v, want context.Canceled", err)
	}
}

func TestManualSinceTracksAdvance(t *testing.T) {
	m := NewManual(time.Unix(100, 0))
	t0 := m.Now()
	m.Advance(42 * time.Second)
	if got := m.Since(t0); got != 42*time.Second {
		t.Fatalf("Since = %v, want 42s", got)
	}
}

func TestManualConcurrentAdvance(t *testing.T) {
	m := NewManual(time.Unix(0, 0))
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				m.Advance(time.Millisecond)
				_ = m.Now()
			}
		}()
	}
	wg.Wait()
	if got := m.Now(); !got.Equal(time.Unix(0, 0).Add(800 * time.Millisecond)) {
		t.Fatalf("Now() = %v after 800 concurrent 1ms advances", got)
	}
}

func TestTokenBucketTryTake(t *testing.T) {
	m := NewManual(time.Unix(0, 0))
	b := NewTokenBucket(m, 10, 5) // 10/s, burst 5, starts full
	for i := 0; i < 5; i++ {
		if !b.TryTake(1) {
			t.Fatalf("TryTake #%d failed with full bucket", i)
		}
	}
	if b.TryTake(1) {
		t.Fatal("TryTake succeeded on empty bucket")
	}
	m.Advance(100 * time.Millisecond) // refills 1 token
	if !b.TryTake(1) {
		t.Fatal("TryTake failed after refill")
	}
	if b.TryTake(1) {
		t.Fatal("TryTake succeeded beyond refill")
	}
}

func TestTokenBucketBurstCap(t *testing.T) {
	m := NewManual(time.Unix(0, 0))
	b := NewTokenBucket(m, 1000, 3)
	m.Advance(time.Hour) // would refill millions; capped at burst
	for i := 0; i < 3; i++ {
		if !b.TryTake(1) {
			t.Fatalf("TryTake #%d failed", i)
		}
	}
	if b.TryTake(1) {
		t.Fatal("bucket exceeded burst capacity")
	}
}

func TestTokenBucketTakeBlocksUntilRefill(t *testing.T) {
	c := NewReal()
	b := NewTokenBucket(c, 1000, 1)
	if err := b.Take(context.Background(), 1); err != nil {
		t.Fatalf("first Take = %v", err)
	}
	start := time.Now()
	if err := b.Take(context.Background(), 1); err != nil {
		t.Fatalf("second Take = %v", err)
	}
	if elapsed := time.Since(start); elapsed < 500*time.Microsecond {
		t.Fatalf("second Take returned too quickly: %v", elapsed)
	}
}

func TestTokenBucketTakeOversized(t *testing.T) {
	// A request larger than burst must not deadlock: the bucket goes
	// into debt once it is full.
	c := NewReal()
	b := NewTokenBucket(c, 1e6, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := b.Take(ctx, 10); err != nil {
		t.Fatalf("oversized Take = %v", err)
	}
}

func TestTokenBucketTakeContext(t *testing.T) {
	m := NewManual(time.Unix(0, 0))
	b := NewTokenBucket(m, 0.001, 1)
	if !b.TryTake(1) {
		t.Fatal("initial TryTake failed")
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- b.Take(ctx, 1) }()
	for m.Pending() == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; err != context.Canceled {
		t.Fatalf("Take = %v, want context.Canceled", err)
	}
}

func TestTokenBucketClose(t *testing.T) {
	c := NewReal()
	b := NewTokenBucket(c, 1, 1)
	b.Close()
	if err := b.Take(context.Background(), 1); err != ErrBucketClosed {
		t.Fatalf("Take after Close = %v, want ErrBucketClosed", err)
	}
	if b.TryTake(1) {
		t.Fatal("TryTake succeeded after Close")
	}
}

func TestTokenBucketSetRate(t *testing.T) {
	m := NewManual(time.Unix(0, 0))
	b := NewTokenBucket(m, 1, 10)
	for i := 0; i < 10; i++ {
		if !b.TryTake(1) {
			t.Fatalf("drain #%d failed", i)
		}
	}
	b.SetRate(100)
	if got := b.Rate(); got != 100 {
		t.Fatalf("Rate = %v, want 100", got)
	}
	m.Advance(100 * time.Millisecond) // 10 tokens at new rate
	for i := 0; i < 10; i++ {
		if !b.TryTake(1) {
			t.Fatalf("TryTake #%d after SetRate failed", i)
		}
	}
}

func TestTokenBucketPanicsOnBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTokenBucket(0 rate) did not panic")
		}
	}()
	NewTokenBucket(NewReal(), 0, 1)
}

// Property: a bucket never hands out more tokens than burst + rate*elapsed.
func TestTokenBucketConservationProperty(t *testing.T) {
	prop := func(rateU, burstU uint16, steps uint8) bool {
		rate := float64(rateU%1000) + 1
		burst := float64(burstU%100) + 1
		m := NewManual(time.Unix(0, 0))
		b := NewTokenBucket(m, rate, burst)
		granted := 0.0
		elapsed := time.Duration(0)
		for i := 0; i < int(steps%50)+1; i++ {
			if b.TryTake(1) {
				granted++
			}
			m.Advance(10 * time.Millisecond)
			elapsed += 10 * time.Millisecond
		}
		limit := burst + rate*elapsed.Seconds() + 1e-6
		return granted <= limit
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
