// Package vclock provides a clock abstraction so that every
// time-dependent component in the platform can run against either the
// real wall clock or a manually advanced test clock.
//
// The package also provides rate-limiting primitives (token buckets)
// built on top of the Clock interface; these are used by the cluster
// and kvstore simulators to enforce compute and write-throughput
// capacities.
package vclock

import (
	"context"
	"errors"
	"sync"
	"time"
)

// Clock abstracts time for testability. The zero value of concrete
// implementations is not useful; use NewReal or NewManual.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// Sleep blocks until d has elapsed or ctx is done. It returns
	// ctx.Err() when the context ends the wait early, nil otherwise.
	Sleep(ctx context.Context, d time.Duration) error
	// After returns a channel that receives the current time once d
	// has elapsed.
	After(d time.Duration) <-chan time.Time
	// Since returns the elapsed time since t.
	Since(t time.Time) time.Duration
}

// Real is a Clock backed by the system wall clock.
type Real struct{}

var _ Clock = Real{}

// NewReal returns a Clock backed by the system wall clock.
func NewReal() Real { return Real{} }

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// Since implements Clock.
func (Real) Since(t time.Time) time.Duration { return time.Since(t) }

// After implements Clock.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Sleep implements Clock.
func (Real) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// waiter is a pending timer on a Manual clock.
type waiter struct {
	at time.Time
	ch chan time.Time
}

// Manual is a Clock whose time only moves when Advance is called.
// It is safe for concurrent use.
type Manual struct {
	mu      sync.Mutex
	now     time.Time
	waiters []*waiter
}

var _ Clock = (*Manual)(nil)

// NewManual returns a Manual clock starting at start.
func NewManual(start time.Time) *Manual {
	return &Manual{now: start}
}

// Now implements Clock.
func (m *Manual) Now() time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.now
}

// Since implements Clock.
func (m *Manual) Since(t time.Time) time.Duration {
	return m.Now().Sub(t)
}

// After implements Clock.
func (m *Manual) After(d time.Duration) <-chan time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	ch := make(chan time.Time, 1)
	if d <= 0 {
		ch <- m.now
		return ch
	}
	m.waiters = append(m.waiters, &waiter{at: m.now.Add(d), ch: ch})
	return ch
}

// Sleep implements Clock. It blocks until Advance moves the clock past
// the deadline or ctx is done.
func (m *Manual) Sleep(ctx context.Context, d time.Duration) error {
	select {
	case <-m.After(d):
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Advance moves the clock forward by d, firing any timers whose
// deadline is reached.
func (m *Manual) Advance(d time.Duration) {
	m.mu.Lock()
	m.now = m.now.Add(d)
	now := m.now
	var remaining []*waiter
	var fired []*waiter
	for _, w := range m.waiters {
		if !w.at.After(now) {
			fired = append(fired, w)
		} else {
			remaining = append(remaining, w)
		}
	}
	m.waiters = remaining
	m.mu.Unlock()
	for _, w := range fired {
		w.ch <- now
	}
}

// Pending reports the number of unfired timers, which tests use to
// synchronize with goroutines that are about to sleep.
func (m *Manual) Pending() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.waiters)
}

// ErrBucketClosed is returned by TokenBucket.Take after Close.
var ErrBucketClosed = errors.New("vclock: token bucket closed")

// TokenBucket is a classic token-bucket rate limiter driven by a Clock.
// It refills at rate tokens/second up to burst. It is safe for
// concurrent use.
type TokenBucket struct {
	clock Clock

	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
	closed bool
}

// NewTokenBucket returns a bucket that refills at rate tokens per
// second with the given burst capacity. The bucket starts full.
// rate and burst must be positive.
func NewTokenBucket(clock Clock, rate, burst float64) *TokenBucket {
	if rate <= 0 || burst <= 0 {
		panic("vclock: NewTokenBucket requires positive rate and burst")
	}
	return &TokenBucket{
		clock:  clock,
		rate:   rate,
		burst:  burst,
		tokens: burst,
		last:   clock.Now(),
	}
}

// refillLocked credits tokens for elapsed time. Caller holds mu.
func (b *TokenBucket) refillLocked(now time.Time) {
	elapsed := now.Sub(b.last).Seconds()
	if elapsed <= 0 {
		return
	}
	b.tokens += elapsed * b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = now
}

// TryTake removes n tokens if available without blocking, reporting
// whether it succeeded.
func (b *TokenBucket) TryTake(n float64) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return false
	}
	b.refillLocked(b.clock.Now())
	if b.tokens >= n {
		b.tokens -= n
		return true
	}
	return false
}

// Take blocks until n tokens are available (or ctx is done), then
// removes them. n may exceed burst transiently: the bucket goes into
// debt so a single oversized request is still admitted at rate-limited
// pace rather than deadlocking.
func (b *TokenBucket) Take(ctx context.Context, n float64) error {
	for {
		b.mu.Lock()
		if b.closed {
			b.mu.Unlock()
			return ErrBucketClosed
		}
		now := b.clock.Now()
		b.refillLocked(now)
		if b.tokens >= n || b.tokens >= b.burst {
			// Either enough tokens, or the bucket is full and the
			// request is larger than the burst: go into debt.
			b.tokens -= n
			b.mu.Unlock()
			return nil
		}
		need := n
		if need > b.burst {
			need = b.burst
		}
		wait := time.Duration((need - b.tokens) / b.rate * float64(time.Second))
		b.mu.Unlock()
		if wait < time.Microsecond {
			wait = time.Microsecond
		}
		if err := b.clock.Sleep(ctx, wait); err != nil {
			return err
		}
	}
}

// SetRate changes the refill rate. Pending Take calls observe the new
// rate on their next wakeup.
func (b *TokenBucket) SetRate(rate float64) {
	if rate <= 0 {
		panic("vclock: SetRate requires positive rate")
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked(b.clock.Now())
	b.rate = rate
}

// Rate returns the current refill rate in tokens per second.
func (b *TokenBucket) Rate() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.rate
}

// Close marks the bucket closed; subsequent Take calls fail fast.
func (b *TokenBucket) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.closed = true
}
