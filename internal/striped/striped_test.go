package striped

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestNewRoundsUpToPowerOfTwo(t *testing.T) {
	cases := []struct{ in, want int }{
		{0, DefaultStripes},
		{-3, DefaultStripes},
		{1, 1},
		{2, 2},
		{3, 4},
		{100, 128},
		{256, 256},
	}
	for _, c := range cases {
		if got := New(c.in).Len(); got != c.want {
			t.Errorf("New(%d).Len() = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestForIsStableAndInRange(t *testing.T) {
	m := New(64)
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("obj-%04d", i)
		if m.For(key) != m.For(key) {
			t.Fatalf("For(%q) not stable", key)
		}
	}
}

func TestDistinctKeysSpreadAcrossStripes(t *testing.T) {
	m := New(64)
	seen := make(map[*sync.Mutex]bool)
	for i := 0; i < 1024; i++ {
		seen[m.For(fmt.Sprintf("obj-%04d", i))] = true
	}
	// With 1024 keys over 64 stripes, essentially every stripe should
	// be hit; demand at least half to keep the bound robust.
	if len(seen) < 32 {
		t.Fatalf("1024 keys landed on only %d/64 stripes", len(seen))
	}
}

func TestMutualExclusionPerKey(t *testing.T) {
	m := New(8)
	const (
		goroutines = 8
		iterations = 1000
	)
	counters := make(map[string]*int)
	keys := []string{"a", "b", "c", "d"}
	for _, k := range keys {
		counters[k] = new(int)
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				k := keys[(g+i)%len(keys)]
				mu := m.For(k)
				mu.Lock()
				*counters[k]++
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()
	total := 0
	for _, c := range counters {
		total += *c
	}
	if total != goroutines*iterations {
		t.Fatalf("total = %d, want %d (lost increments)", total, goroutines*iterations)
	}
}

func TestRWMutexesSameKeySameStripe(t *testing.T) {
	m := NewRW(64)
	if m.For("key-a") != m.For("key-a") {
		t.Fatal("same key resolved to different stripes")
	}
	if m.Len() != 64 {
		t.Fatalf("Len = %d, want 64", m.Len())
	}
}

func TestRWMutexesReadersShareWriterExcludes(t *testing.T) {
	m := NewRW(8)
	mu := m.For("obj")
	mu.RLock()
	secondReader := make(chan struct{})
	go func() {
		mu.RLock() // must not block alongside another reader
		mu.RUnlock()
		close(secondReader)
	}()
	select {
	case <-secondReader:
	case <-time.After(5 * time.Second):
		t.Fatal("second reader blocked while only readers hold the stripe")
	}
	writerDone := make(chan struct{})
	go func() {
		mu.Lock() // must wait for the reader
		mu.Unlock()
		close(writerDone)
	}()
	select {
	case <-writerDone:
		t.Fatal("writer acquired the stripe while a reader held it")
	case <-time.After(20 * time.Millisecond):
	}
	mu.RUnlock()
	select {
	case <-writerDone:
	case <-time.After(5 * time.Second):
		t.Fatal("writer never acquired the stripe after readers left")
	}
}

func TestRWMutexesRoundsUpAndDefaults(t *testing.T) {
	if got := NewRW(100).Len(); got != 128 {
		t.Fatalf("NewRW(100).Len() = %d, want 128", got)
	}
	if got := NewRW(0).Len(); got != DefaultStripes {
		t.Fatalf("NewRW(0).Len() = %d, want %d", got, DefaultStripes)
	}
}
