// Package striped provides a fixed-size table of mutexes indexed by
// string hash. It gives per-key mutual exclusion without a lock object
// per key: two distinct keys contend only when they hash to the same
// stripe, and memory stays constant no matter how many keys exist.
//
// The class runtime uses a stripe table keyed by object ID to
// serialize the load→invoke→merge window of concurrent invocations on
// one object (fixing the read-modify-write lost-update race) while
// invocations on distinct objects proceed fully in parallel.
package striped

import (
	"hash/fnv"
	"sync"
)

// DefaultStripes is the stripe count used when New is given a
// non-positive size. 256 stripes keep false contention negligible for
// working sets well into the thousands of hot keys.
const DefaultStripes = 256

// Mutexes is a striped mutex table. The zero value is not usable; use
// New.
type Mutexes struct {
	stripes []sync.Mutex
	mask    uint32
}

// New returns a table with at least n stripes, rounded up to the next
// power of two so stripe selection is a mask instead of a modulo.
// Non-positive n selects DefaultStripes.
func New(n int) *Mutexes {
	if n <= 0 {
		n = DefaultStripes
	}
	size := 1
	for size < n {
		size <<= 1
	}
	return &Mutexes{stripes: make([]sync.Mutex, size), mask: uint32(size - 1)}
}

// Len returns the stripe count.
func (m *Mutexes) Len() int { return len(m.stripes) }

// For returns the mutex guarding key. All keys hashing to the same
// stripe share one mutex, so holders must not acquire a second stripe
// while holding one (lock ordering across stripes is undefined).
func (m *Mutexes) For(key string) *sync.Mutex {
	h := fnv.New32a()
	_, _ = h.Write([]byte(key))
	return &m.stripes[h.Sum32()&m.mask]
}

// RWMutexes is a striped reader/writer lock table: the shape the class
// runtime's optimistic path uses as a delete guard, where many
// lock-free invocations of one object hold the stripe shared while
// administrative operations (object delete, state init) take it
// exclusive and so still serialize against every in-flight invocation.
type RWMutexes struct {
	stripes []sync.RWMutex
	mask    uint32
}

// NewRW returns a reader/writer table with at least n stripes, rounded
// up to the next power of two. Non-positive n selects DefaultStripes.
func NewRW(n int) *RWMutexes {
	if n <= 0 {
		n = DefaultStripes
	}
	size := 1
	for size < n {
		size <<= 1
	}
	return &RWMutexes{stripes: make([]sync.RWMutex, size), mask: uint32(size - 1)}
}

// Len returns the stripe count.
func (m *RWMutexes) Len() int { return len(m.stripes) }

// For returns the reader/writer mutex guarding key. The same sharing
// and ordering caveats as Mutexes.For apply; additionally, a
// goroutine must not re-acquire a stripe's read side while holding it
// if a writer could be queued in between (sync.RWMutex readers block
// behind pending writers).
func (m *RWMutexes) For(key string) *sync.RWMutex {
	return &m.stripes[m.Index(key)]
}

// Index returns the stripe index For resolves key to, so callers can
// align per-stripe side tables (contention trackers, counters) with
// the lock stripes while hashing the key once.
func (m *RWMutexes) Index(key string) uint32 {
	h := fnv.New32a()
	_, _ = h.Write([]byte(key))
	return h.Sum32() & m.mask
}

// At returns the mutex of a stripe index previously obtained from
// Index.
func (m *RWMutexes) At(i uint32) *sync.RWMutex { return &m.stripes[i] }
