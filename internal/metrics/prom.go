package metrics

import (
	"bytes"
	"sort"
	"strconv"
	"strings"
)

// PromWriter renders metrics in the Prometheus text exposition format
// (version 0.0.4). It is a one-shot builder: the gateway's /metrics
// handler fills one per scrape and writes Bytes out. Metric names are
// mangled from the registry's dotted names ("occ.commits" →
// "oparaca_occ_commits_total"); every family gets a single # TYPE line
// no matter how many labeled series it spans, and series of one family
// must be written consecutively (group labeled variants together).
type PromWriter struct {
	buf   bytes.Buffer
	typed map[string]string
}

// NewPromWriter returns an empty writer.
func NewPromWriter() *PromWriter {
	return &PromWriter{typed: make(map[string]string)}
}

// ContentType is the Content-Type for the text exposition format.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// PromName mangles a dotted registry metric name into a Prometheus
// name under the oparaca_ namespace.
func PromName(name string) string {
	return "oparaca_" + strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			return r
		default:
			return '_'
		}
	}, name)
}

func (p *PromWriter) typeLine(name, typ string) {
	if p.typed[name] == typ {
		return
	}
	p.typed[name] = typ
	p.buf.WriteString("# TYPE ")
	p.buf.WriteString(name)
	p.buf.WriteByte(' ')
	p.buf.WriteString(typ)
	p.buf.WriteByte('\n')
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// Labels renders a label set ("k1=v1", "k2=v2", ...) into the
// {k1="v1",k2="v2"} form PromWriter methods accept ("" for none).
func Labels(pairs ...string) string {
	if len(pairs) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i+1 < len(pairs); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(pairs[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(pairs[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func (p *PromWriter) sample(name, labels string, v float64) {
	p.buf.WriteString(name)
	p.buf.WriteString(labels)
	p.buf.WriteByte(' ')
	p.buf.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	p.buf.WriteByte('\n')
}

// Counter writes one counter sample. name is the mangled family name
// (use PromName); a _total suffix is appended unless already present.
func (p *PromWriter) Counter(name, labels string, v float64) {
	if !strings.HasSuffix(name, "_total") {
		name += "_total"
	}
	p.typeLine(name, "counter")
	p.sample(name, labels, v)
}

// Gauge writes one gauge sample.
func (p *PromWriter) Gauge(name, labels string, v float64) {
	p.typeLine(name, "gauge")
	p.sample(name, labels, v)
}

// Histogram writes one histogram series (cumulative le buckets in
// seconds, _sum, _count) from a registry Histogram. name is the
// mangled family base name without the _seconds suffix.
func (p *PromWriter) Histogram(name, labels string, h *Histogram) {
	bounds, cumulative, sum, count := h.Buckets()
	name += "_seconds"
	p.typeLine(name, "histogram")
	inner := strings.TrimSuffix(strings.TrimPrefix(labels, "{"), "}")
	for i, b := range bounds {
		le := strconv.FormatFloat(b.Seconds(), 'g', -1, 64)
		lbl := `{le="` + le + `"}`
		if inner != "" {
			lbl = "{" + inner + `,le="` + le + `"}`
		}
		p.sample(name+"_bucket", lbl, float64(cumulative[i]))
	}
	lbl := `{le="+Inf"}`
	if inner != "" {
		lbl = "{" + inner + `,le="+Inf"}`
	}
	p.sample(name+"_bucket", lbl, float64(count))
	p.sample(name+"_sum", labels, sum.Seconds())
	p.sample(name+"_count", labels, float64(count))
}

// LabeledRegistry pairs a registry with the label set its series
// carry (e.g. one per class runtime, labeled {class="X"}).
type LabeledRegistry struct {
	Labels string
	Reg    *Registry
}

// Registry renders every metric in reg, each series carrying labels.
func (p *PromWriter) Registry(reg *Registry, labels string) {
	p.Registries(LabeledRegistry{Labels: labels, Reg: reg})
}

// Registries renders several labeled registries merged by family: the
// exposition format requires every sample of a family to form one
// contiguous group, so per-class registries sharing metric names must
// be interleaved by name, not concatenated.
func (p *PromWriter) Registries(regs ...LabeledRegistry) {
	type snap struct {
		labels     string
		counters   map[string]*Counter
		gauges     map[string]*Gauge
		histograms map[string]*Histogram
	}
	snaps := make([]snap, 0, len(regs))
	counterNames := map[string]bool{}
	gaugeNames := map[string]bool{}
	histNames := map[string]bool{}
	for _, lr := range regs {
		if lr.Reg == nil {
			continue
		}
		r := lr.Reg
		s := snap{
			labels:     lr.Labels,
			counters:   make(map[string]*Counter, len(r.counters)),
			gauges:     make(map[string]*Gauge, len(r.gauges)),
			histograms: make(map[string]*Histogram, len(r.histograms)),
		}
		r.mu.Lock()
		for k, c := range r.counters {
			s.counters[k] = c
			counterNames[k] = true
		}
		for k, g := range r.gauges {
			s.gauges[k] = g
			gaugeNames[k] = true
		}
		for k, h := range r.histograms {
			s.histograms[k] = h
			histNames[k] = true
		}
		r.mu.Unlock()
		snaps = append(snaps, s)
	}
	for _, k := range sortedKeys(counterNames) {
		for _, s := range snaps {
			if c, ok := s.counters[k]; ok {
				p.Counter(PromName(k), s.labels, float64(c.Value()))
			}
		}
	}
	for _, k := range sortedKeys(gaugeNames) {
		for _, s := range snaps {
			if g, ok := s.gauges[k]; ok {
				p.Gauge(PromName(k), s.labels, float64(g.Value()))
			}
		}
	}
	for _, k := range sortedKeys(histNames) {
		for _, s := range snaps {
			if h, ok := s.histograms[k]; ok && h.Count() > 0 {
				p.Histogram(PromName(k), s.labels, h)
			}
		}
	}
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Bytes returns the rendered exposition.
func (p *PromWriter) Bytes() []byte { return p.buf.Bytes() }
